// Semantic search over a generated world (Figure 2a + Section 8.1):
// queries trigger concept cards; isA expansion rescues hypernym queries.
//
//   build/examples/semantic_search [seed]

#include <cstdio>
#include <cstdlib>

#include "apps/question_answering.h"
#include "apps/search_relevance.h"
#include "datagen/world.h"
#include "text/bm25.h"
#include "text/tokenizer.h"

using namespace alicoco;

int main(int argc, char** argv) {
  datagen::WorldConfig cfg;
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  cfg.num_items = 800;
  cfg.num_good_ec_concepts = 120;
  cfg.num_bad_ec_concepts = 60;
  datagen::World world = datagen::World::Generate(cfg);
  const kg::ConceptNet& net = world.net();
  std::printf("world: %zu items, %zu e-commerce concepts\n\n",
              net.num_items(), net.num_ec_concepts());

  // Index item titles for keyword search.
  text::Bm25Index index;
  for (const auto& item : net.items()) {
    index.AddDocument(item.id.value, item.title);
  }
  index.Finalize();

  // Demo 1: a needs query triggers a concept card (Figure 2a).
  const auto& gold = world.ec_gold();
  const datagen::EcGold* card = nullptr;
  for (const auto& g : gold) {
    if (g.event_driven && g.items.size() >= 3 &&
        net.Get(g.id).tokens.size() >= 2) {
      card = &g;
      break;
    }
  }
  if (card != nullptr) {
    const auto& card_concept = net.Get(card->id);
    std::printf("user query: \"%s\"\n", card_concept.surface.c_str());
    std::printf("keyword search (BM25 top 3):\n");
    auto hits = index.TopK(card_concept.tokens, 3);
    if (hits.empty()) std::printf("   (no keyword hits — semantic gap!)\n");
    for (const auto& [id, score] : hits) {
      std::printf("   item #%lld (%.2f)\n", static_cast<long long>(id),
                  score);
    }
    std::printf("concept card \"%s\" (needs-driven, Figure 2a):\n",
                card_concept.surface.c_str());
    size_t shown = 0;
    for (kg::ItemId item : net.ItemsForEc(card->id)) {
      std::printf("   ");
      for (const auto& t : net.Get(item).title) std::printf("%s ", t.c_str());
      std::printf("\n");
      if (++shown >= 5) break;
    }
    std::printf("   interpreted as:");
    for (kg::ConceptId p : net.PrimitivesForEc(card->id)) {
      std::printf(" <%s: %s>",
                  world.DomainLabel(p).c_str(),
                  net.Get(p).surface.c_str());
    }
    std::printf("\n\n");
  }

  // Demo 2: hypernym query rescued by isA expansion (Section 8.1.1).
  if (!world.group_concepts().empty()) {
    kg::ConceptId group = world.group_concepts()[0];
    const std::string& query = net.Get(group).surface;
    std::printf("user query: \"%s\" (a hypernym no item title contains)\n",
                query.c_str());
    auto keyword_hits = index.TopK({query}, 3);
    std::printf("keyword search: %zu hits\n", keyword_hits.size());
    apps::SearchRelevance relevance(&net);
    size_t rescued = 0;
    for (const auto& item : world.item_profiles()) {
      if (relevance.Score(query, item.id, /*expand_isa=*/true) > 0) {
        ++rescued;
      }
    }
    std::printf("with isA expansion: %zu relevant items found\n", rescued);
  }

  // Demo 3: question answering (Section 8.1.2).
  if (card != nullptr) {
    apps::NeedsQuestionAnswerer qa(&net);
    std::string question = "what should i prepare for hosting next week's " +
                           net.Get(card->id).surface;
    std::printf("\nuser asks: \"%s\"\n", question.c_str());
    auto answer = qa.Answer(question, 4);
    if (answer.has_value()) {
      std::printf("recognized need \"%s\" (score %.2f); prepare:\n",
                  answer->concept_surface.c_str(), answer->score);
      for (kg::ItemId item : answer->items) {
        std::printf("   ");
        for (const auto& t : net.Get(item).title) {
          std::printf("%s ", t.c_str());
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
