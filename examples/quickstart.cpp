// Quickstart: build the Figure-1 fragment of AliCoCo by hand with the public
// API, then ask it the questions the paper motivates.
//
//   build/examples/quickstart

#include <cstdio>

#include "kg/concept_net.h"
#include "kg/persistence.h"
#include "kg/stats.h"

using namespace alicoco;

int main() {
  kg::ConceptNet net;

  // ---- Taxonomy (Section 3): a few domains and a Category subtree ----
  auto& tax = net.taxonomy();
  kg::ClassId category = *tax.AddDomain("Category");
  kg::ClassId location = *tax.AddDomain("Location");
  kg::ClassId event = *tax.AddDomain("Event");
  kg::ClassId time = *tax.AddDomain("Time");
  kg::ClassId season = *tax.AddClass("Season", time);
  kg::ClassId clothing = *tax.AddClass("Clothing", category);
  kg::ClassId kitchen = *tax.AddClass("Kitchen", category);

  // Schema: typed relations over classes (Section 2).
  (void)net.AddRelation("suitable_when", category, season);

  // ---- Primitive concepts (Section 4) ----
  kg::ConceptId outdoor = *net.GetOrAddPrimitiveConcept("outdoor", location);
  kg::ConceptId barbecue = *net.GetOrAddPrimitiveConcept("barbecue", event);
  kg::ConceptId grill = *net.GetOrAddPrimitiveConcept("grill", kitchen);
  kg::ConceptId cookware = *net.GetOrAddPrimitiveConcept("cookware", kitchen);
  kg::ConceptId trousers =
      *net.GetOrAddPrimitiveConcept("cotton-padded trousers", clothing);
  kg::ConceptId winter = *net.GetOrAddPrimitiveConcept("winter", season);
  (void)net.SetGloss(barbecue,
                     {"grilling", "food", "outside", "needs", "grill"});

  // isA inside the primitive layer; schema-typed relation.
  (void)net.AddIsA(grill, cookware);
  (void)net.AddTypedRelation("suitable_when", trousers, winter);

  // ---- An e-commerce concept interpreting a user need (Section 5) ----
  kg::EcConceptId outdoor_barbecue =
      *net.GetOrAddEcConcept({"outdoor", "barbecue"});
  (void)net.LinkEcToPrimitive(outdoor_barbecue, outdoor);
  (void)net.LinkEcToPrimitive(outdoor_barbecue, barbecue);

  // ---- Items and their associations (Section 6) ----
  kg::ItemId steel_grill = *net.AddItem({"steel", "charcoal", "grill"},
                                        kitchen);
  kg::ItemId butter = *net.AddItem({"farm", "butter"}, category);
  (void)net.LinkItemToPrimitive(steel_grill, grill);
  (void)net.LinkItemToEc(steel_grill, outdoor_barbecue);
  (void)net.LinkItemToEc(butter, outdoor_barbecue);

  // ---- Ask the net the paper's questions ----
  std::printf("Q: what do I need for an 'outdoor barbecue'?\n");
  auto ec = net.FindEcConcept("outdoor barbecue");
  for (kg::ItemId item : net.ItemsForEc(*ec)) {
    std::printf("   item #%u:", item.value);
    for (const auto& t : net.Get(item).title) std::printf(" %s", t.c_str());
    std::printf("\n");
  }

  std::printf("\nQ: how is that need interpreted (primitive concepts)?\n");
  for (kg::ConceptId p : net.PrimitivesForEc(*ec)) {
    const auto& pc = net.Get(p);
    std::printf("   %s  [%s]\n", pc.surface.c_str(),
                tax.Get(tax.Domain(pc.cls)).name.c_str());
  }

  std::printf("\nQ: a user searches 'cookware' — is the steel grill "
              "relevant?\n");
  auto expanded = net.ExpandWithHypernyms("grill");
  bool relevant = false;
  for (const auto& term : expanded) relevant |= term == "cookware";
  std::printf("   grill expands to {");
  for (const auto& term : expanded) std::printf(" %s", term.c_str());
  std::printf(" } -> %s\n", relevant ? "YES, via grill isA cookware" : "no");

  std::printf("\nQ: when are cotton-padded trousers suitable?\n");
  for (const auto& rel : net.TypedRelationsFrom(trousers)) {
    std::printf("   %s %s %s\n", net.Get(rel.subject).surface.c_str(),
                rel.relation.c_str(), net.Get(rel.object).surface.c_str());
  }

  std::printf("\nNet statistics:\n%s",
              kg::StatisticsToTable(kg::ComputeStatistics(net)).c_str());

  // Persist and reload.
  std::string path = "/tmp/quickstart_net.txt";
  Status st = kg::SaveConceptNet(net, path);
  std::printf("saved to %s: %s\n", path.c_str(), st.ToString().c_str());
  auto loaded = kg::LoadConceptNet(path);
  std::printf("reloaded: %s (%zu primitive concepts)\n",
              loaded.status().ToString().c_str(),
              loaded.ok() ? loaded->num_primitive_concepts() : 0);
  return 0;
}
