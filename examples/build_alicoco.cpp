// End-to-end construction demo: run the full semi-automatic pipeline on a
// synthetic world (corpora + seed knowledge + simulated annotators) and
// save the constructed AliCoCo to disk.
//
//   build/examples/build_alicoco [output_path] [--quant=int8|fp16]
//
// --quant routes the stage-7 item-association scoring (the hottest
// inference loop of the build) through quantized weights; see DESIGN.md §5
// for the accuracy-tolerance policy.

#include <cstdio>
#include <cstring>

#include "kg/persistence.h"
#include "kg/stats.h"
#include "pipeline/builder.h"

using namespace alicoco;

int main(int argc, char** argv) {
  const char* out_path = "/tmp/alicoco_net.txt";
  nn::quant::QuantMode quant = nn::quant::QuantMode::kNone;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quant=int8") == 0) {
      quant = nn::quant::QuantMode::kInt8;
    } else if (std::strcmp(argv[i], "--quant=fp16") == 0) {
      quant = nn::quant::QuantMode::kFp16;
    } else if (std::strncmp(argv[i], "--quant=", 8) == 0) {
      std::printf("unknown quant mode %s (want int8 or fp16)\n", argv[i] + 8);
      return 1;
    } else {
      out_path = argv[i];
    }
  }

  datagen::WorldConfig wc;
  wc.seed = 2020;
  wc.num_items = 1000;
  wc.num_good_ec_concepts = 200;
  wc.num_bad_ec_concepts = 200;
  std::printf("generating the raw world (corpora, catalog, annotators)...\n");
  datagen::World world = datagen::World::Generate(wc);
  datagen::WorldResources resources(world, datagen::ResourcesConfig{});

  pipeline::PipelineConfig cfg;
  cfg.labeler.epochs = 3;
  cfg.classifier.epochs = 3;
  cfg.tagger.epochs = 4;
  cfg.matcher.base.epochs = 4;
  cfg.association_quant = quant;
  if (quant != nn::quant::QuantMode::kNone) {
    std::printf("association scoring will run %s-quantized\n",
                nn::quant::QuantModeName(quant));
  }
  pipeline::AliCoCoBuilder builder(&world, &resources, cfg);
  pipeline::BuildReport report;
  std::printf("running the 7-stage construction pipeline...\n\n");
  auto net = builder.Build(&report);
  if (!net.ok()) {
    std::printf("pipeline failed: %s\n", net.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", report.Summary().c_str());
  std::printf("%s", kg::StatisticsToTable(kg::ComputeStatistics(*net)).c_str());

  auto cmp = pipeline::AliCoCoBuilder::CompareToGold(*net, world);
  std::printf(
      "\nquality vs gold: primitives %.2f/%.2f (P/R), isA %.2f/%.2f, "
      "ec precision %.2f\n",
      cmp.primitive_precision, cmp.primitive_recall, cmp.isa_precision,
      cmp.isa_recall, cmp.ec_precision);

  Status st = kg::SaveConceptNet(*net, out_path);
  std::printf("\nsaved constructed net to %s: %s\n", out_path,
              st.ToString().c_str());
  return st.ok() ? 0 : 1;
}
