// Structural audit CLI: checks a concept net against the invariants the
// paper assumes (kg::Validator). The same audit runs automatically as the
// final stage of the construction pipeline; this binary covers nets at
// rest.
//
//   kg_validate snapshot.txt [more_snapshots...]   audit saved nets
//   kg_validate                                    generate a synthetic
//                                                  world and audit its
//                                                  gold net
//
// Exit status: 0 when every audited net is clean, 1 otherwise.

#include <cstdio>

#include "datagen/world.h"
#include "kg/persistence.h"
#include "kg/validator.h"

using namespace alicoco;

namespace {

bool AuditNet(const kg::ConceptNet& net, const char* label) {
  kg::ValidationReport report = kg::Validator().Validate(net);
  std::printf("[%s] %s\n", label, report.Summary().c_str());
  return report.ok();
}

}  // namespace

int main(int argc, char** argv) {
  bool all_ok = true;
  if (argc <= 1) {
    std::printf("no snapshot given; generating a synthetic world...\n");
    datagen::WorldConfig cfg;
    cfg.seed = 2020;
    datagen::World world = datagen::World::Generate(cfg);
    all_ok = AuditNet(world.net(), "gold net");
  }
  for (int i = 1; i < argc; ++i) {
    auto net = kg::LoadConceptNet(argv[i]);
    if (!net.ok()) {
      std::printf("[%s] cannot load: %s\n", argv[i],
                  net.status().ToString().c_str());
      all_ok = false;
      continue;
    }
    all_ok = AuditNet(*net, argv[i]) && all_ok;
  }
  return all_ok ? 0 : 1;
}
