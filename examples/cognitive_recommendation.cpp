// Cognitive recommendation demo (Figure 2b + Section 8.2.1): infer a user's
// latent needs from their clicks and present concept cards, next to what
// plain item-CF would show.
//
//   build/examples/cognitive_recommendation [user_index]

#include <cstdio>
#include <cstdlib>

#include "apps/recommender.h"
#include "datagen/world.h"

using namespace alicoco;

int main(int argc, char** argv) {
  datagen::WorldConfig cfg;
  cfg.seed = 7;
  cfg.num_items = 800;
  cfg.num_users = 150;
  datagen::World world = datagen::World::Generate(cfg);
  const kg::ConceptNet& net = world.net();

  size_t user_index =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  user_index %= world.user_histories().size();
  const auto& user = world.user_histories()[user_index];

  std::printf("user #%zu clicked %zu items:\n", user_index,
              user.clicked.size());
  for (kg::ItemId item : user.clicked) {
    std::printf("   ");
    for (const auto& t : net.Get(item).title) std::printf("%s ", t.c_str());
    std::printf("\n");
  }
  std::printf("(hidden gold needs:");
  for (kg::EcConceptId need : user.needs) {
    std::printf(" \"%s\"", net.Get(need).surface.c_str());
  }
  std::printf(")\n\n");

  // Classic item-CF.
  apps::ItemCf cf;
  cf.Fit(world.user_histories());
  std::printf("item-CF would recommend (lookalike items):\n");
  for (kg::ItemId item : cf.Recommend(user, 4)) {
    std::printf("   ");
    for (const auto& t : net.Get(item).title) std::printf("%s ", t.c_str());
    std::printf("\n");
  }

  // Concept cards (the salesperson guessing your needs).
  apps::CognitiveRecommender cognitive(&net);
  std::printf("\nconcept cards (user-needs driven, Figure 2b):\n");
  for (const auto& card : cognitive.Recommend(user, 3, 4)) {
    std::printf("  [card] \"%s\" (score %.2f)\n",
                net.Get(card.concept_id).surface.c_str(), card.score);
    for (kg::ItemId item : card.items) {
      std::printf("     ");
      for (const auto& t : net.Get(item).title) std::printf("%s ", t.c_str());
      std::printf("\n");
    }
  }
  return 0;
}
