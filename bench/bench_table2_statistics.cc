// Reproduces Table 2: overall statistics of the constructed AliCoCo.
//
// Runs the full construction pipeline on the bench world and prints the
// statistics of the BUILT net in the paper's row structure (scaled-down
// counts; the paper's net holds 2.8M primitive concepts, 5.3M e-commerce
// concepts, >3B items, >400B relations), plus the per-stage build report
// and the quality of the built net against the gold world.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "kg/stats.h"
#include "pipeline/builder.h"

int main() {
  using namespace alicoco;
  std::printf(
      "== Table 2: statistics of the constructed AliCoCo ==\n"
      "Paper (full scale): 2,853,276 primitive / 5,262,063 e-commerce "
      "concepts, >3B items, >400B relations, 98%% item linkage, 14 primitive "
      "+ 135 e-commerce concepts per item.\n\n");

  datagen::World world = [] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(bench::BenchWorldConfig());
  }();
  auto resources = [&] {
    bench::StageTimer t("train embeddings + LM");
    return std::make_unique<datagen::WorldResources>(
        world, datagen::ResourcesConfig{});
  }();

  pipeline::PipelineConfig cfg;
  cfg.labeler.epochs = 3;
  cfg.mining_epochs = 2;
  cfg.projection.epochs = 3;
  cfg.classifier.epochs = 3;
  cfg.tagger.epochs = 4;
  cfg.matcher.base.epochs = 2;
  cfg.association_candidates = 120;

  pipeline::AliCoCoBuilder builder(&world, resources.get(), cfg);
  pipeline::BuildReport report;
  Result<kg::ConceptNet> net = [&] {
    bench::StageTimer t("full construction pipeline");
    return builder.Build(&report);
  }();
  if (!net.ok()) {
    std::printf("pipeline failed: %s\n", net.status().ToString().c_str());
    return 1;
  }

  std::printf("\n-- Build report --\n%s\n", report.Summary().c_str());
  std::printf("-- Table 2 (measured, scaled-down world) --\n%s\n",
              kg::StatisticsToTable(kg::ComputeStatistics(*net)).c_str());

  auto cmp = pipeline::AliCoCoBuilder::CompareToGold(*net, world);
  TablePrinter quality("Built net vs gold world");
  quality.SetHeader({"metric", "value"});
  quality.AddRow({"primitive precision",
                  TablePrinter::Num(cmp.primitive_precision, 3)});
  quality.AddRow({"primitive recall",
                  TablePrinter::Num(cmp.primitive_recall, 3)});
  quality.AddRow({"isA precision", TablePrinter::Num(cmp.isa_precision, 3)});
  quality.AddRow({"isA recall", TablePrinter::Num(cmp.isa_recall, 3)});
  quality.AddRow({"e-commerce concept precision",
                  TablePrinter::Num(cmp.ec_precision, 3)});
  quality.AddRow({"item-ec link precision",
                  TablePrinter::Num(cmp.item_link_precision, 3)});
  quality.AddRow({"item-ec link recall",
                  TablePrinter::Num(cmp.item_link_recall, 3)});
  quality.Print();

  std::printf(
      "\nShape check: all 20 domains populated; relations dominated by "
      "item links, as in the paper.\n");
  return 0;
}
