// Shared setup for the table/figure reproduction harnesses: a bench-scale
// world configuration and wall-clock reporting on the observability layer.
// Every harness prints the paper's rows plus the measured values on the
// synthetic world; stage timings additionally land as spans in the bench
// tracer and as latency histograms in the bench registry, so any harness
// can be dumped via obs::ExportPrometheusText / ExportTraceJsonl.

#ifndef ALICOCO_BENCH_BENCH_UTIL_H_
#define ALICOCO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "datagen/resources.h"
#include "datagen/world.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alicoco::bench {

/// The standard world every harness uses (unless it needs its own knobs).
inline datagen::WorldConfig BenchWorldConfig() {
  datagen::WorldConfig cfg;
  cfg.seed = 2020;
  cfg.heads_per_leaf = 2;
  cfg.derived_per_head = 4;
  cfg.per_domain_vocab = 15;
  cfg.num_events = 14;
  cfg.num_items = 1500;
  cfg.num_good_ec_concepts = 250;
  cfg.num_bad_ec_concepts = 250;
  cfg.titles = 2500;
  cfg.reviews = 1000;
  cfg.guides = 800;
  cfg.queries = 600;
  cfg.num_users = 200;
  cfg.num_needs_queries = 600;
  return cfg;
}

/// Process-wide tracer shared by every harness stage timer.
inline obs::Tracer& BenchTracer() {
  static obs::Tracer tracer;
  return tracer;
}

/// Process-wide metrics registry for harness instrumentation.
inline obs::Registry& BenchRegistry() {
  static obs::Registry registry;
  return registry;
}

/// RAII wall-clock stage timer: prints "[stage] ... Ns" on destruction.
/// Built on the observability layer: each timed stage is a span named
/// `bench.<stage>` in BenchTracer() and an observation in the
/// `bench.stage_ms` histogram of BenchRegistry().
class StageTimer {
 public:
  explicit StageTimer(const char* stage)
      : stage_(stage), span_(&BenchTracer(), std::string("bench.") + stage) {
    std::printf("[%s] ...\n", stage);
    std::fflush(stdout);
  }
  ~StageTimer() {
    double elapsed_ms =
        static_cast<double>(span_.ElapsedUs()) / 1000.0;
    BenchRegistry().GetHistogram("bench.stage_ms")->Observe(elapsed_ms);
    std::printf("[%s] done in %.1fs\n", stage_, elapsed_ms / 1000.0);
    std::fflush(stdout);
  }

 private:
  const char* stage_;
  obs::ScopedSpan span_;
};

}  // namespace alicoco::bench

#endif  // ALICOCO_BENCH_BENCH_UTIL_H_
