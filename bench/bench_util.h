// Shared setup for the table/figure reproduction harnesses: a bench-scale
// world configuration and simple wall-clock reporting. Every harness prints
// the paper's rows plus the measured values on the synthetic world.

#ifndef ALICOCO_BENCH_BENCH_UTIL_H_
#define ALICOCO_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>

#include "datagen/resources.h"
#include "datagen/world.h"

namespace alicoco::bench {

/// The standard world every harness uses (unless it needs its own knobs).
inline datagen::WorldConfig BenchWorldConfig() {
  datagen::WorldConfig cfg;
  cfg.seed = 2020;
  cfg.heads_per_leaf = 2;
  cfg.derived_per_head = 4;
  cfg.per_domain_vocab = 15;
  cfg.num_events = 14;
  cfg.num_items = 1500;
  cfg.num_good_ec_concepts = 250;
  cfg.num_bad_ec_concepts = 250;
  cfg.titles = 2500;
  cfg.reviews = 1000;
  cfg.guides = 800;
  cfg.queries = 600;
  cfg.num_users = 200;
  cfg.num_needs_queries = 600;
  return cfg;
}

/// RAII wall-clock stage timer: prints "[stage] ... Ns" on destruction.
class StageTimer {
 public:
  explicit StageTimer(const char* stage)
      : stage_(stage), start_(std::chrono::steady_clock::now()) {
    std::printf("[%s] ...\n", stage);
    std::fflush(stdout);
  }
  ~StageTimer() {
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
    std::printf("[%s] done in %.1fs\n", stage_,
                static_cast<double>(elapsed) / 1000.0);
    std::fflush(stdout);
  }

 private:
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace alicoco::bench

#endif  // ALICOCO_BENCH_BENCH_UTIL_H_
