// Reproduces Table 5: the concept-tagging ablation (Section 7.5).
//
// Paper F1: baseline 0.8523 -> +fuzzy CRF 0.8703 -> +fuzzy & knowledge
// 0.8772.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "datagen/grammar.h"
#include "tagging/concept_tagger.h"
#include "text/tokenizer.h"

int main() {
  using namespace alicoco;
  std::printf(
      "== Table 5: concept tagging ablation ==\n"
      "Paper F1: 0.8523 / 0.8703 / 0.8772.\n\n");

  datagen::WorldConfig wc = bench::BenchWorldConfig();
  wc.ambiguous_fraction = 0.2;  // ensure plenty of fuzzy supervision
  datagen::World world = [&] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(wc);
  }();
  auto resources = [&] {
    bench::StageTimer t("train embeddings + LM");
    return std::make_unique<datagen::WorldResources>(
        world, datagen::ResourcesConfig{});
  }();

  Rng rng(9);
  auto tagged = world.tagged_concepts();
  std::vector<size_t> order(tagged.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<tagging::TaggedExample> train, test;
  for (size_t i = 0; i < order.size(); ++i) {
    const auto& t = tagged[order[i]];
    tagging::TaggedExample ex{t.tokens, t.allowed_iob};
    if (i < order.size() * 15 / 100) {
      train.push_back(std::move(ex));
    } else {
      test.push_back(std::move(ex));
    }
  }
  std::printf(
      "dataset: %zu manual train / %zu test concepts (label-starved)\n\n",
      train.size(), test.size());

  tagging::TaggerResources res;
  res.pos_tagger = &world.pos_tagger();
  res.context_matrix = &resources->context_matrix();
  res.corpus_vocab = &resources->vocab();

  struct Variant {
    const char* label;
    const char* paper_f1;
    bool fuzzy, knowledge;
  };
  const Variant kVariants[] = {
      {"Baseline (BiLSTM-CRF)", "0.8523", false, false},
      {"+Fuzzy CRF", "0.8703", true, false},
      {"+Fuzzy CRF & Knowledge", "0.8772", true, true},
  };

  TablePrinter table("Table 5 (measured)");
  table.SetHeader({"Model", "Precision", "Recall", "F1", "Paper F1"});
  for (const auto& variant : kVariants) {
    bench::StageTimer t(variant.label);
    tagging::ConceptTaggerConfig cfg;
    cfg.use_fuzzy_crf = variant.fuzzy;
    cfg.use_knowledge = variant.knowledge;
    cfg.epochs = 5;
    tagging::ConceptTagger tagger(cfg, res);
    tagger.Train(train);
    auto m = tagger.Evaluate(test);
    table.AddRow({variant.label, TablePrinter::Num(m.precision, 4),
                  TablePrinter::Num(m.recall, 4), TablePrinter::Num(m.f1, 4),
                  variant.paper_f1});
  }
  table.Print();

  // Second regime: the paper augments the manual set with 24k distant-
  // supervision pairs; measure that lift on the full model.
  {
    text::MaxMatchSegmenter seed_dict;
    for (const auto& [surface, domain] : world.seed_dictionary()) {
      seed_dict.AddPhrase(text::Tokenize(surface), domain);
    }
    std::vector<std::vector<std::string>> phrases;
    for (const auto& c : world.concept_candidates()) {
      if (c.good) phrases.push_back(c.tokens);
    }
    auto distant = tagging::BuildDistantExamples(
        seed_dict, phrases, datagen::CarrierVocabulary());
    auto augmented = train;
    augmented.insert(augmented.end(), distant.begin(), distant.end());

    TablePrinter aug("Distant-supervision augmentation (full model)");
    aug.SetHeader({"training data", "Precision", "Recall", "F1"});
    for (bool with_distant : {false, true}) {
      bench::StageTimer t(with_distant ? "manual + distant" : "manual only");
      tagging::ConceptTaggerConfig cfg;
      cfg.epochs = 5;
      tagging::ConceptTagger tagger(cfg, res);
      tagger.Train(with_distant ? augmented : train);
      auto m = tagger.Evaluate(test);
      aug.AddRow({with_distant
                      ? StringPrintf("manual (%zu) + distant (%zu)",
                                     train.size(), distant.size())
                      : StringPrintf("manual (%zu)", train.size()),
                  TablePrinter::Num(m.precision, 4),
                  TablePrinter::Num(m.recall, 4),
                  TablePrinter::Num(m.f1, 4)});
    }
    aug.Print();
  }
  std::printf(
      "\nShape check: in the label-starved regime fuzzy CRF should beat the "
      "strict baseline and knowledge should help further; distant "
      "supervision should lift the full model towards saturation (why the "
      "paper's absolute F1 is high).\n");
  return 0;
}
