// Reproduces Table 3 and Figure 9 (right): active-learning sampling
// strategies for hypernym discovery (Section 7.3).
//
// Paper's shape: all AL strategies reach a target MAP with fewer labels
// than Random; UCS is the most economical and also reaches the highest
// best-MAP. Absolute numbers differ (synthetic world, small embeddings).

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "hypernym/active_learning.h"

int main() {
  using namespace alicoco;
  std::printf(
      "== Table 3 / Figure 9 (right): active learning for hypernym "
      "discovery ==\n"
      "Paper: Random 500k | US 375k (-150k) | CS 400k (-100k) | "
      "UCS 325k (-175k) labels to a shared MAP target; best-MAP order "
      "UCS > US > Random > CS.\n\n");

  datagen::World world = [] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(bench::BenchWorldConfig());
  }();
  auto resources = [&] {
    bench::StageTimer t("train embeddings + LM");
    return std::make_unique<datagen::WorldResources>(
        world, datagen::ResourcesConfig{});
  }();

  hypernym::HypernymDataset dataset;
  {
    bench::StageTimer t("build hypernym dataset (N=100)");
    dataset = hypernym::BuildHypernymDataset(
        world.hypernym_gold(), world.category_vocabulary(),
        /*negatives_per_positive=*/100, /*test_candidates=*/50, 11);
    std::printf("  pool %zu pairs, %zu test queries\n", dataset.pool.size(),
                dataset.test.size());
  }

  hypernym::ActiveLearningConfig cfg;
  cfg.per_round = dataset.pool.size() / 40;
  cfg.max_rounds = 24;
  cfg.patience = 4;
  cfg.model.epochs = 2;

  hypernym::ActiveLearner learner(&resources->embeddings(),
                                  &resources->vocab(), cfg);
  const hypernym::SamplingStrategy kStrategies[] = {
      hypernym::SamplingStrategy::kRandom,
      hypernym::SamplingStrategy::kUncertainty,
      hypernym::SamplingStrategy::kConfidence,
      hypernym::SamplingStrategy::kUcs};
  constexpr int kSeeds = 3;

  // Per strategy, averaged over seeds: labels to a per-seed shared target
  // (97% of that seed's weakest best-MAP), best metrics.
  double labels_sum[4] = {0, 0, 0, 0};
  double map_sum[4] = {0, 0, 0, 0};
  double mrr_sum[4] = {0, 0, 0, 0};
  double p1_sum[4] = {0, 0, 0, 0};
  double best_at_sum[4] = {0, 0, 0, 0};
  double target_sum = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    bench::StageTimer t("seed run (4 strategies)");
    hypernym::ActiveLearningResult results[4];
    for (int s = 0; s < 4; ++s) {
      results[s] = learner.Run(kStrategies[s], dataset, 7 + seed);
    }
    double weakest = 1.0;
    for (const auto& r : results) weakest = std::min(weakest, r.best_map);
    double target = weakest * 0.97;
    target_sum += target;
    for (int s = 0; s < 4; ++s) {
      labels_sum[s] += static_cast<double>(results[s].LabeledToReach(target));
      const auto* best_round = &results[s].rounds.back();
      for (const auto& r : results[s].rounds) {
        if (r.labeled_total == results[s].labeled_at_best) best_round = &r;
      }
      map_sum[s] += best_round->metrics.map;
      mrr_sum[s] += best_round->metrics.mrr;
      p1_sum[s] += best_round->metrics.p_at_1;
      best_at_sum[s] += static_cast<double>(results[s].labeled_at_best);
    }
  }

  TablePrinter table(StringPrintf(
      "Table 3 (measured, mean of %d seeds): labels to reach the shared "
      "MAP target (mean target %.3f)",
      kSeeds, target_sum / kSeeds));
  table.SetHeader({"Strategy", "Labeled Size", "MRR", "MAP", "P@1",
                   "Reduce vs Random"});
  for (int s = 0; s < 4; ++s) {
    double labels = labels_sum[s] / kSeeds;
    double reduce = labels_sum[0] / kSeeds - labels;
    table.AddRow({hypernym::StrategyName(kStrategies[s]),
                  TablePrinter::Num(labels, 0),
                  TablePrinter::Num(mrr_sum[s] / kSeeds, 4),
                  TablePrinter::Num(map_sum[s] / kSeeds, 4),
                  TablePrinter::Num(p1_sum[s] / kSeeds, 4),
                  s == 0 ? "-" : TablePrinter::Num(reduce, 0)});
  }
  table.Print();

  TablePrinter fig(
      "Figure 9 right (measured, mean of 3 seeds): best MAP per strategy");
  fig.SetHeader({"Strategy", "best MAP", "labels at best"});
  for (int s = 0; s < 4; ++s) {
    fig.AddRow({hypernym::StrategyName(kStrategies[s]),
                TablePrinter::Num(map_sum[s] / kSeeds, 4),
                TablePrinter::Num(best_at_sum[s] / kSeeds, 0)});
  }
  fig.Print();

  std::printf(
      "\nShape check: every AL strategy should reach the target with fewer "
      "labels than Random, and UCS should have the highest best-MAP (US/CS/"
      "UCS differences are within noise at this scale).\n");
  return 0;
}
