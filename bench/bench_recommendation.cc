// Reproduces Section 8.2.1: cognitive recommendation (concept cards) vs
// item-based CF.
//
// Paper: concept cards ran in production for over a year with high CTR and
// GMV; a user survey found they bring more novelty and satisfaction than
// behavior-lookalike recommendation.

#include <cstdio>

#include "apps/recommender.h"
#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace alicoco;
  std::printf(
      "== Section 8.2.1: cognitive recommendation vs item-CF ==\n"
      "Paper: concept cards add novelty and satisfy latent needs that "
      "item-CF cannot reach.\n\n");

  datagen::World world = [] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(bench::BenchWorldConfig());
  }();

  apps::RecommendationReport report;
  {
    bench::StageTimer t("fit CF + run both recommenders");
    report = apps::CompareRecommenders(world, /*k_items=*/12,
                                       /*num_cards=*/3);
  }

  TablePrinter table("Recommendation comparison (measured)");
  table.SetHeader({"metric", "item-CF", "concept cards"});
  table.AddRow({"need-satisfying item rate",
                TablePrinter::Num(report.cf_need_item_rate, 3),
                TablePrinter::Num(report.cog_need_item_rate, 3)});
  table.AddRow({"category novelty", TablePrinter::Num(report.cf_novelty, 3),
                TablePrinter::Num(report.cognitive_novelty, 3)});
  table.AddRow({"latent-need hit rate (per user)", "-",
                TablePrinter::Num(report.needs_hit_rate, 3)});
  table.Print();
  std::printf(
      "\nShape check: concept cards should satisfy gold needs at a much "
      "higher rate than item-CF while still surfacing novel categories, and "
      "most users should see at least one of their true needs as a card.\n");
  return 0;
}
