// obs_report: the observability harness and perf-trajectory gate.
//
// Runs the bench world through the full construction pipeline with the
// tracer + metrics registry + profiling tier attached and writes the
// run's whole picture into --outdir:
//
//   BENCH_pipeline.json  per-stage wall time + domain counters (--out)
//   BENCH_profile.json   per-stage cpu/lock-wait/queue-wait/alloc
//                        attribution + disabled-mode overhead proof
//                        (--profile-out, schema alicoco.bench_profile.v1)
//   profile.collapsed    collapsed-stack CPU samples (flamegraph input)
//   metrics.prom         Prometheus text exposition of every metric,
//                        including per-named-mutex contention series
//   trace.jsonl          every span, including nested stage detail
//   build.log            Logger records routed through obs::FileLogSink
//   crash_flight.jsonl   flight-recorder dump — only on CHECK failure
//                        or fatal signal
//
// Gates (all exit 1 on failure):
//   --baseline FILE          wall-time gate per stage, as before
//   --profile-baseline FILE  cpu-time gate per stage (CompareBenchProfile)
//   --overhead-limit PCT     projected idle instrumentation cost must
//                            stay under PCT% of total wall (default 1.0)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/lock_stats.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/table_printer.h"
#include "obs/exporters.h"
#include "obs/pipeline_profile.h"
#include "obs/prof/bench_profile.h"
#include "obs/prof/cpu_profiler.h"
#include "obs/prof/flight_recorder.h"
#include "obs/prof/heap_stats.h"
#include "obs/prof/lock_metrics.h"
#include "pipeline/builder.h"

namespace {

using alicoco::obs::prof::DisabledOverhead;

struct Options {
  std::string out = "BENCH_pipeline.json";
  std::string profile_out = "BENCH_profile.json";
  std::string outdir = ".";
  std::string baseline;          // empty = no gate
  std::string profile_baseline;  // empty = no gate
  double max_regress = 2.0;      // tolerant: CI machines are noisy
  double slack_ms = 250.0;       // absolute floor for tiny stages
  double overhead_limit = 1.0;   // % of total wall time
  int cpu_hz = 197;
  bool fast = false;             // smaller world for smoke runs
};

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->out = v;
    } else if (arg == "--profile-out") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->profile_out = v;
    } else if (arg == "--outdir") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->outdir = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->baseline = v;
    } else if (arg == "--profile-baseline") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->profile_baseline = v;
    } else if (arg == "--max-regress") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->max_regress = std::atof(v);
    } else if (arg == "--slack-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->slack_ms = std::atof(v);
    } else if (arg == "--overhead-limit") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->overhead_limit = std::atof(v);
    } else if (arg == "--cpu-hz") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->cpu_hz = std::atoi(v);
    } else if (arg == "--fast") {
      opts->fast = true;
    } else {
      std::fprintf(
          stderr,
          "usage: obs_report [--out FILE] [--profile-out FILE] "
          "[--outdir DIR] [--baseline FILE] [--profile-baseline FILE] "
          "[--max-regress X] [--slack-ms MS] [--overhead-limit PCT] "
          "[--cpu-hz HZ] [--fast]\n");
      return false;
    }
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "obs_report: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

/// Routes one record to both the file sink and the flight recorder.
class TeeLogSink : public alicoco::LogSink {
 public:
  TeeLogSink(alicoco::LogSink* a, alicoco::LogSink* b) : a_(a), b_(b) {}
  void Write(const alicoco::LogRecord& record) override {
    if (a_ != nullptr) a_->Write(record);
    if (b_ != nullptr) b_->Write(record);
  }

 private:
  alicoco::LogSink* const a_;
  alicoco::LogSink* const b_;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-operation idle cost of the always-compiled-in instrumentation,
/// by paired microloops. A whole-pipeline A/B would drown a sub-1%
/// signal in CI noise; a per-op delta taken as the min over repetitions
/// (minimum = least scheduler interference) multiplied by the run's real
/// operation counts is stable.
DisabledOverhead MeasureDisabledOverhead(uint64_t lock_ops,
                                         uint64_t alloc_ops,
                                         double total_ms) {
  using alicoco::Mutex;
  constexpr int kIters = 200000;
  constexpr int kReps = 5;

  // No sink may be installed during this measurement: we are pricing the
  // "compiled in, nobody listening" configuration the binary ships with.
  alicoco::InstallLockStatsSink(nullptr);
  alicoco::obs::prof::SetHeapTrackingEnabled(false);

  double lock_delta_ns = 1e9;
  for (int rep = 0; rep < kReps; ++rep) {
    Mutex named{"overhead.probe"};
    Mutex plain;
    uint64_t t0 = NowNs();
    for (int i = 0; i < kIters; ++i) {
      named.lock();
      named.unlock();
    }
    uint64_t t1 = NowNs();
    for (int i = 0; i < kIters; ++i) {
      plain.lock();
      plain.unlock();
    }
    uint64_t t2 = NowNs();
    double delta = (static_cast<double>(t1 - t0) -
                    static_cast<double>(t2 - t1)) /
                   kIters;
    lock_delta_ns = std::min(lock_delta_ns, delta);
  }

  double alloc_delta_ns = 1e9;
  for (int rep = 0; rep < kReps; ++rep) {
    uint64_t t0 = NowNs();
    for (int i = 0; i < kIters; ++i) {
      // Out-of-line volatile probe (alloc_hook.cc): the allocation cannot
      // be elided, and the call overhead matches the malloc loop below so
      // it cancels in the subtraction.
      alicoco::obs::prof::HeapProbeAlloc(64);
    }
    uint64_t t1 = NowNs();
    for (int i = 0; i < kIters; ++i) {
      alicoco::obs::prof::HeapProbeMalloc(64);
    }
    uint64_t t2 = NowNs();
    double delta = (static_cast<double>(t1 - t0) -
                    static_cast<double>(t2 - t1)) /
                   kIters;
    alloc_delta_ns = std::min(alloc_delta_ns, delta);
  }

  DisabledOverhead overhead;
  overhead.per_lock_ns = std::max(0.0, lock_delta_ns);
  overhead.per_alloc_ns = std::max(0.0, alloc_delta_ns);
  overhead.lock_ops = lock_ops;
  overhead.alloc_ops = alloc_ops;
  const double projected_ns =
      overhead.per_lock_ns * static_cast<double>(lock_ops) +
      overhead.per_alloc_ns * static_cast<double>(alloc_ops);
  overhead.pct_of_total =
      total_ms > 0 ? projected_ns / (total_ms * 1e6) * 100.0 : 0;
  return overhead;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alicoco;
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) return 2;

  obs::Tracer tracer;
  obs::Registry registry;

  // Profiling tier: flight recorder first (so crash dumps cover world
  // generation too), then contention sink, heap tracking, CPU profiler.
  obs::prof::FlightRecorder recorder(2048);
  recorder.InstallCrashDump(opts.outdir + "/crash_flight.jsonl");
  tracer.SetSpanListener(obs::prof::MakeSpanFlightListener(&recorder));

  obs::prof::LockContentionMetrics lock_metrics(&registry);
  ScopedLockStatsSink scoped_sink(&lock_metrics);

  obs::prof::SetHeapTrackingEnabled(true);
  if (!obs::prof::HeapHookLinked()) {
    std::fprintf(stderr,
                 "obs_report: alloc hook not linked; alloc columns will "
                 "read 0\n");
  }

  obs::FileLogSink log_sink(opts.outdir + "/build.log");
  obs::prof::FlightRecorderLogSink flight_log_sink(&recorder);
  TeeLogSink tee(log_sink.status().ok() ? &log_sink : nullptr,
                 &flight_log_sink);
  if (!log_sink.status().ok()) {
    std::fprintf(stderr, "obs_report: %s (logging to stderr)\n",
                 log_sink.status().ToString().c_str());
  }
  Logger::SetSink(&tee);

  datagen::WorldConfig world_cfg = bench::BenchWorldConfig();
  if (opts.fast) {
    world_cfg.num_items = 400;
    world_cfg.titles = 800;
    world_cfg.reviews = 300;
    world_cfg.guides = 250;
    world_cfg.queries = 200;
    world_cfg.num_good_ec_concepts = 80;
    world_cfg.num_bad_ec_concepts = 80;
    world_cfg.num_users = 50;
    world_cfg.num_needs_queries = 150;
  }

  std::printf("== obs_report: instrumented pipeline run (%s world) ==\n",
              opts.fast ? "fast" : "bench");
  recorder.Record("obs_report start");
  datagen::World world = [&] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(world_cfg);
  }();
  auto resources = [&] {
    bench::StageTimer t("train embeddings + LM");
    return std::make_unique<datagen::WorldResources>(
        world, datagen::ResourcesConfig{});
  }();

  obs::prof::StageProfiler stage_profiler(
      &lock_metrics, &registry, "pipeline.worker_pool.queue_wait_us");

  pipeline::PipelineConfig cfg;
  cfg.labeler.epochs = 3;
  cfg.mining_epochs = 2;
  cfg.projection.epochs = 3;
  cfg.classifier.epochs = 3;
  cfg.tagger.epochs = 4;
  cfg.matcher.base.epochs = 2;
  cfg.association_candidates = opts.fast ? 60 : 120;
  cfg.tracer = &tracer;
  cfg.metrics = &registry;
  cfg.stage_profiler = &stage_profiler;

  obs::prof::CpuProfiler cpu_profiler;
  obs::prof::CpuProfilerOptions prof_opts;
  prof_opts.sample_hz = opts.cpu_hz;
  Status prof_status = cpu_profiler.Start(prof_opts);
  if (!prof_status.ok()) {
    std::fprintf(stderr, "obs_report: cpu profiler unavailable: %s\n",
                 prof_status.ToString().c_str());
  }

  pipeline::AliCoCoBuilder builder(&world, resources.get(), cfg);
  pipeline::BuildReport report;
  Result<kg::ConceptNet> net = [&] {
    bench::StageTimer t("instrumented construction pipeline");
    return builder.Build(&report);
  }();
  if (cpu_profiler.running()) {
    Status stop = cpu_profiler.Stop();
    if (!stop.ok()) {
      std::fprintf(stderr, "obs_report: profiler stop: %s\n",
                   stop.ToString().c_str());
    }
  }
  obs::prof::HeapCounters heap_at_end = obs::prof::HeapCountersNow();
  Logger::SetSink(nullptr);
  recorder.Record("pipeline done");
  if (!net.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 net.status().ToString().c_str());
    return 1;
  }

  std::vector<obs::SpanRecord> spans = tracer.Records();
  obs::PipelineProfile profile = obs::BuildPipelineProfile(spans, registry);
  profile.world = opts.fast ? "bench-fast" : "bench";

  // ---- BENCH_profile.json: attribution + overhead proof ----
  obs::prof::BenchProfile bench_profile;
  bench_profile.world = profile.world;
  bench_profile.stages = stage_profiler.TakeStages();
  bench_profile.total_ms = profile.total_ms;
  for (const auto& stage : bench_profile.stages) {
    bench_profile.total_cpu_ms += stage.cpu_ms;
  }
  bench_profile.peak_rss_mb =
      static_cast<double>(obs::prof::PeakRssBytes()) / (1024.0 * 1024.0);
  bench_profile.heap_tracked = obs::prof::HeapHookLinked();
  bench_profile.overhead = MeasureDisabledOverhead(
      lock_metrics.total_acquires(), heap_at_end.allocs, profile.total_ms);

  obs::prof::CpuProfile cpu_profile = cpu_profiler.TakeProfile();

  bool io_ok = WriteFile(opts.out, profile.ToJson());
  io_ok &= WriteFile(opts.profile_out, bench_profile.ToJson());
  io_ok &= WriteFile(opts.outdir + "/profile.collapsed",
                     cpu_profile.ToCollapsed());
  io_ok &= WriteFile(opts.outdir + "/metrics.prom",
                     obs::ExportPrometheusText(registry));
  io_ok &= WriteFile(opts.outdir + "/trace.jsonl",
                     obs::ExportTraceJsonl(spans));

  TablePrinter table("Per-stage attribution (" + profile.world + " world)");
  table.SetHeader({"stage", "wall_ms", "cpu_ms", "lock_wait_ms",
                   "queue_wait_ms", "alloc_mb"});
  for (const auto& stage : bench_profile.stages) {
    table.AddRow({stage.name, TablePrinter::Num(stage.wall_ms, 1),
                  TablePrinter::Num(stage.cpu_ms, 1),
                  TablePrinter::Num(stage.lock_wait_ms, 2),
                  TablePrinter::Num(stage.queue_wait_ms, 2),
                  TablePrinter::Num(stage.alloc_mb, 1)});
  }
  table.Print();
  std::printf(
      "total: %.1fms wall, %.1fms cpu, peak rss %.0fMB, %zu spans, "
      "%llu cpu samples (%llu dropped)\n",
      profile.total_ms, bench_profile.total_cpu_ms,
      bench_profile.peak_rss_mb, spans.size(),
      static_cast<unsigned long long>(cpu_profile.samples),
      static_cast<unsigned long long>(cpu_profile.dropped));
  std::fputs(cpu_profile.TopNText(10).c_str(), stdout);
  std::printf(
      "disabled-mode overhead: %.2fns/lock x %llu + %.2fns/alloc x %llu "
      "= %.4f%% of wall\n",
      bench_profile.overhead.per_lock_ns,
      static_cast<unsigned long long>(bench_profile.overhead.lock_ops),
      bench_profile.overhead.per_alloc_ns,
      static_cast<unsigned long long>(bench_profile.overhead.alloc_ops),
      bench_profile.overhead.pct_of_total);

  if (!io_ok) return 1;

  // ---- Gate: idle instrumentation must stay under the limit ----
  if (bench_profile.overhead.pct_of_total >= opts.overhead_limit) {
    std::fprintf(stderr,
                 "OVERHEAD: disabled-mode instrumentation projects to "
                 "%.4f%% of wall time (limit %.2f%%)\n",
                 bench_profile.overhead.pct_of_total, opts.overhead_limit);
    return 1;
  }

  // ---- Gate: wall-time trajectory vs committed baseline ----
  if (!opts.baseline.empty()) {
    std::ifstream in(opts.baseline, std::ios::binary);
    if (!in.is_open()) {
      std::fprintf(stderr, "obs_report: cannot read baseline %s\n",
                   opts.baseline.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Result<obs::PipelineProfile> baseline =
        obs::PipelineProfile::FromJson(text.str());
    if (!baseline.ok()) {
      std::fprintf(stderr, "obs_report: bad baseline: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> regressions = obs::CompareToBaseline(
        *baseline, profile, opts.max_regress, opts.slack_ms);
    if (!regressions.empty()) {
      for (const auto& line : regressions) {
        std::fprintf(stderr, "REGRESSION: %s\n", line.c_str());
      }
      return 1;
    }
    std::printf("baseline gate passed (max-regress %.1fx, slack %.0fms)\n",
                opts.max_regress, opts.slack_ms);
  }

  // ---- Gate: cpu-time trajectory vs committed profile baseline ----
  if (!opts.profile_baseline.empty()) {
    std::ifstream in(opts.profile_baseline, std::ios::binary);
    if (!in.is_open()) {
      std::fprintf(stderr, "obs_report: cannot read profile baseline %s\n",
                   opts.profile_baseline.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Result<obs::prof::BenchProfile> baseline =
        obs::prof::BenchProfile::FromJson(text.str());
    if (!baseline.ok()) {
      std::fprintf(stderr, "obs_report: bad profile baseline: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> regressions = obs::prof::CompareBenchProfile(
        *baseline, bench_profile, opts.max_regress, opts.slack_ms);
    if (!regressions.empty()) {
      for (const auto& line : regressions) {
        std::fprintf(stderr, "REGRESSION: %s\n", line.c_str());
      }
      return 1;
    }
    std::printf(
        "profile baseline gate passed (max-regress %.1fx, slack %.0fms)\n",
        opts.max_regress, opts.slack_ms);
  }
  return 0;
}
