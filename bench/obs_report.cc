// obs_report: the observability harness and perf-trajectory gate.
//
// Runs the bench world through the full construction pipeline with the
// tracer + metrics registry attached and writes the run's whole picture
// into --outdir:
//
//   BENCH_pipeline.json  per-stage wall time + domain counters (--out)
//   metrics.prom         Prometheus text exposition of every metric
//   trace.jsonl          every span, including nested stage detail
//   build.log            Logger records routed through obs::FileLogSink
//
// With --baseline <committed BENCH_pipeline.json> the run becomes a gate:
// any stage slower than baseline * --max-regress + --slack-ms (or missing
// entirely) fails with exit 1. tools/ci.sh runs exactly that against the
// repo-root baseline.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "obs/exporters.h"
#include "obs/pipeline_profile.h"
#include "pipeline/builder.h"

namespace {

struct Options {
  std::string out = "BENCH_pipeline.json";
  std::string outdir = ".";
  std::string baseline;          // empty = no gate
  double max_regress = 2.0;      // tolerant: CI machines are noisy
  double slack_ms = 250.0;       // absolute floor for tiny stages
  bool fast = false;             // smaller world for smoke runs
};

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->out = v;
    } else if (arg == "--outdir") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->outdir = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->baseline = v;
    } else if (arg == "--max-regress") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->max_regress = std::atof(v);
    } else if (arg == "--slack-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->slack_ms = std::atof(v);
    } else if (arg == "--fast") {
      opts->fast = true;
    } else {
      std::fprintf(stderr,
                   "usage: obs_report [--out FILE] [--outdir DIR] "
                   "[--baseline FILE] [--max-regress X] [--slack-ms MS] "
                   "[--fast]\n");
      return false;
    }
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "obs_report: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alicoco;
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) return 2;

  obs::Tracer tracer;
  obs::Registry registry;

  obs::FileLogSink log_sink(opts.outdir + "/build.log");
  if (log_sink.status().ok()) {
    Logger::SetSink(&log_sink);
  } else {
    std::fprintf(stderr, "obs_report: %s (logging to stderr)\n",
                 log_sink.status().ToString().c_str());
  }

  datagen::WorldConfig world_cfg = bench::BenchWorldConfig();
  if (opts.fast) {
    world_cfg.num_items = 400;
    world_cfg.titles = 800;
    world_cfg.reviews = 300;
    world_cfg.guides = 250;
    world_cfg.queries = 200;
    world_cfg.num_good_ec_concepts = 80;
    world_cfg.num_bad_ec_concepts = 80;
    world_cfg.num_users = 50;
    world_cfg.num_needs_queries = 150;
  }

  std::printf("== obs_report: instrumented pipeline run (%s world) ==\n",
              opts.fast ? "fast" : "bench");
  datagen::World world = [&] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(world_cfg);
  }();
  auto resources = [&] {
    bench::StageTimer t("train embeddings + LM");
    return std::make_unique<datagen::WorldResources>(
        world, datagen::ResourcesConfig{});
  }();

  pipeline::PipelineConfig cfg;
  cfg.labeler.epochs = 3;
  cfg.mining_epochs = 2;
  cfg.projection.epochs = 3;
  cfg.classifier.epochs = 3;
  cfg.tagger.epochs = 4;
  cfg.matcher.base.epochs = 2;
  cfg.association_candidates = opts.fast ? 60 : 120;
  cfg.tracer = &tracer;
  cfg.metrics = &registry;

  pipeline::AliCoCoBuilder builder(&world, resources.get(), cfg);
  pipeline::BuildReport report;
  Result<kg::ConceptNet> net = [&] {
    bench::StageTimer t("instrumented construction pipeline");
    return builder.Build(&report);
  }();
  Logger::SetSink(nullptr);
  if (!net.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 net.status().ToString().c_str());
    return 1;
  }

  std::vector<obs::SpanRecord> spans = tracer.Records();
  obs::PipelineProfile profile = obs::BuildPipelineProfile(spans, registry);
  profile.world = opts.fast ? "bench-fast" : "bench";

  bool io_ok = WriteFile(opts.out, profile.ToJson());
  io_ok &= WriteFile(opts.outdir + "/metrics.prom",
                     obs::ExportPrometheusText(registry));
  io_ok &= WriteFile(opts.outdir + "/trace.jsonl",
                     obs::ExportTraceJsonl(spans));

  TablePrinter table("Per-stage profile (" + profile.world + " world)");
  table.SetHeader({"stage", "wall_ms", "counters"});
  for (const auto& stage : profile.stages) {
    std::ostringstream counters;
    size_t shown = 0;
    for (const auto& [name, value] : stage.counters) {
      if (shown++ > 0) counters << " ";
      counters << name << "=" << value;
      if (shown >= 3 && stage.counters.size() > 3) {
        counters << " (+" << stage.counters.size() - shown << ")";
        break;
      }
    }
    table.AddRow({stage.name, TablePrinter::Num(stage.wall_ms, 1),
                  counters.str()});
  }
  table.Print();
  std::printf("total: %.1fms over %zu stages, %zu spans, wrote %s\n",
              profile.total_ms, profile.stages.size(), spans.size(),
              opts.out.c_str());

  if (!io_ok) return 1;

  if (!opts.baseline.empty()) {
    std::ifstream in(opts.baseline, std::ios::binary);
    if (!in.is_open()) {
      std::fprintf(stderr, "obs_report: cannot read baseline %s\n",
                   opts.baseline.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Result<obs::PipelineProfile> baseline =
        obs::PipelineProfile::FromJson(text.str());
    if (!baseline.ok()) {
      std::fprintf(stderr, "obs_report: bad baseline: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> regressions = obs::CompareToBaseline(
        *baseline, profile, opts.max_regress, opts.slack_ms);
    if (!regressions.empty()) {
      for (const auto& line : regressions) {
        std::fprintf(stderr, "REGRESSION: %s\n", line.c_str());
      }
      return 1;
    }
    std::printf("baseline gate passed (max-regress %.1fx, slack %.0fms)\n",
                opts.max_regress, opts.slack_ms);
  }
  return 0;
}
