// Reproduces Section 8.1.1: search relevance with isA expansion.
//
// Paper: AliCoCo's 10x larger isA inventory improves the semantic matching
// AUC by ~1% absolute offline and cuts relevance bad cases by 4% online
// ("jacket isA top").

#include <cstdio>

#include "apps/search_relevance.h"
#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"

int main() {
  using namespace alicoco;
  std::printf(
      "== Section 8.1.1: search relevance with isA expansion ==\n"
      "Paper: +1%% AUC offline; -4%% relevance bad cases online.\n\n");

  datagen::World world = [] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(bench::BenchWorldConfig());
  }();
  apps::SearchRelevance relevance(&world.net());
  auto queries = relevance.BuildQueries(world, /*max_queries=*/32,
                                        /*items_per_query=*/80, 17);
  std::printf("queries: %zu hypernym-surface queries\n\n", queries.size());

  auto without = relevance.Evaluate(queries, /*expand_isa=*/false);
  auto with = relevance.Evaluate(queries, /*expand_isa=*/true);

  TablePrinter table("Search relevance (measured)");
  table.SetHeader({"matching", "AUC", "bad cases", "judged pairs"});
  table.AddRow({"term match (no isA)", TablePrinter::Num(without.auc, 4),
                std::to_string(without.bad_cases),
                std::to_string(without.judged_pairs)});
  table.AddRow({"term match + isA expansion", TablePrinter::Num(with.auc, 4),
                std::to_string(with.bad_cases),
                std::to_string(with.judged_pairs)});
  double bad_drop =
      without.bad_cases > 0
          ? 100.0 * (1.0 - static_cast<double>(with.bad_cases) /
                               static_cast<double>(without.bad_cases))
          : 0.0;
  table.AddRow({"delta", TablePrinter::Num(with.auc - without.auc, 4),
                StringPrintf("-%.1f%%", bad_drop), ""});
  table.Print();

  // The paper's comparison: the former category taxonomy had 10x fewer isA
  // relations than AliCoCo. Simulate it: a net with only the suffix-rule
  // derived->head edges (what a CPV taxonomy encodes implicitly) and none
  // of the token-disjoint head->group knowledge.
  {
    kg::ConceptNet former = world.net();  // same nodes and non-isA edges
    // Rebuild a reduced-isA variant: fresh net sharing item ids.
    kg::ConceptNet reduced;
    datagen::BuildTaxonomy(&reduced.taxonomy());
    auto category = *reduced.taxonomy().Find("Category");
    for (const auto& p : world.net().primitives()) {
      auto res = reduced.GetOrAddPrimitiveConcept(p.surface, category);
      (void)res;
    }
    for (const auto& item : world.net().items()) {
      auto id = *reduced.AddItem(item.title, category);
      for (kg::ConceptId prim : world.net().PrimitivesForItem(item.id)) {
        auto mapped =
            reduced.FindPrimitive(world.net().Get(prim).surface, category);
        if (mapped.has_value()) (void)reduced.LinkItemToPrimitive(id, *mapped);
      }
    }
    // Former taxonomy: only same-token suffix edges ("rain boot" isA
    // "boot"); AliCoCo additionally knows "boot" isA "<group>".
    size_t former_edges = 0, alicoco_edges = 0;
    for (const auto& p : world.net().primitives()) {
      for (kg::ConceptId h : world.net().Hypernyms(p.id)) {
        ++alicoco_edges;
        const std::string& hypo = p.surface;
        const std::string& hyper = world.net().Get(h).surface;
        if (hypo.size() > hyper.size() &&
            hypo.substr(hypo.size() - hyper.size()) == hyper) {
          auto a = reduced.FindPrimitive(hypo, category);
          auto b = reduced.FindPrimitive(hyper, category);
          if (a && b && reduced.AddIsA(*a, *b).ok()) ++former_edges;
        }
      }
    }
    apps::SearchRelevance former_rel(&reduced);
    // Re-point the queries at the reduced net's items (ids align by
    // construction order).
    auto former_report = former_rel.Evaluate(queries, /*expand_isa=*/true);
    TablePrinter cmp("Former taxonomy vs AliCoCo (both with isA expansion)");
    cmp.SetHeader({"ontology", "isA edges", "AUC", "bad cases"});
    cmp.AddRow({"former category taxonomy", std::to_string(former_edges),
                TablePrinter::Num(former_report.auc, 4),
                std::to_string(former_report.bad_cases)});
    cmp.AddRow({"AliCoCo", std::to_string(alicoco_edges),
                TablePrinter::Num(with.auc, 4),
                std::to_string(with.bad_cases)});
    cmp.Print();
  }
  std::printf(
      "\nShape check: expansion must raise AUC and remove bad cases; the "
      "former taxonomy's smaller isA inventory must leave hypernym queries "
      "unserved (the paper's 'jacket isA top' gap).\n");
  return 0;
}
