// Reproduces Table 4: the e-commerce concept classification ablation
// (Section 7.4).
//
// Paper: baseline 0.870 -> +Wide 0.900 -> +Wide&BERT 0.915 ->
// +Wide&BERT&Knowledge 0.935 (precision on a balanced test set). Our
// "BERT" substitute is the corpus-pretrained embeddings + n-gram LM
// fluency features (see DESIGN.md).

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "concepts/classifier.h"

int main() {
  using namespace alicoco;
  std::printf(
      "== Table 4: knowledge-enhanced concept classification ablation ==\n"
      "Paper precision: 0.870 / 0.900 / 0.915 / 0.935.\n\n");

  datagen::World world = [] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(bench::BenchWorldConfig());
  }();
  auto resources = [&] {
    bench::StageTimer t("train embeddings + LM");
    return std::make_unique<datagen::WorldResources>(
        world, datagen::ResourcesConfig{});
  }();

  // 7:1:2 split as in the paper (validation unused by this harness).
  Rng rng(5);
  auto candidates = world.concept_candidates();
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<concepts::LabeledConcept> train, test;
  for (size_t i = 0; i < order.size(); ++i) {
    const auto& c = candidates[order[i]];
    concepts::LabeledConcept sample{c.tokens, c.good ? 1 : 0};
    if (i < order.size() * 8 / 10) {
      train.push_back(std::move(sample));
    } else {
      test.push_back(std::move(sample));
    }
  }
  std::printf("dataset: %zu train / %zu test (balanced)\n\n", train.size(),
              test.size());

  concepts::ClassifierResources res;
  res.embeddings = &resources->embeddings();
  res.corpus_vocab = &resources->vocab();
  res.lm = &resources->lm();
  res.gloss_encoder = &resources->gloss_encoder();
  res.gloss_lookup = [&](const std::string& w) {
    return resources->GlossOf(w);
  };

  struct Variant {
    const char* label;
    const char* paper;
    bool wide, pretrained, knowledge;
  };
  const Variant kVariants[] = {
      {"Baseline (LSTM + Self Attention)", "0.870", false, false, false},
      {"+Wide", "0.900", true, false, false},
      {"+Wide & LM (BERT substitute)", "0.915", true, true, false},
      {"+Wide & LM & Knowledge", "0.935", true, true, true},
  };

  TablePrinter table("Table 4 (measured)");
  table.SetHeader({"Model", "Precision", "F1", "AUC", "Paper precision"});
  for (const auto& variant : kVariants) {
    bench::StageTimer t(variant.label);
    concepts::ConceptClassifierConfig cfg;
    cfg.use_wide = variant.wide;
    cfg.use_pretrained = variant.pretrained;
    cfg.use_knowledge = variant.knowledge;
    cfg.epochs = 4;
    concepts::ConceptClassifier model(cfg, res);
    model.Train(train);
    auto m = model.Evaluate(test);
    table.AddRow({variant.label, TablePrinter::Num(m.binary.precision, 3),
                  TablePrinter::Num(m.binary.f1, 3),
                  TablePrinter::Num(m.auc, 3), variant.paper});
  }
  table.Print();
  std::printf(
      "\nShape check: each added component should improve precision; the "
      "knowledge row should be best.\n");
  return 0;
}
