// Reproduces the Section 7.1 coverage evaluation: AliCoCo covers ~75% of
// rewritten user-needs queries over 30 monitored days; the legacy CPV
// ontology only ~30%.

#include <cstdio>

#include "apps/coverage.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "datagen/legacy_ontology.h"

int main() {
  using namespace alicoco;
  std::printf(
      "== Section 7.1: user-needs coverage, AliCoCo vs legacy CPV "
      "ontology ==\n"
      "Paper: ~75%% vs ~30%% over 30 continuous days.\n\n");

  datagen::World world = [] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(bench::BenchWorldConfig());
  }();
  datagen::LegacyOntology legacy(world);
  apps::CoverageEvaluator evaluator(&world.net(), &legacy);

  apps::CoverageReport report;
  {
    bench::StageTimer t("30-day monitoring");
    report =
        evaluator.Run(world.needs_queries(), /*num_days=*/30,
                      /*per_day=*/200, 13);
  }

  TablePrinter days("Daily coverage (measured)");
  days.SetHeader({"day", "AliCoCo", "legacy CPV"});
  for (size_t d = 0; d < report.days.size(); ++d) {
    days.AddRow({std::to_string(d + 1),
                 TablePrinter::Num(report.days[d].alicoco, 3),
                 TablePrinter::Num(report.days[d].legacy, 3)});
  }
  days.Print();

  TablePrinter summary("30-day mean coverage");
  summary.SetHeader({"ontology", "measured", "paper"});
  summary.AddRow({"AliCoCo", TablePrinter::Num(report.mean_alicoco, 3),
                  "~0.75"});
  summary.AddRow({"legacy CPV", TablePrinter::Num(report.mean_legacy, 3),
                  "~0.30"});
  summary.Print();
  std::printf(
      "\nShape check: AliCoCo should cover far more needs vocabulary than "
      "the category/property-only baseline.\n");
  return 0;
}
