// Substrate micro-benchmarks (google-benchmark): the hot paths every
// harness exercises — graph ops, CRF lattices, BM25 scoring, segmenter
// matching, and concept-net queries.

#include <benchmark/benchmark.h>

#include "kg/concept_net.h"
#include "nn/crf.h"
#include "nn/layers.h"
#include "nn/rnn.h"
#include "text/bm25.h"
#include "text/segmenter.h"

namespace {

using namespace alicoco;

void BM_MatMul(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, &rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMulValue(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64);

void BM_BiLstmForwardBackward(benchmark::State& state) {
  int t = static_cast<int>(state.range(0));
  Rng rng(2);
  nn::ParameterStore store;
  nn::BiLstm bilstm(&store, "b", 24, 24, &rng);
  nn::Tensor x = nn::Tensor::Randn(t, 24, 0.5f, &rng);
  for (auto _ : state) {
    store.ZeroGrad();
    nn::Graph g;
    g.Backward(g.MeanAll(bilstm.Run(&g, g.Input(x))));
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_BiLstmForwardBackward)->Arg(8)->Arg(24);

void BM_CrfLoss(benchmark::State& state) {
  int labels = static_cast<int>(state.range(0));
  Rng rng(3);
  nn::ParameterStore store;
  nn::LinearChainCrf crf(&store, "crf", labels, &rng);
  nn::Tensor e = nn::Tensor::Randn(12, labels, 0.5f, &rng);
  std::vector<int> gold(12);
  for (size_t i = 0; i < gold.size(); ++i) {
    gold[i] = static_cast<int>(i) % labels;
  }
  for (auto _ : state) {
    store.ZeroGrad();
    nn::Graph g;
    g.Backward(crf.NegLogLikelihood(&g, g.Input(e), gold));
  }
}
BENCHMARK(BM_CrfLoss)->Arg(5)->Arg(23);

void BM_CrfViterbi(benchmark::State& state) {
  Rng rng(4);
  nn::ParameterStore store;
  nn::LinearChainCrf crf(&store, "crf", 23, &rng);
  nn::Tensor e = nn::Tensor::Randn(12, 23, 0.5f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.Viterbi(e));
  }
}
BENCHMARK(BM_CrfViterbi);

void BM_Bm25TopK(benchmark::State& state) {
  Rng rng(5);
  text::Bm25Index index;
  std::vector<std::string> vocab;
  for (int i = 0; i < 500; ++i) vocab.push_back("w" + std::to_string(i));
  for (int d = 0; d < 2000; ++d) {
    std::vector<std::string> doc;
    for (int j = 0; j < 8; ++j) {
      doc.push_back(vocab[rng.Zipf(vocab.size(), 1.1)]);
    }
    index.AddDocument(d, doc);
  }
  index.Finalize();
  std::vector<std::string> query = {vocab[3], vocab[17], vocab[140]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TopK(query, 10));
  }
}
BENCHMARK(BM_Bm25TopK);

void BM_SegmenterMatch(benchmark::State& state) {
  Rng rng(6);
  text::MaxMatchSegmenter segmenter;
  for (int i = 0; i < 3000; ++i) {
    segmenter.AddPhrase({"c" + std::to_string(i)}, "Category");
    if (i % 3 == 0) {
      segmenter.AddPhrase({"m" + std::to_string(i), "c" + std::to_string(i)},
                          "Category");
    }
  }
  std::vector<std::string> sentence;
  for (int j = 0; j < 12; ++j) {
    int id = static_cast<int>(rng.Uniform(3000));
    sentence.push_back((j % 2 ? "m" : "c") + std::to_string(id));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(segmenter.Match(sentence));
  }
}
BENCHMARK(BM_SegmenterMatch);

void BM_ConceptNetQueries(benchmark::State& state) {
  kg::ConceptNet net;
  kg::ClassId category = *net.taxonomy().AddDomain("Category");
  std::vector<kg::ConceptId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(
        *net.GetOrAddPrimitiveConcept("c" + std::to_string(i), category));
    if (i > 0) (void)net.AddIsA(ids[i], ids[i / 2]);  // binary-ish tree
  }
  Rng rng(7);
  for (auto _ : state) {
    kg::ConceptId id = ids[rng.Uniform(ids.size())];
    benchmark::DoNotOptimize(net.HypernymClosure(id));
  }
}
BENCHMARK(BM_ConceptNetQueries);

}  // namespace

BENCHMARK_MAIN();
