// Substrate micro-benchmarks (google-benchmark): the hot paths every
// harness exercises — GEMM kernels, graph ops, CRF lattices, BM25 scoring,
// segmenter matching, and concept-net queries.
//
// Besides the interactive google-benchmark mode, `--kernels-out FILE` runs
// a fixed kernel smoke suite and writes BENCH_kernels.json; adding
// `--baseline FILE [--max-regress X] [--slack-us US]` turns the run into a
// regression gate against the committed baseline (tools/ci.sh).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "kg/concept_net.h"
#include "nn/crf.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/parallel_train.h"
#include "nn/quant.h"
#include "nn/rnn.h"
#include "text/bm25.h"
#include "text/segmenter.h"

namespace {

using namespace alicoco;

// ---- GEMM kernels: blocked vs naive reference ----

void BM_GemmBlocked(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(41);
  nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, &rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, &rng);
  nn::Tensor c(n, n);
  for (auto _ : state) {
    nn::kernels::GemmAccum(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->Arg(24)->Arg(64)->Arg(192);

void BM_GemmNaive(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(41);
  nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, &rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, &rng);
  nn::Tensor c(n, n);
  for (auto _ : state) {
    nn::kernels::naive::GemmAccum(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(24)->Arg(64)->Arg(192);

// Fused affine+tanh (one node) vs the composed op chain it replaced.
void BM_AffineTanhFused(benchmark::State& state) {
  Rng rng(42);
  nn::ParameterStore store;
  nn::Linear fc(&store, "fc", 24, 24, &rng);
  nn::Tensor x = nn::Tensor::Randn(16, 24, 0.5f, &rng);
  for (auto _ : state) {
    store.ZeroGrad();
    nn::Graph g;
    g.Backward(g.MeanAll(fc.ApplyTanh(&g, g.Input(x))));
  }
}
BENCHMARK(BM_AffineTanhFused);

void BM_AffineTanhUnfused(benchmark::State& state) {
  Rng rng(42);
  nn::ParameterStore store;
  nn::Parameter* w = store.Create("w", 24, 24,
                                  nn::ParameterStore::Init::kXavier, &rng);
  nn::Parameter* b = store.Create("b", 1, 24,
                                  nn::ParameterStore::Init::kZero, nullptr);
  nn::Tensor x = nn::Tensor::Randn(16, 24, 0.5f, &rng);
  for (auto _ : state) {
    store.ZeroGrad();
    nn::Graph g;
    nn::Graph::Var h =
        g.Tanh(g.Add(g.MatMul(g.Input(x), g.Use(w)), g.Use(b)));
    g.Backward(g.MeanAll(h));
  }
}
BENCHMARK(BM_AffineTanhUnfused);

// Data-parallel batch accumulation across a worker pool.
void BM_ParallelTrainBatch(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  Rng rng(43);
  nn::ParameterStore store;
  nn::Mlp mlp(&store, "mlp", {24, 24, 1}, &rng);
  std::vector<nn::Tensor> xs;
  for (int i = 0; i < 32; ++i) {
    xs.push_back(nn::Tensor::Randn(1, 24, 0.5f, &rng));
  }
  ThreadPool pool(static_cast<size_t>(threads));
  nn::ParallelTrainer trainer(threads > 0 ? &pool : nullptr);
  for (auto _ : state) {
    store.ZeroGrad();
    float loss = trainer.AccumulateBatch(xs.size(), [&](nn::Graph* g,
                                                        size_t i) -> float {
      nn::Graph::Var l = g->MeanAll(mlp.Apply(g, g->Input(xs[i])));
      g->Backward(l);
      return g->Value(l).At(0, 0);
    });
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_ParallelTrainBatch)->Arg(0)->Arg(2)->Arg(4);

void BM_MatMul(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, &rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMulValue(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64);

void BM_BiLstmForwardBackward(benchmark::State& state) {
  int t = static_cast<int>(state.range(0));
  Rng rng(2);
  nn::ParameterStore store;
  nn::BiLstm bilstm(&store, "b", 24, 24, &rng);
  nn::Tensor x = nn::Tensor::Randn(t, 24, 0.5f, &rng);
  for (auto _ : state) {
    store.ZeroGrad();
    nn::Graph g;
    g.Backward(g.MeanAll(bilstm.Run(&g, g.Input(x))));
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_BiLstmForwardBackward)->Arg(8)->Arg(24);

void BM_CrfLoss(benchmark::State& state) {
  int labels = static_cast<int>(state.range(0));
  Rng rng(3);
  nn::ParameterStore store;
  nn::LinearChainCrf crf(&store, "crf", labels, &rng);
  nn::Tensor e = nn::Tensor::Randn(12, labels, 0.5f, &rng);
  std::vector<int> gold(12);
  for (size_t i = 0; i < gold.size(); ++i) {
    gold[i] = static_cast<int>(i) % labels;
  }
  for (auto _ : state) {
    store.ZeroGrad();
    nn::Graph g;
    g.Backward(crf.NegLogLikelihood(&g, g.Input(e), gold));
  }
}
BENCHMARK(BM_CrfLoss)->Arg(5)->Arg(23);

void BM_CrfViterbi(benchmark::State& state) {
  Rng rng(4);
  nn::ParameterStore store;
  nn::LinearChainCrf crf(&store, "crf", 23, &rng);
  nn::Tensor e = nn::Tensor::Randn(12, 23, 0.5f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.Viterbi(e));
  }
}
BENCHMARK(BM_CrfViterbi);

void BM_Bm25TopK(benchmark::State& state) {
  Rng rng(5);
  text::Bm25Index index;
  std::vector<std::string> vocab;
  for (int i = 0; i < 500; ++i) vocab.push_back("w" + std::to_string(i));
  for (int d = 0; d < 2000; ++d) {
    std::vector<std::string> doc;
    for (int j = 0; j < 8; ++j) {
      doc.push_back(vocab[rng.Zipf(vocab.size(), 1.1)]);
    }
    index.AddDocument(d, doc);
  }
  index.Finalize();
  std::vector<std::string> query = {vocab[3], vocab[17], vocab[140]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TopK(query, 10));
  }
}
BENCHMARK(BM_Bm25TopK);

void BM_SegmenterMatch(benchmark::State& state) {
  Rng rng(6);
  text::MaxMatchSegmenter segmenter;
  for (int i = 0; i < 3000; ++i) {
    segmenter.AddPhrase({"c" + std::to_string(i)}, "Category");
    if (i % 3 == 0) {
      segmenter.AddPhrase({"m" + std::to_string(i), "c" + std::to_string(i)},
                          "Category");
    }
  }
  std::vector<std::string> sentence;
  for (int j = 0; j < 12; ++j) {
    int id = static_cast<int>(rng.Uniform(3000));
    sentence.push_back((j % 2 ? "m" : "c") + std::to_string(id));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(segmenter.Match(sentence));
  }
}
BENCHMARK(BM_SegmenterMatch);

void BM_ConceptNetQueries(benchmark::State& state) {
  kg::ConceptNet net;
  kg::ClassId category = *net.taxonomy().AddDomain("Category");
  std::vector<kg::ConceptId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(
        *net.GetOrAddPrimitiveConcept("c" + std::to_string(i), category));
    if (i > 0) (void)net.AddIsA(ids[i], ids[i / 2]);  // binary-ish tree
  }
  Rng rng(7);
  for (auto _ : state) {
    kg::ConceptId id = ids[rng.Uniform(ids.size())];
    benchmark::DoNotOptimize(net.HypernymClosure(id));
  }
}
BENCHMARK(BM_ConceptNetQueries);

// ---- kernel smoke suite (BENCH_kernels.json) ----
//
// A fixed, deterministic set of kernel timings written as
//
//   {
//     "schema": "alicoco.bench_kernels.v1",
//     "entries": [
//       {"name": "gemm_blocked_64", "us_per_iter": 12.3},
//       ...
//     ]
//   }
//
// The file is emitted one entry per line and read back line-wise by the
// --baseline gate, so writer and parser live in this one file.

double TimeUsPerIter(const std::function<void()>& fn) {
  fn();  // warmup: first-touch pages, build vocab caches, etc.
  long iters = 1;
  for (;;) {
    auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < iters; ++i) fn();
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (us >= 20000.0) return us / static_cast<double>(iters);
    iters *= 4;
  }
}

std::vector<std::pair<std::string, double>> RunKernelSuite() {
  std::vector<std::pair<std::string, double>> out;
  auto add = [&](const std::string& name, const std::function<void()>& fn) {
    out.emplace_back(name, TimeUsPerIter(fn));
    std::printf("  %-28s %10.2f us/iter\n", name.c_str(), out.back().second);
  };

  Rng rng(51);
  // Square GEMMs: blocked vs the naive reference, plus the 1-row LSTM
  // shape that dominates the pipeline's call profile.
  nn::Tensor a64 = nn::Tensor::Randn(64, 64, 1.0f, &rng);
  nn::Tensor b64 = nn::Tensor::Randn(64, 64, 1.0f, &rng);
  nn::Tensor c64(64, 64);
  add("gemm_blocked_64", [&] {
    nn::kernels::GemmAccum(64, 64, 64, a64.data(), b64.data(), c64.data());
  });
  add("gemm_naive_64", [&] {
    nn::kernels::naive::GemmAccum(64, 64, 64, a64.data(), b64.data(),
                                  c64.data());
  });
  nn::Tensor a1 = nn::Tensor::Randn(1, 24, 1.0f, &rng);
  nn::Tensor b1 = nn::Tensor::Randn(24, 96, 1.0f, &rng);
  nn::Tensor c1(1, 96);
  add("gemm_blocked_1x24x96", [&] {
    nn::kernels::GemmAccum(1, 24, 96, a1.data(), b1.data(), c1.data());
  });
  add("gemm_transb_16x64x64", [&] {
    nn::kernels::GemmTransBAccum(16, 64, 64, a64.data(), b64.data(),
                                 c64.data());
  });
  add("gemm_transa_16x64x64", [&] {
    nn::kernels::GemmTransAAccum(16, 64, 64, a64.data(), b64.data(),
                                 c64.data());
  });

  // The portable tier, pinned explicitly (the dispatched entries above use
  // whatever tier CPUID picked; this one is comparable across hosts).
  nn::kernels::ForceScalarKernels(true);
  add("gemm_scalar_64", [&] {
    nn::kernels::GemmAccum(64, 64, 64, a64.data(), b64.data(), c64.data());
  });
  nn::kernels::ForceScalarKernels(false);

  // AVX2 tier, invoked directly through its table: emitted only where the
  // host can run it (the baseline gate skips these entries elsewhere).
  if (nn::kernels::KernelsHaveAvx2()) {
    const nn::kernels::KernelDispatch* simd = nn::kernels::avx2::Table();
    add("gemm_avx2_64", [&] {
      simd->gemm(64, 64, 64, a64.data(), b64.data(), c64.data());
    });
    add("gemm_avx2_transb_16x64x64", [&] {
      simd->gemm_transb(16, 64, 64, a64.data(), b64.data(), c64.data());
    });
    add("gemm_avx2_transa_16x64x64", [&] {
      simd->gemm_transa(16, 64, 64, a64.data(), b64.data(), c64.data());
    });
  }

  // Quantized inference kernels: int8 blockwise GEMM, fp16-weight GEMM,
  // and the activation-side quantizer they depend on.
  {
    nn::Tensor x16 = nn::Tensor::Randn(16, 64, 1.0f, &rng);
    nn::quant::QuantizedTensor wq8 = nn::quant::QuantizedTensor::Quantize(
        b64, nn::quant::QuantMode::kInt8);  // 64 rows over k=64
    nn::quant::QuantizedTensor wf16 = nn::quant::QuantizedTensor::Quantize(
        b64, nn::quant::QuantMode::kFp16);
    const int blocks = nn::kernels::Q8Blocks(64);
    std::vector<int8_t> xq(static_cast<size_t>(16) * blocks *
                           nn::kernels::kQ8Block);
    std::vector<float> xs(static_cast<size_t>(16) * blocks);
    nn::quant::QuantizeRowsQ8(x16.data(), 16, 64, xq.data(), xs.data());
    add("quant_q8_gemm_16x64x64", [&] {
      nn::kernels::Q8GemmDotAccum(16, 64, 64, xq.data(), xs.data(),
                                  wq8.q8_data(), wq8.q8_scales(),
                                  c64.data());
    });
    add("quant_fp16_gemm_16x64x64", [&] {
      nn::kernels::Fp16GemmTransBAccum(16, 64, 64, x16.data(),
                                       wf16.fp16_data(), c64.data());
    });
    std::vector<int8_t> q64(static_cast<size_t>(64) * blocks *
                            nn::kernels::kQ8Block);
    std::vector<float> s64(static_cast<size_t>(64) * blocks);
    add("quant_q8_quantize_64x64", [&] {
      nn::quant::QuantizeRowsQ8(a64.data(), 64, 64, q64.data(), s64.data());
    });
  }

  // Fused graph ops, forward + backward.
  {
    nn::ParameterStore store;
    nn::Linear fc(&store, "fc", 24, 24, &rng);
    nn::Tensor x = nn::Tensor::Randn(16, 24, 0.5f, &rng);
    add("affine_tanh_fused_16x24", [&] {
      store.ZeroGrad();
      nn::Graph g;
      g.Backward(g.MeanAll(fc.ApplyTanh(&g, g.Input(x))));
    });
  }
  {
    nn::ParameterStore store;
    nn::BiLstm bilstm(&store, "b", 24, 24, &rng);
    nn::Tensor x = nn::Tensor::Randn(16, 24, 0.5f, &rng);
    add("bilstm_fb_t16_d24", [&] {
      store.ZeroGrad();
      nn::Graph g;
      g.Backward(g.MeanAll(bilstm.Run(&g, g.Input(x))));
    });
  }
  {
    nn::ParameterStore store;
    nn::LinearChainCrf crf(&store, "crf", 23, &rng);
    nn::Tensor e = nn::Tensor::Randn(12, 23, 0.5f, &rng);
    std::vector<int> gold(12);
    for (size_t i = 0; i < gold.size(); ++i) {
      gold[i] = static_cast<int>(i) % 23;
    }
    add("crf_nll_L23_T12", [&] {
      store.ZeroGrad();
      nn::Graph g;
      g.Backward(crf.NegLogLikelihood(&g, g.Input(e), gold));
    });
  }

  // Data-parallel batch accumulation: sequential path and a 2-worker pool
  // (the pooled entry measures sharding + reduction overhead on single-core
  // CI boxes, and real speedup where cores exist).
  {
    nn::ParameterStore store;
    nn::Mlp mlp(&store, "mlp", {24, 24, 1}, &rng);
    std::vector<nn::Tensor> xs;
    for (int i = 0; i < 32; ++i) {
      xs.push_back(nn::Tensor::Randn(1, 24, 0.5f, &rng));
    }
    auto batch = [&](nn::ParallelTrainer* trainer) {
      store.ZeroGrad();
      float loss = trainer->AccumulateBatch(
          xs.size(), [&](nn::Graph* g, size_t i) -> float {
            nn::Graph::Var l = g->MeanAll(mlp.Apply(g, g->Input(xs[i])));
            g->Backward(l);
            return g->Value(l).At(0, 0);
          });
      benchmark::DoNotOptimize(loss);
    };
    nn::ParallelTrainer seq(nullptr);
    add("train_batch32_seq", [&] { batch(&seq); });
    ThreadPool pool(2);
    nn::ParallelTrainer par(&pool);
    add("train_batch32_pool2", [&] { batch(&par); });
  }
  return out;
}

bool WriteKernelProfile(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& entries) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;
  out << "{\n  \"schema\": \"alicoco.bench_kernels.v1\",\n  \"entries\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    out << "    {\"name\": \"" << entries[i].first
        << "\", \"us_per_iter\": " << entries[i].second << "}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

// Line-wise parse of the format WriteKernelProfile emits.
bool ReadKernelProfile(const std::string& path,
                       std::vector<std::pair<std::string, double>>* entries) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::string line;
  bool saw_schema = false;
  while (std::getline(in, line)) {
    if (line.find("alicoco.bench_kernels.v1") != std::string::npos) {
      saw_schema = true;
    }
    size_t np = line.find("\"name\": \"");
    size_t up = line.find("\"us_per_iter\": ");
    if (np == std::string::npos || up == std::string::npos) continue;
    np += std::strlen("\"name\": \"");
    size_t ne = line.find('"', np);
    if (ne == std::string::npos) continue;
    double us = std::strtod(line.c_str() + up + std::strlen("\"us_per_iter\": "),
                            nullptr);
    entries->emplace_back(line.substr(np, ne - np), us);
  }
  return saw_schema && !entries->empty();
}

int KernelSmokeMain(const std::string& out_path, const std::string& baseline,
                    double max_regress, double slack_us) {
  std::printf("== bench_micro: kernel smoke suite ==\n");
  auto entries = RunKernelSuite();
  if (!WriteKernelProfile(out_path, entries)) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu entries)\n", out_path.c_str(), entries.size());
  if (baseline.empty()) return 0;

  std::vector<std::pair<std::string, double>> base;
  if (!ReadKernelProfile(baseline, &base)) {
    std::fprintf(stderr, "bench_micro: bad baseline %s\n", baseline.c_str());
    return 1;
  }
  int failures = 0;
  for (const auto& [name, base_us] : base) {
    const std::pair<std::string, double>* cur = nullptr;
    for (const auto& e : entries) {
      if (e.first == name) cur = &e;
    }
    if (cur == nullptr) {
      // Baselines are recorded on AVX2 hardware; a host that cannot run
      // that tier skips those entries instead of failing the gate.
      if (name.find("avx2") != std::string::npos &&
          !nn::kernels::KernelsHaveAvx2()) {
        std::printf("SKIP: kernel '%s' (host has no AVX2)\n", name.c_str());
        continue;
      }
      std::fprintf(stderr, "REGRESSION: kernel '%s' missing from this run\n",
                   name.c_str());
      ++failures;
      continue;
    }
    double limit = base_us * max_regress + slack_us;
    if (cur->second > limit) {
      std::fprintf(stderr,
                   "REGRESSION: kernel '%s': %.2fus > limit %.2fus "
                   "(baseline %.2fus x %.2g + %.0fus slack)\n",
                   name.c_str(), cur->second, limit, base_us, max_regress,
                   slack_us);
      ++failures;
    }
  }
  if (failures > 0) return 1;
  std::printf("kernel gate passed (max-regress %.1fx, slack %.0fus)\n",
              max_regress, slack_us);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Kernel smoke mode; anything else falls through to google-benchmark.
  std::string kernels_out, baseline;
  double max_regress = 2.0, slack_us = 200.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--kernels-out") {
      kernels_out = value();
    } else if (arg == "--baseline") {
      baseline = value();
    } else if (arg == "--max-regress") {
      max_regress = std::strtod(value(), nullptr);
    } else if (arg == "--slack-us") {
      slack_us = std::strtod(value(), nullptr);
    }
  }
  if (!kernels_out.empty()) {
    return KernelSmokeMain(kernels_out, baseline, max_regress, slack_us);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
