// Reproduces the Section 7.2 mining numbers: distant-supervision yield, the
// tagger's quality, and the per-epoch discover/accept loop (paper: ~64K
// candidates and ~10K accepted per 5M-sentence epoch, continuously).

#include <cstdio>

#include <unordered_set>

#include "bench_util.h"
#include "common/table_printer.h"
#include "datagen/grammar.h"
#include "mining/concept_miner.h"

int main() {
  using namespace alicoco;
  std::printf(
      "== Section 7.2: primitive concept mining ==\n"
      "Paper: 6M distant-supervised sentences; ~64K candidates / ~10K "
      "accepted per epoch; the loop runs continuously.\n\n");

  datagen::World world = [] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(bench::BenchWorldConfig());
  }();

  mining::DistantSupervisor supervisor(world.seed_dictionary(),
                                       datagen::CarrierVocabulary());
  std::vector<std::vector<std::string>> corpus;
  for (const auto& s : world.sentences()) corpus.push_back(s.tokens);

  mining::DistantSupervisor::Stats ds;
  std::vector<mining::LabeledSentence> labeled;
  {
    bench::StageTimer t("distant supervision");
    labeled = supervisor.Label(corpus, &ds);
  }
  TablePrinter ds_table("Distant supervision over the corpus");
  ds_table.SetHeader({"metric", "value"});
  ds_table.AddRow({"sentences", std::to_string(ds.total)});
  ds_table.AddRow({"kept (perfectly matched)", std::to_string(ds.kept)});
  ds_table.AddRow({"dropped: ambiguous", std::to_string(ds.ambiguous)});
  ds_table.AddRow({"dropped: imperfect", std::to_string(ds.imperfect)});
  ds_table.AddRow({"dropped: no match", std::to_string(ds.unmatched)});
  ds_table.AddRow({"seed dictionary entries",
                   std::to_string(world.seed_dictionary().size())});
  ds_table.Print();

  mining::SequenceLabelerConfig cfg;
  cfg.epochs = 3;
  mining::SequenceLabeler labeler(cfg);
  {
    bench::StageTimer t("train BiLSTM-CRF");
    labeler.Train(labeled);
  }
  // Tagger quality on gold-labeled corpus sentences.
  {
    std::vector<mining::LabeledSentence> gold;
    for (size_t i = 0; i < world.sentences().size(); i += 7) {
      const auto& s = world.sentences()[i];
      gold.push_back(mining::LabeledSentence{s.tokens, s.gold_iob});
    }
    auto m = labeler.Evaluate(gold);
    TablePrinter q("Tagger quality on gold spans");
    q.SetHeader({"precision", "recall", "F1"});
    q.AddRow({TablePrinter::Num(m.precision, 4),
              TablePrinter::Num(m.recall, 4), TablePrinter::Num(m.f1, 4)});
    q.Print();
  }

  std::unordered_set<std::string> gold_keys;
  for (const auto& p : world.net().primitives()) {
    gold_keys.insert(p.surface + "\t" + world.DomainLabel(p.id));
  }
  mining::ConceptMiner miner(
      &supervisor, &labeler,
      [&](const std::string& surface, const std::string& domain) {
        return gold_keys.count(surface + "\t" + domain) > 0;
      });

  TablePrinter epochs("Mining loop (measured per epoch)");
  epochs.SetHeader({"epoch", "candidates", "accepted", "precision",
                    "holdout targets left"});
  std::unordered_set<std::string> holdout(world.holdout_surfaces().begin(),
                                          world.holdout_surfaces().end());
  for (int epoch = 1; epoch <= 3; ++epoch) {
    bench::StageTimer t("mining epoch");
    auto stats = miner.RunEpoch(corpus);
    for (const auto& c : miner.accepted()) holdout.erase(c.surface);
    epochs.AddRow({std::to_string(epoch), std::to_string(stats.candidates),
                   std::to_string(stats.accepted),
                   TablePrinter::Num(stats.precision, 3),
                   std::to_string(holdout.size())});
  }
  epochs.Print();
  std::printf(
      "\nShape check: epoch 1 discovers the bulk; later epochs converge as "
      "the dictionary absorbs the corpus (the paper's continuous loop).\n"
      "Initial holdout targets: %zu\n",
      world.holdout_surfaces().size());
  return 0;
}
