// Reproduces Figure 9 (left): MAP of the projection model as a function of
// the negative-sample ratio N (Section 7.3).
//
// Paper's shape: MAP rises with N and saturates around N ~ 100.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "hypernym/active_learning.h"

int main() {
  using namespace alicoco;
  std::printf(
      "== Figure 9 (left): negative-sample ratio sweep for hypernym "
      "discovery ==\n"
      "Paper: MAP improves as N grows and peaks around N = 100.\n\n");

  datagen::World world = [] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(bench::BenchWorldConfig());
  }();
  auto resources = [&] {
    bench::StageTimer t("train embeddings + LM");
    return std::make_unique<datagen::WorldResources>(
        world, datagen::ResourcesConfig{});
  }();

  TablePrinter table(
      "Figure 9 left (measured, mean of 3 seeds): MAP vs negatives per "
      "positive");
  table.SetHeader({"1:N", "pool size", "MAP", "MRR", "P@1"});
  for (int n : {10, 20, 40, 60, 80, 100, 200}) {
    bench::StageTimer t("N sweep point");
    double map = 0, mrr = 0, p1 = 0;
    size_t pool_size = 0;
    constexpr int kSeeds = 3;
    for (int seed = 0; seed < kSeeds; ++seed) {
      auto dataset = hypernym::BuildHypernymDataset(
          world.hypernym_gold(), world.category_vocabulary(), n,
          /*test_candidates=*/50, 11 + seed);
      pool_size = dataset.pool.size();
      hypernym::ProjectionConfig cfg;
      cfg.epochs = 3;
      cfg.seed = 23 + seed;
      // Plain (unbalanced) training, as in the paper: the negative ratio N
      // is exactly the variable under study.
      cfg.balance_classes = false;
      auto metrics = hypernym::TrainOnPoolAndEvaluate(
          &resources->embeddings(), &resources->vocab(), cfg, dataset);
      map += metrics.map;
      mrr += metrics.mrr;
      p1 += metrics.p_at_1;
    }
    table.AddRow({std::to_string(n), std::to_string(pool_size),
                  TablePrinter::Num(map / kSeeds, 4),
                  TablePrinter::Num(mrr / kSeeds, 4),
                  TablePrinter::Num(p1 / kSeeds, 4)});
  }
  table.Print();
  std::printf(
      "\nShape check: MAP should rise with N and flatten at large N.\n");
  return 0;
}
