// Reproduces Table 6: concept-item semantic matching (Section 7.6).
//
// Paper: BM25 P@10 0.7681 (AUC/F1 not reported); DSSM 0.7885/0.6937/0.7971;
// MatchPyramid 0.8127/0.7352/0.7813; RE2 0.8664/0.7052/0.8977; Ours
// 0.8610/0.7532/0.9015; Ours+Knowledge 0.8713/0.7769/0.9048.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "matching/bm25_matcher.h"
#include "matching/dssm.h"
#include "matching/knowledge_matcher.h"
#include "matching/match_pyramid.h"
#include "matching/re2_matcher.h"
#include "text/tokenizer.h"

int main() {
  using namespace alicoco;
  std::printf(
      "== Table 6: semantic matching between e-commerce concepts and "
      "items ==\n"
      "Paper AUC/F1/P@10 in the right-most column.\n\n");

  datagen::World world = [] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(bench::BenchWorldConfig());
  }();
  auto resources = [&] {
    bench::StageTimer t("train embeddings + LM");
    return std::make_unique<datagen::WorldResources>(
        world, datagen::ResourcesConfig{});
  }();

  matching::MatchingDataset dataset;
  {
    bench::StageTimer t("build matching dataset");
    matching::MatchingDatasetConfig cfg;
    cfg.max_positives_per_concept = 8;
    cfg.rank_candidates = 20;
    dataset = matching::BuildMatchingDataset(world, cfg);
    std::printf("  %zu train pairs, %zu test pairs, %zu rank queries\n",
                dataset.train.size(), dataset.test.size(),
                dataset.rank_queries.size());
  }

  matching::KnowledgeResources know;
  know.pos_tagger = &world.pos_tagger();
  know.gloss_encoder = &resources->gloss_encoder();
  know.gloss_lookup = [&](const std::string& w) {
    return resources->GlossOf(w);
  };
  know.concept_classes = [&](const std::vector<std::string>& tokens) {
    std::vector<int> out;
    auto ec = world.net().FindEcConcept(text::JoinTokens(tokens));
    if (ec.has_value()) {
      for (kg::ConceptId p : world.net().PrimitivesForEc(*ec)) {
        out.push_back(static_cast<int>(world.net().Get(p).cls.value));
      }
    }
    return out;
  };
  know.num_classes = static_cast<int>(world.net().taxonomy().size());

  matching::NeuralMatcherConfig base;
  base.epochs = 7;
  matching::KnowledgeMatcherConfig ours_cfg;
  ours_cfg.base = base;
  ours_cfg.use_knowledge = false;
  matching::KnowledgeMatcherConfig ours_k_cfg;
  ours_k_cfg.base = base;
  matching::KnowledgeResources ours_res;  // no knowledge plumbing needed
  ours_res.pos_tagger = &world.pos_tagger();

  struct Row {
    std::unique_ptr<matching::Matcher> model;
    const char* paper;
  };
  std::vector<Row> rows;
  rows.push_back({std::make_unique<matching::Bm25Matcher>(),
                  "-/-/0.7681"});
  rows.push_back({std::make_unique<matching::DssmMatcher>(
                      base, &resources->embeddings(), &resources->vocab()),
                  "0.7885/0.6937/0.7971"});
  rows.push_back({std::make_unique<matching::MatchPyramidMatcher>(
                      base, &resources->embeddings(), &resources->vocab()),
                  "0.8127/0.7352/0.7813"});
  rows.push_back({std::make_unique<matching::Re2Matcher>(
                      base, &resources->embeddings(), &resources->vocab()),
                  "0.8664/0.7052/0.8977"});
  rows.push_back({std::make_unique<matching::KnowledgeMatcher>(
                      ours_cfg, ours_res, &resources->embeddings(),
                      &resources->vocab()),
                  "0.8610/0.7532/0.9015"});
  rows.push_back({std::make_unique<matching::KnowledgeMatcher>(
                      ours_k_cfg, know, &resources->embeddings(),
                      &resources->vocab()),
                  "0.8713/0.7769/0.9048"});

  TablePrinter table("Table 6 (measured)");
  table.SetHeader({"Model", "AUC", "F1", "P@10", "Paper AUC/F1/P@10"});
  for (auto& row : rows) {
    bench::StageTimer t(row.model->name().c_str());
    row.model->Train(dataset);
    auto m = matching::EvaluateMatcher(*row.model, dataset);
    bool is_bm25 = row.model->name() == "BM25";
    table.AddRow({row.model->name(),
                  is_bm25 ? "-" : TablePrinter::Num(m.auc, 4),
                  is_bm25 ? "-" : TablePrinter::Num(m.f1, 4),
                  TablePrinter::Num(m.p_at_10, 4), row.paper});
  }
  table.Print();
  std::printf(
      "\nShape check: knowledge should improve Ours on every metric; the "
      "strong learned models (MatchPyramid/RE2/Ours) should beat BM25 and "
      "DSSM; RE2 is the strongest baseline on AUC, as in the paper.\n");
  return 0;
}
