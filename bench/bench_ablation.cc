// Design-choice ablations beyond the paper's tables, plus the Section-10
// future-work extension (commonsense relation inference with
// probabilities):
//   1. the matcher's two channels (attention c/i vs matching pyramid),
//   2. relation-inference lift threshold sweep (precision/recall trade).

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "matching/knowledge_matcher.h"
#include "mining/relation_inference.h"
#include "text/tokenizer.h"

int main() {
  using namespace alicoco;
  std::printf("== Design ablations + future-work extension ==\n\n");

  datagen::World world = [] {
    bench::StageTimer t("generate world");
    return datagen::World::Generate(bench::BenchWorldConfig());
  }();
  auto resources = [&] {
    bench::StageTimer t("train embeddings + LM");
    return std::make_unique<datagen::WorldResources>(
        world, datagen::ResourcesConfig{});
  }();

  // ---- 1. matcher channel ablation ----
  matching::MatchingDatasetConfig mdc;
  mdc.max_positives_per_concept = 8;
  mdc.rank_candidates = 20;
  auto dataset = matching::BuildMatchingDataset(world, mdc);

  matching::KnowledgeResources know;
  know.pos_tagger = &world.pos_tagger();
  know.gloss_encoder = &resources->gloss_encoder();
  know.gloss_lookup = [&](const std::string& w) {
    return resources->GlossOf(w);
  };
  know.concept_classes = [&](const std::vector<std::string>& tokens) {
    std::vector<int> out;
    auto ec = world.net().FindEcConcept(text::JoinTokens(tokens));
    if (ec.has_value()) {
      for (kg::ConceptId p : world.net().PrimitivesForEc(*ec)) {
        out.push_back(static_cast<int>(world.net().Get(p).cls.value));
      }
    }
    return out;
  };
  know.num_classes = static_cast<int>(world.net().taxonomy().size());
  matching::KnowledgeResources plain;
  plain.pos_tagger = &world.pos_tagger();

  TablePrinter matcher_table(
      "Matcher channel ablation (attention c/i x knowledge)");
  matcher_table.SetHeader({"attention", "knowledge", "AUC", "F1", "P@10"});
  for (bool attention : {false, true}) {
    for (bool knowledge : {false, true}) {
      bench::StageTimer t("matcher variant");
      matching::KnowledgeMatcherConfig cfg;
      cfg.base.epochs = 5;
      cfg.use_attention_channel = attention;
      cfg.use_knowledge = knowledge;
      matching::KnowledgeMatcher model(cfg, knowledge ? know : plain,
                                       &resources->embeddings(),
                                       &resources->vocab());
      model.Train(dataset);
      auto m = matching::EvaluateMatcher(model, dataset);
      matcher_table.AddRow({attention ? "on" : "off",
                            knowledge ? "on" : "off",
                            TablePrinter::Num(m.auc, 4),
                            TablePrinter::Num(m.f1, 4),
                            TablePrinter::Num(m.p_at_10, 4)});
    }
  }
  matcher_table.Print();

  // ---- 2. relation inference (future work items 1-2) ----
  mining::RelationInference engine(&world.net());
  TablePrinter rel_table(
      "\nCommonsense relation inference: lift-threshold sweep "
      "(suitable_when)");
  rel_table.SetHeader({"min lift", "proposed", "precision", "recall",
                       "top confidence"});
  for (double lift : {1.1, 1.5, 2.0, 3.0}) {
    mining::RelationInferenceConfig cfg;
    cfg.min_lift = lift;
    auto proposals = engine.InferSuitableWhen(cfg);
    auto quality =
        mining::EvaluateSuitableWhen(proposals, world, cfg.min_support);
    rel_table.AddRow({TablePrinter::Num(lift, 1),
                      std::to_string(quality.proposed),
                      TablePrinter::Num(quality.precision, 3),
                      TablePrinter::Num(quality.recall, 3),
                      proposals.empty()
                          ? "-"
                          : TablePrinter::Num(proposals[0].confidence, 3)});
  }
  rel_table.Print();

  mining::RelationInferenceConfig cfg;
  auto used_when = engine.InferUsedWhen(cfg);
  size_t correct = 0;
  for (const auto& rel : used_when) {
    correct += world.GoldCompatible(rel.subject, rel.object);
  }
  std::printf(
      "\nused_when(category, event) from item associations: %zu proposals, "
      "precision %.3f\n(the 'boy's T-shirt implies Summer' inference of "
      "Section 10, with confidences per future-work item 2)\n",
      used_when.size(),
      used_when.empty() ? 0.0
                        : static_cast<double>(correct) / used_when.size());
  std::printf(
      "\nShape check: the pyramid channel should carry most of the matcher; "
      "knowledge should help in every configuration; relation-inference "
      "precision should rise with the lift threshold while recall falls.\n");
  return 0;
}
