# Sanitizer and warning hardening applied to every target (src, tests,
# bench, examples). Include from the top-level CMakeLists before any
# add_subdirectory so the flags reach the whole stack.
#
#   -DALICOCO_SANITIZE=address            ASan
#   -DALICOCO_SANITIZE=undefined          UBSan (recover disabled: any report
#                                         aborts, so ctest fails loudly)
#   -DALICOCO_SANITIZE=thread             TSan
#   -DALICOCO_SANITIZE=address,undefined  combined ASan+UBSan
#   -DALICOCO_WERROR=ON                   -Wall -Wextra are errors
#
# Sanitized builds also define ALICOCO_FORCE_DCHECKS so the ALICOCO_DCHECK
# invariant layer (common/check.h) stays armed even in optimized builds.

set(ALICOCO_SANITIZE "" CACHE STRING
    "Sanitizers to enable: address, undefined, thread, or address,undefined")
set_property(CACHE ALICOCO_SANITIZE PROPERTY STRINGS
             "" "address" "undefined" "thread" "address,undefined")

option(ALICOCO_WERROR "Treat compiler warnings as errors" OFF)
option(ALICOCO_THREAD_SAFETY
       "Enable clang -Wthread-safety analysis of the ALICOCO_GUARDED_BY / \
ALICOCO_REQUIRES annotations (no-op on non-clang compilers)" OFF)

if(ALICOCO_SANITIZE)
  string(REPLACE "," ";" _alicoco_san_list "${ALICOCO_SANITIZE}")
  foreach(_san IN LISTS _alicoco_san_list)
    if(NOT _san MATCHES "^(address|undefined|thread|leak)$")
      message(FATAL_ERROR
              "ALICOCO_SANITIZE: unknown sanitizer '${_san}' "
              "(expected address, undefined, thread, or leak)")
    endif()
  endforeach()
  if("thread" IN_LIST _alicoco_san_list AND
     ("address" IN_LIST _alicoco_san_list OR
      "leak" IN_LIST _alicoco_san_list))
    message(FATAL_ERROR
            "ALICOCO_SANITIZE: thread cannot be combined with "
            "address/leak — run them as separate builds")
  endif()

  add_compile_options(
    -fsanitize=${ALICOCO_SANITIZE}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all
    -g)
  add_link_options(-fsanitize=${ALICOCO_SANITIZE})
  add_compile_definitions(ALICOCO_FORCE_DCHECKS=1)
  message(STATUS "AliCoCo: sanitizers enabled: ${ALICOCO_SANITIZE} "
                 "(DCHECKs forced on)")
endif()

if(ALICOCO_WERROR)
  add_compile_options(-Werror)
  message(STATUS "AliCoCo: warnings are errors")
endif()

if(ALICOCO_THREAD_SAFETY)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    add_compile_options(-Wthread-safety)
    message(STATUS "AliCoCo: clang -Wthread-safety analysis enabled")
  else()
    message(STATUS "AliCoCo: ALICOCO_THREAD_SAFETY requested but the "
                   "compiler is ${CMAKE_CXX_COMPILER_ID}, not clang; the "
                   "annotations compile to no-ops and nothing is checked")
  endif()
endif()
