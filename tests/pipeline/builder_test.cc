// End-to-end pipeline integration test: builds a complete AliCoCo from a
// small synthetic world and checks every stage produced sensible structure.

#include "pipeline/builder.h"

#include <gtest/gtest.h>

#include "kg/persistence.h"
#include "kg/stats.h"

namespace alicoco::pipeline {
namespace {

struct Built {
  datagen::World world;
  std::unique_ptr<datagen::WorldResources> resources;
  kg::ConceptNet net;
  BuildReport report;

  Built() : world(datagen::World::Generate(WorldCfg())) {
    resources = std::make_unique<datagen::WorldResources>(
        world, datagen::ResourcesConfig{});
    PipelineConfig cfg;
    cfg.labeler.epochs = 3;
    cfg.mining_epochs = 2;
    cfg.projection.epochs = 3;
    cfg.classifier.epochs = 3;
    cfg.tagger.epochs = 4;
    cfg.matcher.base.epochs = 4;
    cfg.association_candidates = 60;
    AliCoCoBuilder builder(&world, resources.get(), cfg);
    auto result = builder.Build(&report);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    net = std::move(result).ValueOrDie();
  }

  static datagen::WorldConfig WorldCfg() {
    datagen::WorldConfig cfg;
    cfg.seed = 81;
    cfg.heads_per_leaf = 2;
    cfg.derived_per_head = 3;
    cfg.per_domain_vocab = 10;
    cfg.num_events = 8;
    cfg.num_items = 500;
    cfg.num_good_ec_concepts = 250;
    cfg.num_bad_ec_concepts = 250;
    cfg.titles = 900;
    cfg.reviews = 400;
    cfg.guides = 400;
    cfg.queries = 300;
    cfg.num_users = 20;
    cfg.num_needs_queries = 50;
    return cfg;
  }
};

Built& SharedBuilt() {
  static Built b;
  return b;
}

TEST(PipelineTest, AllStagesProduceStructure) {
  Built& b = SharedBuilt();
  const auto& r = b.report;
  EXPECT_GT(r.seed_concepts, 100u);
  ASSERT_EQ(r.mining_epochs.size(), 2u);
  EXPECT_GT(r.mined_concepts, 0u);
  EXPECT_GT(r.isa_from_patterns, 0u);
  EXPECT_GT(r.ec_candidates, 100u);
  EXPECT_TRUE(r.audit_passed);
  EXPECT_GT(r.audit_accuracy, 0.7);
  EXPECT_GT(r.ec_accepted, 20u);
  EXPECT_GT(r.interpretation_links, r.ec_accepted / 2);
  EXPECT_EQ(r.items_added, b.world.net().num_items());
  EXPECT_GT(r.item_primitive_links, r.items_added);  // >1 tag per item
  EXPECT_GT(r.item_ec_links, 0u);
}

TEST(PipelineTest, BuiltNetQualityAgainstGold) {
  Built& b = SharedBuilt();
  auto cmp = AliCoCoBuilder::CompareToGold(b.net, b.world);
  EXPECT_GT(cmp.primitive_precision, 0.95);  // oracle-audited adds
  EXPECT_GT(cmp.primitive_recall, 0.6);
  EXPECT_GT(cmp.isa_precision, 0.8);
  EXPECT_GT(cmp.isa_recall, 0.5);
  EXPECT_GT(cmp.ec_precision, 0.6);
  EXPECT_GT(cmp.item_link_precision, 0.2);
}

TEST(PipelineTest, ReportSummaryMentionsStages) {
  Built& b = SharedBuilt();
  std::string s = b.report.Summary();
  EXPECT_NE(s.find("seed concepts"), std::string::npos);
  EXPECT_NE(s.find("mining epoch 1"), std::string::npos);
  EXPECT_NE(s.find("isA from patterns"), std::string::npos);
  EXPECT_NE(s.find("item-ec links"), std::string::npos);
}

TEST(PipelineTest, BuiltNetSurvivesPersistenceRoundTrip) {
  Built& b = SharedBuilt();
  std::string path = std::string(::testing::TempDir()) + "/built_net.txt";
  ASSERT_TRUE(kg::SaveConceptNet(b.net, path).ok());
  auto loaded = kg::LoadConceptNet(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(kg::StatisticsToTable(kg::ComputeStatistics(b.net)),
            kg::StatisticsToTable(kg::ComputeStatistics(*loaded)));
}

TEST(PipelineTest, StatisticsHaveTable2Shape) {
  Built& b = SharedBuilt();
  auto stats = kg::ComputeStatistics(b.net);
  EXPECT_EQ(stats.per_domain.size(), 20u);
  EXPECT_GT(stats.num_primitive_concepts, 0u);
  EXPECT_GT(stats.num_ec_concepts, 0u);
  EXPECT_GT(stats.num_items, 0u);
  EXPECT_GT(stats.total_relations, stats.num_items);
}

}  // namespace
}  // namespace alicoco::pipeline
