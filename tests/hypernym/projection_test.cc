// Projection learning + active learning on a small synthetic world.

#include <gtest/gtest.h>

#include "datagen/world.h"
#include "hypernym/active_learning.h"
#include "hypernym/projection_model.h"
#include "text/skipgram.h"

namespace alicoco::hypernym {
namespace {

struct Fixture {
  datagen::World world;
  text::Vocabulary vocab;
  std::unique_ptr<text::SkipgramModel> embeddings;

  Fixture()
      : world(datagen::World::Generate([] {
          datagen::WorldConfig cfg;
          cfg.seed = 33;
          cfg.heads_per_leaf = 2;
          cfg.derived_per_head = 4;
          cfg.per_domain_vocab = 10;
          cfg.num_events = 8;
          cfg.num_items = 600;
          cfg.num_good_ec_concepts = 40;
          cfg.num_bad_ec_concepts = 40;
          cfg.titles = 1200;
          cfg.reviews = 400;
          cfg.guides = 500;
          cfg.queries = 300;
          cfg.num_users = 10;
          cfg.num_needs_queries = 50;
          return cfg;
        }())) {
    std::vector<std::vector<int>> corpus;
    for (const auto& s : world.sentences()) {
      std::vector<int> ids;
      for (const auto& t : s.tokens) ids.push_back(vocab.Add(t));
      corpus.push_back(ids);
    }
    text::SkipgramConfig sg;
    sg.dim = 20;
    sg.epochs = 8;
    sg.subsample = 0;  // tiny corpus: keep every occurrence
    embeddings = std::make_unique<text::SkipgramModel>(vocab.size(), sg);
    embeddings->Train(corpus, vocab);
  }
};

Fixture& SharedFixture() {
  static Fixture f;
  return f;
}

TEST(ProjectionModelTest, BeatsChanceOnHypernymRanking) {
  Fixture& f = SharedFixture();
  auto ds = BuildHypernymDataset(f.world.hypernym_gold(),
                                 f.world.category_vocabulary(),
                                 /*negatives_per_positive=*/20,
                                 /*test_candidates=*/30, 5);
  ASSERT_FALSE(ds.pool.empty());
  ASSERT_FALSE(ds.test.empty());
  ProjectionConfig cfg;
  cfg.epochs = 3;
  auto metrics = TrainOnPoolAndEvaluate(f.embeddings.get(), &f.vocab, cfg, ds);
  // Chance MAP with 1 positive among ~31 candidates is ~0.11.
  EXPECT_GT(metrics.map, 0.35);
  EXPECT_GT(metrics.mrr, 0.35);
}

TEST(ProjectionModelTest, ScoreIsProbability) {
  Fixture& f = SharedFixture();
  ProjectionConfig cfg;
  cfg.epochs = 1;
  ProjectionModel model(f.embeddings.get(), &f.vocab, cfg);
  std::vector<LabeledPair> tiny = {
      {f.world.hypernym_gold()[0].hypo, f.world.hypernym_gold()[0].hyper, 1},
      {f.world.hypernym_gold()[0].hypo, "nonsense", 0}};
  model.Train(tiny);
  double s = model.Score("anything", "else");
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(DatasetTest, SplitsAndNegativeRatio) {
  Fixture& f = SharedFixture();
  int n_ratio = 10;
  auto ds = BuildHypernymDataset(f.world.hypernym_gold(),
                                 f.world.category_vocabulary(), n_ratio, 20,
                                 7);
  size_t gold = f.world.hypernym_gold().size();
  size_t train_pos = gold * 7 / 10;
  EXPECT_EQ(ds.pool.size(), train_pos * (1 + n_ratio));
  // No positive pair sampled as negative.
  for (const auto& p : ds.pool) {
    if (p.label == 0) {
      bool is_gold = false;
      for (const auto& g : f.world.hypernym_gold()) {
        if (g.hypo == p.hypo && g.hyper == p.hyper) is_gold = true;
      }
      EXPECT_FALSE(is_gold);
    }
  }
  for (const auto& q : ds.test) {
    EXPECT_GE(q.candidates.size(), 21u);
    EXPECT_EQ(q.candidates.size(), q.labels.size());
    EXPECT_EQ(q.labels[0], 1);
  }
}

TEST(ActiveLearningTest, AllStrategiesLearn) {
  Fixture& f = SharedFixture();
  auto ds = BuildHypernymDataset(f.world.hypernym_gold(),
                                 f.world.category_vocabulary(), 20, 30, 9);
  ActiveLearningConfig cfg;
  cfg.per_round = ds.pool.size() / 6;
  cfg.max_rounds = 4;
  cfg.patience = 4;
  cfg.model.epochs = 2;
  ActiveLearner learner(f.embeddings.get(), &f.vocab, cfg);
  for (auto strategy :
       {SamplingStrategy::kRandom, SamplingStrategy::kUncertainty,
        SamplingStrategy::kConfidence, SamplingStrategy::kUcs}) {
    auto result = learner.Run(strategy, ds, 11);
    ASSERT_FALSE(result.rounds.empty()) << StrategyName(strategy);
    EXPECT_GT(result.best_map, 0.2) << StrategyName(strategy);
    // Labeled counts grow monotonically.
    for (size_t i = 1; i < result.rounds.size(); ++i) {
      EXPECT_GT(result.rounds[i].labeled_total,
                result.rounds[i - 1].labeled_total);
    }
  }
}

TEST(ActiveLearningTest, LabeledToReachFindsRound) {
  ActiveLearningResult r;
  r.rounds = {{100, {0.2, 0, 0}}, {200, {0.5, 0, 0}}, {300, {0.6, 0, 0}}};
  EXPECT_EQ(r.LabeledToReach(0.45), 200u);
  EXPECT_EQ(r.LabeledToReach(0.1), 100u);
  EXPECT_EQ(r.LabeledToReach(0.9), 0u);
}

TEST(StrategyNameTest, Names) {
  EXPECT_STREQ(StrategyName(SamplingStrategy::kUcs), "UCS");
  EXPECT_STREQ(StrategyName(SamplingStrategy::kRandom), "Random");
}

}  // namespace
}  // namespace alicoco::hypernym
