#include "hypernym/patterns.h"

#include <gtest/gtest.h>

namespace alicoco::hypernym {
namespace {

PatternHypernymMiner BuildMiner() {
  return PatternHypernymMiner(
      {"boot", "rain boot", "snow boot", "footwear", "grill"});
}

TEST(HearstTest, ExtractsSuchAsPairs) {
  auto miner = BuildMiner();
  auto pairs = miner.MineHearst(
      {{"footwear", "such", "as", "boot", "and", "grill"}});
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].hypo, "boot");
  EXPECT_EQ(pairs[0].hyper, "footwear");
  EXPECT_EQ(pairs[1].hypo, "grill");
  EXPECT_EQ(pairs[1].hyper, "footwear");
}

TEST(HearstTest, MatchesMultiTokenSurfaces) {
  auto miner = BuildMiner();
  auto pairs =
      miner.MineHearst({{"boot", "such", "as", "rain", "boot"}});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].hypo, "rain boot");
  EXPECT_EQ(pairs[0].hyper, "boot");
}

TEST(HearstTest, AccumulatesSupport) {
  auto miner = BuildMiner();
  std::vector<std::vector<std::string>> corpus(
      3, {"footwear", "such", "as", "boot"});
  auto pairs = miner.MineHearst(corpus);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].support, 3u);
}

TEST(HearstTest, IgnoresNonVocabularyWords) {
  auto miner = BuildMiner();
  EXPECT_TRUE(
      miner.MineHearst({{"things", "such", "as", "stuff"}}).empty());
  EXPECT_TRUE(miner.MineHearst({{"no", "pattern", "here"}}).empty());
  EXPECT_TRUE(miner.MineHearst({{"such", "as"}}).empty());
}

TEST(HearstTest, SkipsSelfPairs) {
  auto miner = BuildMiner();
  EXPECT_TRUE(miner.MineHearst({{"boot", "such", "as", "boot"}}).empty());
}

TEST(SuffixTest, FindsHeadSuffix) {
  auto miner = BuildMiner();
  auto pairs = miner.MineSuffix();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].hypo, "rain boot");
  EXPECT_EQ(pairs[0].hyper, "boot");
  EXPECT_EQ(pairs[0].source, PatternPair::Source::kSuffix);
  EXPECT_EQ(pairs[1].hypo, "snow boot");
}

TEST(SuffixTest, NoFalsePositivesOnDisjointSurfaces) {
  PatternHypernymMiner miner({"jacket", "top"});
  EXPECT_TRUE(miner.MineSuffix().empty());
}

}  // namespace
}  // namespace alicoco::hypernym
