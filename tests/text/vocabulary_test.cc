#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace alicoco::text {
namespace {

TEST(VocabularyTest, SpecialsPresent) {
  Vocabulary v;
  EXPECT_EQ(v.size(), 2);
  EXPECT_EQ(v.Id("<pad>"), Vocabulary::kPadId);
  EXPECT_EQ(v.Id("<unk>"), Vocabulary::kUnkId);
}

TEST(VocabularyTest, AddAssignsStableIds) {
  Vocabulary v;
  int a = v.Add("dress");
  int b = v.Add("hat");
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 3);
  EXPECT_EQ(v.Add("dress"), a);  // re-add returns same id
  EXPECT_EQ(v.Id("dress"), a);
  EXPECT_EQ(v.Token(a), "dress");
}

TEST(VocabularyTest, CountsAccumulate) {
  Vocabulary v;
  int a = v.Add("x");
  v.Add("x");
  v.Add("x");
  EXPECT_EQ(v.Count(a), 3);
}

TEST(VocabularyTest, UnknownLookups) {
  Vocabulary v;
  EXPECT_EQ(v.Id("nope"), Vocabulary::kUnkId);
  EXPECT_FALSE(v.Contains("nope"));
  EXPECT_EQ(v.Token(-1), "<unk>");
  EXPECT_EQ(v.Token(9999), "<unk>");
  EXPECT_EQ(v.Count(9999), 0);
}

TEST(VocabularyTest, EncodeDecode) {
  Vocabulary v;
  v.Add("warm");
  v.Add("hat");
  auto ids = v.Encode({"warm", "hat", "unknown"});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[2], Vocabulary::kUnkId);
  auto back = v.Decode(ids);
  EXPECT_EQ(back[0], "warm");
  EXPECT_EQ(back[2], "<unk>");
}

TEST(VocabularyTest, PruneReassignsIds) {
  Vocabulary v;
  v.Add("rare");
  for (int i = 0; i < 5; ++i) v.Add("common");
  v.PruneBelow(2);
  EXPECT_FALSE(v.Contains("rare"));
  ASSERT_TRUE(v.Contains("common"));
  int id = v.Id("common");
  EXPECT_EQ(v.Token(id), "common");
  EXPECT_EQ(v.Count(id), 5);
  EXPECT_EQ(v.size(), 3);
}

}  // namespace
}  // namespace alicoco::text
