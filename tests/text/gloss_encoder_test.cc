#include "text/gloss_encoder.h"

#include <gtest/gtest.h>

#include <cmath>

namespace alicoco::text {
namespace {

struct Fixture {
  Vocabulary vocab;
  std::vector<std::vector<int>> corpus;
  SkipgramModel model;

  Fixture() : model(Build(), SkipgramConfig{.dim = 8, .epochs = 2, .seed = 5}) {
    model.Train(corpus, vocab);
  }

  int Build() {
    Rng rng(31);
    std::vector<std::string> words = {"festival", "moon", "cake", "gift",
                                      "lantern", "warm", "coat", "winter"};
    for (int i = 0; i < 300; ++i) {
      std::vector<int> sent;
      for (int j = 0; j < 5; ++j) {
        sent.push_back(vocab.Add(words[rng.Uniform(words.size())]));
      }
      corpus.push_back(sent);
    }
    return vocab.size();
  }
};

TEST(GlossEncoderTest, EncodesToUnitVector) {
  Fixture f;
  GlossEncoder enc(&f.model, &f.vocab);
  auto v = enc.Encode({"festival", "moon", "cake"});
  ASSERT_EQ(v.size(), 8u);
  float norm = 0;
  for (float x : v) norm += x * x;
  EXPECT_NEAR(std::sqrt(norm), 1.0f, 1e-4);
}

TEST(GlossEncoderTest, EmptyOrUnknownGivesZero) {
  Fixture f;
  GlossEncoder enc(&f.model, &f.vocab);
  for (float x : enc.Encode({})) EXPECT_EQ(x, 0.0f);
  for (float x : enc.Encode({"zzz", "qqq"})) EXPECT_EQ(x, 0.0f);
}

TEST(GlossEncoderTest, IdfDownweightsUbiquitousWords) {
  Fixture f;
  GlossEncoder enc(&f.model, &f.vocab);
  // "festival" appears in every doc; "cake" in one.
  for (int i = 0; i < 50; ++i) {
    enc.ObserveDocument({"festival", i == 0 ? "cake" : "gift"});
  }
  enc.FinalizeIdf();
  auto with_rare = enc.Encode({"festival", "cake"});
  // Direction should lean toward the rare word "cake": cosine with pure cake
  // vector exceeds cosine with pure festival vector.
  auto cake = enc.Encode({"cake"});
  auto fest = enc.Encode({"festival"});
  float dot_cake = 0, dot_fest = 0;
  for (size_t k = 0; k < with_rare.size(); ++k) {
    dot_cake += with_rare[k] * cake[k];
    dot_fest += with_rare[k] * fest[k];
  }
  EXPECT_GT(dot_cake, dot_fest);
}

TEST(GlossEncoderTest, SameInputSameOutput) {
  Fixture f;
  GlossEncoder enc(&f.model, &f.vocab);
  auto a = enc.Encode({"warm", "coat"});
  auto b = enc.Encode({"warm", "coat"});
  EXPECT_EQ(a, b);
}

TEST(ContextMatrixTest, RowsForSeenWordsNonZero) {
  Fixture f;
  ContextMatrix tm(f.corpus, f.model, 2);
  int id = f.vocab.Id("moon");
  const auto& row = tm.Row(id);
  ASSERT_EQ(row.size(), 8u);
  float norm = 0;
  for (float x : row) norm += x * x;
  EXPECT_NEAR(std::sqrt(norm), 1.0f, 1e-4);
}

TEST(ContextMatrixTest, UnseenWordGetsZeroRow) {
  Fixture f;
  ContextMatrix tm(f.corpus, f.model, 2);
  for (float x : tm.Row(-1)) EXPECT_EQ(x, 0.0f);
  for (float x : tm.Row(999999)) EXPECT_EQ(x, 0.0f);
}

TEST(ContextMatrixTest, SimilarContextsSimilarRows) {
  // "moon" and "cake" both co-occur with everything uniformly in the toy
  // corpus, so their context rows should be highly similar.
  Fixture f;
  ContextMatrix tm(f.corpus, f.model, 2);
  const auto& a = tm.Row(f.vocab.Id("moon"));
  const auto& b = tm.Row(f.vocab.Id("cake"));
  float dot = 0;
  for (size_t k = 0; k < a.size(); ++k) dot += a[k] * b[k];
  EXPECT_GT(dot, 0.8f);
}

}  // namespace
}  // namespace alicoco::text
