#include "text/segmenter.h"

#include <gtest/gtest.h>

namespace alicoco::text {
namespace {

MaxMatchSegmenter BuildDict() {
  MaxMatchSegmenter seg;
  seg.AddPhrase({"outdoor"}, "Location");
  seg.AddPhrase({"barbecue"}, "Event");
  seg.AddPhrase({"cotton", "padded", "trousers"}, "Category");
  seg.AddPhrase({"trousers"}, "Category");
  return seg;
}

TEST(SegmenterTest, SingleTokenMatches) {
  auto seg = BuildDict().Match({"great", "outdoor", "barbecue", "fun"});
  ASSERT_EQ(seg.matches.size(), 2u);
  EXPECT_EQ(seg.iob[0], "O");
  EXPECT_EQ(seg.iob[1], "B-Location");
  EXPECT_EQ(seg.iob[2], "B-Event");
  EXPECT_EQ(seg.iob[3], "O");
  EXPECT_FALSE(seg.ambiguous);
  EXPECT_EQ(seg.covered_tokens, 2u);
}

TEST(SegmenterTest, PrefersLongerMatch) {
  auto seg = BuildDict().Match({"cotton", "padded", "trousers"});
  ASSERT_EQ(seg.matches.size(), 1u);
  EXPECT_EQ(seg.matches[0].phrase, "cotton padded trousers");
  EXPECT_EQ(seg.iob[0], "B-Category");
  EXPECT_EQ(seg.iob[1], "I-Category");
  EXPECT_EQ(seg.iob[2], "I-Category");
  EXPECT_EQ(seg.covered_tokens, 3u);
}

TEST(SegmenterTest, MultiLabelPhraseIsAmbiguous) {
  MaxMatchSegmenter seg;
  seg.AddPhrase({"village"}, "Location");
  seg.AddPhrase({"village"}, "Style");
  auto s = seg.Match({"village", "skirt"});
  EXPECT_TRUE(s.ambiguous);
}

TEST(SegmenterTest, NonOverlappingUnambiguous) {
  MaxMatchSegmenter seg;
  seg.AddPhrase({"warm"}, "Function");
  seg.AddPhrase({"hat"}, "Category");
  auto s = seg.Match({"warm", "hat"});
  EXPECT_FALSE(s.ambiguous);
  EXPECT_EQ(s.covered_tokens, 2u);
}

TEST(SegmenterTest, OverlapResolvedByCoverage) {
  MaxMatchSegmenter seg;
  seg.AddPhrase({"ice", "cream"}, "Category");
  seg.AddPhrase({"cream"}, "Category");
  auto s = seg.Match({"ice", "cream"});
  // Two-token match covers more; single "cream" is strictly worse.
  ASSERT_EQ(s.matches.size(), 1u);
  EXPECT_EQ(s.matches[0].phrase, "ice cream");
  EXPECT_FALSE(s.ambiguous);
}

TEST(SegmenterTest, EqualCoverageAlternativesAreAmbiguous) {
  MaxMatchSegmenter seg;
  // "a b" vs "b c" both cover 2 of 3 tokens: two optima.
  seg.AddPhrase({"a", "b"}, "X");
  seg.AddPhrase({"b", "c"}, "Y");
  auto s = seg.Match({"a", "b", "c"});
  EXPECT_TRUE(s.ambiguous);
  EXPECT_EQ(s.covered_tokens, 2u);
}

TEST(SegmenterTest, EmptySentence) {
  auto s = BuildDict().Match({});
  EXPECT_TRUE(s.matches.empty());
  EXPECT_TRUE(s.iob.empty());
  EXPECT_FALSE(s.ambiguous);
}

TEST(SegmenterTest, NoMatches) {
  auto s = BuildDict().Match({"hello", "world"});
  EXPECT_TRUE(s.matches.empty());
  EXPECT_EQ(s.iob[0], "O");
  EXPECT_EQ(s.covered_tokens, 0u);
}

TEST(SegmenterTest, AllOccurrencesIncludesOverlaps) {
  MaxMatchSegmenter seg;
  seg.AddPhrase({"ice", "cream"}, "Category");
  seg.AddPhrase({"cream"}, "Category");
  auto occ = seg.AllOccurrences({"ice", "cream"});
  EXPECT_EQ(occ.size(), 2u);
}

TEST(SegmenterTest, EntryCountingDeduplicates) {
  MaxMatchSegmenter seg;
  seg.AddPhrase({"x"}, "A");
  seg.AddPhrase({"x"}, "A");  // duplicate ignored
  seg.AddPhrase({"x"}, "B");
  EXPECT_EQ(seg.num_entries(), 2u);
  EXPECT_EQ(seg.max_phrase_len(), 1u);
}

}  // namespace
}  // namespace alicoco::text
