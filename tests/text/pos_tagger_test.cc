#include "text/pos_tagger.h"

#include <gtest/gtest.h>

namespace alicoco::text {
namespace {

TEST(PosTaggerTest, BuiltinFunctionWords) {
  PosTagger tagger;
  EXPECT_EQ(tagger.Tag("for"), PosTag::kPrep);
  EXPECT_EQ(tagger.Tag("in"), PosTag::kPrep);
  EXPECT_EQ(tagger.Tag("the"), PosTag::kOther);
}

TEST(PosTaggerTest, LexiconWins) {
  PosTagger tagger;
  tagger.AddLexeme("barbecue", PosTag::kVerb);
  EXPECT_EQ(tagger.Tag("barbecue"), PosTag::kVerb);
  tagger.AddLexeme("barbecue", PosTag::kNoun);  // update
  EXPECT_EQ(tagger.Tag("barbecue"), PosTag::kNoun);
}

TEST(PosTaggerTest, SuffixFallbacks) {
  PosTagger tagger;
  EXPECT_EQ(tagger.Tag("sunny"), PosTag::kAdj);
  EXPECT_EQ(tagger.Tag("traveling"), PosTag::kVerb);
  EXPECT_EQ(tagger.Tag("grill"), PosTag::kNoun);
}

TEST(PosTaggerTest, Digits) {
  PosTagger tagger;
  EXPECT_EQ(tagger.Tag("800"), PosTag::kNum);
  EXPECT_NE(tagger.Tag("800g"), PosTag::kNum);
}

TEST(PosTaggerTest, TagSequence) {
  PosTagger tagger;
  tagger.AddLexeme("hat", PosTag::kNoun);
  auto tags = tagger.TagSequence({"warmy", "hat", "for", "traveling"});
  ASSERT_EQ(tags.size(), 4u);
  EXPECT_EQ(tags[0], PosTag::kAdj);
  EXPECT_EQ(tags[1], PosTag::kNoun);
  EXPECT_EQ(tags[2], PosTag::kPrep);
  EXPECT_EQ(tags[3], PosTag::kVerb);
}

TEST(PosTaggerTest, Names) {
  EXPECT_STREQ(PosTagName(PosTag::kNoun), "NOUN");
  EXPECT_STREQ(PosTagName(PosTag::kNum), "NUM");
}

}  // namespace
}  // namespace alicoco::text
