#include "text/ngram_lm.h"

#include <gtest/gtest.h>

#include <cmath>

namespace alicoco::text {
namespace {

NgramLm TrainToy() {
  NgramLm lm;
  for (int i = 0; i < 20; ++i) {
    lm.AddSentence({"warm", "hat", "for", "traveling"});
    lm.AddSentence({"warm", "coat", "for", "winter"});
    lm.AddSentence({"christmas", "gifts", "for", "grandpa"});
  }
  lm.Finalize();
  return lm;
}

TEST(NgramLmTest, SeenSentenceMoreFluentThanShuffled) {
  auto lm = TrainToy();
  double good = lm.Perplexity({"warm", "hat", "for", "traveling"});
  double bad = lm.Perplexity({"traveling", "for", "hat", "warm"});
  EXPECT_LT(good, bad);
}

TEST(NgramLmTest, UnknownWordsRaisePerplexity) {
  auto lm = TrainToy();
  double seen = lm.Perplexity({"warm", "hat"});
  double unseen = lm.Perplexity({"qqq", "zzz"});
  EXPECT_LT(seen, unseen);
}

TEST(NgramLmTest, LogProbIsFiniteAndNegative) {
  auto lm = TrainToy();
  double lp = lm.LogProb("warm", "hat", "for");
  EXPECT_TRUE(std::isfinite(lp));
  EXPECT_LT(lp, 0.0);
  // Completely unseen context backs off without blowing up.
  double lp2 = lm.LogProb("alpha", "beta", "gamma");
  EXPECT_TRUE(std::isfinite(lp2));
}

TEST(NgramLmTest, HigherCountHigherProb) {
  NgramLm lm;
  for (int i = 0; i < 30; ++i) lm.AddSentence({"a", "b"});
  for (int i = 0; i < 3; ++i) lm.AddSentence({"a", "c"});
  lm.Finalize();
  EXPECT_GT(lm.LogProb("<s>", "a", "b"), lm.LogProb("<s>", "a", "c"));
}

TEST(NgramLmTest, EmptySentencePerplexityFinite) {
  auto lm = TrainToy();
  EXPECT_TRUE(std::isfinite(lm.Perplexity({})));
}

TEST(NgramLmTest, ScoreSentenceMatchesPerplexity) {
  auto lm = TrainToy();
  std::vector<std::string> s = {"warm", "hat"};
  EXPECT_NEAR(std::exp(-lm.ScoreSentence(s)), lm.Perplexity(s), 1e-9);
}

TEST(NgramLmTest, TotalsTracked) {
  NgramLm lm;
  lm.AddSentence({"x", "y"});
  lm.Finalize();
  // 2 words + </s>.
  EXPECT_EQ(lm.total_unigrams(), 3);
}

}  // namespace
}  // namespace alicoco::text
