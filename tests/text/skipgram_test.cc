#include "text/skipgram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace alicoco::text {
namespace {

// Builds a corpus with two tight clusters: {red, blue, green} co-occur with
// "color"; {hat, coat, dress} co-occur with "wear".
struct ClusterWorld {
  Vocabulary vocab;
  std::vector<std::vector<int>> corpus;

  ClusterWorld() {
    Rng rng(3);
    std::vector<std::string> colors = {"red", "blue", "green"};
    std::vector<std::string> clothes = {"hat", "coat", "dress"};
    for (int i = 0; i < 1200; ++i) {
      bool color = rng.Bernoulli(0.5);
      const auto& group = color ? colors : clothes;
      std::vector<std::string> sent = {color ? "color" : "wear",
                                       group[rng.Uniform(3)],
                                       group[rng.Uniform(3)]};
      std::vector<int> ids;
      for (const auto& w : sent) ids.push_back(vocab.Add(w));
      corpus.push_back(ids);
    }
  }
};

TEST(SkipgramTest, LearnsClusterStructure) {
  ClusterWorld world;
  SkipgramConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 6;
  cfg.subsample = 0;  // tiny vocab: keep everything
  SkipgramModel model(world.vocab.size(), cfg);
  model.Train(world.corpus, world.vocab);
  int red = world.vocab.Id("red"), blue = world.vocab.Id("blue");
  int hat = world.vocab.Id("hat");
  // In-cluster similarity exceeds cross-cluster similarity.
  EXPECT_GT(model.Cosine(red, blue), model.Cosine(red, hat));
}

TEST(SkipgramTest, DeterministicForSeed) {
  ClusterWorld world;
  SkipgramConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 2;
  SkipgramModel a(world.vocab.size(), cfg);
  SkipgramModel b(world.vocab.size(), cfg);
  a.Train(world.corpus, world.vocab);
  b.Train(world.corpus, world.vocab);
  auto ta = a.EmbeddingTable();
  auto tb = b.EmbeddingTable();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) EXPECT_FLOAT_EQ(ta[i], tb[i]);
}

TEST(SkipgramTest, EmbeddingTableShape) {
  SkipgramConfig cfg;
  cfg.dim = 12;
  SkipgramModel model(30, cfg);
  EXPECT_EQ(model.dim(), 12);
  EXPECT_EQ(model.vocab_size(), 30);
  EXPECT_EQ(model.EmbeddingTable().size(), 30u * 12u);
}

TEST(SkipgramTest, NearestExcludesSelfAndRanks) {
  ClusterWorld world;
  SkipgramConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 6;
  cfg.subsample = 0;
  SkipgramModel model(world.vocab.size(), cfg);
  model.Train(world.corpus, world.vocab);
  int red = world.vocab.Id("red");
  auto nn = model.Nearest(red, 3);
  ASSERT_EQ(nn.size(), 3u);
  for (int id : nn) EXPECT_NE(id, red);
  // Top-3 neighbours of "red" should come from the color cluster
  // {blue, green, color} more often than not; require at least 2.
  int in_cluster = 0;
  for (int id : nn) {
    std::string w = world.vocab.Token(id);
    if (w == "blue" || w == "green" || w == "color") ++in_cluster;
  }
  EXPECT_GE(in_cluster, 2);
}

TEST(SkipgramTest, CosineBounds) {
  SkipgramConfig cfg;
  cfg.dim = 8;
  SkipgramModel model(10, cfg);
  float c = model.Cosine(2, 3);
  EXPECT_LE(std::fabs(c), 1.0001f);
}

}  // namespace
}  // namespace alicoco::text
