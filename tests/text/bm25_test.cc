#include "text/bm25.h"

#include <gtest/gtest.h>

namespace alicoco::text {
namespace {

Bm25Index BuildIndex() {
  Bm25Index idx;
  idx.AddDocument(1, {"outdoor", "barbecue", "grill", "charcoal"});
  idx.AddDocument(2, {"warm", "winter", "coat", "wool"});
  idx.AddDocument(3, {"barbecue", "sauce", "bottle"});
  idx.Finalize();
  return idx;
}

TEST(Bm25Test, MatchingDocScoresHigher) {
  auto idx = BuildIndex();
  EXPECT_GT(idx.Score({"barbecue", "grill"}, 1),
            idx.Score({"barbecue", "grill"}, 2));
}

TEST(Bm25Test, NoOverlapScoresZero) {
  auto idx = BuildIndex();
  EXPECT_DOUBLE_EQ(idx.Score({"zzz"}, 1), 0.0);
}

TEST(Bm25Test, UnknownDocScoresZero) {
  auto idx = BuildIndex();
  EXPECT_DOUBLE_EQ(idx.Score({"barbecue"}, 99), 0.0);
}

TEST(Bm25Test, TopKOrdersByScore) {
  auto idx = BuildIndex();
  auto top = idx.TopK({"barbecue"}, 5);
  ASSERT_EQ(top.size(), 2u);  // only docs 1 and 3 contain the term
  // Doc 3 is shorter, so its tf is less dampened by length normalization.
  EXPECT_EQ(top[0].first, 3);
  EXPECT_EQ(top[1].first, 1);
  EXPECT_GE(top[0].second, top[1].second);
}

TEST(Bm25Test, TopKRespectsLimit) {
  auto idx = BuildIndex();
  auto top = idx.TopK({"barbecue"}, 1);
  EXPECT_EQ(top.size(), 1u);
  EXPECT_TRUE(idx.TopK({"barbecue"}, 0).empty());
}

TEST(Bm25Test, RareTermOutweighsCommonTerm) {
  Bm25Index idx;
  // "common" in every doc; "rare" only in doc 2.
  idx.AddDocument(1, {"common", "alpha"});
  idx.AddDocument(2, {"common", "rare"});
  idx.AddDocument(3, {"common", "beta"});
  idx.Finalize();
  auto top = idx.TopK({"rare", "common"}, 3);
  ASSERT_GE(top.size(), 1u);
  EXPECT_EQ(top[0].first, 2);
}

TEST(Bm25Test, ScoringBeforeFinalizeReturnsZero) {
  Bm25Index idx;
  idx.AddDocument(1, {"a"});
  EXPECT_DOUBLE_EQ(idx.Score({"a"}, 1), 0.0);
  EXPECT_TRUE(idx.TopK({"a"}, 3).empty());
}

TEST(Bm25Test, EmptyIndex) {
  Bm25Index idx;
  idx.Finalize();
  EXPECT_TRUE(idx.TopK({"a"}, 3).empty());
  EXPECT_EQ(idx.num_documents(), 0u);
}

TEST(Bm25Test, TermFrequencySaturates) {
  Bm25Index idx;
  idx.AddDocument(1, {"x"});
  idx.AddDocument(2, {"x", "x", "x", "x", "x", "x", "x", "x"});
  idx.AddDocument(3, {"y"});
  idx.Finalize();
  double s1 = idx.Score({"x"}, 1);
  double s2 = idx.Score({"x"}, 2);
  // More occurrences help, but sub-linearly (k1 saturation).
  EXPECT_GT(s2, s1);
  EXPECT_LT(s2, 8 * s1);
}

}  // namespace
}  // namespace alicoco::text
