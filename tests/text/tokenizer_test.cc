#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace alicoco::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  auto t = Tokenize("Warm Hat for Traveling");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "warm");
  EXPECT_EQ(t[3], "traveling");
}

TEST(TokenizerTest, DropsPunctuation) {
  auto t = Tokenize("grills, butter; and (charcoal)!");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "grills");
  EXPECT_EQ(t[3], "charcoal");
}

TEST(TokenizerTest, KeepsHyphenCompounds) {
  auto t = Tokenize("cotton-padded trousers");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "cotton-padded");
}

TEST(TokenizerTest, TrailingHyphenStripped) {
  auto t = Tokenize("odd- case");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "odd");
}

TEST(TokenizerTest, KeepsDigits) {
  auto t = Tokenize("800g cakes");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "800g");
}

TEST(TokenizerTest, EmptyAndPunctOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!!").empty());
}

TEST(CharsTest, SplitsToSingletons) {
  auto c = Chars("abc");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], "a");
  EXPECT_EQ(c[2], "c");
  EXPECT_TRUE(Chars("").empty());
}

TEST(JoinTokensTest, InverseOfTokenizeOnCleanInput) {
  std::vector<std::string> toks = {"outdoor", "barbecue"};
  EXPECT_EQ(JoinTokens(toks), "outdoor barbecue");
  EXPECT_EQ(Tokenize(JoinTokens(toks)), toks);
}

}  // namespace
}  // namespace alicoco::text
