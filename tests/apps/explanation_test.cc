#include "apps/explanation.h"

#include <gtest/gtest.h>

namespace alicoco::apps {
namespace {

struct Fixture {
  kg::ConceptNet net;
  kg::EcConceptId barbecue, baking;
  kg::ItemId grill, butter, whisk, tray, unrelated;
  datagen::UserHistory user;

  Fixture() {
    kg::ClassId category = *net.taxonomy().AddDomain("Category");
    barbecue = *net.GetOrAddEcConcept({"outdoor", "barbecue"});
    baking = *net.GetOrAddEcConcept({"tools", "for", "baking"});
    grill = *net.AddItem({"grill"}, category);
    butter = *net.AddItem({"butter"}, category);
    whisk = *net.AddItem({"whisk"}, category);
    tray = *net.AddItem({"tray"}, category);
    unrelated = *net.AddItem({"rug"}, category);
    EXPECT_TRUE(net.LinkItemToEc(grill, barbecue).ok());
    EXPECT_TRUE(net.LinkItemToEc(butter, barbecue).ok());
    EXPECT_TRUE(net.LinkItemToEc(whisk, baking).ok());
    EXPECT_TRUE(net.LinkItemToEc(tray, baking).ok());
    EXPECT_TRUE(net.LinkItemToEc(butter, baking).ok());
    // User has baked: clicked whisk and butter.
    user.clicked = {whisk, butter};
  }
};

TEST(ExplanationTest, PicksTheSharedNeed) {
  Fixture f;
  RecommendationExplainer explainer(&f.net);
  // Recommending the tray: both history items support "tools for baking"
  // (whisk directly, butter via its baking link).
  auto ex = explainer.Explain(f.user, f.tray);
  ASSERT_TRUE(ex.has_value());
  EXPECT_EQ(ex->concept_surface, "tools for baking");
  EXPECT_DOUBLE_EQ(ex->support, 2.0);
  EXPECT_NE(ex->text.find("tools for baking"), std::string::npos);
}

TEST(ExplanationTest, WeighsEvidenceNotJustMembership) {
  Fixture f;
  RecommendationExplainer explainer(&f.net);
  // Recommending butter (in both concepts): baking has 1 history vote
  // (whisk), barbecue has 0 (grill not in history).
  auto ex = explainer.Explain(f.user, f.butter);
  ASSERT_TRUE(ex.has_value());
  EXPECT_EQ(ex->concept_surface, "tools for baking");
}

TEST(ExplanationTest, NoSharedConceptNoReason) {
  Fixture f;
  RecommendationExplainer explainer(&f.net);
  // The rug belongs to no concept.
  EXPECT_FALSE(explainer.Explain(f.user, f.unrelated).has_value());
  // The grill's only concept has zero history support.
  datagen::UserHistory cold;
  cold.clicked = {f.whisk};
  EXPECT_FALSE(explainer.Explain(cold, f.grill).has_value());
}

TEST(ExplanationTest, ExplainableRate) {
  Fixture f;
  RecommendationExplainer explainer(&f.net);
  std::vector<datagen::UserHistory> users = {f.user, f.user};
  std::vector<std::vector<kg::ItemId>> recs = {{f.tray, f.unrelated},
                                               {f.tray}};
  // 2 of 3 pairs explainable.
  EXPECT_NEAR(explainer.ExplainableRate(users, recs), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(explainer.ExplainableRate({}, {}), 0.0);
}

TEST(ExplanationTest, WorksOnGeneratedWorld) {
  datagen::WorldConfig cfg;
  cfg.seed = 121;
  cfg.num_items = 500;
  cfg.num_users = 60;
  datagen::World world = datagen::World::Generate(cfg);
  RecommendationExplainer explainer(&world.net());
  // Explain the gold need items for each user: should be highly explainable.
  size_t total = 0, explained = 0;
  for (const auto& user : world.user_histories()) {
    for (kg::EcConceptId need : user.needs) {
      auto items = world.net().ItemsForEc(need);
      if (items.empty()) continue;
      ++total;
      auto ex = explainer.Explain(user, items[0]);
      if (ex.has_value()) ++explained;
    }
  }
  ASSERT_GT(total, 20u);
  EXPECT_GT(static_cast<double>(explained) / total, 0.8);
}

}  // namespace
}  // namespace alicoco::apps
