#include "apps/question_answering.h"

#include <gtest/gtest.h>

#include "datagen/world.h"
#include "text/tokenizer.h"

namespace alicoco::apps {
namespace {

// Hand-built net: the paper's barbecue scenario.
struct Fixture {
  kg::ConceptNet net;
  kg::EcConceptId outdoor_barbecue, barbecue_ec;
  kg::ItemId grill_item;

  Fixture() {
    auto& tax = net.taxonomy();
    kg::ClassId category = *tax.AddDomain("Category");
    kg::ClassId location = *tax.AddDomain("Location");
    kg::ClassId event = *tax.AddDomain("Event");
    kg::ConceptId outdoor = *net.GetOrAddPrimitiveConcept("outdoor", location);
    kg::ConceptId barbecue = *net.GetOrAddPrimitiveConcept("barbecue", event);
    outdoor_barbecue = *net.GetOrAddEcConcept({"outdoor", "barbecue"});
    barbecue_ec = *net.GetOrAddEcConcept({"barbecue"});
    EXPECT_TRUE(net.LinkEcToPrimitive(outdoor_barbecue, outdoor).ok());
    EXPECT_TRUE(net.LinkEcToPrimitive(outdoor_barbecue, barbecue).ok());
    EXPECT_TRUE(net.LinkEcToPrimitive(barbecue_ec, barbecue).ok());
    EXPECT_TRUE(net.AddEcIsA(outdoor_barbecue, barbecue_ec).ok());
    grill_item = *net.AddItem({"steel", "grill"}, category);
    EXPECT_TRUE(net.LinkItemToEc(grill_item, outdoor_barbecue).ok());
    EXPECT_TRUE(net.LinkItemToEc(grill_item, barbecue_ec).ok());
  }
};

TEST(QaTest, AnswersThePapersQuestion) {
  Fixture f;
  NeedsQuestionAnswerer qa(&f.net);
  auto answer = qa.Answer(
      "What should I prepare for hosting next week's outdoor barbecue?");
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->concept_surface, "outdoor barbecue");
  ASSERT_EQ(answer->items.size(), 1u);
  EXPECT_EQ(answer->items[0], f.grill_item);
  // Interpretation names both primitive concepts with their domains.
  ASSERT_EQ(answer->interpretation.size(), 2u);
  EXPECT_EQ(answer->interpretation[0].first, "Location");
  EXPECT_EQ(answer->interpretation[1].second, "barbecue");
}

TEST(QaTest, LongerSurfaceOutranksItsParent) {
  Fixture f;
  NeedsQuestionAnswerer qa(&f.net);
  auto answers = qa.AnswerAll("planning an outdoor barbecue party");
  ASSERT_GE(answers.size(), 2u);
  EXPECT_EQ(answers[0].concept_surface, "outdoor barbecue");
  EXPECT_EQ(answers[1].concept_surface, "barbecue");
  EXPECT_GT(answers[0].score, answers[1].score);
}

TEST(QaTest, PrimitiveMentionRecallsInterpretingConcepts) {
  Fixture f;
  NeedsQuestionAnswerer qa(&f.net);
  // "outdoor" alone is not an e-commerce concept surface, but it interprets
  // "outdoor barbecue".
  auto answer = qa.Answer("something nice and outdoor please");
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->concept_surface, "outdoor barbecue");
  EXPECT_LT(answer->score, 1.0);  // indirect match scores below direct
}

TEST(QaTest, RelatedNeedsComeFromIsA) {
  Fixture f;
  NeedsQuestionAnswerer qa(&f.net);
  auto answer = qa.Answer("outdoor barbecue");
  ASSERT_TRUE(answer.has_value());
  ASSERT_EQ(answer->related_needs.size(), 1u);
  EXPECT_EQ(answer->related_needs[0], "barbecue");
}

TEST(QaTest, NoNeedNoAnswer) {
  Fixture f;
  NeedsQuestionAnswerer qa(&f.net);
  EXPECT_FALSE(qa.Answer("completely unrelated gibberish").has_value());
  EXPECT_FALSE(qa.Answer("").has_value());
}

TEST(QaTest, MaxItemsRespected) {
  Fixture f;
  // Add more items to the concept.
  kg::ClassId category = *f.net.taxonomy().Find("Category");
  for (int i = 0; i < 10; ++i) {
    kg::ItemId item =
        *f.net.AddItem({"extra", "item" + std::to_string(i)}, category);
    ASSERT_TRUE(f.net.LinkItemToEc(item, f.outdoor_barbecue).ok());
  }
  NeedsQuestionAnswerer qa(&f.net);
  auto answer = qa.Answer("outdoor barbecue", /*max_items=*/4);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->items.size(), 4u);
}

TEST(QaTest, WorksOnGeneratedWorld) {
  datagen::WorldConfig cfg;
  cfg.seed = 111;
  cfg.num_items = 400;
  cfg.num_good_ec_concepts = 60;
  cfg.num_bad_ec_concepts = 30;
  datagen::World world = datagen::World::Generate(cfg);
  NeedsQuestionAnswerer qa(&world.net());
  size_t answered = 0, with_items = 0;
  size_t asked = 0;
  for (const auto& g : world.ec_gold()) {
    if (g.items.empty()) continue;
    if (++asked > 30) break;
    std::string question =
        "what do i need for " + world.net().Get(g.id).surface;
    auto answer = qa.Answer(question);
    if (!answer.has_value()) continue;
    ++answered;
    if (answer->concept_id == g.id && !answer->items.empty()) ++with_items;
  }
  EXPECT_GT(answered, 25u);
  EXPECT_GT(with_items, 20u);
}

}  // namespace
}  // namespace alicoco::apps
