// Application-layer tests: coverage (7.1), search relevance (8.1.1),
// cognitive recommendation (8.2.1).

#include <gtest/gtest.h>

#include "apps/coverage.h"
#include "apps/recommender.h"
#include "apps/search_relevance.h"
#include "datagen/world.h"

namespace alicoco::apps {
namespace {

const datagen::World& SharedWorld() {
  static const datagen::World world = [] {
    datagen::WorldConfig cfg;
    cfg.seed = 71;
    cfg.heads_per_leaf = 2;
    cfg.derived_per_head = 3;
    cfg.per_domain_vocab = 12;
    cfg.num_events = 10;
    cfg.num_items = 800;
    cfg.num_good_ec_concepts = 80;
    cfg.num_bad_ec_concepts = 40;
    cfg.titles = 1000;
    cfg.reviews = 400;
    cfg.guides = 300;
    cfg.queries = 300;
    cfg.num_users = 120;
    cfg.num_needs_queries = 300;
    return datagen::World::Generate(cfg);
  }();
  return world;
}

TEST(CoverageTest, AliCoCoBeatsLegacyByWideMargin) {
  const auto& world = SharedWorld();
  datagen::LegacyOntology legacy(world);
  CoverageEvaluator evaluator(&world.net(), &legacy);
  auto report = evaluator.Run(world.needs_queries(), /*num_days=*/10,
                              /*per_day=*/100, 3);
  ASSERT_EQ(report.days.size(), 10u);
  EXPECT_GT(report.mean_alicoco, 0.6);
  EXPECT_LT(report.mean_legacy, 0.45);
  EXPECT_GT(report.mean_alicoco, report.mean_legacy + 0.25);
  // Daily numbers are stable, not degenerate.
  for (const auto& d : report.days) {
    EXPECT_GT(d.alicoco, 0.4);
    EXPECT_LT(d.legacy, 0.6);
  }
}

TEST(CoverageTest, QueryCoverageBounds) {
  const auto& world = SharedWorld();
  datagen::LegacyOntology legacy(world);
  CoverageEvaluator evaluator(&world.net(), &legacy);
  EXPECT_EQ(evaluator.QueryCoverage({}), 0.0);
  EXPECT_EQ(evaluator.QueryCoverage({"zzzz_not_a_word"}), 0.0);
}

TEST(SearchRelevanceTest, IsaExpansionImprovesAucAndBadCases) {
  const auto& world = SharedWorld();
  SearchRelevance relevance(&world.net());
  auto queries = relevance.BuildQueries(world, /*max_queries=*/8,
                                        /*items_per_query=*/40, 5);
  ASSERT_FALSE(queries.empty());
  auto without = relevance.Evaluate(queries, /*expand_isa=*/false);
  auto with = relevance.Evaluate(queries, /*expand_isa=*/true);
  // Group-concept queries share no tokens with item titles: without isA
  // expansion, every relevant item is a bad case.
  EXPECT_GT(without.bad_cases, 0u);
  EXPECT_GT(with.auc, without.auc);
  EXPECT_LT(with.bad_cases, without.bad_cases);
  EXPECT_GT(with.auc, 0.9);
}

TEST(SearchRelevanceTest, QueriesHaveBothLabels) {
  const auto& world = SharedWorld();
  SearchRelevance relevance(&world.net());
  auto queries = relevance.BuildQueries(world, 8, 40, 5);
  for (const auto& q : queries) {
    EXPECT_EQ(q.items.size(), q.relevant.size());
    int pos = 0, neg = 0;
    for (int r : q.relevant) (r ? pos : neg)++;
    EXPECT_GT(pos, 0);
    EXPECT_GT(neg, 0);
  }
}

TEST(ItemCfTest, RecommendsCoClickedItems) {
  std::vector<datagen::UserHistory> users(30);
  // Items 1 and 2 always co-clicked; item 9 isolated.
  for (size_t u = 0; u < users.size(); ++u) {
    users[u].clicked = {kg::ItemId(1), kg::ItemId(2)};
    if (u % 3 == 0) users[u].clicked.push_back(kg::ItemId(3));
  }
  ItemCf cf;
  cf.Fit(users);
  datagen::UserHistory probe;
  probe.clicked = {kg::ItemId(1)};
  auto recs = cf.Recommend(probe, 2);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].value, 2u);  // strongest co-click first
  // Never recommends items already clicked.
  for (auto r : recs) EXPECT_NE(r.value, 1u);
}

TEST(RecommendationTest, CognitiveCardsSurfaceLatentNeeds) {
  const auto& world = SharedWorld();
  auto report = CompareRecommenders(world, /*k_items=*/10, /*num_cards=*/3);
  // The cognitive recommender should surface a gold need for most users,
  // satisfy needs with its items far better than item-CF, and still bring
  // category novelty (cards span a scenario's categories, not just lookalike
  // items).
  EXPECT_GT(report.needs_hit_rate, 0.5);
  EXPECT_GT(report.cognitive_novelty, 0.1);
  EXPECT_GT(report.cog_need_item_rate, report.cf_need_item_rate);
}

TEST(CognitiveRecommenderTest, CardsExcludeOwnedItems) {
  const auto& world = SharedWorld();
  CognitiveRecommender rec(&world.net());
  const auto& user = world.user_histories()[0];
  auto cards = rec.Recommend(user, 3, 5);
  ASSERT_FALSE(cards.empty());
  for (const auto& card : cards) {
    EXPECT_LE(card.items.size(), 5u);
    for (auto item : card.items) {
      EXPECT_EQ(std::count(user.clicked.begin(), user.clicked.end(), item),
                0);
    }
  }
}

}  // namespace
}  // namespace alicoco::apps
