#include "kg/stats.h"

#include <gtest/gtest.h>

namespace alicoco::kg {
namespace {

TEST(StatsTest, EmptyNet) {
  ConceptNet net;
  auto s = ComputeStatistics(net);
  EXPECT_EQ(s.num_primitive_concepts, 0u);
  EXPECT_EQ(s.total_relations, 0u);
  EXPECT_EQ(s.item_linkage_rate, 0.0);
  EXPECT_FALSE(StatisticsToTable(s).empty());
}

TEST(StatsTest, CountsAndAverages) {
  ConceptNet net;
  ClassId category = *net.taxonomy().AddDomain("Category");
  ClassId event = *net.taxonomy().AddDomain("Event");
  ClassId clothing = *net.taxonomy().AddClass("Clothing", category);

  ConceptId c1 = *net.GetOrAddPrimitiveConcept("dress", clothing);
  ConceptId c2 = *net.GetOrAddPrimitiveConcept("clothes", category);
  ConceptId e1 = *net.GetOrAddPrimitiveConcept("party", event);
  (void)e1;
  ASSERT_TRUE(net.AddIsA(c1, c2).ok());

  EcConceptId ec = *net.GetOrAddEcConcept({"party", "dress"});
  ASSERT_TRUE(net.LinkEcToPrimitive(ec, c1).ok());

  ItemId i1 = *net.AddItem({"silk", "dress"}, clothing);
  ItemId i2 = *net.AddItem({"unlinked"}, clothing);
  (void)i2;
  ASSERT_TRUE(net.LinkItemToPrimitive(i1, c1).ok());
  ASSERT_TRUE(net.LinkItemToEc(i1, ec).ok());

  auto s = ComputeStatistics(net);
  EXPECT_EQ(s.num_primitive_concepts, 3u);
  EXPECT_EQ(s.num_ec_concepts, 1u);
  EXPECT_EQ(s.num_items, 2u);
  EXPECT_EQ(s.isa_primitive, 1u);
  EXPECT_EQ(s.ec_primitive, 1u);
  EXPECT_EQ(s.item_primitive, 1u);
  EXPECT_EQ(s.item_ec, 1u);
  EXPECT_EQ(s.total_relations, 4u);
  EXPECT_DOUBLE_EQ(s.item_linkage_rate, 0.5);
  EXPECT_DOUBLE_EQ(s.avg_items_per_ec, 1.0);

  // Per-domain counts: Category subtree holds 2, Event 1.
  ASSERT_EQ(s.per_domain.size(), 2u);
  EXPECT_EQ(s.per_domain[0].first, "Category");
  EXPECT_EQ(s.per_domain[0].second, 2u);
  EXPECT_EQ(s.per_domain[1].first, "Event");
  EXPECT_EQ(s.per_domain[1].second, 1u);
}

TEST(StatsTest, TableMentionsAllSections) {
  ConceptNet net;
  net.taxonomy().AddDomain("Category");
  std::string table = StatisticsToTable(ComputeStatistics(net));
  EXPECT_NE(table.find("Overall"), std::string::npos);
  EXPECT_NE(table.find("per domain"), std::string::npos);
  EXPECT_NE(table.find("Relations"), std::string::npos);
  EXPECT_NE(table.find("Linkage"), std::string::npos);
}

}  // namespace
}  // namespace alicoco::kg
