// Probabilistic item-concept edges (paper future work 2).

#include <gtest/gtest.h>

#include "kg/concept_net.h"
#include "kg/persistence.h"

namespace alicoco::kg {
namespace {

struct Fixture {
  ConceptNet net;
  EcConceptId ec;
  ItemId a, b, c;

  Fixture() {
    ClassId category = *net.taxonomy().AddDomain("Category");
    ec = *net.GetOrAddEcConcept({"winter", "hiking"});
    a = *net.AddItem({"boot"}, category);
    b = *net.AddItem({"tent"}, category);
    c = *net.AddItem({"scarf"}, category);
    EXPECT_TRUE(net.LinkItemToEc(a, ec, 0.9).ok());
    EXPECT_TRUE(net.LinkItemToEc(b, ec, 0.4).ok());
    EXPECT_TRUE(net.LinkItemToEc(c, ec).ok());  // default 1.0
  }
};

TEST(EdgeProbabilityTest, StoredAndQueried) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.net.ItemEcProbability(f.a, f.ec), 0.9);
  EXPECT_DOUBLE_EQ(f.net.ItemEcProbability(f.b, f.ec), 0.4);
  EXPECT_DOUBLE_EQ(f.net.ItemEcProbability(f.c, f.ec), 1.0);
  // No edge -> 0.
  EcConceptId other = *f.net.GetOrAddEcConcept({"other"});
  EXPECT_DOUBLE_EQ(f.net.ItemEcProbability(f.a, other), 0.0);
}

TEST(EdgeProbabilityTest, RankedOrdering) {
  Fixture f;
  auto ranked = f.net.ItemsForEcRanked(f.ec);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, f.c);  // 1.0
  EXPECT_EQ(ranked[1].first, f.a);  // 0.9
  EXPECT_EQ(ranked[2].first, f.b);  // 0.4
}

TEST(EdgeProbabilityTest, InvalidProbabilityRejected) {
  Fixture f;
  ItemId d = *f.net.AddItem({"extra"}, *f.net.taxonomy().Find("Category"));
  EXPECT_TRUE(f.net.LinkItemToEc(d, f.ec, 0.0).IsInvalidArgument());
  EXPECT_TRUE(f.net.LinkItemToEc(d, f.ec, 1.5).IsInvalidArgument());
  EXPECT_TRUE(f.net.LinkItemToEc(d, f.ec, -0.1).IsInvalidArgument());
}

TEST(EdgeProbabilityTest, SurvivesPersistenceRoundTrip) {
  Fixture f;
  std::string path = std::string(::testing::TempDir()) + "/prob_net.txt";
  ASSERT_TRUE(SaveConceptNet(f.net, path).ok());
  auto loaded = LoadConceptNet(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded->ItemEcProbability(f.a, f.ec), 0.9);
  EXPECT_DOUBLE_EQ(loaded->ItemEcProbability(f.b, f.ec), 0.4);
  EXPECT_DOUBLE_EQ(loaded->ItemEcProbability(f.c, f.ec), 1.0);
}

// Property sweep: any probability in (0, 1] round-trips through the text
// format without drift beyond printing precision.
class ProbabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(ProbabilitySweep, RoundTripPrecision) {
  ConceptNet net;
  ClassId category = *net.taxonomy().AddDomain("Category");
  EcConceptId ec = *net.GetOrAddEcConcept({"x"});
  ItemId item = *net.AddItem({"y"}, category);
  ASSERT_TRUE(net.LinkItemToEc(item, ec, GetParam()).ok());
  std::string path = std::string(::testing::TempDir()) + "/prob_sweep.txt";
  ASSERT_TRUE(SaveConceptNet(net, path).ok());
  auto loaded = LoadConceptNet(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_NEAR(loaded->ItemEcProbability(item, ec), GetParam(), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, ProbabilitySweep,
                         ::testing::Values(0.001, 0.25, 0.5, 0.731, 0.999,
                                           1.0));

}  // namespace
}  // namespace alicoco::kg
