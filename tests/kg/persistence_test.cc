#include "kg/persistence.h"

#include <gtest/gtest.h>

#include <fstream>

#include "kg/stats.h"

namespace alicoco::kg {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

ConceptNet BuildNet() {
  ConceptNet net;
  auto& tax = net.taxonomy();
  ClassId category = *tax.AddDomain("Category");
  ClassId event = *tax.AddDomain("Event");
  ClassId time = *tax.AddDomain("Time");
  ClassId season = *tax.AddClass("Season", time);
  EXPECT_TRUE(net.AddRelation("suitable_when", category, season).ok());

  ConceptId grill = *net.GetOrAddPrimitiveConcept("grill", category);
  ConceptId cookware = *net.GetOrAddPrimitiveConcept("cookware", category);
  ConceptId barbecue = *net.GetOrAddPrimitiveConcept("barbecue", event);
  ConceptId winter = *net.GetOrAddPrimitiveConcept("winter", season);
  EXPECT_TRUE(net.SetGloss(grill, {"metal", "rack", "for", "cooking"}).ok());
  EXPECT_TRUE(net.AddIsA(grill, cookware).ok());
  EXPECT_TRUE(net.AddTypedRelation("suitable_when", grill, winter).ok());

  EcConceptId ob = *net.GetOrAddEcConcept({"outdoor", "barbecue"});
  EcConceptId any = *net.GetOrAddEcConcept({"barbecue"});
  EXPECT_TRUE(net.AddEcIsA(ob, any).ok());
  EXPECT_TRUE(net.LinkEcToPrimitive(ob, barbecue).ok());

  ItemId item = *net.AddItem({"steel", "grill"}, category);
  EXPECT_TRUE(net.LinkItemToPrimitive(item, grill).ok());
  EXPECT_TRUE(net.LinkItemToEc(item, ob).ok());
  return net;
}

TEST(PersistenceTest, RoundTripPreservesEverything) {
  ConceptNet net = BuildNet();
  std::string path = TempPath("net.txt");
  ASSERT_TRUE(SaveConceptNet(net, path).ok());
  auto loaded = LoadConceptNet(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ConceptNet& net2 = *loaded;

  EXPECT_EQ(net2.taxonomy().size(), net.taxonomy().size());
  EXPECT_EQ(net2.num_primitive_concepts(), net.num_primitive_concepts());
  EXPECT_EQ(net2.num_ec_concepts(), net.num_ec_concepts());
  EXPECT_EQ(net2.num_items(), net.num_items());
  EXPECT_EQ(net2.num_isa_primitive(), net.num_isa_primitive());
  EXPECT_EQ(net2.num_isa_ec(), net.num_isa_ec());
  EXPECT_EQ(net2.num_ec_primitive_links(), net.num_ec_primitive_links());
  EXPECT_EQ(net2.num_item_primitive_links(), net.num_item_primitive_links());
  EXPECT_EQ(net2.num_item_ec_links(), net.num_item_ec_links());
  EXPECT_EQ(net2.typed_relations().size(), net.typed_relations().size());

  // Content-level check: ids and surfaces coincide.
  auto grill = net2.FindPrimitive("grill");
  ASSERT_EQ(grill.size(), 1u);
  EXPECT_EQ(net2.Get(grill[0]).gloss.size(), 4u);
  auto ob = net2.FindEcConcept("outdoor barbecue");
  ASSERT_TRUE(ob.has_value());
  EXPECT_EQ(net2.ItemsForEc(*ob).size(), 1u);
  auto closure = net2.HypernymClosure(grill[0]);
  ASSERT_EQ(closure.size(), 1u);
  EXPECT_EQ(net2.Get(closure[0]).surface, "cookware");
}

TEST(PersistenceTest, StatisticsIdenticalAfterRoundTrip) {
  ConceptNet net = BuildNet();
  std::string path = TempPath("net2.txt");
  ASSERT_TRUE(SaveConceptNet(net, path).ok());
  auto loaded = LoadConceptNet(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(StatisticsToTable(ComputeStatistics(net)),
            StatisticsToTable(ComputeStatistics(*loaded)));
}

TEST(PersistenceTest, MissingFile) {
  EXPECT_TRUE(LoadConceptNet("/no/such/file").status().IsIOError());
}

TEST(PersistenceTest, BadHeaderRejected) {
  std::string path = TempPath("bad.txt");
  std::ofstream(path) << "WRONG HEADER\n";
  EXPECT_TRUE(LoadConceptNet(path).status().IsCorruption());
}

TEST(PersistenceTest, TruncatedFileRejected) {
  ConceptNet net = BuildNet();
  std::string path = TempPath("trunc.txt");
  ASSERT_TRUE(SaveConceptNet(net, path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path) << content.substr(0, content.size() / 2);
  EXPECT_TRUE(LoadConceptNet(path).status().IsCorruption());
}

}  // namespace
}  // namespace alicoco::kg
