#include "kg/persistence.h"

#include <gtest/gtest.h>

#include <fstream>

#include "kg/stats.h"

namespace alicoco::kg {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

ConceptNet BuildNet() {
  ConceptNet net;
  auto& tax = net.taxonomy();
  ClassId category = *tax.AddDomain("Category");
  ClassId event = *tax.AddDomain("Event");
  ClassId time = *tax.AddDomain("Time");
  ClassId season = *tax.AddClass("Season", time);
  EXPECT_TRUE(net.AddRelation("suitable_when", category, season).ok());

  ConceptId grill = *net.GetOrAddPrimitiveConcept("grill", category);
  ConceptId cookware = *net.GetOrAddPrimitiveConcept("cookware", category);
  ConceptId barbecue = *net.GetOrAddPrimitiveConcept("barbecue", event);
  ConceptId winter = *net.GetOrAddPrimitiveConcept("winter", season);
  EXPECT_TRUE(net.SetGloss(grill, {"metal", "rack", "for", "cooking"}).ok());
  EXPECT_TRUE(net.AddIsA(grill, cookware).ok());
  EXPECT_TRUE(net.AddTypedRelation("suitable_when", grill, winter).ok());

  EcConceptId ob = *net.GetOrAddEcConcept({"outdoor", "barbecue"});
  EcConceptId any = *net.GetOrAddEcConcept({"barbecue"});
  EXPECT_TRUE(net.AddEcIsA(ob, any).ok());
  EXPECT_TRUE(net.LinkEcToPrimitive(ob, barbecue).ok());

  ItemId item = *net.AddItem({"steel", "grill"}, category);
  EXPECT_TRUE(net.LinkItemToPrimitive(item, grill).ok());
  EXPECT_TRUE(net.LinkItemToEc(item, ob).ok());
  return net;
}

TEST(PersistenceTest, RoundTripPreservesEverything) {
  ConceptNet net = BuildNet();
  std::string path = TempPath("net.txt");
  ASSERT_TRUE(SaveConceptNet(net, path).ok());
  auto loaded = LoadConceptNet(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ConceptNet& net2 = *loaded;

  EXPECT_EQ(net2.taxonomy().size(), net.taxonomy().size());
  EXPECT_EQ(net2.num_primitive_concepts(), net.num_primitive_concepts());
  EXPECT_EQ(net2.num_ec_concepts(), net.num_ec_concepts());
  EXPECT_EQ(net2.num_items(), net.num_items());
  EXPECT_EQ(net2.num_isa_primitive(), net.num_isa_primitive());
  EXPECT_EQ(net2.num_isa_ec(), net.num_isa_ec());
  EXPECT_EQ(net2.num_ec_primitive_links(), net.num_ec_primitive_links());
  EXPECT_EQ(net2.num_item_primitive_links(), net.num_item_primitive_links());
  EXPECT_EQ(net2.num_item_ec_links(), net.num_item_ec_links());
  EXPECT_EQ(net2.typed_relations().size(), net.typed_relations().size());

  // Content-level check: ids and surfaces coincide.
  auto grill = net2.FindPrimitive("grill");
  ASSERT_EQ(grill.size(), 1u);
  EXPECT_EQ(net2.Get(grill[0]).gloss.size(), 4u);
  auto ob = net2.FindEcConcept("outdoor barbecue");
  ASSERT_TRUE(ob.has_value());
  EXPECT_EQ(net2.ItemsForEc(*ob).size(), 1u);
  auto closure = net2.HypernymClosure(grill[0]);
  ASSERT_EQ(closure.size(), 1u);
  EXPECT_EQ(net2.Get(closure[0]).surface, "cookware");
}

TEST(PersistenceTest, StatisticsIdenticalAfterRoundTrip) {
  ConceptNet net = BuildNet();
  std::string path = TempPath("net2.txt");
  ASSERT_TRUE(SaveConceptNet(net, path).ok());
  auto loaded = LoadConceptNet(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(StatisticsToTable(ComputeStatistics(net)),
            StatisticsToTable(ComputeStatistics(*loaded)));
}

TEST(PersistenceTest, MissingFile) {
  EXPECT_TRUE(LoadConceptNet("/no/such/file").status().IsIOError());
}

TEST(PersistenceTest, BadHeaderRejected) {
  std::string path = TempPath("bad.txt");
  std::ofstream(path) << "WRONG HEADER\n";
  EXPECT_TRUE(LoadConceptNet(path).status().IsCorruption());
}

TEST(PersistenceTest, TruncatedFileRejected) {
  ConceptNet net = BuildNet();
  std::string path = TempPath("trunc.txt");
  ASSERT_TRUE(SaveConceptNet(net, path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path) << content.substr(0, content.size() / 2);
  EXPECT_TRUE(LoadConceptNet(path).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// Corrupted-snapshot behavior: every mutation below must surface as
// Status::Corruption — never a crash, an uncaught exception, or a
// count-driven over-allocation.

std::string SaveNetToString(const char* name) {
  ConceptNet net = BuildNet();
  std::string path = TempPath(name);
  EXPECT_TRUE(SaveConceptNet(net, path).ok());
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

Status LoadFromString(const char* name, const std::string& content) {
  std::string path = TempPath(name);
  std::ofstream(path) << content;
  return LoadConceptNet(path).status();
}

/// Replaces the whole line beginning with `prefix` (e.g. a section
/// header) with `replacement`.
std::string WithLineReplaced(std::string content, const std::string& prefix,
                             const std::string& replacement) {
  size_t at = content.rfind("\n" + prefix + " ");
  EXPECT_NE(at, std::string::npos) << prefix;
  size_t line_start = at + 1;
  size_t line_end = content.find('\n', line_start);
  content.replace(line_start, line_end - line_start, replacement);
  return content;
}

TEST(PersistenceTest, BitFlippedMagicRejected) {
  std::string content = SaveNetToString("flip_src.txt");
  content[0] ^= 0x20;  // 'A' -> 'a' in ALICOCO_NET
  EXPECT_TRUE(LoadFromString("flip.txt", content).IsCorruption());
}

TEST(PersistenceTest, GarbageCountRejected) {
  // std::stoull throws on this; the loader must catch and report, not die.
  std::string content = SaveNetToString("garbage_src.txt");
  EXPECT_TRUE(LoadFromString("garbage.txt",
                             WithLineReplaced(content, "SCHEMA",
                                              "SCHEMA banana"))
                  .IsCorruption());
}

TEST(PersistenceTest, TrailingJunkInCountRejected) {
  // stoull alone would silently accept "3x" as 3.
  std::string content = SaveNetToString("junkcount_src.txt");
  EXPECT_TRUE(LoadFromString("junkcount.txt",
                             WithLineReplaced(content, "SCHEMA", "SCHEMA 1x"))
                  .IsCorruption());
}

TEST(PersistenceTest, ImplausibleCountRejected) {
  // One flipped length field must not drive the load loop (and every
  // allocation behind it) to an astronomical trip count.
  std::string content = SaveNetToString("bigcount_src.txt");
  EXPECT_TRUE(LoadFromString(
                  "bigcount.txt",
                  WithLineReplaced(content, "PRIMITIVE",
                                   "PRIMITIVE 99999999999999999"))
                  .IsCorruption());
}

TEST(PersistenceTest, NegativeCountRejected) {
  // stoull wraps "-1" to ULLONG_MAX; the plausibility cap catches it.
  std::string content = SaveNetToString("negcount_src.txt");
  EXPECT_TRUE(LoadFromString("negcount.txt",
                             WithLineReplaced(content, "ISA", "ISA -1"))
                  .IsCorruption());
}

TEST(PersistenceTest, OversizedIdFieldRejected) {
  // An id that cannot fit in 32 bits must be corruption, not a silent
  // truncating cast.
  std::string content = SaveNetToString("bigid_src.txt");
  const std::string needle = "\tCategory\n";
  size_t at = content.find(needle);
  ASSERT_NE(at, std::string::npos);
  size_t line_start = content.rfind('\n', at) + 1;
  content.replace(line_start, at - line_start, "8589934592");
  EXPECT_TRUE(LoadFromString("bigid.txt", content).IsCorruption());
}

TEST(PersistenceTest, GarbageEdgeProbabilityRejected) {
  std::string content = SaveNetToString("badprob_src.txt");
  // The ITEM_EC payload line is `item \t ec \t probability`.
  size_t header = content.find("\nITEM_EC ");
  ASSERT_NE(header, std::string::npos);
  size_t line_start = content.find('\n', header + 1) + 1;
  size_t line_end = content.find('\n', line_start);
  ASSERT_NE(line_end, std::string::npos);
  std::string edge = content.substr(line_start, line_end - line_start);
  size_t last_tab = edge.rfind('\t');
  ASSERT_NE(last_tab, std::string::npos);
  edge.replace(last_tab + 1, std::string::npos, "not-a-number");
  content.replace(line_start, line_end - line_start, edge);
  EXPECT_TRUE(LoadFromString("badprob.txt", content).IsCorruption());
}

}  // namespace
}  // namespace alicoco::kg
