#include "kg/concept_net.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace alicoco::kg {
namespace {

// Builds the Figure-1 fragment: outdoor barbecue with grills and butter.
struct Fixture {
  ConceptNet net;
  ClassId category, location, event, style, time, season;
  ConceptId outdoor, barbecue, grill, butter_c, village_loc, village_style;
  EcConceptId outdoor_barbecue;
  ItemId grill_item, butter_item;

  Fixture() {
    auto& tax = net.taxonomy();
    category = *tax.AddDomain("Category");
    location = *tax.AddDomain("Location");
    event = *tax.AddDomain("Event");
    style = *tax.AddDomain("Style");
    time = *tax.AddDomain("Time");
    season = *tax.AddClass("Season", time);

    outdoor = *net.GetOrAddPrimitiveConcept("outdoor", location);
    barbecue = *net.GetOrAddPrimitiveConcept("barbecue", event);
    grill = *net.GetOrAddPrimitiveConcept("grill", category);
    butter_c = *net.GetOrAddPrimitiveConcept("butter", category);
    village_loc = *net.GetOrAddPrimitiveConcept("village", location);
    village_style = *net.GetOrAddPrimitiveConcept("village", style);

    outdoor_barbecue = *net.GetOrAddEcConcept({"outdoor", "barbecue"});
    EXPECT_TRUE(net.LinkEcToPrimitive(outdoor_barbecue, outdoor).ok());
    EXPECT_TRUE(net.LinkEcToPrimitive(outdoor_barbecue, barbecue).ok());

    grill_item = *net.AddItem({"steel", "charcoal", "grill"}, category);
    butter_item = *net.AddItem({"farm", "butter"}, category);
    EXPECT_TRUE(net.LinkItemToEc(grill_item, outdoor_barbecue).ok());
    EXPECT_TRUE(net.LinkItemToEc(butter_item, outdoor_barbecue).ok());
    EXPECT_TRUE(net.LinkItemToPrimitive(grill_item, grill).ok());
    EXPECT_TRUE(net.LinkItemToPrimitive(butter_item, butter_c).ok());
  }
};

TEST(ConceptNetTest, PrimitiveInterningIsIdempotent) {
  Fixture f;
  auto again = f.net.GetOrAddPrimitiveConcept("outdoor", f.location);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, f.outdoor);
  EXPECT_EQ(f.net.num_primitive_concepts(), 6u);
}

TEST(ConceptNetTest, SameSurfaceDifferentClassIsNewSense) {
  Fixture f;
  auto senses = f.net.FindPrimitive("village");
  EXPECT_EQ(senses.size(), 2u);
  EXPECT_NE(f.village_loc, f.village_style);
  auto by_class = f.net.FindPrimitive("village", f.style);
  ASSERT_TRUE(by_class.has_value());
  EXPECT_EQ(*by_class, f.village_style);
  EXPECT_FALSE(f.net.FindPrimitive("village", f.event).has_value());
}

TEST(ConceptNetTest, UnknownClassRejected) {
  Fixture f;
  EXPECT_TRUE(f.net.GetOrAddPrimitiveConcept("x", ClassId(999))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      f.net.GetOrAddPrimitiveConcept("", f.event).status().IsInvalidArgument());
}

TEST(ConceptNetTest, EcConceptInterning) {
  Fixture f;
  auto again = f.net.GetOrAddEcConcept({"outdoor", "barbecue"});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, f.outdoor_barbecue);
  auto found = f.net.FindEcConcept("outdoor barbecue");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, f.outdoor_barbecue);
  EXPECT_FALSE(f.net.FindEcConcept("indoor barbecue").has_value());
}

TEST(ConceptNetTest, ItemsNeverDeduplicated) {
  Fixture f;
  auto a = f.net.AddItem({"same", "title"}, f.category);
  auto b = f.net.AddItem({"same", "title"}, f.category);
  EXPECT_NE(*a, *b);
}

TEST(ConceptNetTest, EcToPrimitiveAndBack) {
  Fixture f;
  auto prims = f.net.PrimitivesForEc(f.outdoor_barbecue);
  EXPECT_EQ(prims.size(), 2u);
  auto ecs = f.net.EcConceptsForPrimitive(f.barbecue);
  ASSERT_EQ(ecs.size(), 1u);
  EXPECT_EQ(ecs[0], f.outdoor_barbecue);
}

TEST(ConceptNetTest, ItemAssociations) {
  Fixture f;
  auto items = f.net.ItemsForEc(f.outdoor_barbecue);
  EXPECT_EQ(items.size(), 2u);
  auto ecs = f.net.EcConceptsForItem(f.grill_item);
  ASSERT_EQ(ecs.size(), 1u);
  auto prims = f.net.PrimitivesForItem(f.grill_item);
  ASSERT_EQ(prims.size(), 1u);
  EXPECT_EQ(prims[0], f.grill);
  auto rev = f.net.ItemsForPrimitive(f.grill);
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_EQ(rev[0], f.grill_item);
}

TEST(ConceptNetTest, DuplicateLinksRejected) {
  Fixture f;
  EXPECT_TRUE(f.net.LinkEcToPrimitive(f.outdoor_barbecue, f.outdoor)
                  .IsAlreadyExists());
  EXPECT_TRUE(
      f.net.LinkItemToEc(f.grill_item, f.outdoor_barbecue).IsAlreadyExists());
  EXPECT_TRUE(
      f.net.LinkItemToPrimitive(f.grill_item, f.grill).IsAlreadyExists());
}

TEST(ConceptNetTest, IsAHierarchyAndClosure) {
  Fixture f;
  ConceptId clothing = *f.net.GetOrAddPrimitiveConcept("top", f.category);
  ConceptId jacket = *f.net.GetOrAddPrimitiveConcept("jacket", f.category);
  ConceptId parka = *f.net.GetOrAddPrimitiveConcept("parka", f.category);
  ASSERT_TRUE(f.net.AddIsA(jacket, clothing).ok());
  ASSERT_TRUE(f.net.AddIsA(parka, jacket).ok());
  auto closure = f.net.HypernymClosure(parka);
  ASSERT_EQ(closure.size(), 2u);
  EXPECT_EQ(closure[0], jacket);
  EXPECT_EQ(closure[1], clothing);
  auto hypos = f.net.Hyponyms(clothing);
  ASSERT_EQ(hypos.size(), 1u);
  EXPECT_EQ(hypos[0], jacket);
}

TEST(ConceptNetTest, IsACycleRejected) {
  Fixture f;
  ConceptId a = *f.net.GetOrAddPrimitiveConcept("a", f.category);
  ConceptId b = *f.net.GetOrAddPrimitiveConcept("b", f.category);
  ConceptId c = *f.net.GetOrAddPrimitiveConcept("c", f.category);
  ASSERT_TRUE(f.net.AddIsA(a, b).ok());
  ASSERT_TRUE(f.net.AddIsA(b, c).ok());
  EXPECT_TRUE(f.net.AddIsA(c, a).IsFailedPrecondition());
  EXPECT_TRUE(f.net.AddIsA(a, a).IsInvalidArgument());
  EXPECT_TRUE(f.net.AddIsA(a, b).IsAlreadyExists());
}

TEST(ConceptNetTest, EcIsACycleRejected) {
  Fixture f;
  EcConceptId a = *f.net.GetOrAddEcConcept({"winter", "barbecue"});
  EcConceptId b = *f.net.GetOrAddEcConcept({"any", "barbecue"});
  ASSERT_TRUE(f.net.AddEcIsA(a, b).ok());
  EXPECT_TRUE(f.net.AddEcIsA(b, a).IsFailedPrecondition());
  auto parents = f.net.EcParents(a);
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], b);
  auto children = f.net.EcChildren(b);
  ASSERT_EQ(children.size(), 1u);
}

TEST(ConceptNetTest, ExpandWithHypernymsCoversAllSenses) {
  Fixture f;
  ConceptId top = *f.net.GetOrAddPrimitiveConcept("top", f.category);
  ConceptId jacket = *f.net.GetOrAddPrimitiveConcept("jacket", f.category);
  ASSERT_TRUE(f.net.AddIsA(jacket, top).ok());
  auto expanded = f.net.ExpandWithHypernyms("jacket");
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0], "jacket");
  EXPECT_EQ(expanded[1], "top");
  // Unknown surface expands to itself only.
  EXPECT_EQ(f.net.ExpandWithHypernyms("zzz").size(), 1u);
}

TEST(ConceptNetTest, TypedRelationsValidatedBySchema) {
  Fixture f;
  ASSERT_TRUE(
      f.net.AddRelation("suitable_when", f.category, f.season).ok());
  ConceptId trousers =
      *f.net.GetOrAddPrimitiveConcept("cotton trousers", f.category);
  ClassId season_cls = *f.net.taxonomy().Find("Season");
  ConceptId winter = *f.net.GetOrAddPrimitiveConcept("winter", season_cls);
  ASSERT_TRUE(f.net.AddTypedRelation("suitable_when", trousers, winter).ok());
  // Violations rejected.
  EXPECT_TRUE(f.net.AddTypedRelation("suitable_when", winter, trousers)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      f.net.AddTypedRelation("nope", trousers, winter).IsNotFound());
  auto rels = f.net.TypedRelationsFrom(trousers);
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0].relation, "suitable_when");
  EXPECT_EQ(rels[0].object, winter);
}

TEST(ConceptNetTest, EdgeCountsTracked) {
  Fixture f;
  EXPECT_EQ(f.net.num_ec_primitive_links(), 2u);
  EXPECT_EQ(f.net.num_item_ec_links(), 2u);
  EXPECT_EQ(f.net.num_item_primitive_links(), 2u);
  EXPECT_EQ(f.net.num_isa_primitive(), 0u);
}

TEST(ConceptNetTest, GlossAttachment) {
  Fixture f;
  ASSERT_TRUE(f.net.SetGloss(f.barbecue, {"grilling", "food", "outside"}).ok());
  EXPECT_EQ(f.net.Get(f.barbecue).gloss.size(), 3u);
  EXPECT_TRUE(f.net.SetGloss(ConceptId(999), {}).IsNotFound());
}

}  // namespace
}  // namespace alicoco::kg
