#include "kg/taxonomy.h"

#include <gtest/gtest.h>

namespace alicoco::kg {
namespace {

Taxonomy BuildSample() {
  Taxonomy tax;
  ClassId category = *tax.AddDomain("Category");
  tax.AddDomain("Time");
  ClassId clothing = *tax.AddClass("Clothing", category);
  tax.AddClass("Dress", clothing);
  tax.AddClass("Pants", clothing);
  tax.AddClass("Season", *tax.Find("Time"));
  return tax;
}

TEST(TaxonomyTest, RootExists) {
  Taxonomy tax;
  EXPECT_EQ(tax.size(), 1u);
  EXPECT_EQ(tax.Get(tax.root()).name, "Root");
  EXPECT_EQ(tax.Get(tax.root()).depth, 0);
}

TEST(TaxonomyTest, AddAndFind) {
  auto tax = BuildSample();
  auto dress = tax.Find("Dress");
  ASSERT_TRUE(dress.ok());
  EXPECT_EQ(tax.Get(*dress).name, "Dress");
  EXPECT_EQ(tax.Get(*dress).depth, 3);
  EXPECT_TRUE(tax.Find("Shoes").status().IsNotFound());
}

TEST(TaxonomyTest, DuplicateNameRejected) {
  auto tax = BuildSample();
  EXPECT_TRUE(tax.AddDomain("Category").status().IsAlreadyExists());
}

TEST(TaxonomyTest, UnknownParentRejected) {
  Taxonomy tax;
  EXPECT_TRUE(tax.AddClass("X", ClassId(999)).status().IsNotFound());
}

TEST(TaxonomyTest, AncestryIsReflexiveAndTransitive) {
  auto tax = BuildSample();
  ClassId category = *tax.Find("Category");
  ClassId clothing = *tax.Find("Clothing");
  ClassId dress = *tax.Find("Dress");
  EXPECT_TRUE(tax.IsAncestor(dress, dress));
  EXPECT_TRUE(tax.IsAncestor(clothing, dress));
  EXPECT_TRUE(tax.IsAncestor(category, dress));
  EXPECT_TRUE(tax.IsAncestor(tax.root(), dress));
  EXPECT_FALSE(tax.IsAncestor(dress, clothing));
  EXPECT_FALSE(tax.IsAncestor(*tax.Find("Time"), dress));
}

TEST(TaxonomyTest, DomainOfDeepClass) {
  auto tax = BuildSample();
  EXPECT_EQ(tax.Domain(*tax.Find("Dress")), *tax.Find("Category"));
  EXPECT_EQ(tax.Domain(*tax.Find("Category")), *tax.Find("Category"));
  EXPECT_FALSE(tax.Domain(tax.root()).valid());
}

TEST(TaxonomyTest, PathToRoot) {
  auto tax = BuildSample();
  auto path = tax.PathToRoot(*tax.Find("Dress"));
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(tax.Get(path[0]).name, "Dress");
  EXPECT_EQ(tax.Get(path[1]).name, "Clothing");
  EXPECT_EQ(tax.Get(path[2]).name, "Category");
  EXPECT_EQ(tax.Get(path[3]).name, "Root");
}

TEST(TaxonomyTest, SubtreeAndLeaves) {
  auto tax = BuildSample();
  auto subtree = tax.Subtree(*tax.Find("Category"));
  EXPECT_EQ(subtree.size(), 4u);  // Category, Clothing, Dress, Pants
  auto leaves = tax.Leaves(*tax.Find("Category"));
  EXPECT_EQ(leaves.size(), 2u);  // Dress, Pants
}

TEST(TaxonomyTest, DomainsListsFirstLevel) {
  auto tax = BuildSample();
  auto domains = tax.Domains();
  ASSERT_EQ(domains.size(), 2u);
  EXPECT_EQ(tax.Get(domains[0]).name, "Category");
  EXPECT_EQ(tax.Get(domains[1]).name, "Time");
}

}  // namespace
}  // namespace alicoco::kg
