#include "kg/schema.h"

#include <gtest/gtest.h>

namespace alicoco::kg {
namespace {

struct Fixture {
  Taxonomy tax;
  ClassId category, pants, time, season;

  Fixture() {
    category = *tax.AddDomain("Category");
    pants = *tax.AddClass("Pants", category);
    time = *tax.AddDomain("Time");
    season = *tax.AddClass("Season", time);
  }
};

TEST(SchemaTest, AddAndFind) {
  Fixture f;
  Schema schema;
  ASSERT_TRUE(
      schema.AddRelation(f.tax, "suitable_when", f.category, f.season).ok());
  const RelationDef* def = schema.Find("suitable_when");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->domain, f.category);
  EXPECT_EQ(schema.Find("nope"), nullptr);
}

TEST(SchemaTest, DuplicateRejected) {
  Fixture f;
  Schema schema;
  ASSERT_TRUE(schema.AddRelation(f.tax, "r", f.category, f.season).ok());
  EXPECT_TRUE(schema.AddRelation(f.tax, "r", f.time, f.season).IsAlreadyExists());
}

TEST(SchemaTest, UnknownClassRejected) {
  Fixture f;
  Schema schema;
  EXPECT_TRUE(schema.AddRelation(f.tax, "r", ClassId(999), f.season).IsNotFound());
}

TEST(SchemaTest, ValidateSubclassesAllowed) {
  Fixture f;
  Schema schema;
  ASSERT_TRUE(
      schema.AddRelation(f.tax, "suitable_when", f.category, f.season).ok());
  // Pants is a descendant of Category: OK.
  EXPECT_TRUE(schema.Validate(f.tax, "suitable_when", f.pants, f.season).ok());
  // Exact classes: OK.
  EXPECT_TRUE(
      schema.Validate(f.tax, "suitable_when", f.category, f.season).ok());
}

TEST(SchemaTest, ValidateRejectsWrongClasses) {
  Fixture f;
  Schema schema;
  ASSERT_TRUE(
      schema.AddRelation(f.tax, "suitable_when", f.category, f.season).ok());
  // Subject outside Category subtree.
  EXPECT_TRUE(schema.Validate(f.tax, "suitable_when", f.season, f.season)
                  .IsInvalidArgument());
  // Object outside Season subtree.
  EXPECT_TRUE(schema.Validate(f.tax, "suitable_when", f.pants, f.pants)
                  .IsInvalidArgument());
  // Unknown relation.
  EXPECT_TRUE(schema.Validate(f.tax, "nope", f.pants, f.season).IsNotFound());
}

TEST(SchemaTest, ValidatesAgainstWhicheverTaxonomyIsPassed) {
  // The schema holds no taxonomy reference: the same definitions can be
  // checked against a second taxonomy where the ids mean something else.
  Fixture f;
  Schema schema;
  ASSERT_TRUE(
      schema.AddRelation(f.tax, "suitable_when", f.category, f.season).ok());
  Taxonomy other;  // empty: every class id is unknown here
  EXPECT_TRUE(schema.Validate(other, "suitable_when", f.pants, f.season)
                  .IsNotFound());
}

TEST(SchemaTest, RelationsEnumerated) {
  Fixture f;
  Schema schema;
  (void)schema.AddRelation(f.tax, "a", f.category, f.season);
  (void)schema.AddRelation(f.tax, "b", f.time, f.category);
  EXPECT_EQ(schema.relations().size(), 2u);
}

}  // namespace
}  // namespace alicoco::kg
