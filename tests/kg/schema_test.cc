#include "kg/schema.h"

#include <gtest/gtest.h>

namespace alicoco::kg {
namespace {

struct Fixture {
  Taxonomy tax;
  ClassId category, pants, time, season;

  Fixture() {
    category = *tax.AddDomain("Category");
    pants = *tax.AddClass("Pants", category);
    time = *tax.AddDomain("Time");
    season = *tax.AddClass("Season", time);
  }
};

TEST(SchemaTest, AddAndFind) {
  Fixture f;
  Schema schema(&f.tax);
  ASSERT_TRUE(schema.AddRelation("suitable_when", f.category, f.season).ok());
  const RelationDef* def = schema.Find("suitable_when");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->domain, f.category);
  EXPECT_EQ(schema.Find("nope"), nullptr);
}

TEST(SchemaTest, DuplicateRejected) {
  Fixture f;
  Schema schema(&f.tax);
  ASSERT_TRUE(schema.AddRelation("r", f.category, f.season).ok());
  EXPECT_TRUE(schema.AddRelation("r", f.time, f.season).IsAlreadyExists());
}

TEST(SchemaTest, UnknownClassRejected) {
  Fixture f;
  Schema schema(&f.tax);
  EXPECT_TRUE(schema.AddRelation("r", ClassId(999), f.season).IsNotFound());
}

TEST(SchemaTest, ValidateSubclassesAllowed) {
  Fixture f;
  Schema schema(&f.tax);
  ASSERT_TRUE(schema.AddRelation("suitable_when", f.category, f.season).ok());
  // Pants is a descendant of Category: OK.
  EXPECT_TRUE(schema.Validate("suitable_when", f.pants, f.season).ok());
  // Exact classes: OK.
  EXPECT_TRUE(schema.Validate("suitable_when", f.category, f.season).ok());
}

TEST(SchemaTest, ValidateRejectsWrongClasses) {
  Fixture f;
  Schema schema(&f.tax);
  ASSERT_TRUE(schema.AddRelation("suitable_when", f.category, f.season).ok());
  // Subject outside Category subtree.
  EXPECT_TRUE(
      schema.Validate("suitable_when", f.season, f.season).IsInvalidArgument());
  // Object outside Season subtree.
  EXPECT_TRUE(
      schema.Validate("suitable_when", f.pants, f.pants).IsInvalidArgument());
  // Unknown relation.
  EXPECT_TRUE(schema.Validate("nope", f.pants, f.season).IsNotFound());
}

TEST(SchemaTest, RelationsEnumerated) {
  Fixture f;
  Schema schema(&f.tax);
  schema.AddRelation("a", f.category, f.season);
  schema.AddRelation("b", f.time, f.category);
  EXPECT_EQ(schema.relations().size(), 2u);
}

}  // namespace
}  // namespace alicoco::kg
