#include "kg/validator.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace alicoco::kg {

// Friend of ConceptNet: injects the internal corruptions the public API
// refuses to produce, proving the validator actually detects them.
class ValidatorTestPeer {
 public:
  // Completes an isA 2-cycle on top of an existing hyponym->hypernym edge.
  // Mirrors and counters are kept consistent so only the cycle is wrong.
  static void InjectIsACycle(ConceptNet* net, ConceptId hyponym,
                             ConceptId hypernym) {
    net->hypernyms_[hypernym].push_back(hyponym);
    net->hyponyms_[hyponym].push_back(hypernym);
    ++net->isa_edge_count_;
  }

  // Forward edge to a concept id outside the node table.
  static void InjectDanglingEdge(ConceptNet* net, ConceptId from) {
    net->hypernyms_[from].push_back(ConceptId(0x7fffffff));
    ++net->isa_edge_count_;
  }

  // Forward edge between live nodes with no reverse twin (counter kept in
  // sync so the asymmetry is the only defect on that map pair).
  static void InjectAsymmetricEdge(ConceptNet* net, ConceptId from,
                                   ConceptId to) {
    net->hypernyms_[from].push_back(to);
    ++net->isa_edge_count_;
  }

  // Second node with the same (surface, class) sense, registered in the
  // indexes like a real node.
  static void InjectDuplicateSense(ConceptNet* net, ConceptId original) {
    PrimitiveConcept copy = net->primitives_[original.value];
    copy.id = ConceptId(static_cast<uint32_t>(net->primitives_.size()));
    net->primitives_.push_back(copy);
    net->primitive_by_surface_[copy.surface].push_back(copy.id);
    net->primitive_by_class_[copy.cls].push_back(copy.id);
  }

  // Breaks the dense-id invariant: node at index i no longer carries id i.
  static void InjectIdMismatch(ConceptNet* net, ConceptId victim) {
    net->primitives_[victim.value].id =
        ConceptId(victim.value + 1000);
  }

  static void InjectBadProbability(ConceptNet* net, ItemId item,
                                   EcConceptId ec) {
    uint64_t key = (static_cast<uint64_t>(item.value) << 32) | ec.value;
    net->item_ec_probability_[key] = 1.5;
  }

  static void CorruptIsACounter(ConceptNet* net) { ++net->isa_edge_count_; }
};

namespace {

struct Net {
  ConceptNet net;
  ClassId category, pants, time, season;
  ConceptId jeans, denim, winter;
  EcConceptId ec;
  ItemId item;
};

// Small but fully-populated net: every node layer, every relation kind.
Net MakeValidNet() {
  Net n;
  n.category = *n.net.taxonomy().AddDomain("Category");
  n.pants = *n.net.taxonomy().AddClass("Pants", n.category);
  n.time = *n.net.taxonomy().AddDomain("Time");
  n.season = *n.net.taxonomy().AddClass("Season", n.time);

  n.jeans = *n.net.GetOrAddPrimitiveConcept("jeans", n.pants);
  n.denim = *n.net.GetOrAddPrimitiveConcept("denim pants", n.pants);
  n.winter = *n.net.GetOrAddPrimitiveConcept("winter", n.season);
  EXPECT_TRUE(n.net.AddIsA(n.denim, n.jeans).ok());

  n.ec = *n.net.GetOrAddEcConcept({"warm", "jeans"});
  EXPECT_TRUE(n.net.LinkEcToPrimitive(n.ec, n.jeans).ok());

  n.item = *n.net.AddItem({"blue", "jeans"}, n.pants);
  EXPECT_TRUE(n.net.LinkItemToPrimitive(n.item, n.jeans).ok());
  EXPECT_TRUE(n.net.LinkItemToEc(n.item, n.ec, 0.8).ok());

  EXPECT_TRUE(n.net.AddRelation("suitable_when", n.category, n.season).ok());
  EXPECT_TRUE(
      n.net.AddTypedRelation("suitable_when", n.jeans, n.winter).ok());
  return n;
}

bool HasCode(const ValidationReport& report, ValidationCode code) {
  return std::any_of(report.issues.begin(), report.issues.end(),
                     [code](const ValidationIssue& i) {
                       return i.code == code;
                     });
}

TEST(ValidatorTest, ValidNetPasses) {
  Net n = MakeValidNet();
  ValidationReport report = Validator().Validate(n.net);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.checks_run, 0u);
  EXPECT_FALSE(report.truncated);
  EXPECT_NE(report.Summary().find("valid"), std::string::npos);
}

TEST(ValidatorTest, CopiedNetStillValidates) {
  // The net must be a correct value type: a copy has to pass the same
  // audit, including schema checks (a stale internal pointer would not).
  Net n = MakeValidNet();
  ConceptNet copy = n.net;
  ValidationReport report = Validator().Validate(copy);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ValidatorTest, DetectsInjectedIsACycle) {
  Net n = MakeValidNet();
  ValidatorTestPeer::InjectIsACycle(&n.net, n.denim, n.jeans);
  ValidationReport report = Validator().Validate(n.net);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, ValidationCode::kIsACycle)) << report.Summary();
}

TEST(ValidatorTest, DetectsDanglingEdge) {
  Net n = MakeValidNet();
  ValidatorTestPeer::InjectDanglingEdge(&n.net, n.jeans);
  ValidationReport report = Validator().Validate(n.net);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, ValidationCode::kDanglingEdge))
      << report.Summary();
}

TEST(ValidatorTest, DetectsAsymmetricEdge) {
  Net n = MakeValidNet();
  ValidatorTestPeer::InjectAsymmetricEdge(&n.net, n.winter, n.jeans);
  ValidationReport report = Validator().Validate(n.net);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, ValidationCode::kAsymmetricEdge))
      << report.Summary();
}

TEST(ValidatorTest, DetectsDuplicateSense) {
  Net n = MakeValidNet();
  ValidatorTestPeer::InjectDuplicateSense(&n.net, n.jeans);
  ValidationReport report = Validator().Validate(n.net);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, ValidationCode::kDuplicateNode))
      << report.Summary();
}

TEST(ValidatorTest, DetectsIdMismatch) {
  Net n = MakeValidNet();
  ValidatorTestPeer::InjectIdMismatch(&n.net, n.winter);
  ValidationReport report = Validator().Validate(n.net);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, ValidationCode::kIdMismatch))
      << report.Summary();
}

TEST(ValidatorTest, DetectsBadProbability) {
  Net n = MakeValidNet();
  ValidatorTestPeer::InjectBadProbability(&n.net, n.item, n.ec);
  ValidationReport report = Validator().Validate(n.net);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, ValidationCode::kBadProbability))
      << report.Summary();
}

TEST(ValidatorTest, DetectsCounterMismatch) {
  Net n = MakeValidNet();
  ValidatorTestPeer::CorruptIsACounter(&n.net);
  ValidationReport report = Validator().Validate(n.net);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report, ValidationCode::kCountMismatch))
      << report.Summary();
}

TEST(ValidatorTest, MaxIssuesTruncatesReport) {
  Net n = MakeValidNet();
  // Several independent defects, budget for one.
  ValidatorTestPeer::InjectDanglingEdge(&n.net, n.jeans);
  ValidatorTestPeer::InjectBadProbability(&n.net, n.item, n.ec);
  ValidatorTestPeer::CorruptIsACounter(&n.net);
  Validator::Options opts;
  opts.max_issues = 1;
  ValidationReport report = Validator(opts).Validate(n.net);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.issues.size(), 1u);
  EXPECT_TRUE(report.truncated);
}

TEST(ValidatorTest, CodesHaveStableNames) {
  EXPECT_STREQ(ValidationCodeToString(ValidationCode::kDanglingEdge),
               "DanglingEdge");
  EXPECT_STREQ(ValidationCodeToString(ValidationCode::kIsACycle), "IsACycle");
}

}  // namespace
}  // namespace alicoco::kg
