#include "kg/graphviz.h"

#include <gtest/gtest.h>

namespace alicoco::kg {
namespace {

struct Fixture {
  ConceptNet net;
  EcConceptId ob;
  ConceptId grill, cookware, outdoor, winter;
  ItemId item;

  Fixture() {
    ClassId category = *net.taxonomy().AddDomain("Category");
    ClassId location = *net.taxonomy().AddDomain("Location");
    ClassId time = *net.taxonomy().AddDomain("Time");
    ClassId season = *net.taxonomy().AddClass("Season", time);
    EXPECT_TRUE(
        net.AddRelation("suitable_when", category, season).ok());
    grill = *net.GetOrAddPrimitiveConcept("grill", category);
    cookware = *net.GetOrAddPrimitiveConcept("cookware", category);
    outdoor = *net.GetOrAddPrimitiveConcept("outdoor", location);
    winter = *net.GetOrAddPrimitiveConcept("winter", season);
    EXPECT_TRUE(net.AddIsA(grill, cookware).ok());
    EXPECT_TRUE(net.AddTypedRelation("suitable_when", grill, winter).ok());
    ob = *net.GetOrAddEcConcept({"outdoor", "barbecue"});
    EXPECT_TRUE(net.LinkEcToPrimitive(ob, outdoor).ok());
    EXPECT_TRUE(net.LinkEcToPrimitive(ob, grill).ok());
    item = *net.AddItem({"steel", "grill"}, category);
    EXPECT_TRUE(net.LinkItemToEc(item, ob, 0.87).ok());
  }
};

TEST(GraphvizTest, EcNeighborhoodContainsAllLayers) {
  Fixture f;
  std::string dot = EcConceptNeighborhoodDot(f.net, f.ob);
  EXPECT_NE(dot.find("digraph alicoco"), std::string::npos);
  EXPECT_NE(dot.find("outdoor barbecue"), std::string::npos);
  EXPECT_NE(dot.find("interprets"), std::string::npos);
  EXPECT_NE(dot.find("grill"), std::string::npos);
  EXPECT_NE(dot.find("cookware"), std::string::npos);      // hypernym hop
  EXPECT_NE(dot.find("steel grill"), std::string::npos);   // item
  EXPECT_NE(dot.find("0.87"), std::string::npos);          // probability
  EXPECT_NE(dot.find("suitable_when"), std::string::npos); // typed relation
  EXPECT_EQ(dot.back(), '\n');
}

TEST(GraphvizTest, OptionsControlContent) {
  Fixture f;
  GraphvizOptions opt;
  opt.include_typed_relations = false;
  opt.max_hypernym_hops = 0;
  opt.max_items = 0;
  std::string dot = EcConceptNeighborhoodDot(f.net, f.ob, opt);
  EXPECT_EQ(dot.find("suitable_when"), std::string::npos);
  EXPECT_EQ(dot.find("cookware"), std::string::npos);
  EXPECT_EQ(dot.find("steel grill"), std::string::npos);
  EXPECT_NE(dot.find("grill"), std::string::npos);  // interpretation stays
}

TEST(GraphvizTest, PrimitiveNeighborhood) {
  Fixture f;
  std::string dot = PrimitiveNeighborhoodDot(f.net, f.cookware);
  EXPECT_NE(dot.find("cookware"), std::string::npos);
  EXPECT_NE(dot.find("grill"), std::string::npos);  // hyponym
  EXPECT_NE(dot.find("isA"), std::string::npos);
}

TEST(GraphvizTest, EscapesQuotes) {
  ConceptNet net;
  ClassId category = *net.taxonomy().AddDomain("Category");
  ConceptId weird = *net.GetOrAddPrimitiveConcept("8\" tablet", category);
  std::string dot = PrimitiveNeighborhoodDot(net, weird);
  EXPECT_NE(dot.find("8\\\" tablet"), std::string::npos);
}

TEST(GraphvizTest, BalancedBraces) {
  Fixture f;
  std::string dot = EcConceptNeighborhoodDot(f.net, f.ob);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

}  // namespace
}  // namespace alicoco::kg
