// Replays the committed corrupted-input corpus (tests/corpus/) through
// every deserializer in the tree. Each file must produce a clean Status
// error — never a crash, an uncaught exception, unbounded recursion, or
// a count-driven over-allocation. tools/ci.sh re-runs this suite under
// ASan/UBSan so memory errors on the corrupt paths surface too.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kg/persistence.h"
#include "nn/serialize.h"
#include "obs/pipeline_profile.h"
#include "tools/lint/index.h"
#include "tools/lint/sarif.h"

namespace alicoco {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles(const char* subdir,
                                  const char* ext = nullptr) {
  fs::path dir = fs::path(ALICOCO_CORPUS_DIR) / subdir;
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (ext != nullptr && entry.path().extension() != ext) continue;
    out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  EXPECT_FALSE(out.empty()) << "empty corpus dir " << dir;
  return out;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CorpusReplayTest, KgSnapshotsFailCleanly) {
  for (const fs::path& file : CorpusFiles("kg")) {
    auto loaded = kg::LoadConceptNet(file.generic_string());
    EXPECT_FALSE(loaded.ok()) << file << " loaded a corrupt snapshot";
    EXPECT_TRUE(loaded.status().IsCorruption())
        << file << ": " << loaded.status().ToString();
  }
}

TEST(CorpusReplayTest, NnCheckpointsFailCleanly) {
  // The loader checks counts/names against an already-constructed store,
  // so give it one real 2x2 parameter named "w" — that lets count=1
  // corpus files reach the deeper name/shape/payload validation.
  Rng rng(42);
  for (const fs::path& file : CorpusFiles("nn", ".bin")) {
    const bool quant =
        file.filename().generic_string().rfind("quant_", 0) == 0;
    Status status;
    if (quant) {
      nn::quant::QuantizedStore store;
      status = nn::LoadQuantizedStore(&store, file.generic_string());
    } else {
      nn::ParameterStore store;
      store.Create("w", 2, 2, nn::ParameterStore::Init::kZero, &rng);
      status = nn::LoadParameters(&store, file.generic_string());
    }
    EXPECT_FALSE(status.ok()) << file << " loaded a corrupt checkpoint";
    EXPECT_TRUE(status.IsCorruption())
        << file << ": " << status.ToString();
  }
}

TEST(CorpusReplayTest, PipelineProfilesFailCleanly) {
  for (const fs::path& file : CorpusFiles("profile")) {
    auto parsed = obs::PipelineProfile::FromJson(ReadAll(file));
    EXPECT_FALSE(parsed.ok()) << file << " parsed a corrupt profile";
    EXPECT_TRUE(parsed.status().IsCorruption())
        << file << ": " << parsed.status().ToString();
  }
}

TEST(CorpusReplayTest, SarifDocumentsFailCleanly) {
  for (const fs::path& file : CorpusFiles("sarif")) {
    auto parsed = lint::ParseSarif(ReadAll(file));
    EXPECT_FALSE(parsed.ok()) << file << " parsed a corrupt SARIF file";
    EXPECT_TRUE(parsed.status().IsCorruption())
        << file << ": " << parsed.status().ToString();
  }
}

TEST(CorpusReplayTest, LintCacheRecordsFailCleanly) {
  // The corpus holds record bodies only; prepending the current version
  // header makes the record-level hardening the thing under test (a stale
  // header is its own, separately-tested discard path).
  std::ostringstream header;
  header << "alicoco_lint_cache_v4 " << lint::AnalyzerCacheVersion() << "\n";
  for (const fs::path& file : CorpusFiles("lintcache")) {
    auto parsed = lint::DeserializeSummaries(header.str() + ReadAll(file));
    EXPECT_FALSE(parsed.ok()) << file << " parsed a corrupt cache";
    EXPECT_TRUE(parsed.status().IsCorruption())
        << file << ": " << parsed.status().ToString();
  }
}

}  // namespace
}  // namespace alicoco
