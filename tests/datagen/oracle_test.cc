// Tests for the world's goodness oracle and the perfect-match distant
// supervision filter — the two places where the world plays "annotator".

#include <gtest/gtest.h>

#include "datagen/grammar.h"
#include "datagen/world.h"
#include "mining/distant_supervision.h"
#include "text/tokenizer.h"

namespace alicoco::datagen {
namespace {

const World& SharedWorld() {
  static const World world = [] {
    WorldConfig cfg;
    cfg.seed = 91;
    cfg.heads_per_leaf = 2;
    cfg.derived_per_head = 3;
    cfg.per_domain_vocab = 10;
    cfg.num_events = 8;
    cfg.num_items = 300;
    cfg.num_good_ec_concepts = 100;
    cfg.num_bad_ec_concepts = 100;
    cfg.titles = 500;
    cfg.reviews = 300;
    cfg.guides = 200;
    cfg.queries = 150;
    cfg.num_users = 10;
    cfg.num_needs_queries = 50;
    return World::Generate(cfg);
  }();
  return world;
}

TEST(GoodnessOracleTest, AcceptsEveryGoldConcept) {
  const World& w = SharedWorld();
  for (const auto& t : w.tagged_concepts()) {
    EXPECT_TRUE(w.IsGoodConcept(t.tokens))
        << text::JoinTokens(t.tokens);
  }
}

TEST(GoodnessOracleTest, RejectsEveryGeneratedBadCandidate) {
  const World& w = SharedWorld();
  for (const auto& c : w.concept_candidates()) {
    if (!c.good) {
      EXPECT_FALSE(w.IsGoodConcept(c.tokens))
          << text::JoinTokens(c.tokens) << " flaw "
          << static_cast<int>(c.flaw);
    }
  }
}

TEST(GoodnessOracleTest, AcceptsSimpleAttributeCategoryPairs) {
  // A compatible [Function][Category] pair is a concept even though the
  // gold generation never sampled it (oracle generalizes beyond the list).
  const World& w = SharedWorld();
  const auto& net = w.net();
  size_t found_good = 0, found_bad = 0;
  auto cat_domain = *net.taxonomy().Find("Category");
  auto fn_domain = *net.taxonomy().Find("Function");
  std::vector<std::string> functions, heads;
  for (const auto& p : net.primitives()) {
    auto domain = net.taxonomy().Domain(p.cls);
    if (domain == fn_domain) functions.push_back(p.surface);
    if (domain == cat_domain && text::Tokenize(p.surface).size() == 1) {
      heads.push_back(p.surface);
    }
  }
  for (const auto& fn : functions) {
    for (const auto& head : heads) {
      if (w.IsGoodConcept({fn, head})) ++found_good;
      else ++found_bad;
    }
  }
  // The compatibility model marks roughly half the pairs compatible.
  EXPECT_GT(found_good, 0u);
  EXPECT_GT(found_bad, 0u);
}

TEST(GoodnessOracleTest, RejectsStructuralJunk) {
  const World& w = SharedWorld();
  EXPECT_FALSE(w.IsGoodConcept({}));
  EXPECT_FALSE(w.IsGoodConcept({"totally", "unknown", "words"}));
  EXPECT_FALSE(w.IsGoodConcept(
      {"a", "b", "c", "d", "e", "f", "g"}));  // too long
}

TEST(GoodnessOracleTest, BareEventIsAConcept) {
  const World& w = SharedWorld();
  // Every event-driven single-primitive gold concept passes.
  for (const auto& g : w.ec_gold()) {
    if (g.interpretation.size() == 1 && g.event_driven) {
      EXPECT_TRUE(w.IsGoodConcept(w.net().Get(g.id).tokens));
    }
  }
}

TEST(PerfectMatchFilterTest, DropsSentencesWithUnknownContentWords) {
  std::vector<std::pair<std::string, std::string>> dict = {
      {"boot", "Category"}, {"warm", "Function"}};
  mining::DistantSupervisor with_stop(dict, {"the", "and"});
  mining::DistantSupervisor::Stats stats;
  auto labeled = with_stop.Label(
      {
          {"the", "warm", "boot"},       // perfect: carriers + matches
          {"the", "mystery", "boot"},    // imperfect: unknown content word
          {"warm", "and", "boot"},       // perfect
      },
      &stats);
  EXPECT_EQ(stats.kept, 2u);
  EXPECT_EQ(stats.imperfect, 1u);
}

TEST(PerfectMatchFilterTest, NoStopwordsMeansNoImperfectFilter) {
  std::vector<std::pair<std::string, std::string>> dict = {
      {"boot", "Category"}};
  mining::DistantSupervisor no_stop(dict);
  mining::DistantSupervisor::Stats stats;
  auto labeled = no_stop.Label({{"anything", "boot"}}, &stats);
  EXPECT_EQ(stats.kept, 1u);
  EXPECT_EQ(stats.imperfect, 0u);
}

TEST(CarrierVocabularyTest, ContainsGrammarWords) {
  const auto& carrier = CarrierVocabulary();
  auto has = [&](const char* w) {
    return std::find(carrier.begin(), carrier.end(), w) != carrier.end();
  };
  EXPECT_TRUE(has("the"));
  EXPECT_TRUE(has("for"));
  EXPECT_TRUE(has("such"));
  EXPECT_TRUE(has("gifts"));
  EXPECT_TRUE(has("needs"));
}

// Parameterized determinism sweep: every seed produces a self-consistent
// world whose core invariants hold.
class WorldSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorldSeedSweep, InvariantsHoldAcrossSeeds) {
  WorldConfig cfg;
  cfg.seed = GetParam();
  cfg.heads_per_leaf = 2;
  cfg.derived_per_head = 2;
  cfg.per_domain_vocab = 8;
  cfg.num_events = 6;
  cfg.num_items = 150;
  cfg.num_good_ec_concepts = 30;
  cfg.num_bad_ec_concepts = 30;
  cfg.titles = 200;
  cfg.reviews = 100;
  cfg.guides = 80;
  cfg.queries = 60;
  cfg.num_users = 8;
  cfg.num_needs_queries = 30;
  World w = World::Generate(cfg);

  EXPECT_EQ(w.net().taxonomy().Domains().size(), 20u);
  EXPECT_EQ(w.net().num_items(), 150u);
  EXPECT_EQ(w.tagged_concepts().size(), 30u);
  // Gold concepts always satisfy the oracle; sentences stay aligned.
  for (const auto& t : w.tagged_concepts()) {
    EXPECT_TRUE(w.IsGoodConcept(t.tokens));
  }
  for (const auto& s : w.sentences()) {
    EXPECT_EQ(s.tokens.size(), s.gold_iob.size());
  }
  // isA stays acyclic by construction: closure never contains the start.
  for (const auto& p : w.net().primitives()) {
    auto closure = w.net().HypernymClosure(p.id);
    EXPECT_EQ(std::count(closure.begin(), closure.end(), p.id), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace alicoco::datagen
