#include "datagen/vocab_gen.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/string_util.h"

namespace alicoco::datagen {
namespace {

TEST(WordMinterTest, MintsUniqueWords) {
  WordMinter minter(1);
  std::unordered_set<std::string> seen;
  for (int i = 0; i < 2000; ++i) {
    std::string w = minter.MintNoun();
    EXPECT_TRUE(seen.insert(w).second) << "duplicate " << w;
  }
}

TEST(WordMinterTest, DeterministicForSeed) {
  WordMinter a(9), b(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.MintNoun(), b.MintNoun());
}

TEST(WordMinterTest, AdjectivesCarryAdjectiveSuffix) {
  WordMinter minter(2);
  for (int i = 0; i < 200; ++i) {
    std::string w = minter.MintAdjective();
    EXPECT_TRUE(EndsWith(w, "y") || EndsWith(w, "ish") || EndsWith(w, "al"))
        << w;
  }
}

TEST(WordMinterTest, GerundsEndWithIng) {
  WordMinter minter(3);
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(EndsWith(minter.MintGerund(), "ing"));
}

TEST(WordMinterTest, ReserveBlocksCollision) {
  WordMinter a(4);
  std::string first = a.MintNoun();
  WordMinter b(4);
  b.Reserve(first);
  EXPECT_NE(b.MintNoun(), first);
}

TEST(WordMinterTest, WordsAreLowercaseAlpha) {
  WordMinter minter(5);
  for (int i = 0; i < 100; ++i) {
    for (char c : minter.MintBrand()) {
      EXPECT_TRUE(c >= 'a' && c <= 'z');
    }
  }
}

}  // namespace
}  // namespace alicoco::datagen
