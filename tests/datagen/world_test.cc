#include "datagen/world.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/legacy_ontology.h"
#include "eval/metrics.h"
#include "kg/stats.h"
#include "text/tokenizer.h"

namespace alicoco::datagen {
namespace {

WorldConfig SmallConfig() {
  WorldConfig cfg;
  cfg.seed = 7;
  cfg.heads_per_leaf = 2;
  cfg.derived_per_head = 3;
  cfg.per_domain_vocab = 12;
  cfg.num_events = 10;
  cfg.num_items = 400;
  cfg.num_good_ec_concepts = 60;
  cfg.num_bad_ec_concepts = 60;
  cfg.titles = 500;
  cfg.reviews = 300;
  cfg.guides = 200;
  cfg.queries = 200;
  cfg.num_users = 30;
  cfg.num_needs_queries = 100;
  return cfg;
}

const World& SharedWorld() {
  static const World world = World::Generate(SmallConfig());
  return world;
}

TEST(WorldTest, TaxonomyHasTwentyDomains) {
  const World& w = SharedWorld();
  EXPECT_EQ(w.net().taxonomy().Domains().size(), 20u);
  EXPECT_EQ(DomainNames().size(), 20u);
  // Category carries the deepest subtree.
  auto leaves =
      w.net().taxonomy().Leaves(w.handles().category);
  EXPECT_GT(leaves.size(), 15u);
}

TEST(WorldTest, DeterministicForSeed) {
  World a = World::Generate(SmallConfig());
  World b = World::Generate(SmallConfig());
  EXPECT_EQ(a.net().num_primitive_concepts(), b.net().num_primitive_concepts());
  EXPECT_EQ(a.net().num_ec_concepts(), b.net().num_ec_concepts());
  ASSERT_EQ(a.sentences().size(), b.sentences().size());
  for (size_t i = 0; i < 50 && i < a.sentences().size(); ++i) {
    EXPECT_EQ(a.sentences()[i].tokens, b.sentences()[i].tokens);
  }
}

TEST(WorldTest, CountsMatchConfig) {
  const World& w = SharedWorld();
  const auto& cfg = w.config();
  EXPECT_EQ(w.net().num_items(), static_cast<size_t>(cfg.num_items));
  EXPECT_EQ(w.item_profiles().size(), static_cast<size_t>(cfg.num_items));
  // Good compound concepts + single-event concepts.
  EXPECT_GE(w.net().num_ec_concepts(),
            static_cast<size_t>(cfg.num_good_ec_concepts));
  EXPECT_EQ(w.concept_candidates().size(),
            static_cast<size_t>(cfg.num_good_ec_concepts +
                                cfg.num_bad_ec_concepts));
  EXPECT_EQ(w.tagged_concepts().size(),
            static_cast<size_t>(cfg.num_good_ec_concepts));
}

TEST(WorldTest, HypernymGoldConsistentWithNet) {
  const World& w = SharedWorld();
  ASSERT_FALSE(w.hypernym_gold().empty());
  for (const auto& pair : w.hypernym_gold()) {
    auto hypo = w.net().FindPrimitive(pair.hypo);
    auto hyper = w.net().FindPrimitive(pair.hyper);
    ASSERT_FALSE(hypo.empty()) << pair.hypo;
    ASSERT_FALSE(hyper.empty()) << pair.hyper;
    // The isA edge exists in the net.
    auto hs = w.net().Hypernyms(hypo[0]);
    EXPECT_TRUE(std::find(hs.begin(), hs.end(), hyper[0]) != hs.end());
    // Two-token hyponyms obey the suffix-head rule ("rain boot" isA
    // "boot"); one-token hyponyms are head->group pairs with disjoint
    // surfaces ("jacket" isA "top").
    if (text::Tokenize(pair.hypo).size() > 1) {
      EXPECT_EQ(pair.hypo.substr(pair.hypo.size() - pair.hyper.size()),
                pair.hyper);
    } else {
      EXPECT_EQ(pair.hypo.find(pair.hyper), std::string::npos);
    }
  }
}

TEST(WorldTest, SentencesHaveAlignedGoldLabels) {
  const World& w = SharedWorld();
  ASSERT_FALSE(w.sentences().empty());
  for (const auto& s : w.sentences()) {
    ASSERT_EQ(s.tokens.size(), s.gold_iob.size());
    ASSERT_FALSE(s.tokens.empty());
    // Labels decode into valid spans.
    auto spans = eval::DecodeIob(s.gold_iob);
    for (const auto& span : spans) {
      EXPECT_LE(span.end, s.tokens.size());
    }
  }
}

TEST(WorldTest, AllFourSourcesPresent) {
  const World& w = SharedWorld();
  EXPECT_FALSE(w.SentencesBySource(Sentence::Source::kTitle).empty());
  EXPECT_FALSE(w.SentencesBySource(Sentence::Source::kQuery).empty());
  EXPECT_FALSE(w.SentencesBySource(Sentence::Source::kReview).empty());
  EXPECT_FALSE(w.SentencesBySource(Sentence::Source::kGuide).empty());
}

TEST(WorldTest, HoldoutSurfacesAppearInCorpusButNotSeedDict) {
  const World& w = SharedWorld();
  ASSERT_FALSE(w.holdout_surfaces().empty());
  std::unordered_set<std::string> seed;
  for (const auto& [surface, domain] : w.seed_dictionary()) {
    seed.insert(surface);
  }
  // Count holdout surfaces that occur somewhere in the corpus.
  size_t found = 0;
  for (const auto& surface : w.holdout_surfaces()) {
    EXPECT_EQ(seed.count(surface), 0u) << surface << " leaked into seed";
    auto toks = text::Tokenize(surface);
    for (const auto& s : w.sentences()) {
      bool hit = false;
      for (size_t i = 0; i + toks.size() <= s.tokens.size(); ++i) {
        bool match = true;
        for (size_t j = 0; j < toks.size(); ++j) {
          if (s.tokens[i + j] != toks[j]) {
            match = false;
            break;
          }
        }
        if (match) {
          hit = true;
          break;
        }
      }
      if (hit) {
        ++found;
        break;
      }
    }
  }
  // Most holdout concepts occur in text (items/guides mention them).
  EXPECT_GT(found, w.holdout_surfaces().size() / 2);
}

TEST(WorldTest, GoodCandidatesBalancedWithBad) {
  const World& w = SharedWorld();
  size_t good = 0, bad = 0;
  for (const auto& c : w.concept_candidates()) {
    if (c.good) {
      ++good;
      EXPECT_EQ(c.flaw, ConceptCandidate::Flaw::kNone);
    } else {
      ++bad;
      EXPECT_NE(c.flaw, ConceptCandidate::Flaw::kNone);
    }
    EXPECT_FALSE(c.tokens.empty());
  }
  EXPECT_EQ(good, bad);
}

TEST(WorldTest, BadCandidatesCoverAllFlawKinds) {
  const World& w = SharedWorld();
  std::unordered_set<int> flaws;
  for (const auto& c : w.concept_candidates()) {
    if (!c.good) flaws.insert(static_cast<int>(c.flaw));
  }
  EXPECT_GE(flaws.size(), 3u);  // at least 3 of the 4 flaw kinds realized
}

TEST(WorldTest, TaggedConceptsHaveValidFuzzySets) {
  const World& w = SharedWorld();
  size_t with_ambiguity = 0;
  for (const auto& t : w.tagged_concepts()) {
    ASSERT_EQ(t.tokens.size(), t.gold_iob.size());
    ASSERT_EQ(t.tokens.size(), t.allowed_iob.size());
    for (size_t i = 0; i < t.tokens.size(); ++i) {
      ASSERT_FALSE(t.allowed_iob[i].empty());
      // Gold label always among the allowed ones.
      EXPECT_TRUE(std::find(t.allowed_iob[i].begin(), t.allowed_iob[i].end(),
                            t.gold_iob[i]) != t.allowed_iob[i].end());
      if (t.allowed_iob[i].size() > 1) ++with_ambiguity;
    }
  }
  // The ambiguous senses must generate some fuzzy positions.
  EXPECT_GT(with_ambiguity, 0u);
}

TEST(WorldTest, EcGoldAssociationsExistInNet) {
  const World& w = SharedWorld();
  size_t drift = 0, with_items = 0;
  for (const auto& g : w.ec_gold()) {
    for (kg::ConceptId p : g.interpretation) {
      auto prims = w.net().PrimitivesForEc(g.id);
      EXPECT_TRUE(std::find(prims.begin(), prims.end(), p) != prims.end());
    }
    if (!g.items.empty()) ++with_items;
    if (g.event_driven) ++drift;
    for (kg::ItemId item : g.items) {
      auto ecs = w.net().EcConceptsForItem(item);
      EXPECT_TRUE(std::find(ecs.begin(), ecs.end(), g.id) != ecs.end());
    }
  }
  EXPECT_GT(drift, 0u);
  EXPECT_GT(with_items, w.ec_gold().size() / 3);
}

TEST(WorldTest, SemanticDriftItemsShareNoTokens) {
  // For event-driven concepts, most associated items must share zero title
  // tokens with the concept surface (that is the drift).
  const World& w = SharedWorld();
  size_t checked = 0, no_overlap = 0;
  for (const auto& g : w.ec_gold()) {
    if (!g.event_driven || g.items.empty()) continue;
    const auto& ec = w.net().Get(g.id);
    std::unordered_set<std::string> concept_tokens(ec.tokens.begin(),
                                                   ec.tokens.end());
    for (kg::ItemId item : g.items) {
      ++checked;
      bool overlap = false;
      for (const auto& t : w.net().Get(item).title) {
        if (concept_tokens.count(t)) overlap = true;
      }
      if (!overlap) ++no_overlap;
    }
  }
  ASSERT_GT(checked, 0u);
  // Pattern-4 concepts ([Holiday] gifts for [Audience]) legitimately share
  // the audience token with some item titles; everything else is pure drift.
  EXPECT_GT(no_overlap, checked * 4 / 5);
}

TEST(WorldTest, ItemsLinkedToPrimitives) {
  const World& w = SharedWorld();
  for (const auto& item : w.item_profiles()) {
    auto prims = w.net().PrimitivesForItem(item.id);
    EXPECT_FALSE(prims.empty());
    // Category link present.
    EXPECT_TRUE(std::find(prims.begin(), prims.end(), item.category) !=
                prims.end());
  }
}

TEST(WorldTest, UsersHaveNeedsAndClicks) {
  const World& w = SharedWorld();
  ASSERT_FALSE(w.user_histories().empty());
  for (const auto& u : w.user_histories()) {
    EXPECT_FALSE(u.needs.empty());
    EXPECT_GE(u.clicked.size(), 3u);
  }
}

TEST(WorldTest, AmbiguousSurfacesExist) {
  const World& w = SharedWorld();
  size_t multi_sense = 0;
  for (const auto& p : w.net().primitives()) {
    if (w.net().FindPrimitive(p.surface).size() > 1) ++multi_sense;
  }
  EXPECT_GT(multi_sense, 0u);
}

TEST(WorldTest, GlossesMentionNeededCategories) {
  // Event glosses must name their needed category heads (the moon-cake
  // knowledge channel of Section 7.6).
  const World& w = SharedWorld();
  size_t checked = 0;
  for (const auto& g : w.ec_gold()) {
    if (!g.event_driven || g.interpretation.size() != 1) continue;
    const auto& event_concept = w.net().Get(g.interpretation[0]);
    if (event_concept.gloss.empty()) continue;
    ++checked;
    std::unordered_set<std::string> gloss_tokens(event_concept.gloss.begin(),
                                                 event_concept.gloss.end());
    // At least one associated item's category head token in the gloss.
    bool hit = false;
    for (kg::ItemId item : g.items) {
      for (const auto& t : w.net().Get(item).title) {
        if (gloss_tokens.count(t)) hit = true;
      }
    }
    if (!g.items.empty()) {
      EXPECT_TRUE(hit);
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(WorldTest, StatisticsPopulateAllDomains) {
  const World& w = SharedWorld();
  auto stats = kg::ComputeStatistics(w.net());
  EXPECT_EQ(stats.per_domain.size(), 20u);
  for (const auto& [name, count] : stats.per_domain) {
    EXPECT_GT(count, 0u) << "empty domain " << name;
  }
  EXPECT_GT(stats.isa_primitive, 0u);
  EXPECT_GT(stats.isa_ec, 0u);
  EXPECT_GT(stats.item_ec, 0u);
  EXPECT_GT(stats.typed_relations, 0u);
}

TEST(LegacyOntologyTest, KnowsOnlyCpvVocabulary) {
  const World& w = SharedWorld();
  LegacyOntology legacy(w);
  EXPECT_GT(legacy.vocabulary_size(), 0u);
  // Every category surface token is known; event tokens are not.
  const auto& net = w.net();
  const auto& tax = net.taxonomy();
  for (const auto& p : net.primitives()) {
    std::string domain = tax.Get(tax.Domain(p.cls)).name;
    auto toks = text::Tokenize(p.surface);
    if (domain == "Category") {
      for (const auto& t : toks) EXPECT_TRUE(legacy.Knows(t)) << t;
    }
    if (domain == "Event") {
      // Event words are exclusive to events unless surface is ambiguous.
      if (net.FindPrimitive(p.surface).size() == 1) {
        for (const auto& t : toks) {
          EXPECT_FALSE(legacy.Knows(t)) << t;
        }
      }
    }
  }
}

TEST(LegacyOntologyTest, CoverageGapOnNeedsQueries) {
  const World& w = SharedWorld();
  LegacyOntology legacy(w);
  // Token-level coverage of needs queries: the full net beats CPV by a wide
  // margin (paper: 75% vs 30%).
  size_t total = 0, net_known = 0, legacy_known = 0;
  for (const auto& q : w.needs_queries()) {
    for (const auto& t : q) {
      ++total;
      if (!w.net().FindPrimitive(t).empty() ||
          std::any_of(w.net().primitives().begin(),
                      w.net().primitives().end(),
                      [&](const kg::PrimitiveConcept& p) {
                        return p.surface == t;
                      })) {
        ++net_known;
      }
      if (legacy.Knows(t)) ++legacy_known;
    }
  }
  ASSERT_GT(total, 0u);
  double net_cov = double(net_known) / total;
  double legacy_cov = double(legacy_known) / total;
  EXPECT_GT(net_cov, legacy_cov + 0.2);
}

}  // namespace
}  // namespace alicoco::datagen
