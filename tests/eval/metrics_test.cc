#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace alicoco::eval {
namespace {

RankedQuery MakeQuery(std::vector<double> scores, std::vector<int> labels) {
  return RankedQuery{std::move(scores), std::move(labels)};
}

TEST(RankingTest, AveragePrecisionPerfectRanking) {
  auto q = MakeQuery({0.9, 0.8, 0.1}, {1, 1, 0});
  EXPECT_DOUBLE_EQ(AveragePrecision(q), 1.0);
}

TEST(RankingTest, AveragePrecisionWorstRanking) {
  auto q = MakeQuery({0.1, 0.2, 0.9}, {1, 0, 0});
  // Relevant item ranked last of 3: AP = 1/3.
  EXPECT_NEAR(AveragePrecision(q), 1.0 / 3.0, 1e-12);
}

TEST(RankingTest, AveragePrecisionMixed) {
  // Ranked: rel, non, rel => AP = (1/1 + 2/3)/2.
  auto q = MakeQuery({0.9, 0.5, 0.4}, {1, 0, 1});
  EXPECT_NEAR(AveragePrecision(q), (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(RankingTest, NoRelevantGivesZero) {
  auto q = MakeQuery({0.9, 0.5}, {0, 0});
  EXPECT_DOUBLE_EQ(AveragePrecision(q), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(q), 0.0);
}

TEST(RankingTest, ReciprocalRank) {
  auto q = MakeQuery({0.1, 0.9, 0.5}, {1, 0, 0});
  // Relevant is ranked 3rd.
  EXPECT_NEAR(ReciprocalRank(q), 1.0 / 3.0, 1e-12);
}

TEST(RankingTest, PrecisionAtK) {
  auto q = MakeQuery({0.9, 0.8, 0.7, 0.6}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(PrecisionAtK(q, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(q, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(q, 4), 0.5);
  // k beyond list size: denominator stays k.
  EXPECT_DOUBLE_EQ(PrecisionAtK(q, 8), 0.25);
  EXPECT_DOUBLE_EQ(PrecisionAtK(q, 0), 0.0);
}

TEST(RankingTest, MeansOverQueries) {
  std::vector<RankedQuery> qs = {MakeQuery({0.9, 0.1}, {1, 0}),
                                 MakeQuery({0.1, 0.9}, {1, 0})};
  EXPECT_NEAR(MeanAveragePrecision(qs), (1.0 + 0.5) / 2.0, 1e-12);
  EXPECT_NEAR(MeanReciprocalRank(qs), (1.0 + 0.5) / 2.0, 1e-12);
  EXPECT_NEAR(MeanPrecisionAtK(qs, 1), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(MeanAveragePrecision({}), 0.0);
}

TEST(AucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(Auc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(AucTest, PerfectInversion) {
  EXPECT_DOUBLE_EQ(Auc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0);
}

TEST(AucTest, AllTiedIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, SingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({0.9, 0.1}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0.9, 0.1}, {0, 0}), 0.5);
}

TEST(AucTest, KnownValue) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won 3/4.
  EXPECT_DOUBLE_EQ(Auc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(BinaryMetricsTest, ConfusionCounts) {
  auto m = ComputeBinaryMetrics({0.9, 0.8, 0.3, 0.6}, {1, 0, 1, 0}, 0.5);
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fp, 2u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_EQ(m.tn, 0u);
  EXPECT_NEAR(m.precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall, 0.5, 1e-12);
  EXPECT_NEAR(m.f1, 2 * (1.0 / 3.0) * 0.5 / (1.0 / 3.0 + 0.5), 1e-12);
  EXPECT_NEAR(m.accuracy, 0.25, 1e-12);
}

TEST(BinaryMetricsTest, EmptyInput) {
  auto m = ComputeBinaryMetrics({}, {});
  EXPECT_EQ(m.f1, 0.0);
  EXPECT_EQ(m.accuracy, 0.0);
}

TEST(IobTest, DecodeSimple) {
  auto spans = DecodeIob({"B-Cat", "I-Cat", "O", "B-Loc"});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (Span{0, 2, "Cat"}));
  EXPECT_EQ(spans[1], (Span{3, 4, "Loc"}));
}

TEST(IobTest, AdjacentBStartsNewSpan) {
  auto spans = DecodeIob({"B-Cat", "B-Cat"});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (Span{0, 1, "Cat"}));
  EXPECT_EQ(spans[1], (Span{1, 2, "Cat"}));
}

TEST(IobTest, StrayInsideStartsSpan) {
  auto spans = DecodeIob({"O", "I-Cat", "I-Cat"});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Span{1, 3, "Cat"}));
}

TEST(IobTest, TypeChangeInsideStartsNewSpan) {
  auto spans = DecodeIob({"B-Cat", "I-Loc"});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (Span{0, 1, "Cat"}));
  EXPECT_EQ(spans[1], (Span{1, 2, "Loc"}));
}

TEST(IobTest, AllOutside) {
  EXPECT_TRUE(DecodeIob({"O", "O"}).empty());
  EXPECT_TRUE(DecodeIob({}).empty());
}

TEST(SpanF1Test, PerfectMatch) {
  std::vector<std::vector<std::string>> gold = {{"B-C", "I-C", "O"}};
  auto m = SpanF1(gold, gold);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(SpanF1Test, PartialOverlapCountsAsMiss) {
  std::vector<std::vector<std::string>> gold = {{"B-C", "I-C", "O"}};
  std::vector<std::vector<std::string>> pred = {{"B-C", "O", "O"}};
  auto m = SpanF1(gold, pred);
  EXPECT_EQ(m.tp, 0u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(SpanF1Test, MicroAveragesAcrossSentences) {
  std::vector<std::vector<std::string>> gold = {{"B-C", "O"}, {"B-L", "O"}};
  std::vector<std::vector<std::string>> pred = {{"B-C", "O"}, {"O", "O"}};
  auto m = SpanF1(gold, pred);
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

TEST(StatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
}

}  // namespace
}  // namespace alicoco::eval
