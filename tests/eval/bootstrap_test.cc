#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"

namespace alicoco::eval {
namespace {

TEST(BootstrapTest, ContainsTrueMeanForGaussianSample) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(5.0 + rng.NextGaussian());
  auto ci = BootstrapCi(values, 500, 0.95, 7);
  EXPECT_NEAR(ci.mean, 5.0, 0.25);
  EXPECT_LT(ci.lo, ci.mean);
  EXPECT_GT(ci.hi, ci.mean);
  EXPECT_LT(ci.lo, 5.0 + 0.25);
  EXPECT_GT(ci.hi, 5.0 - 0.25);
}

TEST(BootstrapTest, DegenerateSample) {
  auto ci = BootstrapCi({3.0, 3.0, 3.0}, 100, 0.9, 1);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(BootstrapTest, EmptyInput) {
  auto ci = BootstrapCi({}, 100, 0.95, 1);
  EXPECT_DOUBLE_EQ(ci.mean, 0.0);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 0.0);
  EXPECT_DOUBLE_EQ(BootstrapCi({1.0}, 0, 0.95, 1).mean, 0.0);
}

TEST(BootstrapTest, DeterministicForSeed) {
  std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto a = BootstrapCi(values, 300, 0.95, 42);
  auto b = BootstrapCi(values, 300, 0.95, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapTest, WiderConfidenceWiderInterval) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(rng.NextGaussian());
  auto narrow = BootstrapCi(values, 800, 0.80, 11);
  auto wide = BootstrapCi(values, 800, 0.99, 11);
  EXPECT_LE(wide.lo, narrow.lo);
  EXPECT_GE(wide.hi, narrow.hi);
}

}  // namespace
}  // namespace alicoco::eval
