#include "concepts/criteria.h"

#include <gtest/gtest.h>

namespace alicoco::concepts {
namespace {

TEST(BasicCriteriaTest, AcceptsCleanPhrases) {
  EXPECT_TRUE(PassesBasicCriteria({"warm", "hat"}));
  EXPECT_TRUE(PassesBasicCriteria({"outdoor-ready", "grill"}));
  EXPECT_TRUE(PassesBasicCriteria({"a"}));
}

TEST(BasicCriteriaTest, RejectsStructuralProblems) {
  EXPECT_FALSE(PassesBasicCriteria({}));
  EXPECT_FALSE(
      PassesBasicCriteria({"a", "b", "c", "d", "e", "f", "g"}));  // too long
  EXPECT_FALSE(PassesBasicCriteria({"warm", "warm", "hat"}));  // duplicate
  EXPECT_FALSE(PassesBasicCriteria({"bad!", "token"}));        // punctuation
  EXPECT_FALSE(PassesBasicCriteria({""}));
}

TEST(WideFeaturesTest, CountsAndPopularity) {
  text::Vocabulary vocab;
  for (int i = 0; i < 7; ++i) vocab.Add("warm");
  vocab.Add("hat");
  auto f = ComputeWideFeatures({"warm", "hat"}, nullptr, vocab);
  EXPECT_FLOAT_EQ(f.num_words, 2.0f);
  EXPECT_FLOAT_EQ(f.num_chars, 0.7f);  // 7 chars / 10
  EXPECT_FLOAT_EQ(f.avg_word_len, 3.5f);
  EXPECT_GT(f.avg_popularity, 0.0f);
  EXPECT_EQ(f.oov_rate, 0.0f);
  EXPECT_EQ(f.lm_score, 0.0f);  // no LM supplied
}

TEST(WideFeaturesTest, OovTracked) {
  text::Vocabulary vocab;
  vocab.Add("warm");
  auto f = ComputeWideFeatures({"warm", "zzz"}, nullptr, vocab);
  EXPECT_FLOAT_EQ(f.oov_rate, 0.5f);
  EXPECT_FLOAT_EQ(f.min_popularity, 0.0f);
}

TEST(WideFeaturesTest, LmSeparatesFluentFromScrambled) {
  text::NgramLm lm;
  for (int i = 0; i < 30; ++i) lm.AddSentence({"warm", "hat", "for", "kids"});
  lm.Finalize();
  text::Vocabulary vocab;
  for (const char* w : {"warm", "hat", "for", "kids"}) vocab.Add(w);
  auto fluent = ComputeWideFeatures({"warm", "hat", "for", "kids"}, &lm, vocab);
  auto scrambled =
      ComputeWideFeatures({"kids", "for", "hat", "warm"}, &lm, vocab);
  EXPECT_GT(fluent.lm_score, scrambled.lm_score);
  EXPECT_LT(fluent.lm_perplexity, scrambled.lm_perplexity);
}

TEST(WideFeaturesTest, VectorHasDeclaredDim) {
  text::Vocabulary vocab;
  auto f = ComputeWideFeatures({"x"}, nullptr, vocab);
  EXPECT_EQ(f.ToVector().size(), static_cast<size_t>(WideFeatures::kDim));
}

TEST(WideFeaturesTest, EmptyTokens) {
  text::Vocabulary vocab;
  auto f = ComputeWideFeatures({}, nullptr, vocab);
  EXPECT_EQ(f.num_words, 0.0f);
}

}  // namespace
}  // namespace alicoco::concepts
