#include "concepts/candidate_generation.h"

#include <gtest/gtest.h>

namespace alicoco::concepts {
namespace {

TEST(PhraseMinerTest, FindsCohesivePhrase) {
  // "rain boot" always co-occurs; "the boot" crosses a stopword boundary.
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back({"the", "rain", "boot", "arrived"});
    corpus.push_back({"buy", "rain", "boot", "now"});
  }
  corpus.push_back({"the", "boot"});
  PhraseMiner miner(/*min_count=*/3, /*max_len=*/3);
  auto phrases = miner.Mine(corpus, {"the", "buy", "now", "arrived"});
  ASSERT_FALSE(phrases.empty());
  EXPECT_EQ(phrases[0].tokens,
            (std::vector<std::string>{"rain", "boot"}));
  EXPECT_GE(phrases[0].frequency, 20u);
  // No phrase starts or ends with a stopword.
  for (const auto& p : phrases) {
    EXPECT_NE(p.tokens.front(), "the");
    EXPECT_NE(p.tokens.back(), "the");
  }
}

TEST(PhraseMinerTest, RespectsMinCount) {
  std::vector<std::vector<std::string>> corpus = {{"rare", "pair"}};
  PhraseMiner miner(/*min_count=*/2);
  EXPECT_TRUE(miner.Mine(corpus, {}).empty());
}

TEST(PhraseMinerTest, EmptyCorpus) {
  PhraseMiner miner;
  EXPECT_TRUE(miner.Mine({}, {}).empty());
}

TEST(ConceptPatternTest, ParsesSpec) {
  auto p = ConceptPattern::Parse("Function Category for:lit Event");
  ASSERT_EQ(p.slots.size(), 4u);
  EXPECT_FALSE(p.slots[0].literal);
  EXPECT_EQ(p.slots[0].cls, "Function");
  EXPECT_TRUE(p.slots[2].literal);
  EXPECT_EQ(p.slots[2].word, "for");
  EXPECT_EQ(p.slots[3].cls, "Event");
}

TEST(PatternCombinerTest, GeneratesFromClasses) {
  kg::ConceptNet net;
  kg::ClassId function = *net.taxonomy().AddDomain("Function");
  kg::ClassId category = *net.taxonomy().AddDomain("Category");
  kg::ClassId shoes = *net.taxonomy().AddClass("Shoes", category);
  net.GetOrAddPrimitiveConcept("warm", function);
  net.GetOrAddPrimitiveConcept("boot", shoes);
  net.GetOrAddPrimitiveConcept("sandal", shoes);

  PatternCombiner combiner(&net);
  Rng rng(1);
  auto candidates = combiner.Generate(
      ConceptPattern::Parse("Function Category"), 10, &rng);
  ASSERT_FALSE(candidates.empty());
  EXPECT_LE(candidates.size(), 2u);  // warm boot / warm sandal
  for (const auto& c : candidates) {
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0], "warm");
  }
  // Subtree resolution: concepts of the leaf class fill the Category slot.
}

TEST(PatternCombinerTest, LiteralSlots) {
  kg::ConceptNet net;
  kg::ClassId event = *net.taxonomy().AddDomain("Event");
  net.GetOrAddPrimitiveConcept("traveling", event);
  PatternCombiner combiner(&net);
  Rng rng(2);
  auto candidates =
      combiner.Generate(ConceptPattern::Parse("gifts:lit for:lit Event"), 5,
                        &rng);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0],
            (std::vector<std::string>{"gifts", "for", "traveling"}));
}

TEST(PatternCombinerTest, UnknownClassYieldsNothing) {
  kg::ConceptNet net;
  PatternCombiner combiner(&net);
  Rng rng(3);
  EXPECT_TRUE(
      combiner.Generate(ConceptPattern::Parse("Nope"), 5, &rng).empty());
}

}  // namespace
}  // namespace alicoco::concepts
