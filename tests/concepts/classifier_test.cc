// Concept-classifier learning tests over a generated world (Section 7.4).

#include "concepts/classifier.h"

#include <gtest/gtest.h>

#include "datagen/resources.h"
#include "datagen/world.h"

namespace alicoco::concepts {
namespace {

struct Fixture {
  datagen::World world;
  datagen::WorldResources resources;
  std::vector<LabeledConcept> train, test;

  static datagen::WorldConfig WorldCfg() {
    datagen::WorldConfig cfg;
    cfg.seed = 41;
    cfg.heads_per_leaf = 2;
    cfg.derived_per_head = 3;
    cfg.per_domain_vocab = 12;
    cfg.num_events = 10;
    cfg.num_items = 500;
    cfg.num_good_ec_concepts = 150;
    cfg.num_bad_ec_concepts = 150;
    cfg.titles = 1000;
    cfg.reviews = 500;
    cfg.guides = 400;
    cfg.queries = 300;
    cfg.num_users = 10;
    cfg.num_needs_queries = 50;
    return cfg;
  }

  Fixture()
      : world(datagen::World::Generate(WorldCfg())),
        resources(world, datagen::ResourcesConfig{}) {
    Rng rng(3);
    auto candidates = world.concept_candidates();
    std::vector<size_t> order(candidates.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(&order);
    for (size_t i = 0; i < order.size(); ++i) {
      const auto& c = candidates[order[i]];
      LabeledConcept sample{c.tokens, c.good ? 1 : 0};
      if (i < order.size() * 7 / 10) {
        train.push_back(std::move(sample));
      } else {
        test.push_back(std::move(sample));
      }
    }
  }

  ClassifierResources Res() const {
    ClassifierResources r;
    r.embeddings = &resources.embeddings();
    r.corpus_vocab = &resources.vocab();
    r.lm = &resources.lm();
    r.gloss_encoder = &resources.gloss_encoder();
    r.gloss_lookup = [this](const std::string& w) {
      return resources.GlossOf(w);
    };
    return r;
  }
};

Fixture& SharedFixture() {
  static Fixture f;
  return f;
}

TEST(ConceptClassifierTest, FullModelBeatsChance) {
  Fixture& f = SharedFixture();
  ConceptClassifierConfig cfg;
  cfg.epochs = 4;
  ConceptClassifier model(cfg, f.Res());
  model.Train(f.train);
  auto m = model.Evaluate(f.test);
  EXPECT_GT(m.auc, 0.75);
  EXPECT_GT(m.binary.accuracy, 0.7);
}

TEST(ConceptClassifierTest, KnowledgeImprovesOverBaseline) {
  Fixture& f = SharedFixture();
  ConceptClassifierConfig base;
  base.use_wide = false;
  base.use_pretrained = false;
  base.use_knowledge = false;
  base.epochs = 4;
  ConceptClassifier baseline(base, f.Res());
  baseline.Train(f.train);
  double base_auc = baseline.Evaluate(f.test).auc;

  ConceptClassifierConfig full;
  full.epochs = 4;
  ConceptClassifier full_model(full, f.Res());
  full_model.Train(f.train);
  double full_auc = full_model.Evaluate(f.test).auc;

  EXPECT_GT(full_auc, base_auc - 0.02);  // full model at least on par
  EXPECT_GT(full_auc, 0.75);
}

TEST(ConceptClassifierTest, ScoreInUnitInterval) {
  Fixture& f = SharedFixture();
  ConceptClassifierConfig cfg;
  cfg.epochs = 1;
  ConceptClassifier model(cfg, f.Res());
  model.Train(f.train);
  for (size_t i = 0; i < 20 && i < f.test.size(); ++i) {
    double s = model.Score(f.test[i].tokens);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_EQ(model.Score({}), 0.0);
}

TEST(ConceptClassifierTest, MissingResourcesAbort) {
  ConceptClassifierConfig cfg;  // wants pretrained + knowledge
  ClassifierResources empty;
  EXPECT_DEATH(ConceptClassifier(cfg, empty), "requires");
}

}  // namespace
}  // namespace alicoco::concepts
