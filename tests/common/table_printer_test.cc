#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace alicoco {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t("Table X");
  t.SetHeader({"Model", "AUC"});
  t.AddRow({"BM25", "0.77"});
  t.AddRow({"Ours", "0.87"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("Table X"), std::string::npos);
  EXPECT_NE(s.find("| Model |"), std::string::npos);
  EXPECT_NE(s.find("| BM25 "), std::string::npos);
  EXPECT_NE(s.find("| Ours "), std::string::npos);
}

TEST(TablePrinterTest, PadsRaggedRows) {
  TablePrinter t("");
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  std::string s = t.ToString();
  // Every rendered line between rules has the same length.
  size_t first_len = 0;
  for (size_t pos = 0; pos < s.size();) {
    size_t end = s.find('\n', pos);
    if (end == std::string::npos) break;
    size_t len = end - pos;
    if (first_len == 0) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = end + 1;
  }
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(0.12345), "0.1235");  // rounds to even digit
  EXPECT_EQ(TablePrinter::Num(0.1, 2), "0.10");
  EXPECT_EQ(TablePrinter::Num(12, 0), "12");
}

TEST(TablePrinterTest, NoHeaderStillRenders) {
  TablePrinter t("");
  t.AddRow({"only", "row"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| only | row |"), std::string::npos);
}

}  // namespace
}  // namespace alicoco
