#include "common/lock_stats.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace alicoco {
namespace {

#if !ALICOCO_LOCK_STATS
TEST(LockStatsTest, CompiledOut) {
  GTEST_SKIP() << "built with ALICOCO_LOCK_STATS=0";
}
#else

// Guarded by an UNNAMED mutex, per the sink re-entrancy rule: a named one
// here would recurse into the sink from its own callback.
class RecordingSink : public LockStatsSink {
 public:
  struct Event {
    std::string what;  // "acquire" / "acquire-contended" / "release" / "cv"
    std::string name;
  };

  void OnAcquire(const char* name, uint64_t, bool contended) override {
    Push({contended ? "acquire-contended" : "acquire", name});
  }
  void OnRelease(const char* name, uint64_t) override {
    Push({"release", name});
  }
  void OnCondVarWait(const char* name, uint64_t) override {
    Push({"cv", name});
  }

  std::vector<Event> Events() const {
    MutexLock lock(mu_);
    return events_;
  }
  size_t size() const { return Events().size(); }
  void Clear() {
    MutexLock lock(mu_);
    events_.clear();
  }

 private:
  void Push(Event event) {
    MutexLock lock(mu_);
    events_.push_back(std::move(event));
  }

  mutable Mutex mu_;
  std::vector<Event> events_ ALICOCO_GUARDED_BY(mu_);
};

TEST(LockStatsTest, NoSinkInstalledByDefault) {
  EXPECT_EQ(GetLockStatsSink(), nullptr);
}

TEST(LockStatsTest, ScopedInstallAndDetach) {
  RecordingSink sink;
  {
    ScopedLockStatsSink installed(&sink);
    EXPECT_EQ(GetLockStatsSink(), &sink);
  }
  EXPECT_EQ(GetLockStatsSink(), nullptr);
}

TEST(LockStatsTest, NamedMutexReportsAcquireAndRelease) {
  RecordingSink sink;
  ScopedLockStatsSink installed(&sink);
  Mutex mu{"unit.mu"};
  { MutexLock lock(mu); }
  std::vector<RecordingSink::Event> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].what, "acquire");
  EXPECT_EQ(events[0].name, "unit.mu");
  EXPECT_EQ(events[1].what, "release");
  EXPECT_EQ(events[1].name, "unit.mu");
}

TEST(LockStatsTest, UnnamedMutexReportsNothing) {
  RecordingSink sink;
  ScopedLockStatsSink installed(&sink);
  Mutex mu;
  { MutexLock lock(mu); }
  EXPECT_EQ(sink.size(), 0u);
}

TEST(LockStatsTest, NamedMutexWithoutSinkReportsNothing) {
  RecordingSink sink;
  Mutex mu{"unit.nosink.mu"};
  { MutexLock lock(mu); }  // disabled mode: no sink installed
  EXPECT_EQ(sink.size(), 0u);
}

TEST(LockStatsTest, TryLockReportsOnlyOnSuccess) {
  RecordingSink sink;
  ScopedLockStatsSink installed(&sink);
  Mutex mu{"unit.try.mu"};
  ASSERT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());  // already held: no event
  mu.unlock();
  std::vector<RecordingSink::Event> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].what, "acquire");
  EXPECT_EQ(events[1].what, "release");
}

TEST(LockStatsTest, CondVarWaitSplitsTheHold) {
  // A wait ends the pre-wait hold (release event), blocks (cv event), and
  // restarts the hold clock so waiting never counts as holding.
  RecordingSink sink;
  ScopedLockStatsSink installed(&sink);
  Mutex mu{"unit.cv.mu"};
  CondVar cv;
  {
    MutexLock lock(mu);
    cv.NotifyOne();  // nothing waits yet; just proves Notify is safe
  }
  sink.Clear();

  bool woken = false;
  std::atomic<bool> waiter_holds_lock{false};
  std::thread waker([&] {
    // Gate on the waiter holding mu: from then on mu is only released
    // inside cv.Wait, so this acquire proves the waiter is parked and the
    // notify cannot be lost to a waker-first schedule.
    while (!waiter_holds_lock.load()) std::this_thread::yield();
    MutexLock lock(mu);
    woken = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    waiter_holds_lock.store(true);
    while (!woken) cv.Wait(mu);
  }
  waker.join();

  // This thread's sequence: acquire, release (hold ended at Wait),
  // cv (woke), release (post-wake hold). The waker thread interleaves its
  // own acquire/release pair somewhere in between.
  size_t cv_events = 0;
  size_t releases = 0;
  for (const auto& event : sink.Events()) {
    if (event.what == "cv") ++cv_events;
    if (event.what == "release") ++releases;
  }
  EXPECT_GE(cv_events, 1u);
  EXPECT_GE(releases, 3u);  // waiter's two plus the waker's one
}

#endif  // ALICOCO_LOCK_STATS

}  // namespace
}  // namespace alicoco
