#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace alicoco {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { count.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 100);
}

class CountingObserver : public ThreadPoolObserver {
 public:
  void OnQueueDepth(size_t) override {}
  void OnTaskDone(double, double) override { tasks_done.fetch_add(1); }
  std::atomic<int> tasks_done{0};
};

TEST(ThreadPoolTest, ParallelForExplicitGrainReportsPerChunk) {
  ThreadPool pool(3);
  CountingObserver observer;
  pool.SetObserver(&observer);
  std::atomic<int> hits{0};
  pool.ParallelFor(100, [&](size_t) { hits.fetch_add(1); }, /*grain=*/10);
  pool.SetObserver(nullptr);
  EXPECT_EQ(hits.load(), 100);
  EXPECT_EQ(observer.tasks_done.load(), 10);  // one task per chunk
}

TEST(ThreadPoolTest, ParallelForDefaultGrainSplitsWork) {
  // The default grain produces several chunks per worker, so observer
  // accounting reflects real units of work rather than a single task.
  ThreadPool pool(2);
  CountingObserver observer;
  pool.SetObserver(&observer);
  std::atomic<int> hits{0};
  pool.ParallelFor(89, [&](size_t) { hits.fetch_add(1); });
  pool.SetObserver(nullptr);
  EXPECT_EQ(hits.load(), 89);
  // grain = max(1, 89 / (2 * 8)) = 5 -> ceil(89 / 5) = 18 chunks.
  EXPECT_EQ(observer.tasks_done.load(), 18);
}

TEST(ThreadPoolTest, ParallelForGrainLargerThanRange) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(7);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
                   /*grain=*/100);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace alicoco
