#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace alicoco {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { count.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace alicoco
