#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace alicoco {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { count.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 100);
}

class CountingObserver : public ThreadPoolObserver {
 public:
  void OnQueueDepth(size_t) override {}
  void OnTaskDone(double, double) override { tasks_done.fetch_add(1); }
  std::atomic<int> tasks_done{0};
};

TEST(ThreadPoolTest, ParallelForExplicitGrainReportsPerChunk) {
  ThreadPool pool(3);
  CountingObserver observer;
  pool.SetObserver(&observer);
  std::atomic<int> hits{0};
  pool.ParallelFor(100, [&](size_t) { hits.fetch_add(1); }, /*grain=*/10);
  pool.SetObserver(nullptr);
  EXPECT_EQ(hits.load(), 100);
  EXPECT_EQ(observer.tasks_done.load(), 10);  // one task per chunk
}

TEST(ThreadPoolTest, ParallelForDefaultGrainSplitsWork) {
  // The default grain produces several chunks per worker, so observer
  // accounting reflects real units of work rather than a single task.
  ThreadPool pool(2);
  CountingObserver observer;
  pool.SetObserver(&observer);
  std::atomic<int> hits{0};
  pool.ParallelFor(89, [&](size_t) { hits.fetch_add(1); });
  pool.SetObserver(nullptr);
  EXPECT_EQ(hits.load(), 89);
  // grain = max(1, 89 / (2 * 8)) = 5 -> ceil(89 / 5) = 18 chunks.
  EXPECT_EQ(observer.tasks_done.load(), 18);
}

class TimingObserver : public ThreadPoolObserver {
 public:
  void OnQueueDepth(size_t) override {}
  void OnTaskDone(double queue_wait_us, double run_us) override {
    tasks_done.fetch_add(1);
    if (queue_wait_us < 0 || run_us < 0) negative_times.fetch_add(1);
    // Anything over a minute for a trivial task means a bogus clock
    // pairing (e.g. wait measured against an unrelated epoch).
    if (queue_wait_us > 60e6 || run_us > 60e6) implausible_times.fetch_add(1);
  }
  std::atomic<int> tasks_done{0};
  std::atomic<int> negative_times{0};
  std::atomic<int> implausible_times{0};
};

TEST(ThreadPoolTest, ShutdownDrainsQueueWithTruthfulObserverAccounting) {
  // Destroying the pool without Wait() must still run every queued task,
  // and the observer must see each one exactly once with sane timings —
  // the queue_wait numbers feed stage attribution in bench/obs_report.
  TimingObserver observer;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    pool.SetObserver(&observer);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] {
        ran.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
    }
  }  // destructor: shutdown signal + drain + join
  EXPECT_EQ(ran.load(), 50);
  EXPECT_EQ(observer.tasks_done.load(), 50);
  EXPECT_EQ(observer.negative_times.load(), 0);
  EXPECT_EQ(observer.implausible_times.load(), 0);
}

TEST(ThreadPoolTest, QueueWaitReflectsTimeSpentQueued) {
  // One worker, a long head-of-line task: the task behind it must report
  // a queue wait at least as long as the blocker's run time.
  std::atomic<double> second_wait_us{-1};
  class WaitCapture : public ThreadPoolObserver {
   public:
    explicit WaitCapture(std::atomic<double>* out) : out_(out) {}
    void OnQueueDepth(size_t) override {}
    void OnTaskDone(double queue_wait_us, double) override {
      // The last task to finish is the queued one.
      out_->store(queue_wait_us);
    }

   private:
    std::atomic<double>* out_;
  };
  WaitCapture observer(&second_wait_us);
  {
    ThreadPool pool(1);
    pool.SetObserver(&observer);
    pool.Submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
    pool.Submit([] {});
    pool.Wait();
    pool.SetObserver(nullptr);
  }
  EXPECT_GE(second_wait_us.load(), 15e3);  // queued behind ~20ms of work
}

TEST(ThreadPoolTest, ParallelForGrainLargerThanRange) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(7);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
                   /*grain=*/100);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace alicoco
