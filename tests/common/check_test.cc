#include "common/check.h"

#include <gtest/gtest.h>

namespace {

// Death tests fork; the threadsafe style re-executes the binary so they
// stay valid even when other suites in this binary have spawned threads.
class CheckDeathTest : public ::testing::Test {
 protected:
  CheckDeathTest() {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST(CheckTest, PassingChecksAreSilent) {
  ALICOCO_CHECK(true) << "never rendered";
  ALICOCO_CHECK_EQ(2 + 2, 4);
  ALICOCO_CHECK_NE(1, 2);
  ALICOCO_CHECK_LT(1, 2) << "also never rendered";
  ALICOCO_CHECK_LE(2, 2);
  ALICOCO_CHECK_GT(3, 2);
  ALICOCO_CHECK_GE(3, 3);
}

TEST(CheckTest, OperandsEvaluateExactlyOnce) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  ALICOCO_CHECK_GE(next(), 1);
  EXPECT_EQ(calls, 1);
  ALICOCO_CHECK_EQ(next(), 2);
  EXPECT_EQ(calls, 2);
}

TEST(CheckTest, CheckIsDanglingElseSafe) {
  // Must parse as a single statement: an `if` without braces followed by
  // `else` would mis-bind if the macro expanded to a bare if.
  bool took_else = false;
  if (1 == 2)
    ALICOCO_CHECK(true) << "unreached";
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

TEST_F(CheckDeathTest, FailedCheckPrintsExprFileLineAndContext) {
  EXPECT_DEATH(ALICOCO_CHECK(1 == 2) << "stage " << 7,
               "CHECK failed at .*check_test\\.cc:[0-9]+: 1 == 2 stage 7");
}

TEST_F(CheckDeathTest, FailedCheckEqPrintsBothValues) {
  int a = 3, b = 5;
  EXPECT_DEATH(ALICOCO_CHECK_EQ(a, b), "a == b \\(3 vs. 5\\)");
}

TEST_F(CheckDeathTest, FailedCheckLtPrintsBothValues) {
  EXPECT_DEATH(ALICOCO_CHECK_LT(9, 4) << "index", "9 < 4 \\(9 vs. 4\\) index");
}

#if ALICOCO_DCHECK_IS_ON

TEST_F(CheckDeathTest, DcheckFiresWhenArmed) {
  EXPECT_DEATH(ALICOCO_DCHECK(false), "CHECK failed");
  EXPECT_DEATH(ALICOCO_DCHECK_EQ(1, 2), "\\(1 vs. 2\\)");
}

#else

TEST(CheckTest, DisabledDcheckDoesNotEvaluateOperands) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  ALICOCO_DCHECK(next() == 99) << "never rendered";
  ALICOCO_DCHECK_EQ(next(), 99);
  EXPECT_EQ(calls, 0);
}

#endif  // ALICOCO_DCHECK_IS_ON

}  // namespace
