// ThreadPool stress tests sized for ThreadSanitizer: several external
// threads hammer Submit/Wait/ParallelFor on one pool concurrently, so any
// missing synchronization in the pool shows up as a TSan report (the tsan
// preset runs this suite; see tools/ci.sh).

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace alicoco {
namespace {

TEST(ThreadPoolRaceTest, ConcurrentSubmittersAndWaiters) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 200;
  ThreadPool pool(3);
  std::atomic<int> executed{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
        if (i % 50 == 0) pool.Wait();  // waiters racing with submitters
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolRaceTest, ParallelForWritesAreVisibleAfterReturn) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<int> out(kN, 0);
  // Disjoint writes per index; ParallelFor's completion must publish them.
  pool.ParallelFor(kN, [&out](size_t i) { out[i] = static_cast<int>(i) + 1; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPoolRaceTest, InterleavedParallelForAndSubmit) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::thread submitter([&pool, &sum] {
    for (int i = 0; i < 300; ++i) {
      pool.Submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  // ParallelFor shares the worker queue with the submitter above.
  std::atomic<int> par{0};
  pool.ParallelFor(300, [&par](size_t) {
    par.fetch_add(1, std::memory_order_relaxed);
  });
  submitter.join();
  pool.Wait();
  EXPECT_EQ(par.load(), 300);
  EXPECT_EQ(sum.load(), 300);
}

TEST(ThreadPoolRaceTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Wait(): destruction itself must run every queued task exactly once.
  }
  EXPECT_EQ(executed.load(), 500);
}

TEST(ThreadPoolRaceTest, ManyShortLivedPools) {
  // Construction/teardown races (worker startup vs. shutdown flag).
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<int> n{0};
    pool.ParallelFor(16, [&n](size_t) {
      n.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(n.load(), 16);
  }
}

}  // namespace
}  // namespace alicoco
