#include "common/status.h"

#include <gtest/gtest.h>

namespace alicoco {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing node");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing node");
  EXPECT_EQ(s.ToString(), "NotFound: missing node");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopySharesRepresentation) {
  Status a = Status::Corruption("bad block");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "bad block");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  if (x <= 0) return Status::OutOfRange("non-positive");
  return 2 * x;
}

Status UseMacros(int x, int* out) {
  ALICOCO_RETURN_NOT_OK(FailIfNegative(x));
  ALICOCO_ASSIGN_OR_RETURN(*out, DoubleIfPositive(x));
  return Status::OK();
}

TEST(ResultTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(3, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_TRUE(UseMacros(-1, &out).IsInvalidArgument());
  EXPECT_TRUE(UseMacros(0, &out).IsOutOfRange());
}

TEST(StatusCodeTest, Names) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

}  // namespace
}  // namespace alicoco
