#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace alicoco {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalUniformFallbackOnZeroWeights) {
  Rng rng(29);
  std::vector<double> w = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[rng.Categorical(w)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  const int n = 20000;
  std::vector<int> counts(50, 0);
  for (int i = 0; i < n; ++i) {
    size_t r = rng.Zipf(50, 1.1);
    ASSERT_LT(r, 50u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49] * 4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(23);
  Rng child1 = a.Fork();
  Rng b(23);
  Rng child2 = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child1.NextUint64(), child2.NextUint64());
  }
}

}  // namespace
}  // namespace alicoco
