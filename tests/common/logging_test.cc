#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace alicoco {
namespace {

TEST(FormatTimestampTest, EpochAndKnownInstants) {
  EXPECT_EQ(Logger::FormatTimestamp(0), "1970-01-01T00:00:00.000Z");
  // 2021-01-01T00:00:00Z.
  EXPECT_EQ(Logger::FormatTimestamp(1609459200000ull),
            "2021-01-01T00:00:00.000Z");
  // Leap day: 2000-02-29T00:00:00Z.
  EXPECT_EQ(Logger::FormatTimestamp(951782400000ull),
            "2000-02-29T00:00:00.000Z");
  // Sub-second and time-of-day components.
  EXPECT_EQ(Logger::FormatTimestamp(1609459200000ull + 3600000 + 60000 +
                                    1000 + 123),
            "2021-01-01T01:01:01.123Z");
}

TEST(FormatRecordTest, GoldenLine) {
  LogRecord record;
  record.level = LogLevel::kInfo;
  record.file = "builder.cc";
  record.line = 42;
  record.wall_ms = 1609459200123ull;
  record.thread_id = 1;
  record.message = "built 96 nodes";
  EXPECT_EQ(Logger::FormatRecord(record),
            "[INFO 2021-01-01T00:00:00.123Z t1 builder.cc:42] built 96 nodes");
}

/// Captures every record so tests can assert on fields, not rendered text.
class CapturingSink : public LogSink {
 public:
  void Write(const LogRecord& record) override { records.push_back(record); }
  std::vector<LogRecord> records;
};

TEST(LoggerTest, SinkReceivesRecordsWithInjectedClock) {
  CapturingSink sink;
  Logger::SetSink(&sink);
  Logger::SetWallClock(+[]() -> uint64_t { return 1609459200123ull; });

  ALICOCO_LOG(Warning) << "threshold " << 0.4 << " too low";

  Logger::SetWallClock(nullptr);
  Logger::SetSink(nullptr);

  ASSERT_EQ(sink.records.size(), 1u);
  const LogRecord& record = sink.records[0];
  EXPECT_EQ(record.level, LogLevel::kWarning);
  EXPECT_EQ(std::string(record.file), "logging_test.cc");  // basename only
  EXPECT_EQ(record.wall_ms, 1609459200123ull);
  EXPECT_EQ(record.message, "threshold 0.4 too low");
  EXPECT_EQ(record.thread_id, Logger::CurrentThreadId());
}

TEST(LoggerTest, LevelGateFiltersBelowThreshold) {
  CapturingSink sink;
  Logger::SetSink(&sink);
  Logger::SetLevel(LogLevel::kWarning);

  ALICOCO_LOG(Info) << "dropped";
  ALICOCO_LOG(Error) << "kept";

  Logger::SetLevel(LogLevel::kInfo);
  Logger::SetSink(nullptr);

  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].message, "kept");
  EXPECT_EQ(sink.records[0].level, LogLevel::kError);
}

TEST(LoggerTest, ThreadIdsAreStablePerThreadAndDistinctAcrossThreads) {
  uint32_t mine_first = Logger::CurrentThreadId();
  uint32_t mine_second = Logger::CurrentThreadId();
  EXPECT_EQ(mine_first, mine_second);
  EXPECT_GE(mine_first, 1u);

  uint32_t other = 0;
  std::thread t([&] { other = Logger::CurrentThreadId(); });
  t.join();
  EXPECT_NE(other, mine_first);
}

}  // namespace
}  // namespace alicoco
