#include "common/string_util.h"

#include <gtest/gtest.h>

namespace alicoco {
namespace {

TEST(SplitStringTest, Basic) {
  auto v = SplitString("a,b,c", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "c");
}

TEST(SplitStringTest, SkipsEmptyPieces) {
  auto v = SplitString(",a,,b,", ',');
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
}

TEST(SplitStringTest, EmptyInput) {
  EXPECT_TRUE(SplitString("", ',').empty());
}

TEST(SplitWhitespaceTest, MixedWhitespace) {
  auto v = SplitWhitespace("  foo\tbar \n baz ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], "bar");
}

TEST(JoinStringsTest, RoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, "-"), "x-y-z");
  EXPECT_EQ(JoinStrings({}, "-"), "");
  EXPECT_EQ(JoinStrings({"solo"}, "-"), "solo");
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(StripWhitespaceTest, Basic) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(PrefixSuffixTest, Basic) {
  EXPECT_TRUE(StartsWith("rain-boot", "rain"));
  EXPECT_FALSE(StartsWith("rain", "rain-boot"));
  EXPECT_TRUE(EndsWith("rain-boot", "boot"));
  EXPECT_FALSE(EndsWith("boot", "rain-boot"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringPrintfTest, Formats) {
  EXPECT_EQ(StringPrintf("%d-%s-%.2f", 7, "ab", 1.5), "7-ab-1.50");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StringPrintfTest, LongOutput) {
  std::string big(500, 'x');
  EXPECT_EQ(StringPrintf("%s!", big.c_str()).size(), 501u);
}

}  // namespace
}  // namespace alicoco
