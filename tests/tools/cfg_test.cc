// Unit tests for the per-function CFG builder behind alicoco_lint's
// dataflow passes: block/edge shape for branches and loops, statement
// scope/loop depths, and the conservative fallback for flow the builder
// refuses to model.

#include "tools/lint/cfg.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/lexer.h"

namespace alicoco::lint {
namespace {

/// Lexes `source`, drops comments/directives (the stream the extractor
/// hands to BuildCfg), and builds the CFG of the first `{...}` body.
class CfgFixture {
 public:
  explicit CfgFixture(const std::string& source) : tokens_(Lex(source)) {
    for (const Token& t : tokens_) {
      if (t.kind == TokenKind::kComment || t.kind == TokenKind::kDirective) {
        continue;
      }
      code_.push_back(&t);
    }
    size_t begin = 0;
    while (begin < code_.size() && code_[begin]->text != "{") ++begin;
    size_t end = begin;
    int depth = 0;
    for (; end < code_.size(); ++end) {
      if (code_[end]->text == "{") ++depth;
      if (code_[end]->text == "}" && --depth == 0) {
        ++end;
        break;
      }
    }
    cfg_ = BuildCfg(code_, begin, end);
  }

  const Cfg& cfg() const { return cfg_; }

  /// Id of the first block containing a statement that mentions `ident`,
  /// or -1.
  int BlockMentioning(const std::string& ident) const {
    for (const BasicBlock& b : cfg_.blocks) {
      for (const Stmt& s : b.stmts) {
        for (size_t j = s.begin; j < s.end; ++j) {
          if (code_[j]->kind == TokenKind::kIdentifier &&
              code_[j]->text == ident) {
            return b.id;
          }
        }
      }
    }
    return -1;
  }

  /// The first statement mentioning `ident`, or nullptr.
  const Stmt* StmtMentioning(const std::string& ident) const {
    for (const BasicBlock& b : cfg_.blocks) {
      for (const Stmt& s : b.stmts) {
        for (size_t j = s.begin; j < s.end; ++j) {
          if (code_[j]->kind == TokenKind::kIdentifier &&
              code_[j]->text == ident) {
            return &s;
          }
        }
      }
    }
    return nullptr;
  }

  bool HasEdge(int from, int to) const {
    for (int s : cfg_.blocks[from].succs) {
      if (s == to) return true;
    }
    return false;
  }

  /// Any edge from a block to an earlier-created block — the builder
  /// allocates blocks in program order, so only loop back edges point
  /// backwards.
  bool HasBackEdge() const {
    for (const BasicBlock& b : cfg_.blocks) {
      for (int s : b.succs) {
        if (s < b.id && s != cfg_.exit) return true;
      }
    }
    return false;
  }

 private:
  std::vector<Token> tokens_;
  std::vector<const Token*> code_;
  Cfg cfg_;
};

TEST(CfgTest, StraightLineIsOneBlockIntoExit) {
  CfgFixture fx(R"(int f(int x) {
    int doubled = x + x;
    return doubled;
  })");
  ASSERT_FALSE(fx.cfg().fell_back);
  int body = fx.BlockMentioning("doubled");
  ASSERT_NE(body, -1);
  EXPECT_TRUE(fx.HasEdge(body, fx.cfg().exit));
  EXPECT_FALSE(fx.HasBackEdge());
}

TEST(CfgTest, IfElseBranchesMergeAtJoin) {
  CfgFixture fx(R"(int f(bool flip) {
    int out = 0;
    if (flip) {
      int then_marker = 1;
      out = then_marker;
    } else {
      int else_marker = 2;
      out = else_marker;
    }
    int join_marker = out;
    return join_marker;
  })");
  ASSERT_FALSE(fx.cfg().fell_back);
  int cond = fx.BlockMentioning("flip");
  int then_b = fx.BlockMentioning("then_marker");
  int else_b = fx.BlockMentioning("else_marker");
  int join = fx.BlockMentioning("join_marker");
  ASSERT_NE(cond, -1);
  ASSERT_NE(then_b, -1);
  ASSERT_NE(else_b, -1);
  ASSERT_NE(join, -1);
  EXPECT_NE(then_b, else_b);
  // The condition fans out to both branches; both branches meet again.
  EXPECT_TRUE(fx.HasEdge(cond, then_b));
  EXPECT_TRUE(fx.HasEdge(cond, else_b));
  EXPECT_TRUE(fx.HasEdge(then_b, join));
  EXPECT_TRUE(fx.HasEdge(else_b, join));
  EXPECT_FALSE(fx.HasBackEdge());
}

TEST(CfgTest, IfWithoutElseSkipsStraightToJoin) {
  CfgFixture fx(R"(int f(bool flip) {
    int out = 0;
    if (flip) {
      int then_marker = 1;
      out = then_marker;
    }
    int join_marker = out;
    return join_marker;
  })");
  ASSERT_FALSE(fx.cfg().fell_back);
  int cond = fx.BlockMentioning("flip");
  int then_b = fx.BlockMentioning("then_marker");
  int join = fx.BlockMentioning("join_marker");
  // Both the taken and the skipped path reach the join.
  EXPECT_TRUE(fx.HasEdge(cond, then_b));
  EXPECT_TRUE(fx.HasEdge(cond, join));
  EXPECT_TRUE(fx.HasEdge(then_b, join));
}

TEST(CfgTest, ForLoopHasBackEdgeAndLoopDepth) {
  CfgFixture fx(R"(int f(int n) {
    int total = 0;
    for (int i = 0; i < n; ++i) {
      int body_marker = i;
      total += body_marker;
    }
    return total;
  })");
  ASSERT_FALSE(fx.cfg().fell_back);
  EXPECT_TRUE(fx.HasBackEdge());
  const Stmt* body = fx.StmtMentioning("body_marker");
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->loop_depth, 1);
  const Stmt* outside = fx.StmtMentioning("total");
  ASSERT_NE(outside, nullptr);
  EXPECT_EQ(outside->loop_depth, 0);
}

TEST(CfgTest, WhileBodyLoopsBackToHeader) {
  CfgFixture fx(R"(int f(int n) {
    while (n > 0) {
      int body_marker = n;
      n -= body_marker;
    }
    return n;
  })");
  ASSERT_FALSE(fx.cfg().fell_back);
  int header = fx.BlockMentioning("n");  // the condition block comes first
  int body = fx.BlockMentioning("body_marker");
  ASSERT_NE(header, -1);
  ASSERT_NE(body, -1);
  EXPECT_TRUE(fx.HasEdge(body, header));
}

TEST(CfgTest, NestedLoopsStackTheirDepths) {
  CfgFixture fx(R"(int f(int n) {
    int total = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        int inner_marker = i * j;
        total += inner_marker;
      }
    }
    return total;
  })");
  ASSERT_FALSE(fx.cfg().fell_back);
  const Stmt* inner = fx.StmtMentioning("inner_marker");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->loop_depth, 2);
  EXPECT_GE(inner->scope_depth, 2);
}

TEST(CfgTest, EarlyReturnEdgesToExit) {
  CfgFixture fx(R"(int f(bool flip) {
    if (flip) {
      return 1;
    }
    int tail_marker = 2;
    return tail_marker;
  })");
  ASSERT_FALSE(fx.cfg().fell_back);
  int early = fx.BlockMentioning("return");
  const Stmt* ret = fx.StmtMentioning("tail_marker");
  ASSERT_NE(ret, nullptr);
  // Every return statement's block must reach exit directly.
  bool all_returns_reach_exit = true;
  for (const BasicBlock& b : fx.cfg().blocks) {
    for (const Stmt& s : b.stmts) {
      if (s.kind != StmtKind::kReturn) continue;
      if (!fx.HasEdge(b.id, fx.cfg().exit)) all_returns_reach_exit = false;
    }
  }
  EXPECT_TRUE(all_returns_reach_exit);
  (void)early;
}

TEST(CfgTest, MacroWithBraceBodyParsesAsPlainBlock) {
  // A control-flow-like macro is not a loop the builder understands; its
  // braces read as a plain nested scope: deeper scope, zero loop depth,
  // and no back edge — the documented safe under-approximation.
  CfgFixture fx(R"(int f(int n) {
    int total = 0;
    ALICOCO_REPEAT_N(n) {
      int macro_marker = 1;
      total += macro_marker;
    }
    return total;
  })");
  ASSERT_FALSE(fx.cfg().fell_back);
  EXPECT_FALSE(fx.HasBackEdge());
  const Stmt* inner = fx.StmtMentioning("macro_marker");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->loop_depth, 0);
  EXPECT_GE(inner->scope_depth, 1);
}

TEST(CfgTest, GotoFallsBackToEntryExit) {
  CfgFixture fx(R"(int f(int n) {
    if (n < 0) goto fail;
    return n;
  fail:
    return -1;
  })");
  EXPECT_TRUE(fx.cfg().fell_back);
  ASSERT_EQ(fx.cfg().blocks.size(), 2u);
  EXPECT_TRUE(fx.HasEdge(fx.cfg().entry, fx.cfg().exit));
}

TEST(CfgTest, CoroutineFallsBack) {
  CfgFixture fx(R"(Task f() {
    co_return 1;
  })");
  EXPECT_TRUE(fx.cfg().fell_back);
}

TEST(CfgTest, TornBracesFallBackInsteadOfGuessing) {
  CfgFixture fx(R"(int f() {
    if (cond) {
      return 1;
  })");
  EXPECT_TRUE(fx.cfg().fell_back);
}

}  // namespace
}  // namespace alicoco::lint
