#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/analyzer.h"
#include "tools/lint/lexer.h"
#include "tools/lint/rules.h"

namespace alicoco::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Findings from one rule only, so each test is isolated from the rest of
/// the registry.
std::vector<Finding> RuleHits(const std::string& path, const std::string& src,
                              const std::string& rule) {
  std::vector<Finding> hits;
  for (Finding& f : AnalyzeSource(path, src, nullptr)) {
    if (f.rule == rule) hits.push_back(std::move(f));
  }
  return hits;
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LexerTest, ClassifiesCommentsStringsAndCode) {
  auto tokens = Lex(
      "int x = 3;  // trailing rand()\n"
      "/* block new Foo */ const char* s = \"delete me\";\n");
  std::vector<std::string> idents;
  std::vector<std::string> comments;
  std::vector<std::string> strings;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier) idents.push_back(t.text);
    if (t.kind == TokenKind::kComment) comments.push_back(t.text);
    if (t.kind == TokenKind::kString) strings.push_back(t.text);
  }
  EXPECT_EQ(idents,
            (std::vector<std::string>{"int", "x", "const", "char", "s"}));
  ASSERT_EQ(comments.size(), 2u);
  EXPECT_EQ(comments[0], " trailing rand()");
  EXPECT_EQ(comments[1], " block new Foo ");
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "delete me");
}

TEST(LexerTest, RawStringSwallowsFakeTerminators) {
  auto tokens = Lex("auto s = R\"tag(one \" ) two)tag\"; int after = 1;");
  ASSERT_GE(tokens.size(), 4u);
  auto is_string = [](const Token& t) {
    return t.kind == TokenKind::kString;
  };
  auto it = std::find_if(tokens.begin(), tokens.end(), is_string);
  ASSERT_NE(it, tokens.end());
  EXPECT_EQ(it->text, "one \" ) two");
  // Code after the raw string is still lexed.
  bool saw_after = false;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier && t.text == "after") {
      saw_after = true;
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(LexerTest, DigitSeparatorsStayOneNumber) {
  auto tokens = Lex("int n = 1'000'000;");
  auto it = std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.kind == TokenKind::kNumber;
  });
  ASSERT_NE(it, tokens.end());
  EXPECT_EQ(it->text, "1'000'000");
}

TEST(LexerTest, HexDigitSeparatorsStayOneNumber) {
  auto tokens = Lex("uint32_t m = 0xFF'FF;");
  auto it = std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.kind == TokenKind::kNumber;
  });
  ASSERT_NE(it, tokens.end());
  EXPECT_EQ(it->text, "0xFF'FF");
}

TEST(LexerTest, HexFloatExponentStaysOneNumber) {
  // `p` (not `e`) introduces the exponent of a hex float, and its sign
  // belongs to the literal.
  for (const char* src : {"double d = 0x1.8p3;", "double d = 0x1.8p-3;",
                          "double d = 0x1p+4;"}) {
    auto tokens = Lex(src);
    size_t numbers = 0;
    for (const Token& t : tokens) {
      numbers += t.kind == TokenKind::kNumber ? 1 : 0;
    }
    EXPECT_EQ(numbers, 1u) << src;
  }
}

TEST(LexerTest, HexDigitEIsNotAnExponent) {
  // In a hex literal E is a digit: `0x1E+2` is the number 0x1E, then a
  // binary '+', then 2 — not one pp-number.
  auto tokens = Lex("int v = 0x1E+2;");
  std::vector<std::string> numbers;
  bool saw_plus = false;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
    if (t.kind == TokenKind::kPunct && t.text == "+") saw_plus = true;
  }
  EXPECT_EQ(numbers, (std::vector<std::string>{"0x1E", "2"}));
  EXPECT_TRUE(saw_plus);
}

TEST(LexerTest, DecimalExponentSignStaysAttached) {
  auto tokens = Lex("double d = 1.5e+10;");
  auto it = std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.kind == TokenKind::kNumber;
  });
  ASSERT_NE(it, tokens.end());
  EXPECT_EQ(it->text, "1.5e+10");
}

TEST(LexerTest, LineNumbersSurviveMultilineConstructs) {
  auto tokens = Lex(
      "/* line one\n"
      "   line two */\n"
      "int x;\n"
      "char c = 'y';\n");
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier && t.text == "int") {
      EXPECT_EQ(t.line, 3);
    }
    if (t.kind == TokenKind::kCharLiteral) {
      EXPECT_EQ(t.line, 4);
    }
  }
}

TEST(LexerTest, DirectiveFoldsContinuationsAndComments) {
  auto tokens = Lex(
      "#define ADD(a, b) \\\n"
      "  ((a) + (b))  /* why not */\n"
      "int y;\n");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].kind, TokenKind::kDirective);
  EXPECT_EQ(tokens[0].text, "#define ADD(a, b) ((a) + (b))");
  EXPECT_EQ(tokens[0].line, 1);
  // `int y;` lands on line 3 even though the directive spanned two lines.
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier && t.text == "y") {
      EXPECT_EQ(t.line, 3);
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: one positive and one negative case each.

TEST(RawNewDeleteRuleTest, FlagsNewAndDeleteOutsideNn) {
  auto hits = RuleHits("src/apps/x.cc",
                       "int* p = new int(3);\ndelete p;\n", "raw-new-delete");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[1].line, 2);
}

TEST(RawNewDeleteRuleTest, AllowsNnArenaAndDeletedFunctions) {
  EXPECT_TRUE(
      RuleHits("src/nn/tensor.cc", "float* p = new float[8]; delete[] p;",
               "raw-new-delete")
          .empty());
  EXPECT_TRUE(RuleHits("src/apps/x.h",
                       "struct S { S(const S&) = delete; };\n"
                       "// new in a comment\n"
                       "const char* s = \"new delete\";\n",
                       "raw-new-delete")
                  .empty());
}

TEST(BannedRandRuleTest, FlagsCRandomCalls) {
  auto hits = RuleHits("src/text/x.cc", "srand(42);\nint r = rand();\n",
                       "banned-rand");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[1].line, 2);
}

TEST(BannedRandRuleTest, IgnoresMethodsAndMentions) {
  EXPECT_TRUE(RuleHits("src/text/x.cc",
                       "double v = dist.rand();\n"
                       "gen->rand();\n"
                       "int rand_count = 0;  // rand() in comment\n",
                       "banned-rand")
                  .empty());
}

TEST(BareFopenRuleTest, FlagsUnwrappedFopen) {
  auto hits =
      RuleHits("src/kg/x.cc", "FILE* f = fopen(\"a\", \"r\");", "bare-fopen");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 1);
}

TEST(BareFopenRuleTest, AllowsFilePtrWrapped) {
  EXPECT_TRUE(
      RuleHits("src/kg/x.cc",
               "FilePtr f(fopen(path, \"r\"), &std::fclose);\n"
               "std::unique_ptr<FILE, int (*)(FILE*)> g(fopen(p, \"w\"), "
               "&std::fclose);\n",
               "bare-fopen")
          .empty());
}

TEST(UsingNamespaceHeaderRuleTest, FlagsHeadersOnly) {
  const std::string src = "using namespace std;\n";
  auto hits = RuleHits("src/kg/x.h", src, "using-namespace-header");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_TRUE(
      RuleHits("src/kg/x.cc", src, "using-namespace-header").empty());
}

TEST(IncludeGuardRuleTest, FlagsPragmaOnceAndMismatch) {
  auto pragma = RuleHits("src/kg/x.h", "#pragma once\nint x;\n",
                         "include-guard");
  ASSERT_EQ(pragma.size(), 1u);

  auto mismatch = RuleHits("src/eval/metrics2.h",
                           "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n",
                           "include-guard");
  ASSERT_EQ(mismatch.size(), 1u);
  EXPECT_NE(mismatch[0].message.find("ALICOCO_EVAL_METRICS2_H_"),
            std::string::npos);
}

TEST(IncludeGuardRuleTest, AcceptsCanonicalGuard) {
  EXPECT_TRUE(RuleHits("src/eval/metrics2.h",
                       "#ifndef ALICOCO_EVAL_METRICS2_H_\n"
                       "#define ALICOCO_EVAL_METRICS2_H_\n"
                       "#endif  // ALICOCO_EVAL_METRICS2_H_\n",
                       "include-guard")
                  .empty());
}

TEST(IncludeOrderRuleTest, OwnHeaderMustComeFirst) {
  auto hits = RuleHits("src/eval/metrics2.cc",
                       "#include <vector>\n"
                       "#include \"eval/metrics2.h\"\n",
                       "include-order");
  ASSERT_FALSE(hits.empty());
  EXPECT_NE(hits[0].message.find("own header"), std::string::npos);
}

TEST(IncludeOrderRuleTest, AcceptsCanonicalLayout) {
  EXPECT_TRUE(RuleHits("src/eval/metrics2.cc",
                       "#include \"eval/metrics2.h\"\n"
                       "\n"
                       "#include <algorithm>\n"
                       "#include <vector>\n"
                       "\n"
                       "#include \"common/check.h\"\n"
                       "#include \"common/status.h\"\n",
                       "include-order")
                  .empty());
}

TEST(IncludeOrderRuleTest, FlagsUnsortedBlock) {
  auto hits = RuleHits("src/eval/metrics2.cc",
                       "#include \"eval/metrics2.h\"\n"
                       "\n"
                       "#include <vector>\n"
                       "#include <algorithm>\n",
                       "include-order");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("not sorted"), std::string::npos);
}

TEST(BannedTimeRuleTest, FlagsWallClockAndEntropy) {
  auto hits = RuleHits("src/datagen/x.cc",
                       "std::random_device rd;\n"
                       "long t = time(nullptr);\n",
                       "banned-time");
  ASSERT_EQ(hits.size(), 2u);
}

TEST(BannedTimeRuleTest, AllowsRngModuleAndMonotonicClocks) {
  EXPECT_TRUE(RuleHits("src/common/rng.cc",
                       "std::random_device rd; long t = time(nullptr);",
                       "banned-time")
                  .empty());
  EXPECT_TRUE(RuleHits("src/datagen/x.cc",
                       "auto t0 = std::chrono::steady_clock::now();\n"
                       "int runtime = 3;  // `time` as a substring is fine\n",
                       "banned-time")
                  .empty());
}

TEST(UnorderedPersistIterRuleTest, FlagsRangeForInPersistencePaths) {
  const std::string src =
      "std::unordered_map<int, int> index_;\n"
      "void Save() {\n"
      "  for (const auto& kv : index_) { Write(kv); }\n"
      "}\n";
  auto hits =
      RuleHits("src/kg/persistence_x.cc", src, "unordered-persist-iter");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  // The same code outside the persisted-output paths is untouched.
  EXPECT_TRUE(
      RuleHits("src/kg/taxonomy.cc", src, "unordered-persist-iter").empty());
}

TEST(LockDisciplineRuleTest, FlagsRawStdMutex) {
  auto hits = RuleHits("src/matching/x.h",
                       "#include <mutex>\nstd::mutex mu_;\n",
                       "lock-discipline");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
}

TEST(LockDisciplineRuleTest, RequiresGuardedByNextToMutexMembers) {
  const std::string bare =
      "class C {\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int total_ = 0;\n"
      "};\n";
  auto hits = RuleHits("src/matching/x.h", bare, "lock-discipline");
  ASSERT_EQ(hits.size(), 1u);

  const std::string annotated =
      "class C {\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int total_ ALICOCO_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(
      RuleHits("src/matching/x.h", annotated, "lock-discipline").empty());
}

TEST(DirectStderrLogRuleTest, FlagsRawStderrWritesInSrc) {
  auto hits = RuleHits("src/pipeline/x.cc",
                       "fprintf(stderr, \"boom\\n\");\n"
                       "std::cerr << \"boom\\n\";\n",
                       "direct-stderr-log");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[1].line, 2);
}

TEST(DirectStderrLogRuleTest, AllowsLoggingBackendAndNonSrc) {
  const std::string src = "fprintf(stderr, \"boom\\n\");\n";
  // The two sanctioned raw-stderr writers.
  EXPECT_TRUE(
      RuleHits("src/common/logging.cc", src, "direct-stderr-log").empty());
  EXPECT_TRUE(
      RuleHits("src/common/check.cc", src, "direct-stderr-log").empty());
  // CLIs and benches outside src/ report to the console however they like.
  EXPECT_TRUE(
      RuleHits("bench/obs_report.cc", src, "direct-stderr-log").empty());
  // fprintf to other streams is not a log write.
  EXPECT_TRUE(RuleHits("src/pipeline/x.cc",
                       "fprintf(out, \"row\\n\");\n", "direct-stderr-log")
                  .empty());
}

// ---------------------------------------------------------------------------
// Suppressions

TEST(SuppressionsTest, ParsesAndMatchesPrefixes) {
  auto sup = Suppressions::Parse(
      "# comment line\n"
      "banned-rand src/text/\n"
      "* src/legacy/\n");
  ASSERT_TRUE(sup.ok()) << sup.status().ToString();
  EXPECT_EQ(sup->size(), 2u);
  EXPECT_TRUE(sup->Matches("banned-rand", "src/text/tokenizer.cc"));
  EXPECT_FALSE(sup->Matches("banned-rand", "src/kg/taxonomy.cc"));
  EXPECT_FALSE(sup->Matches("raw-new-delete", "src/text/tokenizer.cc"));
  EXPECT_TRUE(sup->Matches("raw-new-delete", "src/legacy/old.cc"));
}

TEST(SuppressionsTest, RejectsUnknownRuleAndBadShape) {
  EXPECT_FALSE(Suppressions::Parse("not-a-rule src/\n").ok());
  EXPECT_FALSE(Suppressions::Parse("banned-rand\n").ok());
  EXPECT_FALSE(Suppressions::Parse("banned-rand src/ extra\n").ok());
}

TEST(SuppressionsTest, FileSuppressionsFilterFindings) {
  auto sup = Suppressions::Parse("banned-rand src/text/\n");
  ASSERT_TRUE(sup.ok());
  const std::string src = "int r = rand();\n";
  EXPECT_TRUE(AnalyzeSource("src/text/x.cc", src, &*sup).empty());
  EXPECT_EQ(AnalyzeSource("src/kg/x.cc", src, &*sup).size(), 1u);
}

TEST(SuppressionsTest, LoadsExampleFixtureFile) {
  auto sup = Suppressions::LoadFile(std::string(ALICOCO_LINT_FIXTURE_DIR) +
                                    "/suppressions_example.txt");
  ASSERT_TRUE(sup.ok()) << sup.status().ToString();
  EXPECT_EQ(sup->size(), 2u);
  EXPECT_TRUE(sup->Matches("banned-rand", "src/text/anything.cc"));
  EXPECT_TRUE(sup->Matches("include-guard", "src/legacy/x.h"));
}

TEST(InlineAllowTest, SameLineCommentSuppressesThatRuleOnly) {
  EXPECT_TRUE(AnalyzeSource("src/apps/x.cc",
                            "int* p = new int;  // lint:allow(raw-new-delete)\n",
                            nullptr)
                  .empty());
  // The allowance is line- and rule-scoped.
  EXPECT_EQ(AnalyzeSource("src/apps/x.cc",
                          "int* p = new int;  // lint:allow(banned-rand)\n",
                          nullptr)
                .size(),
            1u);
  EXPECT_EQ(AnalyzeSource("src/apps/x.cc",
                          "// lint:allow(raw-new-delete)\nint* p = new int;\n",
                          nullptr)
                .size(),
            1u);
}

// ---------------------------------------------------------------------------
// Registry + golden corpus

TEST(RuleRegistryTest, IdsAreUniqueKebabCaseAndDocumented) {
  std::vector<std::string> ids;
  for (const auto& rule : RuleRegistry()) {
    ids.emplace_back(rule->id());
    EXPECT_FALSE(rule->rationale().empty());
    for (char c : rule->id()) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '-')
          << "rule id not kebab-case: " << rule->id();
    }
  }
  auto sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(ids.size(), 11u);
}

/// Every fixture under tests/tools/fixtures/ declares its repo-logical
/// path on line one (`// lint-fixture: <path>`); the analyzer output over
/// the whole corpus must match expected.txt byte for byte.
TEST(GoldenCorpusTest, MatchesExpectedFindings) {
  const fs::path dir = ALICOCO_LINT_FIXTURE_DIR;
  ASSERT_TRUE(fs::is_directory(dir)) << dir;

  std::vector<fs::path> sources;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
      sources.push_back(entry.path());
    }
  }
  std::sort(sources.begin(), sources.end());
  ASSERT_FALSE(sources.empty());

  const std::string kMarker = "// lint-fixture: ";
  std::vector<std::string> got;
  for (const fs::path& path : sources) {
    std::string contents = ReadFileOrDie(path);
    ASSERT_EQ(contents.compare(0, kMarker.size(), kMarker), 0)
        << path << " is missing the lint-fixture marker line";
    size_t eol = contents.find('\n');
    std::string logical =
        contents.substr(kMarker.size(), eol - kMarker.size());
    for (const Finding& f : AnalyzeSource(logical, contents, nullptr)) {
      got.push_back(path.filename().string() + ": " + FormatFinding(f));
    }
  }

  std::vector<std::string> want;
  std::istringstream expected(ReadFileOrDie(dir / "expected.txt"));
  std::string line;
  while (std::getline(expected, line)) {
    if (line.empty() || line[0] == '#') continue;
    want.push_back(line);
  }
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace alicoco::lint
