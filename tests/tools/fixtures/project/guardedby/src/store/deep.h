// lint-fixture: the clean deep chain. Every observed caller of Step holds
// mu_, and Step is Bump's only caller, so the guard flows two unannotated
// hops down to the increment — no finding anywhere.
#ifndef ALICOCO_STORE_DEEP_H_
#define ALICOCO_STORE_DEEP_H_

class Meter {
 public:
  void Tick() {
    MutexLock lock(mu_);
    Step();
  }

 private:
  void Step() { Bump(); }
  void Bump() { ++count_; }

  Mutex mu_;
  int count_ ALICOCO_GUARDED_BY(mu_) = 0;
};

#endif  // ALICOCO_STORE_DEEP_H_
