// lint-fixture: interprocedural GUARDED_BY enforcement. Peek reads the
// guarded member with no lock on any path; FlushLocked is reached both
// with and without the lock (Flush vs Drop), so its entry set collapses
// to empty and the write inside it is flagged. Put, Sum (REQUIRES), and
// Flush are the clean near-misses.
#ifndef ALICOCO_STORE_STORE_H_
#define ALICOCO_STORE_STORE_H_

class Store {
 public:
  void Put(int v) {
    MutexLock lock(mu_);
    items_ += v;
  }

  int Peek() const { return items_; }

  int Sum() const ALICOCO_REQUIRES(mu_) { return items_; }

  void Flush() {
    MutexLock lock(mu_);
    FlushLocked();
  }

  void Drop() { FlushLocked(); }

 private:
  void FlushLocked() { items_ = 0; }

  Mutex mu_;
  int items_ ALICOCO_GUARDED_BY(mu_) = 0;
};

#endif  // ALICOCO_STORE_STORE_H_
