// lint-fixture: hot by path (src/pipeline). One allocation per iteration,
// one container declared inside the loop, one un-reserved push_back
// target; the reserved vector shows the sanctioned pattern.
#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Row {
  int id = 0;
};

int IngestRows(const std::vector<int>& ids) {
  std::vector<std::unique_ptr<Row>> rows;
  rows.reserve(ids.size());
  int checksum = 0;
  for (int id : ids) {
    auto row = std::make_unique<Row>();      // heap alloc per iteration
    row->id = id;
    std::string label = std::to_string(id);  // container born per iteration
    checksum += static_cast<int>(label.size());
    rows.push_back(std::move(row));
  }
  return checksum + static_cast<int>(rows.size());
}

std::vector<int> CollectSquares(int n) {
  std::vector<int> squares;
  for (int i = 0; i < n; ++i) {
    squares.push_back(i * i);  // growing an un-reserved vector
  }
  return squares;
}

}  // namespace fixture
