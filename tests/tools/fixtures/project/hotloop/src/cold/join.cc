// lint-fixture: identical shapes off the hot path stay quiet unless the
// function opts in with a lint:hot marker.
#include <string>
#include <vector>

namespace fixture {

int ColdJoin(const std::vector<std::string>& parts) {
  int total = 0;
  for (const auto& p : parts) {
    std::string padded = p + "|";
    total += static_cast<int>(padded.size());
  }
  return total;
}

// lint:hot
int MarkedHotJoin(const std::vector<std::string>& parts) {
  int total = 0;
  for (const auto& p : parts) {
    std::string padded = p + "|";
    total += static_cast<int>(padded.size());
  }
  return total;
}

}  // namespace fixture
