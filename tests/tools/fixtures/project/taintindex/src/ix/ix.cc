// lint-fixture: a stream-read index subscripts a table and a stream-read
// count bounds a loop, both unchecked; the `.size()` guard and the
// compile-time clamp silence the checked twins.
#include <cstdint>
#include <cstdio>
#include <vector>

namespace fixture {

constexpr uint32_t kMaxRows = 4096;

bool ReadU32(FILE* f, uint32_t* out) {
  return std::fread(out, sizeof(*out), 1, f) == 1;
}

float LookupUnchecked(FILE* f, const std::vector<float>& table) {
  uint32_t idx = 0;
  if (!ReadU32(f, &idx)) return 0.0f;
  return table[idx];  // untrusted subscript
}

float LookupChecked(FILE* f, const std::vector<float>& table) {
  uint32_t idx = 0;
  if (!ReadU32(f, &idx)) return 0.0f;
  if (idx >= table.size()) return 0.0f;
  return table[idx];
}

float SumUnchecked(FILE* f, const std::vector<float>& table) {
  uint32_t n = 0;
  if (!ReadU32(f, &n)) return 0.0f;
  float total = 0.0f;
  for (uint32_t i = 0; i < n; ++i) {  // untrusted loop bound
    total += table[i];
  }
  return total;
}

float SumClamped(FILE* f, const std::vector<float>& table) {
  uint32_t n = 0;
  if (!ReadU32(f, &n)) return 0.0f;
  if (n > kMaxRows) n = kMaxRows;
  float total = 0.0f;
  for (uint32_t i = 0; i < n; ++i) {
    total += table[i];
  }
  return total;
}

}  // namespace fixture
