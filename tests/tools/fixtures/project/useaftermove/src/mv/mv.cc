// lint-fixture: a move on one branch poisons the merge point and a loop
// back edge carries the poison into the next iteration; reassignment,
// revalidation, and lambda init-captures all stay quiet.
#include <string>
#include <utility>
#include <vector>

namespace fixture {

int BranchMerge(bool flip) {
  std::string name = "alicoco";
  std::vector<std::string> bag;
  bag.reserve(1);
  if (flip) {
    bag.push_back(std::move(name));
  }
  return static_cast<int>(name.size());  // moved on one incoming path
}

int ReassignedIsFine(bool flip) {
  std::string name = "alicoco";
  std::vector<std::string> bag;
  bag.reserve(1);
  if (flip) {
    bag.push_back(std::move(name));
    name = "fresh";
  }
  return static_cast<int>(name.size());
}

int LoopBackEdge(int rounds) {
  std::vector<std::string> bag;
  bag.reserve(4);
  std::string scratch = "seed";
  for (int i = 0; i < rounds; ++i) {
    scratch.append("x");  // poisoned by the previous iteration's move
    bag.push_back(std::move(scratch));
  }
  return static_cast<int>(bag.size());
}

int ClearRevalidates(int rounds) {
  std::vector<std::string> bag;
  bag.reserve(4);
  std::string scratch = "seed";
  for (int i = 0; i < rounds; ++i) {
    scratch.clear();
    scratch.append("x");
    bag.push_back(std::move(scratch));
  }
  return static_cast<int>(bag.size());
}

int InitCaptureShadows() {
  std::string name = "alicoco";
  auto user = [name = std::move(name)]() {
    return static_cast<int>(name.size());  // the capture, not the local
  };
  return user();
}

}  // namespace fixture
