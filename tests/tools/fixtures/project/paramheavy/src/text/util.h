// lint-fixture: heavy parameters declared by value; the sink that moves
// its argument and the small scalar stay quiet.
#ifndef ALICOCO_TEXT_UTIL_H_
#define ALICOCO_TEXT_UTIL_H_

#include <string>
#include <vector>

namespace fixture {

struct Document {
  std::vector<std::string> lines;
};

int CountBytes(std::string text);
int SumLengths(std::vector<std::string> values);
int Clamp(int value);

class Archive {
 public:
  void Add(std::string name);
  int Total(Document doc) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace fixture

#endif  // ALICOCO_TEXT_UTIL_H_
