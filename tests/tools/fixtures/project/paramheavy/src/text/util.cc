// lint-fixture: definitions matching util.h; findings land here, at the
// definition site, once per (class, name) group.
#include "text/util.h"

#include <utility>

namespace fixture {

int CountBytes(std::string text) { return static_cast<int>(text.size()); }

int SumLengths(std::vector<std::string> values) {
  int total = 0;
  for (const auto& v : values) total += static_cast<int>(v.size());
  return total;
}

int Clamp(int value) { return value < 0 ? 0 : value; }

void Archive::Add(std::string name) { names_.push_back(std::move(name)); }

int Archive::Total(Document doc) const {
  return static_cast<int>(doc.lines.size() + names_.size());
}

}  // namespace fixture
