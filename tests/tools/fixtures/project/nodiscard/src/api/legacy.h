// lint-fixture: a second Refresh overload that returns nothing, so the
// name is ambiguous project-wide and must not be flagged.
#ifndef ALICOCO_API_LEGACY_H_
#define ALICOCO_API_LEGACY_H_

void Refresh(int mode);

#endif  // ALICOCO_API_LEGACY_H_
