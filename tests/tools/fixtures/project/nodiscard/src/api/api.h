// lint-fixture: checked and unchecked return types, plus one name the
// unanimity rule must keep quiet.
#ifndef ALICOCO_API_API_H_
#define ALICOCO_API_API_H_

[[nodiscard]] bool LoadIndex();
Status SaveIndex();
int Version();
void Touch();
bool MaybeRefresh();
Status Refresh();

#endif  // ALICOCO_API_API_H_
