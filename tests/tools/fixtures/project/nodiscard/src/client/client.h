// lint-fixture: call sites — two discards, one opt-out, several legal.
#ifndef ALICOCO_CLIENT_CLIENT_H_
#define ALICOCO_CLIENT_CLIENT_H_

#include "api/api.h"
#include "api/legacy.h"

inline void UseAll() {
  LoadIndex();
  SaveIndex();
  (void)LoadIndex();
  Version();
  Touch();
  MaybeRefresh();
  Refresh();
  bool ok = LoadIndex();
  if (ok) {
    Touch();
  }
}

#endif  // ALICOCO_CLIENT_CLIENT_H_
