// lint-fixture: the top layer; depending downward on base is legal.
#ifndef ALICOCO_TOP_TOP_H_
#define ALICOCO_TOP_TOP_H_

#include "base/base.h"

inline int TopAnswer() { return BaseAnswer(); }

#endif  // ALICOCO_TOP_TOP_H_
