// lint-fixture: shares a layer with mid; neither may include the other.
#ifndef ALICOCO_PEER_PEER_H_
#define ALICOCO_PEER_PEER_H_

inline int PeerAnswer() { return 7; }

#endif  // ALICOCO_PEER_PEER_H_
