// lint-fixture: bottom of the declared layering.
#ifndef ALICOCO_BASE_BASE_H_
#define ALICOCO_BASE_BASE_H_

inline int BaseAnswer() { return 42; }

#endif  // ALICOCO_BASE_BASE_H_
