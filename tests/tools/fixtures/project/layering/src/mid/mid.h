// lint-fixture: one legal include and two layering violations.
#ifndef ALICOCO_MID_MID_H_
#define ALICOCO_MID_MID_H_

#include "base/base.h"
#include "peer/peer.h"
#include "top/top.h"

inline int MidAnswer() { return BaseAnswer() + PeerAnswer() + TopAnswer(); }

#endif  // ALICOCO_MID_MID_H_
