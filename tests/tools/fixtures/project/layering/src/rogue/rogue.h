// lint-fixture: a module nobody declared in layers.txt.
#ifndef ALICOCO_ROGUE_ROGUE_H_
#define ALICOCO_ROGUE_ROGUE_H_

#include "base/base.h"

inline int RogueAnswer() { return -BaseAnswer(); }

#endif  // ALICOCO_ROGUE_ROGUE_H_
