// lint-fixture: two stream-read dims are capped (so the raw allocation
// rule is satisfied) but their 32-bit product can still wrap before the
// resize; widening one operand to size_t discharges the overflow.
#include <cstdint>
#include <cstdio>
#include <vector>

namespace fixture {

constexpr uint32_t kMaxDim = 1u << 15;

bool ReadU32(FILE* f, uint32_t* out) {
  return std::fread(out, sizeof(*out), 1, f) == 1;
}

bool LoadNarrow(FILE* f, std::vector<float>* out) {
  uint32_t rows = 0;
  uint32_t cols = 0;
  if (!ReadU32(f, &rows) || !ReadU32(f, &cols)) return false;
  if (rows > kMaxDim || cols > kMaxDim) return false;
  out->resize(rows * cols);  // 32-bit product of untrusted dims
  return true;
}

bool LoadWidened(FILE* f, std::vector<float>* out) {
  uint32_t rows = 0;
  uint32_t cols = 0;
  if (!ReadU32(f, &rows) || !ReadU32(f, &cols)) return false;
  if (rows > kMaxDim || cols > kMaxDim) return false;
  out->resize(static_cast<size_t>(rows) * cols);
  return true;
}

}  // namespace fixture
