// lint-fixture: the classic AB-BA inversion inside one class.
#ifndef ALICOCO_LOCKS_INVERSION_H_
#define ALICOCO_LOCKS_INVERSION_H_

class Pair {
 public:
  void Forward() {
    MutexLock hold_a(a_);
    MutexLock hold_b(b_);
    ++forward_;
  }
  void Reverse() {
    MutexLock hold_b(b_);
    MutexLock hold_a(a_);
    ++reverse_;
  }

 private:
  Mutex a_;
  Mutex b_;
  int forward_ ALICOCO_GUARDED_BY(a_) = 0;
  int reverse_ ALICOCO_GUARDED_BY(b_) = 0;
};

#endif  // ALICOCO_LOCKS_INVERSION_H_
