// lint-fixture: the inversion only exists across a call boundary.
#ifndef ALICOCO_LOCKS_INTERPROC_H_
#define ALICOCO_LOCKS_INTERPROC_H_

class Chain {
 public:
  void Outer() {
    MutexLock hold_m(m_);
    this->Inner();
  }
  void Inner() {
    MutexLock hold_n(n_);
    ++steps_;
  }
  void Opposite() {
    MutexLock hold_n(n_);
    this->Outer();
  }

 private:
  Mutex m_;
  Mutex n_;
  int steps_ ALICOCO_GUARDED_BY(n_) = 0;
};

#endif  // ALICOCO_LOCKS_INTERPROC_H_
