// lint-fixture: double acquisition of one non-reentrant mutex.
#ifndef ALICOCO_LOCKS_REENTRY_H_
#define ALICOCO_LOCKS_REENTRY_H_

class Recur {
 public:
  void Once() {
    MutexLock hold(mu_);
    this->Again();
  }
  void Again() {
    MutexLock hold(mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  int count_ ALICOCO_GUARDED_BY(mu_) = 0;
};

#endif  // ALICOCO_LOCKS_REENTRY_H_
