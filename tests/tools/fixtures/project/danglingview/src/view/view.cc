// lint-fixture: views bound to temporaries, inner-scope owners, and
// function locals that escape through return; statics and same-scope
// bindings stay quiet.
#include <string>
#include <string_view>

namespace fixture {

std::string MakeLabel();

int TempBound() {
  std::string base = "alicoco-net";
  std::string_view head = base.substr(0, 7);  // view of a temporary
  return static_cast<int>(head.size());
}

int InnerScopeEscapes(bool flip) {
  std::string_view view;
  if (flip) {
    std::string local = MakeLabel();
    view = local;  // owner dies at the brace, the view survives
  }
  return static_cast<int>(view.size());
}

std::string_view ReturnsLocalView() {
  std::string local = MakeLabel();
  std::string_view v = local;
  return v;
}

int SameScopeIsFine() {
  std::string base = MakeLabel();
  std::string_view whole = base;
  return static_cast<int>(whole.size());
}

std::string_view StaticIsFine() {
  static const std::string kName = "alicoco";
  return kName;
}

}  // namespace fixture
