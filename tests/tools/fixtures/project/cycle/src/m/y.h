// lint-fixture: closes the include cycle started by x.h.
#ifndef ALICOCO_M_Y_H_
#define ALICOCO_M_Y_H_

#include "m/x.h"

#endif  // ALICOCO_M_Y_H_
