// lint-fixture: two headers that include each other.
#ifndef ALICOCO_M_X_H_
#define ALICOCO_M_X_H_

#include "m/y.h"

#endif  // ALICOCO_M_X_H_
