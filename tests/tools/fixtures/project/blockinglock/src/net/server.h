// lint-fixture: blocking-under-lock. Nap blocks directly (seeded sleep)
// under mu_; Publish reaches fwrite through WriteLog one hop down;
// Collect reaches a thread join two hops down, and JoinWorkers itself is
// flagged because its only caller holds the lock on entry. Drain's
// cv_.Wait(mu_) is the sanctioned condition-wait idiom, and Flush blocks
// with no lock held — both stay clean.
#ifndef ALICOCO_NET_SERVER_H_
#define ALICOCO_NET_SERVER_H_

class Server {
 public:
  void Publish(int v) {
    MutexLock lock(mu_);
    queue_ += v;
    WriteLog();
  }

  void Drain() {
    MutexLock lock(mu_);
    while (queue_ != 0) cv_.Wait(mu_);
  }

  void Flush() { WriteLog(); }

  void Nap() {
    MutexLock lock(mu_);
    sleep(1);
  }

  void Collect() {
    MutexLock lock(mu_);
    JoinWorkers();
  }

 private:
  void WriteLog() { fwrite(buf_, 1, 4, log_); }
  void JoinWorkers() { worker_.join(); }

  Mutex mu_;
  CondVar cv_;  // waits on mu_; signalled when queue_ drains
  int queue_ ALICOCO_GUARDED_BY(mu_) = 0;
  char buf_[4];
  FilePtr log_;
  Thread worker_;
};

#endif  // ALICOCO_NET_SERVER_H_
