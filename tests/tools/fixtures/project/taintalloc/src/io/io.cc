// lint-fixture: sizes read from a stream reach resize(), memcpy(), and
// new[] without a dominating cap; the capped twin compares against a
// compile-time constant first and stays quiet.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

namespace fixture {

constexpr uint32_t kMaxParams = 1u << 20;

bool ReadU32(FILE* f, uint32_t* out) {
  return std::fread(out, sizeof(*out), 1, f) == 1;
}

bool LoadUncapped(FILE* f, std::vector<float>* out) {
  uint32_t count = 0;
  if (!ReadU32(f, &count)) return false;
  out->resize(count);  // untrusted size straight into an allocation
  return true;
}

bool LoadCapped(FILE* f, std::vector<float>* out) {
  uint32_t count = 0;
  if (!ReadU32(f, &count)) return false;
  if (count > kMaxParams) return false;
  out->resize(count);
  return true;
}

bool CopyUncapped(FILE* f, char* dst, const char* src) {
  uint32_t len = 0;
  if (std::fread(&len, sizeof(len), 1, f) != 1) return false;
  std::memcpy(dst, src, len);  // builtin source, no cap before the copy
  return true;
}

bool NewUncapped(FILE* f, float** out) {
  uint32_t n = 0;
  if (!ReadU32(f, &n)) return false;
  *out = new float[n];  // untrusted array-new extent
  return true;
}

void FillBuffer(std::vector<float>* out, uint32_t n) {
  out->resize(n);  // parameter used as an allocation size
}

void FillCapped(std::vector<float>* out, uint32_t n) {
  if (n > kMaxParams) return;
  out->resize(n);
}

bool LoadViaHelper(FILE* f, std::vector<float>* out) {
  uint32_t n = 0;
  if (!ReadU32(f, &n)) return false;
  FillBuffer(out, n);  // untrusted size handed to an uncapped callee
  return true;
}

bool LoadViaCappedHelper(FILE* f, std::vector<float>* out) {
  uint32_t n = 0;
  if (!ReadU32(f, &n)) return false;
  FillCapped(out, n);
  return true;
}

}  // namespace fixture
