// lint-fixture: view-escapes-call. First returns a view of its by-value
// owner parameter (callee-side); Name and Tag return views through Head
// into a local and a temporary (caller-side, the dangle spans the call
// boundary). Label forwards a caller-owned reference and Trim is the
// view-of-a-view idiom — both stay clean.
#ifndef ALICOCO_TEXT_TEXT_H_
#define ALICOCO_TEXT_TEXT_H_

inline std::string_view Head(const std::string& s) {
  return std::string_view(s.data(), 1);
}

inline std::string_view First(std::string s) { return std::string_view(s); }

inline std::string_view Name() {
  std::string local = MakeName();
  return Head(local);
}

inline std::string_view Tag() { return Head(std::string("tag")); }

inline std::string_view Label(const std::string& stable) {
  return Head(stable);
}

inline std::string_view Trim(std::string_view v) { return v; }

#endif  // ALICOCO_TEXT_TEXT_H_
