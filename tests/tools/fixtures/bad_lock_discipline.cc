// lint-fixture: src/matching/bad_lock_discipline.cc

#include <mutex>

#include "common/mutex.h"

namespace alicoco {

class BadCache {
 private:
  std::mutex raw_mu_;
  Mutex mu_;
  CondVar cv_;
  int hits_ = 0;
};

}  // namespace alicoco
