// lint-fixture: src/obs/bad_mutex_name.cc

#include <string>

#include "common/mutex.h"

namespace alicoco {

class BadNames {
 private:
  std::string label_ = "pool.mu";
  Mutex mu_{label_.c_str()};
  int hits_ ALICOCO_GUARDED_BY(mu_) = 0;
};

inline void UseLocals(const char* runtime_name) {
  Mutex dynamic_name(runtime_name);
  Mutex fine{"obs.fixture.mu"};
  Mutex unnamed;
  MutexLock lock(fine);
  (void)dynamic_name;
  (void)unnamed;
}

}  // namespace alicoco
