// lint-fixture: src/common/clean.h
// Negative fixture: a correctly guarded, correctly annotated header.

#ifndef ALICOCO_COMMON_CLEAN_H_
#define ALICOCO_COMMON_CLEAN_H_

#include <cstddef>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace alicoco {

/// A counter whose lock discipline the analyzer accepts.
class CleanCounter {
 public:
  void Add(size_t d) {
    MutexLock lock(mu_);
    total_ += d;
  }

 private:
  Mutex mu_;
  size_t total_ ALICOCO_GUARDED_BY(mu_) = 0;
};

}  // namespace alicoco

#endif  // ALICOCO_COMMON_CLEAN_H_
