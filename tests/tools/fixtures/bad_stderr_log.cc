// lint-fixture: src/pipeline/bad_stderr_log.cc

#include <cstdio>
#include <iostream>

void Report(const char* msg) {
  fprintf(stderr, "pipeline: %s\n", msg);
  std::cerr << "pipeline: " << msg << "\n";
  printf("stdout is fine: %s\n", msg);
}
