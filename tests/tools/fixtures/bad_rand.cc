// lint-fixture: src/text/bad_rand.cc

#include <cstdlib>

int Roll() {
  srand(42);
  return rand();
}
