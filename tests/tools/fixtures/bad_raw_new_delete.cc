// lint-fixture: src/apps/bad_raw_new_delete.cc

int* Make() {
  int* p = new int(3);
  delete p;
  return nullptr;
}
