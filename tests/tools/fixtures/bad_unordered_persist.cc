// lint-fixture: src/kg/persistence_fixture.cc

#include <map>
#include <string>
#include <unordered_map>

void WriteSnapshot() {
  std::unordered_map<int, std::string> nodes;
  std::map<int, std::string> sorted_nodes;
  for (const auto& [id, label] : nodes) {
    (void)id;
    (void)label;
  }
  for (const auto& [id, label] : sorted_nodes) {  // deterministic: fine
    (void)id;
    (void)label;
  }
}
