// lint-fixture: src/hypernym/suppressed_inline.cc
// A real violation kept green by the inline allowance syntax.

int* LeakyButBlessed() {
  return new int(7);  // lint:allow(raw-new-delete)
}
