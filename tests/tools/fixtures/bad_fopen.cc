// lint-fixture: src/kg/bad_fopen.cc

#include <cstdio>

bool Touch(const char* path) {
  FILE* f = fopen(path, "r");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}
