// lint-fixture: src/eval/bad_include_order.cc

#include <vector>
#include "eval/bad_include_order.h"
#include <algorithm>

#include "eval/metrics.h"
#include "common/check.h"

int Noop() { return 0; }
