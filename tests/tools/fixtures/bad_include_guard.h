// lint-fixture: src/eval/bad_include_guard.h

#ifndef ALICOCO_EVAL_WRONG_NAME_H_
#define ALICOCO_EVAL_WRONG_NAME_H_

#endif  // ALICOCO_EVAL_WRONG_NAME_H_
