// lint-fixture: src/kg/bad_using_namespace.h

#ifndef ALICOCO_KG_BAD_USING_NAMESPACE_H_
#define ALICOCO_KG_BAD_USING_NAMESPACE_H_

#include <string>

using namespace std;

#endif  // ALICOCO_KG_BAD_USING_NAMESPACE_H_
