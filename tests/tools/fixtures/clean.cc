// lint-fixture: src/apps/clean.cc
// Negative fixture: near-misses that a grep gate would flag but the
// lexer-aware rules must not — banned tokens inside comments, strings,
// raw strings, deleted functions, and monotonic (not wall) clocks.

#include "apps/clean.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>

using namespace std::chrono;  // allowed in a .cc, never in headers

namespace alicoco {

// new Widget() and delete ptr are fine inside comments; so is rand().
/* block comment: time(nullptr) and std::random_device too. */

struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};

inline std::string Sayings() {
  std::string s = "call rand() then new int[4], delete it, fopen too";
  s += R"(raw: srand(1); new Foo; time(nullptr))";
  return s;
}

inline double Seconds() {
  auto t0 = steady_clock::now();  // monotonic clocks stay legal
  return duration<double>(steady_clock::now() - t0).count();
}

inline size_t CountTags(const std::unordered_map<int, int>& tags) {
  size_t n = 0;
  for (const auto& [k, v] : tags) {  // fine outside persistence paths
    n += static_cast<size_t>(v) + static_cast<size_t>(k) * 0;
  }
  return n;
}

inline bool HasData(const char* path) {
  using FilePtr = std::unique_ptr<FILE, int (*)(FILE*)>;
  FilePtr f(fopen(path, "r"), &std::fclose);
  return f != nullptr;
}

}  // namespace alicoco
