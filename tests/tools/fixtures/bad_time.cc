// lint-fixture: src/datagen/bad_time.cc

#include <ctime>
#include <random>

long Now() {
  std::random_device rd;
  return static_cast<long>(time(nullptr)) + static_cast<long>(rd());
}
