// lint-fixture: src/nn/clean_arena.cc
// Negative fixture: src/nn keeps its arena-style raw allocation license.

float* NewBuffer(int n) { return new float[n]; }
void FreeBuffer(const float* p) { delete[] p; }
