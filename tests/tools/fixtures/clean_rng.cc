// lint-fixture: src/common/rng_entropy.cc
// Negative fixture: common/rng is the one place hardware entropy and the
// wall clock may come from.

#include <ctime>
#include <random>

unsigned SeedFromHardware() {
  std::random_device rd;
  return rd() ^ static_cast<unsigned>(time(nullptr));
}
