// Tests for the whole-program half of alicoco_lint: the ProjectIndex and
// its incremental cache, the graph machinery, the three cross-file passes
// against the fixture mini-trees, and SARIF round-tripping.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/analyzer.h"
#include "tools/lint/graph.h"
#include "tools/lint/index.h"
#include "tools/lint/passes/interproc.h"
#include "tools/lint/passes/passes.h"
#include "tools/lint/sarif.h"

namespace alicoco::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

fs::path FixtureRoot(const std::string& name) {
  return fs::path(ALICOCO_PROJECT_FIXTURE_DIR) / name;
}

ProjectReport AnalyzeFixture(const std::string& name,
                             const std::string& cache_path = "",
                             LintClock* cost_clock = nullptr) {
  ProjectOptions options;
  options.project_dir = "src";
  options.layers_path = (FixtureRoot(name) / "layers.txt").generic_string();
  options.cache_path = cache_path;
  options.cost_clock = cost_clock;
  auto report = AnalyzeProject(FixtureRoot(name).generic_string(), options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? std::move(*report) : ProjectReport{};
}

// ---------------------------------------------------------------------------
// Layers parsing

TEST(LayersTest, ParsesRanksInDeclarationOrder) {
  auto layers = Layers::Parse(
      "# comment\n"
      "layer base\n"
      "layer mid peer  # trailing comment\n"
      "layer top\n");
  ASSERT_TRUE(layers.ok());
  EXPECT_EQ(layers->num_layers(), 3u);
  EXPECT_EQ(layers->num_modules(), 4u);
  EXPECT_EQ(layers->RankOf("base"), 0);
  EXPECT_EQ(layers->RankOf("mid"), 1);
  EXPECT_EQ(layers->RankOf("peer"), 1);
  EXPECT_EQ(layers->RankOf("top"), 2);
  EXPECT_EQ(layers->RankOf("absent"), -1);
  EXPECT_EQ(layers->ModulesAt(1), (std::vector<std::string>{"mid", "peer"}));
}

TEST(LayersTest, RejectsDuplicateAndMalformedDeclarations) {
  EXPECT_FALSE(Layers::Parse("layer a\nlayer a\n").ok());
  EXPECT_FALSE(Layers::Parse("tier a\n").ok());
  EXPECT_FALSE(Layers::Parse("layer\n").ok());
  EXPECT_FALSE(Layers::Parse("# only comments\n").ok());
}

// ---------------------------------------------------------------------------
// Digraph

TEST(DigraphTest, ReportsDeterministicCycleWitnesses) {
  Digraph g;
  g.AddEdge("b", "c", {"b.h", 1});
  g.AddEdge("c", "b", {"c.h", 2});
  g.AddEdge("a", "b", {"a.h", 3});  // feeds the SCC but is not in it
  g.AddEdge("d", "d", {"d.h", 4});  // self-loop
  auto cycles = g.Cycles();
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0], (std::vector<std::string>{"b", "c", "b"}));
  EXPECT_EQ(cycles[1], (std::vector<std::string>{"d", "d"}));
  const EdgeSite* site = g.FindSite("b", "c");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->file, "b.h");
}

TEST(DigraphTest, AcyclicGraphHasNoCycles) {
  Digraph g;
  g.AddEdge("a", "b", {"a.h", 1});
  g.AddEdge("b", "c", {"b.h", 1});
  g.AddEdge("a", "c", {"a.h", 2});
  EXPECT_TRUE(g.Cycles().empty());
}

TEST(DigraphTest, StronglyConnectedComponentsEmitCalleesFirst) {
  Digraph g;
  g.AddEdge("a", "b", {"a.h", 1});
  g.AddEdge("b", "c", {"b.h", 1});
  g.AddEdge("c", "a", {"c.h", 1});  // three-way recursion: one component
  g.AddEdge("d", "a", {"d.h", 1});  // d calls into the cycle
  g.AddEdge("e", "e", {"e.h", 1});  // self-recursion
  g.AddEdge("f", "g", {"f.h", 1});  // mutual recursion...
  g.AddEdge("g", "f", {"g.h", 1});
  g.AddEdge("g", "e", {"g.h", 2});  // ...that calls the self-loop
  const auto sccs = g.StronglyConnectedComponents();
  auto where = [&](const std::string& node) {
    for (size_t i = 0; i < sccs.size(); ++i) {
      if (std::find(sccs[i].begin(), sccs[i].end(), node) != sccs[i].end()) {
        return i;
      }
    }
    ADD_FAILURE() << "node " << node << " missing from the condensation";
    return sccs.size();
  };
  EXPECT_EQ(sccs.size(), 4u);
  EXPECT_EQ(where("a"), where("b"));
  EXPECT_EQ(where("a"), where("c"));
  EXPECT_EQ(where("f"), where("g"));
  // Callees-first: a bottom-up sweep sees a component only after every
  // component it calls into.
  EXPECT_LT(where("a"), where("d"));
  EXPECT_LT(where("e"), where("f"));
}

// ---------------------------------------------------------------------------
// Extraction

TEST(SummarizeSourceTest, ExtractsIncludesMutexesAndFunctions) {
  const std::string src =
      "#include \"kg/net.h\"\n"
      "#include <vector>\n"
      "class Store {\n"
      " public:\n"
      "  void Put() {\n"
      "    MutexLock lock(mu_);\n"
      "    MutexLock nested(aux_);\n"
      "    this->Flush();\n"
      "  }\n"
      "  void Flush() {}\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  Mutex aux_;\n"
      "  int n_ ALICOCO_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  FileSummary summary = SummarizeSource("src/a/store.h", src);

  ASSERT_EQ(summary.includes.size(), 2u);
  EXPECT_EQ(summary.includes[0].path, "kg/net.h");
  EXPECT_FALSE(summary.includes[0].angled);
  EXPECT_TRUE(summary.includes[1].angled);

  // mu_ (twice: Mutex member + GUARDED_BY) and aux_, deduplicated.
  ASSERT_EQ(summary.mutexes.size(), 2u);
  EXPECT_EQ(summary.mutexes[0].member, "aux_");
  EXPECT_EQ(summary.mutexes[0].class_name, "Store");
  EXPECT_EQ(summary.mutexes[1].member, "mu_");

  ASSERT_EQ(summary.functions.size(), 1u);  // Flush has no locks/calls
  const FunctionSummary& put = summary.functions[0];
  EXPECT_EQ(put.name, "Put");
  EXPECT_EQ(put.class_name, "Store");
  ASSERT_EQ(put.acquisitions.size(), 2u);
  EXPECT_EQ(put.acquisitions[0].name, "mu_");
  EXPECT_TRUE(put.acquisitions[0].held.empty());
  EXPECT_EQ(put.acquisitions[1].name, "aux_");
  EXPECT_EQ(put.acquisitions[1].held, (std::vector<int>{0}));
  ASSERT_EQ(put.calls.size(), 1u);
  EXPECT_EQ(put.calls[0].callee, "Flush");
  EXPECT_EQ(put.calls[0].kind, CallKind::kThis);
  EXPECT_EQ(put.calls[0].held, (std::vector<int>{0, 1}));
}

TEST(SummarizeSourceTest, ClassifiesCheckedDeclarations) {
  const std::string src =
      "[[nodiscard]] bool LoadThing();\n"
      "Status SaveThing();\n"
      "Result<int> ParseThing(const std::string& s);\n"
      "bool MaybeThing();\n"
      "int CountThings();\n"
      "void Touch();\n";
  FileSummary summary = SummarizeSource("src/a/api.h", src);
  ASSERT_EQ(summary.decls.size(), 6u);
  auto checked = [&](const std::string& name) {
    for (const DeclInfo& d : summary.decls) {
      if (d.name == name) return d.checked;
    }
    ADD_FAILURE() << "no decl named " << name;
    return false;
  };
  EXPECT_TRUE(checked("LoadThing"));
  EXPECT_TRUE(checked("SaveThing"));
  EXPECT_TRUE(checked("ParseThing"));
  EXPECT_FALSE(checked("MaybeThing"));  // bool but not a Load/Save name
  EXPECT_FALSE(checked("CountThings"));
  EXPECT_FALSE(checked("Touch"));
}

TEST(SummarizeSourceTest, RecordsBareCallStatementsOnly) {
  const std::string src =
      "inline void Use() {\n"
      "  LoadThing();\n"
      "  obj.Save();\n"
      "  chain()->Next();\n"
      "  (void)LoadThing();\n"
      "  bool ok = LoadThing();\n"
      "  return;\n"
      "}\n";
  FileSummary summary = SummarizeSource("src/a/use.h", src);
  std::vector<std::string> callees;
  for (const CallStatement& c : summary.call_statements) {
    callees.push_back(c.callee);
  }
  EXPECT_EQ(callees, (std::vector<std::string>{"LoadThing", "Save", "Next"}));
}

TEST(SummarizeSourceTest, ExtractsGuardedMembersRequiresAndViewEscapes) {
  const std::string src =
      "#ifndef ALICOCO_A_GUARD_H_\n"
      "#define ALICOCO_A_GUARD_H_\n"
      "class Box {\n"
      " public:\n"
      "  int Read() const ALICOCO_REQUIRES(mu_) { return items_; }\n"
      "  void Bump() {\n"
      "    MutexLock lock(mu_);\n"
      "    items_ += 1;\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int items_ ALICOCO_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "inline std::string_view Half(const std::string& s) {\n"
      "  return std::string_view(s.data(), 1);\n"
      "}\n"
      "inline std::string_view Top() {\n"
      "  std::string owner = MakeName();\n"
      "  return Half(owner);\n"
      "}\n"
      "#endif  // ALICOCO_A_GUARD_H_\n";
  FileSummary s = SummarizeSource("src/a/guard.h", src);

  ASSERT_EQ(s.guarded_members.size(), 1u);
  EXPECT_EQ(s.guarded_members[0].class_name, "Box");
  EXPECT_EQ(s.guarded_members[0].member, "items_");
  EXPECT_EQ(s.guarded_members[0].mutex, "mu_");

  auto fn = [&](const std::string& name) -> const FunctionSummary* {
    for (const FunctionSummary& f : s.functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  };
  const FunctionSummary* read = fn("Read");
  ASSERT_NE(read, nullptr);
  ASSERT_EQ(read->member_refs.size(), 1u);
  EXPECT_EQ(read->member_refs[0].name, "items_");
  EXPECT_TRUE(read->member_refs[0].held.empty());  // contract, not a lock
  const FunctionSummary* bump = fn("Bump");
  ASSERT_NE(bump, nullptr);
  ASSERT_EQ(bump->member_refs.size(), 1u);
  EXPECT_EQ(bump->member_refs[0].held, (std::vector<int>{0}));
  const FunctionSummary* top = fn("Top");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->view_returns.size(), 1u);
  EXPECT_EQ(top->view_returns[0].callee, "Half");
  ASSERT_EQ(top->view_returns[0].args.size(), 1u);
  EXPECT_EQ(top->view_returns[0].args[0].owner, "owner");
  EXPECT_FALSE(top->view_returns[0].args[0].is_temp);

  auto decl = [&](const std::string& name) -> const DeclInfo* {
    for (const DeclInfo& d : s.decls) {
      if (d.name == name) return &d;
    }
    return nullptr;
  };
  const DeclInfo* read_decl = decl("Read");
  ASSERT_NE(read_decl, nullptr);
  EXPECT_EQ(read_decl->requires_locks, (std::vector<std::string>{"mu_"}));
  const DeclInfo* half = decl("Half");
  ASSERT_NE(half, nullptr);
  ASSERT_EQ(half->params.size(), 1u);
  EXPECT_FALSE(half->params[0].by_value);
  EXPECT_TRUE(half->params[0].escapes_return);
}

// ---------------------------------------------------------------------------
// The interprocedural tier

TEST(InterprocTest, BlockingSeedTableSplitsSeededFromPropagated) {
  // The seed table is the ground truth for what blocks directly.
  EXPECT_STREQ(BlockingSeedKind("fwrite"), "file I/O");
  EXPECT_STREQ(BlockingSeedKind("fprintf"), "file I/O");
  EXPECT_STREQ(BlockingSeedKind("sleep_for"), "sleep");
  EXPECT_STREQ(BlockingSeedKind("Wait"), "condition-variable wait");
  EXPECT_STREQ(BlockingSeedKind("join"), "thread join");
  EXPECT_STREQ(BlockingSeedKind("malloc"), "unbounded allocation");
  EXPECT_EQ(BlockingSeedKind("Compute"), nullptr);
  EXPECT_EQ(BlockingSeedKind("push_back"), nullptr);
  EXPECT_TRUE(IsWaitSeedKind(BlockingSeedKind("wait_for")));
  EXPECT_FALSE(IsWaitSeedKind(BlockingSeedKind("join")));
  EXPECT_FALSE(IsWaitSeedKind(nullptr));

  // Everything else is propagation, witnessed by the evidence chain.
  ProjectIndex::Options options;
  auto index = ProjectIndex::Build(
      FixtureRoot("blockinglock").generic_string(), {"src"}, options);
  ASSERT_TRUE(index.ok());
  const Interproc ip = Interproc::Build(*index);
  EXPECT_TRUE(ip.MayBlock("Server::WriteLog"));  // seeded: calls fwrite
  EXPECT_EQ(ip.BlockKind("Server::WriteLog"), "file I/O");
  EXPECT_EQ(ip.BlockChain("Server::WriteLog"),
            (std::vector<std::string>{"Server::WriteLog", "fwrite"}));
  EXPECT_TRUE(ip.MayBlock("Server::Publish"));  // propagated one hop
  EXPECT_EQ(ip.BlockChain("Server::Publish"),
            (std::vector<std::string>{"Server::Publish", "Server::WriteLog",
                                      "fwrite"}));
  EXPECT_TRUE(ip.MayBlock("Server::Collect"));  // propagated two hops
  EXPECT_EQ(ip.BlockKind("Server::Collect"), "thread join");
}

TEST(InterprocTest, EntryHeldPropagatesThroughUnannotatedCalls) {
  ProjectIndex::Options options;
  auto index = ProjectIndex::Build(FixtureRoot("guardedby").generic_string(),
                                   {"src"}, options);
  ASSERT_TRUE(index.ok());
  const Interproc ip = Interproc::Build(*index);
  // Tick holds mu_ around Step, and Step is Bump's only caller: the lock
  // flows two unannotated hops down.
  EXPECT_EQ(ip.EntryHeld("Meter::Step"),
            (std::set<std::string>{"Meter::mu_"}));
  EXPECT_EQ(ip.EntryHeld("Meter::Bump"),
            (std::set<std::string>{"Meter::mu_"}));
  // FlushLocked is reached with the lock (Flush) and without it (Drop);
  // the call-site meet collapses to empty.
  EXPECT_TRUE(ip.EntryHeld("Store::FlushLocked").empty());
  // No observed callers: the REQUIRES contract alone carries the lock.
  EXPECT_EQ(ip.RequiresOf("Store::Sum"),
            (std::set<std::string>{"Store::mu_"}));
  EXPECT_EQ(ip.EntryHeld("Store::Sum"),
            (std::set<std::string>{"Store::mu_"}));
  // Uncalled public functions are never assumed to run under a lock.
  EXPECT_TRUE(ip.EntryHeld("Store::Peek").empty());
}

// ---------------------------------------------------------------------------
// Fixture goldens: one mini-tree per pass

class ProjectFixtureTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProjectFixtureTest, MatchesGolden) {
  const std::string name = GetParam();
  ProjectReport report = AnalyzeFixture(name);
  std::string got;
  for (const Finding& f : report.findings) {
    got += FormatFinding(f) + "\n";
  }
  EXPECT_EQ(got, ReadFileOrDie(FixtureRoot(name) / "expected.txt"))
      << "fixture " << name << " drifted from its golden";
}

INSTANTIATE_TEST_SUITE_P(AllFixtures, ProjectFixtureTest,
                         ::testing::Values("cycle", "layering", "lockorder",
                                           "nodiscard", "useaftermove",
                                           "danglingview", "hotloop",
                                           "paramheavy", "guardedby",
                                           "blockinglock", "viewescape",
                                           "taintalloc", "taintmul",
                                           "taintindex"));

// ---------------------------------------------------------------------------
// SARIF

TEST(SarifTest, RoundTripsFindings) {
  std::vector<Finding> findings;
  findings.push_back(
      {"src/a.h", 3, "layer-violation", "module 'a' must not depend on 'b'"});
  findings.push_back({"src/b \"q\".cc", 12, "discarded-result",
                      "tricky \\ payload\nwith newline"});
  auto parsed = ParseSarif(WriteSarif(findings));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), findings.size());
  for (size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ((*parsed)[i].file, findings[i].file);
    EXPECT_EQ((*parsed)[i].line, findings[i].line);
    EXPECT_EQ((*parsed)[i].rule, findings[i].rule);
    EXPECT_EQ((*parsed)[i].message, findings[i].message);
  }
}

TEST(SarifTest, MatchesFixtureGolden) {
  ProjectReport report = AnalyzeFixture("nodiscard");
  EXPECT_EQ(WriteSarif(report.findings),
            ReadFileOrDie(FixtureRoot("nodiscard") / "expected.sarif"));
}

TEST(SarifTest, RejectsDocumentsMissingTheSpine) {
  EXPECT_FALSE(ParseSarif("{").ok());
  EXPECT_FALSE(ParseSarif("{}").ok());
  EXPECT_FALSE(ParseSarif("{\"version\": \"2.1.0\"}").ok());
  EXPECT_FALSE(ParseSarif("{\"version\": \"2.1.0\", \"runs\": []}").ok());
  EXPECT_TRUE(ParseSarif(WriteSarif({})).ok());
}

// ---------------------------------------------------------------------------
// Cache + incremental behavior

/// Copies a fixture tree into a fresh temp dir so the test can mutate it.
fs::path CloneFixture(const std::string& name, const std::string& tag) {
  fs::path dst = fs::path(::testing::TempDir()) / ("project_lint_" + tag);
  fs::remove_all(dst);
  fs::copy(FixtureRoot(name), dst, fs::copy_options::recursive);
  return dst;
}

TEST(ProjectIndexTest, CacheInvalidationRelexesOnlyTouchedFiles) {
  fs::path root = CloneFixture("lockorder", "invalidate");
  std::string cache = (root / "cache.bin").generic_string();

  ProjectIndex::Options options;
  options.cache_path = cache;
  auto cold = ProjectIndex::Build(root.generic_string(), {"src"}, options);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->stats().files, 3u);
  EXPECT_EQ(cold->stats().lexed, 3u);
  EXPECT_EQ(cold->stats().cache_hits, 0u);
  EXPECT_EQ(cold->changed().size(), 3u);

  auto warm = ProjectIndex::Build(root.generic_string(), {"src"}, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats().lexed, 0u);
  EXPECT_EQ(warm->stats().cache_hits, 3u);
  EXPECT_TRUE(warm->changed().empty());

  {
    std::ofstream touch(root / "src/locks/reentry.h", std::ios::app);
    touch << "// touched\n";
  }
  auto partial = ProjectIndex::Build(root.generic_string(), {"src"}, options);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->stats().lexed, 1u);
  EXPECT_EQ(partial->stats().cache_hits, 2u);
  EXPECT_EQ(partial->changed(),
            (std::vector<std::string>{"src/locks/reentry.h"}));
}

TEST(ProjectIndexTest, CorruptCacheIsDiscardedNotTrusted) {
  fs::path root = CloneFixture("cycle", "corrupt");
  std::string cache = (root / "cache.bin").generic_string();
  ProjectIndex::Options options;
  options.cache_path = cache;
  ASSERT_TRUE(ProjectIndex::Build(root.generic_string(), {"src"}, options)
                  .ok());
  {
    std::ofstream clobber(cache, std::ios::trunc);
    clobber << "alicoco_lint_cache_v1\nF src/m/x.h notahash\n";
  }
  auto rebuilt = ProjectIndex::Build(root.generic_string(), {"src"}, options);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->stats().lexed, 2u);  // cache ignored, all re-lexed
  EXPECT_EQ(rebuilt->stats().cache_hits, 0u);
}

TEST(ProjectIndexTest, SummariesSurviveSerialization) {
  fs::path root = FixtureRoot("lockorder");
  ProjectIndex::Options options;
  auto index = ProjectIndex::Build(root.generic_string(), {"src"}, options);
  ASSERT_TRUE(index.ok());
  auto round = DeserializeSummaries(SerializeSummaries(index->files()));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->size(), index->files().size());
  for (size_t i = 0; i < round->size(); ++i) {
    const FileSummary& a = index->files()[i];
    const FileSummary& b = (*round)[i];
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.content_hash, b.content_hash);
    EXPECT_EQ(a.includes.size(), b.includes.size());
    EXPECT_EQ(a.mutexes.size(), b.mutexes.size());
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (size_t j = 0; j < a.functions.size(); ++j) {
      EXPECT_EQ(a.functions[j].name, b.functions[j].name);
      EXPECT_EQ(a.functions[j].acquisitions.size(),
                b.functions[j].acquisitions.size());
      EXPECT_EQ(a.functions[j].calls.size(), b.functions[j].calls.size());
    }
    EXPECT_EQ(a.decls.size(), b.decls.size());
    EXPECT_EQ(a.call_statements.size(), b.call_statements.size());
    EXPECT_EQ(a.findings.size(), b.findings.size());
    EXPECT_EQ(a.allowances, b.allowances);
  }
}

TEST(ProjectIndexTest, InterprocSummaryFieldsSurviveSerialization) {
  for (const char* fixture : {"guardedby", "blockinglock", "viewescape"}) {
    ProjectIndex::Options options;
    auto index = ProjectIndex::Build(FixtureRoot(fixture).generic_string(),
                                     {"src"}, options);
    ASSERT_TRUE(index.ok());
    auto round = DeserializeSummaries(SerializeSummaries(index->files()));
    ASSERT_TRUE(round.ok()) << fixture << ": " << round.status().ToString();
    ASSERT_EQ(round->size(), index->files().size());
    for (size_t i = 0; i < round->size(); ++i) {
      const FileSummary& a = index->files()[i];
      const FileSummary& b = (*round)[i];
      ASSERT_EQ(a.guarded_members.size(), b.guarded_members.size());
      for (size_t j = 0; j < a.guarded_members.size(); ++j) {
        EXPECT_EQ(a.guarded_members[j].class_name,
                  b.guarded_members[j].class_name);
        EXPECT_EQ(a.guarded_members[j].member, b.guarded_members[j].member);
        EXPECT_EQ(a.guarded_members[j].mutex, b.guarded_members[j].mutex);
      }
      ASSERT_EQ(a.functions.size(), b.functions.size());
      for (size_t j = 0; j < a.functions.size(); ++j) {
        const FunctionSummary& fa = a.functions[j];
        const FunctionSummary& fb = b.functions[j];
        ASSERT_EQ(fa.calls.size(), fb.calls.size());
        for (size_t k = 0; k < fa.calls.size(); ++k) {
          EXPECT_EQ(fa.calls[k].arg0, fb.calls[k].arg0);
          EXPECT_EQ(fa.calls[k].held, fb.calls[k].held);
        }
        ASSERT_EQ(fa.member_refs.size(), fb.member_refs.size());
        for (size_t k = 0; k < fa.member_refs.size(); ++k) {
          EXPECT_EQ(fa.member_refs[k].line, fb.member_refs[k].line);
          EXPECT_EQ(fa.member_refs[k].name, fb.member_refs[k].name);
          EXPECT_EQ(fa.member_refs[k].held, fb.member_refs[k].held);
        }
        ASSERT_EQ(fa.view_returns.size(), fb.view_returns.size());
        for (size_t k = 0; k < fa.view_returns.size(); ++k) {
          EXPECT_EQ(fa.view_returns[k].line, fb.view_returns[k].line);
          EXPECT_EQ(fa.view_returns[k].callee, fb.view_returns[k].callee);
          ASSERT_EQ(fa.view_returns[k].args.size(),
                    fb.view_returns[k].args.size());
          for (size_t m = 0; m < fa.view_returns[k].args.size(); ++m) {
            EXPECT_EQ(fa.view_returns[k].args[m].owner,
                      fb.view_returns[k].args[m].owner);
            EXPECT_EQ(fa.view_returns[k].args[m].is_temp,
                      fb.view_returns[k].args[m].is_temp);
          }
        }
      }
      ASSERT_EQ(a.decls.size(), b.decls.size());
      for (size_t j = 0; j < a.decls.size(); ++j) {
        EXPECT_EQ(a.decls[j].requires_locks, b.decls[j].requires_locks);
        ASSERT_EQ(a.decls[j].params.size(), b.decls[j].params.size());
        for (size_t k = 0; k < a.decls[j].params.size(); ++k) {
          EXPECT_EQ(a.decls[j].params[k].escapes_return,
                    b.decls[j].params[k].escapes_return);
        }
      }
    }
  }
}

TEST(ProjectIndexTest, TaintSummaryFieldsSurviveSerialization) {
  bool saw_taint_out = false;
  bool saw_call = false;
  bool saw_pending = false;
  for (const char* fixture : {"taintalloc", "taintmul", "taintindex"}) {
    ProjectIndex::Options options;
    auto index = ProjectIndex::Build(FixtureRoot(fixture).generic_string(),
                                     {"src"}, options);
    ASSERT_TRUE(index.ok());
    auto round = DeserializeSummaries(SerializeSummaries(index->files()));
    ASSERT_TRUE(round.ok()) << fixture << ": " << round.status().ToString();
    ASSERT_EQ(round->size(), index->files().size());
    for (size_t i = 0; i < round->size(); ++i) {
      const FileSummary& a = index->files()[i];
      const FileSummary& b = (*round)[i];
      ASSERT_EQ(a.decls.size(), b.decls.size());
      for (size_t j = 0; j < a.decls.size(); ++j) {
        EXPECT_EQ(a.decls[j].returns_tainted, b.decls[j].returns_tainted);
        ASSERT_EQ(a.decls[j].params.size(), b.decls[j].params.size());
        for (size_t k = 0; k < a.decls[j].params.size(); ++k) {
          EXPECT_EQ(a.decls[j].params[k].taint_sink_mask,
                    b.decls[j].params[k].taint_sink_mask);
          EXPECT_EQ(a.decls[j].params[k].taint_out,
                    b.decls[j].params[k].taint_out);
          saw_taint_out |= a.decls[j].params[k].taint_out;
        }
      }
      ASSERT_EQ(a.taint_calls.size(), b.taint_calls.size());
      for (size_t j = 0; j < a.taint_calls.size(); ++j) {
        const TaintCallArg& ca = a.taint_calls[j];
        const TaintCallArg& cb = b.taint_calls[j];
        EXPECT_EQ(ca.line, cb.line);
        EXPECT_EQ(ca.kind, cb.kind);
        EXPECT_EQ(ca.arg_index, cb.arg_index);
        EXPECT_EQ(ca.origin, cb.origin);
        EXPECT_EQ(ca.guard_param, cb.guard_param);
        EXPECT_EQ(ca.source_line, cb.source_line);
        EXPECT_EQ(ca.param_mask, cb.param_mask);
        EXPECT_EQ(ca.caller, cb.caller);
        EXPECT_EQ(ca.caller_class, cb.caller_class);
        EXPECT_EQ(ca.callee, cb.callee);
        EXPECT_EQ(ca.qualifier, cb.qualifier);
        EXPECT_EQ(ca.var, cb.var);
        EXPECT_EQ(ca.source, cb.source);
        saw_call = true;
      }
      ASSERT_EQ(a.taint_pending.size(), b.taint_pending.size());
      for (size_t j = 0; j < a.taint_pending.size(); ++j) {
        EXPECT_EQ(a.taint_pending[j].line, b.taint_pending[j].line);
        EXPECT_EQ(a.taint_pending[j].rule, b.taint_pending[j].rule);
        EXPECT_EQ(a.taint_pending[j].message, b.taint_pending[j].message);
        EXPECT_EQ(a.taint_pending[j].guard_callee,
                  b.taint_pending[j].guard_callee);
        EXPECT_EQ(a.taint_pending[j].guard_param,
                  b.taint_pending[j].guard_param);
        saw_pending = true;
      }
    }
  }
  // The fixtures exist to exercise these fields; if extraction stops
  // producing them the round-trips above are vacuous.
  EXPECT_TRUE(saw_taint_out);
  EXPECT_TRUE(saw_call);
  EXPECT_TRUE(saw_pending);
}

TEST(ProjectIndexTest, OlderCacheFormatIsDiscardedNotTrusted) {
  fs::path root = CloneFixture("guardedby", "v2cache");
  std::string cache = (root / "cache.bin").generic_string();
  ProjectIndex::Options options;
  options.cache_path = cache;
  auto cold = ProjectIndex::Build(root.generic_string(), {"src"}, options);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->stats().lexed, 2u);
  {
    // A v2-era cache: older magic, otherwise plausible content. The
    // summary shape changed in v3, so it must be re-lexed, not parsed.
    std::ofstream clobber(cache, std::ios::trunc);
    clobber << "alicoco_lint_cache_v2 " << AnalyzerCacheVersion() << "\n";
  }
  auto rebuilt = ProjectIndex::Build(root.generic_string(), {"src"}, options);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->stats().lexed, 2u);
  EXPECT_EQ(rebuilt->stats().cache_hits, 0u);
}

TEST(ProjectIndexTest, V3CacheFormatIsDiscardedNotTrusted) {
  fs::path root = CloneFixture("taintalloc", "v3cache");
  std::string cache = (root / "cache.bin").generic_string();
  ProjectIndex::Options options;
  options.cache_path = cache;
  auto cold = ProjectIndex::Build(root.generic_string(), {"src"}, options);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->stats().lexed, 1u);
  {
    // A v3-era cache: the P/D records lack the taint columns added in v4,
    // so trusting it would silently drop every taint fact. Discard it.
    std::ofstream clobber(cache, std::ios::trunc);
    clobber << "alicoco_lint_cache_v3 " << AnalyzerCacheVersion() << "\n";
  }
  auto rebuilt = ProjectIndex::Build(root.generic_string(), {"src"}, options);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->stats().lexed, 1u);
  EXPECT_EQ(rebuilt->stats().cache_hits, 0u);
}

TEST(ProjectIndexTest, WarmRunIsAtLeastFiveTimesFasterThanCold) {
  // The acceptance bar from the issue, asserted with the injected cost
  // clock over the real src/ tree: no timer flake, and the ratio collapses
  // to ~1x if cache loading ever silently breaks.
  fs::path repo_root = fs::path(ALICOCO_REPO_ROOT);
  std::string cache =
      (fs::path(::testing::TempDir()) / "project_lint_warm.cache")
          .generic_string();
  fs::remove(cache);

  SimulatedClock cold_clock;
  ProjectIndex::Options options;
  options.cache_path = cache;
  options.cost_clock = &cold_clock;
  auto cold =
      ProjectIndex::Build(repo_root.generic_string(), {"src"}, options);
  ASSERT_TRUE(cold.ok());
  ASSERT_GT(cold->stats().lexed, 0u);

  SimulatedClock warm_clock;
  options.cost_clock = &warm_clock;
  auto warm =
      ProjectIndex::Build(repo_root.generic_string(), {"src"}, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats().lexed, 0u);
  EXPECT_EQ(warm->stats().cache_hits, warm->stats().files);

  EXPECT_GE(cold_clock.NowUs(), 5 * warm_clock.NowUs())
      << "cold=" << cold_clock.NowUs() << " warm=" << warm_clock.NowUs();
}

TEST(ProjectLintTest, TaintFindingsSurviveAWarmCacheRun) {
  // The taint pass runs over deserialized summaries on a warm run; if the
  // T/W/P/D cache records drop a column the findings silently vanish.
  std::string cache =
      (fs::path(::testing::TempDir()) / "taint_warm.cache").generic_string();
  fs::remove(cache);
  ProjectReport cold = AnalyzeFixture("taintalloc", cache);
  ProjectReport warm = AnalyzeFixture("taintalloc", cache);
  ASSERT_FALSE(cold.findings.empty());
  ASSERT_EQ(warm.findings.size(), cold.findings.size());
  for (size_t i = 0; i < cold.findings.size(); ++i) {
    EXPECT_EQ(FormatFinding(warm.findings[i]),
              FormatFinding(cold.findings[i]));
  }
  EXPECT_GT(warm.taint.sink_params, 0u);
}

TEST(ProjectLintTest, ChangedOnlyModeReportsTouchedFilesOnly) {
  fs::path root = CloneFixture("nodiscard", "changed_only");
  std::string cache = (root / "cache.bin").generic_string();

  ProjectOptions options;
  options.project_dir = "src";
  options.layers_path = (root / "layers.txt").generic_string();
  options.cache_path = cache;
  auto first = AnalyzeProject(root.generic_string(), options);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->findings.size(), 2u);  // both discards, cold run

  options.changed_only = true;
  auto quiet = AnalyzeProject(root.generic_string(), options);
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(quiet->findings.empty()) << "nothing changed since the cache";

  {
    std::ofstream touch(root / "src/client/client.h", std::ios::app);
    touch << "// touched\n";
  }
  auto after = AnalyzeProject(root.generic_string(), options);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->findings.size(), 2u);  // client.h holds both findings
  for (const Finding& f : after->findings) {
    EXPECT_EQ(f.file, "src/client/client.h");
  }
}

// ---------------------------------------------------------------------------
// Pass registry + suppression integration

TEST(ProjectLintTest, PassIdsAreKnownToSuppressions) {
  for (const PassInfo& pass : PassRegistry()) {
    EXPECT_TRUE(KnownRule(pass.id)) << pass.id;
  }
  auto sup = Suppressions::Parse("lock-order-cycle src/locks/\n");
  EXPECT_TRUE(sup.ok()) << "pass ids must be valid in suppressions.txt";
}

TEST(ProjectLintTest, InlineAllowSilencesAPassFinding) {
  fs::path root = CloneFixture("nodiscard", "inline_allow");
  // Add an allowance to one of the two discard lines.
  fs::path client = root / "src/client/client.h";
  std::string text = ReadFileOrDie(client);
  const std::string needle = "  LoadIndex();";
  auto at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(),
               "  LoadIndex();  // lint:allow(discarded-result)");
  {
    std::ofstream out(client, std::ios::trunc);
    out << text;
  }
  ProjectOptions options;
  options.project_dir = "src";
  options.layers_path = (root / "layers.txt").generic_string();
  auto report = AnalyzeProject(root.generic_string(), options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].message.find("result of 'SaveIndex'"), 0u)
      << report->findings[0].message;
}

TEST(ProjectLintTest, FileSuppressionSilencesAPassFinding) {
  Suppressions sup;
  sup.Add("discarded-result", "src/client/");
  ProjectOptions options;
  options.project_dir = "src";
  options.layers_path =
      (FixtureRoot("nodiscard") / "layers.txt").generic_string();
  options.suppressions = &sup;
  auto report =
      AnalyzeProject(FixtureRoot("nodiscard").generic_string(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->findings.empty());
}

}  // namespace
}  // namespace alicoco::lint
