#include "nn/crf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace alicoco::nn {
namespace {

TEST(CrfTest, ViterbiFollowsDominantEmissions) {
  Rng rng(1);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", 3, &rng);
  // Near-zero random transitions; strong emissions decide.
  Tensor e(4, 3);
  e.At(0, 1) = 5;
  e.At(1, 0) = 5;
  e.At(2, 2) = 5;
  e.At(3, 2) = 5;
  auto path = crf.Viterbi(e);
  EXPECT_EQ(path, (std::vector<int>{1, 0, 2, 2}));
}

TEST(CrfTest, TransitionsCanOverrideWeakEmissions) {
  Rng rng(2);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", 2, &rng);
  Parameter* trans = store.Get("crf.trans");
  // Label 0 strongly repels itself; 0 -> 1 strongly favored.
  trans->value.At(0, 0) = -10;
  trans->value.At(0, 1) = 10;
  trans->value.At(1, 1) = 10;
  Tensor e(3, 2);
  e.At(0, 0) = 2;  // slight pull toward 0 everywhere
  e.At(1, 0) = 0.1f;
  e.At(2, 0) = 0.1f;
  auto path = crf.Viterbi(e);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 1);
  EXPECT_EQ(path[2], 1);
}

TEST(CrfTest, NllDecreasesWithBetterEmissions) {
  Rng rng(3);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", 2, &rng);
  std::vector<int> gold = {0, 1};
  Tensor weak(2, 2);
  Tensor strong(2, 2);
  strong.At(0, 0) = 4;
  strong.At(1, 1) = 4;
  Graph g;
  float weak_nll = g.Value(crf.NegLogLikelihood(&g, g.Input(weak), gold))
                       .At(0, 0);
  float strong_nll =
      g.Value(crf.NegLogLikelihood(&g, g.Input(strong), gold)).At(0, 0);
  EXPECT_GT(weak_nll, strong_nll);
  EXPECT_GE(strong_nll, 0.0f);
}

TEST(CrfTest, NllIsNonNegative) {
  Rng rng(4);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", 3, &rng);
  Graph g;
  Tensor e = Tensor::Randn(5, 3, 1.0f, &rng);
  std::vector<int> gold = {0, 1, 2, 1, 0};
  float nll = g.Value(crf.NegLogLikelihood(&g, g.Input(e), gold)).At(0, 0);
  EXPECT_GE(nll, -1e-5f);
}

TEST(CrfTest, FuzzyLossAtMostStrictLoss) {
  // Marginalizing over a superset of paths can only increase the numerator,
  // so fuzzy NLL <= strict NLL for any containing label set.
  Rng rng(5);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", 3, &rng);
  Tensor e = Tensor::Randn(4, 3, 1.0f, &rng);
  std::vector<int> gold = {2, 0, 1, 1};
  std::vector<std::vector<int>> fuzzy = {{2}, {0, 1}, {1}, {1, 2}};
  Graph g;
  float strict = g.Value(crf.NegLogLikelihood(&g, g.Input(e), gold)).At(0, 0);
  float relaxed =
      g.Value(crf.FuzzyNegLogLikelihood(&g, g.Input(e), fuzzy)).At(0, 0);
  EXPECT_LE(relaxed, strict + 1e-5f);
}

TEST(CrfTest, FuzzyWithFullSetsIsZeroLoss) {
  // Numerator lattice == full lattice => loss = 0.
  Rng rng(6);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", 2, &rng);
  Tensor e = Tensor::Randn(3, 2, 1.0f, &rng);
  std::vector<std::vector<int>> all = {{0, 1}, {0, 1}, {0, 1}};
  Graph g;
  float loss = g.Value(crf.FuzzyNegLogLikelihood(&g, g.Input(e), all)).At(0, 0);
  EXPECT_NEAR(loss, 0.0f, 1e-4f);
}

TEST(CrfTest, SingleTimestepSequence) {
  Rng rng(7);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", 3, &rng);
  Tensor e(1, 3);
  e.At(0, 2) = 3;
  auto path = crf.Viterbi(e);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 2);
  Graph g;
  float nll =
      g.Value(crf.NegLogLikelihood(&g, g.Input(e), {2})).At(0, 0);
  EXPECT_GE(nll, 0.0f);
  EXPECT_LT(nll, 1.0f);  // label 2 dominates
}

TEST(CrfTest, TrainingSeparatesAlternatingPattern) {
  // Emissions are uninformative; only transitions can learn "alternate 0/1".
  Rng rng(8);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", 2, &rng);
  std::vector<int> gold = {0, 1, 0, 1, 0, 1};
  Tensor e(6, 2);  // all-zero emissions
  for (int step = 0; step < 200; ++step) {
    store.ZeroGrad();
    Graph g;
    g.Backward(crf.NegLogLikelihood(&g, g.Input(e), gold));
    for (const auto& p : store.params()) p->value.Axpy(-0.5f, p->grad);
  }
  EXPECT_EQ(crf.Viterbi(e), gold);
}

}  // namespace
}  // namespace alicoco::nn
