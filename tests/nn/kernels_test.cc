// Equivalence tests for the blocked GEMM kernels against the naive
// reference implementations, over shapes chosen to hit every edge of the
// blocking scheme: single rows/columns, sizes straddling the register tile
// (4) and the cache tiles (64 x 128), and a handful of random shapes.
// Blocked and naive kernels sum in different orders, so comparisons use a
// relative tolerance.

#include "nn/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.h"

namespace alicoco::nn::kernels {
namespace {

struct Shape {
  int m, k, n;
};

std::vector<float> RandomVec(size_t size, Rng* rng) {
  std::vector<float> v(size);
  for (auto& x : v) x = rng->UniformFloat(-1.0f, 1.0f);
  return v;
}

void ExpectClose(const std::vector<float>& want, const std::vector<float>& got,
                 int m, int k) {
  ASSERT_EQ(want.size(), got.size());
  // Error grows with the reduction length; scale the tolerance by k.
  const float tol = 1e-5f * static_cast<float>(k + 8);
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(want[i], got[i], tol + 1e-4f * std::fabs(want[i]))
        << "index " << i << " of " << m << "x? result";
  }
}

const Shape kShapes[] = {
    {1, 1, 1},    {1, 7, 1},    {7, 1, 1},   {1, 1, 7},    {4, 4, 4},
    {3, 5, 2},    {5, 64, 128}, {4, 65, 129}, {8, 63, 127}, {2, 24, 96},
    {1, 24, 96},  {17, 31, 23}, {6, 130, 5},  {9, 3, 260},  {13, 200, 40},
};

TEST(KernelsTest, GemmAccumMatchesNaive) {
  Rng rng(101);
  for (const Shape& s : kShapes) {
    auto a = RandomVec(static_cast<size_t>(s.m) * s.k, &rng);
    auto b = RandomVec(static_cast<size_t>(s.k) * s.n, &rng);
    auto c0 = RandomVec(static_cast<size_t>(s.m) * s.n, &rng);
    auto want = c0, got = c0;
    naive::GemmAccum(s.m, s.k, s.n, a.data(), b.data(), want.data());
    GemmAccum(s.m, s.k, s.n, a.data(), b.data(), got.data());
    ExpectClose(want, got, s.m, s.k);
  }
}

TEST(KernelsTest, GemmTransBAccumMatchesNaive) {
  Rng rng(102);
  for (const Shape& s : kShapes) {
    auto a = RandomVec(static_cast<size_t>(s.m) * s.k, &rng);
    auto b = RandomVec(static_cast<size_t>(s.n) * s.k, &rng);  // B is n x k
    auto c0 = RandomVec(static_cast<size_t>(s.m) * s.n, &rng);
    auto want = c0, got = c0;
    naive::GemmTransBAccum(s.m, s.k, s.n, a.data(), b.data(), want.data());
    GemmTransBAccum(s.m, s.k, s.n, a.data(), b.data(), got.data());
    ExpectClose(want, got, s.m, s.k);
  }
}

TEST(KernelsTest, GemmTransAAccumMatchesNaive) {
  Rng rng(103);
  for (const Shape& s : kShapes) {
    auto a = RandomVec(static_cast<size_t>(s.m) * s.k, &rng);  // A is m x k
    auto b = RandomVec(static_cast<size_t>(s.m) * s.n, &rng);
    auto c0 = RandomVec(static_cast<size_t>(s.k) * s.n, &rng);  // C is k x n
    auto want = c0, got = c0;
    naive::GemmTransAAccum(s.m, s.k, s.n, a.data(), b.data(), want.data());
    GemmTransAAccum(s.m, s.k, s.n, a.data(), b.data(), got.data());
    ExpectClose(want, got, s.k, s.m);
  }
}

TEST(KernelsTest, AddBiasVariantsMatchScalarMath) {
  Rng rng(104);
  const int rows = 5, cols = 33;
  auto x = RandomVec(static_cast<size_t>(rows) * cols, &rng);
  auto bias = RandomVec(cols, &rng);
  std::vector<float> plain(x.size()), tanh_out(x.size()), relu(x.size());
  AddBias(rows, cols, x.data(), bias.data(), plain.data());
  AddBiasTanh(rows, cols, x.data(), bias.data(), tanh_out.data());
  AddBiasRelu(rows, cols, x.data(), bias.data(), relu.data());
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const float v = x[static_cast<size_t>(i) * cols + j] + bias[j];
      const size_t at = static_cast<size_t>(i) * cols + j;
      EXPECT_FLOAT_EQ(plain[at], v);
      EXPECT_NEAR(tanh_out[at], std::tanh(v), 1e-6f);
      EXPECT_FLOAT_EQ(relu[at], v > 0.0f ? v : 0.0f);
    }
  }
}

TEST(KernelsTest, ForcedScalarTierMatchesDispatched) {
  // Whatever tier CPUID picked, pinning the scalar table must keep every
  // dispatched kernel equivalent (up to float reassociation) — this is the
  // same guarantee CI checks by re-running the suite with
  // ALICOCO_SIMD=scalar, exercised here in-process via the test hook.
  Rng rng(106);
  const Shape s{9, 70, 33};  // straddles the 8-wide vector and tail lanes
  auto a = RandomVec(static_cast<size_t>(s.m) * s.k, &rng);
  auto b = RandomVec(static_cast<size_t>(s.k) * s.n, &rng);
  auto c0 = RandomVec(static_cast<size_t>(s.m) * s.n, &rng);
  auto dispatched = c0;
  GemmAccum(s.m, s.k, s.n, a.data(), b.data(), dispatched.data());
  ForceScalarKernels(true);
  EXPECT_STREQ(ActiveKernelTier(), "scalar");
  auto forced = c0;
  GemmAccum(s.m, s.k, s.n, a.data(), b.data(), forced.data());
  ForceScalarKernels(false);
  // Un-forcing restores the startup choice: avx2 on capable hardware
  // unless ALICOCO_SIMD=scalar pinned the portable tier for the process.
  const char* env = std::getenv("ALICOCO_SIMD");
  const bool env_pinned = env != nullptr && std::strcmp(env, "scalar") == 0;
  if (KernelsHaveAvx2() && !env_pinned) {
    EXPECT_STREQ(ActiveKernelTier(), "avx2");
  } else {
    EXPECT_STREQ(ActiveKernelTier(), "scalar");
  }
  ExpectClose(forced, dispatched, s.m, s.k);
}

TEST(KernelsTest, AddBiasInPlaceAliasing) {
  // The fused affine ops apply the bias in place (out == x); the kernels
  // must tolerate full aliasing.
  Rng rng(105);
  const int rows = 3, cols = 17;
  auto x = RandomVec(static_cast<size_t>(rows) * cols, &rng);
  auto bias = RandomVec(cols, &rng);
  auto expect = x;
  AddBias(rows, cols, expect.data(), bias.data(), expect.data());
  auto inplace = x;
  AddBias(rows, cols, inplace.data(), bias.data(), inplace.data());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(inplace[i], x[i] + bias[i % cols]);
    EXPECT_FLOAT_EQ(inplace[i], expect[i]);
  }
}

}  // namespace
}  // namespace alicoco::nn::kernels
