#include "nn/rnn.h"

#include <gtest/gtest.h>

#include <cmath>

namespace alicoco::nn {
namespace {

TEST(LstmCellTest, StateShapes) {
  Rng rng(1);
  ParameterStore store;
  LstmCell cell(&store, "c", 3, 5, &rng);
  Graph g;
  auto s0 = cell.Initial(&g);
  EXPECT_EQ(g.Value(s0.h).cols(), 5);
  auto s1 = cell.Step(&g, g.Input(Tensor::Randn(1, 3, 1.0f, &rng)), s0);
  EXPECT_EQ(g.Value(s1.h).rows(), 1);
  EXPECT_EQ(g.Value(s1.h).cols(), 5);
  EXPECT_EQ(g.Value(s1.c).cols(), 5);
}

TEST(LstmCellTest, ForgetBiasInitialized) {
  Rng rng(2);
  ParameterStore store;
  LstmCell cell(&store, "c", 2, 3, &rng);
  Parameter* b = store.Get("c.b");
  ASSERT_NE(b, nullptr);
  // Gate order [i, f, o, g]: forget block = cols [3, 6).
  for (int j = 3; j < 6; ++j) EXPECT_FLOAT_EQ(b->value.At(0, j), 1.0f);
  EXPECT_FLOAT_EQ(b->value.At(0, 0), 0.0f);
}

TEST(LstmCellTest, StatefulAcrossSteps) {
  Rng rng(3);
  ParameterStore store;
  LstmCell cell(&store, "c", 2, 4, &rng);
  Graph g;
  Tensor x = Tensor::Randn(1, 2, 1.0f, &rng);
  auto s0 = cell.Initial(&g);
  auto s1 = cell.Step(&g, g.Input(x), s0);
  auto s2 = cell.Step(&g, g.Input(x), s1);
  // Same input, different hidden state => outputs differ.
  bool differ = false;
  for (int j = 0; j < 4; ++j) {
    if (std::fabs(g.Value(s1.h).At(0, j) - g.Value(s2.h).At(0, j)) > 1e-7f) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(BiLstmTest, OutputShape) {
  Rng rng(4);
  ParameterStore store;
  BiLstm bi(&store, "bi", 3, 4, &rng);
  EXPECT_EQ(bi.output_dim(), 8);
  Graph g;
  auto out = bi.Run(&g, g.Input(Tensor::Randn(6, 3, 0.5f, &rng)));
  EXPECT_EQ(g.Value(out).rows(), 6);
  EXPECT_EQ(g.Value(out).cols(), 8);
}

TEST(BiLstmTest, BackwardHalfSeesFuture) {
  // Change the LAST input token; the backward state at position 0 must move.
  Rng rng(5);
  ParameterStore store;
  BiLstm bi(&store, "bi", 2, 3, &rng);
  Tensor x1 = Tensor::Randn(4, 2, 0.8f, &rng);
  Tensor x2 = x1;
  x2.At(3, 0) += 2.0f;
  Graph g1, g2;
  auto o1 = bi.Run(&g1, g1.Input(x1));
  auto o2 = bi.Run(&g2, g2.Input(x2));
  // Forward half (cols [0,3)) at t=0 unchanged; backward half changes.
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(g1.Value(o1).At(0, j), g2.Value(o2).At(0, j));
  }
  bool backward_changed = false;
  for (int j = 3; j < 6; ++j) {
    if (std::fabs(g1.Value(o1).At(0, j) - g2.Value(o2).At(0, j)) > 1e-6f) {
      backward_changed = true;
    }
  }
  EXPECT_TRUE(backward_changed);
}

TEST(BiLstmTest, SingleTokenSequence) {
  Rng rng(6);
  ParameterStore store;
  BiLstm bi(&store, "bi", 2, 3, &rng);
  Graph g;
  auto out = bi.Run(&g, g.Input(Tensor::Randn(1, 2, 0.5f, &rng)));
  EXPECT_EQ(g.Value(out).rows(), 1);
  EXPECT_EQ(g.Value(out).cols(), 6);
}

}  // namespace
}  // namespace alicoco::nn
