// Property-based and parameterized sweeps over the neural substrate:
// the CRF losses are validated against brute-force enumeration of all
// label sequences, and core ops are gradient-checked across shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/crf.h"
#include "nn/graph.h"
#include "nn/rnn.h"

namespace alicoco::nn {
namespace {

// ---------- CRF vs brute force ----------

struct CrfCase {
  int timesteps;
  int labels;
  uint64_t seed;
};

class CrfBruteForceTest : public ::testing::TestWithParam<CrfCase> {};

// Enumerates all L^T paths and sums exp(score) directly.
double BruteForceLogZ(const Tensor& emissions, const Tensor& trans,
                      const Tensor& start, const Tensor& end,
                      const std::vector<std::vector<int>>* allowed) {
  int t_len = emissions.rows();
  int l = emissions.cols();
  std::vector<int> path(static_cast<size_t>(t_len), 0);
  double total = 0.0;
  for (;;) {
    bool ok = true;
    if (allowed != nullptr) {
      for (int t = 0; t < t_len && ok; ++t) {
        const auto& set = (*allowed)[static_cast<size_t>(t)];
        ok = std::find(set.begin(), set.end(),
                       path[static_cast<size_t>(t)]) != set.end();
      }
    }
    if (ok) {
      double score = start.At(0, path[0]) + end.At(0, path.back());
      for (int t = 0; t < t_len; ++t) {
        score += emissions.At(t, path[static_cast<size_t>(t)]);
        if (t > 0) {
          score += trans.At(path[static_cast<size_t>(t - 1)],
                            path[static_cast<size_t>(t)]);
        }
      }
      total += std::exp(score);
    }
    // Next path in lexicographic order.
    int pos = t_len - 1;
    while (pos >= 0 && ++path[static_cast<size_t>(pos)] == l) {
      path[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  return std::log(total);
}

TEST_P(CrfBruteForceTest, NllMatchesEnumeration) {
  const CrfCase& param = GetParam();
  Rng rng(param.seed);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", param.labels, &rng);
  Tensor e = Tensor::Randn(param.timesteps, param.labels, 0.8f, &rng);
  const Tensor& trans = store.Get("crf.trans")->value;
  const Tensor& start = store.Get("crf.start")->value;
  const Tensor& end = store.Get("crf.end")->value;

  // Gold path.
  std::vector<int> gold(static_cast<size_t>(param.timesteps));
  for (auto& y : gold) y = static_cast<int>(rng.Uniform(param.labels));
  std::vector<std::vector<int>> gold_sets;
  for (int y : gold) gold_sets.push_back({y});

  double log_z = BruteForceLogZ(e, trans, start, end, nullptr);
  double log_num = BruteForceLogZ(e, trans, start, end, &gold_sets);
  double expected_nll = log_z - log_num;

  Graph g;
  float nll = g.Value(crf.NegLogLikelihood(&g, g.Input(e), gold)).At(0, 0);
  EXPECT_NEAR(nll, expected_nll, 1e-3)
      << "T=" << param.timesteps << " L=" << param.labels;
}

TEST_P(CrfBruteForceTest, FuzzyNllMatchesEnumeration) {
  const CrfCase& param = GetParam();
  Rng rng(param.seed ^ 0xF00D);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", param.labels, &rng);
  Tensor e = Tensor::Randn(param.timesteps, param.labels, 0.8f, &rng);
  const Tensor& trans = store.Get("crf.trans")->value;
  const Tensor& start = store.Get("crf.start")->value;
  const Tensor& end = store.Get("crf.end")->value;

  // Random non-empty allowed sets.
  std::vector<std::vector<int>> allowed(
      static_cast<size_t>(param.timesteps));
  for (auto& set : allowed) {
    for (int y = 0; y < param.labels; ++y) {
      if (rng.Bernoulli(0.5)) set.push_back(y);
    }
    if (set.empty()) set.push_back(static_cast<int>(rng.Uniform(param.labels)));
  }

  double log_z = BruteForceLogZ(e, trans, start, end, nullptr);
  double log_num = BruteForceLogZ(e, trans, start, end, &allowed);
  double expected = log_z - log_num;

  Graph g;
  float nll =
      g.Value(crf.FuzzyNegLogLikelihood(&g, g.Input(e), allowed)).At(0, 0);
  EXPECT_NEAR(nll, expected, 1e-3);
}

TEST_P(CrfBruteForceTest, ViterbiFindsArgmaxPath) {
  const CrfCase& param = GetParam();
  Rng rng(param.seed ^ 0xBEEF);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", param.labels, &rng);
  Tensor e = Tensor::Randn(param.timesteps, param.labels, 1.0f, &rng);
  const Tensor& trans = store.Get("crf.trans")->value;
  const Tensor& start = store.Get("crf.start")->value;
  const Tensor& end = store.Get("crf.end")->value;

  auto path_score = [&](const std::vector<int>& path) {
    double score = start.At(0, path[0]) + end.At(0, path.back());
    for (int t = 0; t < param.timesteps; ++t) {
      score += e.At(t, path[static_cast<size_t>(t)]);
      if (t > 0) {
        score += trans.At(path[static_cast<size_t>(t - 1)],
                          path[static_cast<size_t>(t)]);
      }
    }
    return score;
  };

  // Brute-force best path.
  std::vector<int> best(static_cast<size_t>(param.timesteps), 0);
  std::vector<int> cur = best;
  double best_score = path_score(best);
  for (;;) {
    int pos = param.timesteps - 1;
    while (pos >= 0 && ++cur[static_cast<size_t>(pos)] == param.labels) {
      cur[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
    double s = path_score(cur);
    if (s > best_score) {
      best_score = s;
      best = cur;
    }
  }
  auto viterbi = crf.Viterbi(e);
  EXPECT_NEAR(path_score(viterbi), best_score, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    SmallLattices, CrfBruteForceTest,
    ::testing::Values(CrfCase{1, 2, 1}, CrfCase{2, 2, 2}, CrfCase{3, 2, 3},
                      CrfCase{4, 3, 4}, CrfCase{5, 3, 5}, CrfCase{3, 4, 6},
                      CrfCase{6, 2, 7}, CrfCase{2, 5, 8}),
    [](const ::testing::TestParamInfo<CrfCase>& info) {
      return "T" + std::to_string(info.param.timesteps) + "L" +
             std::to_string(info.param.labels);
    });

// ---------- parameterized gradient sweep over shapes ----------

struct ShapeCase {
  int rows;
  int cols;
};

class OpGradSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(OpGradSweep, ChainedOpsMatchFiniteDifference) {
  const auto& shape = GetParam();
  Rng rng(static_cast<uint64_t>(shape.rows * 131 + shape.cols));
  ParameterStore store;
  Parameter* a = store.Create("a", shape.rows, shape.cols,
                              ParameterStore::Init::kGaussian, &rng, 0.4f);
  Tensor weights = Tensor::Randn(shape.rows, shape.cols, 1.0f, &rng);

  auto loss_fn = [&](Graph* g) {
    Graph::Var x = g->Use(a);
    Graph::Var y = g->Tanh(g->ScalarMul(x, 1.3f));
    Graph::Var z = g->Mul(g->SoftmaxRows(x), g->Input(weights));
    return g->MeanAll(g->Add(y, z));
  };

  store.ZeroGrad();
  {
    Graph g;
    g.Backward(loss_fn(&g));
  }
  Tensor analytic = a->grad;
  const float eps = 1e-3f;
  for (int i = 0; i < shape.rows; ++i) {
    for (int j = 0; j < shape.cols; ++j) {
      float orig = a->value.At(i, j);
      a->value.At(i, j) = orig + eps;
      Graph gp;
      float plus = gp.Value(loss_fn(&gp)).At(0, 0);
      a->value.At(i, j) = orig - eps;
      Graph gm;
      float minus = gm.Value(loss_fn(&gm)).At(0, 0);
      a->value.At(i, j) = orig;
      float numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(analytic.At(i, j), numeric, 2e-2)
          << shape.rows << "x" << shape.cols << " [" << i << "," << j << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, OpGradSweep,
                         ::testing::Values(ShapeCase{1, 1}, ShapeCase{1, 7},
                                           ShapeCase{5, 1}, ShapeCase{3, 4},
                                           ShapeCase{8, 8}),
                         [](const ::testing::TestParamInfo<ShapeCase>& info) {
                           return std::to_string(info.param.rows) + "x" +
                                  std::to_string(info.param.cols);
                         });

// ---------- BiLSTM length sweep ----------

class BiLstmLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BiLstmLengthSweep, OutputShapeAndFiniteness) {
  int t = GetParam();
  Rng rng(static_cast<uint64_t>(t));
  ParameterStore store;
  BiLstm bilstm(&store, "b", 4, 6, &rng);
  Graph g;
  Graph::Var out = bilstm.Run(&g, g.Input(Tensor::Randn(t, 4, 0.8f, &rng)));
  EXPECT_EQ(g.Value(out).rows(), t);
  EXPECT_EQ(g.Value(out).cols(), 12);
  for (size_t i = 0; i < g.Value(out).size(); ++i) {
    EXPECT_TRUE(std::isfinite(g.Value(out).data()[i]));
  }
  // Backward runs without aborting.
  g.Backward(g.MeanAll(out));
}

INSTANTIATE_TEST_SUITE_P(Lengths, BiLstmLengthSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 40));

}  // namespace
}  // namespace alicoco::nn
