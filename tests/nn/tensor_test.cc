#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace alicoco::nn {
namespace {

TEST(TensorTest, ConstructZeroed) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6u);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(t.At(i, j), 0.0f);
  }
}

TEST(TensorTest, FromVectorRowMajor) {
  Tensor t = Tensor::FromVector(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.At(0, 0), 1);
  EXPECT_EQ(t.At(0, 1), 2);
  EXPECT_EQ(t.At(1, 0), 3);
  EXPECT_EQ(t.At(1, 1), 4);
}

TEST(TensorTest, RowPointerMatchesAt) {
  Tensor t = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.Row(1)[2], t.At(1, 2));
}

TEST(TensorTest, AddAxpyScale) {
  Tensor a = Tensor::FromVector(1, 3, {1, 2, 3});
  Tensor b = Tensor::FromVector(1, 3, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a.At(0, 1), 22);
  a.Axpy(-1.0f, b);
  EXPECT_EQ(a.At(0, 1), 2);
  a.Scale(3.0f);
  EXPECT_EQ(a.At(0, 2), 9);
}

TEST(TensorTest, SquaredNorm) {
  Tensor a = Tensor::FromVector(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
}

TEST(TensorTest, RandnAndXavierInRange) {
  Rng rng(7);
  Tensor g = Tensor::Randn(50, 50, 0.1f, &rng);
  double mean = 0;
  for (int i = 0; i < 50; ++i) {
    for (int j = 0; j < 50; ++j) mean += g.At(i, j);
  }
  mean /= 2500;
  EXPECT_NEAR(mean, 0.0, 0.01);

  Tensor x = Tensor::Xavier(10, 20, &rng);
  float bound = std::sqrt(6.0f / 30.0f);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 20; ++j) {
      EXPECT_LE(std::fabs(x.At(i, j)), bound + 1e-6f);
    }
  }
}

TEST(MatMulTest, KnownProduct) {
  Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMulValue(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_EQ(c.At(0, 0), 58);
  EXPECT_EQ(c.At(0, 1), 64);
  EXPECT_EQ(c.At(1, 0), 139);
  EXPECT_EQ(c.At(1, 1), 154);
}

TEST(MatMulTest, TransBAccum) {
  // C (1x2) += A (1x3) * B^T with B (2x3).
  Tensor a = Tensor::FromVector(1, 3, {1, 2, 3});
  Tensor b = Tensor::FromVector(2, 3, {1, 0, 0, 0, 1, 0});
  Tensor c(1, 2);
  MatMulTransBAccum(a, b, &c);
  EXPECT_EQ(c.At(0, 0), 1);
  EXPECT_EQ(c.At(0, 1), 2);
}

TEST(MatMulTest, TransAAccum) {
  // C (3x1) += A^T (3x2 <- A 2x3) * B (2x1).
  Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(2, 1, {1, 1});
  Tensor c(3, 1);
  MatMulTransAAccum(a, b, &c);
  EXPECT_EQ(c.At(0, 0), 5);
  EXPECT_EQ(c.At(1, 0), 7);
  EXPECT_EQ(c.At(2, 0), 9);
}

TEST(MatMulTest, AccumAddsOntoExisting) {
  Tensor a = Tensor::FromVector(1, 1, {2});
  Tensor b = Tensor::FromVector(1, 1, {3});
  Tensor c = Tensor::FromVector(1, 1, {10});
  MatMulAccum(a, b, &c);
  EXPECT_EQ(c.At(0, 0), 16);
}

}  // namespace
}  // namespace alicoco::nn
