// End-to-end learning sanity checks: small models must actually fit small
// datasets on the autodiff substrate.

#include <gtest/gtest.h>

#include "nn/crf.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"

namespace alicoco::nn {
namespace {

TEST(TrainingTest, MlpLearnsXor) {
  Rng rng(1);
  ParameterStore store;
  Mlp mlp(&store, "mlp", {2, 8, 1}, &rng);
  Adam adam(0.05f);
  std::vector<std::pair<Tensor, float>> data = {
      {Tensor::FromVector(1, 2, {0, 0}), 0},
      {Tensor::FromVector(1, 2, {0, 1}), 1},
      {Tensor::FromVector(1, 2, {1, 0}), 1},
      {Tensor::FromVector(1, 2, {1, 1}), 0},
  };
  for (int epoch = 0; epoch < 400; ++epoch) {
    store.ZeroGrad();
    for (const auto& [x, y] : data) {
      Graph g;
      Graph::Var logit = mlp.Apply(&g, g.Input(x));
      Tensor target(1, 1);
      target.At(0, 0) = y;
      g.Backward(g.SigmoidCrossEntropyWithLogits(logit, target));
    }
    adam.Step(&store);
  }
  for (const auto& [x, y] : data) {
    Graph g;
    float logit = g.Value(mlp.Apply(&g, g.Input(x))).At(0, 0);
    EXPECT_EQ(logit > 0, y > 0.5f) << "input (" << x.At(0, 0) << ","
                                   << x.At(0, 1) << ")";
  }
}

TEST(TrainingTest, BiLstmCrfLearnsToyTagging) {
  // Vocabulary: 0 pad, 1 "the", 2 "red"(ADJ), 3 "dress"(NOUN), 4 "runs"(V).
  // Task: tag ADJ/NOUN/OTHER; needs context only mildly.
  Rng rng(2);
  ParameterStore store;
  Embedding emb(&store, "emb", 5, 8, &rng);
  BiLstm bilstm(&store, "bi", 8, 8, &rng);
  Linear proj(&store, "proj", 16, 3, &rng);
  LinearChainCrf crf(&store, "crf", 3, &rng);
  Adam adam(0.03f);

  std::vector<std::pair<std::vector<int>, std::vector<int>>> data = {
      {{1, 2, 3}, {2, 0, 1}},  // the red dress -> O ADJ NOUN
      {{2, 3, 4}, {0, 1, 2}},  // red dress runs -> ADJ NOUN O
      {{3, 4}, {1, 2}},        // dress runs -> NOUN O
      {{1, 3}, {2, 1}},        // the dress -> O NOUN
  };
  for (int epoch = 0; epoch < 120; ++epoch) {
    store.ZeroGrad();
    for (const auto& [ids, gold] : data) {
      Graph g;
      Graph::Var h = bilstm.Run(&g, emb.Lookup(&g, ids));
      Graph::Var e = proj.Apply(&g, h);
      g.Backward(crf.NegLogLikelihood(&g, e, gold));
    }
    adam.Step(&store);
  }
  int correct = 0, total = 0;
  for (const auto& [ids, gold] : data) {
    Graph g;
    Graph::Var h = bilstm.Run(&g, emb.Lookup(&g, ids));
    Graph::Var e = proj.Apply(&g, h);
    auto pred = crf.Viterbi(g.Value(e));
    for (size_t t = 0; t < gold.size(); ++t) {
      total += 1;
      correct += pred[t] == gold[t];
    }
  }
  EXPECT_EQ(correct, total);
}

TEST(TrainingTest, AttentionMatcherLearnsPairRule) {
  // Score pairs (query, doc): positive iff the query id is even AND the doc
  // contains at least one id < 6 — a conjunctive rule the additive
  // attention (Eq. 11) plus max-pooling can represent.
  Rng rng(3);
  ParameterStore store;
  Embedding emb(&store, "emb", 10, 8, &rng);
  Linear w1(&store, "w1", 8, 8, &rng);
  Linear w2(&store, "w2", 8, 8, &rng);
  Parameter* v = store.Create("v", 8, 1, ParameterStore::Init::kXavier, &rng);
  Mlp head(&store, "head", {1, 4, 1}, &rng);
  Adam adam(0.05f);

  auto forward = [&](Graph* g, int query, const std::vector<int>& doc) {
    Graph::Var q = w1.Apply(g, emb.Lookup(g, {query}));
    Graph::Var d = w2.Apply(g, emb.Lookup(g, doc));
    Graph::Var att = g->AdditiveAttention(q, d, g->Use(v));  // 1 x len
    Graph::Var best = g->MaxRows(g->Transpose(att));         // 1 x 1
    return head.Apply(g, best);
  };

  Rng data_rng(4);
  std::vector<std::tuple<int, std::vector<int>, float>> data;
  for (int i = 0; i < 200; ++i) {
    int q = 2 + static_cast<int>(data_rng.Uniform(8));
    std::vector<int> doc;
    for (int j = 0; j < 4; ++j) {
      doc.push_back(2 + static_cast<int>(data_rng.Uniform(8)));
    }
    bool has_low = false;
    for (int d : doc) has_low |= d < 6;
    bool label = (q % 2 == 0) && has_low;
    data.emplace_back(q, doc, label ? 1.0f : 0.0f);
  }
  for (int epoch = 0; epoch < 80; ++epoch) {
    store.ZeroGrad();
    int n = 0;
    for (const auto& [q, doc, y] : data) {
      Graph g;
      Tensor target(1, 1);
      target.At(0, 0) = y;
      g.Backward(g.SigmoidCrossEntropyWithLogits(forward(&g, q, doc), target));
      if (++n % 16 == 0) {
        adam.Step(&store);
        store.ZeroGrad();
      }
    }
    adam.Step(&store);
  }
  int correct = 0;
  for (const auto& [q, doc, y] : data) {
    Graph g;
    float logit = g.Value(forward(&g, q, doc)).At(0, 0);
    correct += (logit > 0) == (y > 0.5f);
  }
  EXPECT_GT(correct, 180);  // >90% train accuracy
}

}  // namespace
}  // namespace alicoco::nn
