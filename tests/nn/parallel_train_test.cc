// Tests for data-parallel gradient accumulation: GradientBuffer reduction,
// parallel-vs-sequential equivalence of a real training step, and a stress
// test sized for ThreadSanitizer (many concurrent backward passes against
// one shared ParameterStore).

#include "nn/parallel_train.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace alicoco::nn {
namespace {

TEST(ParallelTrainingTest, GradientBufferReducesIntoParameter) {
  Rng rng(7);
  ParameterStore store;
  Parameter* p = store.Create("p", 2, 3, ParameterStore::Init::kGaussian,
                              &rng, 1.0f);
  store.ZeroGrad();
  GradientBuffer buf_a, buf_b;
  buf_a.GradFor(p)->At(0, 0) = 1.5f;
  buf_b.GradFor(p)->At(0, 0) = 2.0f;
  buf_b.GradFor(p)->At(1, 2) = -1.0f;
  buf_a.ReduceInto();
  buf_b.ReduceInto();
  EXPECT_FLOAT_EQ(p->grad.At(0, 0), 3.5f);
  EXPECT_FLOAT_EQ(p->grad.At(1, 2), -1.0f);
  // Buffers are zeroed by the reduction: reducing again is a no-op.
  buf_a.ReduceInto();
  EXPECT_FLOAT_EQ(p->grad.At(0, 0), 3.5f);
}

TEST(ParallelTrainingTest, ExampleSeedIsPerExample) {
  EXPECT_EQ(ExampleSeed(1, 0, 0), ExampleSeed(1, 0, 0));
  EXPECT_NE(ExampleSeed(1, 0, 0), ExampleSeed(1, 0, 1));
  EXPECT_NE(ExampleSeed(1, 0, 0), ExampleSeed(1, 1, 0));
  EXPECT_NE(ExampleSeed(1, 0, 0), ExampleSeed(2, 0, 0));
}

// One batch through a small model: the pooled path must produce the same
// batch gradient as the sequential path (up to float summation order).
TEST(ParallelTrainingTest, PooledBatchMatchesSequential) {
  const int kIn = 6, kOut = 4, kBatch = 13;
  auto build_inputs = [&] {
    Rng rng(21);
    std::vector<Tensor> xs;
    for (int i = 0; i < kBatch; ++i) {
      xs.push_back(Tensor::Randn(1, kIn, 1.0f, &rng));
    }
    return xs;
  };
  auto run = [&](ThreadPool* pool, std::vector<float>* grads) -> float {
    Rng rng(20);
    ParameterStore store;
    Linear fc(&store, "fc", kIn, kOut, &rng);
    std::vector<Tensor> xs = build_inputs();
    store.ZeroGrad();
    ParallelTrainer trainer(pool);
    float loss = trainer.AccumulateBatch(
        static_cast<size_t>(kBatch), [&](Graph* g, size_t i) -> float {
          Graph::Var y = fc.ApplyTanh(g, g->Input(xs[i]));
          Graph::Var l = g->MeanAll(g->Mul(y, y));
          g->Backward(l);
          return g->Value(l).At(0, 0);
        });
    for (const auto& p : store.params()) {
      for (size_t i = 0; i < p->grad.size(); ++i) {
        grads->push_back(p->grad.data()[i]);
      }
    }
    return loss;
  };

  std::vector<float> seq_grads, par_grads;
  float seq_loss = run(nullptr, &seq_grads);
  ThreadPool pool(4);
  float par_loss = run(&pool, &par_grads);

  EXPECT_NEAR(seq_loss, par_loss, 1e-4f * std::fabs(seq_loss) + 1e-6f);
  ASSERT_EQ(seq_grads.size(), par_grads.size());
  for (size_t i = 0; i < seq_grads.size(); ++i) {
    EXPECT_NEAR(seq_grads[i], par_grads[i],
                1e-4f * std::fabs(seq_grads[i]) + 1e-6f);
  }
}

// TSan stress: several epochs of pooled minibatches over a model with an
// embedding table (scatter-add gradients) and dense layers. Any gradient
// write that bypasses the per-shard buffers is a data race on the shared
// parameters and shows up under -fsanitize=thread.
TEST(ParallelTrainingTest, StressConcurrentGradientAccumulation) {
  const int kVocab = 40, kDim = 8, kBatch = 16, kSteps = 12;
  Rng rng(31);
  ParameterStore store;
  Embedding emb(&store, "emb", kVocab, kDim, &rng);
  Linear fc(&store, "fc", kDim, 1, &rng);
  Adam adam(0.05f);
  ThreadPool pool(4);
  ParallelTrainer trainer(&pool);

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < kSteps; ++step) {
    store.ZeroGrad();
    float loss = trainer.AccumulateBatch(
        static_cast<size_t>(kBatch), [&](Graph* g, size_t i) -> float {
          // Fixed example set (seed does not depend on step): the model
          // memorizes 16 examples, so the loss reliably decreases.
          Rng ex_rng(ExampleSeed(99, 0, i));
          std::vector<int> ids;
          for (int t = 0; t < 5; ++t) {
            ids.push_back(static_cast<int>(ex_rng.Uniform(kVocab)));
          }
          Graph::Var h = g->MeanRows(emb.Lookup(g, ids));
          Graph::Var logit = fc.Apply(g, h);
          Tensor target(1, 1);
          target.At(0, 0) = static_cast<float>(i % 2);
          Graph::Var l = g->SigmoidCrossEntropyWithLogits(logit, target);
          g->Backward(l);
          return g->Value(l).At(0, 0);
        });
    if (step == 0) first_loss = loss;
    last_loss = loss;
    adam.Step(&store);
  }
  EXPECT_TRUE(std::isfinite(last_loss));
  EXPECT_LT(last_loss, first_loss);  // it memorizes the fixed batch
}

}  // namespace
}  // namespace alicoco::nn
