// Numerical gradient checks for every differentiable op and for the CRF
// losses. Each check perturbs one parameter entry at a time and compares the
// central finite difference against the analytic gradient.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/crf.h"
#include "nn/graph.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace alicoco::nn {
namespace {

// Builds a scalar loss from the parameters in `store` and returns it.
using LossBuilder = std::function<Graph::Var(Graph*)>;

// Verifies analytic gradients of every parameter against finite differences.
void CheckGradients(ParameterStore* store, const LossBuilder& build,
                    float eps = 1e-3f, float tol = 2e-2f) {
  // Analytic pass.
  store->ZeroGrad();
  {
    Graph g;
    g.Backward(build(&g));
  }
  for (const auto& p : store->params()) {
    Tensor analytic = p->grad;
    for (int i = 0; i < p->value.rows(); ++i) {
      for (int j = 0; j < p->value.cols(); ++j) {
        float orig = p->value.At(i, j);
        p->value.At(i, j) = orig + eps;
        float plus;
        {
          Graph g;
          plus = g.Value(build(&g)).At(0, 0);
        }
        p->value.At(i, j) = orig - eps;
        float minus;
        {
          Graph g;
          minus = g.Value(build(&g)).At(0, 0);
        }
        p->value.At(i, j) = orig;
        float numeric = (plus - minus) / (2 * eps);
        float a = analytic.At(i, j);
        float denom = std::max({std::fabs(a), std::fabs(numeric), 1.0f});
        EXPECT_NEAR(a / denom, numeric / denom, tol)
            << p->name << "[" << i << "," << j << "] analytic=" << a
            << " numeric=" << numeric;
      }
    }
  }
}

Tensor Pattern(int rows, int cols, float scale = 0.3f) {
  Tensor t(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      t.At(i, j) = scale * std::sin(1.7f * i + 0.9f * j + 0.3f);
    }
  }
  return t;
}

TEST(GradCheck, MatMulAddSigmoid) {
  Rng rng(1);
  ParameterStore store;
  Parameter* w = store.Create("w", 3, 2, ParameterStore::Init::kXavier, &rng);
  Parameter* b = store.Create("b", 1, 2, ParameterStore::Init::kGaussian,
                              &rng, 0.2f);
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var x = g->Input(Pattern(2, 3));
    return g->MeanAll(g->Sigmoid(g->Add(g->MatMul(x, g->Use(w)), g->Use(b))));
  });
}

TEST(GradCheck, TanhReluMulSub) {
  Rng rng(2);
  ParameterStore store;
  Parameter* a = store.Create("a", 2, 3, ParameterStore::Init::kGaussian,
                              &rng, 0.5f);
  Parameter* b = store.Create("b", 2, 3, ParameterStore::Init::kGaussian,
                              &rng, 0.5f);
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var av = g->Use(a);
    Graph::Var bv = g->Use(b);
    Graph::Var t = g->Tanh(av);
    Graph::Var r = g->Relu(g->Sub(av, bv));
    return g->MeanAll(g->Mul(t, g->Add(r, bv)));
  });
}

TEST(GradCheck, ScalarOpsAndBroadcasts) {
  Rng rng(3);
  ParameterStore store;
  Parameter* a = store.Create("a", 3, 4, ParameterStore::Init::kGaussian,
                              &rng, 0.5f);
  Parameter* row = store.Create("row", 1, 4, ParameterStore::Init::kGaussian,
                                &rng, 0.5f);
  Parameter* scalar = store.Create("s", 1, 1, ParameterStore::Init::kGaussian,
                                   &rng, 0.5f);
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var x = g->Add(g->Use(a), g->Use(row));     // row broadcast
    Graph::Var y = g->Add(x, g->Use(scalar));          // scalar broadcast
    return g->MeanAll(g->AddScalar(g->ScalarMul(y, 1.3f), -0.2f));
  });
}

TEST(GradCheck, SoftmaxRows) {
  Rng rng(4);
  ParameterStore store;
  Parameter* a = store.Create("a", 2, 5, ParameterStore::Init::kGaussian,
                              &rng, 0.8f);
  Tensor weights = Pattern(2, 5, 1.0f);
  CheckGradients(&store, [&](Graph* g) {
    // Weighted sum of softmax outputs so the gradient is non-trivial.
    return g->MeanAll(
        g->Mul(g->SoftmaxRows(g->Use(a)), g->Input(weights)));
  });
}

TEST(GradCheck, TransposeConcatSlice) {
  Rng rng(5);
  ParameterStore store;
  Parameter* a = store.Create("a", 2, 3, ParameterStore::Init::kGaussian,
                              &rng, 0.5f);
  Parameter* b = store.Create("b", 2, 2, ParameterStore::Init::kGaussian,
                              &rng, 0.5f);
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var cat = g->ConcatCols({g->Use(a), g->Use(b)});  // 2x5
    Graph::Var t = g->Transpose(cat);                        // 5x2
    Graph::Var top = g->SliceRows(t, 1, 3);                  // 3x2
    Graph::Var col = g->SliceCols(top, 0, 1);                // 3x1
    Graph::Var rows = g->ConcatRows({col, col});             // 6x1
    return g->MeanAll(g->Tanh(rows));
  });
}

TEST(GradCheck, Reductions) {
  Rng rng(6);
  ParameterStore store;
  Parameter* a = store.Create("a", 3, 4, ParameterStore::Init::kGaussian,
                              &rng, 0.7f);
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var x = g->Use(a);
    Graph::Var parts = g->ConcatCols(
        {g->SumRows(x), g->MeanRows(x), g->MaxRows(g->Tanh(x))});
    return g->MeanAll(g->Mul(parts, g->Input(Pattern(1, 12, 1.0f))));
  });
}

TEST(GradCheck, SumColsAndSumAll) {
  Rng rng(7);
  ParameterStore store;
  Parameter* a = store.Create("a", 4, 3, ParameterStore::Init::kGaussian,
                              &rng, 0.7f);
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var x = g->Tanh(g->Use(a));
    Graph::Var sc = g->SumCols(x);  // 4x1
    return g->ScalarMul(g->SumAll(g->Mul(sc, g->Input(Pattern(4, 1, 1.0f)))),
                        0.25f);
  });
}

TEST(GradCheck, ConcatWindow) {
  Rng rng(8);
  ParameterStore store;
  Parameter* a = store.Create("a", 4, 3, ParameterStore::Init::kGaussian,
                              &rng, 0.7f);
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var win = g->ConcatWindow(g->Use(a), 3);  // 4x9
    return g->MeanAll(g->Mul(win, g->Input(Pattern(4, 9, 1.0f))));
  });
}

TEST(GradCheck, EmbeddingLookupAccumulatesRepeatedIds) {
  Rng rng(9);
  ParameterStore store;
  Parameter* table = store.Create("emb", 5, 3,
                                  ParameterStore::Init::kGaussian, &rng, 0.5f);
  CheckGradients(&store, [&](Graph* g) {
    // id 2 appears twice: gradient must accumulate.
    Graph::Var e = g->EmbeddingLookup(table, {2, 4, 2});
    return g->MeanAll(g->Mul(g->Tanh(e), g->Input(Pattern(3, 3, 1.0f))));
  });
}

TEST(GradCheck, AdditiveAttention) {
  Rng rng(10);
  ParameterStore store;
  Parameter* a = store.Create("a", 3, 4, ParameterStore::Init::kGaussian,
                              &rng, 0.5f);
  Parameter* b = store.Create("b", 2, 4, ParameterStore::Init::kGaussian,
                              &rng, 0.5f);
  Parameter* v = store.Create("v", 4, 1, ParameterStore::Init::kGaussian,
                              &rng, 0.5f);
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var att = g->AdditiveAttention(g->Use(a), g->Use(b), g->Use(v));
    return g->MeanAll(g->Mul(att, g->Input(Pattern(3, 2, 1.0f))));
  });
}

TEST(GradCheck, SigmoidCrossEntropy) {
  Rng rng(11);
  ParameterStore store;
  Parameter* a = store.Create("a", 2, 2, ParameterStore::Init::kGaussian,
                              &rng, 1.0f);
  Tensor targets = Tensor::FromVector(2, 2, {1, 0, 0, 1});
  CheckGradients(&store, [&](Graph* g) {
    return g->SigmoidCrossEntropyWithLogits(g->Use(a), targets);
  });
}

TEST(GradCheck, LstmStep) {
  Rng rng(12);
  ParameterStore store;
  LstmCell cell(&store, "lstm", 3, 4, &rng);
  CheckGradients(&store, [&](Graph* g) {
    auto state = cell.Initial(g);
    state = cell.Step(g, g->Input(Pattern(1, 3)), state);
    state = cell.Step(g, g->Input(Pattern(1, 3, 0.5f)), state);
    return g->MeanAll(g->Mul(state.h, g->Input(Pattern(1, 4, 1.0f))));
  });
}

TEST(GradCheck, BiLstm) {
  Rng rng(13);
  ParameterStore store;
  BiLstm bilstm(&store, "bi", 2, 3, &rng);
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var out = bilstm.Run(g, g->Input(Pattern(3, 2)));
    return g->MeanAll(g->Mul(out, g->Input(Pattern(3, 6, 1.0f))));
  });
}

TEST(GradCheck, SelfAttentionLayer) {
  Rng rng(14);
  ParameterStore store;
  SelfAttention attn(&store, "attn", 3, &rng, /*residual=*/true);
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var out = attn.Apply(g, g->Input(Pattern(4, 3)));
    return g->MeanAll(g->Mul(out, g->Input(Pattern(4, 3, 1.0f))));
  });
}

TEST(GradCheck, CrfNegLogLikelihood) {
  Rng rng(15);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", 3, &rng);
  Parameter* emit = store.Create("emit", 4, 3,
                                 ParameterStore::Init::kGaussian, &rng, 0.5f);
  std::vector<int> gold = {0, 2, 2, 1};
  CheckGradients(&store, [&](Graph* g) {
    return crf.NegLogLikelihood(g, g->Use(emit), gold);
  });
}

TEST(GradCheck, FuzzyCrf) {
  Rng rng(16);
  ParameterStore store;
  LinearChainCrf crf(&store, "crf", 3, &rng);
  Parameter* emit = store.Create("emit", 3, 3,
                                 ParameterStore::Init::kGaussian, &rng, 0.5f);
  std::vector<std::vector<int>> allowed = {{0, 1}, {2}, {1, 2}};
  CheckGradients(&store, [&](Graph* g) {
    return crf.FuzzyNegLogLikelihood(g, g->Use(emit), allowed);
  });
}

TEST(GradCheck, CrfThroughUpstreamEncoder) {
  // Gradient must flow through the emissions into an upstream linear layer.
  Rng rng(17);
  ParameterStore store;
  Linear proj(&store, "proj", 4, 3, &rng);
  LinearChainCrf crf(&store, "crf", 3, &rng);
  std::vector<int> gold = {1, 0, 2};
  CheckGradients(&store, [&](Graph* g) {
    Graph::Var x = g->Input(Pattern(3, 4));
    return crf.NegLogLikelihood(g, proj.Apply(g, x), gold);
  });
}

}  // namespace
}  // namespace alicoco::nn
