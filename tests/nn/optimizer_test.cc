#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace alicoco::nn {
namespace {

// Minimizes f(w) = (w - 3)^2 via the given optimizer; returns final w.
template <typename Opt>
float MinimizeQuadratic(Opt* opt, int steps) {
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 1, ParameterStore::Init::kZero, nullptr);
  for (int i = 0; i < steps; ++i) {
    store.ZeroGrad();
    w->grad.At(0, 0) = 2 * (w->value.At(0, 0) - 3.0f);
    opt->Step(&store);
  }
  return w->value.At(0, 0);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Sgd sgd(0.1f);
  EXPECT_NEAR(MinimizeQuadratic(&sgd, 100), 3.0f, 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Adam adam(0.2f);
  EXPECT_NEAR(MinimizeQuadratic(&adam, 300), 3.0f, 1e-2f);
}

TEST(SgdTest, LrSetter) {
  Sgd sgd(0.1f);
  sgd.set_lr(0.01f);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.01f);
}

TEST(ClippingTest, LargeGradientIsClipped) {
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 2, ParameterStore::Init::kZero, nullptr);
  w->grad.At(0, 0) = 300.0f;
  w->grad.At(0, 1) = 400.0f;  // norm 500, clip to 5
  Sgd sgd(1.0f, /*clip_norm=*/5.0);
  sgd.Step(&store);
  // Update = -lr * clipped grad = -(3, 4).
  EXPECT_NEAR(w->value.At(0, 0), -3.0f, 1e-4f);
  EXPECT_NEAR(w->value.At(0, 1), -4.0f, 1e-4f);
}

TEST(ClippingTest, SmallGradientUntouched) {
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 1, ParameterStore::Init::kZero, nullptr);
  w->grad.At(0, 0) = 1.0f;
  Sgd sgd(1.0f, 5.0);
  sgd.Step(&store);
  EXPECT_FLOAT_EQ(w->value.At(0, 0), -1.0f);
}

TEST(AdamTest, PerParameterSlots) {
  // Two parameters with very different gradient scales should both move
  // roughly lr per step initially (Adam normalizes by RMS).
  ParameterStore store;
  Parameter* a = store.Create("a", 1, 1, ParameterStore::Init::kZero, nullptr);
  Parameter* b = store.Create("b", 1, 1, ParameterStore::Init::kZero, nullptr);
  Adam adam(0.1f, 0.9f, 0.999f, 1e-8f, /*clip_norm=*/0.0);
  store.ZeroGrad();
  a->grad.At(0, 0) = 0.001f;
  b->grad.At(0, 0) = 10.0f;
  adam.Step(&store);
  EXPECT_NEAR(a->value.At(0, 0), -0.1f, 1e-3f);
  EXPECT_NEAR(b->value.At(0, 0), -0.1f, 1e-3f);
}

}  // namespace
}  // namespace alicoco::nn
