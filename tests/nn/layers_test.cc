#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>

namespace alicoco::nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  ParameterStore store;
  Linear lin(&store, "fc", 3, 2, &rng);
  store.Get("fc.b")->value.At(0, 0) = 5.0f;
  Graph g;
  auto y = lin.Apply(&g, g.Input(Tensor(1, 3)));  // zero input -> bias only
  EXPECT_EQ(g.Value(y).rows(), 1);
  EXPECT_EQ(g.Value(y).cols(), 2);
  EXPECT_FLOAT_EQ(g.Value(y).At(0, 0), 5.0f);
}

TEST(EmbeddingTest, LookupAndPretrained) {
  Rng rng(2);
  ParameterStore store;
  Embedding emb(&store, "emb", 4, 3, &rng);
  std::vector<float> table(12);
  for (size_t i = 0; i < 12; ++i) table[i] = static_cast<float>(i);
  emb.LoadPretrained(table);
  Graph g;
  auto e = emb.Lookup(&g, {2});
  EXPECT_FLOAT_EQ(g.Value(e).At(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(g.Value(e).At(0, 2), 8.0f);
}

TEST(Conv1DTest, OutputShapeAndNonNegativity) {
  Rng rng(3);
  ParameterStore store;
  Conv1D conv(&store, "conv", 4, 6, 3, &rng);
  Graph g;
  auto y = conv.Apply(&g, g.Input(Tensor::Randn(5, 4, 1.0f, &rng)));
  EXPECT_EQ(g.Value(y).rows(), 5);
  EXPECT_EQ(g.Value(y).cols(), 6);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 6; ++j) EXPECT_GE(g.Value(y).At(i, j), 0.0f);
  }
}

TEST(SelfAttentionTest, PreservesShape) {
  Rng rng(4);
  ParameterStore store;
  SelfAttention attn(&store, "sa", 5, &rng);
  Graph g;
  auto y = attn.Apply(&g, g.Input(Tensor::Randn(3, 5, 0.5f, &rng)));
  EXPECT_EQ(g.Value(y).rows(), 3);
  EXPECT_EQ(g.Value(y).cols(), 5);
}

TEST(SelfAttentionTest, NoResidualDiffersFromResidual) {
  Rng rng(5);
  ParameterStore s1, s2;
  SelfAttention with(&s1, "sa", 4, &rng, true);
  Rng rng2(5);
  SelfAttention without(&s2, "sa", 4, &rng2, false);
  Tensor x = Tensor::Randn(2, 4, 0.5f, &rng);
  Graph g1, g2;
  auto y1 = with.Apply(&g1, g1.Input(x));
  auto y2 = without.Apply(&g2, g2.Input(x));
  // Residual adds x, so outputs must differ.
  bool differ = false;
  for (int i = 0; i < 2 && !differ; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (std::fabs(g1.Value(y1).At(i, j) - g2.Value(y2).At(i, j)) > 1e-6f) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(MlpTest, StackDepthAndShape) {
  Rng rng(6);
  ParameterStore store;
  Mlp mlp(&store, "mlp", {4, 8, 3, 1}, &rng);
  Graph g;
  auto y = mlp.Apply(&g, g.Input(Tensor::Randn(2, 4, 0.5f, &rng)));
  EXPECT_EQ(g.Value(y).rows(), 2);
  EXPECT_EQ(g.Value(y).cols(), 1);
  // 3 Linear layers created.
  EXPECT_NE(store.Get("mlp.fc0.W"), nullptr);
  EXPECT_NE(store.Get("mlp.fc2.W"), nullptr);
  EXPECT_EQ(store.Get("mlp.fc3.W"), nullptr);
}

}  // namespace
}  // namespace alicoco::nn
