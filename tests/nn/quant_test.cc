// Quantization-tier tests: blockwise-Q8 and fp16 round-trip error bounds,
// the quantized GEMM kernels against an fp32 reference over the same
// tile-boundary shapes kernels_test uses, scalar/AVX2 dispatch equivalence
// (fp16 conversions must be bit-identical between tiers), and the
// QuantizedStore built from a trained ParameterStore.

#include "nn/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/graph.h"
#include "nn/kernels.h"
#include "nn/tensor.h"

namespace alicoco::nn::quant {
namespace {

using kernels::kQ8Block;
using kernels::Q8Blocks;

struct Shape {
  int m, k, n;
};

// Same shapes as kernels_test: every edge of the blocking scheme, plus the
// Q8 block boundary (32) is straddled by 31, 63/64/65, 127/128/129, 200.
const Shape kShapes[] = {
    {1, 1, 1},    {1, 7, 1},    {7, 1, 1},   {1, 1, 7},    {4, 4, 4},
    {3, 5, 2},    {5, 64, 128}, {4, 65, 129}, {8, 63, 127}, {2, 24, 96},
    {1, 24, 96},  {17, 31, 23}, {6, 130, 5},  {9, 3, 260},  {13, 200, 40},
};

std::vector<float> RandomVec(size_t size, Rng* rng) {
  std::vector<float> v(size);
  for (auto& x : v) x = rng->UniformFloat(-1.0f, 1.0f);
  return v;
}

Tensor RandomTensor(int rows, int cols, Rng* rng) {
  return Tensor::FromVector(
      rows, cols, RandomVec(static_cast<size_t>(rows) * cols, rng));
}

TEST(QuantTest, Q8RoundTripWithinHalfScale) {
  Rng rng(201);
  const int rows = 7, cols = 100;  // 4 blocks, last one 4/32 full
  Tensor t = RandomTensor(rows, cols, &rng);
  QuantizedTensor q = QuantizedTensor::Quantize(t, QuantMode::kInt8);
  ASSERT_EQ(q.mode(), QuantMode::kInt8);
  ASSERT_EQ(q.rows(), rows);
  ASSERT_EQ(q.cols(), cols);
  ASSERT_EQ(q.blocks_per_row(), Q8Blocks(cols));
  Tensor back = q.Dequantize();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Rounding to the nearest code is off by at most half a step.
      const float scale = q.q8_scales()[r * q.blocks_per_row() + c / kQ8Block];
      EXPECT_NEAR(back.At(r, c), t.At(r, c), 0.5f * scale + 1e-7f)
          << "(" << r << ", " << c << ")";
    }
  }
  // Tail lanes of the last block must be zero codes.
  const int bpr = q.blocks_per_row();
  for (int r = 0; r < rows; ++r) {
    for (int lane = cols % kQ8Block; lane < kQ8Block; ++lane) {
      EXPECT_EQ(q.q8_data()[(r * bpr + bpr - 1) * kQ8Block + lane], 0);
    }
  }
}

TEST(QuantTest, Q8CodesStayInSymmetricRange) {
  // Clamping to [-127, 127] is what keeps the maddubs pairing in the AVX2
  // int8 dot from saturating; -128 must never be emitted.
  Rng rng(202);
  Tensor t = RandomTensor(9, 70, &rng);
  t.At(3, 5) = -123.0f;  // block absmax is a large negative value
  QuantizedTensor q = QuantizedTensor::Quantize(t, QuantMode::kInt8);
  for (int8_t code : q.q8_vector()) {
    EXPECT_GE(code, -127);
    EXPECT_LE(code, 127);
  }
}

TEST(QuantTest, Fp16RoundTripRelativeBound) {
  Rng rng(203);
  const int rows = 5, cols = 37;
  Tensor t = RandomTensor(rows, cols, &rng);
  QuantizedTensor q = QuantizedTensor::Quantize(t, QuantMode::kFp16);
  ASSERT_EQ(q.mode(), QuantMode::kFp16);
  Tensor back = q.Dequantize();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // binary16 has 11 significand bits: RNE error <= 2^-11 relative.
      const float tol = std::fabs(t.At(r, c)) * (1.0f / 2048.0f) + 1e-7f;
      EXPECT_NEAR(back.At(r, c), t.At(r, c), tol);
    }
  }
}

TEST(QuantTest, Fp16ConversionHandlesSpecialValues) {
  const float specials[] = {0.0f,    -0.0f,   1.0f,     -2.0f,
                            65504.0f,  // largest normal half
                            1e-7f,     // subnormal in half precision
                            70000.0f,  // overflows to +inf
                            -70000.0f};
  uint16_t half[8];
  float back[8];
  kernels::Fp32ToFp16(specials, half, 8);
  kernels::Fp16ToFp32(half, back, 8);
  EXPECT_EQ(back[0], 0.0f);
  EXPECT_EQ(back[1], 0.0f);
  EXPECT_TRUE(std::signbit(back[1]));
  EXPECT_EQ(back[2], 1.0f);
  EXPECT_EQ(back[3], -2.0f);
  EXPECT_EQ(back[4], 65504.0f);
  // Subnormal halves step by 2^-24, so RNE is off by at most 2^-25.
  EXPECT_NEAR(back[5], 1e-7f, 3e-8f);
  EXPECT_TRUE(std::isinf(back[6]) && back[6] > 0);
  EXPECT_TRUE(std::isinf(back[7]) && back[7] < 0);
}

// fp32 reference for the quantized x * W^T product: dequantize W and run
// the naive triple loop on the decoded values. The quantized kernels must
// agree with this up to activation-quantization error (int8 only).
Tensor DequantReference(const Tensor& x, const QuantizedTensor& wt) {
  Tensor w = wt.Dequantize();  // wt.rows x wt.cols = n x k
  Tensor y(x.rows(), wt.rows());
  kernels::naive::GemmTransBAccum(x.rows(), x.cols(), wt.rows(), x.data(),
                                  w.data(), y.data());
  return y;
}

TEST(QuantTest, GemmTransWFp16MatchesDequantizedReference) {
  Rng rng(204);
  for (const Shape& s : kShapes) {
    Tensor x = RandomTensor(s.m, s.k, &rng);
    Tensor w = RandomTensor(s.n, s.k, &rng);  // W^T layout: n x k
    QuantizedTensor wt = QuantizedTensor::Quantize(w, QuantMode::kFp16);
    Tensor want = DequantReference(x, wt);
    Tensor got(s.m, s.n);
    GemmTransW(x, wt, &got);
    const float tol = 1e-5f * static_cast<float>(s.k + 8);
    for (int r = 0; r < s.m; ++r) {
      for (int c = 0; c < s.n; ++c) {
        EXPECT_NEAR(got.At(r, c), want.At(r, c),
                    tol + 1e-4f * std::fabs(want.At(r, c)))
            << s.m << "x" << s.k << "x" << s.n << " at (" << r << "," << c
            << ")";
      }
    }
  }
}

TEST(QuantTest, GemmTransWInt8WithinActivationQuantError) {
  // The int8 path also quantizes the activations, so the comparison is
  // against the true fp32 product with a bound that accounts for both
  // sides' rounding: per k-element error is at most half an activation
  // step + half a weight step, each scaled by the other side's magnitude.
  Rng rng(205);
  for (const Shape& s : kShapes) {
    Tensor x = RandomTensor(s.m, s.k, &rng);
    Tensor w = RandomTensor(s.n, s.k, &rng);
    QuantizedTensor wt = QuantizedTensor::Quantize(w, QuantMode::kInt8);
    Tensor want(s.m, s.n);
    kernels::naive::GemmTransBAccum(s.m, s.k, s.n, x.data(), w.data(),
                                    want.data());
    Tensor got(s.m, s.n);
    GemmTransW(x, wt, &got);
    // Values are in [-1, 1] so each step is <= 1/127; error per element of
    // the k-sum <= (1/254) * (|a| + |b|) <= 2/254.
    const float tol = static_cast<float>(s.k) * (2.0f / 254.0f) * 1.1f + 1e-5f;
    for (int r = 0; r < s.m; ++r) {
      for (int c = 0; c < s.n; ++c) {
        EXPECT_NEAR(got.At(r, c), want.At(r, c), tol)
            << s.m << "x" << s.k << "x" << s.n << " at (" << r << "," << c
            << ")";
      }
    }
  }
}

TEST(QuantTest, QuantizeTransposedStoresContractionContiguous) {
  Rng rng(206);
  Tensor w = RandomTensor(6, 10, &rng);  // stored in x out layout
  QuantizedTensor wt = QuantizedTensor::QuantizeTransposed(w, QuantMode::kFp16);
  ASSERT_EQ(wt.rows(), 10);
  ASSERT_EQ(wt.cols(), 6);
  Tensor back = wt.Dequantize();
  for (int r = 0; r < 10; ++r) {
    for (int c = 0; c < 6; ++c) {
      EXPECT_NEAR(back.At(r, c), w.At(c, r),
                  std::fabs(w.At(c, r)) / 2048.0f + 1e-7f);
    }
  }
}

// ---- dispatch-tier equivalence ------------------------------------------

class ScalarTierGuard {
 public:
  ScalarTierGuard() { kernels::ForceScalarKernels(true); }
  ~ScalarTierGuard() { kernels::ForceScalarKernels(false); }
};

TEST(QuantDispatchTest, ForceScalarSwitchesTier) {
  {
    ScalarTierGuard guard;
    EXPECT_STREQ(kernels::ActiveKernelTier(), "scalar");
  }
  // Un-forcing restores the startup choice, which ALICOCO_SIMD=scalar may
  // itself have pinned to the portable tier.
  const char* env = std::getenv("ALICOCO_SIMD");
  const bool env_pinned = env != nullptr && std::strcmp(env, "scalar") == 0;
  if (kernels::KernelsHaveAvx2() && !env_pinned) {
    EXPECT_STREQ(kernels::ActiveKernelTier(), "avx2");
  } else {
    EXPECT_STREQ(kernels::ActiveKernelTier(), "scalar");
  }
}

TEST(QuantDispatchTest, Fp16ConversionBitIdenticalAcrossTiers) {
  if (!kernels::KernelsHaveAvx2()) GTEST_SKIP() << "no AVX2 tier on host";
  Rng rng(207);
  std::vector<float> src = RandomVec(1000, &rng);
  // Mix in magnitudes that exercise subnormals, overflow and exact powers.
  src.insert(src.end(), {0.0f, -0.0f, 1e-8f, -1e-8f, 65504.0f, 65520.0f,
                         70000.0f, 0.5f, 2.0f, 6.1035156e-5f});
  const int n = static_cast<int>(src.size());
  std::vector<uint16_t> half_scalar(n), half_avx2(n);
  kernels::scalar::Fp32ToFp16(src.data(), half_scalar.data(), n);
  kernels::avx2::Table()->fp32_to_fp16(src.data(), half_avx2.data(), n);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(half_scalar[i], half_avx2[i]) << "fp32->fp16 of " << src[i];
  }
  std::vector<float> back_scalar(n), back_avx2(n);
  kernels::scalar::Fp16ToFp32(half_scalar.data(), back_scalar.data(), n);
  kernels::avx2::Table()->fp16_to_fp32(half_scalar.data(), back_avx2.data(),
                                       n);
  for (int i = 0; i < n; ++i) {
    uint32_t bits_scalar, bits_avx2;
    std::memcpy(&bits_scalar, &back_scalar[i], 4);
    std::memcpy(&bits_avx2, &back_avx2[i], 4);
    EXPECT_EQ(bits_scalar, bits_avx2) << "fp16->fp32 of code "
                                      << half_scalar[i];
  }
}

TEST(QuantDispatchTest, Q8DotKernelAgreesAcrossTiers) {
  if (!kernels::KernelsHaveAvx2()) GTEST_SKIP() << "no AVX2 tier on host";
  Rng rng(208);
  for (const Shape& s : kShapes) {
    const int bpr = Q8Blocks(s.k);
    std::vector<int8_t> aq(static_cast<size_t>(s.m) * bpr * kQ8Block);
    std::vector<int8_t> bq(static_cast<size_t>(s.n) * bpr * kQ8Block);
    std::vector<float> ascales(static_cast<size_t>(s.m) * bpr);
    std::vector<float> bscales(static_cast<size_t>(s.n) * bpr);
    auto xa = RandomVec(static_cast<size_t>(s.m) * s.k, &rng);
    auto xb = RandomVec(static_cast<size_t>(s.n) * s.k, &rng);
    QuantizeRowsQ8(xa.data(), s.m, s.k, aq.data(), ascales.data());
    QuantizeRowsQ8(xb.data(), s.n, s.k, bq.data(), bscales.data());
    std::vector<float> c_scalar(static_cast<size_t>(s.m) * s.n, 0.5f);
    std::vector<float> c_avx2 = c_scalar;
    kernels::scalar::Q8GemmDotAccum(s.m, s.k, s.n, aq.data(), ascales.data(),
                                    bq.data(), bscales.data(),
                                    c_scalar.data());
    kernels::avx2::Table()->q8_gemm_dot(s.m, s.k, s.n, aq.data(),
                                        ascales.data(), bq.data(),
                                        bscales.data(), c_avx2.data());
    // Both tiers compute exact int32 block dots; only the float combine
    // order differs.
    for (size_t i = 0; i < c_scalar.size(); ++i) {
      EXPECT_NEAR(c_scalar[i], c_avx2[i],
                  1e-5f + 1e-5f * std::fabs(c_scalar[i]))
          << s.m << "x" << s.k << "x" << s.n << " index " << i;
    }
  }
}

TEST(QuantDispatchTest, Fp16GemmAgreesAcrossTiers) {
  if (!kernels::KernelsHaveAvx2()) GTEST_SKIP() << "no AVX2 tier on host";
  Rng rng(209);
  for (const Shape& s : kShapes) {
    auto a = RandomVec(static_cast<size_t>(s.m) * s.k, &rng);
    auto wf = RandomVec(static_cast<size_t>(s.n) * s.k, &rng);
    std::vector<uint16_t> wh(wf.size());
    kernels::Fp32ToFp16(wf.data(), wh.data(), static_cast<int>(wf.size()));
    std::vector<float> c_scalar(static_cast<size_t>(s.m) * s.n, -0.25f);
    std::vector<float> c_avx2 = c_scalar;
    kernels::scalar::Fp16GemmTransBAccum(s.m, s.k, s.n, a.data(), wh.data(),
                                         c_scalar.data());
    kernels::avx2::Table()->fp16_gemm_transb(s.m, s.k, s.n, a.data(),
                                             wh.data(), c_avx2.data());
    const float tol = 1e-5f * static_cast<float>(s.k + 8);
    for (size_t i = 0; i < c_scalar.size(); ++i) {
      EXPECT_NEAR(c_scalar[i], c_avx2[i],
                  tol + 1e-4f * std::fabs(c_scalar[i]))
          << s.m << "x" << s.k << "x" << s.n << " index " << i;
    }
  }
}

TEST(QuantDispatchTest, GemmTransWIdenticalResultsUnderForcedScalar) {
  // The quantized product must not depend on which tier executes it beyond
  // float reassociation — guards against the AVX2 path dropping tail lanes.
  Rng rng(210);
  Tensor x = RandomTensor(5, 70, &rng);
  Tensor w = RandomTensor(11, 70, &rng);
  for (QuantMode mode : {QuantMode::kInt8, QuantMode::kFp16}) {
    QuantizedTensor wt = QuantizedTensor::Quantize(w, mode);
    Tensor dispatched(5, 11);
    GemmTransW(x, wt, &dispatched);
    Tensor forced(5, 11);
    {
      ScalarTierGuard guard;
      GemmTransW(x, wt, &forced);
    }
    for (int r = 0; r < 5; ++r) {
      for (int c = 0; c < 11; ++c) {
        EXPECT_NEAR(dispatched.At(r, c), forced.At(r, c),
                    1e-4f + 1e-4f * std::fabs(forced.At(r, c)))
            << QuantModeName(mode);
      }
    }
  }
}

// ---- store construction --------------------------------------------------

TEST(QuantStoreTest, QuantizeParamsSplitsPlanFromPassthrough) {
  Rng rng(211);
  ParameterStore store;
  // Contraction dims are multiples of the 32-lane block so the compression
  // assertion below is not distorted by tail padding.
  Parameter* w =
      store.Create("fc.W", 64, 6, ParameterStore::Init::kXavier, &rng);
  Parameter* b =
      store.Create("fc.b", 1, 6, ParameterStore::Init::kGaussian, &rng);
  Parameter* emb = store.Create("emb.table", 20, 64,
                                ParameterStore::Init::kGaussian, &rng);
  QuantPlan plan;
  plan.push_back({w, /*transpose=*/true});
  plan.push_back({emb, /*transpose=*/false});
  QuantizedStore qs = QuantizeParams(store, plan, QuantMode::kInt8);
  EXPECT_EQ(qs.mode(), QuantMode::kInt8);
  ASSERT_EQ(qs.quantized().size(), 2u);
  ASSERT_EQ(qs.fp32().size(), 1u);
  const QuantizedTensor* qw = qs.FindQuantized("fc.W");
  ASSERT_NE(qw, nullptr);
  EXPECT_EQ(qw->rows(), 6);  // 64x6 stored transposed as 6x64
  EXPECT_EQ(qw->cols(), 64);
  const QuantizedTensor* qe = qs.FindQuantized("emb.table");
  ASSERT_NE(qe, nullptr);
  EXPECT_EQ(qe->rows(), 20);
  EXPECT_EQ(qe->cols(), 64);
  const Tensor* pb = qs.FindFp32("fc.b");
  ASSERT_NE(pb, nullptr);
  for (int j = 0; j < 6; ++j) {
    EXPECT_FLOAT_EQ(pb->At(0, j), b->value.At(0, j));
  }
  EXPECT_EQ(qs.FindQuantized("fc.b"), nullptr);
  EXPECT_EQ(qs.FindFp32("fc.W"), nullptr);
  EXPECT_GT(qs.TotalBytes(), 0u);
  // int8 payload (codes + one scale per 32 lanes) is roughly a quarter of
  // the fp32 weights it replaces.
  const size_t fp32_bytes = (64 * 6 + 20 * 64) * sizeof(float);
  EXPECT_LT(qs.TotalBytes(), fp32_bytes / 2);
}

TEST(QuantStoreTest, ModeNames) {
  EXPECT_STREQ(QuantModeName(QuantMode::kNone), "none");
  EXPECT_STREQ(QuantModeName(QuantMode::kInt8), "int8");
  EXPECT_STREQ(QuantModeName(QuantMode::kFp16), "fp16");
}

}  // namespace
}  // namespace alicoco::nn::quant
