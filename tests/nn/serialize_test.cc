#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

namespace alicoco::nn {
namespace {

// RAII stdio handle so every test path closes the file (mirrors the
// FilePtr used inside nn/serialize.cc).
using FilePtr = std::unique_ptr<std::FILE, int (*)(std::FILE*)>;

FilePtr OpenFile(const char* path, const char* mode) {
  return FilePtr(std::fopen(path, mode), &std::fclose);
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void BuildStore(ParameterStore* store, uint64_t seed) {
  Rng rng(seed);
  store->Create("emb.table", 5, 3, ParameterStore::Init::kGaussian, &rng,
                0.5f);
  store->Create("fc.W", 3, 2, ParameterStore::Init::kXavier, &rng);
  store->Create("fc.b", 1, 2, ParameterStore::Init::kGaussian, &rng, 0.5f);
}

TEST(SerializeTest, RoundTripRestoresWeights) {
  ParameterStore a;
  BuildStore(&a, 1);
  std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());

  ParameterStore b;
  BuildStore(&b, 99);  // different init
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  for (size_t i = 0; i < a.params().size(); ++i) {
    const auto& pa = a.params()[i];
    const auto& pb = b.params()[i];
    ASSERT_EQ(pa->value.size(), pb->value.size());
    for (size_t k = 0; k < pa->value.size(); ++k) {
      EXPECT_FLOAT_EQ(pa->value.data()[k], pb->value.data()[k]);
    }
  }
}

TEST(SerializeTest, MissingFileIsIOError) {
  ParameterStore s;
  BuildStore(&s, 1);
  EXPECT_TRUE(LoadParameters(&s, "/nonexistent/dir/x.bin").IsIOError());
}

TEST(SerializeTest, BadMagicIsCorruption) {
  std::string path = TempPath("garbage.bin");
  FilePtr f = OpenFile(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f.get());
  f.reset();
  ParameterStore s;
  BuildStore(&s, 1);
  EXPECT_TRUE(LoadParameters(&s, path).IsCorruption());
}

TEST(SerializeTest, ParameterCountMismatchRejected) {
  ParameterStore a;
  BuildStore(&a, 1);
  std::string path = TempPath("count.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ParameterStore b;  // empty store
  EXPECT_TRUE(LoadParameters(&b, path).IsInvalidArgument());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  ParameterStore a;
  Rng rng(1);
  a.Create("w", 2, 2, ParameterStore::Init::kXavier, &rng);
  std::string path = TempPath("shape.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ParameterStore b;
  b.Create("w", 3, 2, ParameterStore::Init::kXavier, &rng);
  EXPECT_TRUE(LoadParameters(&b, path).IsInvalidArgument());
}

TEST(SerializeTest, UnknownParameterNameRejected) {
  ParameterStore a;
  Rng rng(1);
  a.Create("w", 2, 2, ParameterStore::Init::kXavier, &rng);
  std::string path = TempPath("name.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ParameterStore b;
  b.Create("other", 2, 2, ParameterStore::Init::kXavier, &rng);
  EXPECT_TRUE(LoadParameters(&b, path).IsNotFound());
}

TEST(SerializeTest, TruncatedFileIsCorruption) {
  ParameterStore a;
  BuildStore(&a, 1);
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  // Truncate to half size.
  FilePtr f = OpenFile(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f.get(), 0, SEEK_END);
  long size = std::ftell(f.get());
  f.reset();
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  ParameterStore b;
  BuildStore(&b, 2);
  EXPECT_TRUE(LoadParameters(&b, path).IsCorruption());
}

}  // namespace
}  // namespace alicoco::nn
