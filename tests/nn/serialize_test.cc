#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

namespace alicoco::nn {
namespace {

// RAII stdio handle so every test path closes the file (mirrors the
// FilePtr used inside nn/serialize.cc).
using FilePtr = std::unique_ptr<std::FILE, int (*)(std::FILE*)>;

FilePtr OpenFile(const char* path, const char* mode) {
  return FilePtr(std::fopen(path, mode), &std::fclose);
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void BuildStore(ParameterStore* store, uint64_t seed) {
  Rng rng(seed);
  store->Create("emb.table", 5, 3, ParameterStore::Init::kGaussian, &rng,
                0.5f);
  store->Create("fc.W", 3, 2, ParameterStore::Init::kXavier, &rng);
  store->Create("fc.b", 1, 2, ParameterStore::Init::kGaussian, &rng, 0.5f);
}

TEST(SerializeTest, RoundTripRestoresWeights) {
  ParameterStore a;
  BuildStore(&a, 1);
  std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());

  ParameterStore b;
  BuildStore(&b, 99);  // different init
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  for (size_t i = 0; i < a.params().size(); ++i) {
    const auto& pa = a.params()[i];
    const auto& pb = b.params()[i];
    ASSERT_EQ(pa->value.size(), pb->value.size());
    for (size_t k = 0; k < pa->value.size(); ++k) {
      EXPECT_FLOAT_EQ(pa->value.data()[k], pb->value.data()[k]);
    }
  }
}

TEST(SerializeTest, MissingFileIsIOError) {
  ParameterStore s;
  BuildStore(&s, 1);
  EXPECT_TRUE(LoadParameters(&s, "/nonexistent/dir/x.bin").IsIOError());
}

TEST(SerializeTest, BadMagicIsCorruption) {
  std::string path = TempPath("garbage.bin");
  FilePtr f = OpenFile(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f.get());
  f.reset();
  ParameterStore s;
  BuildStore(&s, 1);
  EXPECT_TRUE(LoadParameters(&s, path).IsCorruption());
}

TEST(SerializeTest, ParameterCountMismatchRejected) {
  ParameterStore a;
  BuildStore(&a, 1);
  std::string path = TempPath("count.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ParameterStore b;  // empty store
  EXPECT_TRUE(LoadParameters(&b, path).IsInvalidArgument());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  ParameterStore a;
  Rng rng(1);
  a.Create("w", 2, 2, ParameterStore::Init::kXavier, &rng);
  std::string path = TempPath("shape.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ParameterStore b;
  b.Create("w", 3, 2, ParameterStore::Init::kXavier, &rng);
  EXPECT_TRUE(LoadParameters(&b, path).IsInvalidArgument());
}

TEST(SerializeTest, UnknownParameterNameRejected) {
  ParameterStore a;
  Rng rng(1);
  a.Create("w", 2, 2, ParameterStore::Init::kXavier, &rng);
  std::string path = TempPath("name.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ParameterStore b;
  b.Create("other", 2, 2, ParameterStore::Init::kXavier, &rng);
  EXPECT_TRUE(LoadParameters(&b, path).IsNotFound());
}

TEST(SerializeTest, TruncatedFileIsCorruption) {
  ParameterStore a;
  BuildStore(&a, 1);
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  // Truncate to half size.
  FilePtr f = OpenFile(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f.get(), 0, SEEK_END);
  long size = std::ftell(f.get());
  f.reset();
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  ParameterStore b;
  BuildStore(&b, 2);
  EXPECT_TRUE(LoadParameters(&b, path).IsCorruption());
}

// ---- quantized-store format ---------------------------------------------

quant::QuantizedStore BuildQuantStore(quant::QuantMode mode, uint64_t seed) {
  ParameterStore store;
  BuildStore(&store, seed);
  quant::QuantPlan plan;
  plan.push_back({store.Get("emb.table"), /*transpose=*/false});
  plan.push_back({store.Get("fc.W"), /*transpose=*/true});
  return quant::QuantizeParams(store, plan, mode);  // fc.b rides fp32
}

TEST(SerializeQuantTest, RoundTripIsBitExact) {
  for (quant::QuantMode mode :
       {quant::QuantMode::kInt8, quant::QuantMode::kFp16}) {
    quant::QuantizedStore a =
        BuildQuantStore(mode, mode == quant::QuantMode::kInt8 ? 7 : 8);
    std::string path = TempPath("quant_roundtrip.bin");
    ASSERT_TRUE(SaveQuantizedStore(a, path).ok());
    quant::QuantizedStore b;
    ASSERT_TRUE(LoadQuantizedStore(&b, path).ok());
    EXPECT_EQ(b.mode(), mode);
    ASSERT_EQ(b.quantized().size(), a.quantized().size());
    ASSERT_EQ(b.fp32().size(), a.fp32().size());
    // The payload IS the quantized representation, so reload must
    // reproduce codes and scales exactly — not merely within tolerance.
    for (size_t i = 0; i < a.quantized().size(); ++i) {
      const auto& [na, ta] = a.quantized()[i];
      const auto& [nb, tb] = b.quantized()[i];
      EXPECT_EQ(na, nb);
      EXPECT_EQ(ta.rows(), tb.rows());
      EXPECT_EQ(ta.cols(), tb.cols());
      EXPECT_EQ(ta.q8_vector(), tb.q8_vector());
      EXPECT_EQ(ta.scales_vector(), tb.scales_vector());
      EXPECT_EQ(ta.fp16_vector(), tb.fp16_vector());
    }
    for (size_t i = 0; i < a.fp32().size(); ++i) {
      const auto& [na, ta] = a.fp32()[i];
      const auto& [nb, tb] = b.fp32()[i];
      EXPECT_EQ(na, nb);
      ASSERT_EQ(ta.size(), tb.size());
      for (size_t k = 0; k < ta.size(); ++k) {
        EXPECT_EQ(ta.data()[k], tb.data()[k]);
      }
    }
  }
}

TEST(SerializeQuantTest, MissingFileIsIOError) {
  quant::QuantizedStore s;
  EXPECT_TRUE(LoadQuantizedStore(&s, "/nonexistent/dir/q.bin").IsIOError());
}

TEST(SerializeQuantTest, Fp32CheckpointMagicRejected) {
  // A plain fp32 checkpoint handed to the quantized loader must fail on
  // the magic, not be misparsed.
  ParameterStore a;
  BuildStore(&a, 1);
  std::string path = TempPath("quant_wrongmagic.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  quant::QuantizedStore s;
  EXPECT_TRUE(LoadQuantizedStore(&s, path).IsCorruption());
}

TEST(SerializeQuantTest, TruncatedQuantFileIsCorruption) {
  quant::QuantizedStore a = BuildQuantStore(quant::QuantMode::kInt8, 3);
  std::string path = TempPath("quant_trunc.bin");
  ASSERT_TRUE(SaveQuantizedStore(a, path).ok());
  FilePtr f = OpenFile(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f.get(), 0, SEEK_END);
  long size = std::ftell(f.get());
  f.reset();
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  quant::QuantizedStore b;
  EXPECT_TRUE(LoadQuantizedStore(&b, path).IsCorruption());
}

TEST(SerializeQuantTest, UnsupportedVersionRejected) {
  quant::QuantizedStore a = BuildQuantStore(quant::QuantMode::kFp16, 4);
  std::string path = TempPath("quant_version.bin");
  ASSERT_TRUE(SaveQuantizedStore(a, path).ok());
  // Bump the version word (second u32) to a future value.
  FilePtr f = OpenFile(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f.get(), 4, SEEK_SET);
  uint32_t future = 999;
  ASSERT_EQ(std::fwrite(&future, sizeof(future), 1, f.get()), 1u);
  f.reset();
  quant::QuantizedStore b;
  EXPECT_TRUE(LoadQuantizedStore(&b, path).IsInvalidArgument());
}

TEST(SerializeQuantTest, BadModeRejected) {
  quant::QuantizedStore a = BuildQuantStore(quant::QuantMode::kInt8, 5);
  std::string path = TempPath("quant_mode.bin");
  ASSERT_TRUE(SaveQuantizedStore(a, path).ok());
  // Corrupt the mode word (third u32).
  FilePtr f = OpenFile(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f.get(), 8, SEEK_SET);
  uint32_t bad = 42;
  ASSERT_EQ(std::fwrite(&bad, sizeof(bad), 1, f.get()), 1u);
  f.reset();
  quant::QuantizedStore b;
  EXPECT_TRUE(LoadQuantizedStore(&b, path).IsCorruption());
}

}  // namespace
}  // namespace alicoco::nn
