// Forward-value semantics of graph ops.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/graph.h"

namespace alicoco::nn {
namespace {

TEST(GraphTest, InputHoldsValue) {
  Graph g;
  auto v = g.Input(Tensor::FromVector(1, 2, {3, 4}));
  EXPECT_EQ(g.Value(v).At(0, 1), 4);
}

TEST(GraphTest, MatMulShape) {
  Graph g;
  auto a = g.Input(Tensor::FromVector(2, 3, {1, 0, 0, 0, 1, 0}));
  auto b = g.Input(Tensor::FromVector(3, 1, {5, 7, 9}));
  auto c = g.MatMul(a, b);
  EXPECT_EQ(g.Value(c).rows(), 2);
  EXPECT_EQ(g.Value(c).At(0, 0), 5);
  EXPECT_EQ(g.Value(c).At(1, 0), 7);
}

TEST(GraphTest, AddBroadcastRow) {
  Graph g;
  auto a = g.Input(Tensor::FromVector(2, 2, {1, 2, 3, 4}));
  auto b = g.Input(Tensor::FromVector(1, 2, {10, 20}));
  auto c = g.Add(a, b);
  EXPECT_EQ(g.Value(c).At(0, 0), 11);
  EXPECT_EQ(g.Value(c).At(1, 1), 24);
}

TEST(GraphTest, AddBroadcastScalar) {
  Graph g;
  auto a = g.Input(Tensor::FromVector(2, 2, {1, 2, 3, 4}));
  auto s = g.Input(Tensor::FromVector(1, 1, {100}));
  auto c = g.Add(a, s);
  EXPECT_EQ(g.Value(c).At(1, 0), 103);
}

TEST(GraphTest, SoftmaxRowsSumToOne) {
  Graph g;
  auto a = g.Input(Tensor::FromVector(2, 3, {1, 2, 3, -1, 0, 1}));
  auto s = g.SoftmaxRows(a);
  for (int i = 0; i < 2; ++i) {
    float total = 0;
    for (int j = 0; j < 3; ++j) total += g.Value(s).At(i, j);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
  EXPECT_GT(g.Value(s).At(0, 2), g.Value(s).At(0, 0));
}

TEST(GraphTest, SoftmaxNumericallyStableForLargeInputs) {
  Graph g;
  auto a = g.Input(Tensor::FromVector(1, 2, {1000, 1001}));
  auto s = g.SoftmaxRows(a);
  EXPECT_TRUE(std::isfinite(g.Value(s).At(0, 0)));
  EXPECT_NEAR(g.Value(s).At(0, 0) + g.Value(s).At(0, 1), 1.0f, 1e-5f);
}

TEST(GraphTest, ReluClampsNegatives) {
  Graph g;
  auto a = g.Input(Tensor::FromVector(1, 3, {-1, 0, 2}));
  auto r = g.Relu(a);
  EXPECT_EQ(g.Value(r).At(0, 0), 0);
  EXPECT_EQ(g.Value(r).At(0, 2), 2);
}

TEST(GraphTest, MaxRowsPicksColumnwiseMax) {
  Graph g;
  auto a = g.Input(Tensor::FromVector(3, 2, {1, 9, 5, 2, 3, 4}));
  auto m = g.MaxRows(a);
  EXPECT_EQ(g.Value(m).At(0, 0), 5);
  EXPECT_EQ(g.Value(m).At(0, 1), 9);
}

TEST(GraphTest, ConcatWindowZeroPads) {
  Graph g;
  auto a = g.Input(Tensor::FromVector(2, 1, {1, 2}));
  auto w = g.ConcatWindow(a, 3);
  // Row 0: [pad, 1, 2]; Row 1: [1, 2, pad].
  EXPECT_EQ(g.Value(w).At(0, 0), 0);
  EXPECT_EQ(g.Value(w).At(0, 1), 1);
  EXPECT_EQ(g.Value(w).At(0, 2), 2);
  EXPECT_EQ(g.Value(w).At(1, 0), 1);
  EXPECT_EQ(g.Value(w).At(1, 2), 0);
}

TEST(GraphTest, EmbeddingLookupGathersRows) {
  Graph g;
  Rng rng(1);
  ParameterStore store;
  Parameter* table =
      store.Create("t", 4, 2, ParameterStore::Init::kZero, nullptr);
  table->value.At(3, 0) = 7;
  table->value.At(3, 1) = 8;
  auto e = g.EmbeddingLookup(table, {3, 0});
  EXPECT_EQ(g.Value(e).At(0, 0), 7);
  EXPECT_EQ(g.Value(e).At(1, 1), 0);
}

TEST(GraphTest, DropoutEvalIsIdentity) {
  Graph g;
  Rng rng(2);
  auto a = g.Input(Tensor::FromVector(1, 4, {1, 2, 3, 4}));
  auto d = g.Dropout(a, 0.5f, /*train=*/false, &rng);
  EXPECT_EQ(d, a);  // same node
}

TEST(GraphTest, DropoutTrainZeroesAndRescales) {
  Graph g;
  Rng rng(3);
  std::vector<float> ones(1000, 1.0f);
  auto a = g.Input(Tensor::FromVector(1, 1000, ones));
  auto d = g.Dropout(a, 0.5f, /*train=*/true, &rng);
  int zeros = 0;
  double total = 0;
  for (int j = 0; j < 1000; ++j) {
    float v = g.Value(d).At(0, j);
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout rescale
    }
    total += v;
  }
  EXPECT_NEAR(zeros, 500, 60);
  EXPECT_NEAR(total / 1000.0, 1.0, 0.15);  // expectation preserved
}

TEST(GraphTest, BackwardAccumulatesIntoSharedParameter) {
  Rng rng(4);
  ParameterStore store;
  Parameter* p =
      store.Create("p", 1, 1, ParameterStore::Init::kZero, nullptr);
  p->value.At(0, 0) = 2.0f;
  Graph g;
  // loss = p * p  => dloss/dp = 2p = 4.
  auto loss = g.Mul(g.Use(p), g.Use(p));
  g.Backward(loss);
  EXPECT_FLOAT_EQ(p->grad.At(0, 0), 4.0f);
}

TEST(GraphTest, BackwardTwiceAccumulates) {
  ParameterStore store;
  Parameter* p =
      store.Create("p", 1, 1, ParameterStore::Init::kZero, nullptr);
  p->value.At(0, 0) = 1.0f;
  for (int i = 0; i < 2; ++i) {
    Graph g;
    g.Backward(g.ScalarMul(g.Use(p), 3.0f));
  }
  EXPECT_FLOAT_EQ(p->grad.At(0, 0), 6.0f);
  store.ZeroGrad();
  EXPECT_FLOAT_EQ(p->grad.At(0, 0), 0.0f);
}

TEST(ParameterStoreTest, DuplicateNameAborts) {
  ParameterStore store;
  store.Create("x", 1, 1, ParameterStore::Init::kZero, nullptr);
  EXPECT_DEATH(store.Create("x", 1, 1, ParameterStore::Init::kZero, nullptr),
               "duplicate");
}

TEST(ParameterStoreTest, TotalWeights) {
  Rng rng(5);
  ParameterStore store;
  store.Create("a", 2, 3, ParameterStore::Init::kXavier, &rng);
  store.Create("b", 1, 4, ParameterStore::Init::kZero, nullptr);
  EXPECT_EQ(store.TotalWeights(), 10u);
  EXPECT_NE(store.Get("a"), nullptr);
  EXPECT_EQ(store.Get("zzz"), nullptr);
}

}  // namespace
}  // namespace alicoco::nn
