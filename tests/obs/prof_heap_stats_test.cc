#include "obs/prof/heap_stats.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>

namespace alicoco::obs::prof {
namespace {

// obs_test links $<TARGET_OBJECTS:alicoco_alloc_hook>, so the global
// operator new/delete replacements are live in this binary.
TEST(HeapStatsTest, HookIsLinkedIntoThisBinary) {
  EXPECT_TRUE(HeapHookLinked());
}

TEST(HeapStatsTest, TrackingDisabledByDefaultCountsNothing) {
  ASSERT_FALSE(HeapTrackingEnabled());
  HeapCounters before = HeapCountersNow();
  HeapProbeAlloc(128);
  HeapCounters after = HeapCountersNow();
  EXPECT_EQ(after.allocs, before.allocs);
  EXPECT_EQ(after.alloc_bytes, before.alloc_bytes);
}

TEST(HeapStatsTest, ScopedTrackingCountsNewAndSizedDelete) {
  ScopedHeapTracking tracking;
  ASSERT_TRUE(HeapTrackingEnabled());
  HeapCounters before = HeapCountersNow();
  // The out-of-line volatile probe in alloc_hook.cc defeats C++14
  // allocation elision: the new/delete pair must actually run.
  HeapProbeAlloc(4096);
  HeapCounters after = HeapCountersNow();
  EXPECT_GE(after.allocs - before.allocs, 1u);
  EXPECT_GE(after.frees - before.frees, 1u);
  EXPECT_GE(after.alloc_bytes - before.alloc_bytes, 4096u);
}

TEST(HeapStatsTest, AlignedAllocationsAreCounted) {
  ScopedHeapTracking tracking;
  HeapCounters before = HeapCountersNow();
  HeapProbeAllocAligned(64);  // 64-byte-aligned operator new/delete pair
  HeapCounters after = HeapCountersNow();
  EXPECT_GE(after.allocs - before.allocs, 1u);
  EXPECT_GE(after.alloc_bytes - before.alloc_bytes, 64u);
}

TEST(HeapStatsTest, CountersAreCumulativeAcrossDisable) {
  HeapCounters mid;
  {
    ScopedHeapTracking tracking;
    HeapProbeAlloc(32);
    mid = HeapCountersNow();
  }
  // Disabling stops the counting but never resets the totals.
  EXPECT_FALSE(HeapTrackingEnabled());
  HeapCounters after = HeapCountersNow();
  EXPECT_GE(after.allocs, mid.allocs);
  EXPECT_EQ(after.alloc_bytes, HeapCountersNow().alloc_bytes);
}

TEST(HeapStatsTest, PeakRssIsNonTrivial) {
  // getrusage truth: a running test binary is at least a megabyte big.
  EXPECT_GT(PeakRssBytes(), uint64_t{1} << 20);
}

TEST(HeapStatsTest, ScopedTrackingRestoresPreviousState) {
  ASSERT_FALSE(HeapTrackingEnabled());
  {
    ScopedHeapTracking outer;
    {
      ScopedHeapTracking inner;
      EXPECT_TRUE(HeapTrackingEnabled());
    }
    EXPECT_TRUE(HeapTrackingEnabled());  // inner restored outer's "on"
  }
  EXPECT_FALSE(HeapTrackingEnabled());
}

}  // namespace
}  // namespace alicoco::obs::prof
