#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/exporters.h"

namespace alicoco::obs {
namespace {

/// Deterministic clock: every read advances by 10us.
Tracer MakeFakeTracer(uint64_t* now) {
  return Tracer([now]() { return *now += 10; });
}

TEST(TracerTest, RecordsSpansInCompletionOrder) {
  uint64_t now = 0;
  Tracer tracer = MakeFakeTracer(&now);
  {
    ScopedSpan outer(&tracer, "outer");
    { ScopedSpan inner(&tracer, "inner"); }
  }
  std::vector<SpanRecord> records = tracer.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "inner");
  EXPECT_EQ(records[1].name, "outer");
}

TEST(TracerTest, ParentChildNesting) {
  uint64_t now = 0;
  Tracer tracer = MakeFakeTracer(&now);
  {
    ScopedSpan root(&tracer, "root");
    EXPECT_EQ(root.parent_id(), 0u);
    {
      ScopedSpan child(&tracer, "child");
      EXPECT_EQ(child.parent_id(), root.id());
      {
        ScopedSpan grandchild(&tracer, "grandchild");
        EXPECT_EQ(grandchild.parent_id(), child.id());
      }
    }
    // After the child closed, a new span is root's child again.
    ScopedSpan sibling(&tracer, "sibling");
    EXPECT_EQ(sibling.parent_id(), root.id());
  }
  EXPECT_EQ(tracer.size(), 4u);
}

TEST(TracerTest, SpansOnOtherThreadsAreRoots) {
  Tracer tracer;
  ScopedSpan main_span(&tracer, "main");
  uint64_t observed_parent = 99;
  std::thread t([&] {
    ScopedSpan worker_span(&tracer, "worker");
    observed_parent = worker_span.parent_id();
  });
  t.join();
  EXPECT_EQ(observed_parent, 0u);  // parent chain is per-thread
}

TEST(TracerTest, InterleavedTracersDoNotAdoptEachOthersIds) {
  uint64_t now_a = 0, now_b = 0;
  Tracer tracer_a = MakeFakeTracer(&now_a);
  Tracer tracer_b = MakeFakeTracer(&now_b);
  ScopedSpan outer(&tracer_a, "outer");
  {
    // tracer_b's span opens inside tracer_a's — it must still be a root
    // of its own trace, not a child of a foreign span id.
    ScopedSpan other(&tracer_b, "other");
    EXPECT_EQ(other.parent_id(), 0u);
    // ...and tracer_a spans nested below still chain to tracer_a.
    ScopedSpan inner(&tracer_a, "inner");
    EXPECT_EQ(inner.parent_id(), outer.id());
  }
  ScopedSpan after(&tracer_a, "after");
  EXPECT_EQ(after.parent_id(), outer.id());
}

TEST(TracerTest, DurationsComeFromTheInjectedClock) {
  uint64_t now = 0;
  Tracer tracer = MakeFakeTracer(&now);
  {
    ScopedSpan span(&tracer, "timed");  // start = 10
  }                                     // end = 20
  std::vector<SpanRecord> records = tracer.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].start_us, 10u);
  EXPECT_EQ(records[0].duration_us, 10u);
}

TEST(TracerTest, DrainClearsTheCollection) {
  Tracer tracer;
  { ScopedSpan span(&tracer, "one"); }
  EXPECT_EQ(tracer.Drain().size(), 1u);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(ScopedSpanTest, NullTracerIsANoOp) {
  ScopedSpan span(nullptr, "ignored");
  span.AddAttribute("k", "v");
  span.AddAttribute("n", uint64_t{3});
  span.AddAttribute("d", 1.5);
  EXPECT_EQ(span.id(), 0u);
  EXPECT_EQ(span.ElapsedUs(), 0u);
}

TEST(ScopedSpanTest, AttributeFormatting) {
  uint64_t now = 0;
  Tracer tracer = MakeFakeTracer(&now);
  {
    ScopedSpan span(&tracer, "attrs");
    span.AddAttribute("s", "text");
    span.AddAttribute("n", uint64_t{42});
    span.AddAttribute("d", 0.93);
  }
  std::vector<SpanRecord> records = tracer.Records();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].attributes.size(), 3u);
  EXPECT_EQ(records[0].attributes[0].second, "text");
  EXPECT_EQ(records[0].attributes[1].second, "42");
  EXPECT_EQ(records[0].attributes[2].second, "0.93");
}

TEST(TraceJsonlExportTest, GoldenOutput) {
  uint64_t now = 0;
  Tracer tracer = MakeFakeTracer(&now);
  {
    ScopedSpan build(&tracer, "pipeline.build");  // start = 10
    {
      ScopedSpan mining(&tracer, "pipeline.mining");  // start = 20
      mining.AddAttribute("epochs", uint64_t{2});
      mining.AddAttribute("precision", 0.93);
    }  // end = 30
  }    // end = 40

  const std::string expected =
      "{\"span_id\":1,\"parent_id\":0,\"name\":\"pipeline.build\","
      "\"start_us\":10,\"duration_us\":30,\"attributes\":{}}\n"
      "{\"span_id\":2,\"parent_id\":1,\"name\":\"pipeline.mining\","
      "\"start_us\":20,\"duration_us\":10,\"attributes\":"
      "{\"epochs\":\"2\",\"precision\":\"0.93\"}}\n";
  EXPECT_EQ(ExportTraceJsonl(tracer.Records()), expected);
}

TEST(TraceJsonlExportTest, EscapesSpecialCharacters) {
  uint64_t now = 0;
  Tracer tracer = MakeFakeTracer(&now);
  { ScopedSpan span(&tracer, "a\"b\\c\nd"); }
  std::string jsonl = ExportTraceJsonl(tracer.Records());
  EXPECT_NE(jsonl.find("\"name\":\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

}  // namespace
}  // namespace alicoco::obs
