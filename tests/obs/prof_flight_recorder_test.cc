#include "obs/prof/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace alicoco::obs::prof {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightRecorderTest, RecordsAppearInSnapshotOldestFirst) {
  FlightRecorder recorder(16);
  recorder.Record("mark", "first");
  recorder.Record("span", "second");
  recorder.Record("third");  // shorthand -> kind "mark"
  EXPECT_EQ(recorder.recorded(), 3u);

  std::vector<std::string> lines = recorder.Snapshot();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"kind\":\"mark\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"detail\":\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"detail\":\"third\""), std::string::npos);
}

TEST(FlightRecorderTest, RingOverwriteKeepsOnlyTheTail) {
  FlightRecorder recorder(4);  // rounds to capacity 4
  for (int i = 0; i < 10; ++i) {
    recorder.Record("mark", "event-" + std::to_string(i));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  std::vector<std::string> lines = recorder.Snapshot();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines.front().find("event-6"), std::string::npos);
  EXPECT_NE(lines.back().find("event-9"), std::string::npos);
}

TEST(FlightRecorderTest, DetailIsEscapedAndTruncatedWithMarker) {
  FlightRecorder recorder(8);
  recorder.Record("mark", "quote \" backslash \\ newline \n done");
  std::vector<std::string> lines = recorder.Snapshot();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("quote \\\" backslash \\\\ newline \\n done"),
            std::string::npos);

  recorder.Record("mark", std::string(1000, 'x'));
  lines = recorder.Snapshot();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_LE(lines[1].size(), FlightRecorder::kLineBytes);
  EXPECT_NE(lines[1].find("xxx..."), std::string::npos);
}

TEST(FlightRecorderTest, DumpJsonlWritesOneLinePerEvent) {
  FlightRecorder recorder(8);
  recorder.Record("mark", "alpha");
  recorder.Record("mark", "beta");
  const std::string path =
      testing::TempDir() + "flight_recorder_dump_test.jsonl";
  ASSERT_TRUE(recorder.DumpJsonl(path).ok());
  const std::string blob = ReadWholeFile(path);
  EXPECT_NE(blob.find("\"detail\":\"alpha\"}\n"), std::string::npos);
  EXPECT_NE(blob.find("\"detail\":\"beta\"}\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, LogSinkTeesRecordsIntoTheRing) {
  FlightRecorder recorder(8);
  FlightRecorderLogSink sink(&recorder);
  LogRecord record;
  record.file = "builder.cc";
  record.line = 42;
  record.message = "stage mining begin";
  sink.Write(record);
  std::vector<std::string> lines = recorder.Snapshot();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kind\":\"log\""), std::string::npos);
  EXPECT_NE(lines[0].find("builder.cc:42 stage mining begin"),
            std::string::npos);
}

TEST(FlightRecorderTest, SpanListenerRecordsFinishedSpans) {
  FlightRecorder recorder(8);
  Tracer tracer;
  tracer.SetSpanListener(MakeSpanFlightListener(&recorder));
  {
    ScopedSpan outer(&tracer, "pipeline.build");
    ScopedSpan inner(&tracer, "pipeline.mining");
  }
  std::vector<std::string> lines = recorder.Snapshot();
  ASSERT_EQ(lines.size(), 2u);  // inner closes first
  EXPECT_NE(lines[0].find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(lines[0].find("pipeline.mining"), std::string::npos);
  EXPECT_NE(lines[1].find("pipeline.build"), std::string::npos);
}

// Death tests: the crash-dump machinery runs in the forked child, so the
// parent's process-wide handler state is never touched.
TEST(FlightRecorderDeathTest, CheckFailureDumpsTheRing) {
  const std::string path =
      testing::TempDir() + "flight_recorder_check_dump.jsonl";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        FlightRecorder recorder(64);
        recorder.Record("mark", "pre-crash breadcrumb");
        recorder.InstallCrashDump(path);
        ALICOCO_CHECK(1 == 2) << "kaboom";
      },
      "kaboom");
  const std::string blob = ReadWholeFile(path);
  // The dump holds the breadcrumb trail plus the rendered CHECK message.
  EXPECT_NE(blob.find("pre-crash breadcrumb"), std::string::npos) << blob;
  EXPECT_NE(blob.find("\"kind\":\"check\""), std::string::npos) << blob;
  EXPECT_NE(blob.find("kaboom"), std::string::npos) << blob;
  std::remove(path.c_str());
}

TEST(FlightRecorderDeathTest, FatalSignalDumpsTheRing) {
  const std::string path =
      testing::TempDir() + "flight_recorder_signal_dump.jsonl";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        FlightRecorder recorder(64);
        recorder.Record("mark", "before the abort");
        recorder.InstallCrashDump(path);
        std::abort();  // SIGABRT -> handler dumps, then re-raises
      },
      "");
  const std::string blob = ReadWholeFile(path);
  EXPECT_NE(blob.find("before the abort"), std::string::npos) << blob;
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DestructorDropsCrashRegistration) {
  const std::string path =
      testing::TempDir() + "flight_recorder_unregister.jsonl";
  {
    FlightRecorder recorder(8);
    recorder.InstallCrashDump(path);
  }  // destructor must clear the global registration
  // A second recorder can now install without tripping the CHECK.
  FlightRecorder next(8);
  next.InstallCrashDump(path);
  FlightRecorder::UninstallCrashDumpForTest();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace alicoco::obs::prof
