#include "obs/prof/cpu_profiler.h"

#include <gtest/gtest.h>

#include <ctime>
#include <string>

#include "common/status.h"

namespace alicoco::obs::prof {

// External linkage on purpose: obs_test links with -rdynamic so this
// symbol lands in .dynsym and backtrace_symbols can name the hot frames.
// noinline + a data-dependent argument keep the optimizer from hoisting
// or merging the calls.
__attribute__((noinline)) uint64_t ProfTestHotSpin(uint64_t seed) {
  uint64_t x = seed;
  for (int i = 0; i < 64 * 1024; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return x;
}

namespace {

double ProcessCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

TEST(CpuProfilerTest, RejectsBadOptions) {
  CpuProfiler profiler;
  EXPECT_TRUE(profiler.Start({/*sample_hz=*/0}).IsInvalidArgument());
  EXPECT_TRUE(profiler.Start({/*sample_hz=*/20000}).IsInvalidArgument());
  EXPECT_TRUE(
      profiler.Start({/*sample_hz=*/97, /*ring_capacity=*/0})
          .IsInvalidArgument());
  EXPECT_FALSE(profiler.running());
}

TEST(CpuProfilerTest, StopWithoutStartIsIdempotent) {
  CpuProfiler profiler;
  EXPECT_TRUE(profiler.Stop().ok());
  EXPECT_TRUE(profiler.Stop().ok());
  EXPECT_FALSE(profiler.running());
}

TEST(CpuProfilerTest, EmptyProfileRendersEmptyReports) {
  CpuProfiler profiler;
  CpuProfile profile = profiler.TakeProfile();
  EXPECT_EQ(profile.samples, 0u);
  EXPECT_EQ(profile.ToCollapsed(), "");
  EXPECT_NE(profile.TopNText(5).find("0 samples"), std::string::npos);
}

TEST(CpuProfilerTest, CapturesAndSymbolizesHotFunction) {
  CpuProfiler profiler;
  CpuProfilerOptions options;
  options.sample_hz = 997;  // dense sampling keeps the burn window short
  Status started = profiler.Start(options);
  if (started.IsNotImplemented()) {
    GTEST_SKIP() << "no backtrace() on this platform";
  }
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_TRUE(profiler.running());

  // Burn a fixed amount of process CPU time (ITIMER_PROF ticks in CPU
  // time, so wall-clock stalls from CI noise cannot starve the sampler).
  const double cpu_start = ProcessCpuSeconds();
  uint64_t sink = 0;
  uint64_t round = 0;
  while (ProcessCpuSeconds() - cpu_start < 0.4) {
    sink += ProfTestHotSpin(round++);
  }
  volatile uint64_t consume = sink;
  (void)consume;

  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_FALSE(profiler.running());
  CpuProfile profile = profiler.TakeProfile();

  // 0.4 CPU-seconds at 997Hz is ~400 expected samples; 20 is a very
  // conservative floor for slow or throttled machines.
  EXPECT_GE(profile.samples, 20u);
  EXPECT_EQ(profile.dropped, 0u);
  const std::string collapsed = profile.ToCollapsed();
  EXPECT_NE(collapsed.find("ProfTestHotSpin"), std::string::npos)
      << collapsed;
  EXPECT_NE(profile.TopNText(10).find("ProfTestHotSpin"), std::string::npos);
  // Handler machinery must have been trimmed out of every stack.
  EXPECT_EQ(collapsed.find("CpuProfilerSignalHandler"), std::string::npos);
  EXPECT_EQ(collapsed.find("__restore_rt"), std::string::npos);
}

TEST(CpuProfilerTest, RestartAfterStopCollectsFreshSamples) {
  CpuProfiler profiler;
  CpuProfilerOptions options;
  options.sample_hz = 997;
  Status started = profiler.Start(options);
  if (started.IsNotImplemented()) {
    GTEST_SKIP() << "no backtrace() on this platform";
  }
  ASSERT_TRUE(started.ok());
  ASSERT_TRUE(profiler.Stop().ok());
  (void)profiler.TakeProfile();

  // Second session starts (approximately) from zero: at most a stray
  // tick can land between arm and disarm.
  ASSERT_TRUE(profiler.Start(options).ok());
  EXPECT_LE(profiler.ApproxSamples(), 2u);
  ASSERT_TRUE(profiler.Stop().ok());
}

TEST(CpuProfileTest, CollapsedFormatSortsByCountAndEscapesSeparator) {
  CpuProfile profile;
  profile.stacks[{"main", "a()"}] = 3;
  profile.stacks[{"main", "b;()"}] = 7;
  EXPECT_EQ(profile.ToCollapsed(),
            "main;b:() 7\n"
            "main;a() 3\n");
}

TEST(CpuProfileTest, TopNCountsSelfAndInclusive) {
  CpuProfile profile;
  profile.samples = 10;
  profile.stacks[{"main", "parent", "leaf"}] = 6;
  profile.stacks[{"main", "leaf"}] = 4;
  const std::string text = profile.TopNText(2);
  // leaf: self 10 (leaf of both stacks), inclusive 10.
  EXPECT_NE(text.find("10       10  leaf"), std::string::npos) << text;
  // Truncated to 2 rows: main (self 0) is cut, parent may or may not
  // survive; the header always names the sample count.
  EXPECT_NE(text.find("10 samples"), std::string::npos);
}

}  // namespace
}  // namespace alicoco::obs::prof
