#include "obs/pipeline_profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace alicoco::obs {
namespace {

SpanRecord MakeSpan(uint64_t id, uint64_t parent_id, const std::string& name,
                    uint64_t duration_us) {
  SpanRecord span;
  span.id = id;
  span.parent_id = parent_id;
  span.name = name;
  span.start_us = id * 100;
  span.duration_us = duration_us;
  return span;
}

TEST(PipelineProfileTest, JsonRoundTrip) {
  PipelineProfile profile;
  profile.world = "bench";
  profile.total_ms = 1234.5;
  StageProfile mining;
  mining.name = "mining";
  mining.wall_ms = 500.25;
  mining.counters["candidates"] = 321;
  mining.counters["accepted"] = 42;
  profile.stages.push_back(mining);
  StageProfile tagging;
  tagging.name = "concept_tagging";
  tagging.wall_ms = 7;
  profile.stages.push_back(tagging);

  Result<PipelineProfile> parsed = PipelineProfile::FromJson(profile.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->world, "bench");
  EXPECT_EQ(parsed->total_ms, 1234.5);
  ASSERT_EQ(parsed->stages.size(), 2u);
  EXPECT_EQ(parsed->stages[0].name, "mining");
  EXPECT_EQ(parsed->stages[0].wall_ms, 500.25);
  EXPECT_EQ(parsed->stages[0].counters.at("candidates"), 321.0);
  EXPECT_EQ(parsed->stages[0].counters.at("accepted"), 42.0);
  EXPECT_TRUE(parsed->stages[1].counters.empty());
}

TEST(PipelineProfileTest, FindStage) {
  PipelineProfile profile;
  StageProfile stage;
  stage.name = "mining";
  profile.stages.push_back(stage);
  EXPECT_NE(profile.FindStage("mining"), nullptr);
  EXPECT_EQ(profile.FindStage("validation"), nullptr);
}

TEST(PipelineProfileTest, FromJsonRejectsUnknownSchema) {
  Result<PipelineProfile> parsed = PipelineProfile::FromJson(
      R"({"schema": "somebody.elses.v9", "world": "x", "total_ms": 1,
          "stages": []})");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("unknown profile schema"),
            std::string::npos);
}

TEST(PipelineProfileTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(PipelineProfile::FromJson("").ok());
  EXPECT_FALSE(PipelineProfile::FromJson("not json at all").ok());
  EXPECT_FALSE(PipelineProfile::FromJson(R"({"schema": )").ok());
  EXPECT_FALSE(PipelineProfile::FromJson(R"([1, 2, 3])").ok());
}

TEST(PipelineProfileTest, FromJsonRequiresCoreFields) {
  // Missing total_ms.
  EXPECT_FALSE(PipelineProfile::FromJson(
                   R"({"schema": "alicoco.bench_pipeline.v1", "world": "b",
                       "stages": []})")
                   .ok());
  // Missing stages array.
  EXPECT_FALSE(PipelineProfile::FromJson(
                   R"({"schema": "alicoco.bench_pipeline.v1", "world": "b",
                       "total_ms": 1})")
                   .ok());
  // Counter values must be numbers.
  EXPECT_FALSE(PipelineProfile::FromJson(
                   R"({"schema": "alicoco.bench_pipeline.v1", "world": "b",
                       "total_ms": 1, "stages": [{"name": "mining",
                       "wall_ms": 1, "counters": {"accepted": "many"}}]})")
                   .ok());
}

TEST(PipelineProfileTest, FromJsonIgnoresUnknownKeys) {
  Result<PipelineProfile> parsed = PipelineProfile::FromJson(
      R"({"schema": "alicoco.bench_pipeline.v1", "world": "b",
          "total_ms": 2, "future_field": {"a": [true, null]},
          "stages": [{"name": "mining", "wall_ms": 1, "rank": 7,
                      "counters": {}}]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->stages.size(), 1u);
  EXPECT_EQ(parsed->stages[0].name, "mining");
}

TEST(BuildPipelineProfileTest, StagesAreDirectChildrenOfTheRoot) {
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 0, "pipeline.build", 10000));
  spans.push_back(MakeSpan(2, 1, "pipeline.mining", 6000));
  // Nested detail under mining — must not appear as a stage.
  spans.push_back(MakeSpan(3, 2, "pipeline.mining.epoch", 2500));
  spans.push_back(MakeSpan(4, 1, "pipeline.validation", 1000));
  // Non-pipeline span (e.g. a bench harness span) is ignored.
  spans.push_back(MakeSpan(5, 0, "bench.setup", 999));

  Registry registry;
  registry.GetCounter("pipeline.mining.accepted")->Add(42);
  registry.GetCounter("pipeline.mining.candidates")->Add(321);
  registry.GetGauge("pipeline.validation.audit_accuracy")->Set(0.95);
  registry.GetCounter("pipeline.other_stage.ignored")->Add(7);

  PipelineProfile profile = BuildPipelineProfile(spans, registry);
  EXPECT_EQ(profile.total_ms, 10.0);
  ASSERT_EQ(profile.stages.size(), 2u);
  EXPECT_EQ(profile.stages[0].name, "mining");
  EXPECT_EQ(profile.stages[0].wall_ms, 6.0);
  EXPECT_EQ(profile.stages[0].counters.at("accepted"), 42.0);
  EXPECT_EQ(profile.stages[0].counters.at("candidates"), 321.0);
  EXPECT_EQ(profile.stages[1].name, "validation");
  EXPECT_EQ(profile.stages[1].counters.at("audit_accuracy"), 0.95);
}

TEST(BuildPipelineProfileTest, WithoutRootSpanTopLevelSpansBecomeStages) {
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 0, "pipeline.mining", 3000));
  spans.push_back(MakeSpan(2, 0, "pipeline.validation", 1000));
  spans.push_back(MakeSpan(3, 1, "pipeline.mining.epoch", 500));

  Registry registry;
  PipelineProfile profile = BuildPipelineProfile(spans, registry);
  ASSERT_EQ(profile.stages.size(), 2u);
  // total_ms falls back to the stage sum when no root span exists.
  EXPECT_EQ(profile.total_ms, 4.0);
}

TEST(BuildPipelineProfileTest, EndToEndFromAnInstrumentedTrace) {
  uint64_t now = 0;
  Tracer tracer([&now]() { return now += 1000; });
  Registry registry;
  {
    ScopedSpan build(&tracer, "pipeline.build");
    {
      ScopedSpan mining(&tracer, "pipeline.mining");
      registry.GetCounter("pipeline.mining.accepted")->Add(5);
    }
    { ScopedSpan validation(&tracer, "pipeline.validation"); }
  }
  PipelineProfile profile = BuildPipelineProfile(tracer.Records(), registry);
  ASSERT_EQ(profile.stages.size(), 2u);
  EXPECT_EQ(profile.stages[0].name, "mining");
  EXPECT_EQ(profile.stages[1].name, "validation");
  EXPECT_EQ(profile.stages[0].counters.at("accepted"), 5.0);
  EXPECT_GT(profile.total_ms, 0.0);
}

TEST(CompareToBaselineTest, PassesWhenWithinLimit) {
  PipelineProfile baseline;
  StageProfile stage;
  stage.name = "mining";
  stage.wall_ms = 100;
  baseline.stages.push_back(stage);

  PipelineProfile current = baseline;
  current.stages[0].wall_ms = 150;  // limit is 100 * 2 + 50 = 250
  EXPECT_TRUE(CompareToBaseline(baseline, current, 2.0, 50.0).empty());
}

TEST(CompareToBaselineTest, FlagsRegressedStage) {
  PipelineProfile baseline;
  StageProfile stage;
  stage.name = "mining";
  stage.wall_ms = 100;
  baseline.stages.push_back(stage);

  PipelineProfile current = baseline;
  current.stages[0].wall_ms = 300;  // limit is 100 * 2 + 50 = 250
  std::vector<std::string> regressions =
      CompareToBaseline(baseline, current, 2.0, 50.0);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_NE(regressions[0].find("'mining' regressed"), std::string::npos);
}

TEST(CompareToBaselineTest, SlackAbsorbsTinyStages) {
  PipelineProfile baseline;
  StageProfile stage;
  stage.name = "taxonomy_schema";
  stage.wall_ms = 0.01;  // doubling a 10us stage is not a regression
  baseline.stages.push_back(stage);

  PipelineProfile current = baseline;
  current.stages[0].wall_ms = 5;
  EXPECT_TRUE(CompareToBaseline(baseline, current, 2.0, 50.0).empty());
}

TEST(CompareToBaselineTest, FlagsMissingStage) {
  PipelineProfile baseline;
  StageProfile stage;
  stage.name = "validation";
  stage.wall_ms = 10;
  baseline.stages.push_back(stage);

  PipelineProfile current;  // stage dropped entirely
  std::vector<std::string> regressions =
      CompareToBaseline(baseline, current, 2.0, 50.0);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_NE(regressions[0].find("missing"), std::string::npos);
}

}  // namespace
}  // namespace alicoco::obs
