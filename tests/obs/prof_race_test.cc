// TSan stress tests for the profiling tier's concurrent structures
// (tools/ci.sh runs the ProfRace* suite under ThreadSanitizer).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/lock_stats.h"
#include "common/mutex.h"
#include "obs/metrics.h"
#include "obs/prof/flight_recorder.h"
#include "obs/prof/lock_metrics.h"
#include "obs/prof/sample_ring.h"

namespace alicoco::obs::prof {
namespace {

TEST(ProfRaceTest, SampleRingMpmcDeliversEveryAcceptedPush) {
  SampleRing<uint64_t> ring(256);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr uint64_t kPerProducer = 20000;

  std::atomic<uint64_t> pushed_ok{0};
  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<bool> producing{true};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        // Values are globally unique so a duplicated or torn slot would
        // corrupt the checksum below.
        const uint64_t value = static_cast<uint64_t>(p) * kPerProducer + i + 1;
        if (ring.TryPush(value)) {
          pushed_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      uint64_t value = 0;
      for (;;) {
        if (ring.TryPop(&value)) {
          popped.fetch_add(1, std::memory_order_relaxed);
          popped_sum.fetch_add(value, std::memory_order_relaxed);
          continue;
        }
        // An empty pop is final only once the producers have all joined:
        // no slot can still be mid-publish at that point.
        if (!producing.load(std::memory_order_acquire)) break;
      }
    });
  }
  for (auto& t : threads) t.join();
  producing.store(false, std::memory_order_release);
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped.load(), pushed_ok.load());
  EXPECT_EQ(pushed_ok.load() + ring.dropped(), kProducers * kPerProducer);
  EXPECT_GT(popped_sum.load(), 0u);
}

#if ALICOCO_LOCK_STATS
TEST(ProfRaceTest, NamedMutexHammerWithSinkInstalled) {
  Registry registry;
  LockContentionMetrics metrics(&registry);
  ScopedLockStatsSink installed(&metrics);

  Mutex mu{"race.hammer.mu"};
  CondVar cv;
  uint64_t shared = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 3000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++shared;
      }
      cv.NotifyAll();
    });
  }
  for (auto& t : threads) t.join();

  {
    MutexLock lock(mu);
    EXPECT_EQ(shared, static_cast<uint64_t>(kThreads) * kIters);
  }
  EXPECT_GE(metrics.total_acquires(),
            static_cast<uint64_t>(kThreads) * kIters);
  const Counter* acquires =
      registry.FindCounter("lock.acquires{mutex=race.hammer.mu}");
  ASSERT_NE(acquires, nullptr);
  EXPECT_GE(acquires->value(), static_cast<uint64_t>(kThreads) * kIters);
}
#endif  // ALICOCO_LOCK_STATS

TEST(ProfRaceTest, FlightRecorderConcurrentRecordAndSnapshot) {
  FlightRecorder recorder(128);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> writing{true};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        recorder.Record("mark", "writer-" + std::to_string(w) + "-event-" +
                                    std::to_string(i));
      }
    });
  }
  std::thread reader([&] {
    while (writing.load(std::memory_order_acquire)) {
      std::vector<std::string> lines = recorder.Snapshot();
      EXPECT_LE(lines.size(), 128u);
      // Accepted lines must be whole: Snapshot discards torn slots, so
      // every survivor parses as one complete JSON object.
      for (const std::string& line : lines) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
      }
    }
  });
  for (auto& t : writers) t.join();
  writing.store(false, std::memory_order_release);
  reader.join();

  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  std::vector<std::string> final_lines = recorder.Snapshot();
  EXPECT_EQ(final_lines.size(), 128u);
}

}  // namespace
}  // namespace alicoco::obs::prof
