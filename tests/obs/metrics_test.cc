#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/exporters.h"

namespace alicoco::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAddAndHighWaterMark) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(5);
  g.Set(2);
  EXPECT_EQ(g.value(), 2.0);
  EXPECT_EQ(g.max(), 5.0);
  g.Add(10);
  EXPECT_EQ(g.value(), 12.0);
  EXPECT_EQ(g.max(), 12.0);
}

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 = [0, 1); bucket i >= 1 = [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.5), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.999), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(1.999), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2.0);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024.0);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.Observe(10);
  h.Observe(30);
  h.Observe(20);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60.0);
  EXPECT_EQ(h.min(), 10.0);
  EXPECT_EQ(h.max(), 30.0);
  EXPECT_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, NegativeAndNonFiniteObservationsClampToZero) {
  Histogram h;
  h.Observe(-5);
  h.Observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, QuantilesOfUniformDistribution) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.Observe(v);
  // Exact p50 of 1..100 is 50.5; log-bucket interpolation stays within a
  // few units. The extremes clamp to the observed min/max.
  EXPECT_NEAR(h.Quantile(0.5), 50.5, 6.0);
  EXPECT_EQ(h.Quantile(0.0), 1.0);
  EXPECT_EQ(h.Quantile(1.0), 100.0);
  EXPECT_EQ(h.Quantile(0.99), 100.0);  // estimate above max clamps to max
}

TEST(HistogramTest, QuantileOfSingleValueIsThatValue) {
  // One sample IS every quantile — no interpolation across its
  // power-of-two bucket (7 lives in [4, 8); interpolation used to be
  // able to report values nobody observed).
  Histogram h;
  h.Observe(7);
  EXPECT_EQ(h.Quantile(0.0), 7.0);
  EXPECT_EQ(h.Quantile(0.5), 7.0);
  EXPECT_EQ(h.Quantile(0.99), 7.0);
  EXPECT_EQ(h.Quantile(1.0), 7.0);
}

TEST(HistogramTest, QuantileOnEmptyHistogramIsNaN) {
  // Documented sentinel: no samples means no distribution to query. NaN
  // can never be mistaken for a measured zero latency.
  Histogram h;
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.Quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.Quantile(1.0)));
}

TEST(HistogramTest, NaNQuantileRequestIsNaN) {
  Histogram h;
  h.Observe(1);
  h.Observe(2);
  EXPECT_TRUE(std::isnan(h.Quantile(std::nan(""))));
}

TEST(RegistryTest, RegistersOnFirstUseAndReturnsStablePointers) {
  Registry reg;
  Counter* c = reg.GetCounter("a.count");
  c->Increment();
  EXPECT_EQ(reg.GetCounter("a.count"), c);
  EXPECT_EQ(reg.GetCounter("a.count")->value(), 1u);
  EXPECT_EQ(reg.GetGauge("a.gauge"), reg.GetGauge("a.gauge"));
  EXPECT_EQ(reg.GetHistogram("a.hist"), reg.GetHistogram("a.hist"));
}

TEST(RegistryTest, NamesAreSortedAndFindIsNonRegistering) {
  Registry reg;
  reg.GetCounter("b");
  reg.GetCounter("a");
  std::vector<std::string> names = reg.CounterNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(reg.FindCounter("a"), reg.GetCounter("a"));
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_TRUE(reg.CounterNames().size() == 2u);  // Find did not register
}

TEST(RegistryDeathTest, CrossKindNameReuseChecks) {
  Registry reg;
  reg.GetCounter("name");
  EXPECT_DEATH(reg.GetGauge("name"), "already registered");
}

TEST(PrometheusExportTest, GoldenOutput) {
  Registry reg;
  reg.GetCounter("pipeline.mining.accepted")->Add(30);
  Gauge* depth = reg.GetGauge("pool.queue_depth");
  depth->Set(3);
  depth->Set(2);
  Histogram* lat = reg.GetHistogram("lat_us");
  lat->Observe(1);
  lat->Observe(3);

  const std::string expected =
      "# TYPE pipeline_mining_accepted_total counter\n"
      "pipeline_mining_accepted_total 30\n"
      "# TYPE pool_queue_depth gauge\n"
      "pool_queue_depth 2\n"
      "pool_queue_depth_max 3\n"
      "# TYPE lat_us histogram\n"
      "lat_us_bucket{le=\"1\"} 0\n"
      "lat_us_bucket{le=\"2\"} 1\n"
      "lat_us_bucket{le=\"4\"} 2\n"
      "lat_us_bucket{le=\"+Inf\"} 2\n"
      "lat_us_sum 4\n"
      "lat_us_count 2\n"
      "lat_us{quantile=\"0.5\"} 1.5\n"
      "lat_us{quantile=\"0.95\"} 1.95\n"
      "lat_us{quantile=\"0.99\"} 1.99\n";
  EXPECT_EQ(ExportPrometheusText(reg), expected);
}

TEST(PrometheusExportTest, EmptyRegistryExportsNothing) {
  Registry reg;
  EXPECT_EQ(ExportPrometheusText(reg), "");
}

TEST(PrometheusExportTest, EmptyHistogramQuantilesPrintNaN) {
  Registry reg;
  reg.GetHistogram("empty_us");
  std::string out = ExportPrometheusText(reg);
  // Prometheus spells unset samples "NaN" exactly; libc %g would print
  // "nan" and break scrapers.
  EXPECT_NE(out.find("empty_us{quantile=\"0.5\"} NaN\n"), std::string::npos);
  EXPECT_EQ(out.find("nan"), std::string::npos);
}

TEST(PrometheusExportTest, LabeledRegistryNamesBecomeLabels) {
  // The profiling tier names per-mutex instruments with inline labels:
  // `base{key=value}`. The exporter must surface them as real Prometheus
  // labels and merge `le`/`quantile` into the same brace group.
  Registry reg;
  reg.GetCounter("lock.acquires{mutex=thread_pool.mu}")->Add(7);
  reg.GetCounter("lock.acquires{mutex=obs.tracer.mu}")->Add(3);
  Histogram* wait = reg.GetHistogram("lock.wait_us{mutex=thread_pool.mu}");
  wait->Observe(3);

  std::string out = ExportPrometheusText(reg);
  EXPECT_NE(out.find("lock_acquires_total{mutex=\"obs.tracer.mu\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("lock_acquires_total{mutex=\"thread_pool.mu\"} 7\n"),
            std::string::npos);
  // One TYPE line per family even with several labeled series.
  EXPECT_EQ(out.find("# TYPE lock_acquires_total counter"),
            out.rfind("# TYPE lock_acquires_total counter"));
  EXPECT_NE(
      out.find("lock_wait_us_bucket{mutex=\"thread_pool.mu\",le=\"4\"} 1\n"),
      std::string::npos);
  EXPECT_NE(out.find("lock_wait_us_sum{mutex=\"thread_pool.mu\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("lock_wait_us{mutex=\"thread_pool.mu\",quantile="),
            std::string::npos);
}

TEST(PrometheusExportTest, InvalidNamesAndLabelValuesAreSanitized) {
  Registry reg;
  // Leading digit, dashes, and a label value containing every character
  // the exposition format requires escaping.
  reg.GetCounter("9lives-total{bad-key=a\"b\\c\nd}")->Add(1);
  std::string out = ExportPrometheusText(reg);
  EXPECT_NE(out.find("_9lives_total_total{bad_key=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

}  // namespace
}  // namespace alicoco::obs
