#include "obs/prof/lock_metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "common/lock_stats.h"
#include "common/mutex.h"
#include "obs/metrics.h"

namespace alicoco::obs::prof {
namespace {

#if !ALICOCO_LOCK_STATS
TEST(LockContentionMetricsTest, CompiledOut) {
  GTEST_SKIP() << "built with ALICOCO_LOCK_STATS=0";
}
#else

TEST(LockContentionMetricsTest, UncontendedAcquireCreatesInstruments) {
  Registry registry;
  LockContentionMetrics metrics(&registry);
  ScopedLockStatsSink installed(&metrics);

  Mutex mu{"test.basic.mu"};
  { MutexLock lock(mu); }
  { MutexLock lock(mu); }

  const Counter* acquires =
      registry.FindCounter("lock.acquires{mutex=test.basic.mu}");
  ASSERT_NE(acquires, nullptr);
  EXPECT_EQ(acquires->value(), 2u);
  const Counter* contended =
      registry.FindCounter("lock.contended{mutex=test.basic.mu}");
  ASSERT_NE(contended, nullptr);
  EXPECT_EQ(contended->value(), 0u);
  const Histogram* hold =
      registry.FindHistogram("lock.hold_us{mutex=test.basic.mu}");
  ASSERT_NE(hold, nullptr);
  EXPECT_EQ(hold->count(), 2u);
  EXPECT_GE(metrics.total_acquires(), 2u);
  EXPECT_EQ(metrics.total_contended(), 0u);
}

TEST(LockContentionMetricsTest, UnnamedMutexesReportNothing) {
  Registry registry;
  LockContentionMetrics metrics(&registry);
  ScopedLockStatsSink installed(&metrics);

  Mutex mu;  // unnamed: stays uninstrumented
  { MutexLock lock(mu); }
  EXPECT_EQ(metrics.total_acquires(), 0u);
  EXPECT_TRUE(registry.CounterNames().empty());
}

TEST(LockContentionMetricsTest, ContendedAcquireRecordsWait) {
  Registry registry;
  LockContentionMetrics metrics(&registry);
  ScopedLockStatsSink installed(&metrics);

  Mutex mu{"test.contended.mu"};
  // Retried because the scheduler could in principle park this thread for
  // the whole 20ms hold; one collision is all the test needs.
  for (int attempt = 0; attempt < 5 && metrics.total_contended() == 0;
       ++attempt) {
    std::atomic<bool> holder_ready{false};
    std::thread holder([&] {
      MutexLock lock(mu);
      holder_ready.store(true);
      // Hold long enough that the main thread's lock() takes the slow path.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    while (!holder_ready.load()) std::this_thread::yield();
    { MutexLock lock(mu); }  // blocks until the holder's sleep ends
    holder.join();
  }

  const Counter* contended =
      registry.FindCounter("lock.contended{mutex=test.contended.mu}");
  ASSERT_NE(contended, nullptr);
  EXPECT_GE(contended->value(), 1u);
  const Histogram* wait =
      registry.FindHistogram("lock.wait_us{mutex=test.contended.mu}");
  ASSERT_NE(wait, nullptr);
  EXPECT_GE(wait->count(), 1u);
  // The blocked acquisition waited through most of the 20ms hold.
  EXPECT_GE(metrics.total_wait_us(), 1000u);
  EXPECT_GE(metrics.total_contended(), 1u);
}

TEST(LockContentionMetricsTest, CondVarWaitIsAccounted) {
  Registry registry;
  LockContentionMetrics metrics(&registry);
  ScopedLockStatsSink installed(&metrics);

  Mutex mu{"test.cv.mu"};
  CondVar cv;
  bool ready = false;
  std::atomic<bool> waiter_holds_lock{false};
  std::thread waiter([&] {
    MutexLock lock(mu);
    waiter_holds_lock.store(true);
    while (!ready) cv.Wait(mu);
  });
  // Gate on the waiter holding mu: from then on mu is only released
  // inside cv.Wait, so acquiring it below proves the waiter is parked
  // and at least one cv-wait event is guaranteed.
  while (!waiter_holds_lock.load()) std::this_thread::yield();
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();

  const Histogram* cv_wait =
      registry.FindHistogram("lock.cv_wait_us{mutex=test.cv.mu}");
  ASSERT_NE(cv_wait, nullptr);
  EXPECT_GE(cv_wait->count(), 1u);
  EXPECT_GE(metrics.total_cv_wait_us(), 1u);
}

TEST(LockContentionMetricsTest, DistinctLiteralsWithEqualTextShareSeries) {
  // Several ThreadPools each carry their own "thread_pool.mu" literal;
  // the sink must fold them into one labeled series, not one per pointer.
  Registry registry;
  LockContentionMetrics metrics(&registry);
  ScopedLockStatsSink installed(&metrics);

  // Runtime-built copies guarantee distinct addresses with equal text.
  std::string name_a = "test.shared";
  name_a += ".mu";
  std::string name_b = "test.shared";
  name_b += ".mu";
  ASSERT_NE(name_a.c_str(), name_b.c_str());
  Mutex mu_a{name_a.c_str()};
  Mutex mu_b{name_b.c_str()};
  { MutexLock lock(mu_a); }
  { MutexLock lock(mu_b); }

  const Counter* acquires =
      registry.FindCounter("lock.acquires{mutex=test.shared.mu}");
  ASSERT_NE(acquires, nullptr);
  EXPECT_EQ(acquires->value(), 2u);
}

TEST(LockContentionMetricsTest, DetachedSinkSeesNoFurtherEvents) {
  Registry registry;
  LockContentionMetrics metrics(&registry);
  Mutex mu{"test.detach.mu"};
  {
    ScopedLockStatsSink installed(&metrics);
    MutexLock lock(mu);
  }
  { MutexLock lock(mu); }  // no sink installed anymore
  EXPECT_EQ(metrics.total_acquires(), 1u);
}

#endif  // ALICOCO_LOCK_STATS

}  // namespace
}  // namespace alicoco::obs::prof
