#include "obs/prof/bench_profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/prof/heap_stats.h"

namespace alicoco::obs::prof {
namespace {

BenchProfile MakeProfile() {
  BenchProfile profile;
  profile.world = "medium";
  profile.total_ms = 1234.5;
  profile.total_cpu_ms = 2200.25;
  profile.peak_rss_mb = 512.5;
  profile.heap_tracked = true;
  StageAttribution mining;
  mining.name = "mining";
  mining.wall_ms = 700.5;
  mining.cpu_ms = 1400.25;
  mining.lock_wait_ms = 12.5;
  mining.queue_wait_ms = 90.75;
  mining.alloc_mb = 244.5;
  mining.allocs = 1234567;
  profile.stages.push_back(mining);
  StageAttribution tagging;
  tagging.name = "tagging";
  tagging.wall_ms = 534;
  tagging.cpu_ms = 800;
  profile.stages.push_back(tagging);
  profile.overhead.per_lock_ns = 0.5;
  profile.overhead.per_alloc_ns = 1.25;
  profile.overhead.lock_ops = 42;
  profile.overhead.alloc_ops = 10000000;
  profile.overhead.pct_of_total = 0.53;
  return profile;
}

TEST(BenchProfileTest, JsonRoundTripPreservesEveryField) {
  BenchProfile original = MakeProfile();
  Result<BenchProfile> parsed = BenchProfile::FromJson(original.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const BenchProfile& p = *parsed;
  EXPECT_EQ(p.world, "medium");
  EXPECT_DOUBLE_EQ(p.total_ms, 1234.5);
  EXPECT_DOUBLE_EQ(p.total_cpu_ms, 2200.25);
  EXPECT_DOUBLE_EQ(p.peak_rss_mb, 512.5);
  EXPECT_TRUE(p.heap_tracked);
  ASSERT_EQ(p.stages.size(), 2u);
  EXPECT_EQ(p.stages[0].name, "mining");
  EXPECT_DOUBLE_EQ(p.stages[0].wall_ms, 700.5);
  EXPECT_DOUBLE_EQ(p.stages[0].cpu_ms, 1400.25);
  EXPECT_DOUBLE_EQ(p.stages[0].lock_wait_ms, 12.5);
  EXPECT_DOUBLE_EQ(p.stages[0].queue_wait_ms, 90.75);
  EXPECT_DOUBLE_EQ(p.stages[0].alloc_mb, 244.5);
  EXPECT_EQ(p.stages[0].allocs, 1234567u);
  EXPECT_EQ(p.stages[1].name, "tagging");
  EXPECT_DOUBLE_EQ(p.overhead.per_lock_ns, 0.5);
  EXPECT_DOUBLE_EQ(p.overhead.per_alloc_ns, 1.25);
  EXPECT_EQ(p.overhead.lock_ops, 42u);
  EXPECT_EQ(p.overhead.alloc_ops, 10000000u);
  EXPECT_DOUBLE_EQ(p.overhead.pct_of_total, 0.53);
}

TEST(BenchProfileTest, FromJsonRejectsWrongSchema) {
  std::string text = MakeProfile().ToJson();
  size_t pos = text.find("alicoco.bench_profile.v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 24, "alicoco.bench_profile.v9");
  Result<BenchProfile> parsed = BenchProfile::FromJson(text);
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
}

TEST(BenchProfileTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(BenchProfile::FromJson("not json").ok());
  EXPECT_FALSE(BenchProfile::FromJson("[]").ok());
}

TEST(BenchProfileTest, FindStageByName) {
  BenchProfile profile = MakeProfile();
  ASSERT_NE(profile.FindStage("tagging"), nullptr);
  EXPECT_DOUBLE_EQ(profile.FindStage("tagging")->cpu_ms, 800);
  EXPECT_EQ(profile.FindStage("absent"), nullptr);
}

TEST(CompareBenchProfileTest, PassesWithinRatioAndSlack) {
  BenchProfile baseline = MakeProfile();
  BenchProfile current = MakeProfile();
  current.stages[0].cpu_ms = baseline.stages[0].cpu_ms * 1.2;  // within 1.5x
  EXPECT_TRUE(CompareBenchProfile(baseline, current, 1.5, 200.0).empty());
}

TEST(CompareBenchProfileTest, FlagsCpuRegression) {
  BenchProfile baseline = MakeProfile();
  BenchProfile current = MakeProfile();
  current.stages[0].cpu_ms = baseline.stages[0].cpu_ms * 3.0;
  std::vector<std::string> regressions =
      CompareBenchProfile(baseline, current, 1.5, 200.0);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_NE(regressions[0].find("mining"), std::string::npos);
  EXPECT_NE(regressions[0].find("cpu regressed"), std::string::npos);
}

TEST(CompareBenchProfileTest, FlagsMissingStage) {
  BenchProfile baseline = MakeProfile();
  BenchProfile current = MakeProfile();
  current.stages.pop_back();  // drop "tagging"
  std::vector<std::string> regressions =
      CompareBenchProfile(baseline, current, 1.5, 200.0);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_NE(regressions[0].find("'tagging' missing"), std::string::npos);
}

TEST(CompareBenchProfileTest, ExtraCurrentStagesAreAllowed) {
  // New stages in the current profile are growth, not regression.
  BenchProfile baseline = MakeProfile();
  BenchProfile current = MakeProfile();
  StageAttribution extra;
  extra.name = "brand_new";
  extra.cpu_ms = 1e9;
  current.stages.push_back(extra);
  EXPECT_TRUE(CompareBenchProfile(baseline, current, 1.5, 200.0).empty());
}

TEST(StageProfilerTest, NullSourcesYieldNamedStagesInOrder) {
  StageProfiler profiler(nullptr, nullptr, "");
  profiler.BeginStage("alpha");
  profiler.BeginStage("beta");
  profiler.Finish();
  profiler.Finish();  // idempotent

  std::vector<StageAttribution> stages = profiler.TakeStages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].name, "alpha");
  EXPECT_EQ(stages[1].name, "beta");
  EXPECT_GE(stages[0].wall_ms, 0.0);
  EXPECT_EQ(stages[0].lock_wait_ms, 0.0);
  EXPECT_EQ(stages[0].queue_wait_ms, 0.0);
}

TEST(StageProfilerTest, QueueWaitComesFromTheNamedHistogramDelta) {
  Registry registry;
  Histogram* queue = registry.GetHistogram("pool.queue_wait_us");
  StageProfiler profiler(nullptr, &registry, "pool.queue_wait_us");

  queue->Observe(1000);  // pre-existing sum is baseline, not stage cost
  profiler.BeginStage("alpha");
  queue->Observe(2500);
  queue->Observe(1500);
  profiler.BeginStage("beta");
  profiler.Finish();

  std::vector<StageAttribution> stages = profiler.TakeStages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_DOUBLE_EQ(stages[0].queue_wait_ms, 4.0);  // (2500+1500)us
  EXPECT_DOUBLE_EQ(stages[1].queue_wait_ms, 0.0);
}

TEST(StageProfilerTest, HeapDeltaAttributesAllocationsToTheOpenStage) {
  if (!HeapHookLinked()) GTEST_SKIP() << "alloc hook not linked";
  ScopedHeapTracking tracking;
  StageProfiler profiler(nullptr, nullptr, "");

  profiler.BeginStage("alloc_heavy");
  constexpr size_t kBytes = 8 * 1024 * 1024;
  HeapProbeAlloc(kBytes);
  profiler.BeginStage("quiet");
  profiler.Finish();

  std::vector<StageAttribution> stages = profiler.TakeStages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_GE(stages[0].alloc_mb, 8.0);
  EXPECT_GE(stages[0].allocs, 1u);
  // The quiet stage allocated at most test-harness noise, never 8MB.
  EXPECT_LT(stages[1].alloc_mb, 1.0);
}

}  // namespace
}  // namespace alicoco::obs::prof
