#include "obs/prof/sample_ring.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace alicoco::obs::prof {
namespace {

TEST(SampleRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SampleRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SampleRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SampleRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SampleRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SampleRing<int>(1000).capacity(), 1024u);
}

TEST(SampleRingTest, FifoOrderWithinCapacity) {
  SampleRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SampleRingTest, FullRingDropsAndCounts) {
  SampleRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_FALSE(ring.TryPush(100));
  EXPECT_EQ(ring.dropped(), 2u);
  // Draining one slot makes room for exactly one more push.
  int v = -1;
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.TryPush(42));
  EXPECT_FALSE(ring.TryPush(43));
  EXPECT_EQ(ring.dropped(), 3u);
}

TEST(SampleRingTest, SlotsAreReusableAcrossManyLaps) {
  SampleRing<uint64_t> ring(4);
  uint64_t v = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.TryPop(&v));
    ASSERT_EQ(v, i);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SampleRingTest, StructPayloadCopiesIntact) {
  struct Payload {
    int32_t depth;
    void* frames[4];
  };
  SampleRing<Payload> ring(2);
  Payload in{};
  in.depth = 3;
  int dummy = 0;
  in.frames[0] = &dummy;
  in.frames[2] = &ring;
  ASSERT_TRUE(ring.TryPush(in));
  Payload out{};
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.depth, 3);
  EXPECT_EQ(out.frames[0], &dummy);
  EXPECT_EQ(out.frames[1], nullptr);
  EXPECT_EQ(out.frames[2], &ring);
}

}  // namespace
}  // namespace alicoco::obs::prof
