// Concurrency stress for the observability layer, mirroring the thread
// pool's race suite: meant to run under the TSan preset (tools/ci.sh
// includes ObsRace in the threaded-test regex), where any unsynchronized
// access to registry internals or tracer state is a hard failure.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alicoco::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 2000;

void RunThreads(const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(fn, t);
  for (auto& thread : threads) thread.join();
}

TEST(ObsRaceTest, ConcurrentCounterIncrements) {
  Counter counter;
  RunThreads([&](int) {
    for (int i = 0; i < kIterations; ++i) counter.Increment();
  });
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads) * kIterations);
}

TEST(ObsRaceTest, ConcurrentGaugeUpdatesKeepHighWaterMark) {
  Gauge gauge;
  RunThreads([&](int t) {
    for (int i = 0; i < kIterations; ++i) {
      gauge.Set(static_cast<double>(t * kIterations + i));
    }
  });
  EXPECT_EQ(gauge.max(), static_cast<double>(kThreads * kIterations - 1));
}

TEST(ObsRaceTest, ConcurrentHistogramObservations) {
  Histogram histogram;
  RunThreads([&](int t) {
    for (int i = 0; i < kIterations; ++i) {
      histogram.Observe(static_cast<double>(t + 1));
      if (i % 64 == 0) (void)histogram.Quantile(0.5);  // reader in the mix
    }
  });
  EXPECT_EQ(histogram.count(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(histogram.min(), 1.0);
  EXPECT_EQ(histogram.max(), static_cast<double>(kThreads));
}

TEST(ObsRaceTest, ConcurrentRegistryRegistrationAndUse) {
  Registry registry;
  RunThreads([&](int t) {
    for (int i = 0; i < kIterations; ++i) {
      // All threads race on the same few names; register-on-first-use must
      // hand every thread the same instrument.
      registry.GetCounter("shared.counter." + std::to_string(i % 4))
          ->Increment();
      registry.GetHistogram("shared.hist")->Observe(i);
      if (i % 32 == 0) (void)registry.CounterNames();
    }
    (void)t;
  });
  uint64_t total = 0;
  for (const std::string& name : registry.CounterNames()) {
    total += registry.FindCounter(name)->value();
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.FindHistogram("shared.hist")->count(),
            static_cast<uint64_t>(kThreads) * kIterations);
}

TEST(ObsRaceTest, ConcurrentSpansAcrossThreads) {
  Tracer tracer;
  RunThreads([&](int) {
    for (int i = 0; i < kIterations / 4; ++i) {
      ScopedSpan outer(&tracer, "outer");
      ScopedSpan inner(&tracer, "inner");
      inner.AddAttribute("i", static_cast<uint64_t>(i));
    }
  });
  EXPECT_EQ(tracer.size(),
            static_cast<size_t>(kThreads) * (kIterations / 4) * 2);
}

/// Sink accumulating records under its own lock (the LogSink contract).
class CollectingSink : public LogSink {
 public:
  void Write(const LogRecord& record) override ALICOCO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++records_;
    last_thread_id_ = record.thread_id;
  }
  int records() const ALICOCO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return records_;
  }

 private:
  mutable Mutex mu_;
  int records_ ALICOCO_GUARDED_BY(mu_) = 0;
  uint32_t last_thread_id_ ALICOCO_GUARDED_BY(mu_) = 0;
};

TEST(ObsRaceTest, ConcurrentLoggingThroughOneSink) {
  CollectingSink sink;
  Logger::SetSink(&sink);
  RunThreads([&](int) {
    for (int i = 0; i < kIterations / 10; ++i) {
      ALICOCO_LOG(Info) << "stress " << i;
    }
  });
  Logger::SetSink(nullptr);
  EXPECT_EQ(sink.records(), kThreads * (kIterations / 10));
}

}  // namespace
}  // namespace alicoco::obs
