// Matching module tests (Section 7.6): dataset construction, every matcher
// trains and beats chance, and the key paper claims hold on the synthetic
// world — lexical matching fails on semantic drift, knowledge bridges it.

#include <gtest/gtest.h>

#include "datagen/resources.h"
#include "datagen/world.h"
#include "matching/bm25_matcher.h"
#include "matching/dssm.h"
#include "matching/knowledge_matcher.h"
#include "matching/match_pyramid.h"
#include "matching/re2_matcher.h"
#include "text/tokenizer.h"

namespace alicoco::matching {
namespace {

struct Fixture {
  datagen::World world;
  datagen::WorldResources resources;
  MatchingDataset dataset;

  static datagen::WorldConfig WorldCfg() {
    datagen::WorldConfig cfg;
    cfg.seed = 61;
    cfg.heads_per_leaf = 2;
    cfg.derived_per_head = 3;
    cfg.per_domain_vocab = 12;
    cfg.num_events = 10;
    cfg.num_items = 700;
    cfg.num_good_ec_concepts = 120;
    cfg.num_bad_ec_concepts = 40;
    cfg.titles = 1000;
    cfg.reviews = 500;
    cfg.guides = 400;
    cfg.queries = 200;
    cfg.num_users = 10;
    cfg.num_needs_queries = 50;
    return cfg;
  }

  Fixture()
      : world(datagen::World::Generate(WorldCfg())),
        resources(world, datagen::ResourcesConfig{}) {
    MatchingDatasetConfig mc;
    mc.max_positives_per_concept = 6;
    mc.rank_candidates = 15;
    dataset = BuildMatchingDataset(world, mc);
  }

  KnowledgeResources KnowRes() const {
    KnowledgeResources r;
    r.pos_tagger = &world.pos_tagger();
    r.gloss_encoder = &resources.gloss_encoder();
    r.gloss_lookup = [this](const std::string& w) {
      return resources.GlossOf(w);
    };
    r.concept_classes = [this](const std::vector<std::string>& tokens) {
      std::vector<int> out;
      auto ec = world.net().FindEcConcept(text::JoinTokens(tokens));
      if (ec.has_value()) {
        for (kg::ConceptId p : world.net().PrimitivesForEc(*ec)) {
          out.push_back(static_cast<int>(world.net().Get(p).cls.value));
        }
      }
      return out;
    };
    r.num_classes = static_cast<int>(world.net().taxonomy().size());
    return r;
  }
};

Fixture& SharedFixture() {
  static Fixture f;
  return f;
}

TEST(MatchingDatasetTest, SplitsAndLabels) {
  Fixture& f = SharedFixture();
  EXPECT_FALSE(f.dataset.train.empty());
  EXPECT_FALSE(f.dataset.test.empty());
  EXPECT_FALSE(f.dataset.rank_queries.empty());
  // Test concepts are disjoint from train concepts.
  std::unordered_set<std::string> train_concepts;
  for (const auto& ex : f.dataset.train) {
    train_concepts.insert(text::JoinTokens(ex.concept_tokens));
  }
  for (const auto& ex : f.dataset.test) {
    EXPECT_EQ(train_concepts.count(text::JoinTokens(ex.concept_tokens)), 0u);
  }
  // Labels are consistent with the gold net.
  for (const auto& ex : f.dataset.test) {
    auto ec = f.world.net().FindEcConcept(text::JoinTokens(ex.concept_tokens));
    ASSERT_TRUE(ec.has_value());
    auto items = f.world.net().ItemsForEc(*ec);
    bool linked = std::find(items.begin(), items.end(),
                            kg::ItemId(static_cast<uint32_t>(ex.item_id))) !=
                  items.end();
    EXPECT_EQ(linked, ex.label == 1);
  }
}

TEST(MatchingTest, Bm25ScoresLexicalOverlapOnly) {
  Fixture& f = SharedFixture();
  Bm25Matcher bm25;
  bm25.Train(f.dataset);
  auto m = EvaluateMatcher(bm25, f.dataset);
  // BM25 is better than random ordering but far from the learned models.
  EXPECT_GT(m.p_at_10, 0.1);
  EXPECT_LT(m.p_at_10, 0.85);
}

TEST(MatchingTest, EveryNeuralMatcherBeatsChance) {
  Fixture& f = SharedFixture();
  NeuralMatcherConfig cfg;
  cfg.epochs = 2;
  std::vector<std::unique_ptr<Matcher>> models;
  models.push_back(std::make_unique<DssmMatcher>(
      cfg, &f.resources.embeddings(), &f.resources.vocab()));
  models.push_back(std::make_unique<MatchPyramidMatcher>(
      cfg, &f.resources.embeddings(), &f.resources.vocab()));
  models.push_back(std::make_unique<Re2Matcher>(
      cfg, &f.resources.embeddings(), &f.resources.vocab()));
  for (auto& model : models) {
    model->Train(f.dataset);
    auto m = EvaluateMatcher(*model, f.dataset);
    EXPECT_GT(m.auc, 0.6) << model->name();
  }
}

TEST(MatchingTest, KnowledgeMatcherLearns) {
  Fixture& f = SharedFixture();
  KnowledgeMatcherConfig cfg;
  cfg.base.epochs = 3;
  KnowledgeMatcher model(cfg, f.KnowRes(), &f.resources.embeddings(),
                         &f.resources.vocab());
  EXPECT_EQ(model.name(), "Ours + Knowledge");
  model.Train(f.dataset);
  auto m = EvaluateMatcher(model, f.dataset);
  EXPECT_GT(m.auc, 0.7);
  EXPECT_GT(m.p_at_10, 0.4);
}

TEST(MatchingTest, KnowledgeBridgesSemanticDrift) {
  // On event-driven test pairs (zero token overlap), the knowledge variant
  // must outscore the no-knowledge variant.
  Fixture& f = SharedFixture();
  KnowledgeMatcherConfig with_cfg;
  with_cfg.base.epochs = 3;
  KnowledgeMatcher with_k(with_cfg, f.KnowRes(), &f.resources.embeddings(),
                          &f.resources.vocab());
  with_k.Train(f.dataset);

  KnowledgeMatcherConfig without_cfg;
  without_cfg.base.epochs = 3;
  without_cfg.use_knowledge = false;
  KnowledgeResources no_know;
  no_know.pos_tagger = &f.world.pos_tagger();
  KnowledgeMatcher without_k(without_cfg, no_know, &f.resources.embeddings(),
                             &f.resources.vocab());
  EXPECT_EQ(without_k.name(), "Ours");
  without_k.Train(f.dataset);

  // Collect drift test pairs: positive pairs with no token overlap.
  std::vector<double> with_scores, without_scores;
  std::vector<int> labels;
  for (const auto& ex : f.dataset.test) {
    std::unordered_set<std::string> ct(ex.concept_tokens.begin(),
                                       ex.concept_tokens.end());
    bool overlap = false;
    for (const auto& t : ex.item_tokens) {
      if (ct.count(t)) overlap = true;
    }
    if (overlap) continue;
    with_scores.push_back(
        with_k.Score(ex.concept_tokens, ex.item_tokens, ex.item_id));
    without_scores.push_back(
        without_k.Score(ex.concept_tokens, ex.item_tokens, ex.item_id));
    labels.push_back(ex.label);
  }
  ASSERT_GT(labels.size(), 20u);
  double with_auc = eval::Auc(with_scores, labels);
  double without_auc = eval::Auc(without_scores, labels);
  EXPECT_GT(with_auc, 0.6);
  EXPECT_GT(with_auc, without_auc - 0.05);
}

TEST(MatchingTest, ScoreBeforeTrainAborts) {
  NeuralMatcherConfig cfg;
  DssmMatcher model(cfg, nullptr, nullptr);
  EXPECT_DEATH(model.Score({"a"}, {"b"}, 0), "before Train");
}

}  // namespace
}  // namespace alicoco::matching
