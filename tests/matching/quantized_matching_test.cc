// Quantized-inference tests for the neural matchers (DESIGN.md §5): every
// matcher scored through int8 / fp16 weights must stay within the
// documented tolerance of its own fp32 scores, reverting to fp32 must be
// exact, quantized checkpoints must reload bit-for-bit, and concurrent
// quantized scoring through a thread pool must be race-free (this suite
// runs under the TSan preset — the name matches the ci.sh regex).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/resources.h"
#include "datagen/world.h"
#include "eval/metrics.h"
#include "matching/dssm.h"
#include "matching/knowledge_matcher.h"
#include "matching/match_pyramid.h"
#include "matching/re2_matcher.h"
#include "text/tokenizer.h"

namespace alicoco::matching {
namespace {

// Accuracy-tolerance policy under test (see nn/quant.h and DESIGN.md §5).
constexpr double kInt8ScoreTol = 0.05;
constexpr double kInt8AucTol = 0.02;
constexpr double kFp16ScoreTol = 5e-3;

struct Fixture {
  datagen::World world;
  datagen::WorldResources resources;
  MatchingDataset dataset;

  static datagen::WorldConfig WorldCfg() {
    datagen::WorldConfig cfg;
    cfg.seed = 67;
    cfg.heads_per_leaf = 2;
    cfg.derived_per_head = 2;
    cfg.per_domain_vocab = 10;
    cfg.num_events = 8;
    cfg.num_items = 400;
    cfg.num_good_ec_concepts = 80;
    cfg.num_bad_ec_concepts = 30;
    cfg.titles = 600;
    cfg.reviews = 300;
    cfg.guides = 250;
    cfg.queries = 120;
    cfg.num_users = 8;
    cfg.num_needs_queries = 30;
    return cfg;
  }

  Fixture()
      : world(datagen::World::Generate(WorldCfg())),
        resources(world, datagen::ResourcesConfig{}) {
    MatchingDatasetConfig mc;
    mc.max_positives_per_concept = 5;
    mc.rank_candidates = 10;
    dataset = BuildMatchingDataset(world, mc);
  }

  KnowledgeResources KnowRes() const {
    KnowledgeResources r;
    r.pos_tagger = &world.pos_tagger();
    r.gloss_encoder = &resources.gloss_encoder();
    r.gloss_lookup = [this](const std::string& w) {
      return resources.GlossOf(w);
    };
    r.concept_classes = [this](const std::vector<std::string>& tokens) {
      std::vector<int> out;
      auto ec = world.net().FindEcConcept(text::JoinTokens(tokens));
      if (ec.has_value()) {
        for (kg::ConceptId p : world.net().PrimitivesForEc(*ec)) {
          out.push_back(static_cast<int>(world.net().Get(p).cls.value));
        }
      }
      return out;
    };
    r.num_classes = static_cast<int>(world.net().taxonomy().size());
    return r;
  }
};

Fixture& SharedFixture() {
  static Fixture f;
  return f;
}

std::vector<double> ScoreTestSet(const NeuralMatcherBase& model,
                                 const MatchingDataset& dataset,
                                 std::vector<int>* labels) {
  std::vector<double> scores;
  scores.reserve(dataset.test.size());
  if (labels) labels->clear();
  for (const auto& ex : dataset.test) {
    scores.push_back(model.Score(ex.concept_tokens, ex.item_tokens,
                                 ex.item_id));
    if (labels) labels->push_back(ex.label);
  }
  return scores;
}

// Drives one trained matcher through the full quantized-inference
// contract: tolerance vs fp32 for both modes, AUC preservation for int8,
// exact revert, and bit-exact save -> load.
void CheckQuantizedContract(NeuralMatcherBase* model, const char* tag) {
  Fixture& f = SharedFixture();
  std::vector<int> labels;
  const std::vector<double> fp32_scores = ScoreTestSet(*model, f.dataset,
                                                       &labels);
  const double fp32_auc = eval::Auc(fp32_scores, labels);

  // int8: scores within kInt8ScoreTol, AUC within kInt8AucTol.
  model->EnableQuantizedInference(nn::quant::QuantMode::kInt8);
  EXPECT_EQ(model->quantized_mode(), nn::quant::QuantMode::kInt8);
  const std::vector<double> int8_scores = ScoreTestSet(*model, f.dataset,
                                                       nullptr);
  double max_dev = 0;
  for (size_t i = 0; i < fp32_scores.size(); ++i) {
    max_dev = std::max(max_dev, std::fabs(int8_scores[i] - fp32_scores[i]));
  }
  EXPECT_LE(max_dev, kInt8ScoreTol) << tag << " int8 score deviation";
  const double int8_auc = eval::Auc(int8_scores, labels);
  EXPECT_NEAR(int8_auc, fp32_auc, kInt8AucTol) << tag;

  // Quantized save -> load reproduces the int8 scores bit-for-bit (the
  // serialized payload IS the quantized representation).
  const std::string path = std::string(::testing::TempDir()) + "/" + tag +
                           "_int8.bin";
  ASSERT_TRUE(model->SaveQuantized(path).ok());
  model->EnableQuantizedInference(nn::quant::QuantMode::kNone);
  ASSERT_TRUE(model->LoadQuantizedInference(path).ok());
  EXPECT_EQ(model->quantized_mode(), nn::quant::QuantMode::kInt8);
  const std::vector<double> reloaded = ScoreTestSet(*model, f.dataset,
                                                    nullptr);
  for (size_t i = 0; i < int8_scores.size(); ++i) {
    EXPECT_EQ(reloaded[i], int8_scores[i]) << tag << " example " << i;
  }

  // fp16: tighter tolerance.
  model->EnableQuantizedInference(nn::quant::QuantMode::kFp16);
  const std::vector<double> fp16_scores = ScoreTestSet(*model, f.dataset,
                                                       nullptr);
  for (size_t i = 0; i < fp32_scores.size(); ++i) {
    EXPECT_NEAR(fp16_scores[i], fp32_scores[i], kFp16ScoreTol)
        << tag << " example " << i;
  }

  // kNone reverts to the original fp32 parameters exactly.
  model->EnableQuantizedInference(nn::quant::QuantMode::kNone);
  EXPECT_EQ(model->quantized_mode(), nn::quant::QuantMode::kNone);
  const std::vector<double> reverted = ScoreTestSet(*model, f.dataset,
                                                    nullptr);
  for (size_t i = 0; i < fp32_scores.size(); ++i) {
    EXPECT_EQ(reverted[i], fp32_scores[i]) << tag << " example " << i;
  }
}

TEST(QuantizedMatchingTest, DssmWithinTolerance) {
  Fixture& f = SharedFixture();
  NeuralMatcherConfig cfg;
  cfg.epochs = 2;
  DssmMatcher model(cfg, &f.resources.embeddings(), &f.resources.vocab());
  model.Train(f.dataset);
  CheckQuantizedContract(&model, "dssm");
}

TEST(QuantizedMatchingTest, MatchPyramidWithinTolerance) {
  Fixture& f = SharedFixture();
  NeuralMatcherConfig cfg;
  cfg.epochs = 2;
  MatchPyramidMatcher model(cfg, &f.resources.embeddings(),
                            &f.resources.vocab());
  model.Train(f.dataset);
  CheckQuantizedContract(&model, "match_pyramid");
}

TEST(QuantizedMatchingTest, Re2WithinTolerance) {
  Fixture& f = SharedFixture();
  NeuralMatcherConfig cfg;
  cfg.epochs = 2;
  Re2Matcher model(cfg, &f.resources.embeddings(), &f.resources.vocab());
  model.Train(f.dataset);
  CheckQuantizedContract(&model, "re2");
}

TEST(QuantizedMatchingTest, KnowledgeMatcherWithinTolerance) {
  Fixture& f = SharedFixture();
  KnowledgeMatcherConfig cfg;
  cfg.base.epochs = 2;
  KnowledgeMatcher model(cfg, f.KnowRes(), &f.resources.embeddings(),
                         &f.resources.vocab());
  model.Train(f.dataset);
  CheckQuantizedContract(&model, "knowledge");
}

TEST(QuantizedMatchingTest, SaveBeforeEnableIsInvalidArgument) {
  Fixture& f = SharedFixture();
  NeuralMatcherConfig cfg;
  cfg.epochs = 1;
  DssmMatcher model(cfg, &f.resources.embeddings(), &f.resources.vocab());
  model.Train(f.dataset);
  EXPECT_TRUE(model.SaveQuantized("/tmp/never_written.bin")
                  .IsInvalidArgument());
}

TEST(QuantizedMatchingTest, LoadBeforeTrainIsFailedPrecondition) {
  NeuralMatcherConfig cfg;
  DssmMatcher model(cfg, nullptr, nullptr);
  EXPECT_TRUE(model.LoadQuantizedInference("/tmp/whatever.bin")
                  .IsFailedPrecondition());
}

TEST(QuantizedMatchingTest, WrongModelCheckpointRejected) {
  // A checkpoint from one architecture must not load into another: the
  // parameter names will not line up.
  Fixture& f = SharedFixture();
  NeuralMatcherConfig cfg;
  cfg.epochs = 1;
  DssmMatcher dssm(cfg, &f.resources.embeddings(), &f.resources.vocab());
  dssm.Train(f.dataset);
  dssm.EnableQuantizedInference(nn::quant::QuantMode::kFp16);
  const std::string path =
      std::string(::testing::TempDir()) + "/dssm_for_re2.bin";
  ASSERT_TRUE(dssm.SaveQuantized(path).ok());

  Re2Matcher re2(cfg, &f.resources.embeddings(), &f.resources.vocab());
  re2.Train(f.dataset);
  EXPECT_TRUE(re2.LoadQuantizedInference(path).IsInvalidArgument());
  // The failed load must leave the model scoring fp32.
  EXPECT_EQ(re2.quantized_mode(), nn::quant::QuantMode::kNone);
}

TEST(QuantizedMatchingRaceTest, ConcurrentQuantizedScoring) {
  // Score() is const and the quantized store is read-only after
  // EnableQuantizedInference; hammer it from the pool to let TSan check
  // that claim on the shared QuantizedTensor buffers.
  Fixture& f = SharedFixture();
  KnowledgeMatcherConfig cfg;
  cfg.base.epochs = 1;
  KnowledgeMatcher model(cfg, f.KnowRes(), &f.resources.embeddings(),
                         &f.resources.vocab());
  model.Train(f.dataset);
  model.EnableQuantizedInference(nn::quant::QuantMode::kInt8);

  const size_t n = std::min<size_t>(f.dataset.test.size(), 64);
  std::vector<double> serial(n), parallel(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& ex = f.dataset.test[i];
    serial[i] = model.Score(ex.concept_tokens, ex.item_tokens, ex.item_id);
  }
  ThreadPool pool(4);
  pool.ParallelFor(n, [&](size_t i) {
    const auto& ex = f.dataset.test[i];
    parallel[i] = model.Score(ex.concept_tokens, ex.item_tokens, ex.item_id);
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "example " << i;
  }
}

}  // namespace
}  // namespace alicoco::matching
