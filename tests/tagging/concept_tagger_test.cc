// Concept-tagger tests (Section 7.5) on a generated world.

#include "tagging/concept_tagger.h"

#include <gtest/gtest.h>

#include "datagen/resources.h"
#include "datagen/world.h"

namespace alicoco::tagging {
namespace {

struct Fixture {
  datagen::World world;
  datagen::WorldResources resources;
  std::vector<TaggedExample> train, test;

  static datagen::WorldConfig WorldCfg() {
    datagen::WorldConfig cfg;
    cfg.seed = 51;
    cfg.heads_per_leaf = 2;
    cfg.derived_per_head = 3;
    cfg.per_domain_vocab = 12;
    cfg.num_events = 10;
    cfg.num_items = 400;
    cfg.num_good_ec_concepts = 180;
    cfg.num_bad_ec_concepts = 40;
    cfg.titles = 800;
    cfg.reviews = 400;
    cfg.guides = 300;
    cfg.queries = 200;
    cfg.num_users = 10;
    cfg.num_needs_queries = 50;
    cfg.ambiguous_fraction = 0.25;  // plenty of fuzzy supervision
    return cfg;
  }

  Fixture()
      : world(datagen::World::Generate(WorldCfg())),
        resources(world, datagen::ResourcesConfig{}) {
    Rng rng(5);
    auto tagged = world.tagged_concepts();
    std::vector<size_t> order(tagged.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(&order);
    for (size_t i = 0; i < order.size(); ++i) {
      const auto& t = tagged[order[i]];
      TaggedExample ex{t.tokens, t.allowed_iob};
      // Primary label must come first in allowed sets (world guarantees).
      if (i < order.size() * 7 / 10) {
        train.push_back(std::move(ex));
      } else {
        test.push_back(std::move(ex));
      }
    }
  }

  TaggerResources Res() const {
    TaggerResources r;
    r.pos_tagger = &world.pos_tagger();
    r.context_matrix = &resources.context_matrix();
    r.corpus_vocab = &resources.vocab();
    return r;
  }
};

Fixture& SharedFixture() {
  static Fixture f;
  return f;
}

TEST(ConceptTaggerTest, FullModelTagsWell) {
  Fixture& f = SharedFixture();
  ConceptTaggerConfig cfg;
  cfg.epochs = 5;
  ConceptTagger tagger(cfg, f.Res());
  tagger.Train(f.train);
  auto m = tagger.Evaluate(f.test);
  EXPECT_GT(m.f1, 0.7);
}

TEST(ConceptTaggerTest, BaselineAlsoLearns) {
  Fixture& f = SharedFixture();
  ConceptTaggerConfig cfg;
  cfg.use_fuzzy_crf = false;
  cfg.use_knowledge = false;
  cfg.epochs = 5;
  ConceptTagger tagger(cfg, f.Res());
  tagger.Train(f.train);
  auto m = tagger.Evaluate(f.test);
  EXPECT_GT(m.f1, 0.5);
}

TEST(ConceptTaggerTest, PredictShapesAndLabels) {
  Fixture& f = SharedFixture();
  ConceptTaggerConfig cfg;
  cfg.epochs = 1;
  ConceptTagger tagger(cfg, f.Res());
  tagger.Train(f.train);
  EXPECT_TRUE(tagger.Predict({}).empty());
  auto tags = tagger.Predict(f.test[0].tokens);
  EXPECT_EQ(tags.size(), f.test[0].tokens.size());
  for (const auto& t : tags) {
    EXPECT_NE(std::find(tagger.labels().begin(), tagger.labels().end(), t),
              tagger.labels().end());
  }
  // OOV input decodes without crashing.
  auto oov = tagger.Predict({"zzzz", "qqqq"});
  EXPECT_EQ(oov.size(), 2u);
}

TEST(ConceptTaggerTest, DisambiguatesByContext) {
  // Build a focused dataset around one ambiguous surface: "X event" tags X
  // as Location, "X season category" tags X as Style.
  std::vector<TaggedExample> data;
  for (int i = 0; i < 40; ++i) {
    data.push_back(TaggedExample{
        {"shore", "camping"},
        {{"B-Location", "B-Style"}, {"B-Event"}}});
    data.push_back(TaggedExample{
        {"shore", "winter", "boot"},
        {{"B-Style", "B-Location"}, {"B-Time"}, {"B-Category"}}});
  }
  text::PosTagger pos;
  TaggerResources res;
  res.pos_tagger = &pos;
  ConceptTaggerConfig cfg;
  cfg.use_knowledge = false;
  cfg.use_fuzzy_crf = true;
  cfg.epochs = 8;
  ConceptTagger tagger(cfg, res);
  tagger.Train(data);
  auto t1 = tagger.Predict({"shore", "camping"});
  auto t2 = tagger.Predict({"shore", "winter", "boot"});
  EXPECT_EQ(t1[1], "B-Event");
  EXPECT_EQ(t2[1], "B-Time");
  EXPECT_EQ(t2[2], "B-Category");
  // The ambiguous token resolves to SOME defensible label in both contexts.
  EXPECT_TRUE(t1[0] == "B-Location" || t1[0] == "B-Style");
  EXPECT_TRUE(t2[0] == "B-Location" || t2[0] == "B-Style");
}

TEST(ConceptTaggerTest, MissingPosTaggerAborts) {
  ConceptTaggerConfig cfg;
  TaggerResources empty;
  EXPECT_DEATH(ConceptTagger(cfg, empty), "POS tagger");
}

}  // namespace
}  // namespace alicoco::tagging
