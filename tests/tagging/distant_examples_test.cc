#include <gtest/gtest.h>

#include "tagging/concept_tagger.h"

namespace alicoco::tagging {
namespace {

text::MaxMatchSegmenter BuildDict() {
  text::MaxMatchSegmenter dict;
  dict.AddPhrase({"warm"}, "Function");
  dict.AddPhrase({"hat"}, "Category");
  dict.AddPhrase({"rain", "boot"}, "Category");
  dict.AddPhrase({"village"}, "Location");
  dict.AddPhrase({"village"}, "Style");
  return dict;
}

TEST(DistantExamplesTest, LabelsFullyMatchedPhrases) {
  auto dict = BuildDict();
  auto examples = BuildDistantExamples(dict, {{"warm", "hat"}});
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0].allowed_iob[0],
            (std::vector<std::string>{"B-Function"}));
  EXPECT_EQ(examples[0].allowed_iob[1],
            (std::vector<std::string>{"B-Category"}));
}

TEST(DistantExamplesTest, MultiTokenSpansGetIobContinuation) {
  auto dict = BuildDict();
  auto examples = BuildDistantExamples(dict, {{"rain", "boot"}});
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0].allowed_iob[0].front(), "B-Category");
  EXPECT_EQ(examples[0].allowed_iob[1].front(), "I-Category");
}

TEST(DistantExamplesTest, DropsPartiallyMatchedPhrases) {
  auto dict = BuildDict();
  auto examples =
      BuildDistantExamples(dict, {{"warm", "mystery"}, {"warm", "hat"}});
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0].tokens[1], "hat");
}

TEST(DistantExamplesTest, CarrierWordsMayStayUncovered) {
  auto dict = BuildDict();
  auto examples =
      BuildDistantExamples(dict, {{"warm", "hat", "for", "you"}},
                           {"for", "you"});
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0].allowed_iob[2], (std::vector<std::string>{"O"}));
  // Without the carrier list the same phrase is dropped.
  EXPECT_TRUE(
      BuildDistantExamples(dict, {{"warm", "hat", "for", "you"}}).empty());
}

TEST(DistantExamplesTest, AmbiguousSurfaceYieldsFuzzySets) {
  auto dict = BuildDict();
  // "village" carries two labels; the max-match is ambiguous, but the
  // distant example keeps BOTH as allowed labels for fuzzy training.
  auto examples = BuildDistantExamples(dict, {{"village", "hat"}});
  ASSERT_EQ(examples.size(), 1u);
  const auto& allowed = examples[0].allowed_iob[0];
  EXPECT_EQ(allowed.size(), 2u);
  EXPECT_NE(std::find(allowed.begin(), allowed.end(), "B-Location"),
            allowed.end());
  EXPECT_NE(std::find(allowed.begin(), allowed.end(), "B-Style"),
            allowed.end());
}

TEST(DistantExamplesTest, AugmentationTrainsATagger) {
  auto dict = BuildDict();
  std::vector<std::vector<std::string>> phrases;
  for (int i = 0; i < 30; ++i) {
    phrases.push_back({"warm", "hat"});
    phrases.push_back({"rain", "boot"});
  }
  auto examples = BuildDistantExamples(dict, phrases);
  ASSERT_EQ(examples.size(), 60u);
  text::PosTagger pos;
  TaggerResources res;
  res.pos_tagger = &pos;
  ConceptTaggerConfig cfg;
  cfg.use_knowledge = false;
  cfg.epochs = 5;
  ConceptTagger tagger(cfg, res);
  tagger.Train(examples);
  auto tags = tagger.Predict({"warm", "hat"});
  EXPECT_EQ(tags[0], "B-Function");
  EXPECT_EQ(tags[1], "B-Category");
}

TEST(DistantExamplesTest, EmptyInputs) {
  auto dict = BuildDict();
  EXPECT_TRUE(BuildDistantExamples(dict, {}).empty());
  EXPECT_TRUE(BuildDistantExamples(dict, {{}}).empty());
}

}  // namespace
}  // namespace alicoco::tagging
