// Tests for commonsense relation inference (the paper's Section-10 future
// work, implemented as an extension).

#include "mining/relation_inference.h"

#include <gtest/gtest.h>

#include "datagen/world.h"

namespace alicoco::mining {
namespace {

const datagen::World& SharedWorld() {
  static const datagen::World world = [] {
    datagen::WorldConfig cfg;
    cfg.seed = 101;
    cfg.num_items = 1200;  // needs enough catalog evidence
    cfg.num_good_ec_concepts = 80;
    cfg.num_bad_ec_concepts = 40;
    return datagen::World::Generate(cfg);
  }();
  return world;
}

TEST(RelationInferenceTest, SuitableWhenProposalsAreMostlyGold) {
  const auto& world = SharedWorld();
  RelationInference engine(&world.net());
  RelationInferenceConfig cfg;
  auto proposals = engine.InferSuitableWhen(cfg);
  ASSERT_FALSE(proposals.empty());
  auto quality = EvaluateSuitableWhen(proposals, world, cfg.min_support);
  EXPECT_GT(quality.precision, 0.9);
  EXPECT_GT(quality.recall, 0.3);
  // Confidences are sane and sorted descending.
  for (size_t i = 0; i < proposals.size(); ++i) {
    EXPECT_GT(proposals[i].confidence, 0.0);
    EXPECT_LE(proposals[i].confidence, cfg.max_confidence);
    EXPECT_GE(proposals[i].support, cfg.min_support);
    if (i > 0) {
      EXPECT_GE(proposals[i - 1].confidence, proposals[i].confidence);
    }
  }
}

TEST(RelationInferenceTest, UsedWhenRecoversEventNeeds) {
  // The statistical signal for used_when IS the semantic-drift structure:
  // items of an event's needed categories associate with its concepts even
  // though no text links them ("boy's T-shirt implies Summer").
  const auto& world = SharedWorld();
  RelationInference engine(&world.net());
  RelationInferenceConfig cfg;
  auto proposals = engine.InferUsedWhen(cfg);
  ASSERT_FALSE(proposals.empty());
  size_t correct = 0;
  for (const auto& rel : proposals) {
    if (world.GoldCompatible(rel.subject, rel.object)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / proposals.size(), 0.9);
}

TEST(RelationInferenceTest, HigherLiftThresholdRaisesPrecision) {
  const auto& world = SharedWorld();
  RelationInference engine(&world.net());
  RelationInferenceConfig loose;
  loose.min_lift = 1.05;
  RelationInferenceConfig strict;
  strict.min_lift = 2.5;
  auto loose_q = EvaluateSuitableWhen(engine.InferSuitableWhen(loose), world,
                                      loose.min_support);
  auto strict_q = EvaluateSuitableWhen(engine.InferSuitableWhen(strict),
                                       world, strict.min_support);
  EXPECT_GE(strict_q.precision, loose_q.precision - 0.02);
  EXPECT_LE(strict_q.proposed, loose_q.proposed);
}

TEST(RelationInferenceTest, CommitWritesSchemaValidatedRelations) {
  const auto& world = SharedWorld();
  RelationInference engine(&world.net());
  RelationInferenceConfig cfg;
  auto proposals = engine.InferSuitableWhen(cfg);
  ASSERT_FALSE(proposals.empty());

  // Commit into a copy of the gold net.
  kg::ConceptNet target = world.net();
  size_t before = target.typed_relations().size();
  size_t committed = RelationInference::Commit(proposals, &target);
  EXPECT_GT(committed, 0u);
  EXPECT_EQ(target.typed_relations().size(), before + committed);
  // Re-committing adds nothing new? (AddTypedRelation has no dedup, so a
  // second commit doubles; verify the first commit's relations validate.)
  for (size_t i = before; i < target.typed_relations().size(); ++i) {
    const auto& rel = target.typed_relations()[i];
    EXPECT_EQ(rel.relation, "suitable_when");
  }
}

TEST(RelationInferenceTest, EmptyNetYieldsNothing) {
  kg::ConceptNet empty;
  RelationInference engine(&empty);
  EXPECT_TRUE(engine.InferSuitableWhen({}).empty());
  EXPECT_TRUE(engine.InferUsedWhen({}).empty());
}

// Parameterized sweep: precision stays high across support thresholds.
class SupportSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SupportSweep, PrecisionRobustToSupportThreshold) {
  const auto& world = SharedWorld();
  RelationInference engine(&world.net());
  RelationInferenceConfig cfg;
  cfg.min_support = GetParam();
  auto proposals = engine.InferSuitableWhen(cfg);
  if (proposals.empty()) GTEST_SKIP() << "no proposals at this support";
  auto quality = EvaluateSuitableWhen(proposals, world, cfg.min_support);
  EXPECT_GT(quality.precision, 0.85) << "support " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Supports, SupportSweep,
                         ::testing::Values(3, 5, 8, 12));

}  // namespace
}  // namespace alicoco::mining
