// Checkpointing a trained sequence labeler: a reloaded model must predict
// exactly like the original.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "mining/sequence_labeler.h"

namespace alicoco::mining {
namespace {

std::vector<LabeledSentence> MakeData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> brands = {"velkor", "tramix"};
  std::vector<std::string> cats = {"boot", "dress", "grill"};
  std::vector<LabeledSentence> data;
  for (int i = 0; i < n; ++i) {
    LabeledSentence s;
    s.tokens = {"the", brands[rng.Uniform(2)], cats[rng.Uniform(3)]};
    s.iob = {"O", "B-Brand", "B-Category"};
    data.push_back(std::move(s));
  }
  return data;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(LabelerCheckpointTest, RoundTripPredictionsIdentical) {
  SequenceLabelerConfig cfg;
  cfg.epochs = 4;
  SequenceLabeler original(cfg);
  original.Train(MakeData(150, 1));
  std::string path = TempPath("labeler.ckpt");
  ASSERT_TRUE(original.Save(path).ok());

  auto loaded = SequenceLabeler::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->labels(), original.labels());
  EXPECT_EQ(loaded->vocab_size(), original.vocab_size());

  for (const auto& s : MakeData(40, 2)) {
    EXPECT_EQ(original.Predict(s.tokens), loaded->Predict(s.tokens));
  }
  // OOV handling survives the round trip.
  EXPECT_EQ(original.Predict({"zzz", "qqq"}), loaded->Predict({"zzz", "qqq"}));
}

TEST(LabelerCheckpointTest, SaveBeforeTrainFails) {
  SequenceLabelerConfig cfg;
  SequenceLabeler untrained(cfg);
  EXPECT_TRUE(
      untrained.Save(TempPath("untrained.ckpt")).IsFailedPrecondition());
}

TEST(LabelerCheckpointTest, MissingOrCorruptFilesRejected) {
  EXPECT_TRUE(SequenceLabeler::Load("/no/such/file").status().IsIOError());
  std::string path = TempPath("garbage.ckpt");
  std::ofstream(path) << "not a checkpoint\n";
  EXPECT_TRUE(SequenceLabeler::Load(path).status().IsCorruption());
}

TEST(LabelerCheckpointTest, MissingWeightsFileRejected) {
  SequenceLabelerConfig cfg;
  cfg.epochs = 1;
  SequenceLabeler model(cfg);
  model.Train(MakeData(20, 3));
  std::string path = TempPath("noweights.ckpt");
  ASSERT_TRUE(model.Save(path).ok());
  ASSERT_EQ(std::remove((path + ".weights").c_str()), 0);
  EXPECT_TRUE(SequenceLabeler::Load(path).status().IsIOError());
}

}  // namespace
}  // namespace alicoco::mining
