#include "mining/sequence_labeler.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace alicoco::mining {
namespace {

// Synthetic tagging task: "brandX catY" patterns with carrier words.
std::vector<LabeledSentence> MakeData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> brands = {"velkor", "tramix", "plonex"};
  std::vector<std::string> cats = {"boot", "dress", "grill", "lamp"};
  std::vector<std::string> fillers = {"the", "new", "great", "shiny"};
  std::vector<LabeledSentence> data;
  for (int i = 0; i < n; ++i) {
    LabeledSentence s;
    s.tokens.push_back(fillers[rng.Uniform(fillers.size())]);
    s.iob.push_back("O");
    if (rng.Bernoulli(0.7)) {
      s.tokens.push_back(brands[rng.Uniform(brands.size())]);
      s.iob.push_back("B-Brand");
    }
    s.tokens.push_back(cats[rng.Uniform(cats.size())]);
    s.iob.push_back("B-Category");
    if (rng.Bernoulli(0.4)) {
      s.tokens.push_back(fillers[rng.Uniform(fillers.size())]);
      s.iob.push_back("O");
    }
    data.push_back(std::move(s));
  }
  return data;
}

TEST(SequenceLabelerTest, LearnsSimplePattern) {
  SequenceLabelerConfig cfg;
  cfg.epochs = 6;
  cfg.word_dim = 12;
  cfg.hidden_dim = 12;
  SequenceLabeler labeler(cfg);
  labeler.Train(MakeData(300, 1));
  auto metrics = labeler.Evaluate(MakeData(60, 2));
  EXPECT_GT(metrics.f1, 0.95);
}

TEST(SequenceLabelerTest, LabelInventoryFromData) {
  SequenceLabelerConfig cfg;
  cfg.epochs = 1;
  SequenceLabeler labeler(cfg);
  labeler.Train(MakeData(20, 3));
  const auto& labels = labeler.labels();
  EXPECT_EQ(labels[0], "O");
  EXPECT_NE(std::find(labels.begin(), labels.end(), "B-Brand"), labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "B-Category"),
            labels.end());
}

TEST(SequenceLabelerTest, PredictHandlesUnknownWordsAndEmpty) {
  SequenceLabelerConfig cfg;
  cfg.epochs = 2;
  SequenceLabeler labeler(cfg);
  labeler.Train(MakeData(100, 4));
  EXPECT_TRUE(labeler.Predict({}).empty());
  auto tags = labeler.Predict({"zzzz", "qqqq"});
  EXPECT_EQ(tags.size(), 2u);  // decodes something for OOV input
}

TEST(SequenceLabelerTest, DeterministicGivenSeed) {
  SequenceLabelerConfig cfg;
  cfg.epochs = 2;
  auto data = MakeData(100, 5);
  SequenceLabeler a(cfg), b(cfg);
  a.Train(data);
  b.Train(data);
  auto ta = a.Predict({"the", "velkor", "boot"});
  auto tb = b.Predict({"the", "velkor", "boot"});
  EXPECT_EQ(ta, tb);
}

}  // namespace
}  // namespace alicoco::mining
