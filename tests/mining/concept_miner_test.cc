// End-to-end mining loop on a small synthetic world: bootstrap from the
// seed dictionary via distant supervision, train the BiLSTM-CRF, and check
// the loop discovers held-out concepts.

#include "mining/concept_miner.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/world.h"

namespace alicoco::mining {
namespace {

datagen::WorldConfig SmallConfig() {
  datagen::WorldConfig cfg;
  cfg.seed = 21;
  cfg.heads_per_leaf = 2;
  cfg.derived_per_head = 3;
  cfg.per_domain_vocab = 10;
  cfg.num_events = 8;
  cfg.num_items = 500;
  cfg.num_good_ec_concepts = 40;
  cfg.num_bad_ec_concepts = 40;
  cfg.titles = 900;
  cfg.reviews = 400;
  cfg.guides = 300;
  cfg.queries = 200;
  cfg.num_users = 10;
  cfg.num_needs_queries = 50;
  cfg.holdout_category_fraction = 0.3;
  return cfg;
}

TEST(ConceptMinerTest, DiscoversHeldOutConcepts) {
  datagen::World world = datagen::World::Generate(SmallConfig());

  DistantSupervisor supervisor(world.seed_dictionary(),
                               datagen::CarrierVocabulary());
  // Auto-label the corpus with the seed dictionary.
  std::vector<std::vector<std::string>> raw;
  for (const auto& s : world.sentences()) raw.push_back(s.tokens);
  DistantSupervisor::Stats ds_stats;
  auto labeled = supervisor.Label(raw, &ds_stats);
  ASSERT_GT(ds_stats.kept, 200u);

  SequenceLabelerConfig cfg;
  cfg.epochs = 3;
  cfg.word_dim = 16;
  cfg.hidden_dim = 16;
  SequenceLabeler labeler(cfg);
  labeler.Train(labeled);

  // Oracle backed by the gold net.
  std::unordered_set<std::string> gold_keys;
  for (const auto& p : world.net().primitives()) {
    gold_keys.insert(p.surface + "\t" + world.DomainLabel(p.id));
  }
  ConceptMiner miner(&supervisor, &labeler,
                     [&](const std::string& surface,
                         const std::string& domain) {
                       return gold_keys.count(surface + "\t" + domain) > 0;
                     });

  MiningEpochStats stats = miner.RunEpoch(raw);
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.precision, 0.3);

  // Accepted concepts include genuine holdout surfaces.
  std::unordered_set<std::string> holdout(world.holdout_surfaces().begin(),
                                          world.holdout_surfaces().end());
  size_t holdout_found = 0;
  for (const auto& c : miner.accepted()) {
    if (holdout.count(c.surface)) ++holdout_found;
    // Every accepted concept is truly in the gold vocabulary.
    EXPECT_TRUE(gold_keys.count(c.surface + "\t" + c.domain));
  }
  EXPECT_GT(holdout_found, 0u);

  // Second epoch proposes fewer new candidates (already absorbed).
  MiningEpochStats second = miner.RunEpoch(raw);
  EXPECT_LT(second.accepted, stats.accepted + 1);
}

TEST(ConceptMinerTest, RespectsMinSupport) {
  std::vector<std::pair<std::string, std::string>> dict = {
      {"boot", "Category"}};
  DistantSupervisor supervisor(dict);
  SequenceLabelerConfig cfg;
  cfg.epochs = 4;
  SequenceLabeler labeler(cfg);
  labeler.Train({{{"the", "boot"}, {"O", "B-Category"}},
                 {{"red", "boot"}, {"O", "B-Category"}},
                 {{"boot", "here"}, {"B-Category", "O"}}});
  int oracle_calls = 0;
  ConceptMiner miner(&supervisor, &labeler,
                     [&](const std::string&, const std::string&) {
                       ++oracle_calls;
                       return false;
                     });
  // "sandal" appears once: filtered by min_support=2 before the oracle.
  auto stats = miner.RunEpoch({{"the", "sandal"}}, /*min_support=*/2);
  EXPECT_EQ(stats.candidates, 0u);
  EXPECT_EQ(oracle_calls, 0);
}

}  // namespace
}  // namespace alicoco::mining
