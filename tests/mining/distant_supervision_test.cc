#include "mining/distant_supervision.h"

#include <gtest/gtest.h>

namespace alicoco::mining {
namespace {

DistantSupervisor BuildSupervisor() {
  return DistantSupervisor({{"outdoor", "Location"},
                            {"barbecue", "Event"},
                            {"rain boot", "Category"},
                            {"boot", "Category"}});
}

TEST(DistantSupervisionTest, LabelsCleanSentence) {
  auto sup = BuildSupervisor();
  DistantSupervisor::Stats stats;
  auto labeled = sup.Label({{"great", "outdoor", "barbecue"}}, &stats);
  ASSERT_EQ(labeled.size(), 1u);
  EXPECT_EQ(labeled[0].iob,
            (std::vector<std::string>{"O", "B-Location", "B-Event"}));
  EXPECT_EQ(stats.kept, 1u);
}

TEST(DistantSupervisionTest, DropsUnmatchedSentences) {
  auto sup = BuildSupervisor();
  DistantSupervisor::Stats stats;
  auto labeled = sup.Label({{"hello", "world"}, {}}, &stats);
  EXPECT_TRUE(labeled.empty());
  EXPECT_EQ(stats.unmatched, 2u);
}

TEST(DistantSupervisionTest, DropsAmbiguousSentences) {
  std::vector<std::pair<std::string, std::string>> dict = {
      {"village", "Location"}, {"village", "Style"}};
  DistantSupervisor sup(dict);
  DistantSupervisor::Stats stats;
  auto labeled = sup.Label({{"village", "skirt"}}, &stats);
  EXPECT_TRUE(labeled.empty());
  EXPECT_EQ(stats.ambiguous, 1u);
}

TEST(DistantSupervisionTest, PrefersLongestMatch) {
  auto sup = BuildSupervisor();
  auto labeled = sup.Label({{"new", "rain", "boot"}});
  ASSERT_EQ(labeled.size(), 1u);
  EXPECT_EQ(labeled[0].iob,
            (std::vector<std::string>{"O", "B-Category", "I-Category"}));
}

TEST(DistantSupervisionTest, GrowsWithAddEntry) {
  auto sup = BuildSupervisor();
  EXPECT_FALSE(sup.Knows("grill", "Category"));
  sup.AddEntry("grill", "Category");
  EXPECT_TRUE(sup.Knows("grill", "Category"));
  auto labeled = sup.Label({{"a", "grill"}});
  ASSERT_EQ(labeled.size(), 1u);
  EXPECT_EQ(labeled[0].iob[1], "B-Category");
}

TEST(DistantSupervisionTest, KnowsIsLabelSpecific) {
  auto sup = BuildSupervisor();
  EXPECT_TRUE(sup.Knows("boot", "Category"));
  EXPECT_FALSE(sup.Knows("boot", "Event"));
}

}  // namespace
}  // namespace alicoco::mining
