#include "tools/lint/graph.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

namespace alicoco::lint {
namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

void Digraph::AddNode(const std::string& node) { adjacency_[node]; }

void Digraph::AddEdge(const std::string& from, const std::string& to,
                      const EdgeSite& site) {
  adjacency_[from].insert(to);
  adjacency_[to];  // ensure the target exists as a node
  sites_[from].emplace(to, site);  // first witness wins
}

bool Digraph::HasEdge(const std::string& from, const std::string& to) const {
  auto it = adjacency_.find(from);
  return it != adjacency_.end() && it->second.count(to) != 0;
}

const EdgeSite* Digraph::FindSite(const std::string& from,
                                  const std::string& to) const {
  auto it = sites_.find(from);
  if (it == sites_.end()) return nullptr;
  auto jt = it->second.find(to);
  return jt == it->second.end() ? nullptr : &jt->second;
}

std::vector<std::string> Digraph::Nodes() const {
  std::vector<std::string> nodes;
  nodes.reserve(adjacency_.size());
  for (const auto& [node, unused] : adjacency_) nodes.push_back(node);
  return nodes;
}

const std::set<std::string>& Digraph::Successors(
    const std::string& node) const {
  static const std::set<std::string> kEmpty;
  auto it = adjacency_.find(node);
  return it == adjacency_.end() ? kEmpty : it->second;
}

// Tarjan over the sorted adjacency; component node lists come out sorted.
std::vector<std::vector<std::string>> Digraph::StronglyConnectedComponents()
    const {
  struct State {
    int index = -1;
    int lowlink = 0;
    bool on_stack = false;
  };
  std::map<std::string, State> state;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> components;
  int next_index = 0;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        State& sv = state[v];
        sv.index = next_index;
        sv.lowlink = next_index;
        ++next_index;
        stack.push_back(v);
        sv.on_stack = true;

        for (const std::string& w : Successors(v)) {
          State& sw = state[w];
          if (sw.index < 0) {
            strongconnect(w);
            // `state` may rehash — do not hold references across the call.
            state[v].lowlink = std::min(state[v].lowlink, state[w].lowlink);
          } else if (sw.on_stack) {
            state[v].lowlink = std::min(state[v].lowlink, sw.index);
          }
        }

        if (state[v].lowlink == state[v].index) {
          std::vector<std::string> component;
          for (;;) {
            std::string w = stack.back();
            stack.pop_back();
            state[w].on_stack = false;
            component.push_back(w);
            if (w == v) break;
          }
          std::sort(component.begin(), component.end());
          components.push_back(std::move(component));
        }
      };

  for (const auto& [node, unused] : adjacency_) {
    if (state[node].index < 0) strongconnect(node);
  }
  return components;
}

// BFS within the component from `start` back to itself: the shortest
// cycle through the component's smallest node, ties broken by the sorted
// successor order, so the witness path is stable.
std::vector<std::string> Digraph::CycleThrough(
    const std::string& start, const std::set<std::string>& scc) const {
  std::map<std::string, std::string> parent;
  std::vector<std::string> frontier{start};
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& v : frontier) {
      for (const std::string& w : Successors(v)) {
        if (w == start) {
          std::vector<std::string> path{start};
          for (std::string cur = v; cur != start; cur = parent.at(cur)) {
            path.push_back(cur);
          }
          path.push_back(start);
          // The walk above collected start .. v reversed; fix the middle.
          std::reverse(path.begin() + 1, path.end() - 1);
          return path;
        }
        if (scc.count(w) == 0 || parent.count(w) != 0) continue;
        parent.emplace(w, v);
        next.push_back(w);
      }
    }
    frontier = std::move(next);
  }
  return {start, start};  // unreachable for a genuine SCC
}

std::vector<std::vector<std::string>> Digraph::Cycles() const {
  std::vector<std::vector<std::string>> cycles;
  for (const std::vector<std::string>& scc : StronglyConnectedComponents()) {
    if (scc.size() == 1 && !HasEdge(scc[0], scc[0])) continue;
    if (scc.size() == 1) {
      cycles.push_back({scc[0], scc[0]});
      continue;
    }
    std::set<std::string> members(scc.begin(), scc.end());
    cycles.push_back(CycleThrough(scc.front(), members));
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

Result<Layers> Layers::Parse(const std::string& text) {
  Layers layers;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank or comment-only
    if (keyword != "layer") {
      return Status::InvalidArgument(
          "layers line " + std::to_string(lineno) +
          ": expected 'layer <module>...', got '" + keyword + "'");
    }
    std::vector<std::string> modules;
    std::string module;
    while (fields >> module) {
      if (layers.rank_.count(module) != 0) {
        return Status::InvalidArgument("layers line " +
                                       std::to_string(lineno) + ": module '" +
                                       module + "' declared twice");
      }
      layers.rank_.emplace(module, static_cast<int>(layers.num_layers_));
      modules.push_back(module);
    }
    if (modules.empty()) {
      return Status::InvalidArgument("layers line " + std::to_string(lineno) +
                                     ": empty layer");
    }
    layers.layers_.push_back(std::move(modules));
    ++layers.num_layers_;
  }
  if (layers.num_layers_ == 0) {
    return Status::InvalidArgument("layers file declares no layers");
  }
  return layers;
}

Result<Layers> Layers::LoadFile(const std::string& path) {
  ALICOCO_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return Parse(text);
}

int Layers::RankOf(const std::string& module) const {
  auto it = rank_.find(module);
  return it == rank_.end() ? -1 : it->second;
}

std::vector<std::string> Layers::ModulesAt(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(layers_.size())) return {};
  return layers_[static_cast<size_t>(rank)];
}

}  // namespace alicoco::lint
