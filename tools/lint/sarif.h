// SARIF 2.1.0 output for alicoco_lint, plus a minimal reader.
//
// The writer emits the interchange subset CI artifact viewers consume:
// one run, the full rule catalog (per-file rules and cross-file passes)
// under tool.driver.rules, and one result per finding with a physical
// location. The reader parses exactly that subset back into Findings so
// tests can assert writer -> reader is the identity; it is not a general
// SARIF consumer.

#ifndef ALICOCO_TOOLS_LINT_SARIF_H_
#define ALICOCO_TOOLS_LINT_SARIF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tools/lint/rules.h"

namespace alicoco::lint {

/// Serializes findings as a SARIF 2.1.0 document. Output is byte-stable
/// for a given finding list: fixed key order, two-space indentation,
/// rules sorted registry-first then passes.
std::string WriteSarif(const std::vector<Finding>& findings);

/// Reads back the subset WriteSarif emits: runs[0].results[*] with
/// ruleId, message.text, and the first physical location. Errors on
/// malformed JSON or a document missing the required SARIF spine.
Result<std::vector<Finding>> ParseSarif(const std::string& text);

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_SARIF_H_
