#include "tools/lint/cfg.h"

#include <algorithm>

namespace alicoco::lint {
namespace {

bool IsIdent(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kIdentifier && t->text == text;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

/// Builds one function's CFG with a single recursive-descent walk over the
/// body tokens. Blocks are numbered in creation order, so the graph — and
/// everything derived from it — is deterministic.
class CfgBuilder {
 public:
  CfgBuilder(const std::vector<const Token*>& code, size_t begin, size_t end)
      : code_(code), begin_(begin), end_(std::min(end, code.size())) {}

  Cfg Build() {
    cfg_.entry = NewBlock();
    cfg_.exit = NewBlock();
    cur_ = cfg_.entry;
    if (begin_ >= end_ || !IsPunct(At(begin_), "{") || !BracesBalanced()) {
      return Fallback();
    }
    size_t i = begin_ + 1;
    ParseSeq(&i, end_ - 1, /*depth=*/1, /*loop_depth=*/0);
    if (failed_) return Fallback();
    Edge(cur_, cfg_.exit);
    FillPreds();
    return std::move(cfg_);
  }

 private:
  const Token* At(size_t i) const {
    return i < code_.size() ? code_[i] : nullptr;
  }

  int NewBlock() {
    cfg_.blocks.push_back(BasicBlock{static_cast<int>(cfg_.blocks.size()),
                                     {}, {}, {}});
    return cfg_.blocks.back().id;
  }

  void Edge(int from, int to) {
    auto& succs = cfg_.blocks[from].succs;
    if (std::find(succs.begin(), succs.end(), to) == succs.end()) {
      succs.push_back(to);
    }
  }

  void FillPreds() {
    for (const BasicBlock& b : cfg_.blocks) {
      for (int s : b.succs) cfg_.blocks[s].preds.push_back(b.id);
    }
  }

  /// The body must open at begin_ and close exactly at end_-1. A torn
  /// range — truncation, unbalanced macro braces — must fall back rather
  /// than be analyzed as if the missing close brace were at the end.
  bool BracesBalanced() const {
    int depth = 0;
    for (size_t j = begin_; j < end_; ++j) {
      if (IsPunct(code_[j], "{")) ++depth;
      if (IsPunct(code_[j], "}") && --depth == 0) return j == end_ - 1;
    }
    return false;
  }

  Cfg Fallback() {
    Cfg out;
    out.entry = 0;
    out.exit = 1;
    out.blocks.push_back(BasicBlock{0, {}, {1}, {}});
    out.blocks.push_back(BasicBlock{1, {}, {}, {0}});
    out.fell_back = true;
    return out;
  }

  /// Advances past a balanced group opened at *i; tolerant of truncation.
  void SkipBalanced(size_t* i, std::string_view open, std::string_view close) {
    int depth = 0;
    while (*i < end_) {
      if (IsPunct(code_[*i], open)) ++depth;
      if (IsPunct(code_[*i], close) && --depth == 0) {
        ++*i;
        return;
      }
      ++*i;
    }
    failed_ = true;
  }

  void AppendStmt(size_t begin, size_t end, int depth, int loop_depth,
                  StmtKind kind) {
    if (begin >= end) return;
    cfg_.blocks[cur_].stmts.push_back(Stmt{
        begin, end, code_[begin]->line, depth, loop_depth, kind});
  }

  void ParseSeq(size_t* i, size_t stop, int depth, int loop_depth) {
    while (*i < stop && !failed_) {
      ParseStmt(i, stop, depth, loop_depth);
    }
    *i = std::max(*i, stop);
  }

  /// Parses a branch/loop body: one statement, with nested statements one
  /// scope deeper whether or not the body is braced.
  void ParseBody(size_t* i, size_t stop, int depth, int loop_depth) {
    ParseStmt(i, stop, depth + 1, loop_depth);
  }

  /// Collects a simple statement: tokens up to the terminating top-level
  /// `;`, balancing parens, braces (lambdas, init lists), and brackets.
  void CollectSimple(size_t* i, size_t stop, int depth, int loop_depth,
                     StmtKind kind) {
    size_t begin = *i;
    while (*i < stop) {
      const Token* t = code_[*i];
      if (IsPunct(t, ";")) {
        AppendStmt(begin, *i + 1, depth, loop_depth, kind);
        ++*i;
        return;
      }
      if (IsPunct(t, "(")) {
        SkipBalanced(i, "(", ")");
        continue;
      }
      if (IsPunct(t, "{")) {
        SkipBalanced(i, "{", "}");
        continue;
      }
      if (IsPunct(t, "[")) {
        SkipBalanced(i, "[", "]");
        continue;
      }
      if (IsPunct(t, "}")) break;  // missing ';' before scope close
      ++*i;
    }
    AppendStmt(begin, *i, depth, loop_depth, kind);
  }

  void ParseStmt(size_t* i, size_t stop, int depth, int loop_depth) {
    const Token* t = At(*i);
    if (t == nullptr || *i >= stop) {
      *i = stop;
      return;
    }
    if (IsPunct(t, ";") || IsPunct(t, "}")) {
      ++*i;  // empty statement / stray close the balancer already consumed
      return;
    }
    if (IsPunct(t, "{")) {
      size_t close = *i;
      SkipBalanced(&close, "{", "}");
      size_t j = *i + 1;
      ParseSeq(&j, close > *i ? close - 1 : *i + 1, depth + 1, loop_depth);
      *i = close;
      return;
    }
    if (IsIdent(t, "if")) {
      ParseIf(i, stop, depth, loop_depth);
      return;
    }
    if (IsIdent(t, "while")) {
      ParseWhile(i, stop, depth, loop_depth);
      return;
    }
    if (IsIdent(t, "for")) {
      ParseFor(i, stop, depth, loop_depth);
      return;
    }
    if (IsIdent(t, "do")) {
      ParseDoWhile(i, stop, depth, loop_depth);
      return;
    }
    if (IsIdent(t, "switch")) {
      ParseSwitch(i, depth, loop_depth);
      return;
    }
    if (IsIdent(t, "try")) {
      ParseTry(i, stop, depth, loop_depth);
      return;
    }
    if (IsIdent(t, "return")) {
      CollectSimple(i, stop, depth, loop_depth, StmtKind::kReturn);
      Edge(cur_, cfg_.exit);
      cur_ = NewBlock();
      return;
    }
    if (IsIdent(t, "break") && IsPunct(At(*i + 1), ";")) {
      if (break_targets_.empty()) {
        failed_ = true;  // break outside any loop/switch: not our grammar
        return;
      }
      Edge(cur_, break_targets_.back());
      cur_ = NewBlock();
      *i += 2;
      return;
    }
    if (IsIdent(t, "continue") && IsPunct(At(*i + 1), ";")) {
      if (continue_targets_.empty()) {
        failed_ = true;
        return;
      }
      Edge(cur_, continue_targets_.back());
      cur_ = NewBlock();
      *i += 2;
      return;
    }
    if (IsIdent(t, "goto") || IsIdent(t, "co_return") ||
        IsIdent(t, "co_await") || IsIdent(t, "co_yield")) {
      failed_ = true;  // unstructured / coroutine flow: fall back
      return;
    }
    // Everything else — including ALL_CAPS macro invocations, whose brace
    // bodies CollectSimple swallows as balanced groups — is a plain
    // statement with no control-flow semantics.
    CollectSimple(i, stop, depth, loop_depth, StmtKind::kPlain);
  }

  /// Expects `(` at *i (after skipping `constexpr`); returns the index one
  /// past the matching `)`, recording the parenthesized range.
  bool ParenRange(size_t* i, size_t* open, size_t* close) {
    if (IsIdent(At(*i), "constexpr")) ++*i;
    if (!IsPunct(At(*i), "(")) {
      failed_ = true;
      return false;
    }
    *open = *i;
    size_t j = *i;
    SkipBalanced(&j, "(", ")");
    if (failed_) return false;
    *close = j;  // one past ')'
    *i = j;
    return true;
  }

  void ParseIf(size_t* i, size_t stop, int depth, int loop_depth) {
    ++*i;  // 'if'
    size_t open = 0, close = 0;
    if (!ParenRange(i, &open, &close)) return;
    AppendStmt(open + 1, close - 1, depth, loop_depth, StmtKind::kCond);
    int cond_block = cur_;

    int then_block = NewBlock();
    Edge(cond_block, then_block);
    cur_ = then_block;
    ParseBody(i, stop, depth, loop_depth);
    int then_end = cur_;

    if (IsIdent(At(*i), "else")) {
      ++*i;
      int else_block = NewBlock();
      Edge(cond_block, else_block);
      cur_ = else_block;
      ParseBody(i, stop, depth, loop_depth);
      int else_end = cur_;
      int join = NewBlock();
      Edge(then_end, join);
      Edge(else_end, join);
      cur_ = join;
    } else {
      int join = NewBlock();
      Edge(then_end, join);
      Edge(cond_block, join);
      cur_ = join;
    }
  }

  void ParseWhile(size_t* i, size_t stop, int depth, int loop_depth) {
    ++*i;  // 'while'
    size_t open = 0, close = 0;
    if (!ParenRange(i, &open, &close)) return;
    int header = NewBlock();
    Edge(cur_, header);
    cur_ = header;
    AppendStmt(open + 1, close - 1, depth, loop_depth + 1, StmtKind::kCond);

    int body = NewBlock();
    int after = NewBlock();
    Edge(header, body);
    Edge(header, after);
    break_targets_.push_back(after);
    continue_targets_.push_back(header);
    cur_ = body;
    ParseBody(i, stop, depth, loop_depth + 1);
    Edge(cur_, header);  // back edge
    break_targets_.pop_back();
    continue_targets_.pop_back();
    cur_ = after;
  }

  void ParseFor(size_t* i, size_t stop, int depth, int loop_depth) {
    ++*i;  // 'for'
    size_t open = 0, close = 0;
    if (!ParenRange(i, &open, &close)) return;

    // Split the header: a top-level ':' means range-for; otherwise the two
    // top-level ';' split init / cond / increment.
    // `<`/`>` are NOT nesting here: `i < n` would never close. Template
    // angles in a for-header cannot contain `;` or a top-level `:` anyway.
    size_t colon = 0;
    std::vector<size_t> semis;
    int nest = 0;
    for (size_t j = open + 1; j + 1 < close; ++j) {
      const Token* t = code_[j];
      if (IsPunct(t, "(") || IsPunct(t, "{") || IsPunct(t, "[")) ++nest;
      if (IsPunct(t, ")") || IsPunct(t, "}") || IsPunct(t, "]")) --nest;
      if (nest != 0) continue;
      if (IsPunct(t, ";")) semis.push_back(j);
      if (IsPunct(t, ":") && colon == 0 && semis.empty()) colon = j;
    }

    int header = NewBlock();
    int body = NewBlock();
    int after = NewBlock();
    int latch = -1;
    if (colon != 0) {
      // Range-for: the whole header re-binds the element every iteration.
      Edge(cur_, header);
      cur_ = header;
      AppendStmt(open + 1, close - 1, depth, loop_depth + 1, StmtKind::kCond);
      Edge(header, body);
      Edge(header, after);
      continue_targets_.push_back(header);
    } else if (semis.size() == 2) {
      // Classic for: init runs once in the current block.
      AppendStmt(open + 1, semis[0], depth, loop_depth, StmtKind::kPlain);
      Edge(cur_, header);
      cur_ = header;
      AppendStmt(semis[0] + 1, semis[1], depth, loop_depth + 1,
                 StmtKind::kCond);
      latch = NewBlock();
      cur_ = latch;
      AppendStmt(semis[1] + 1, close - 1, depth, loop_depth + 1,
                 StmtKind::kPlain);
      Edge(latch, header);
      Edge(header, body);
      Edge(header, after);
      continue_targets_.push_back(latch);
    } else {
      failed_ = true;  // macro-generated or otherwise unrecognizable header
      return;
    }
    break_targets_.push_back(after);
    cur_ = body;
    ParseBody(i, stop, depth, loop_depth + 1);
    Edge(cur_, latch >= 0 ? latch : header);  // back edge (via latch if any)
    break_targets_.pop_back();
    continue_targets_.pop_back();
    cur_ = after;
  }

  void ParseDoWhile(size_t* i, size_t stop, int depth, int loop_depth) {
    ++*i;  // 'do'
    int body = NewBlock();
    int latch = NewBlock();
    int after = NewBlock();
    Edge(cur_, body);
    break_targets_.push_back(after);
    continue_targets_.push_back(latch);
    cur_ = body;
    ParseBody(i, stop, depth, loop_depth + 1);
    Edge(cur_, latch);
    break_targets_.pop_back();
    continue_targets_.pop_back();

    if (!IsIdent(At(*i), "while")) {
      failed_ = true;
      return;
    }
    ++*i;
    size_t open = 0, close = 0;
    if (!ParenRange(i, &open, &close)) return;
    cur_ = latch;
    AppendStmt(open + 1, close - 1, depth, loop_depth + 1, StmtKind::kCond);
    Edge(latch, body);  // back edge
    Edge(latch, after);
    if (IsPunct(At(*i), ";")) ++*i;
    cur_ = after;
  }

  void ParseSwitch(size_t* i, int depth, int loop_depth) {
    ++*i;  // 'switch'
    size_t open = 0, close = 0;
    if (!ParenRange(i, &open, &close)) return;
    AppendStmt(open + 1, close - 1, depth, loop_depth, StmtKind::kCond);
    int head = cur_;

    if (!IsPunct(At(*i), "{")) {
      failed_ = true;
      return;
    }
    size_t body_close = *i;
    SkipBalanced(&body_close, "{", "}");
    if (failed_) return;

    int after = NewBlock();
    break_targets_.push_back(after);
    bool saw_default = false;
    bool in_case = false;
    size_t j = *i + 1;
    size_t body_stop = body_close > *i ? body_close - 1 : *i + 1;
    while (j < body_stop && !failed_) {
      if (IsIdent(At(j), "case") || IsIdent(At(j), "default")) {
        saw_default = saw_default || IsIdent(At(j), "default");
        while (j < body_stop && !IsPunct(At(j), ":")) ++j;
        if (j < body_stop) ++j;  // past ':'
        int block = NewBlock();
        Edge(head, block);
        if (in_case) Edge(cur_, block);  // fallthrough
        cur_ = block;
        in_case = true;
        continue;
      }
      ParseStmt(&j, body_stop, depth + 1, loop_depth);
    }
    if (in_case) Edge(cur_, after);
    if (!saw_default) Edge(head, after);
    break_targets_.pop_back();
    *i = body_close;
    cur_ = after;
  }

  void ParseTry(size_t* i, size_t stop, int depth, int loop_depth) {
    ++*i;  // 'try'
    int before = cur_;
    ParseStmt(i, stop, depth, loop_depth);  // the try compound
    int after_try = cur_;
    int join = NewBlock();
    Edge(after_try, join);
    while (IsIdent(At(*i), "catch")) {
      ++*i;
      size_t open = 0, close = 0;
      if (!ParenRange(i, &open, &close)) return;
      int handler = NewBlock();
      // A throw can leave the protected region from anywhere; modeling the
      // handler as reachable from before the try over-approximates safely.
      Edge(before, handler);
      cur_ = handler;
      ParseBody(i, stop, depth, loop_depth);
      Edge(cur_, join);
    }
    cur_ = join;
  }

  const std::vector<const Token*>& code_;
  size_t begin_;
  size_t end_;
  Cfg cfg_;
  int cur_ = 0;
  bool failed_ = false;
  std::vector<int> break_targets_;
  std::vector<int> continue_targets_;
};

}  // namespace

Cfg BuildCfg(const std::vector<const Token*>& code, size_t body_begin,
             size_t body_end) {
  return CfgBuilder(code, body_begin, body_end).Build();
}

}  // namespace alicoco::lint
