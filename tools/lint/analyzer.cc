#include "tools/lint/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "common/string_util.h"
#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

namespace fs = std::filesystem;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

bool KnownRule(const std::string& id) {
  for (const auto& rule : RuleRegistry()) {
    if (rule->id() == id) return true;
  }
  for (const PassInfo& pass : PassRegistry()) {
    if (pass.id == id) return true;
  }
  return false;
}

std::map<int, std::set<std::string>> InlineAllowances(
    const std::vector<Token>& tokens) {
  std::map<int, std::set<std::string>> allowed;
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) continue;
    size_t at = t.text.find("lint:allow(");
    if (at == std::string::npos) continue;
    size_t open = at + std::string("lint:allow(").size();
    size_t close = t.text.find(')', open);
    if (close == std::string::npos) continue;
    std::string inside = t.text.substr(open, close - open);
    for (char& c : inside) {
      if (c == ',') c = ' ';
    }
    std::istringstream parts(inside);
    std::string rule;
    while (parts >> rule) allowed[t.line].insert(rule);
  }
  return allowed;
}

Result<Suppressions> Suppressions::Parse(const std::string& text) {
  Suppressions sup;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string rule, prefix, extra;
    if (!(fields >> rule)) continue;  // blank or comment-only
    if (!(fields >> prefix) || (fields >> extra)) {
      return Status::InvalidArgument(
          "suppressions line " + std::to_string(lineno) +
          ": expected '<rule-id> <path-prefix>'");
    }
    if (rule != "*" && !KnownRule(rule)) {
      return Status::InvalidArgument("suppressions line " +
                                     std::to_string(lineno) +
                                     ": unknown rule id '" + rule + "'");
    }
    sup.Add(std::move(rule), std::move(prefix));
  }
  return sup;
}

Result<Suppressions> Suppressions::LoadFile(const std::string& path) {
  ALICOCO_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return Parse(text);
}

void Suppressions::Add(std::string rule, std::string path_prefix) {
  entries_.emplace_back(std::move(rule), std::move(path_prefix));
}

bool Suppressions::Matches(const std::string& rule,
                           const std::string& path) const {
  for (const auto& [r, prefix] : entries_) {
    if ((r == "*" || r == rule) && path.compare(0, prefix.size(), prefix) == 0) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& contents,
                                   const Suppressions* suppressions) {
  FileContext file;
  file.path = path;
  file.is_header = EndsWith(path, ".h") || EndsWith(path, ".hpp");
  file.tokens = Lex(contents);

  std::vector<Finding> findings;
  for (const auto& rule : RuleRegistry()) {
    rule->Check(file, &findings);
  }

  auto allowed = InlineAllowances(file.tokens);
  auto is_suppressed = [&](const Finding& f) {
    if (suppressions != nullptr && suppressions->Matches(f.rule, f.file)) {
      return true;
    }
    auto it = allowed.find(f.line);
    return it != allowed.end() && it->second.count(f.rule) != 0;
  };
  findings.erase(
      std::remove_if(findings.begin(), findings.end(), is_suppressed),
      findings.end());

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return findings;
}

Result<std::vector<Finding>> AnalyzeTree(const std::string& root,
                                         const Suppressions* suppressions) {
  static const char* kRoots[] = {"src", "tests", "bench", "examples",
                                 "tools/lint"};
  static const char* kExtensions[] = {".h", ".hpp", ".cc", ".cpp"};

  std::vector<std::string> paths;
  for (const char* sub : kRoots) {
    fs::path dir = fs::path(root) / sub;
    if (!fs::is_directory(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "fixtures") {
        it.disable_recursion_pending();  // fixture corpus is deliberately bad
        continue;
      }
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (std::find(std::begin(kExtensions), std::end(kExtensions), ext) ==
          std::end(kExtensions)) {
        continue;
      }
      paths.push_back(
          fs::relative(it->path(), fs::path(root)).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<Finding> findings;
  for (const std::string& rel : paths) {
    ALICOCO_ASSIGN_OR_RETURN(
        std::string contents,
        ReadFile((fs::path(root) / rel).generic_string()));
    std::vector<Finding> file_findings =
        AnalyzeSource(rel, contents, suppressions);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ":" +
         finding.rule + ": " + finding.message;
}

Result<ProjectReport> AnalyzeProject(const std::string& root,
                                     const ProjectOptions& options) {
  ProjectIndex::Options index_options;
  index_options.cache_path = options.cache_path;
  index_options.cost_clock = options.cost_clock;
  ALICOCO_ASSIGN_OR_RETURN(
      ProjectIndex index,
      ProjectIndex::Build(root, {options.project_dir}, index_options));

  std::string layers_path = options.layers_path.empty()
                                ? (fs::path(root) / "tools/lint/layers.txt")
                                      .generic_string()
                                : options.layers_path;
  ALICOCO_ASSIGN_OR_RETURN(Layers layers, Layers::LoadFile(layers_path));

  std::vector<Finding> findings;
  for (const FileSummary& file : index.files()) {
    findings.insert(findings.end(), file.findings.begin(),
                    file.findings.end());
  }
  InterprocStats interproc_stats;
  TaintStats taint_stats;
  std::vector<Finding> pass_findings =
      RunAllPasses(index, layers, &interproc_stats, &taint_stats);
  findings.insert(findings.end(), pass_findings.begin(), pass_findings.end());
  if (options.cost_clock != nullptr) {
    options.cost_clock->AdvanceUs(interproc_stats.cost_us);
    options.cost_clock->AdvanceUs(taint_stats.cost_us);
  }

  std::set<std::string> changed(index.changed().begin(),
                                index.changed().end());
  auto drop = [&](const Finding& f) {
    if (options.changed_only && changed.count(f.file) == 0) return true;
    if (options.suppressions != nullptr &&
        options.suppressions->Matches(f.rule, f.file)) {
      return true;
    }
    const FileSummary* summary = index.Find(f.file);
    if (summary == nullptr) return false;
    auto it = summary->allowances.find(f.line);
    return it != summary->allowances.end() && it->second.count(f.rule) != 0;
  };
  findings.erase(std::remove_if(findings.begin(), findings.end(), drop),
                 findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  ProjectReport report;
  report.findings = std::move(findings);
  report.stats = index.stats();
  report.interproc = interproc_stats;
  report.taint = taint_stats;
  return report;
}

}  // namespace alicoco::lint
