// Deterministic C++ surface lexer for alicoco_lint.
//
// Produces a flat token stream good enough for pattern-level static
// analysis: identifiers, numbers (digit separators included), string and
// character literals (escapes and raw strings handled), comments (kept as
// tokens so inline suppressions can see them), preprocessor directives
// (one token per logical line, continuations folded, trailing comments
// stripped), and punctuation (with `::` and `->` fused). It does not
// build an AST — rules pattern-match the stream — but unlike the old grep
// gate it never confuses code with comment or literal text.

#ifndef ALICOCO_TOOLS_LINT_LEXER_H_
#define ALICOCO_TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

namespace alicoco::lint {

enum class TokenKind {
  kIdentifier,   // identifiers and keywords, e.g. `new`, `Mutex`
  kNumber,       // 42, 0x1F, 1'000'000, 3.14f
  kString,       // "..." including raw strings, prefix kept out of text
  kCharLiteral,  // 'a', '\n'
  kComment,      // // and /* */ bodies, delimiters stripped
  kDirective,    // whole preprocessor logical line, e.g. `#include <map>`
  kPunct,        // single chars plus the fused `::` and `->`
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

/// Lexes `source` into tokens. Never fails: unterminated constructs are
/// closed at end of input so analysis of broken fixtures stays total.
std::vector<Token> Lex(const std::string& source);

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_LEXER_H_
