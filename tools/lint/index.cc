#include "tools/lint/index.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/string_util.h"
#include "tools/lint/analyzer.h"
#include "tools/lint/cfg.h"
#include "tools/lint/lexer.h"
#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

namespace fs = std::filesystem;

// Simulated cost model: summarizing from source is charged per byte (the
// lexer and extractor are both linear scans); a cache hit is charged a
// small near-flat amount (hash + summary-line parse). The absolute units
// are arbitrary — what matters is that the ratio mirrors the real work,
// so the warm-vs-cold assertion tests cache behavior, not timer noise.
constexpr uint64_t kLexBaseCostUs = 8;
constexpr uint64_t kCacheHitBaseCostUs = 1;

void Charge(LintClock* cost_clock, uint64_t us) {
  if (cost_clock != nullptr) cost_clock->AdvanceUs(us);
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// Token-stream extraction

bool IsIdent(const Token* t) {
  return t != nullptr && t->kind == TokenKind::kIdentifier;
}

bool IsIdent(const Token* t, std::string_view text) {
  return IsIdent(t) && t->text == text;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

/// Keywords that look like calls (`if (...)`) but never are.
bool IsNonCallKeyword(const std::string& text) {
  static const char* kKeywords[] = {
      "if",     "for",    "while",   "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "static_assert", "throw", "new",
      "delete", "assert", "defined", "alignas", "noexcept"};
  return std::any_of(std::begin(kKeywords), std::end(kKeywords),
                     [&](const char* k) { return text == k; });
}

/// bool-returning APIs whose result is still an error signal.
bool CheckedBoolName(const std::string& name) {
  static const char* kPrefixes[] = {"Load", "Save", "Parse", "Serialize",
                                    "Deserialize"};
  return std::any_of(std::begin(kPrefixes), std::end(kPrefixes),
                     [&](const char* p) { return StartsWith(name, p); });
}

/// std containers that make a by-value member (and so its class) heavy.
bool HeavyStdContainer(const std::string& name) {
  static const char* kHeavy[] = {"string",        "vector",   "map",
                                 "set",           "unordered_map",
                                 "unordered_set", "multimap", "multiset",
                                 "deque",         "list"};
  return std::any_of(std::begin(kHeavy), std::end(kHeavy),
                     [&](const char* h) { return name == h; });
}

/// std types whose locals/by-value params own their payload — a view
/// into one dies with it. `std::array` is aggregated in because a view
/// into a dead array is just as dangling, heavy or not.
bool OwnerStdType(const std::string& name) {
  return HeavyStdContainer(name) || name == "array";
}

/// The normalized param types ParseOneParam produces for owners.
bool OwnerParamType(const std::string& type) {
  return StartsWith(type, "std::") && OwnerStdType(type.substr(5));
}

/// ALICOCO_GUARDED_BY and friends: all-caps project annotation macros
/// that take arguments at declaration position.
bool IsAnnotationMacro(const std::string& name) {
  if (!StartsWith(name, "ALICOCO_")) return false;
  for (char c : name) {
    if (c >= 'a' && c <= 'z') return false;
  }
  return true;
}

/// Words that appear in a parameter's type position but never name it.
bool IsTypeQualifierWord(const std::string& text) {
  static const char* kWords[] = {"const",   "volatile", "unsigned", "signed",
                                 "struct",  "class",    "typename", "long",
                                 "short",   "register", "inline"};
  return std::any_of(std::begin(kWords), std::end(kWords),
                     [&](const char* w) { return text == w; });
}

/// Walks the whole-file token stream once, tracking namespace / class /
/// function scopes, and fills the structural half of a FileSummary. The
/// grammar is the pragmatic subset this codebase uses; anything the
/// scanner cannot classify is skipped, never mis-filed — extraction
/// failures degrade to missing graph edges, not crashes or phantoms.
class Extractor {
 public:
  Extractor(const std::vector<Token>& tokens, FileSummary* out) : out_(out) {
    code_.reserve(tokens.size());
    for (const Token& t : tokens) {
      if (t.kind != TokenKind::kComment && t.kind != TokenKind::kDirective) {
        code_.push_back(&t);
      }
    }
  }

  void Run() {
    size_t i = 0;
    ParseOuter(&i, /*class_name=*/"", code_.size());
    std::sort(out_->heavy_classes.begin(), out_->heavy_classes.end());
    out_->heavy_classes.erase(std::unique(out_->heavy_classes.begin(),
                                          out_->heavy_classes.end()),
                              out_->heavy_classes.end());
  }

  /// The comment/directive-free token-pointer stream the extractor walked;
  /// FunctionBody token indices refer to this stream.
  const std::vector<const Token*>& code() const { return code_; }

  /// Every function definition found, in source order.
  std::vector<FunctionBody>& bodies() { return bodies_; }

 private:
  const Token* At(size_t i) const {
    return i < code_.size() ? code_[i] : nullptr;
  }

  /// Advances past a balanced (...) group; *i must be at '('.
  void SkipParens(size_t* i) const {
    int depth = 0;
    while (*i < code_.size()) {
      if (IsPunct(code_[*i], "(")) ++depth;
      if (IsPunct(code_[*i], ")") && --depth == 0) {
        ++*i;
        return;
      }
      ++*i;
    }
  }

  /// Advances past a balanced {...} group; *i must be at '{'.
  void SkipBraces(size_t* i) const {
    int depth = 0;
    while (*i < code_.size()) {
      if (IsPunct(code_[*i], "{")) ++depth;
      if (IsPunct(code_[*i], "}") && --depth == 0) {
        ++*i;
        return;
      }
      ++*i;
    }
  }

  /// Advances past a balanced <...> group; *i must be at '<'. Template
  /// argument lists only — the caller decides the context.
  void SkipAngles(size_t* i) const {
    int depth = 0;
    while (*i < code_.size()) {
      if (IsPunct(code_[*i], "<")) ++depth;
      if (IsPunct(code_[*i], ">") && --depth == 0) {
        ++*i;
        return;
      }
      // A ';' or '{' inside "angles" means this was a comparison after
      // all; bail rather than swallow the file.
      if (IsPunct(code_[*i], ";") || IsPunct(code_[*i], "{")) return;
      ++*i;
    }
  }

  /// Parses declarations at namespace or class scope until `end` (the
  /// index just past this scope's closing brace) or end of stream.
  void ParseOuter(size_t* i, const std::string& class_name, size_t end) {
    while (*i < end && *i < code_.size()) {
      const Token* t = code_[*i];
      if (IsPunct(t, ";") || IsPunct(t, "}")) {
        ++*i;
        continue;
      }
      if (IsIdent(t, "template")) {
        ++*i;
        if (IsPunct(At(*i), "<")) SkipAngles(i);
        continue;
      }
      if (IsIdent(t, "namespace") || (IsIdent(t, "extern") &&
                                      At(*i + 1) != nullptr &&
                                      At(*i + 1)->kind == TokenKind::kString)) {
        // namespace [a::b] { ... } | namespace x = ...; | extern "C" { ... }
        size_t j = *i + 1;
        while (j < code_.size() && !IsPunct(code_[j], "{") &&
               !IsPunct(code_[j], ";") && !IsPunct(code_[j], "=")) {
          ++j;
        }
        if (j < code_.size() && IsPunct(code_[j], "{")) {
          size_t close = j;
          SkipBraces(&close);  // close = just past '}'
          ++j;
          ParseOuter(&j, class_name, close - 1);
          *i = close;
        } else {
          while (j < code_.size() && !IsPunct(code_[j], ";")) ++j;
          *i = j + 1;
        }
        continue;
      }
      if (IsIdent(t, "class") || IsIdent(t, "struct") ||
          IsIdent(t, "union")) {
        ParseClass(i, class_name);
        continue;
      }
      if (IsIdent(t, "enum")) {
        // enum [class] Name [: type] { ... } ; — nothing to extract.
        size_t j = *i + 1;
        while (j < code_.size() && !IsPunct(code_[j], "{") &&
               !IsPunct(code_[j], ";")) {
          ++j;
        }
        if (j < code_.size() && IsPunct(code_[j], "{")) SkipBraces(&j);
        *i = j;
        continue;
      }
      if (IsIdent(t, "using") || IsIdent(t, "typedef") ||
          IsIdent(t, "friend") || IsIdent(t, "static_assert")) {
        while (*i < code_.size() && !IsPunct(code_[*i], ";")) ++*i;
        continue;
      }
      if (IsIdent(t) && IsPunct(At(*i + 1), ":") &&
          (t->text == "public" || t->text == "private" ||
           t->text == "protected")) {
        *i += 2;
        continue;
      }
      ParseDeclaration(i, class_name);
    }
    *i = std::min(end, code_.size());
  }

  /// *i is at `class`/`struct`/`union`. Extracts the class name (the last
  /// identifier before '{' / ':' / '<', skipping attribute-macro parens)
  /// and recurses into the body as a class scope.
  void ParseClass(size_t* i, const std::string& enclosing) {
    ++*i;
    std::string name;
    while (*i < code_.size()) {
      const Token* t = code_[*i];
      if (IsIdent(t)) {
        if (t->text != "final" && t->text != "alignas") name = t->text;
        ++*i;
        continue;
      }
      if (IsPunct(t, "(")) {  // attribute macro, e.g. ALICOCO_CAPABILITY(..)
        if (!name.empty()) name.clear();  // that ident was the macro
        SkipParens(i);
        continue;
      }
      if (IsPunct(t, "<")) {  // explicit specialization args
        SkipAngles(i);
        continue;
      }
      break;  // '{', ':', ';', or anything else
    }
    // Scan to the body brace through any base-clause.
    while (*i < code_.size() && !IsPunct(code_[*i], "{") &&
           !IsPunct(code_[*i], ";")) {
      if (IsPunct(code_[*i], "<")) {
        SkipAngles(i);
        continue;
      }
      ++*i;
    }
    if (*i >= code_.size() || IsPunct(code_[*i], ";")) {
      ++*i;  // forward declaration
      return;
    }
    size_t close = *i;
    SkipBraces(&close);
    ++*i;
    ParseOuter(i, name.empty() ? enclosing : name, close - 1);
    *i = close;
  }

  struct DeclShape {
    bool is_function = false;
    bool has_body = false;
    size_t name_index = 0;   ///< the identifier before the param '('
    size_t body_index = 0;   ///< index of the body '{' when has_body
    size_t end_index = 0;    ///< one past the declaration
    size_t params_begin = 0;  ///< index of the parameter-list '('
    size_t params_end = 0;    ///< one past the parameter-list ')'
    bool checked = false;    ///< [[nodiscard]] / Status / Result / bool API
    bool returns_view = false;  ///< return type mentions string_view/span
    bool returns_ref = false;   ///< return type is an lvalue reference
    std::string class_qualifier;  ///< Foo for `void Foo::Bar(...)`
    /// Locks named by ALICOCO_REQUIRES after the parameter list.
    std::vector<std::string> requires_locks;
  };

  /// Parses `ALICOCO_REQUIRES(a, b)` at `j` (the macro identifier) into
  /// one lock name per top-level comma piece (the piece's last
  /// identifier, matching how lock expressions are named elsewhere).
  /// Returns one past the closing ')'.
  size_t ParseRequires(size_t j, std::vector<std::string>* out) const {
    size_t close = j + 1;
    SkipParens(&close);  // close = one past ')'
    std::string last_ident;
    int nest = 0;
    for (size_t m = j + 2; m + 1 < close; ++m) {
      const Token* t = code_[m];
      if (IsPunct(t, "(")) ++nest;
      if (IsPunct(t, ")")) --nest;
      if (IsPunct(t, ",") && nest == 0) {
        if (!last_ident.empty()) out->push_back(last_ident);
        last_ident.clear();
        continue;
      }
      if (IsIdent(t)) last_ident = t->text;
    }
    if (!last_ident.empty()) out->push_back(last_ident);
    return close;
  }

  /// Classifies one declaration starting at *i (not a keyword the caller
  /// handles). Fills a DeclShape and leaves *i untouched.
  DeclShape ClassifyDeclaration(size_t start) const {
    DeclShape shape;
    size_t j = start;
    bool saw_params = false;
    bool in_init_list = false;
    bool saw_nodiscard = false;
    size_t params_end = 0;
    while (j < code_.size()) {
      const Token* t = code_[j];
      if (!saw_params) {
        if (IsPunct(t, "(") && j > start && IsIdent(code_[j - 1])) {
          // An annotation macro (`int x_ ALICOCO_GUARDED_BY(mu_) = 0;`)
          // would match the `ident (` function shape and swallow the
          // member declaration — skip its argument list instead.
          if (IsAnnotationMacro(code_[j - 1]->text)) {
            SkipParens(&j);
            continue;
          }
          shape.name_index = j - 1;
          saw_params = true;
          shape.params_begin = j;
          size_t k = j;
          SkipParens(&k);
          params_end = k;
          shape.params_end = k;
          j = k;
          continue;
        }
        if (IsIdent(t, "nodiscard")) saw_nodiscard = true;
        if (IsPunct(t, "<")) {
          size_t k = j;
          SkipAngles(&k);
          if (k == j) break;  // bailed: not template args
          j = k;
          continue;
        }
        if (IsPunct(t, ";")) {
          shape.end_index = j + 1;
          return shape;  // plain variable / field declaration
        }
        if (IsPunct(t, "=") || IsPunct(t, "{")) {
          // Initialized variable: skip to ';' balancing groups.
          while (j < code_.size() && !IsPunct(code_[j], ";")) {
            if (IsPunct(code_[j], "{")) {
              SkipBraces(&j);
              continue;
            }
            if (IsPunct(code_[j], "(")) {
              SkipParens(&j);
              continue;
            }
            ++j;
          }
          shape.end_index = j + 1;
          return shape;
        }
        ++j;
        continue;
      }
      // Past the parameter list: qualifiers, init list, body or ';'.
      if (IsPunct(t, ";")) {
        shape.is_function = true;
        shape.end_index = j + 1;
        break;
      }
      if ((IsIdent(t, "ALICOCO_REQUIRES") ||
           IsIdent(t, "ALICOCO_REQUIRES_SHARED")) &&
          IsPunct(At(j + 1), "(")) {
        j = ParseRequires(j, &shape.requires_locks);
        continue;
      }
      if (IsPunct(t, "(")) {  // noexcept(...) / annotation macro args
        SkipParens(&j);
        continue;
      }
      if (IsPunct(t, ":") ) {
        in_init_list = true;
        ++j;
        continue;
      }
      if (IsPunct(t, "{")) {
        const Token* prev = code_[j - 1];
        bool brace_init = in_init_list &&
                          (IsIdent(prev) || IsPunct(prev, ">"));
        if (brace_init) {
          SkipBraces(&j);
          continue;
        }
        shape.is_function = true;
        shape.has_body = true;
        shape.body_index = j;
        size_t k = j;
        SkipBraces(&k);
        shape.end_index = k;
        break;
      }
      if (IsPunct(t, "=")) {
        // = default; / = delete; / = 0;
        while (j < code_.size() && !IsPunct(code_[j], ";")) ++j;
        shape.is_function = true;
        shape.end_index = j + 1;
        break;
      }
      ++j;
    }
    if (shape.end_index == 0) shape.end_index = code_.size();
    if (!shape.is_function) return shape;

    // Name qualification: walk `A::B::Name` back from the name.
    size_t name = shape.name_index;
    if (name >= 2 && IsPunct(code_[name - 1], "::") &&
        IsIdent(code_[name - 2])) {
      shape.class_qualifier = code_[name - 2]->text;
    }

    // Checked-return detection: return-type tokens before the name chain,
    // plus a trailing return type after the parameter list.
    size_t chain_start = shape.name_index;
    while (chain_start >= 2 && IsPunct(code_[chain_start - 1], "::") &&
           IsIdent(code_[chain_start - 2])) {
      chain_start -= 2;
    }
    bool returns_checked_type = false;
    bool returns_bool = false;
    for (size_t k = start; k < chain_start; ++k) {
      if (IsIdent(code_[k], "Status") || IsIdent(code_[k], "Result")) {
        returns_checked_type = true;
      }
      if (IsIdent(code_[k], "bool")) returns_bool = true;
      if (IsIdent(code_[k], "string_view") || IsIdent(code_[k], "span")) {
        shape.returns_view = true;
      }
      // An lvalue reference return: a lone `&` (the lexer leaves `&&` as
      // two adjacent single-char puncts, so check both neighbors).
      if (IsPunct(code_[k], "&") &&
          !(k > start && IsPunct(code_[k - 1], "&")) &&
          !IsPunct(At(k + 1), "&")) {
        shape.returns_ref = true;
      }
    }
    for (size_t k = params_end; k + 1 < shape.end_index; ++k) {
      if (!IsPunct(code_[k], "->")) continue;
      if (IsIdent(At(k + 1), "Status") || IsIdent(At(k + 1), "Result")) {
        returns_checked_type = true;
      }
      if (IsIdent(At(k + 1), "bool")) returns_bool = true;
      break;
    }
    const std::string& fn_name = code_[shape.name_index]->text;
    shape.checked = saw_nodiscard || returns_checked_type ||
                    (returns_bool && CheckedBoolName(fn_name));
    return shape;
  }

  void ParseDeclaration(size_t* i, const std::string& class_name) {
    size_t start = *i;
    DeclShape shape = ClassifyDeclaration(start);
    if (!shape.is_function) {
      ExtractMemberInfo(start, shape.end_index, class_name);
      *i = shape.end_index;
      return;
    }
    DeclInfo decl;
    decl.line = code_[shape.name_index]->line;
    decl.name = code_[shape.name_index]->text;
    decl.class_name =
        shape.class_qualifier.empty() ? class_name : shape.class_qualifier;
    decl.checked = shape.checked;
    decl.has_body = shape.has_body;
    decl.params = ParseParams(shape.params_begin, shape.params_end);
    decl.requires_locks = shape.requires_locks;

    size_t body_end = shape.body_index;
    if (shape.has_body) {
      SkipBraces(&body_end);
      // `std::move(param)` anywhere in the body sanctions a by-value sink.
      for (size_t k = shape.body_index; k + 5 < body_end; ++k) {
        if (IsIdent(code_[k], "std") && IsPunct(code_[k + 1], "::") &&
            IsIdent(code_[k + 2], "move") && IsPunct(code_[k + 3], "(") &&
            IsIdent(code_[k + 4])) {
          for (ParamInfo& p : decl.params) {
            if (p.name == code_[k + 4]->text) p.moved = true;
          }
        }
      }
    }

    if (shape.has_body) {
      FunctionBody body;
      body.name = decl.name;
      body.class_name = decl.class_name;
      body.line = decl.line;
      body.decl_begin = start;
      body.body_begin = shape.body_index;
      body.body_end = body_end;
      body.returns_view = shape.returns_view;
      body.returns_ref = shape.returns_ref;
      bodies_.push_back(std::move(body));

      FunctionSummary fn;
      fn.name = decl.name;
      fn.class_name = decl.class_name;
      ParseFunctionBody(shape.body_index, body_end, &fn);
      AnalyzeReturns(shape, body_end, &decl, &fn);
      if (!fn.acquisitions.empty() || !fn.calls.empty() ||
          !fn.member_refs.empty() || !fn.view_returns.empty()) {
        out_->functions.push_back(std::move(fn));
      }
    }
    // Constructors/destructors are not value-returning APIs.
    if (decl.name != decl.class_name) out_->decls.push_back(std::move(decl));
    *i = shape.end_index;
  }

  /// Scans a function body's return statements. In view/ref-returning
  /// functions, marks parameters named in any return expression as
  /// escaping, and records `return Callee(args);` sites whose arguments
  /// are local owners or temporaries — the raw material the
  /// view-escapes-call pass composes with callee escape bits.
  void AnalyzeReturns(const DeclShape& shape, size_t body_end, DeclInfo* decl,
                      FunctionSummary* fn) {
    if (!shape.returns_view && !shape.returns_ref) return;

    // Owners whose lifetime ends with this function: local std owners and
    // by-value owner-typed parameters.
    std::set<std::string> owners;
    for (const ParamInfo& p : decl->params) {
      if (p.by_value && OwnerParamType(p.type)) owners.insert(p.name);
    }
    for (size_t k = shape.body_index; k + 2 < body_end; ++k) {
      if (!IsIdent(code_[k], "std") || !IsPunct(code_[k + 1], "::") ||
          !IsIdent(At(k + 2)) || !OwnerStdType(code_[k + 2]->text)) {
        continue;
      }
      size_t m = k + 3;
      if (m < body_end && IsPunct(code_[m], "<")) SkipAngles(&m);
      if (m < body_end && IsIdent(At(m))) owners.insert(code_[m]->text);
    }

    for (size_t k = shape.body_index; k < body_end; ++k) {
      if (!IsIdent(code_[k], "return")) continue;
      size_t stmt_end = k + 1;
      while (stmt_end < body_end && !IsPunct(code_[stmt_end], ";")) {
        ++stmt_end;
      }
      for (size_t m = k + 1; m < stmt_end; ++m) {
        if (!IsIdent(code_[m])) continue;
        const Token* prev = code_[m - 1];
        if (IsPunct(prev, ".") || IsPunct(prev, "->") ||
            IsPunct(prev, "::")) {
          continue;  // member/qualified name, not the parameter itself
        }
        for (ParamInfo& p : decl->params) {
          if (p.name == code_[m]->text) p.escapes_return = true;
        }
      }
      ParseViewReturnCall(k + 1, stmt_end, owners, fn);
      k = stmt_end;
    }
  }

  /// Matches `return [ns::]*Callee(args);` exactly — the call must be the
  /// whole return expression — and records it when an argument is a local
  /// owner or a recognizably-temporary std::string.
  void ParseViewReturnCall(size_t expr_begin, size_t stmt_end,
                           const std::set<std::string>& owners,
                           FunctionSummary* fn) const {
    size_t m = expr_begin;
    std::string callee;
    bool std_qualified = false;
    while (m < stmt_end && (IsIdent(code_[m]) || IsPunct(code_[m], "::"))) {
      if (IsIdent(code_[m])) {
        if (code_[m]->text == "std") std_qualified = true;
        callee = code_[m]->text;
      }
      ++m;
    }
    if (callee.empty() || std_qualified || m >= stmt_end ||
        !IsPunct(code_[m], "(") || IsNonCallKeyword(callee)) {
      return;
    }
    size_t close = m;
    SkipParens(&close);  // one past ')'
    if (close != stmt_end) return;  // call result is further transformed

    ViewReturnCall site;
    site.line = code_[expr_begin]->line;
    site.callee = callee;
    bool interesting = false;
    size_t piece_start = m + 1;
    int nest = 0;
    for (size_t j = m + 1; j < close; ++j) {
      const Token* t = code_[j];
      if (IsPunct(t, "(") || IsPunct(t, "{") || IsPunct(t, "[")) ++nest;
      if (IsPunct(t, ")") || IsPunct(t, "}") || IsPunct(t, "]")) --nest;
      const bool at_end = j + 1 == close;
      if (!(IsPunct(t, ",") && nest == 0) && !at_end) continue;
      const size_t piece_end = at_end ? close - 1 : j;
      if (piece_end > piece_start) {
        ViewArg arg;
        if (piece_end == piece_start + 1 && IsIdent(code_[piece_start]) &&
            owners.count(code_[piece_start]->text) != 0) {
          arg.owner = code_[piece_start]->text;
        } else {
          for (size_t p = piece_start; p + 1 < piece_end; ++p) {
            const bool string_ctor =
                IsIdent(code_[p], "std") && IsPunct(At(p + 1), "::") &&
                p + 3 < piece_end && IsIdent(At(p + 2), "string") &&
                IsPunct(At(p + 3), "(");
            const bool to_string =
                IsIdent(code_[p], "to_string") && IsPunct(At(p + 1), "(");
            const bool str_call = IsPunct(code_[p], ".") &&
                                  IsIdent(At(p + 1), "str") &&
                                  IsPunct(At(p + 2), "(");
            if (string_ctor || to_string || str_call) arg.is_temp = true;
          }
        }
        if (!arg.owner.empty() || arg.is_temp) interesting = true;
        site.args.push_back(std::move(arg));
      }
      piece_start = j + 1;
    }
    if (interesting) fn->view_returns.push_back(std::move(site));
  }

  /// Parses the parameter list between `begin` (the '(') and `end` (one
  /// past the ')') into ParamInfo records. Only the facts the
  /// param-by-value-heavy pass needs survive: a normalized type name, the
  /// parameter name, and whether it is passed by value.
  std::vector<ParamInfo> ParseParams(size_t begin, size_t end) const {
    std::vector<ParamInfo> params;
    if (begin + 1 >= end || end > code_.size()) return params;
    size_t piece_start = begin + 1;
    int nest = 0;
    for (size_t j = begin + 1; j < end; ++j) {
      const Token* t = code_[j];
      if (IsPunct(t, "(") || IsPunct(t, "{") || IsPunct(t, "[") ||
          IsPunct(t, "<")) {
        ++nest;
      } else if (IsPunct(t, ")") || IsPunct(t, "}") || IsPunct(t, "]") ||
                 IsPunct(t, ">")) {
        --nest;
      }
      const bool at_end = j + 1 == end;
      if ((IsPunct(t, ",") && nest == 0) || at_end) {
        const size_t piece_end = at_end ? j : j;
        if (piece_end > piece_start) {
          params.push_back(ParseOneParam(piece_start, piece_end));
        }
        piece_start = j + 1;
      }
    }
    return params;
  }

  ParamInfo ParseOneParam(size_t begin, size_t end) const {
    ParamInfo param;
    param.by_value = true;
    std::vector<std::string> idents;
    int angle = 0;
    for (size_t j = begin; j < end; ++j) {
      const Token* t = code_[j];
      if (IsPunct(t, "<")) {
        ++angle;
        continue;
      }
      if (IsPunct(t, ">")) {
        if (angle > 0) --angle;
        continue;
      }
      if (angle > 0) continue;  // template arguments don't shape the pass
      if (IsPunct(t, "=")) break;  // default argument
      if (IsPunct(t, "&") || IsPunct(t, "*") || IsPunct(t, ".")) {
        // References, pointers, and `...` packs are not by-value copies.
        param.by_value = false;
        continue;
      }
      if (IsPunct(t, "(") || IsPunct(t, "[")) {
        // Function pointers / array declarators: out of scope, and never
        // a silent heavy copy.
        param.by_value = false;
        break;
      }
      if (!IsIdent(t) || IsTypeQualifierWord(t->text)) continue;
      if (t->text == "std" && IsPunct(At(j + 1), "::") && IsIdent(At(j + 2))) {
        idents.push_back("std::" + code_[j + 2]->text);
        j += 2;
        continue;
      }
      idents.push_back(t->text);
    }
    if (idents.size() >= 2) {
      param.type = idents[idents.size() - 2];
      param.name = idents.back();
    } else if (idents.size() == 1) {
      param.type = idents.front();  // unnamed parameter
    }
    return param;
  }

  /// Non-function declaration in a class body: mutex members, either
  /// declared as `Mutex name_;` or implied by ALICOCO_GUARDED_BY(name_).
  void ExtractMemberInfo(size_t start, size_t end,
                         const std::string& class_name) {
    if (class_name.empty()) return;
    for (size_t k = start; k + 1 < end && k + 1 < code_.size(); ++k) {
      if (IsIdent(code_[k], "Mutex") && IsIdent(code_[k + 1])) {
        out_->mutexes.push_back(MutexMemberDecl{class_name,
                                                code_[k + 1]->text});
      }
      // A by-value std::string / container member makes the class itself
      // expensive to copy — the param-by-value-heavy pass treats such
      // classes like std containers.
      if (IsIdent(code_[k], "std") && IsPunct(At(k + 1), "::") &&
          IsIdent(At(k + 2)) && HeavyStdContainer(code_[k + 2]->text)) {
        size_t m = k + 3;
        if (m < end && IsPunct(code_[m], "<")) {
          SkipAngles(&m);
        }
        // Pointer/reference members don't carry the payload.
        if (m < end && IsIdent(At(m))) {
          out_->heavy_classes.push_back(class_name);
        }
      }
      if ((IsIdent(code_[k], "ALICOCO_GUARDED_BY") ||
           IsIdent(code_[k], "ALICOCO_PT_GUARDED_BY")) &&
          IsPunct(At(k + 1), "(")) {
        size_t close = k + 1;
        SkipParens(&close);
        std::string last_ident;
        for (size_t m = k + 2; m + 1 < close; ++m) {
          if (IsIdent(code_[m])) last_ident = code_[m]->text;
        }
        if (!last_ident.empty()) {
          out_->mutexes.push_back(MutexMemberDecl{class_name, last_ident});
          // The annotated member is the identifier right before the macro:
          // `std::queue<Task> tasks_ ALICOCO_GUARDED_BY(mu_)`.
          if (k >= 1 && IsIdent(code_[k - 1])) {
            out_->guarded_members.push_back(GuardedMemberDecl{
                class_name, code_[k - 1]->text, last_ident});
          }
        }
      }
    }
    DedupMutexes();
  }

  void DedupMutexes() {
    auto& v = out_->mutexes;
    std::sort(v.begin(), v.end(), [](const MutexMemberDecl& a,
                                     const MutexMemberDecl& b) {
      return std::tie(a.class_name, a.member) <
             std::tie(b.class_name, b.member);
    });
    v.erase(std::unique(v.begin(), v.end(),
                        [](const MutexMemberDecl& a, const MutexMemberDecl& b) {
                          return a.class_name == b.class_name &&
                                 a.member == b.member;
                        }),
            v.end());
    auto& g = out_->guarded_members;
    std::sort(g.begin(), g.end(), [](const GuardedMemberDecl& a,
                                     const GuardedMemberDecl& b) {
      return std::tie(a.class_name, a.member, a.mutex) <
             std::tie(b.class_name, b.member, b.mutex);
    });
    g.erase(std::unique(g.begin(), g.end(),
                        [](const GuardedMemberDecl& a,
                           const GuardedMemberDecl& b) {
                          return a.class_name == b.class_name &&
                                 a.member == b.member && a.mutex == b.mutex;
                        }),
            g.end());
  }

  /// If a bare statement-expression call chain starts at `i`, returns the
  /// index of the final called identifier; otherwise npos. Handles
  /// `Foo(x);`, `a.b(x);`, `a->b()->c();`, `ns::Foo(x);`.
  size_t BareCallCallee(size_t i) const {
    constexpr size_t kNone = static_cast<size_t>(-1);
    size_t j = i;
    size_t callee = kNone;
    bool expect_name = true;
    while (j < code_.size()) {
      const Token* t = code_[j];
      if (expect_name) {
        if (!IsIdent(t) || IsNonCallKeyword(t->text)) return kNone;
        if (IsPunct(At(j + 1), "(")) {
          callee = j;
          ++j;
          SkipParens(&j);
          // After the call: ';' ends the statement, '.'/'->' chains on.
          if (IsPunct(At(j), ";")) return callee;
          if (IsPunct(At(j), ".") || IsPunct(At(j), "->")) {
            ++j;
            expect_name = true;
            continue;
          }
          return kNone;  // result is used (assigned, compared, ...)
        }
        ++j;
        expect_name = false;
        continue;
      }
      if (IsPunct(t, "::") || IsPunct(t, ".") || IsPunct(t, "->")) {
        ++j;
        expect_name = true;
        continue;
      }
      return kNone;
    }
    return kNone;
  }

  void ParseFunctionBody(size_t body_start, size_t body_end,
                         FunctionSummary* fn) {
    int depth = 0;
    bool stmt_start = false;
    // (brace depth at acquisition, index into fn->acquisitions)
    std::vector<std::pair<int, int>> held;
    std::set<std::pair<std::string, std::string>> seen_calls;
    std::set<std::pair<std::string, std::string>> seen_refs;

    auto held_indices = [&held] {
      std::vector<int> out;
      out.reserve(held.size());
      for (const auto& [unused, idx] : held) out.push_back(idx);
      return out;
    };
    auto held_key_of = [&held_indices] {
      std::string key;
      for (int idx : held_indices()) key += std::to_string(idx) + ",";
      return key;
    };

    for (size_t j = body_start; j < body_end && j < code_.size(); ++j) {
      const Token* t = code_[j];
      if (IsPunct(t, "{")) {
        ++depth;
        stmt_start = true;
        continue;
      }
      if (IsPunct(t, "}")) {
        --depth;
        while (!held.empty() && held.back().first > depth) held.pop_back();
        stmt_start = true;
        continue;
      }
      if (IsPunct(t, ";")) {
        stmt_start = true;
        continue;
      }
      if (IsIdent(t, "MutexLock") && IsIdent(At(j + 1)) &&
          IsPunct(At(j + 2), "(")) {
        Acquisition acq;
        acq.line = t->line;
        size_t close = j + 2;
        SkipParens(&close);  // close = one past ')'
        std::string expr;
        std::string last_ident;
        size_t arg_count = 0;
        for (size_t m = j + 3; m + 1 < close; ++m) {
          expr += code_[m]->text;
          ++arg_count;
          if (IsIdent(code_[m])) last_ident = code_[m]->text;
        }
        if (last_ident.empty()) {
          j = close - 1;
          stmt_start = false;
          continue;
        }
        acq.name = last_ident;
        acq.is_plain_member = arg_count == 1;
        acq.expr = expr;
        acq.held = held_indices();
        fn->acquisitions.push_back(acq);
        held.emplace_back(depth, static_cast<int>(fn->acquisitions.size()) - 1);
        j = close - 1;
        stmt_start = false;
        continue;
      }
      if (stmt_start && IsIdent(t) && !IsNonCallKeyword(t->text)) {
        size_t callee = BareCallCallee(j);
        if (callee != static_cast<size_t>(-1)) {
          out_->call_statements.push_back(
              CallStatement{code_[callee]->line, code_[callee]->text});
        }
      }
      if (IsIdent(t) && IsPunct(At(j + 1), "(") &&
          !IsNonCallKeyword(t->text) && !IsIdent(code_[j - 1]) &&
          t->text != "MutexLock") {
        CallInfo call;
        call.line = t->line;
        call.callee = t->text;
        const Token* prev = code_[j - 1];
        if (IsPunct(prev, "::")) {
          call.kind = CallKind::kQualified;
          if (j >= 2 && IsIdent(code_[j - 2])) {
            call.qualifier = code_[j - 2]->text;
          }
        } else if (IsPunct(prev, ".") || IsPunct(prev, "->")) {
          call.kind = j >= 2 && IsIdent(code_[j - 2], "this")
                          ? CallKind::kThis
                          : CallKind::kMember;
        }
        // Last identifier of the first argument, for the condition-wait
        // idiom check.
        int nest = 1;
        for (size_t m = j + 2; m < code_.size(); ++m) {
          const Token* a = code_[m];
          if (IsPunct(a, "(")) ++nest;
          if (IsPunct(a, ")") && --nest == 0) break;
          if (IsPunct(a, ",") && nest == 1) break;
          if (IsIdent(a)) call.arg0 = a->text;
        }
        std::string held_key = call.qualifier + "#" +
                               std::to_string(static_cast<int>(call.kind)) +
                               held_key_of();
        if (seen_calls.emplace(t->text, held_key).second) {
          call.held = held_indices();
          fn->calls.push_back(std::move(call));
        }
      }
      // Member-field reads/writes: trailing-underscore identifiers that
      // are not calls, not qualified, and not reached through a receiver
      // other than `this`. Deduped per (name, held-set) like calls.
      if (IsIdent(t) && t->text.size() > 1 && t->text.back() == '_' &&
          !IsPunct(At(j + 1), "(")) {
        const Token* prev = code_[j - 1];
        bool own_member = !IsPunct(prev, "::");
        if ((IsPunct(prev, ".") || IsPunct(prev, "->")) &&
            !(j >= 2 && IsIdent(code_[j - 2], "this"))) {
          own_member = false;
        }
        if (own_member && seen_refs.emplace(t->text, held_key_of()).second) {
          MemberRef ref;
          ref.line = t->line;
          ref.name = t->text;
          ref.held = held_indices();
          fn->member_refs.push_back(std::move(ref));
        }
      }
      stmt_start = false;
    }
  }

  std::vector<const Token*> code_;
  std::vector<FunctionBody> bodies_;
  FileSummary* out_;
};

// ---------------------------------------------------------------------------
// Cache serialization

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '\\': out->append("\\\\"); break;
      case ' ': out->append("\\s"); break;
      case '\t': out->append("\\t"); break;
      case '\n': out->append("\\n"); break;
      default: out->push_back(c);
    }
  }
  if (s.empty()) out->append("\\0");
}

Result<std::string> Unescape(const std::string& s) {
  if (s == "\\0") return std::string();
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 1 >= s.size()) return Status::Corruption("dangling escape");
    ++i;
    switch (s[i]) {
      case '\\': out.push_back('\\'); break;
      case 's': out.push_back(' '); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      default: return Status::Corruption("unknown escape");
    }
  }
  return out;
}

std::string JoinHeld(const std::vector<int>& held) {
  if (held.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < held.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(held[i]);
  }
  return out;
}

Result<std::vector<int>> ParseHeld(const std::string& field) {
  std::vector<int> held;
  if (field == "-") return held;
  for (const std::string& part : SplitString(field, ',')) {
    try {
      held.push_back(std::stoi(part));
    } catch (...) {
      return Status::Corruption("bad held list: " + field);
    }
  }
  return held;
}

constexpr char kCacheMagic[] = "alicoco_lint_cache_v4";

}  // namespace

uint64_t HashContent(const std::string& contents) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (char c : contents) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

FileSummary SummarizeSource(const std::string& path,
                            const std::string& contents) {
  FileSummary summary;
  summary.path = path;
  summary.content_hash = HashContent(contents);

  std::vector<Token> tokens = Lex(contents);

  FileContext file;
  file.path = path;
  file.is_header = EndsWith(path, ".h") || EndsWith(path, ".hpp");
  file.tokens = std::move(tokens);
  for (const auto& rule : RuleRegistry()) {
    rule->Check(file, &summary.findings);
  }
  summary.allowances = InlineAllowances(file.tokens);

  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kDirective || !StartsWith(t.text, "#include")) {
      continue;
    }
    size_t open = t.text.find_first_of("<\"");
    if (open == std::string::npos) continue;
    char close = t.text[open] == '<' ? '>' : '"';
    size_t end = t.text.find(close, open + 1);
    if (end == std::string::npos) continue;
    summary.includes.push_back(IncludeSite{
        t.line, t.text[open] == '<',
        t.text.substr(open + 1, end - open - 1)});
  }

  Extractor extractor(file.tokens, &summary);
  extractor.Run();

  // `// lint:hot` markers opt a function into the hot-loop-alloc check
  // regardless of its path; a marker on the signature line (or up to two
  // lines above it) or anywhere inside the body counts.
  std::vector<int> hot_lines;
  for (const Token& t : file.tokens) {
    if (t.kind == TokenKind::kComment &&
        t.text.find("lint:hot") != std::string::npos) {
      hot_lines.push_back(t.line);
    }
  }
  const std::vector<const Token*>& code = extractor.code();
  for (FunctionBody& fn : extractor.bodies()) {
    const int last_line =
        fn.body_end > 0 && fn.body_end <= code.size()
            ? code[fn.body_end - 1]->line
            : fn.line;
    for (int hot : hot_lines) {
      if (hot >= fn.line - 2 && hot <= last_line) fn.hot = true;
    }
  }

  // The intraprocedural dataflow checks run here — at summarize time — so
  // their findings live in the summary and ride the content-hash cache
  // exactly like per-file rule findings.
  std::vector<Finding> flow =
      RunFunctionDataflowChecks(path, code, extractor.bodies());
  summary.findings.insert(summary.findings.end(), flow.begin(), flow.end());

  // The taint tier runs here too: builtin-source findings are appended to
  // summary.findings, while Read*/Parse*-guarded hits and call-site taint
  // facts land in taint_pending / taint_calls for the cross-file pass.
  RunTaintChecks(path, code, extractor.bodies(), &summary);

  std::sort(summary.findings.begin(), summary.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return summary;
}

uint64_t AnalyzerCacheVersion() {
  // Hand-bumped when the FileSummary shape or cache line protocol changes
  // in a way the tag set alone doesn't reveal.
  std::string ident = "summary-format-4";
  for (const auto& rule : RuleRegistry()) {
    ident.push_back('|');
    ident.append(rule->id());
  }
  for (const PassInfo& pass : PassRegistry()) {
    ident.push_back('|');
    ident.append(pass.id);
  }
  return HashContent(ident);
}

const FileSummary* ProjectIndex::Find(const std::string& path) const {
  auto it = std::lower_bound(
      files_.begin(), files_.end(), path,
      [](const FileSummary& f, const std::string& p) { return f.path < p; });
  return it != files_.end() && it->path == path ? &*it : nullptr;
}

Result<ProjectIndex> ProjectIndex::Build(
    const std::string& root, const std::vector<std::string>& subdirs,
    const Options& options) {
  static const char* kExtensions[] = {".h", ".hpp", ".cc", ".cpp"};

  std::vector<std::string> paths;
  for (const std::string& sub : subdirs) {
    fs::path dir = fs::path(root) / sub;
    if (!fs::is_directory(dir)) {
      return Status::NotFound("project subdir is not a directory: " + sub);
    }
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (std::find(std::begin(kExtensions), std::end(kExtensions), ext) ==
          std::end(kExtensions)) {
        continue;
      }
      paths.push_back(
          fs::relative(it->path(), fs::path(root)).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());

  // A broken or stale cache is silently discarded: correctness never
  // depends on it, only speed.
  std::map<std::string, FileSummary> cached;
  if (!options.cache_path.empty()) {
    auto text = ReadFile(options.cache_path);
    if (text.ok()) {
      auto loaded = DeserializeSummaries(*text);
      if (loaded.ok()) {
        for (FileSummary& f : *loaded) {
          std::string key = f.path;
          cached.emplace(std::move(key), std::move(f));
        }
      }
    }
  }

  ProjectIndex index;
  for (const std::string& rel : paths) {
    ALICOCO_ASSIGN_OR_RETURN(
        std::string contents,
        ReadFile((fs::path(root) / rel).generic_string()));
    uint64_t hash = HashContent(contents);
    auto it = cached.find(rel);
    if (it != cached.end() && it->second.content_hash == hash) {
      Charge(options.cost_clock,
             kCacheHitBaseCostUs + contents.size() / 256);
      index.files_.push_back(std::move(it->second));
      ++index.stats_.cache_hits;
    } else {
      Charge(options.cost_clock, kLexBaseCostUs + contents.size());
      index.files_.push_back(SummarizeSource(rel, contents));
      index.stats_.bytes_lexed += contents.size();
      ++index.stats_.lexed;
      index.changed_.push_back(rel);
    }
  }
  index.stats_.files = index.files_.size();
  if (options.cost_clock != nullptr) {
    index.stats_.cost_us = options.cost_clock->NowUs();
  }

  if (!options.cache_path.empty()) {
    std::ofstream out(options.cache_path,
                      std::ios::binary | std::ios::trunc);
    if (out) out << SerializeSummaries(index.files_);
    // An unwritable cache dir is not an analysis failure.
  }
  return index;
}

std::string SerializeSummaries(const std::vector<FileSummary>& files) {
  // The header carries the analyzer's own fingerprint: a cache written by
  // an older lint (fewer rules, different summary shape) fails the
  // comparison below and is discarded wholesale, so an upgraded analyzer
  // never serves findings it didn't compute.
  std::string out(kCacheMagic);
  out.push_back(' ');
  out.append(std::to_string(AnalyzerCacheVersion()));
  out.push_back('\n');
  for (const FileSummary& f : files) {
    out.append("F ");
    AppendEscaped(f.path, &out);
    out.append(" " + std::to_string(f.content_hash) + "\n");
    for (const IncludeSite& inc : f.includes) {
      out.append("I " + std::to_string(inc.line) +
                 (inc.angled ? " 1 " : " 0 "));
      AppendEscaped(inc.path, &out);
      out.push_back('\n');
    }
    for (const MutexMemberDecl& m : f.mutexes) {
      out.append("M ");
      AppendEscaped(m.class_name, &out);
      out.push_back(' ');
      AppendEscaped(m.member, &out);
      out.push_back('\n');
    }
    for (const GuardedMemberDecl& g : f.guarded_members) {
      out.append("B ");
      AppendEscaped(g.class_name, &out);
      out.push_back(' ');
      AppendEscaped(g.member, &out);
      out.push_back(' ');
      AppendEscaped(g.mutex, &out);
      out.push_back('\n');
    }
    for (const FunctionSummary& fn : f.functions) {
      out.append("U ");
      AppendEscaped(fn.name, &out);
      out.push_back(' ');
      AppendEscaped(fn.class_name, &out);
      out.push_back('\n');
      for (const Acquisition& a : fn.acquisitions) {
        out.append("A " + std::to_string(a.line) +
                   (a.is_plain_member ? " 1 " : " 0 "));
        AppendEscaped(a.name, &out);
        out.push_back(' ');
        AppendEscaped(a.expr, &out);
        out.append(" " + JoinHeld(a.held) + "\n");
      }
      for (const CallInfo& c : fn.calls) {
        out.append("C " + std::to_string(c.line) + " " +
                   std::to_string(static_cast<int>(c.kind)) + " ");
        AppendEscaped(c.callee, &out);
        out.push_back(' ');
        AppendEscaped(c.qualifier, &out);
        out.push_back(' ');
        AppendEscaped(c.arg0, &out);
        out.append(" " + JoinHeld(c.held) + "\n");
      }
      for (const MemberRef& r : fn.member_refs) {
        out.append("R " + std::to_string(r.line) + " ");
        AppendEscaped(r.name, &out);
        out.append(" " + JoinHeld(r.held) + "\n");
      }
      for (const ViewReturnCall& v : fn.view_returns) {
        out.append("V " + std::to_string(v.line) + " ");
        AppendEscaped(v.callee, &out);
        out.append(" " + std::to_string(v.args.size()));
        for (const ViewArg& a : v.args) {
          out.push_back(' ');
          AppendEscaped(a.owner, &out);
          out.append(a.is_temp ? " 1" : " 0");
        }
        out.push_back('\n');
      }
    }
    for (const DeclInfo& d : f.decls) {
      out.append("D " + std::to_string(d.line) + (d.checked ? " 1" : " 0") +
                 (d.has_body ? " 1" : " 0") +
                 (d.returns_tainted ? " 1 " : " 0 "));
      AppendEscaped(d.name, &out);
      out.push_back(' ');
      AppendEscaped(d.class_name, &out);
      out.push_back('\n');
      for (const ParamInfo& p : d.params) {
        out.append(std::string("P ") + (p.by_value ? "1" : "0") +
                   (p.moved ? " 1" : " 0") +
                   (p.escapes_return ? " 1 " : " 0 ") +
                   std::to_string(static_cast<int>(p.taint_sink_mask)) +
                   (p.taint_out ? " 1 " : " 0 "));
        AppendEscaped(p.type, &out);
        out.push_back(' ');
        AppendEscaped(p.name, &out);
        out.push_back('\n');
      }
      for (const std::string& req : d.requires_locks) {
        out.append("Q ");
        AppendEscaped(req, &out);
        out.push_back('\n');
      }
    }
    for (const CallStatement& s : f.call_statements) {
      out.append("S " + std::to_string(s.line) + " ");
      AppendEscaped(s.callee, &out);
      out.push_back('\n');
    }
    for (const TaintCallArg& t : f.taint_calls) {
      out.append("T " + std::to_string(t.line) + " " +
                 std::to_string(static_cast<int>(t.kind)) + " " +
                 std::to_string(t.arg_index) + " " +
                 std::to_string(static_cast<int>(t.origin)) + " " +
                 std::to_string(t.guard_param) + " " +
                 std::to_string(t.source_line) + " " +
                 std::to_string(t.param_mask) + " ");
      AppendEscaped(t.caller, &out);
      out.push_back(' ');
      AppendEscaped(t.caller_class, &out);
      out.push_back(' ');
      AppendEscaped(t.callee, &out);
      out.push_back(' ');
      AppendEscaped(t.qualifier, &out);
      out.push_back(' ');
      AppendEscaped(t.var, &out);
      out.push_back(' ');
      AppendEscaped(t.source, &out);
      out.push_back('\n');
    }
    for (const PendingTaintFinding& w : f.taint_pending) {
      out.append("W " + std::to_string(w.line) + " " +
                 std::to_string(w.guard_param) + " ");
      AppendEscaped(w.rule, &out);
      out.push_back(' ');
      AppendEscaped(w.guard_callee, &out);
      out.push_back(' ');
      AppendEscaped(w.message, &out);
      out.push_back('\n');
    }
    for (const Finding& g : f.findings) {
      out.append("G " + std::to_string(g.line) + " ");
      AppendEscaped(g.rule, &out);
      out.push_back(' ');
      AppendEscaped(g.message, &out);
      out.push_back('\n');
    }
    for (const auto& [line, rules] : f.allowances) {
      out.append("L " + std::to_string(line));
      for (const std::string& rule : rules) out.append(" " + rule);
      out.push_back('\n');
    }
    for (const std::string& cls : f.heavy_classes) {
      out.append("H ");
      AppendEscaped(cls, &out);
      out.push_back('\n');
    }
    out.append("E\n");
  }
  return out;
}

Result<std::vector<FileSummary>> DeserializeSummaries(
    const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  const std::string expected_header =
      std::string(kCacheMagic) + " " + std::to_string(AnalyzerCacheVersion());
  if (!std::getline(lines, line) || line != expected_header) {
    return Status::Corruption("cache written by a different analyzer");
  }
  std::vector<FileSummary> files;
  FileSummary* cur = nullptr;
  FunctionSummary* fn = nullptr;
  DeclInfo* decl = nullptr;
  int lineno = 1;
  auto bad = [&lineno](const std::string& why) {
    return Status::Corruption("cache line " + std::to_string(lineno) + ": " +
                              why);
  };
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "F") {
      std::string path, hash;
      if (!(fields >> path >> hash)) return bad("truncated F");
      files.emplace_back();
      cur = &files.back();
      fn = nullptr;
      decl = nullptr;
      ALICOCO_ASSIGN_OR_RETURN(cur->path, Unescape(path));
      try {
        cur->content_hash = std::stoull(hash);
      } catch (...) {
        return bad("bad hash");
      }
      continue;
    }
    if (cur == nullptr) return bad("record before F");
    if (tag == "E") {
      cur = nullptr;
      fn = nullptr;
      decl = nullptr;
    } else if (tag == "I") {
      int ln = 0, angled = 0;
      std::string path;
      if (!(fields >> ln >> angled >> path)) return bad("truncated I");
      IncludeSite inc{ln, angled != 0, ""};
      ALICOCO_ASSIGN_OR_RETURN(inc.path, Unescape(path));
      cur->includes.push_back(std::move(inc));
    } else if (tag == "M") {
      std::string cls, member;
      if (!(fields >> cls >> member)) return bad("truncated M");
      MutexMemberDecl m;
      ALICOCO_ASSIGN_OR_RETURN(m.class_name, Unescape(cls));
      ALICOCO_ASSIGN_OR_RETURN(m.member, Unescape(member));
      cur->mutexes.push_back(std::move(m));
    } else if (tag == "B") {
      std::string cls, member, mutex;
      if (!(fields >> cls >> member >> mutex)) return bad("truncated B");
      GuardedMemberDecl g;
      ALICOCO_ASSIGN_OR_RETURN(g.class_name, Unescape(cls));
      ALICOCO_ASSIGN_OR_RETURN(g.member, Unescape(member));
      ALICOCO_ASSIGN_OR_RETURN(g.mutex, Unescape(mutex));
      cur->guarded_members.push_back(std::move(g));
    } else if (tag == "U") {
      std::string name, cls;
      if (!(fields >> name >> cls)) return bad("truncated U");
      cur->functions.emplace_back();
      fn = &cur->functions.back();
      ALICOCO_ASSIGN_OR_RETURN(fn->name, Unescape(name));
      ALICOCO_ASSIGN_OR_RETURN(fn->class_name, Unescape(cls));
    } else if (tag == "A") {
      if (fn == nullptr) return bad("A before U");
      int ln = 0, plain = 0;
      std::string name, expr, held;
      if (!(fields >> ln >> plain >> name >> expr >> held)) {
        return bad("truncated A");
      }
      Acquisition a;
      a.line = ln;
      a.is_plain_member = plain != 0;
      ALICOCO_ASSIGN_OR_RETURN(a.name, Unescape(name));
      ALICOCO_ASSIGN_OR_RETURN(a.expr, Unescape(expr));
      ALICOCO_ASSIGN_OR_RETURN(a.held, ParseHeld(held));
      fn->acquisitions.push_back(std::move(a));
    } else if (tag == "C") {
      if (fn == nullptr) return bad("C before U");
      int ln = 0, kind = 0;
      std::string callee, qualifier, arg0, held;
      if (!(fields >> ln >> kind >> callee >> qualifier >> arg0 >> held)) {
        return bad("truncated C");
      }
      if (kind < 0 || kind > static_cast<int>(CallKind::kMember)) {
        return bad("bad call kind");
      }
      CallInfo c;
      c.line = ln;
      c.kind = static_cast<CallKind>(kind);
      ALICOCO_ASSIGN_OR_RETURN(c.callee, Unescape(callee));
      ALICOCO_ASSIGN_OR_RETURN(c.qualifier, Unescape(qualifier));
      ALICOCO_ASSIGN_OR_RETURN(c.arg0, Unescape(arg0));
      ALICOCO_ASSIGN_OR_RETURN(c.held, ParseHeld(held));
      fn->calls.push_back(std::move(c));
    } else if (tag == "R") {
      if (fn == nullptr) return bad("R before U");
      int ln = 0;
      std::string name, held;
      if (!(fields >> ln >> name >> held)) return bad("truncated R");
      MemberRef r;
      r.line = ln;
      ALICOCO_ASSIGN_OR_RETURN(r.name, Unescape(name));
      ALICOCO_ASSIGN_OR_RETURN(r.held, ParseHeld(held));
      fn->member_refs.push_back(std::move(r));
    } else if (tag == "V") {
      if (fn == nullptr) return bad("V before U");
      int ln = 0;
      size_t nargs = 0;
      std::string callee;
      if (!(fields >> ln >> callee >> nargs)) return bad("truncated V");
      // Plausibility cap: a V record with an absurd argument count is
      // corruption, not a request to loop that many times.
      if (nargs > 4096) return bad("implausible V arg count");
      ViewReturnCall v;
      v.line = ln;
      ALICOCO_ASSIGN_OR_RETURN(v.callee, Unescape(callee));
      for (size_t k = 0; k < nargs; ++k) {
        std::string owner;
        int is_temp = 0;
        if (!(fields >> owner >> is_temp)) return bad("truncated V arg");
        ViewArg a;
        ALICOCO_ASSIGN_OR_RETURN(a.owner, Unescape(owner));
        a.is_temp = is_temp != 0;
        v.args.push_back(std::move(a));
      }
      fn->view_returns.push_back(std::move(v));
    } else if (tag == "D") {
      int ln = 0, checked = 0, has_body = 0, returns_tainted = 0;
      std::string name, cls;
      if (!(fields >> ln >> checked >> has_body >> returns_tainted >> name >>
            cls)) {
        return bad("truncated D");
      }
      DeclInfo d;
      d.line = ln;
      d.checked = checked != 0;
      d.has_body = has_body != 0;
      d.returns_tainted = returns_tainted != 0;
      ALICOCO_ASSIGN_OR_RETURN(d.name, Unescape(name));
      ALICOCO_ASSIGN_OR_RETURN(d.class_name, Unescape(cls));
      cur->decls.push_back(std::move(d));
      decl = &cur->decls.back();
    } else if (tag == "P") {
      if (decl == nullptr) return bad("P before D");
      int by_value = 0, moved = 0, escapes = 0, sink_mask = 0, taint_out = 0;
      std::string type, name;
      if (!(fields >> by_value >> moved >> escapes >> sink_mask >> taint_out >>
            type >> name)) {
        return bad("truncated P");
      }
      if (sink_mask < 0 || sink_mask > 3) return bad("bad P sink mask");
      ParamInfo p;
      p.by_value = by_value != 0;
      p.moved = moved != 0;
      p.escapes_return = escapes != 0;
      p.taint_sink_mask = static_cast<uint8_t>(sink_mask);
      p.taint_out = taint_out != 0;
      ALICOCO_ASSIGN_OR_RETURN(p.type, Unescape(type));
      ALICOCO_ASSIGN_OR_RETURN(p.name, Unescape(name));
      decl->params.push_back(std::move(p));
    } else if (tag == "T") {
      int ln = 0, kind = 0, arg_index = 0, origin = 0, guard_param = 0,
          source_line = 0;
      uint32_t param_mask = 0;
      std::string caller, caller_class, callee, qualifier, var, source;
      if (!(fields >> ln >> kind >> arg_index >> origin >> guard_param >>
            source_line >> param_mask >> caller >> caller_class >> callee >>
            qualifier >> var >> source)) {
        return bad("truncated T");
      }
      if (kind < 0 || kind > static_cast<int>(CallKind::kMember)) {
        return bad("bad T call kind");
      }
      if (origin < 0 || origin > static_cast<int>(TaintOrigin::kCalleeReturn)) {
        return bad("bad T origin");
      }
      TaintCallArg t;
      t.line = ln;
      t.kind = static_cast<CallKind>(kind);
      t.arg_index = arg_index;
      t.origin = static_cast<TaintOrigin>(origin);
      t.guard_param = guard_param;
      t.source_line = source_line;
      t.param_mask = param_mask;
      ALICOCO_ASSIGN_OR_RETURN(t.caller, Unescape(caller));
      ALICOCO_ASSIGN_OR_RETURN(t.caller_class, Unescape(caller_class));
      ALICOCO_ASSIGN_OR_RETURN(t.callee, Unescape(callee));
      ALICOCO_ASSIGN_OR_RETURN(t.qualifier, Unescape(qualifier));
      ALICOCO_ASSIGN_OR_RETURN(t.var, Unescape(var));
      ALICOCO_ASSIGN_OR_RETURN(t.source, Unescape(source));
      cur->taint_calls.push_back(std::move(t));
    } else if (tag == "W") {
      int ln = 0, guard_param = 0;
      std::string rule, guard, message;
      if (!(fields >> ln >> guard_param >> rule >> guard >> message)) {
        return bad("truncated W");
      }
      PendingTaintFinding w;
      w.line = ln;
      w.guard_param = guard_param;
      ALICOCO_ASSIGN_OR_RETURN(w.rule, Unescape(rule));
      ALICOCO_ASSIGN_OR_RETURN(w.guard_callee, Unescape(guard));
      ALICOCO_ASSIGN_OR_RETURN(w.message, Unescape(message));
      cur->taint_pending.push_back(std::move(w));
    } else if (tag == "Q") {
      if (decl == nullptr) return bad("Q before D");
      std::string req;
      if (!(fields >> req)) return bad("truncated Q");
      std::string unescaped;
      ALICOCO_ASSIGN_OR_RETURN(unescaped, Unescape(req));
      decl->requires_locks.push_back(std::move(unescaped));
    } else if (tag == "H") {
      std::string cls;
      if (!(fields >> cls)) return bad("truncated H");
      std::string unescaped;
      ALICOCO_ASSIGN_OR_RETURN(unescaped, Unescape(cls));
      cur->heavy_classes.push_back(std::move(unescaped));
    } else if (tag == "S") {
      int ln = 0;
      std::string callee;
      if (!(fields >> ln >> callee)) return bad("truncated S");
      CallStatement s;
      s.line = ln;
      ALICOCO_ASSIGN_OR_RETURN(s.callee, Unescape(callee));
      cur->call_statements.push_back(std::move(s));
    } else if (tag == "G") {
      int ln = 0;
      std::string rule, message;
      if (!(fields >> ln >> rule >> message)) return bad("truncated G");
      Finding f;
      f.file = cur->path;
      f.line = ln;
      ALICOCO_ASSIGN_OR_RETURN(f.rule, Unescape(rule));
      ALICOCO_ASSIGN_OR_RETURN(f.message, Unescape(message));
      cur->findings.push_back(std::move(f));
    } else if (tag == "L") {
      int ln = 0;
      if (!(fields >> ln)) return bad("truncated L");
      std::string rule;
      while (fields >> rule) cur->allowances[ln].insert(rule);
    } else {
      return bad("unknown tag '" + tag + "'");
    }
  }
  if (cur != nullptr) return bad("truncated cache (missing E)");
  return files;
}

}  // namespace alicoco::lint
