// alicoco_lint CLI: the first-party static-analysis gate.
//
//   alicoco_lint --root <repo-root> [--suppressions FILE | --no-suppressions]
//   alicoco_lint --root <repo-root> <repo-relative-file>...
//   alicoco_lint --list-rules
//
// Findings go to stdout as stable `file:line:rule-id: message` lines;
// exit status is 1 iff any finding survives suppression. With no explicit
// file arguments the whole first-party tree is scanned.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/analyzer.h"

namespace {

int Fail(const alicoco::Status& status) {
  std::cerr << "alicoco_lint: " << status.ToString() << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string suppressions_path;
  bool use_suppressions = true;
  bool list_rules = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--suppressions" && i + 1 < argc) {
      suppressions_path = argv[++i];
    } else if (arg == "--no-suppressions") {
      use_suppressions = false;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: alicoco_lint [--root DIR] [--suppressions FILE] "
                   "[--no-suppressions] [--list-rules] [file...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "alicoco_lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : alicoco::lint::RuleRegistry()) {
      std::cout << rule->id() << ": " << rule->rationale() << "\n";
    }
    return 0;
  }

  alicoco::lint::Suppressions suppressions;
  if (use_suppressions) {
    if (suppressions_path.empty()) {
      std::string fallback = root + "/tools/lint/suppressions.txt";
      if (std::filesystem::exists(fallback)) suppressions_path = fallback;
    }
    if (!suppressions_path.empty()) {
      auto loaded = alicoco::lint::Suppressions::LoadFile(suppressions_path);
      if (!loaded.ok()) return Fail(loaded.status());
      suppressions = std::move(*loaded);
    }
  }

  std::vector<alicoco::lint::Finding> findings;
  if (files.empty()) {
    auto result = alicoco::lint::AnalyzeTree(root, &suppressions);
    if (!result.ok()) return Fail(result.status());
    findings = std::move(*result);
  } else {
    for (const std::string& rel : files) {
      std::ifstream in(root + "/" + rel, std::ios::binary);
      if (!in) {
        return Fail(alicoco::Status::IOError("cannot open: " + rel));
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      auto file_findings =
          alicoco::lint::AnalyzeSource(rel, buf.str(), &suppressions);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }

  for (const auto& finding : findings) {
    std::cout << alicoco::lint::FormatFinding(finding) << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "alicoco_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  std::cerr << "alicoco_lint: clean\n";
  return 0;
}
