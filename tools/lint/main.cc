// alicoco_lint CLI: the first-party static-analysis gate.
//
//   alicoco_lint --root <repo-root> [--suppressions FILE | --no-suppressions]
//   alicoco_lint --root <repo-root> <repo-relative-file>...
//   alicoco_lint --root <repo-root> --project src [--sarif OUT] [--cache F]
//                [--changed-only] [--layers FILE] [--stats]
//   alicoco_lint --root <repo-root> --project src --self-bench OUT
//                [--bench-baseline FILE] [--max-regress R]
//   alicoco_lint --list-rules
//   alicoco_lint --explain <rule-id>
//
// Findings go to stdout as stable `file:line:rule-id: message` lines;
// exit status is 1 iff any finding survives suppression. With no explicit
// file arguments the whole first-party tree is scanned per-file.
//
// `--project DIR` switches to whole-program mode: the subtree is indexed
// once and the cross-file passes (include-cycle, layer-violation,
// lock-order-cycle, discarded-result, the interprocedural tier:
// guarded-by-violation, blocking-under-lock, view-escapes-call, and the
// taint tier: tainted-alloc-size, unchecked-mul-overflow, tainted-index)
// run
// alongside every per-file rule. `--cache` makes repeat runs incremental;
// `--changed-only` additionally restricts the report to files the cache
// saw change. `--sarif` writes the findings as a SARIF 2.1.0 document for
// CI upload.
//
// `--explain <rule-id>` prints the rule's rationale plus a minimal
// bad/good example pair, from the same registries the SARIF writer and
// --list-rules use. `--self-bench OUT` runs the analyzer over the project
// twice — cold (cache deleted) then warm — and writes the simulated cost
// figures as BENCH JSON; with `--bench-baseline`, warm cost regressions
// beyond `--max-regress` (default 0.25) fail the run.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/analyzer.h"
#include "tools/lint/passes/passes.h"
#include "tools/lint/sarif.h"

namespace {

int Fail(const alicoco::Status& status) {
  std::cerr << "alicoco_lint: " << status.ToString() << "\n";
  return 2;
}

/// Indents every line of a (possibly multi-line) example by four spaces.
void PrintIndented(std::string_view text) {
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::cout << "    " << text.substr(start, end - start) << "\n";
    start = end + 1;
  }
}

/// `--explain <rule>`: rationale + example pair from the shared
/// registries. Returns 0 when found, 2 for an unknown id.
int ExplainRule(const std::string& id) {
  std::string_view rationale, bad, good;
  bool found = false;
  for (const auto& rule : alicoco::lint::RuleRegistry()) {
    if (rule->id() == id) {
      rationale = rule->rationale();
      bad = rule->example_bad();
      good = rule->example_good();
      found = true;
    }
  }
  for (const auto& pass : alicoco::lint::PassRegistry()) {
    if (pass.id == id) {
      rationale = pass.rationale;
      bad = pass.bad_example;
      good = pass.good_example;
      found = true;
    }
  }
  if (!found) {
    std::cerr << "alicoco_lint: unknown rule '" << id
              << "' (see --list-rules)\n";
    return 2;
  }
  std::cout << id << ": " << rationale << "\n";
  if (!bad.empty()) {
    std::cout << "\n  bad:\n";
    PrintIndented(bad);
  }
  if (!good.empty()) {
    std::cout << "\n  good:\n";
    PrintIndented(good);
  }
  return 0;
}

/// One cold-vs-warm benchmark figure set for BENCH_lint.json.
struct BenchFigures {
  size_t files = 0;
  uint64_t bytes_lexed = 0;
  uint64_t cold_cost_us = 0;
  uint64_t warm_cost_us = 0;
  uint64_t interproc_cost_us = 0;
  uint64_t taint_cost_us = 0;
};

std::string WriteBenchJson(const BenchFigures& b) {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"alicoco.bench_lint.v1\",\n"
      << "  \"files\": " << b.files << ",\n"
      << "  \"bytes_lexed\": " << b.bytes_lexed << ",\n"
      << "  \"cold_cost_us\": " << b.cold_cost_us << ",\n"
      << "  \"warm_cost_us\": " << b.warm_cost_us << ",\n"
      << "  \"interproc_cost_us\": " << b.interproc_cost_us << ",\n"
      << "  \"taint_cost_us\": " << b.taint_cost_us << "\n"
      << "}\n";
  return out.str();
}

/// Pulls one `"key": <number>` out of a baseline BENCH_lint.json. The
/// schema is first-party and flat, so a line scan is enough.
bool ReadJsonNumber(const std::string& text, const std::string& key,
                    uint64_t* out) {
  size_t pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos);
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < text.size() && text[pos] == ' ') ++pos;
  uint64_t value = 0;
  bool any = false;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(text[pos] - '0');
    ++pos;
    any = true;
  }
  if (!any) return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string suppressions_path;
  std::string project_dir;
  std::string sarif_path;
  std::string cache_path;
  std::string layers_path;
  std::string explain_rule;
  std::string self_bench_path;
  std::string bench_baseline_path;
  double max_regress = 0.25;
  bool use_suppressions = true;
  bool list_rules = false;
  bool changed_only = false;
  bool print_stats = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--suppressions" && i + 1 < argc) {
      suppressions_path = argv[++i];
    } else if (arg == "--no-suppressions") {
      use_suppressions = false;
    } else if (arg == "--project" && i + 1 < argc) {
      project_dir = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
    } else if (arg == "--explain" && i + 1 < argc) {
      explain_rule = argv[++i];
    } else if (arg == "--self-bench" && i + 1 < argc) {
      self_bench_path = argv[++i];
    } else if (arg == "--bench-baseline" && i + 1 < argc) {
      bench_baseline_path = argv[++i];
    } else if (arg == "--max-regress" && i + 1 < argc) {
      max_regress = std::atof(argv[++i]);
    } else if (arg == "--changed-only") {
      changed_only = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: alicoco_lint [--root DIR] [--suppressions FILE] "
                   "[--no-suppressions] [--list-rules]\n"
                   "                    [--project DIR] [--sarif OUT] "
                   "[--cache FILE] [--changed-only]\n"
                   "                    [--layers FILE] [--stats] "
                   "[--explain RULE] [file...]\n"
                   "                    [--self-bench OUT "
                   "[--bench-baseline FILE] [--max-regress R]]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "alicoco_lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (!explain_rule.empty()) return ExplainRule(explain_rule);

  if (list_rules) {
    for (const auto& rule : alicoco::lint::RuleRegistry()) {
      std::cout << rule->id() << ": " << rule->rationale() << "\n";
    }
    for (const auto& pass : alicoco::lint::PassRegistry()) {
      std::cout << pass.id << ": " << pass.rationale << "\n";
    }
    return 0;
  }

  if (project_dir.empty() &&
      (!sarif_path.empty() || !cache_path.empty() || changed_only ||
       !layers_path.empty() || !self_bench_path.empty())) {
    std::cerr << "alicoco_lint: --sarif/--cache/--changed-only/--layers/"
                 "--self-bench require --project\n";
    return 2;
  }

  alicoco::lint::Suppressions suppressions;
  if (use_suppressions) {
    if (suppressions_path.empty()) {
      std::string fallback = root + "/tools/lint/suppressions.txt";
      if (std::filesystem::exists(fallback)) suppressions_path = fallback;
    }
    if (!suppressions_path.empty()) {
      auto loaded = alicoco::lint::Suppressions::LoadFile(suppressions_path);
      if (!loaded.ok()) return Fail(loaded.status());
      suppressions = std::move(*loaded);
    }
  }

  if (!self_bench_path.empty()) {
    // Self-benchmark: analyze the project cold (cache removed), then warm
    // (every summary served from the cache just written). Costs are
    // simulated units from the deterministic clock, so the figures are
    // machine-independent and byte-stable for the regression gate.
    const std::string bench_cache = self_bench_path + ".cache";
    std::error_code ec;
    std::filesystem::remove(bench_cache, ec);

    alicoco::lint::ProjectOptions options;
    options.project_dir = project_dir;
    options.layers_path = layers_path;
    options.cache_path = bench_cache;
    options.suppressions = &suppressions;

    BenchFigures figures;
    alicoco::lint::SimulatedClock cold_clock;
    options.cost_clock = &cold_clock;
    auto cold = alicoco::lint::AnalyzeProject(root, options);
    if (!cold.ok()) return Fail(cold.status());
    figures.files = cold->stats.files;
    figures.bytes_lexed = cold->stats.bytes_lexed;
    figures.cold_cost_us = cold_clock.NowUs();
    figures.interproc_cost_us = cold->interproc.cost_us;
    figures.taint_cost_us = cold->taint.cost_us;

    alicoco::lint::SimulatedClock warm_clock;
    options.cost_clock = &warm_clock;
    auto warm = alicoco::lint::AnalyzeProject(root, options);
    if (!warm.ok()) return Fail(warm.status());
    figures.warm_cost_us = warm_clock.NowUs();
    std::filesystem::remove(bench_cache, ec);

    std::ofstream out(self_bench_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Fail(alicoco::Status::IOError("cannot write bench JSON: " +
                                           self_bench_path));
    }
    out << WriteBenchJson(figures);
    std::cerr << "alicoco_lint: self-bench " << figures.files << " files, "
              << "cold " << figures.cold_cost_us << "us, warm "
              << figures.warm_cost_us << "us (interproc "
              << figures.interproc_cost_us << "us, taint "
              << figures.taint_cost_us << "us)\n";

    if (!bench_baseline_path.empty()) {
      std::ifstream baseline_in(bench_baseline_path, std::ios::binary);
      if (!baseline_in) {
        return Fail(alicoco::Status::IOError("cannot read bench baseline: " +
                                             bench_baseline_path));
      }
      std::ostringstream buf;
      buf << baseline_in.rdbuf();
      uint64_t base_cold = 0, base_warm = 0;
      if (!ReadJsonNumber(buf.str(), "cold_cost_us", &base_cold) ||
          !ReadJsonNumber(buf.str(), "warm_cost_us", &base_warm)) {
        return Fail(alicoco::Status::InvalidArgument(
            "bench baseline missing cold_cost_us/warm_cost_us: " +
            bench_baseline_path));
      }
      const auto limit = [&](uint64_t base) {
        return static_cast<uint64_t>(static_cast<double>(base) *
                                     (1.0 + max_regress));
      };
      bool regressed = false;
      if (base_cold != 0 && figures.cold_cost_us > limit(base_cold)) {
        std::cerr << "alicoco_lint: cold cost regressed: "
                  << figures.cold_cost_us << "us > " << base_cold
                  << "us * " << (1.0 + max_regress) << "\n";
        regressed = true;
      }
      if (base_warm != 0 && figures.warm_cost_us > limit(base_warm)) {
        std::cerr << "alicoco_lint: warm cost regressed: "
                  << figures.warm_cost_us << "us > " << base_warm
                  << "us * " << (1.0 + max_regress) << "\n";
        regressed = true;
      }
      if (regressed) return 1;
    }
    return 0;
  }

  std::vector<alicoco::lint::Finding> findings;
  if (!project_dir.empty()) {
    alicoco::lint::SimulatedClock cost_clock;
    alicoco::lint::ProjectOptions options;
    options.project_dir = project_dir;
    options.layers_path = layers_path;
    options.cache_path = cache_path;
    options.changed_only = changed_only;
    options.cost_clock = &cost_clock;
    options.suppressions = &suppressions;
    auto report = alicoco::lint::AnalyzeProject(root, options);
    if (!report.ok()) return Fail(report.status());
    findings = std::move(report->findings);
    if (!sarif_path.empty()) {
      std::ofstream out(sarif_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        return Fail(
            alicoco::Status::IOError("cannot write SARIF: " + sarif_path));
      }
      out << alicoco::lint::WriteSarif(findings);
    }
    if (print_stats) {
      const alicoco::lint::IndexStats& stats = report->stats;
      std::cerr << "alicoco_lint: " << stats.files << " files, "
                << stats.lexed << " summarized, " << stats.cache_hits
                << " cache hits, " << stats.bytes_lexed << " bytes lexed, "
                << stats.cost_us << " cost units\n";
      const alicoco::lint::InterprocStats& ip = report->interproc;
      std::cerr << "alicoco_lint: interproc " << ip.functions
                << " functions, " << ip.sccs << " sccs, " << ip.edges
                << " edges, " << ip.may_block << " may-block, " << ip.cost_us
                << " cost units\n";
      const alicoco::lint::TaintStats& ts = report->taint;
      std::cerr << "alicoco_lint: taint " << ts.call_args << " call args, "
                << ts.pending << " pending, " << ts.sink_params
                << " sink params, " << ts.cost_us << " cost units\n";
    }
  } else if (files.empty()) {
    auto result = alicoco::lint::AnalyzeTree(root, &suppressions);
    if (!result.ok()) return Fail(result.status());
    findings = std::move(*result);
  } else {
    for (const std::string& rel : files) {
      std::ifstream in(root + "/" + rel, std::ios::binary);
      if (!in) {
        return Fail(alicoco::Status::IOError("cannot open: " + rel));
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      auto file_findings =
          alicoco::lint::AnalyzeSource(rel, buf.str(), &suppressions);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }

  for (const auto& finding : findings) {
    std::cout << alicoco::lint::FormatFinding(finding) << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "alicoco_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  std::cerr << "alicoco_lint: clean\n";
  return 0;
}
