// alicoco_lint CLI: the first-party static-analysis gate.
//
//   alicoco_lint --root <repo-root> [--suppressions FILE | --no-suppressions]
//   alicoco_lint --root <repo-root> <repo-relative-file>...
//   alicoco_lint --root <repo-root> --project src [--sarif OUT] [--cache F]
//                [--changed-only] [--layers FILE] [--stats]
//   alicoco_lint --list-rules
//
// Findings go to stdout as stable `file:line:rule-id: message` lines;
// exit status is 1 iff any finding survives suppression. With no explicit
// file arguments the whole first-party tree is scanned per-file.
//
// `--project DIR` switches to whole-program mode: the subtree is indexed
// once and the cross-file passes (include-cycle, layer-violation,
// lock-order-cycle, discarded-result) run alongside every per-file rule.
// `--cache` makes repeat runs incremental; `--changed-only` additionally
// restricts the report to files the cache saw change. `--sarif` writes
// the findings as a SARIF 2.1.0 document for CI upload.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/analyzer.h"
#include "tools/lint/passes/passes.h"
#include "tools/lint/sarif.h"

namespace {

int Fail(const alicoco::Status& status) {
  std::cerr << "alicoco_lint: " << status.ToString() << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string suppressions_path;
  std::string project_dir;
  std::string sarif_path;
  std::string cache_path;
  std::string layers_path;
  bool use_suppressions = true;
  bool list_rules = false;
  bool changed_only = false;
  bool print_stats = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--suppressions" && i + 1 < argc) {
      suppressions_path = argv[++i];
    } else if (arg == "--no-suppressions") {
      use_suppressions = false;
    } else if (arg == "--project" && i + 1 < argc) {
      project_dir = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
    } else if (arg == "--changed-only") {
      changed_only = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: alicoco_lint [--root DIR] [--suppressions FILE] "
                   "[--no-suppressions] [--list-rules]\n"
                   "                    [--project DIR] [--sarif OUT] "
                   "[--cache FILE] [--changed-only]\n"
                   "                    [--layers FILE] [--stats] [file...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "alicoco_lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : alicoco::lint::RuleRegistry()) {
      std::cout << rule->id() << ": " << rule->rationale() << "\n";
    }
    for (const auto& pass : alicoco::lint::PassRegistry()) {
      std::cout << pass.id << ": " << pass.rationale << "\n";
    }
    return 0;
  }

  if (project_dir.empty() &&
      (!sarif_path.empty() || !cache_path.empty() || changed_only ||
       !layers_path.empty())) {
    std::cerr << "alicoco_lint: --sarif/--cache/--changed-only/--layers "
                 "require --project\n";
    return 2;
  }

  alicoco::lint::Suppressions suppressions;
  if (use_suppressions) {
    if (suppressions_path.empty()) {
      std::string fallback = root + "/tools/lint/suppressions.txt";
      if (std::filesystem::exists(fallback)) suppressions_path = fallback;
    }
    if (!suppressions_path.empty()) {
      auto loaded = alicoco::lint::Suppressions::LoadFile(suppressions_path);
      if (!loaded.ok()) return Fail(loaded.status());
      suppressions = std::move(*loaded);
    }
  }

  std::vector<alicoco::lint::Finding> findings;
  if (!project_dir.empty()) {
    alicoco::lint::SimulatedClock cost_clock;
    alicoco::lint::ProjectOptions options;
    options.project_dir = project_dir;
    options.layers_path = layers_path;
    options.cache_path = cache_path;
    options.changed_only = changed_only;
    options.cost_clock = &cost_clock;
    options.suppressions = &suppressions;
    auto report = alicoco::lint::AnalyzeProject(root, options);
    if (!report.ok()) return Fail(report.status());
    findings = std::move(report->findings);
    if (!sarif_path.empty()) {
      std::ofstream out(sarif_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        return Fail(
            alicoco::Status::IOError("cannot write SARIF: " + sarif_path));
      }
      out << alicoco::lint::WriteSarif(findings);
    }
    if (print_stats) {
      const alicoco::lint::IndexStats& stats = report->stats;
      std::cerr << "alicoco_lint: " << stats.files << " files, "
                << stats.lexed << " summarized, " << stats.cache_hits
                << " cache hits, " << stats.bytes_lexed << " bytes lexed, "
                << stats.cost_us << " cost units\n";
    }
  } else if (files.empty()) {
    auto result = alicoco::lint::AnalyzeTree(root, &suppressions);
    if (!result.ok()) return Fail(result.status());
    findings = std::move(*result);
  } else {
    for (const std::string& rel : files) {
      std::ifstream in(root + "/" + rel, std::ios::binary);
      if (!in) {
        return Fail(alicoco::Status::IOError("cannot open: " + rel));
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      auto file_findings =
          alicoco::lint::AnalyzeSource(rel, buf.str(), &suppressions);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }

  for (const auto& finding : findings) {
    std::cout << alicoco::lint::FormatFinding(finding) << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "alicoco_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  std::cerr << "alicoco_lint: clean\n";
  return 0;
}
