#include "tools/lint/sarif.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <string_view>
#include <utility>

#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      case '\r': out->append("\\r"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — only what ParseSarif needs.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    ALICOCO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::Corruption("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Status Fail(const std::string& why) const {
    return Status::Corruption("SARIF JSON byte " + std::to_string(pos_) +
                              ": " + why);
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    // A SARIF document is ~6 levels deep; a crafted file of nothing but
    // '[' must hit a corruption error, not exhaust the stack.
    if (depth_ >= kMaxDepth) return Fail("nesting too deep");
    char c = text_[pos_];
    if (c == '{' || c == '[') {
      ++depth_;
      Result<JsonValue> out = c == '{' ? ParseObject() : ParseArray();
      --depth_;
      return out;
    }
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f' || c == 'n') return ParseKeyword();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      ALICOCO_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("want ':'");
      ++pos_;
      ALICOCO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.object.emplace_back(std::move(key.str), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        SkipSpace();
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return out;
      }
      return Fail("want ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      ALICOCO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return out;
      }
      return Fail("want ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("want '\"'");
    ++pos_;
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.str.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.str.push_back('"'); break;
        case '\\': out.str.push_back('\\'); break;
        case '/': out.str.push_back('/'); break;
        case 'n': out.str.push_back('\n'); break;
        case 't': out.str.push_back('\t'); break;
        case 'r': out.str.push_back('\r'); break;
        case 'b': out.str.push_back('\b'); break;
        case 'f': out.str.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // The writer only emits \u for C0 control bytes.
          out.str.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseKeyword() {
    JsonValue out;
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return out;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return out;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return out;
    }
    return Fail("unknown keyword");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("want a value");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    try {
      out.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return Fail("bad number");
    }
    return out;
  }

  static constexpr int kMaxDepth = 64;

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string WriteSarif(const std::vector<Finding>& findings) {
  std::string out;
  out.append("{\n");
  out.append(
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n");
  out.append("  \"version\": \"2.1.0\",\n");
  out.append("  \"runs\": [\n    {\n");
  out.append("      \"tool\": {\n        \"driver\": {\n");
  out.append("          \"name\": \"alicoco_lint\",\n");
  out.append("          \"rules\": [\n");

  bool first = true;
  auto emit_rule = [&out, &first](std::string_view id,
                                  std::string_view rationale) {
    if (!first) out.append(",\n");
    first = false;
    out.append("            {\"id\": ");
    AppendJsonString(std::string(id), &out);
    out.append(", \"shortDescription\": {\"text\": ");
    AppendJsonString(std::string(rationale), &out);
    out.append("}}");
  };
  for (const auto& rule : RuleRegistry()) {
    emit_rule(rule->id(), rule->rationale());
  }
  for (const PassInfo& pass : PassRegistry()) {
    emit_rule(pass.id, pass.rationale);
  }
  out.append("\n          ]\n        }\n      },\n");

  out.append("      \"results\": [");
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("        {\n          \"ruleId\": ");
    AppendJsonString(f.rule, &out);
    out.append(",\n          \"level\": \"warning\",\n");
    out.append("          \"message\": {\"text\": ");
    AppendJsonString(f.message, &out);
    out.append("},\n          \"locations\": [\n");
    out.append("            {\"physicalLocation\": {");
    out.append("\"artifactLocation\": {\"uri\": ");
    AppendJsonString(f.file, &out);
    out.append("}, \"region\": {\"startLine\": ");
    out.append(std::to_string(f.line < 1 ? 1 : f.line));
    out.append("}}}\n          ]\n        }");
  }
  out.append(findings.empty() ? "]\n" : "\n      ]\n");
  out.append("    }\n  ]\n}\n");
  return out;
}

Result<std::vector<Finding>> ParseSarif(const std::string& text) {
  ALICOCO_ASSIGN_OR_RETURN(JsonValue root, JsonReader(text).Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::Corruption("SARIF root is not an object");
  }
  const JsonValue* version = root.Find("version");
  if (version == nullptr || version->str != "2.1.0") {
    return Status::Corruption("missing or unsupported SARIF version");
  }
  const JsonValue* runs = root.Find("runs");
  if (runs == nullptr || runs->kind != JsonValue::Kind::kArray ||
      runs->array.empty()) {
    return Status::Corruption("SARIF document has no runs");
  }
  const JsonValue& run = runs->array[0];
  const JsonValue* tool = run.Find("tool");
  if (tool == nullptr || tool->Find("driver") == nullptr) {
    return Status::Corruption("SARIF run has no tool.driver");
  }
  const JsonValue* results = run.Find("results");
  if (results == nullptr || results->kind != JsonValue::Kind::kArray) {
    return Status::Corruption("SARIF run has no results array");
  }

  std::vector<Finding> findings;
  for (const JsonValue& result : results->array) {
    Finding f;
    const JsonValue* rule_id = result.Find("ruleId");
    const JsonValue* message = result.Find("message");
    if (rule_id == nullptr || message == nullptr ||
        message->Find("text") == nullptr) {
      return Status::Corruption("SARIF result missing ruleId/message.text");
    }
    f.rule = rule_id->str;
    f.message = message->Find("text")->str;
    const JsonValue* locations = result.Find("locations");
    if (locations == nullptr || locations->array.empty()) {
      return Status::Corruption("SARIF result has no locations");
    }
    const JsonValue* physical = locations->array[0].Find("physicalLocation");
    if (physical == nullptr) {
      return Status::Corruption("SARIF location has no physicalLocation");
    }
    const JsonValue* artifact = physical->Find("artifactLocation");
    const JsonValue* region = physical->Find("region");
    if (artifact == nullptr || artifact->Find("uri") == nullptr ||
        region == nullptr || region->Find("startLine") == nullptr) {
      return Status::Corruption("SARIF physicalLocation incomplete");
    }
    f.file = artifact->Find("uri")->str;
    f.line = static_cast<int>(region->Find("startLine")->number);
    findings.push_back(std::move(f));
  }
  return findings;
}

}  // namespace alicoco::lint
