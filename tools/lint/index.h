// ProjectIndex: the whole-program layer under alicoco_lint.
//
// A single deterministic walk lexes every first-party file once and boils
// it down to a FileSummary — include edges, mutex members, per-function
// lock acquisitions and calls, checked-return declarations, bare
// statement-expression call sites, per-file rule findings, and inline
// `lint:allow` lines. The cross-file passes (tools/lint/passes/) consume
// summaries only, never tokens, which is what makes the content-hash
// cache sound: a warm run loads summaries for unchanged files and skips
// the lexer entirely.
//
// Nothing here reads a wall clock. Build cost is charged to an injectable
// LintClock (summarizing a file costs its byte count, a cache hit costs a
// small flat amount), so tests can assert the cold/warm speedup without
// timing flake, and the determinism gate stays intact.

#ifndef ALICOCO_TOOLS_LINT_INDEX_H_
#define ALICOCO_TOOLS_LINT_INDEX_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "tools/lint/rules.h"

namespace alicoco::lint {

/// One #include directive.
struct IncludeSite {
  int line = 0;
  bool angled = false;
  std::string path;  ///< as written between the delimiters
};

/// A mutex-typed member (or one named by ALICOCO_GUARDED_BY), keyed by the
/// class that declares it. The lock-order pass unions these across files
/// so a .cc can resolve members its header declared.
struct MutexMemberDecl {
  std::string class_name;
  std::string member;
};

/// A data member annotated ALICOCO_GUARDED_BY: `member` of `class_name`
/// must only be touched while `mutex` is held. The guarded-by-violation
/// pass unions these across files, like MutexMemberDecl.
struct GuardedMemberDecl {
  std::string class_name;
  std::string member;
  std::string mutex;  ///< last identifier of the annotation argument
};

/// One lock acquisition inside a function body: `MutexLock l(expr);`.
struct Acquisition {
  int line = 0;
  /// Last identifier of the lock expression (`mu_`).
  std::string name;
  /// True when the expression is a single identifier — resolvable against
  /// the enclosing class's mutex members. Otherwise `expr` is the verbatim
  /// expression and stands for itself.
  bool is_plain_member = true;
  std::string expr;
  /// Indices (into the function's `acquisitions`) of locks already held
  /// when this one is taken.
  std::vector<int> held;
};

/// How a call names its target — the lock-order pass resolves each shape
/// differently to keep unqualified-name collisions (a project `size()`
/// versus `std::vector::size()`) from fabricating graph edges.
enum class CallKind {
  kPlain,      ///< `F(...)` — free function or same-class method
  kThis,       ///< `this->F(...)`
  kQualified,  ///< `Q::F(...)` — `qualifier` holds Q
  kMember,     ///< `obj.F(...)` / `obj->F(...)` — receiver type unknown
};

/// A call made inside a function body, with the locks held at the call.
struct CallInfo {
  int line = 0;
  std::string callee;  ///< unqualified method/function name
  CallKind kind = CallKind::kPlain;
  std::string qualifier;  ///< class/namespace before ::, kQualified only
  /// Last identifier of the first argument ("" when no arguments). Lets
  /// the blocking-under-lock pass recognize the sanctioned condition-wait
  /// idiom `cv_.Wait(mu_)` — the waited-on lock is named right there.
  std::string arg0;
  std::vector<int> held;
};

/// A read or write of a member field (`items_`, `this->items_`) inside a
/// function body, with the locks held lexically at the access. Only
/// trailing-underscore identifiers are collected — that is this
/// codebase's member naming convention, and it is what GUARDED_BY
/// annotations attach to.
struct MemberRef {
  int line = 0;
  std::string name;
  std::vector<int> held;
};

/// One argument of a view-returning call site, as the view-escapes-call
/// pass needs it: either the name of a local/by-value owner, or a marker
/// that the argument is a temporary. Position matters — args align with
/// the callee's parameters.
struct ViewArg {
  std::string owner;    ///< local owner / by-value owner param, or ""
  bool is_temp = false;
};

/// `return Callee(args...);` inside a view- or reference-returning
/// function. If one of Callee's escaping parameters receives a local
/// owner or a temporary, the returned view dangles. Only sites with at
/// least one owner/temp argument are recorded.
struct ViewReturnCall {
  int line = 0;
  std::string callee;
  std::vector<ViewArg> args;
};

/// One parameter of a function declaration, as the param-by-value-heavy
/// pass needs it. `type` is the normalized type name with qualifiers and
/// template arguments stripped ("std::string", "ConceptNode"); `by_value`
/// is false for references, pointers, and rvalue references.
struct ParamInfo {
  std::string type;
  std::string name;
  bool by_value = false;
  /// Definition sites only: the body contains `std::move(<name>)`, which
  /// sanctions the by-value sink pattern.
  bool moved = false;
  /// Definition sites of view/reference-returning functions only: this
  /// parameter is named in a return expression, so the returned view may
  /// alias it. The view-escapes-call pass propagates this across calls.
  bool escapes_return = false;
  /// Definition sites only: untrusted-value sinks this parameter reaches
  /// uncapped inside the body — a bitmask of kTaintSinkAlloc /
  /// kTaintSinkIndex. The cross-file taint pass composes these with
  /// tainted arguments at call sites.
  uint8_t taint_sink_mask = 0;
  /// Definition sites only: the body writes a source-derived, uncapped
  /// value through this pointer/reference parameter (the `ReadU32(f, &x)`
  /// out-param shape). Callers' taint from this parameter is real.
  bool taint_out = false;
};

/// taint_sink_mask bits: the value is used as an allocation / IO-length
/// size, or as a container index / loop bound.
inline constexpr uint8_t kTaintSinkAlloc = 1;
inline constexpr uint8_t kTaintSinkIndex = 2;

/// A function declaration or definition seen at class or namespace scope.
struct DeclInfo {
  int line = 0;
  std::string name;
  std::string class_name;  ///< "" for free functions
  /// Return value must not be ignored: [[nodiscard]], or a Status/Result
  /// return, or a bool-returning Load/Save/Parse/Read/Write-style API.
  bool checked = false;
  /// This declaration carries a body (it is the definition).
  bool has_body = false;
  std::vector<ParamInfo> params;
  /// Locks named by an ALICOCO_REQUIRES annotation on this declaration —
  /// the caller-must-hold contract the guarded-by pass honors.
  std::vector<std::string> requires_locks;
  /// Definition sites only: a return expression carries a source-derived,
  /// uncapped value, so `x = ThisFn(...)` taints x in the caller.
  bool returns_tainted = false;
};

/// A statement that consists of nothing but a call — the shape that
/// discards the callee's return value.
struct CallStatement {
  int line = 0;
  std::string callee;
};

/// Where a suspect value's taint came from. Builtin sources (fread, recv,
/// std::sto*) taint unconditionally; a Read*/Parse*-named project call
/// taints only if its definition really writes untrusted data — a claim
/// the cross-file taint pass checks against the callee's summary before
/// believing it.
enum class TaintOrigin {
  kNone = 0,          ///< not tainted; recorded for its param_mask only
  kBuiltin = 1,       ///< direct read of program input
  kCalleeOut = 2,     ///< out-param of a Read*/Parse*-named call
  kCalleeReturn = 3,  ///< return value of a Read*/Parse*-named call
};

/// A call site passing a suspect integer argument (tainted, or flowing
/// from the caller's own parameters) to a project function. The
/// cross-file taint pass joins these against the callee's per-parameter
/// taint_sink_mask to report flows that cross function boundaries.
struct TaintCallArg {
  int line = 0;
  std::string caller;
  std::string caller_class;  ///< "" for free functions
  std::string callee;        ///< unqualified callee name
  CallKind kind = CallKind::kPlain;
  std::string qualifier;  ///< class/namespace before ::, kQualified only
  int arg_index = 0;
  std::string var;  ///< the argument, a single identifier
  TaintOrigin origin = TaintOrigin::kNone;
  std::string source;   ///< builtin source name, or the guard callee
  int source_line = 0;  ///< line the taint entered
  int guard_param = -1;  ///< kCalleeOut: out-param index of the guard call
  uint32_t param_mask = 0;  ///< caller params feeding the arg, uncapped
};

/// A local sink hit whose only taint evidence is a Read*/Parse*-named
/// call. Held in the summary until the cross-file pass confirms the named
/// callee really produces untrusted data (taint_out / returns_tainted on
/// its definition), so a reader that caps internally silences every
/// caller without per-site edits.
struct PendingTaintFinding {
  int line = 0;
  std::string rule;
  std::string message;
  std::string guard_callee;
  int guard_param = -1;  ///< out-param index; -1 = return value
};

struct FunctionSummary {
  std::string name;
  std::string class_name;  ///< "" for free functions
  std::vector<Acquisition> acquisitions;
  std::vector<CallInfo> calls;
  std::vector<MemberRef> member_refs;
  std::vector<ViewReturnCall> view_returns;
};

/// Everything the cross-file passes need to know about one file.
struct FileSummary {
  std::string path;  ///< repo-relative, forward slashes
  uint64_t content_hash = 0;
  std::vector<IncludeSite> includes;
  std::vector<MutexMemberDecl> mutexes;
  std::vector<GuardedMemberDecl> guarded_members;
  std::vector<FunctionSummary> functions;
  std::vector<DeclInfo> decls;
  std::vector<CallStatement> call_statements;
  std::vector<TaintCallArg> taint_calls;
  std::vector<PendingTaintFinding> taint_pending;
  std::vector<Finding> findings;  ///< per-file rule findings, unsuppressed
  /// line -> rules allowed there via inline `lint:allow(...)` comments.
  std::map<int, std::set<std::string>> allowances;
  /// Classes declared here that own a string/container member — they copy
  /// heavily, so param-by-value-heavy treats them like std containers.
  std::vector<std::string> heavy_classes;
};

/// Injectable cost clock. The index charges units of simulated time as
/// work happens; the CLI uses the default accumulator for `--stats`, and
/// tests read it to assert the warm-cache speedup deterministically.
class LintClock {
 public:
  virtual ~LintClock() = default;
  virtual void AdvanceUs(uint64_t us) = 0;
  virtual uint64_t NowUs() const = 0;
};

/// Default LintClock: a plain accumulator starting at zero.
class SimulatedClock : public LintClock {
 public:
  void AdvanceUs(uint64_t us) override { now_us_ += us; }
  uint64_t NowUs() const override { return now_us_; }

 private:
  uint64_t now_us_ = 0;
};

struct IndexStats {
  size_t files = 0;        ///< files in the index
  size_t lexed = 0;        ///< summarized from source this build
  size_t cache_hits = 0;   ///< summaries loaded from the cache
  uint64_t bytes_lexed = 0;
  uint64_t cost_us = 0;    ///< simulated cost charged to the clock
};

/// FNV-1a 64-bit, the cache's change detector.
uint64_t HashContent(const std::string& contents);

/// A fingerprint of the analyzer itself: the hash of every rule id, every
/// pass id, and a hand-bumped summary-format revision. Part of the cache
/// header, so upgrading the lint binary (new rule, new pass, changed
/// summary shape) invalidates every cached FileSummary instead of serving
/// findings computed by an older analyzer.
uint64_t AnalyzerCacheVersion();

/// Lexes `contents` once and extracts the full FileSummary, running every
/// per-file registry rule along the way. Exposed for unit tests; Build is
/// the production entry point.
FileSummary SummarizeSource(const std::string& path,
                            const std::string& contents);

class ProjectIndex {
 public:
  struct Options {
    /// Summary cache; empty disables caching. Loaded before the walk and
    /// rewritten after it, so run N+1 re-lexes only what run N didn't see.
    std::string cache_path;
    /// Cost accounting; may be nullptr.
    LintClock* cost_clock = nullptr;
  };

  /// Walks `subdirs` under `root` (skipping any directory literally named
  /// "fixtures"), summarizing every .h/.hpp/.cc/.cpp in sorted order.
  static Result<ProjectIndex> Build(const std::string& root,
                                    const std::vector<std::string>& subdirs,
                                    const Options& options);

  const std::vector<FileSummary>& files() const { return files_; }
  const FileSummary* Find(const std::string& path) const;
  const IndexStats& stats() const { return stats_; }
  /// Paths summarized from source this build (cache misses), sorted.
  const std::vector<std::string>& changed() const { return changed_; }

 private:
  std::vector<FileSummary> files_;
  std::vector<std::string> changed_;
  IndexStats stats_;
};

/// Cache (de)serialization, exposed for the invalidation tests. The
/// format is a versioned line protocol; any parse hiccup discards the
/// cache (a stale or torn cache must never poison an analysis).
std::string SerializeSummaries(const std::vector<FileSummary>& files);
Result<std::vector<FileSummary>> DeserializeSummaries(
    const std::string& text);

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_INDEX_H_
