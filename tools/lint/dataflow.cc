#include "tools/lint/dataflow.h"

#include <algorithm>

namespace alicoco::lint {

std::vector<int> ReversePostOrder(const Cfg& cfg) {
  const size_t n = cfg.blocks.size();
  std::vector<char> seen(n, 0);
  std::vector<int> post;
  post.reserve(n);

  // Iterative DFS with an explicit (node, next-successor) stack; function
  // bodies can nest arbitrarily deep and the analyzer must not.
  std::vector<std::pair<int, size_t>> stack;
  if (n != 0) {
    stack.emplace_back(cfg.entry, 0);
    seen[cfg.entry] = 1;
  }
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const std::vector<int>& succs = cfg.blocks[node].succs;
    if (next < succs.size()) {
      int s = succs[next++];
      if (!seen[s]) {
        seen[s] = 1;
        stack.emplace_back(s, 0);
      }
      continue;
    }
    post.push_back(node);
    stack.pop_back();
  }
  std::reverse(post.begin(), post.end());
  for (size_t b = 0; b < n; ++b) {
    if (!seen[b]) post.push_back(static_cast<int>(b));
  }
  return post;
}

}  // namespace alicoco::lint
