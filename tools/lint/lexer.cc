#include "tools/lint/lexer.h"

#include <cctype>

namespace alicoco::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Characters that may continue a preprocessing number once one has begun:
// digits, identifier chars, digit separators, the decimal point, and
// exponent signs (handled contextually below).
bool IsNumberChar(char c) { return IsIdentChar(c) || c == '\'' || c == '.'; }

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  std::vector<Token> Run() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexDirective();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        LexString(pos_);
        continue;
      }
      if (c == '\'') {
        LexCharLiteral();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        LexNumber();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifierOrLiteralPrefix();
        continue;
      }
      LexPunct();
    }
    return std::move(tokens_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokenKind kind, std::string text, int line) {
    tokens_.push_back(Token{kind, std::move(text), line});
  }

  void LexLineComment() {
    int start_line = line_;
    pos_ += 2;
    size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    Emit(TokenKind::kComment, src_.substr(begin, pos_ - begin), start_line);
  }

  void LexBlockComment() {
    int start_line = line_;
    pos_ += 2;
    size_t begin = pos_;
    size_t end = begin;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        end = pos_;
        pos_ += 2;
        Emit(TokenKind::kComment, src_.substr(begin, end - begin), start_line);
        return;
      }
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    Emit(TokenKind::kComment, src_.substr(begin), start_line);  // unterminated
  }

  // A whole logical preprocessor line: backslash continuations folded,
  // comments dropped, runs of whitespace collapsed to single spaces.
  void LexDirective() {
    int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      if (c == '/' && Peek(1) == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        pos_ += 2;
        while (pos_ < src_.size() &&
               !(src_[pos_] == '*' && Peek(1) == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ < src_.size()) pos_ += 2;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        if (!text.empty() && text.back() != ' ') text.push_back(' ');
        ++pos_;
        continue;
      }
      text.push_back(c);
      ++pos_;
    }
    while (!text.empty() && text.back() == ' ') text.pop_back();
    Emit(TokenKind::kDirective, std::move(text), start_line);
  }

  // `quote_pos` is the index of the opening '"'; a raw-string prefix (if
  // any) has already been consumed by the identifier path.
  void LexString(size_t quote_pos, bool raw = false) {
    int start_line = line_;
    pos_ = quote_pos + 1;
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') {
        delim.push_back(src_[pos_]);
        ++pos_;
      }
      ++pos_;  // '('
      size_t begin = pos_;
      std::string closer = ")" + delim + "\"";
      size_t end = src_.find(closer, pos_);
      if (end == std::string::npos) {
        for (size_t i = begin; i < src_.size(); ++i) {
          if (src_[i] == '\n') ++line_;
        }
        pos_ = src_.size();
        Emit(TokenKind::kString, src_.substr(begin), start_line);
        return;
      }
      for (size_t i = begin; i < end; ++i) {
        if (src_[i] == '\n') ++line_;
      }
      pos_ = end + closer.size();
      Emit(TokenKind::kString, src_.substr(begin, end - begin), start_line);
      return;
    }
    size_t begin = pos_;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '"' || c == '\n') break;
      ++pos_;
    }
    Emit(TokenKind::kString, src_.substr(begin, pos_ - begin), start_line);
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
  }

  void LexCharLiteral() {
    int start_line = line_;
    size_t begin = ++pos_;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '\'' || c == '\n') break;
      ++pos_;
    }
    Emit(TokenKind::kCharLiteral, src_.substr(begin, pos_ - begin),
         start_line);
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
  }

  void LexNumber() {
    size_t begin = pos_;
    const bool hex =
        src_[pos_] == '0' && (Peek(1) == 'x' || Peek(1) == 'X');
    while (pos_ < src_.size() && IsNumberChar(src_[pos_])) {
      char c = src_[pos_];
      // A separator only continues the number when followed by a digit
      // (distinguishes 1'000 from `1'x` char-literal adjacency).
      if (c == '\'' &&
          !std::isalnum(static_cast<unsigned char>(Peek(1)))) {
        break;
      }
      ++pos_;
      // Exponent signs: 1e+5 in decimal, 0x1p-3 in hex floats. In a hex
      // literal E is a digit, never an exponent — `0x1E+2` is the number
      // 0x1E followed by `+` and `2`, not one token.
      const bool exponent =
          hex ? (c == 'p' || c == 'P') : (c == 'e' || c == 'E');
      if (exponent && (Peek(0) == '+' || Peek(0) == '-')) {
        ++pos_;
      }
    }
    Emit(TokenKind::kNumber, src_.substr(begin, pos_ - begin), line_);
  }

  void LexIdentifierOrLiteralPrefix() {
    size_t begin = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    std::string text = src_.substr(begin, pos_ - begin);
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "R" || text == "LR" || text == "uR" || text == "UR" ||
         text == "u8R")) {
      LexString(pos_, /*raw=*/true);
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "L" || text == "u" || text == "U" || text == "u8")) {
      LexString(pos_);
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        (text == "L" || text == "u" || text == "U" || text == "u8")) {
      LexCharLiteral();
      return;
    }
    Emit(TokenKind::kIdentifier, std::move(text), line_);
  }

  void LexPunct() {
    char c = src_[pos_];
    if (c == ':' && Peek(1) == ':') {
      Emit(TokenKind::kPunct, "::", line_);
      pos_ += 2;
      return;
    }
    if (c == '-' && Peek(1) == '>') {
      Emit(TokenKind::kPunct, "->", line_);
      pos_ += 2;
      return;
    }
    Emit(TokenKind::kPunct, std::string(1, c), line_);
    ++pos_;
  }

  const std::string& src_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  return Lexer(source).Run();
}

}  // namespace alicoco::lint
