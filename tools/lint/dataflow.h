// A small forward-dataflow framework over the lint CFG.
//
// The lattice is whatever the pass picks as its State type (typically a
// map from variable name to fact); the framework contributes the fixpoint
// machinery: reverse post-order iteration, join over reachable
// predecessors, and a change-driven loop that terminates because every
// pass lattice here is finite and its join is monotone. Unreachable
// blocks (dead code after `return`) are never given a state, so passes
// cannot report findings from paths that do not exist.
//
// Usage:
//
//   auto result = SolveForward<MyState>(
//       cfg, /*boundary=*/MyState{},
//       [](const MyState& a, const MyState& b) { return Join(a, b); },
//       [&](const BasicBlock& block, MyState state) {
//         for (const Stmt& s : block.stmts) state = Transfer(s, state);
//         return state;
//       });
//   // result.in[b] / result.out[b] hold the block states; result.reached[b]
//   // says whether block b is reachable from entry at all.

#ifndef ALICOCO_TOOLS_LINT_DATAFLOW_H_
#define ALICOCO_TOOLS_LINT_DATAFLOW_H_

#include <vector>

#include "tools/lint/cfg.h"

namespace alicoco::lint {

/// Block ids in reverse post-order from the entry block. Unreachable
/// blocks are appended after the reachable ones so indices stay total.
std::vector<int> ReversePostOrder(const Cfg& cfg);

template <typename State>
struct DataflowResult {
  std::vector<State> in;
  std::vector<State> out;
  std::vector<char> reached;
};

/// Runs the forward fixpoint. `join(a, b)` must be commutative and
/// monotone; `transfer(block, state)` maps a block's IN state to its OUT
/// state. State needs operator== (the change detector) and copyability.
template <typename State, typename JoinFn, typename TransferFn>
DataflowResult<State> SolveForward(const Cfg& cfg, const State& boundary,
                                   JoinFn join, TransferFn transfer) {
  const size_t n = cfg.blocks.size();
  DataflowResult<State> result;
  result.in.resize(n);
  result.out.resize(n);
  result.reached.assign(n, 0);
  if (n == 0 || cfg.fell_back) return result;

  const std::vector<int> order = ReversePostOrder(cfg);
  result.in[cfg.entry] = boundary;
  result.reached[cfg.entry] = 1;

  // The iteration bound is a belt-and-braces guard: with a monotone join
  // the loop settles in O(lattice height * loop nesting) sweeps, and every
  // lattice a pass uses here has height O(locals in one function).
  bool changed = true;
  for (int sweep = 0; changed && sweep < 1000; ++sweep) {
    changed = false;
    for (int b : order) {
      State in_state;
      bool any_pred = false;
      if (b == cfg.entry) {
        in_state = boundary;
        any_pred = true;
      }
      for (int p : cfg.blocks[b].preds) {
        if (!result.reached[p]) continue;
        in_state = any_pred ? join(in_state, result.out[p]) : result.out[p];
        any_pred = true;
      }
      if (!any_pred) continue;  // unreachable so far (maybe forever)
      State out_state = transfer(cfg.blocks[b], in_state);
      if (!result.reached[b] || !(out_state == result.out[b]) ||
          !(in_state == result.in[b])) {
        changed = true;
      }
      result.in[b] = std::move(in_state);
      result.out[b] = std::move(out_state);
      result.reached[b] = 1;
    }
  }
  return result;
}

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_DATAFLOW_H_
