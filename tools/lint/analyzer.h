// Orchestration for alicoco_lint: suppression handling, single-source
// analysis, and the deterministic repo-tree walk.
//
// Suppression layers:
//   * file: tools/lint/suppressions.txt, lines of `<rule-id> <path-prefix>`
//     (`*` as rule-id matches every rule; `#` starts a comment)
//   * inline: a comment containing `lint:allow(rule-a, rule-b)` suppresses
//     those rules on the comment's own line

#ifndef ALICOCO_TOOLS_LINT_ANALYZER_H_
#define ALICOCO_TOOLS_LINT_ANALYZER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "tools/lint/rules.h"

namespace alicoco::lint {

class Suppressions {
 public:
  /// Parses the `<rule-id> <path-prefix>` format; unknown rule ids are an
  /// error so stale entries cannot linger silently.
  static Result<Suppressions> Parse(const std::string& text);
  static Result<Suppressions> LoadFile(const std::string& path);

  void Add(std::string rule, std::string path_prefix);
  bool Matches(const std::string& rule, const std::string& path) const;
  size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Runs every registry rule over one source buffer. `path` is the
/// repo-relative logical path the path-scoped rules dispatch on; findings
/// are sorted by (line, rule, message) and filtered through both
/// suppression layers. Pass nullptr to skip file-level suppressions.
std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& contents,
                                   const Suppressions* suppressions);

/// Walks the first-party roots (src, tests, bench, examples, tools/lint)
/// under `root`, skipping any directory named `fixtures`, and analyzes
/// every .h/.cc/.cpp in sorted order.
Result<std::vector<Finding>> AnalyzeTree(const std::string& root,
                                         const Suppressions* suppressions);

/// `file:line:rule-id: message` — the stable machine-readable line.
std::string FormatFinding(const Finding& finding);

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_ANALYZER_H_
