// Orchestration for alicoco_lint: suppression handling, single-source
// analysis, and the deterministic repo-tree walk.
//
// Suppression layers:
//   * file: tools/lint/suppressions.txt, lines of `<rule-id> <path-prefix>`
//     (`*` as rule-id matches every rule; `#` starts a comment)
//   * inline: a comment containing `lint:allow(rule-a, rule-b)` suppresses
//     those rules on the comment's own line

#ifndef ALICOCO_TOOLS_LINT_ANALYZER_H_
#define ALICOCO_TOOLS_LINT_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "tools/lint/index.h"
#include "tools/lint/passes/interproc.h"
#include "tools/lint/passes/passes.h"
#include "tools/lint/rules.h"

namespace alicoco::lint {

class Suppressions {
 public:
  /// Parses the `<rule-id> <path-prefix>` format; unknown rule ids are an
  /// error so stale entries cannot linger silently.
  static Result<Suppressions> Parse(const std::string& text);
  static Result<Suppressions> LoadFile(const std::string& path);

  void Add(std::string rule, std::string path_prefix);
  bool Matches(const std::string& rule, const std::string& path) const;
  size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Runs every registry rule over one source buffer. `path` is the
/// repo-relative logical path the path-scoped rules dispatch on; findings
/// are sorted by (line, rule, message) and filtered through both
/// suppression layers. Pass nullptr to skip file-level suppressions.
std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& contents,
                                   const Suppressions* suppressions);

/// Walks the first-party roots (src, tests, bench, examples, tools/lint)
/// under `root`, skipping any directory named `fixtures`, and analyzes
/// every .h/.cc/.cpp in sorted order.
Result<std::vector<Finding>> AnalyzeTree(const std::string& root,
                                         const Suppressions* suppressions);

/// `file:line:rule-id: message` — the stable machine-readable line.
std::string FormatFinding(const Finding& finding);

/// True when `id` names a per-file rule or a cross-file pass; the
/// suppression parser uses this to reject stale entries.
bool KnownRule(const std::string& id);

/// line -> rules allowed on that line via `lint:allow(...)` comments.
/// Shared by AnalyzeSource and the ProjectIndex summarizer.
std::map<int, std::set<std::string>> InlineAllowances(
    const std::vector<Token>& tokens);

/// Whole-program analysis over one project subtree.
struct ProjectOptions {
  /// Subdirectory of the root to index, e.g. "src".
  std::string project_dir = "src";
  /// Layering declaration; empty means `<root>/tools/lint/layers.txt`.
  std::string layers_path;
  /// Summary cache for incremental runs; empty disables caching.
  std::string cache_path;
  /// Report only findings in files that changed since the cached run
  /// (with no cache, every file counts as changed). Pre-commit mode.
  bool changed_only = false;
  /// Cost accounting; may be nullptr.
  LintClock* cost_clock = nullptr;
  const Suppressions* suppressions = nullptr;
};

struct ProjectReport {
  /// Per-file rule findings and cross-file pass findings, merged,
  /// suppression-filtered, sorted by (file, line, rule, message).
  std::vector<Finding> findings;
  IndexStats stats;
  /// Size/cost counters of the interprocedural tier (call-graph
  /// condensation + fixpoints); its cost_us is also charged to the
  /// options cost clock.
  InterprocStats interproc;
  /// Size/cost counters of the cross-file taint pass; its cost_us is
  /// charged to the options cost clock the same way.
  TaintStats taint;
};

/// Builds the ProjectIndex for `<root>/<project_dir>`, runs every
/// per-file rule (via the index summaries) and every cross-file pass,
/// and applies both suppression layers to the merged result.
Result<ProjectReport> AnalyzeProject(const std::string& root,
                                     const ProjectOptions& options);

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_ANALYZER_H_
