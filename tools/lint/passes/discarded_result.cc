// Discarded-result pass: bare statement-expression calls to APIs whose
// return value carries the error path.

#include <map>
#include <string>
#include <vector>

#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

struct DeclFacts {
  bool all_checked = true;
  bool any = false;
  std::string first_site;  ///< "file:line" of the first checked decl seen
};

}  // namespace

std::vector<Finding> RunDiscardedResultPass(const ProjectIndex& index) {
  // Unanimity rule: a call is flagged only when every project declaration
  // of that name is checked. Call sites are matched by unqualified name
  // (the summaries carry no receiver types), so a name that is sometimes a
  // void helper and sometimes a Status API must stay silent.
  std::map<std::string, DeclFacts> facts;
  for (const FileSummary& file : index.files()) {
    for (const DeclInfo& decl : file.decls) {
      DeclFacts& f = facts[decl.name];
      f.any = true;
      if (!decl.checked) {
        f.all_checked = false;
      } else if (f.first_site.empty()) {
        f.first_site = file.path + ":" + std::to_string(decl.line);
      }
    }
  }

  std::vector<Finding> findings;
  for (const FileSummary& file : index.files()) {
    for (const CallStatement& call : file.call_statements) {
      auto it = facts.find(call.callee);
      if (it == facts.end() || !it->second.any || !it->second.all_checked) {
        continue;
      }
      Finding f;
      f.file = file.path;
      f.line = call.line;
      f.rule = "discarded-result";
      f.message = "result of '" + call.callee +
                  "' is ignored; it carries the error path (declared at " +
                  it->second.first_site + "); cast to void to opt out";
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

}  // namespace alicoco::lint
