// dangling-view: finds std::string_view / std::span objects that outlive
// the storage they point into. Two cooperating walks:
//
//  A. A lexical scope walk tracks where owners (string/vector/array
//     locals) and views are *declared*, so a view in an outer scope bound
//     to an owner in an inner scope — or to a temporary expression — is
//     flagged at the binding site.
//  B. A CFG dataflow propagates view->owner bindings to `return`
//     statements, so `return sv;` where sv aliases a local is flagged even
//     when the bind and the return sit in different blocks. The same walk
//     flags `return local;` / `return local.substr(...)` directly when the
//     function's own return type is a view or a reference.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/dataflow.h"
#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

bool IsIdentTok(const Token* t) {
  return t != nullptr && t->kind == TokenKind::kIdentifier;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

bool IsOwnerType(const std::string& name) {
  return name == "string" || name == "vector" || name == "array";
}

bool IsViewType(const std::string& name) {
  return name == "string_view" || name == "span";
}

/// Matches `std :: <name>` ending at index `j` of the name; fills `name`.
bool StdName(const std::vector<const Token*>& code, size_t j,
             std::string* name) {
  if (!IsIdentTok(code[j])) return false;
  if (j < 2) return false;
  if (!IsPunct(code[j - 1], "::")) return false;
  const Token* root = code[j - 2];
  if (!IsIdentTok(root) || root->text != "std") return false;
  *name = code[j]->text;
  return true;
}

struct VarDecl {
  int scope_depth = 0;
  int line = 0;
};

/// Per-variable knowledge gathered by the lexical walk.
struct Locals {
  std::map<std::string, VarDecl> owners;  ///< string/vector/array by value
  std::map<std::string, VarDecl> views;   ///< string_view/span locals
};

/// Does the token range [begin, end) contain a call that manufactures a
/// temporary owner (substr, str(), to_string, std::string(...))? Returns
/// the describing text, or "" when none.
std::string TemporaryMaker(const std::vector<const Token*>& code, size_t begin,
                           size_t end) {
  for (size_t j = begin; j + 1 < end; ++j) {
    const Token* t = code[j];
    if (!IsIdentTok(t)) continue;
    if ((IsPunct(code[j > 0 ? j - 1 : 0], ".") ||
         IsPunct(code[j > 0 ? j - 1 : 0], "->")) &&
        IsPunct(code[j + 1], "(") &&
        (t->text == "substr" || t->text == "str")) {
      return "." + t->text + "()";
    }
    std::string std_name;
    if (StdName(code, j, &std_name) && IsPunct(code[j + 1], "(") &&
        (std_name == "to_string" || IsOwnerType(std_name))) {
      return "std::" + std_name + "(...)";
    }
  }
  return "";
}

/// The first owner variable named in [begin, end), if any.
std::string OwnerNamedIn(const std::vector<const Token*>& code, size_t begin,
                         size_t end, const Locals& locals) {
  for (size_t j = begin; j < end; ++j) {
    const Token* t = code[j];
    if (!IsIdentTok(t)) continue;
    if (j > begin &&
        (IsPunct(code[j - 1], ".") || IsPunct(code[j - 1], "->") ||
         IsPunct(code[j - 1], "::"))) {
      continue;
    }
    if (locals.owners.count(t->text) != 0) return t->text;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Walk B state: view name -> the local owner it aliases. The join keeps
// the lexicographically smaller owner name so merges are deterministic.

using BindState = std::map<std::string, std::string>;

BindState Join(const BindState& a, const BindState& b) {
  BindState out = a;
  for (const auto& [view, owner] : b) {
    auto it = out.find(view);
    if (it == out.end() || owner < it->second) out[view] = owner;
  }
  return out;
}

class Analysis {
 public:
  Analysis(const std::string& path, const std::vector<const Token*>& code,
           const FunctionBody& fn)
      : path_(path), code_(code), fn_(fn) {}

  /// Walk A: one linear pass over every statement of every block (in block
  /// order), tracking declarations on a scope stack via Stmt::scope_depth.
  /// Fills locals_ and reports scope-mismatch and temporary bindings.
  void LexicalWalk(const Cfg& cfg, std::vector<Finding>* out) {
    // Statements sorted by token position reconstruct the lexical order.
    std::vector<const Stmt*> stmts;
    for (const BasicBlock& b : cfg.blocks) {
      for (const Stmt& s : b.stmts) stmts.push_back(&s);
    }
    std::sort(stmts.begin(), stmts.end(),
              [](const Stmt* a, const Stmt* b) { return a->begin < b->begin; });

    for (const Stmt* s : stmts) {
      // Leaving a scope kills the declarations made inside it.
      EvictDeeperThan(s->scope_depth);
      ScanDeclarations(*s, out);
      ScanAssignments(*s, out);
    }
  }

  /// Walk B transfer: update view->owner bindings for one statement, and
  /// (emit phase only) report returns that leak a local.
  BindState TransferStmt(const Stmt& stmt, BindState state,
                         std::vector<Finding>* out) {
    if (stmt.kind == StmtKind::kReturn) {
      CheckReturn(stmt, state, out);
      return state;
    }
    // `view = owner...` or `Type view = owner...` rebinding.
    for (size_t j = stmt.begin; j + 1 < stmt.end; ++j) {
      const Token* t = code_[j];
      if (!IsIdentTok(t)) continue;
      if (locals_.views.count(t->text) == 0) continue;
      if (!IsPunct(code_[j + 1], "=") && !IsPunct(code_[j + 1], "{")) continue;
      if (j + 2 < stmt.end && IsPunct(code_[j + 2], "=")) continue;  // ==
      const std::string owner =
          OwnerNamedIn(code_, j + 2, stmt.end, locals_);
      if (!owner.empty()) {
        state[t->text] = owner;
      } else {
        state.erase(t->text);
      }
      break;
    }
    return state;
  }

  const Locals& locals() const { return locals_; }

 private:
  void EvictDeeperThan(int depth) {
    auto evict = [depth](std::map<std::string, VarDecl>* vars) {
      for (auto it = vars->begin(); it != vars->end();) {
        if (it->second.scope_depth > depth) {
          it = vars->erase(it);
        } else {
          ++it;
        }
      }
    };
    evict(&locals_.owners);
    evict(&locals_.views);
  }

  /// Finds `std::string name ...` / `std::string_view name ...` inside one
  /// statement; reports temporaries and inner-scope owners bound to views.
  void ScanDeclarations(const Stmt& stmt, std::vector<Finding>* out) {
    // A static (or thread_local) local outlives every view of it; the
    // function-local-returns-a-reference idiom over one is deliberate.
    for (size_t j = stmt.begin; j < stmt.end; ++j) {
      if (IsIdentTok(code_[j]) && (code_[j]->text == "static" ||
                                   code_[j]->text == "thread_local")) {
        return;
      }
      if (IsPunct(code_[j], "=") || IsPunct(code_[j], "(")) break;
    }
    for (size_t j = stmt.begin; j + 1 < stmt.end; ++j) {
      std::string std_name;
      if (!StdName(code_, j, &std_name)) continue;
      const bool owner = IsOwnerType(std_name);
      const bool view = IsViewType(std_name);
      if (!owner && !view) continue;

      // Skip the template argument list if any: std::vector<int> v.
      size_t k = j + 1;
      if (k < stmt.end && IsPunct(code_[k], "<")) {
        int angle = 0;
        for (; k < stmt.end; ++k) {
          if (IsPunct(code_[k], "<")) ++angle;
          if (IsPunct(code_[k], ">")) {
            if (--angle == 0) {
              ++k;
              break;
            }
          }
        }
      }
      if (k >= stmt.end) continue;
      // A reference or pointer declaration does not own; `&`/`*` also
      // covers mentions in casts and expressions.
      if (IsPunct(code_[k], "&") || IsPunct(code_[k], "*")) continue;
      if (!IsIdentTok(code_[k])) continue;
      const Token* name_tok = code_[k];
      // `std::string foo(` at statement start could be a nested function
      // declaration; require an initializer or plain `;` to be a variable.
      const Token* after = k + 1 < stmt.end ? code_[k + 1] : nullptr;
      const bool is_var = after == nullptr || IsPunct(after, "=") ||
                          IsPunct(after, ";") || IsPunct(after, "{") ||
                          IsPunct(after, "(");
      if (!is_var) continue;

      VarDecl decl{stmt.scope_depth, name_tok->line};
      if (owner) {
        locals_.owners[name_tok->text] = decl;
        continue;
      }
      locals_.views[name_tok->text] = decl;

      // The initializer range: everything after the name to statement end.
      const size_t init_begin = k + 1;
      const std::string temp = TemporaryMaker(code_, init_begin, stmt.end);
      if (!temp.empty()) {
        Report(out, name_tok->line,
               "'" + name_tok->text + "' is bound to a temporary (" + temp +
                   ") that is destroyed at the end of the statement");
        continue;
      }
      const std::string bound =
          OwnerNamedIn(code_, init_begin, stmt.end, locals_);
      if (!bound.empty()) {
        const VarDecl& owner_decl = locals_.owners.at(bound);
        if (owner_decl.scope_depth > stmt.scope_depth) {
          Report(out, name_tok->line,
                 "'" + name_tok->text + "' outlives '" + bound +
                     "' (declared in an inner scope on line " +
                     std::to_string(owner_decl.line) + ")");
        }
      }
    }
  }

  /// `view = ...` assignments. A binding whose owner lives in a deeper
  /// scope than the view itself dangles when that scope closes; a binding
  /// to a temporary dangles at the semicolon. Declaration statements pass
  /// through here too — the duplicate report is absorbed by reported_.
  void ScanAssignments(const Stmt& stmt, std::vector<Finding>* out) {
    for (size_t j = stmt.begin; j + 1 < stmt.end; ++j) {
      const Token* t = code_[j];
      if (!IsIdentTok(t)) continue;
      auto view_it = locals_.views.find(t->text);
      if (view_it == locals_.views.end()) continue;
      // `obj.view = ...` assigns a member, not our local.
      if (j > stmt.begin &&
          (IsPunct(code_[j - 1], ".") || IsPunct(code_[j - 1], "->") ||
           IsPunct(code_[j - 1], "::"))) {
        continue;
      }
      if (!IsPunct(code_[j + 1], "=")) continue;
      if (j + 2 < stmt.end && IsPunct(code_[j + 2], "=")) continue;  // ==
      const size_t rhs = j + 2;
      const std::string temp = TemporaryMaker(code_, rhs, stmt.end);
      if (!temp.empty()) {
        Report(out, t->line,
               "'" + t->text + "' is bound to a temporary (" + temp +
                   ") that is destroyed at the end of the statement");
        break;
      }
      const std::string bound = OwnerNamedIn(code_, rhs, stmt.end, locals_);
      if (!bound.empty()) {
        const VarDecl& owner_decl = locals_.owners.at(bound);
        if (owner_decl.scope_depth > view_it->second.scope_depth) {
          Report(out, t->line,
                 "'" + t->text + "' outlives '" + bound +
                     "' (declared in an inner scope on line " +
                     std::to_string(owner_decl.line) + ")");
        }
      }
      break;
    }
  }

  void CheckReturn(const Stmt& stmt, const BindState& state,
                   std::vector<Finding>* out) {
    // stmt.begin points at `return`.
    size_t j = stmt.begin;
    if (j >= stmt.end || code_[j]->text != "return") return;
    ++j;
    if (j >= stmt.end) return;
    const Token* t = code_[j];
    if (!IsIdentTok(t)) {
      // `return std::string_view(owner)` / `return {owner, n}` when the
      // function returns a view.
      if (fn_.returns_view) {
        const std::string owner = OwnerNamedIn(code_, j, stmt.end, locals_);
        if (!owner.empty()) {
          Report(out, stmt.line,
                 "returning a view over local '" + owner +
                     "', which is destroyed when the function returns");
        }
      }
      return;
    }
    // `return sv;` where sv is a view bound to a local owner.
    auto bound = state.find(t->text);
    if (bound != state.end() && j + 1 < stmt.end && IsPunct(code_[j + 1], ";")) {
      Report(out, stmt.line,
             "returning view '" + t->text + "' bound to local '" +
                 bound->second +
                 "', which is destroyed when the function returns");
      return;
    }
    if (!fn_.returns_view && !fn_.returns_ref) return;
    // `return owner;` / `return owner.substr(...)` from a view/ref
    // returning function.
    if (locals_.owners.count(t->text) != 0) {
      const char* what = fn_.returns_view ? "a view over" : "a reference to";
      Report(out, stmt.line,
             std::string("returning ") + what + " local '" + t->text +
                 "', which is destroyed when the function returns");
    }
  }

  void Report(std::vector<Finding>* out, int line, std::string message) {
    if (out == nullptr) return;
    if (!reported_.insert(std::to_string(line) + "#" + message).second) return;
    out->push_back(Finding{path_, line, "dangling-view", std::move(message)});
  }

  const std::string& path_;
  const std::vector<const Token*>& code_;
  const FunctionBody& fn_;
  Locals locals_;
  std::set<std::string> reported_;
};

}  // namespace

void CheckDanglingView(const std::string& path,
                       const std::vector<const Token*>& code,
                       const FunctionBody& fn, const Cfg& cfg,
                       std::vector<Finding>* out) {
  if (cfg.fell_back) return;
  Analysis analysis(path, code, fn);
  // Walk A populates the locals tables and reports binding-site findings.
  analysis.LexicalWalk(cfg, out);
  // Walk B needs the *final* locals tables (a view may be returned before
  // the walk saw every declaration only in pathological block orders; the
  // lexical walk above already visited every statement).
  auto result = SolveForward<BindState>(
      cfg, BindState{}, Join,
      [&](const BasicBlock& block, BindState state) {
        for (const Stmt& s : block.stmts) {
          state = analysis.TransferStmt(s, std::move(state), nullptr);
        }
        return state;
      });
  for (const BasicBlock& block : cfg.blocks) {
    if (!result.reached[block.id]) continue;
    BindState state = result.in[block.id];
    for (const Stmt& s : block.stmts) {
      state = analysis.TransferStmt(s, std::move(state), out);
    }
  }
}

}  // namespace alicoco::lint
