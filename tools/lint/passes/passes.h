// The cross-file (whole-program) analysis passes and their registry.
//
// A pass consumes the ProjectIndex — never raw tokens — and returns
// findings in the same Finding shape the per-file rules use, so the
// suppression layers, the text reporter, and the SARIF writer treat both
// kinds uniformly. Pass ids share the rule-id namespace: `lint:allow()`
// comments and suppressions.txt entries work on them unchanged.

#ifndef ALICOCO_TOOLS_LINT_PASSES_PASSES_H_
#define ALICOCO_TOOLS_LINT_PASSES_PASSES_H_

#include <string>
#include <vector>

#include "tools/lint/cfg.h"
#include "tools/lint/graph.h"
#include "tools/lint/index.h"
#include "tools/lint/rules.h"

namespace alicoco::lint {

class Interproc;
struct InterprocStats;

struct PassInfo {
  std::string id;
  std::string rationale;
  /// Minimal bad/good example pair for `--explain <rule>`; the SARIF
  /// writer ignores these, so the CLI and the rule table share one
  /// registry and cannot drift.
  std::string bad_example;
  std::string good_example;
};

/// Every cross-file pass id with its one-line rationale and examples, in
/// reporting order.
const std::vector<PassInfo>& PassRegistry();

/// Pass 1a/1b — include graph. Builds the file-level include graph and the
/// module DAG from every resolved quoted #include in the index, then
/// reports `include-cycle` for file-level cycles and `layer-violation` for
/// module edges that contradict the declared layering (upward edges,
/// same-rank cross-module edges, and modules missing from layers.txt).
std::vector<Finding> RunIncludeGraphPass(const ProjectIndex& index,
                                         const Layers& layers);

/// Pass 2 — lock order. Composes per-function acquisition summaries into a
/// global lock-acquisition graph (class-resolved lock keys, transitive
/// acquisitions through the call graph) and reports `lock-order-cycle` for
/// every cycle, including self-edges (double acquisition of a
/// non-reentrant mutex).
std::vector<Finding> RunLockOrderPass(const ProjectIndex& index);

/// Pass 3 — discarded result. Indexes every declaration whose return value
/// is an error signal ([[nodiscard]], Status/Result, checked-bool APIs)
/// and reports `discarded-result` for bare statement-expression calls to
/// them. A name is only flagged when every declaration of that name in the
/// project is checked, so overloaded or reused names cannot false-positive.
/// Opt out at a call site by casting to void.
std::vector<Finding> RunDiscardedResultPass(const ProjectIndex& index);

/// Pass 4 — param-by-value-heavy. Flags by-value parameters of known-heavy
/// types (std::string, containers, and project classes the index saw
/// declare container/string members) crossing function boundaries.
/// Unanimity over every declaration of a (class, function) pair, and a
/// parameter the definition body std::moves is a sanctioned sink and stays
/// silent.
std::vector<Finding> RunParamByValuePass(const ProjectIndex& index);

/// Pass 5 — guarded-by-violation. Interprocedural GUARDED_BY enforcement:
/// an access to an annotated member is reported unless the guard is held
/// lexically, held by every observed caller (through arbitrarily deep
/// unannotated calls), or promised by ALICOCO_REQUIRES on the function.
std::vector<Finding> RunGuardedByPass(const ProjectIndex& index,
                                      const Interproc& interproc);

/// Pass 6 — blocking-under-lock. Reports blocking work (cond-var waits,
/// sleeps, file/socket I/O, thread joins, raw allocation — seeded from a
/// table, propagated transitively) reachable while any mutex is held.
/// The direct `cv_.Wait(mu_)` idiom on the held lock is sanctioned.
std::vector<Finding> RunBlockingLockPass(const ProjectIndex& index,
                                         const Interproc& interproc);

/// Pass 7 — view-escapes-call. Cross-function dangling views: returning a
/// view of a by-value owner parameter, and `return F(local)` where every
/// definition of F returns a view aliasing that parameter.
std::vector<Finding> RunViewEscapePass(const ProjectIndex& index);

/// Size/cost counters of the cross-file taint tier, for `--stats` and the
/// self-bench. Cost is simulated (proportional to the records processed),
/// never wall-clock, like every other figure in the analyzer.
struct TaintStats {
  size_t call_args = 0;    ///< suspect call-site arguments examined
  size_t pending = 0;      ///< guard-checked local sink hits
  size_t sink_params = 0;  ///< parameters proven to reach a sink
  uint64_t cost_us = 0;
};

/// Pass 8 — taint flow across calls. Resolves the taint_calls /
/// taint_pending records of every summary against callee definitions:
/// confirms Read*/Parse*-guarded local findings (the callee's taint_out /
/// returns_tainted bit), propagates parameter sink masks bottom-up
/// through argument-forwarding call sites, and reports tainted arguments
/// that land on a sink parameter. Unknown callees are assumed clean for
/// sinks (silence) and tainting for Read*/Parse*-named guards (the naming
/// convention is the contract); resolved callees use unanimity over every
/// definition so overloads cannot false-positive.
std::vector<Finding> RunTaintPass(const ProjectIndex& index,
                                  TaintStats* stats = nullptr);

/// Runs all cross-file passes in registry order and returns the merged
/// findings sorted by (file, line, rule, message). The interprocedural
/// tier (call-graph condensation + fixpoints) is built once and shared by
/// the passes that need it; when `interproc_stats` is non-null it
/// receives that tier's size/cost counters for `--stats`.
std::vector<Finding> RunAllPasses(const ProjectIndex& index,
                                  const Layers& layers,
                                  InterprocStats* interproc_stats = nullptr,
                                  TaintStats* taint_stats = nullptr);

// ---------------------------------------------------------------------------
// Intraprocedural dataflow checks.
//
// These run at summarize time (per file), so their findings are stored in
// the FileSummary and ride the content-hash cache exactly like per-file
// rule findings. Each check consumes the function's CFG; none of them
// reports anything on a function whose CFG builder fell back.

/// use-after-move: `std::move(x)` poisons `x` until it is reassigned /
/// cleared / rebound; a use while poisoned on ANY path (merged over
/// branches and loop back-edges) is a finding.
void CheckUseAfterMove(const std::string& path,
                       const std::vector<const Token*>& code,
                       const FunctionBody& fn, const Cfg& cfg,
                       std::vector<Finding>* out);

/// dangling-view: a string_view/span bound to a temporary or to a local
/// that dies before the view, and `return view-of-local` /
/// `return local` from a view- or reference-returning function.
void CheckDanglingView(const std::string& path,
                       const std::vector<const Token*>& code,
                       const FunctionBody& fn, const Cfg& cfg,
                       std::vector<Finding>* out);

/// hot-loop-alloc: heap allocation, std container construction, or
/// un-reserve()d push_back growth inside a loop, in hot-path files
/// (src/nn, src/matching, src/pipeline) or functions marked `// lint:hot`.
void CheckHotLoopAlloc(const std::string& path,
                       const std::vector<const Token*>& code,
                       const FunctionBody& fn, const Cfg& cfg,
                       std::vector<Finding>* out);

/// tainted-alloc-size / unchecked-mul-overflow / tainted-index: forward
/// taint + interval analysis over the function CFG. Lattice values carry
/// taint provenance, declared width, a coarse upper bound, and the set of
/// enclosing parameters they derive from. Builtin-source findings go to
/// `out`; sink hits whose taint hinges on a Read*/Parse*-named callee go
/// to summary->taint_pending; suspect call arguments and per-parameter
/// sink facts are recorded on the summary for the cross-file pass.
void CheckTaintFlow(const std::string& path,
                    const std::vector<const Token*>& code,
                    const FunctionBody& fn, const Cfg& cfg,
                    FileSummary* summary, std::vector<Finding>* out);

/// Driver used by SummarizeSource: builds each function's CFG once and
/// runs the three checks above, returning findings sorted by
/// (line, rule, message).
std::vector<Finding> RunFunctionDataflowChecks(
    const std::string& path, const std::vector<const Token*>& code,
    const std::vector<FunctionBody>& functions);

/// Driver used by SummarizeSource alongside RunFunctionDataflowChecks:
/// runs CheckTaintFlow over every function, appending builtin-source
/// findings to summary->findings and taint records to the summary.
void RunTaintChecks(const std::string& path,
                    const std::vector<const Token*>& code,
                    const std::vector<FunctionBody>& functions,
                    FileSummary* summary);

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_PASSES_PASSES_H_
