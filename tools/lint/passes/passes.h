// The cross-file (whole-program) analysis passes and their registry.
//
// A pass consumes the ProjectIndex — never raw tokens — and returns
// findings in the same Finding shape the per-file rules use, so the
// suppression layers, the text reporter, and the SARIF writer treat both
// kinds uniformly. Pass ids share the rule-id namespace: `lint:allow()`
// comments and suppressions.txt entries work on them unchanged.

#ifndef ALICOCO_TOOLS_LINT_PASSES_PASSES_H_
#define ALICOCO_TOOLS_LINT_PASSES_PASSES_H_

#include <string>
#include <vector>

#include "tools/lint/cfg.h"
#include "tools/lint/graph.h"
#include "tools/lint/index.h"
#include "tools/lint/rules.h"

namespace alicoco::lint {

struct PassInfo {
  std::string id;
  std::string rationale;
};

/// Every cross-file pass id with its one-line rationale, in reporting
/// order: include-cycle, layer-violation, lock-order-cycle,
/// discarded-result.
const std::vector<PassInfo>& PassRegistry();

/// Pass 1a/1b — include graph. Builds the file-level include graph and the
/// module DAG from every resolved quoted #include in the index, then
/// reports `include-cycle` for file-level cycles and `layer-violation` for
/// module edges that contradict the declared layering (upward edges,
/// same-rank cross-module edges, and modules missing from layers.txt).
std::vector<Finding> RunIncludeGraphPass(const ProjectIndex& index,
                                         const Layers& layers);

/// Pass 2 — lock order. Composes per-function acquisition summaries into a
/// global lock-acquisition graph (class-resolved lock keys, transitive
/// acquisitions through the call graph) and reports `lock-order-cycle` for
/// every cycle, including self-edges (double acquisition of a
/// non-reentrant mutex).
std::vector<Finding> RunLockOrderPass(const ProjectIndex& index);

/// Pass 3 — discarded result. Indexes every declaration whose return value
/// is an error signal ([[nodiscard]], Status/Result, checked-bool APIs)
/// and reports `discarded-result` for bare statement-expression calls to
/// them. A name is only flagged when every declaration of that name in the
/// project is checked, so overloaded or reused names cannot false-positive.
/// Opt out at a call site by casting to void.
std::vector<Finding> RunDiscardedResultPass(const ProjectIndex& index);

/// Pass 4 — param-by-value-heavy. Flags by-value parameters of known-heavy
/// types (std::string, containers, and project classes the index saw
/// declare container/string members) crossing function boundaries.
/// Unanimity over every declaration of a (class, function) pair, and a
/// parameter the definition body std::moves is a sanctioned sink and stays
/// silent.
std::vector<Finding> RunParamByValuePass(const ProjectIndex& index);

/// Runs all cross-file passes in registry order and returns the merged
/// findings sorted by (file, line, rule, message).
std::vector<Finding> RunAllPasses(const ProjectIndex& index,
                                  const Layers& layers);

// ---------------------------------------------------------------------------
// Intraprocedural dataflow checks.
//
// These run at summarize time (per file), so their findings are stored in
// the FileSummary and ride the content-hash cache exactly like per-file
// rule findings. Each check consumes the function's CFG; none of them
// reports anything on a function whose CFG builder fell back.

/// use-after-move: `std::move(x)` poisons `x` until it is reassigned /
/// cleared / rebound; a use while poisoned on ANY path (merged over
/// branches and loop back-edges) is a finding.
void CheckUseAfterMove(const std::string& path,
                       const std::vector<const Token*>& code,
                       const FunctionBody& fn, const Cfg& cfg,
                       std::vector<Finding>* out);

/// dangling-view: a string_view/span bound to a temporary or to a local
/// that dies before the view, and `return view-of-local` /
/// `return local` from a view- or reference-returning function.
void CheckDanglingView(const std::string& path,
                       const std::vector<const Token*>& code,
                       const FunctionBody& fn, const Cfg& cfg,
                       std::vector<Finding>* out);

/// hot-loop-alloc: heap allocation, std container construction, or
/// un-reserve()d push_back growth inside a loop, in hot-path files
/// (src/nn, src/matching, src/pipeline) or functions marked `// lint:hot`.
void CheckHotLoopAlloc(const std::string& path,
                       const std::vector<const Token*>& code,
                       const FunctionBody& fn, const Cfg& cfg,
                       std::vector<Finding>* out);

/// Driver used by SummarizeSource: builds each function's CFG once and
/// runs the three checks above, returning findings sorted by
/// (line, rule, message).
std::vector<Finding> RunFunctionDataflowChecks(
    const std::string& path, const std::vector<const Token*>& code,
    const std::vector<FunctionBody>& functions);

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_PASSES_PASSES_H_
