// View-escapes-call pass: the cross-function extension of dangling-view.
// The index marks each view/reference-returning definition's parameters
// that are named in a return expression (escape bits), and records
// `return Callee(args);` sites in view-returning functions whose
// arguments are local owners or temporaries. Composing the two catches
// dangles no single function shows:
//
//   std::string_view Head(const std::string& s);  // returns view of s
//   std::string_view Name() {
//     std::string local = Build();
//     return Head(local);                         // view of a dead local
//   }
//
// Unanimity keeps it honest: a call-site finding requires every defining
// declaration of the callee to escape that parameter position through a
// reference/view parameter; an unknown callee stays silent. The
// callee-side check is local: a view of a by-value owner parameter
// always dangles, whoever calls it.

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/passes/interproc.h"
#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

/// Owner-typed params whose by-value copy dies at return.
bool OwnerParam(const ParamInfo& p) {
  static const char* kOwners[] = {
      "std::string", "std::vector",        "std::array",
      "std::map",    "std::set",           "std::deque",
      "std::list",   "std::unordered_map", "std::unordered_set"};
  for (const char* o : kOwners) {
    if (p.type == o) return true;
  }
  return false;
}

/// View-typed params: a view of a view is the safe Trim() idiom.
bool ViewParam(const ParamInfo& p) {
  return p.type == "std::string_view" || p.type == "std::span";
}

/// A parameter through which a view of the argument can escape: a
/// reference, or a by-value view.
bool EscapeCapableParam(const ParamInfo& p) {
  return !p.by_value || ViewParam(p);
}

}  // namespace

std::vector<Finding> RunViewEscapePass(const ProjectIndex& index) {
  // Defining declarations by unqualified name, project-wide.
  std::map<std::string, std::vector<const DeclInfo*>> defs;
  for (const FileSummary& file : index.files()) {
    for (const DeclInfo& d : file.decls) {
      if (d.has_body) defs[d.name].push_back(&d);
    }
  }

  std::vector<Finding> findings;

  // Callee-side: returning a view of a by-value owner parameter.
  for (const FileSummary& file : index.files()) {
    for (const DeclInfo& d : file.decls) {
      if (!d.has_body) continue;
      for (const ParamInfo& p : d.params) {
        if (!p.by_value || !p.escapes_return || !OwnerParam(p)) continue;
        Finding f;
        f.file = file.path;
        f.line = d.line;
        f.rule = "view-escapes-call";
        f.message = "'" + d.name + "' returns a view of its by-value " +
                    p.type + " parameter '" + p.name +
                    "', which is destroyed when the call returns; take "
                    "const& (caller-owned) or return an owning value";
        findings.push_back(std::move(f));
      }
    }
  }

  // Caller-side: `return Callee(local_owner_or_temp)` where every
  // definition of Callee escapes that position into the returned view.
  for (const FileSummary& file : index.files()) {
    for (const FunctionSummary& fn : file.functions) {
      for (const ViewReturnCall& site : fn.view_returns) {
        auto def_it = defs.find(site.callee);
        if (def_it == defs.end()) continue;  // unknown callee: silent
        for (size_t i = 0; i < site.args.size(); ++i) {
          const ViewArg& arg = site.args[i];
          if (arg.owner.empty() && !arg.is_temp) continue;
          bool escapes_everywhere = true;
          for (const DeclInfo* d : def_it->second) {
            if (i >= d->params.size() || !d->params[i].escapes_return ||
                !EscapeCapableParam(d->params[i])) {
              escapes_everywhere = false;
              break;
            }
          }
          if (!escapes_everywhere) continue;
          Finding f;
          f.file = file.path;
          f.line = site.line;
          f.rule = "view-escapes-call";
          if (!arg.owner.empty()) {
            f.message = "returns a view through '" + site.callee +
                        "' into '" + arg.owner +
                        "', which is destroyed when the function returns";
          } else {
            f.message = "returns a view through '" + site.callee +
                        "' into a temporary destroyed at the end of the "
                        "statement";
          }
          findings.push_back(std::move(f));
        }
      }
    }
  }
  return findings;
}

}  // namespace alicoco::lint
