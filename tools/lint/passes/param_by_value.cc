// param-by-value-heavy: a by-value parameter of a known-heavy type crosses
// a function boundary as a full copy. Heavy means std::string or a std
// container, or a project class the index saw declare a container/string
// member. Like discarded-result, the pass demands unanimity: a parameter
// is flagged only when every declaration of that (class, function) agrees
// it is by-value and heavy. A parameter the definition body std::moves is
// a sanctioned sink-by-value and stays silent.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

bool IsStdHeavy(const std::string& type) {
  static const std::set<std::string> kHeavy = {
      "string",        "vector",   "map",      "set",
      "unordered_map", "unordered_set", "multimap", "multiset",
      "deque",         "list"};
  // Types arrive normalized by the extractor: "std::vector", "std::string".
  if (type.rfind("std::", 0) != 0) return false;
  return kHeavy.count(type.substr(5)) != 0;
}

struct Site {
  const FileSummary* file = nullptr;
  const DeclInfo* decl = nullptr;
};

}  // namespace

std::vector<Finding> RunParamByValuePass(const ProjectIndex& index) {
  // Every class anywhere in the project that the extractor judged heavy.
  std::set<std::string> heavy_classes;
  for (const FileSummary& file : index.files()) {
    heavy_classes.insert(file.heavy_classes.begin(),
                         file.heavy_classes.end());
  }
  auto is_heavy = [&heavy_classes](const std::string& type) {
    return IsStdHeavy(type) || heavy_classes.count(type) != 0;
  };

  // Group every declaration of the same (class, function).
  std::map<std::string, std::vector<Site>> groups;
  for (const FileSummary& file : index.files()) {
    for (const DeclInfo& decl : file.decls) {
      if (decl.name == "main") continue;
      groups[decl.class_name + "::" + decl.name].push_back(
          Site{&file, &decl});
    }
  }

  std::vector<Finding> findings;
  for (auto& [key, sites] : groups) {
    (void)key;
    const size_t nparams = sites.front().decl->params.size();
    // Overload sets with differing arity can't be told apart by name; the
    // unanimity rule makes them silent automatically (param counts differ,
    // so some site lacks the index and agreement fails).
    bool arity_agrees = true;
    for (const Site& s : sites) {
      if (s.decl->params.size() != nparams) arity_agrees = false;
    }
    if (!arity_agrees) continue;

    // The reporting site: the definition when one exists, else the first
    // site in deterministic (file, line) order.
    const Site* report_at = nullptr;
    for (const Site& s : sites) {
      if (s.decl->has_body) {
        report_at = &s;
        break;
      }
    }
    if (report_at == nullptr) report_at = &sites.front();

    for (size_t i = 0; i < nparams; ++i) {
      bool unanimous = true;
      bool moved = false;
      for (const Site& s : sites) {
        const ParamInfo& p = s.decl->params[i];
        if (!p.by_value || !is_heavy(p.type)) unanimous = false;
        if (s.decl->has_body && p.moved) moved = true;
      }
      if (!unanimous || moved) continue;
      const ParamInfo& p = report_at->decl->params[i];
      const std::string qualified = report_at->decl->class_name.empty()
                                        ? report_at->decl->name
                                        : report_at->decl->class_name +
                                              "::" + report_at->decl->name;
      findings.push_back(Finding{
          report_at->file->path, report_at->decl->line,
          "param-by-value-heavy",
          "parameter '" + p.name + "' of '" + qualified + "' takes " +
              p.type +
              " by value; pass by const reference (or std::move it into a "
              "member to keep the sink)"});
    }
  }
  return findings;
}

}  // namespace alicoco::lint
