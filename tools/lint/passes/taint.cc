// The taint + interval tier: tainted-alloc-size, unchecked-mul-overflow,
// and tainted-index.
//
// Intraprocedurally (CheckTaintFlow, run at summarize time like the other
// dataflow checks) a forward may-analysis tracks integer locals whose
// value derives from program input. Lattice values carry the taint's
// provenance, the variable's declared width, a coarse upper bound, and
// the set of enclosing parameters the value flows from. Sources are
// builtin input reads (fread/recv out-params, std::sto*/atoi/strto*) and
// Read*/Parse*-named project calls — the repo's reader naming convention.
// argv/getenv/JSON strings need no separate modelling: an INTEGER derived
// from one necessarily flows through the sto*/ato*/strto*/Parse* family,
// which taints the result regardless of what argument it parsed.
// Sinks are allocation/IO lengths (resize/reserve/assign, new[], malloc,
// memcpy lengths, fread counts, container construction), container
// subscripts, and loop bounds. Sanitizers: comparing a value against a
// compile-time-constant-shaped cap (literal, kConstant/ALL_CAPS name,
// sizeof) bounds it and kills live taint; `% const` and `& literal` mask
// it; a widening cast to a 64-bit type discharges the narrow-multiply
// overflow rule (and only that — a wide copy of untrusted input is still
// untrusted for allocation purposes).
//
// Conservatism (the cfg.h doctrine — missed findings are acceptable,
// false ones are not): a cap kills taint on BOTH branches of the guard
// (the failing branch returns in the idiom this enforces); `f(&x)` by an
// unknown callee re-establishes x as clean; lambdas are skipped whole;
// anything the evaluator cannot shape is width-64 and untainted. Findings
// whose only taint evidence is a Read*/Parse*-named call are not emitted
// directly: they become PendingTaintFinding records, and RunTaintPass
// emits them only if the named callee's definition really produces
// untrusted data (taint_out / returns_tainted in its summary) — so a
// reader that caps internally silences all of its callers at once.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/dataflow.h"
#include "tools/lint/passes/interproc.h"
#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

bool IsIdentTok(const Token* t) {
  return t != nullptr && t->kind == TokenKind::kIdentifier;
}

bool IsIdent(const Token* t, std::string_view text) {
  return IsIdentTok(t) && t->text == text;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

bool IsNumber(const Token* t) {
  return t != nullptr && t->kind == TokenKind::kNumber;
}

/// Declared width in bits of an integer type name, or 0 for non-integer
/// types (doubles, strings, pointers-to-struct — not tracked).
int IntWidth(const std::string& type) {
  if (type == "uint8_t" || type == "int8_t") return 8;
  if (type == "uint16_t" || type == "int16_t" || type == "short") return 16;
  if (type == "uint32_t" || type == "int32_t" || type == "int" ||
      type == "unsigned") {
    return 32;
  }
  if (type == "uint64_t" || type == "int64_t" || type == "size_t" ||
      type == "ptrdiff_t" || type == "ssize_t" || type == "long" ||
      type == "uintptr_t") {
    return 64;
  }
  return 0;
}

/// Value-returning builtin sources: name -> width of the parsed integer.
/// 0 means "not a source".
int ValueSourceWidth(const std::string& name) {
  if (name == "stoi" || name == "atoi") return 32;
  if (name == "stol" || name == "stoll" || name == "stoul" ||
      name == "stoull" || name == "strtol" || name == "strtoul" ||
      name == "strtoull" || name == "atol" || name == "atoll") {
    return 64;
  }
  return 0;
}

/// Read*/Parse*-named project calls — this repo's reader convention. The
/// trailing-width suffix (ReadU32) narrows the produced value.
bool IsReaderName(const std::string& name) {
  return (name.size() > 4 && name.compare(0, 4, "Read") == 0 &&
          std::isupper(static_cast<unsigned char>(name[4]))) ||
         (name.size() > 5 && name.compare(0, 5, "Parse") == 0 &&
          std::isupper(static_cast<unsigned char>(name[5])));
}

int ReaderWidth(const std::string& name) {
  size_t end = name.size();
  size_t start = end;
  while (start > 0 && std::isdigit(static_cast<unsigned char>(name[start - 1]))) {
    --start;
  }
  if (start == end) return 64;
  const std::string digits = name.substr(start);
  if (digits == "8") return 8;
  if (digits == "16") return 16;
  if (digits == "32") return 32;
  return 64;
}

/// A token that names a compile-time constant for cap purposes: a number
/// literal, a kCamelCase / ALL_CAPS identifier, or sizeof.
bool IsConstantShaped(const Token* t) {
  if (IsNumber(t)) return true;
  if (!IsIdentTok(t)) return false;
  const std::string& s = t->text;
  if (s == "sizeof") return true;
  if (s.size() >= 2 && s[0] == 'k' &&
      std::isupper(static_cast<unsigned char>(s[1]))) {
    return true;
  }
  bool caps = s.size() >= 2;
  for (char c : s) {
    if (!std::isupper(static_cast<unsigned char>(c)) && c != '_' &&
        !std::isdigit(static_cast<unsigned char>(c))) {
      caps = false;
    }
  }
  return caps;
}

/// Parses an integer literal's value (decimal/hex/octal, digit
/// separators, u/l suffixes). Returns 0 for floats and parse failures —
/// callers treat 0 as "value unknown".
uint64_t LiteralValue(const Token* t) {
  if (!IsNumber(t)) return 0;
  std::string s;
  for (char c : t->text) {
    if (c == '\'') continue;
    if (c == '.' || c == 'e' || c == 'E' || c == 'p' || c == 'P') {
      if (!(s.size() >= 2 && (s[1] == 'x' || s[1] == 'X'))) return 0;
    }
    s.push_back(c);
  }
  while (!s.empty()) {
    char c = s.back();
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L') {
      s.pop_back();
    } else {
      break;
    }
  }
  try {
    return std::stoull(s, nullptr, 0);
  } catch (...) {
    return 0;
  }
}

/// One tracked value. `origin` is the LIVE taint (killed by caps);
/// `ever_*` keep the first provenance sticky for the overflow rule —
/// capping an allocation size after a narrow multiply does not undo the
/// overflow that already happened.
struct TaintVal {
  TaintOrigin origin = TaintOrigin::kNone;
  std::string source;  ///< live provenance label ("fread", "ReadU32", ...)
  int source_line = 0;
  int guard_param = -1;  ///< kCalleeOut: which out-param of `source`
  TaintOrigin ever_origin = TaintOrigin::kNone;
  std::string ever_source;
  int ever_line = 0;
  int ever_guard_param = -1;
  int width = 64;
  bool bounded = false;
  uint64_t bound = 0;  ///< literal cap value; 0 = cap of unknown size
  uint32_t params = 0;  ///< enclosing params the value flows from, uncapped
  int mul_line = 0;  ///< line of an unwidened narrow multiply feeding this
  std::string mul_detail;

  bool operator==(const TaintVal& o) const {
    return origin == o.origin && source == o.source &&
           source_line == o.source_line && guard_param == o.guard_param &&
           ever_origin == o.ever_origin && ever_source == o.ever_source &&
           ever_line == o.ever_line &&
           ever_guard_param == o.ever_guard_param && width == o.width &&
           bounded == o.bounded && bound == o.bound && params == o.params &&
           mul_line == o.mul_line && mul_detail == o.mul_detail;
  }

  bool Interesting() const {
    return origin != TaintOrigin::kNone || ever_origin != TaintOrigin::kNone ||
           params != 0 || bounded || mul_line != 0;
  }
};

void TakeTaint(TaintVal* out, const TaintVal& in) {
  if (in.origin != TaintOrigin::kNone &&
      (out->origin == TaintOrigin::kNone || in.source_line < out->source_line)) {
    out->origin = in.origin;
    out->source = in.source;
    out->source_line = in.source_line;
    out->guard_param = in.guard_param;
  }
  if (in.ever_origin != TaintOrigin::kNone &&
      (out->ever_origin == TaintOrigin::kNone ||
       in.ever_line < out->ever_line)) {
    out->ever_origin = in.ever_origin;
    out->ever_source = in.ever_source;
    out->ever_line = in.ever_line;
    out->ever_guard_param = in.ever_guard_param;
  }
}

/// May-join: taint wins over clean (earliest source line for stable
/// provenance), bounds survive only when both sides are bounded.
TaintVal JoinVal(const TaintVal& a, const TaintVal& b) {
  TaintVal out = a;
  TakeTaint(&out, b);
  out.width = std::max(a.width, b.width);
  out.bounded = a.bounded && b.bounded;
  out.bound = (a.bound != 0 && b.bound != 0) ? std::max(a.bound, b.bound) : 0;
  out.params = a.params | b.params;
  if (out.mul_line == 0 ||
      (b.mul_line != 0 && b.mul_line < out.mul_line)) {
    if (b.mul_line != 0) {
      out.mul_line = b.mul_line;
      out.mul_detail = b.mul_detail;
    }
  }
  return out;
}

using TaintState = std::map<std::string, TaintVal>;

TaintState JoinState(const TaintState& a, const TaintState& b) {
  TaintState out = a;
  for (const auto& [var, val] : b) {
    auto it = out.find(var);
    if (it == out.end()) {
      out[var] = val;
    } else {
      it->second = JoinVal(it->second, val);
    }
  }
  return out;
}

bool IsContainerTypeName(const std::string& name) {
  return name == "vector" || name == "string" || name == "deque" ||
         name == "basic_string" || name == "valarray";
}

const char* kRuleAlloc = "tainted-alloc-size";
const char* kRuleIndex = "tainted-index";
const char* kRuleMul = "unchecked-mul-overflow";

class Analysis {
 public:
  Analysis(const std::string& path, const std::vector<const Token*>& code,
           const FunctionBody& fn, FileSummary* summary,
           std::vector<Finding>* findings)
      : path_(path), code_(code), fn_(fn), summary_(summary),
        findings_(findings) {
    for (DeclInfo& d : summary->decls) {
      if (d.has_body && d.line == fn.line && d.name == fn.name &&
          d.class_name == fn.class_name) {
        def_ = &d;
        break;
      }
    }
    if (def_ == nullptr) return;
    for (size_t i = 0; i < def_->params.size() && i < 32; ++i) {
      const ParamInfo& p = def_->params[i];
      const int width = IntWidth(p.type);
      if (width == 0 || p.name.empty()) continue;
      widths_[p.name] = width;
      if (p.by_value) {
        TaintVal v;
        v.width = width;
        v.params = 1u << i;
        boundary_[p.name] = v;
      } else {
        out_params_[p.name] = i;
      }
    }
  }

  bool usable() const { return def_ != nullptr; }
  const TaintState& boundary() const { return boundary_; }

  const Token* At(size_t i) const {
    return i < code_.size() ? code_[i] : nullptr;
  }

  size_t MatchBalanced(size_t i, std::string_view open, std::string_view close,
                       size_t stop) const {
    int depth = 0;
    for (; i < stop; ++i) {
      if (IsPunct(code_[i], open)) ++depth;
      if (IsPunct(code_[i], close) && --depth == 0) return i + 1;
    }
    return stop;
  }

  /// Splits the top-level comma pieces of the argument list opened at
  /// `open` (the '(' index). Returns (begin, end) token ranges.
  std::vector<std::pair<size_t, size_t>> ArgPieces(size_t open,
                                                   size_t stop) const {
    std::vector<std::pair<size_t, size_t>> pieces;
    size_t close = MatchBalanced(open, "(", ")", stop);
    if (close <= open + 2) return pieces;  // no arguments
    size_t piece_start = open + 1;
    int nest = 0;
    for (size_t j = open + 1; j + 1 < close; ++j) {
      const Token* t = code_[j];
      if (IsPunct(t, "(") || IsPunct(t, "{") || IsPunct(t, "[")) ++nest;
      if (IsPunct(t, ")") || IsPunct(t, "}") || IsPunct(t, "]")) --nest;
      if (IsPunct(t, ",") && nest == 0) {
        pieces.emplace_back(piece_start, j);
        piece_start = j + 1;
      }
    }
    pieces.emplace_back(piece_start, close - 1);
    return pieces;
  }

  /// Evaluates the lattice value of an expression token range against the
  /// current state: the join of every tracked contribution, plus source
  /// calls, widening casts, narrow-multiply events, and masking
  /// sanitizers. `rep` (when non-null) receives a representative variable
  /// name for messages.
  TaintVal EvalRange(size_t begin, size_t end, const TaintState& state,
                     std::string* rep = nullptr) const {
    TaintVal out;
    bool any = false;
    bool masked = false;
    for (size_t j = begin; j < end && j < code_.size(); ++j) {
      const Token* t = code_[j];
      if (IsNumber(t)) {
        TaintVal lit;
        lit.bounded = true;
        lit.bound = LiteralValue(t);
        lit.width = lit.bound > 0x7FFFFFFFull ? 64 : 32;
        out = any ? JoinVal(out, lit) : lit;
        any = true;
        continue;
      }
      // `% const` and `& literal` bound whatever they touch.
      if ((IsPunct(t, "%") || IsPunct(t, "&")) && j > begin &&
          (IsIdentTok(code_[j - 1]) || IsNumber(code_[j - 1]) ||
           IsPunct(code_[j - 1], ")")) &&
          IsConstantShaped(At(j + 1))) {
        masked = true;
        continue;
      }
      if (IsPunct(t, "*") && IsBinaryMulAt(j, begin)) {
        TaintVal l = OperandBefore(j, begin, state);
        TaintVal r = OperandAfter(j, end, state);
        EvalMul(l, r, code_[j]->line, &out);
        any = true;
        continue;
      }
      if (!IsIdentTok(t)) continue;
      const Token* prev = j > 0 ? code_[j - 1] : nullptr;
      // `std::min(x, kCap)` bounds its result.
      if (t->text == "min" && IsPunct(At(j + 1), "(")) {
        masked = true;
        continue;
      }
      if (t->text == "static_cast" && IsPunct(At(j + 1), "<")) {
        size_t gt = j + 1;
        int w = CastWidth(&gt, end);
        if (IsPunct(At(gt), "(")) {
          size_t close = MatchBalanced(gt, "(", ")", end);
          TaintVal inner = EvalRange(gt + 1, close - 1, state, rep);
          if (w != 0) inner.width = w;
          out = any ? JoinVal(out, inner) : inner;
          any = true;
          j = close - 1;
          continue;
        }
      }
      if (IsPunct(prev, ".") || IsPunct(prev, "->") || IsPunct(prev, "::")) {
        continue;  // member/qualified name; `std::stoul` handled below
      }
      // Value-returning sources: std::stoX(...) and ReaderName(...).
      if (IsPunct(At(j + 1), "(") ||
          (t->text == "std" && IsPunct(At(j + 1), "::"))) {
        std::string callee = t->text;
        size_t call_open = j + 1;
        if (t->text == "std" && IsPunct(At(j + 1), "::") &&
            IsIdentTok(At(j + 2)) && IsPunct(At(j + 3), "(")) {
          callee = At(j + 2)->text;
          call_open = j + 3;
          j += 2;
        }
        if (!IsPunct(At(call_open), "(")) continue;
        const int vw = ValueSourceWidth(callee);
        if (vw != 0) {
          TaintVal src;
          src.origin = TaintOrigin::kBuiltin;
          src.source = "std::" + callee;
          if (callee.compare(0, 3, "ato") == 0 ||
              callee.compare(0, 4, "strt") == 0) {
            src.source = callee;
          }
          src.source_line = t->line;
          src.ever_origin = src.origin;
          src.ever_source = src.source;
          src.ever_line = src.source_line;
          src.width = vw;
          out = any ? JoinVal(out, src) : src;
          any = true;
          if (rep != nullptr && rep->empty()) *rep = callee;
          j = MatchBalanced(call_open, "(", ")", end) - 1;
          continue;
        }
        if (IsReaderName(callee)) {
          TaintVal src;
          src.origin = TaintOrigin::kCalleeReturn;
          src.source = callee;
          src.source_line = t->line;
          src.guard_param = -1;
          src.ever_origin = src.origin;
          src.ever_source = src.source;
          src.ever_line = src.source_line;
          src.ever_guard_param = -1;
          src.width = ReaderWidth(callee);
          out = any ? JoinVal(out, src) : src;
          any = true;
          if (rep != nullptr && rep->empty()) *rep = callee;
          j = MatchBalanced(call_open, "(", ")", end) - 1;
          continue;
        }
        // Any other call's value is untracked; skip its arguments so a
        // tainted argument is not mistaken for a tainted result.
        j = MatchBalanced(call_open, "(", ")", end) - 1;
        continue;
      }
      auto it = state.find(t->text);
      if (it == state.end()) continue;
      if (rep != nullptr && rep->empty() && it->second.Interesting()) {
        *rep = t->text;
      }
      out = any ? JoinVal(out, it->second) : it->second;
      any = true;
    }
    if (!any) {
      TaintVal clean;
      clean.bounded = false;
      out = clean;
    }
    if (masked) {
      out.origin = TaintOrigin::kNone;
      out.params = 0;
      out.bounded = true;
      out.bound = 0;
    }
    return out;
  }

 private:
  /// `*` is a binary multiply when preceded by a value-ending token; a
  /// leading or prefix `*` is a dereference.
  bool IsBinaryMulAt(size_t j, size_t begin) const {
    if (j <= begin) return false;
    const Token* prev = code_[j - 1];
    return IsIdentTok(prev) || IsNumber(prev) || IsPunct(prev, ")") ||
           IsPunct(prev, "]");
  }

  /// Parses `<T>` starting at the '<' index; advances *i one past '>'.
  int CastWidth(size_t* i, size_t stop) const {
    size_t close = *i;
    int depth = 0;
    int width = 0;
    for (; close < stop; ++close) {
      const Token* t = code_[close];
      if (IsPunct(t, "<")) ++depth;
      if (IsPunct(t, ">") && --depth == 0) break;
      if (IsIdentTok(t)) {
        const int w = IntWidth(t->text);
        if (w != 0) width = w;
      }
    }
    *i = close < stop ? close + 1 : stop;
    return width;
  }

  /// The operand ending just before the `*` at j: a single identifier or
  /// literal, or a parenthesized static_cast. Anything else evaluates as
  /// an unknown width-64 value, which silences the overflow rule.
  TaintVal OperandBefore(size_t j, size_t begin, const TaintState& state) const {
    const Token* prev = j > 0 ? code_[j - 1] : nullptr;
    if (IsNumber(prev)) return EvalRange(j - 1, j, state);
    if (IsIdentTok(prev)) {
      const Token* prev2 = j >= 2 ? code_[j - 2] : nullptr;
      if (IsPunct(prev2, ".") || IsPunct(prev2, "->") ||
          IsPunct(prev2, "::")) {
        return TaintVal{};
      }
      auto it = state.find(prev->text);
      if (it != state.end()) return it->second;
      TaintVal v;
      auto w = widths_.find(prev->text);
      if (w != widths_.end()) v.width = w->second;
      return v;
    }
    if (IsPunct(prev, ")")) {
      // Walk back to the matching '(' and re-evaluate — this is how
      // `static_cast<size_t>(rows) * cols` discharges the left operand.
      int depth = 0;
      size_t k = j - 1;
      while (k > begin) {
        if (IsPunct(code_[k], ")")) ++depth;
        if (IsPunct(code_[k], "(") && --depth == 0) break;
        --k;
      }
      size_t cast = k;
      while (cast > begin && !IsIdent(code_[cast], "static_cast")) --cast;
      if (IsIdent(code_[cast], "static_cast")) {
        return EvalRange(cast, j, state);
      }
      return EvalRange(k + 1, j - 1, state);
    }
    return TaintVal{};
  }

  TaintVal OperandAfter(size_t j, size_t end, const TaintState& state) const {
    const Token* next = At(j + 1);
    if (IsNumber(next)) return EvalRange(j + 1, j + 2, state);
    if (IsIdentTok(next) && next->text == "static_cast") {
      size_t stop = j + 1;
      int depth = 0;
      bool opened = false;
      for (; stop < end; ++stop) {
        if (IsPunct(code_[stop], "(")) {
          ++depth;
          opened = true;
        }
        if (IsPunct(code_[stop], ")") && --depth == 0 && opened) {
          ++stop;
          break;
        }
      }
      return EvalRange(j + 1, stop, state);
    }
    if (IsIdentTok(next) && !IsPunct(At(j + 2), "(") &&
        !IsPunct(At(j + 2), "::") && !IsPunct(At(j + 2), ".") &&
        !IsPunct(At(j + 2), "->")) {
      auto it = state.find(next->text);
      if (it != state.end()) return it->second;
      TaintVal v;
      auto w = widths_.find(next->text);
      if (w != widths_.end()) v.width = w->second;
      return v;
    }
    return TaintVal{};
  }

  /// The overflow rule: both operands at most 32 bits wide, at least one
  /// ever-untrusted, and the product not provably below 2^32.
  void EvalMul(const TaintVal& l, const TaintVal& r, int line,
               TaintVal* out) const {
    TaintVal product = JoinVal(l, r);
    product.width = std::max(l.width, r.width);
    const bool untrusted = l.ever_origin != TaintOrigin::kNone ||
                           r.ever_origin != TaintOrigin::kNone;
    bool provably_small = false;
    if (l.bounded && r.bounded && l.bound != 0 && r.bound != 0 &&
        l.bound <= 0xFFFFFFFFull / r.bound) {
      provably_small = true;
      product.bound = l.bound * r.bound;
    }
    if (l.width <= 32 && r.width <= 32 && untrusted && !provably_small &&
        product.mul_line == 0) {
      const TaintVal& bad = l.ever_origin != TaintOrigin::kNone ? l : r;
      product.mul_line = line;
      product.mul_detail = bad.ever_source;
      // The multiply inherits the sticky provenance so the sink that the
      // product reaches can decide direct-vs-pending emission.
      if (product.ever_origin == TaintOrigin::kNone) {
        product.ever_origin = bad.ever_origin;
        product.ever_source = bad.ever_source;
        product.ever_line = bad.ever_line;
        product.ever_guard_param = bad.ever_guard_param;
      }
    }
    *out = (*out == TaintVal{}) ? product : JoinVal(*out, product);
  }

 public:
  /// One statement's transfer function; `emit` selects whether findings,
  /// pending records, call args, and parameter sink facts are produced
  /// (the emit replay) or only the state is advanced (the solve).
  TaintState TransferStmt(const Stmt& stmt, bool loop_cond, TaintState state,
                          bool emit) {
    // Skip lambdas whole, exactly like use-after-move: their captures
    // rebind names and their bodies run elsewhere.
    for (size_t j = stmt.begin; j < stmt.end && j < code_.size(); ++j) {
      const Token* t = code_[j];
      if (IsPunct(t, "[")) {
        size_t close = MatchBalanced(j, "[", "]", stmt.end);
        const Token* after = close < stmt.end ? code_[close] : nullptr;
        if (IsPunct(after, "(") || IsPunct(after, "{")) {
          size_t k = close;
          if (IsPunct(code_[k], "(")) k = MatchBalanced(k, "(", ")", stmt.end);
          while (k < stmt.end && !IsPunct(code_[k], "{")) ++k;
          if (k < stmt.end) k = MatchBalanced(k, "{", "}", stmt.end);
          // Treat the lambda as an opaque blob by analyzing around it:
          // simplest safe handling is to stop at the first lambda.
          Stmt head = stmt;
          head.end = j;
          return TransferStmt(head, loop_cond, std::move(state), emit);
        }
      }
    }

    ScanSources(stmt, &state, emit);
    ScanComparisons(stmt, &state);
    state = ApplyAssignment(stmt, std::move(state), emit);
    ScanSinks(stmt, loop_cond, state, emit);
    if (emit) RecordCallArgs(stmt, state);
    ScanReturn(stmt, state, emit);
    return state;
  }

 private:
  /// Out-param sources: fread/recv into `&x` or a pointer parameter, and
  /// Read*/Parse* calls with `&x` arguments. An `&x` passed to any OTHER
  /// callee re-establishes x as clean (unknown out-param, like
  /// use-after-move's revalidation rule).
  void ScanSources(const Stmt& stmt, TaintState* state, bool emit) {
    for (size_t j = stmt.begin; j < stmt.end && j < code_.size(); ++j) {
      const Token* t = code_[j];
      if (!IsIdentTok(t) || !IsPunct(At(j + 1), "(")) continue;
      const Token* prev = j > 0 ? code_[j - 1] : nullptr;
      if (IsPunct(prev, ".") || IsPunct(prev, "->")) continue;
      const std::string& callee = t->text;
      auto pieces = ArgPieces(j + 1, stmt.end);
      const bool is_fread = callee == "fread";
      const bool is_recv = callee == "recv" || callee == "recvfrom";
      const bool is_reader = IsReaderName(callee);
      for (size_t a = 0; a < pieces.size(); ++a) {
        auto [pb, pe] = pieces[a];
        std::string var;
        bool addressed = false;
        if (pe == pb + 2 && IsPunct(code_[pb], "&") &&
            IsIdentTok(code_[pb + 1])) {
          var = code_[pb + 1]->text;
          addressed = true;
        } else if (pe == pb + 1 && IsIdentTok(code_[pb])) {
          var = code_[pb]->text;
        }
        if (var.empty()) continue;
        const bool source_arg = (is_fread && a == 0) || (is_recv && a == 1);
        if (source_arg) {
          if (addressed) {
            TaintVal v;
            v.origin = TaintOrigin::kBuiltin;
            v.source = is_fread ? "fread" : "recv";
            v.source_line = t->line;
            v.ever_origin = v.origin;
            v.ever_source = v.source;
            v.ever_line = v.source_line;
            auto w = widths_.find(var);
            v.width = w != widths_.end() ? w->second : 64;
            (*state)[var] = v;
          } else if (emit && out_params_.count(var) != 0) {
            // `fread(v, sizeof(*v), 1, f)` through a pointer parameter:
            // the caller's pointee is now untrusted input.
            def_->params[out_params_[var]].taint_out = true;
          }
          continue;
        }
        if (!addressed) continue;
        if (is_reader) {
          TaintVal v;
          v.origin = TaintOrigin::kCalleeOut;
          v.source = callee;
          v.source_line = t->line;
          v.guard_param = static_cast<int>(a);
          v.ever_origin = v.origin;
          v.ever_source = v.source;
          v.ever_line = v.source_line;
          v.ever_guard_param = v.guard_param;
          auto w = widths_.find(var);
          v.width = w != widths_.end() ? w->second : ReaderWidth(callee);
          (*state)[var] = v;
        } else {
          state->erase(var);
        }
      }
      // Do NOT skip the argument tokens: calls nested inside macro
      // wrappers (`ALICOCO_RETURN_NOT_OK(ReadU32(f, &n))`) and `if`
      // conditions are sources too.
    }
  }

  /// Cap sanitizer: a tracked variable compared against a constant-shaped
  /// operand is bounded from here on, and its live taint dies. This is
  /// deliberately branch-insensitive — in the enforced idiom the failing
  /// branch returns Corruption immediately, and the imprecision on that
  /// branch errs toward missed findings, never false ones.
  void ScanComparisons(const Stmt& stmt, TaintState* state) {
    for (size_t j = stmt.begin; j + 1 < stmt.end && j + 1 < code_.size();
         ++j) {
      const Token* t = code_[j];
      if (!IsPunct(t, "<") && !IsPunct(t, ">")) continue;
      size_t rhs = j + 1;
      if (IsPunct(code_[rhs], "=")) ++rhs;  // <= / >=
      if (rhs >= stmt.end) continue;
      const Token* left = j > stmt.begin ? code_[j - 1] : nullptr;
      const Token* right = code_[rhs];
      // A container-extent call (`table.size()`) bounds the compared
      // value just like a compile-time cap — the bound is dynamic, but
      // an index checked against it cannot run off the container.
      auto is_extent_call = [&](size_t tok) {
        return IsIdentTok(code_[tok]) &&
               (IsPunct(At(tok + 1), ".") || IsPunct(At(tok + 1), "->")) &&
               IsIdentTok(At(tok + 2)) &&
               (At(tok + 2)->text == "size" || At(tok + 2)->text == "length") &&
               IsPunct(At(tok + 3), "(");
      };
      auto cap = [&](const Token* var_tok, const Token* cap_tok,
                     bool extent) {
        if (!IsIdentTok(var_tok)) return;
        if (!extent && !IsConstantShaped(cap_tok)) return;
        auto it = state->find(var_tok->text);
        if (it == state->end()) return;
        it->second.origin = TaintOrigin::kNone;
        it->second.params = 0;
        it->second.bounded = true;
        it->second.bound = extent ? 0 : LiteralValue(cap_tok);
      };
      cap(left, right, is_extent_call(rhs));
      cap(right, left, j >= stmt.begin + 5 && IsPunct(code_[j - 1], ")") &&
                           is_extent_call(j - 5));
    }
  }

  /// Handles `T x = expr`, `x = expr`, `x op= expr`, and `*p = expr`.
  TaintState ApplyAssignment(const Stmt& stmt, TaintState state, bool emit) {
    // Find the first top-level plain `=`.
    int nest = 0;
    size_t eq = stmt.end;
    std::string compound;
    for (size_t j = stmt.begin; j < stmt.end && j < code_.size(); ++j) {
      const Token* t = code_[j];
      if (IsPunct(t, "(") || IsPunct(t, "{") || IsPunct(t, "[")) ++nest;
      if (IsPunct(t, ")") || IsPunct(t, "}") || IsPunct(t, "]")) --nest;
      if (nest != 0 || !IsPunct(t, "=")) continue;
      const Token* prev = j > stmt.begin ? code_[j - 1] : nullptr;
      const Token* next = At(j + 1);
      if (IsPunct(next, "=")) {
        ++j;
        continue;  // ==
      }
      if (IsPunct(prev, "=") || IsPunct(prev, "!") || IsPunct(prev, "<") ||
          IsPunct(prev, ">")) {
        continue;  // ==, !=, <=, >= (lexer splits them)
      }
      if (IsPunct(prev, "+") || IsPunct(prev, "-") || IsPunct(prev, "*") ||
          IsPunct(prev, "/") || IsPunct(prev, "%") || IsPunct(prev, "&") ||
          IsPunct(prev, "|") || IsPunct(prev, "^")) {
        compound = prev->text;
        eq = j;
        break;
      }
      eq = j;
      break;
    }
    if (eq >= stmt.end) {
      // Declarations without initializers still record widths:
      // `uint32_t count;` then `ReadU32(f, &count)` must know the width.
      RecordDeclWidth(stmt.begin, stmt.end);
      return state;
    }

    const size_t lhs_end = compound.empty() ? eq : eq - 1;
    const Token* lhs_last = lhs_end > stmt.begin ? code_[lhs_end - 1] : nullptr;
    if (!IsIdentTok(lhs_last)) return state;
    const std::string var = lhs_last->text;

    std::string rep;
    TaintVal val = EvalRange(eq + 1, stmt.end, state, &rep);

    // `*p = tainted` through an out-parameter: record taint-out. Only a
    // live builtin source counts — chained conventional taint would need
    // its own guard, and the direct shape is what the real readers use.
    if (lhs_end == stmt.begin + 2 && IsPunct(code_[stmt.begin], "*") &&
        out_params_.count(var) != 0) {
      if (emit && val.origin == TaintOrigin::kBuiltin) {
        def_->params[out_params_[var]].taint_out = true;
      }
      return state;
    }

    // Subscripted / member LHS (`v[i] = ...`, `s.field = ...`): the write
    // target is untracked, but the RHS scan above still fed sink checks.
    const Token* before = lhs_end >= stmt.begin + 2 ? code_[lhs_end - 2] : nullptr;
    if (IsPunct(before, ".") || IsPunct(before, "->") ||
        IsPunct(before, "::") || IsPunct(before, "]")) {
      return state;
    }

    // Declaration prefix gives the declared width; truncation to a
    // narrower type keeps the taint but narrows the lattice width.
    int declared = 0;
    for (size_t j = stmt.begin; j + 1 < lhs_end; ++j) {
      if (IsIdentTok(code_[j])) {
        const int w = IntWidth(code_[j]->text);
        if (w != 0) declared = w;
      }
    }
    if (declared != 0) {
      widths_[var] = declared;
      val.width = declared;
    } else {
      auto w = widths_.find(var);
      if (w != widths_.end()) val.width = w->second;
    }

    if (!compound.empty()) {
      auto it = state.find(var);
      if (it != state.end()) {
        val = JoinVal(it->second, val);
      }
    }
    if (val.Interesting()) {
      state[var] = val;
    } else {
      state.erase(var);
    }
    return state;
  }

  void RecordDeclWidth(size_t begin, size_t end) {
    int width = 0;
    for (size_t j = begin; j < end && j < code_.size(); ++j) {
      const Token* t = code_[j];
      if (IsIdentTok(t)) {
        const int w = IntWidth(t->text);
        if (w != 0) {
          width = w;
        } else if (width != 0 && (IsPunct(At(j + 1), ";") ||
                                  IsPunct(At(j + 1), ",") ||
                                  IsPunct(At(j + 1), ")"))) {
          widths_[t->text] = width;
        }
      }
    }
  }

  /// All sink shapes. Parameter-derived hits (no live taint) become
  /// taint_sink_mask facts on the definition instead of findings.
  void ScanSinks(const Stmt& stmt, bool loop_cond, const TaintState& state,
                 bool emit) {
    for (size_t j = stmt.begin; j < stmt.end && j < code_.size(); ++j) {
      const Token* t = code_[j];
      // `.resize(n)` / `.reserve(n)` / `.assign(n, fill)`.
      if ((IsPunct(t, ".") || IsPunct(t, "->")) && IsIdentTok(At(j + 1)) &&
          IsPunct(At(j + 2), "(")) {
        const std::string& m = At(j + 1)->text;
        if (m == "resize" || m == "reserve" || m == "assign") {
          auto pieces = ArgPieces(j + 2, stmt.end);
          if (!pieces.empty()) {
            SinkHit(kTaintSinkAlloc, m + "()", code_[j]->line,
                    pieces[0].first, pieces[0].second, state, emit);
          }
        }
        continue;
      }
      // `new T[n]`.
      if (IsIdent(t, "new")) {
        size_t k = j + 1;
        while (k < stmt.end && (IsIdentTok(code_[k]) ||
                                IsPunct(code_[k], "::") ||
                                IsPunct(code_[k], "<") ||
                                IsPunct(code_[k], ">"))) {
          ++k;
        }
        if (k < stmt.end && IsPunct(code_[k], "[")) {
          size_t close = MatchBalanced(k, "[", "]", stmt.end);
          SinkHit(kTaintSinkAlloc, "new[]", code_[k]->line, k + 1, close - 1,
                  state, emit);
          j = close - 1;
        }
        continue;
      }
      if (!IsIdentTok(t)) continue;
      const Token* prev = j > 0 ? code_[j - 1] : nullptr;
      // Subscript on a tracked-or-any container: `v[expr]`.
      if (IsPunct(At(j + 1), "[") && !IsPunct(prev, "new") &&
          !IsIdent(prev, "new")) {
        size_t close = MatchBalanced(j + 1, "[", "]", stmt.end);
        SinkHit(kTaintSinkIndex, "container index", code_[j]->line, j + 2,
                close - 1, state, emit);
        continue;
      }
      if (!IsPunct(At(j + 1), "(")) continue;
      if (IsPunct(prev, ".") || IsPunct(prev, "->")) continue;
      const std::string& callee = t->text;
      auto pieces = ArgPieces(j + 1, stmt.end);
      auto arg_sink = [&](size_t idx, const char* what) {
        if (idx < pieces.size()) {
          SinkHit(kTaintSinkAlloc, what, t->line, pieces[idx].first,
                  pieces[idx].second, state, emit);
        }
      };
      if (callee == "malloc") arg_sink(0, "malloc()");
      if (callee == "calloc") {
        arg_sink(0, "calloc()");
        arg_sink(1, "calloc()");
      }
      if (callee == "memcpy" || callee == "memmove" || callee == "memset") {
        arg_sink(2, (callee + "() length").c_str());
      }
      if (callee == "fread" || callee == "fwrite") {
        arg_sink(2, (callee + "() count").c_str());
      }
      // Container construction: `std::vector<T> v(n)` — the identifier
      // before the name is the container type (or its closing '>').
      if (IsPunct(prev, ">") ||
          (IsIdentTok(prev) && IsContainerTypeName(prev->text))) {
        bool container = IsIdentTok(prev) && IsContainerTypeName(prev->text);
        if (IsPunct(prev, ">")) {
          size_t back = j - 1;
          int depth = 0;
          while (back > stmt.begin) {
            if (IsPunct(code_[back], ">")) ++depth;
            if (IsPunct(code_[back], "<") && --depth == 0) break;
            --back;
          }
          if (back > stmt.begin && IsIdentTok(code_[back - 1]) &&
              IsContainerTypeName(code_[back - 1]->text)) {
            container = true;
          }
        }
        if (container && !pieces.empty()) {
          SinkHit(kTaintSinkAlloc, "container construction", t->line,
                  pieces[0].first, pieces[0].second, state, emit);
        }
      }
    }

    // Loop bounds: `i < n` / `i <= n` / `i != n` in a loop-header
    // condition with n untrusted.
    if (loop_cond) {
      for (size_t j = stmt.begin; j + 1 < stmt.end && j + 1 < code_.size();
           ++j) {
        const Token* t = code_[j];
        const bool lt = IsPunct(t, "<") && !IsPunct(At(j + 1), "<");
        const bool ne = IsPunct(t, "!") && IsPunct(At(j + 1), "=");
        if (!lt && !ne) continue;
        size_t rhs = j + 1;
        if (IsPunct(code_[rhs], "=")) ++rhs;
        // The bound expression runs to the next top-level && / || / ;.
        size_t end = rhs;
        int nest = 0;
        while (end < stmt.end) {
          const Token* e = code_[end];
          if (IsPunct(e, "(") || IsPunct(e, "[")) ++nest;
          if (IsPunct(e, ")") || IsPunct(e, "]")) --nest;
          if (nest == 0 && (IsPunct(e, "&") || IsPunct(e, "|")) &&
              At(end + 1) != nullptr && e->text == At(end + 1)->text) {
            break;
          }
          if (nest < 0) break;
          ++end;
        }
        SinkHit(kTaintSinkIndex, "loop bound", code_[j]->line, rhs, end,
                state, emit);
      }
    }
  }

  /// `return expr;` with a live-tainted expression marks the definition
  /// returns_tainted, so `x = ThisFn(...)` taints x in callers.
  void ScanReturn(const Stmt& stmt, const TaintState& state, bool emit) {
    if (stmt.kind != StmtKind::kReturn || !emit) return;
    if (stmt.begin >= code_.size() || !IsIdent(code_[stmt.begin], "return")) {
      return;
    }
    TaintVal val = EvalRange(stmt.begin + 1, stmt.end, state);
    if (val.origin == TaintOrigin::kBuiltin) def_->returns_tainted = true;
  }

  /// Records TaintCallArg facts: single-identifier arguments with live
  /// taint or a parameter pedigree, passed to a resolvable project callee.
  void RecordCallArgs(const Stmt& stmt, const TaintState& state) {
    for (size_t j = stmt.begin; j < stmt.end && j < code_.size(); ++j) {
      const Token* t = code_[j];
      if (!IsIdentTok(t) || !IsPunct(At(j + 1), "(")) continue;
      const std::string& callee = t->text;
      // Skip keywords, macros (ALL_CAPS), builtins the sink scan owns,
      // and std-qualified names.
      if (callee == "if" || callee == "while" || callee == "for" ||
          callee == "switch" || callee == "return" || callee == "sizeof" ||
          callee == "static_cast") {
        continue;
      }
      bool all_caps = true;
      for (char c : callee) {
        if (std::islower(static_cast<unsigned char>(c))) all_caps = false;
      }
      if (all_caps) continue;
      const Token* prev = j > 0 ? code_[j - 1] : nullptr;
      CallKind kind = CallKind::kPlain;
      std::string qualifier;
      if (IsPunct(prev, "::")) {
        if (j < 2 || !IsIdentTok(code_[j - 2])) continue;
        if (code_[j - 2]->text == "std") continue;
        kind = CallKind::kQualified;
        qualifier = code_[j - 2]->text;
      } else if (IsPunct(prev, ".") || IsPunct(prev, "->")) {
        if (j >= 2 && IsIdent(code_[j - 2], "this")) {
          kind = CallKind::kThis;
        } else {
          kind = CallKind::kMember;
        }
      }
      auto pieces = ArgPieces(j + 1, stmt.end);
      for (size_t a = 0; a < pieces.size(); ++a) {
        auto [pb, pe] = pieces[a];
        if (pe != pb + 1 || !IsIdentTok(code_[pb])) continue;
        auto it = state.find(code_[pb]->text);
        if (it == state.end()) continue;
        const TaintVal& v = it->second;
        if (v.origin == TaintOrigin::kNone && v.params == 0) continue;
        TaintCallArg rec;
        rec.line = t->line;
        rec.caller = fn_.name;
        rec.caller_class = fn_.class_name;
        rec.callee = callee;
        rec.kind = kind;
        rec.qualifier = qualifier;
        rec.arg_index = static_cast<int>(a);
        rec.var = code_[pb]->text;
        rec.origin = v.origin;
        rec.source = v.source;
        rec.source_line = v.source_line;
        rec.guard_param = v.guard_param;
        rec.param_mask = v.params;
        if (seen_call_args_
                .insert(callee + "#" + std::to_string(rec.line) + "#" +
                        std::to_string(a) + "#" + rec.var)
                .second) {
          summary_->taint_calls.push_back(std::move(rec));
        }
      }
    }
  }

  void SinkHit(uint8_t kind, const std::string& what, int line, size_t begin,
               size_t end, const TaintState& state, bool emit) {
    std::string rep;
    const TaintVal val = EvalRange(begin, end, state, &rep);
    if (rep.empty() && begin < end && begin < code_.size()) {
      rep = code_[begin]->text;
    }
    if (!emit) return;

    if (val.mul_line != 0) {
      const std::string msg =
          "32-bit product on line " + std::to_string(val.mul_line) +
          " involves untrusted input (" + val.ever_source + ") and feeds " +
          what + " without widening; cast an operand to size_t or uint64_t "
          "before multiplying";
      EmitOrPend(kRuleMul, val.mul_line, msg, val.ever_origin,
                 val.ever_source, val.ever_guard_param);
    }
    if (val.origin != TaintOrigin::kNone) {
      const char* rule = kind == kTaintSinkAlloc ? kRuleAlloc : kRuleIndex;
      const std::string use = kind == kTaintSinkAlloc
                                  ? "reaches " + what
                                  : "is used as a " + what;
      const std::string msg =
          "'" + rep + "' carries untrusted input (" + val.source + ", line " +
          std::to_string(val.source_line) + ") and " + use +
          " without a dominating range check; compare it against a "
          "compile-time cap first";
      EmitOrPend(rule, line, msg, val.origin, val.source, val.guard_param);
    }
    if (val.origin == TaintOrigin::kNone && val.params != 0) {
      for (uint32_t i = 0; i < 32; ++i) {
        if ((val.params & (1u << i)) == 0) continue;
        if (i < def_->params.size()) {
          def_->params[i].taint_sink_mask |= kind;
        }
      }
    }
  }

  void EmitOrPend(const std::string& rule, int line, const std::string& msg,
                  TaintOrigin origin, const std::string& guard,
                  int guard_param) {
    if (!reported_.insert(rule + "#" + std::to_string(line)).second) return;
    if (origin == TaintOrigin::kBuiltin) {
      findings_->push_back(Finding{path_, line, rule, msg});
      return;
    }
    PendingTaintFinding pending;
    pending.line = line;
    pending.rule = rule;
    pending.message = msg;
    pending.guard_callee = guard;
    pending.guard_param = origin == TaintOrigin::kCalleeOut ? guard_param : -1;
    summary_->taint_pending.push_back(std::move(pending));
  }

  const std::string& path_;
  const std::vector<const Token*>& code_;
  const FunctionBody& fn_;
  FileSummary* summary_;
  std::vector<Finding>* findings_;
  DeclInfo* def_ = nullptr;
  TaintState boundary_;
  std::map<std::string, int> widths_;
  std::map<std::string, size_t> out_params_;
  std::set<std::string> reported_;
  std::set<std::string> seen_call_args_;
};

/// Loop-header blocks: a back edge points at them (a predecessor created
/// later), or — for do-while latches — they jump back to an earlier body.
std::vector<bool> LoopHeaderBlocks(const Cfg& cfg) {
  std::vector<bool> header(cfg.blocks.size(), false);
  for (const BasicBlock& b : cfg.blocks) {
    for (int p : b.preds) {
      if (p > b.id) header[b.id] = true;
    }
    for (int s : b.succs) {
      if (s < b.id && s != cfg.exit) header[b.id] = true;
    }
  }
  return header;
}

}  // namespace

void CheckTaintFlow(const std::string& path,
                    const std::vector<const Token*>& code,
                    const FunctionBody& fn, const Cfg& cfg,
                    FileSummary* summary, std::vector<Finding>* out) {
  if (cfg.fell_back) return;
  Analysis analysis(path, code, fn, summary, out);
  if (!analysis.usable()) return;
  const std::vector<bool> headers = LoopHeaderBlocks(cfg);
  auto result = SolveForward<TaintState>(
      cfg, analysis.boundary(), JoinState,
      [&](const BasicBlock& block, TaintState state) {
        for (const Stmt& s : block.stmts) {
          const bool loop_cond =
              s.kind == StmtKind::kCond && headers[block.id];
          state = analysis.TransferStmt(s, loop_cond, std::move(state),
                                        /*emit=*/false);
        }
        return state;
      });
  for (const BasicBlock& block : cfg.blocks) {
    if (!result.reached[block.id]) continue;
    TaintState state = result.in[block.id];
    for (const Stmt& s : block.stmts) {
      const bool loop_cond = s.kind == StmtKind::kCond && headers[block.id];
      state = analysis.TransferStmt(s, loop_cond, std::move(state),
                                    /*emit=*/true);
    }
  }
}

void RunTaintChecks(const std::string& path,
                    const std::vector<const Token*>& code,
                    const std::vector<FunctionBody>& functions,
                    FileSummary* summary) {
  std::vector<Finding> findings;
  for (const FunctionBody& fn : functions) {
    const Cfg cfg = BuildCfg(code, fn.body_begin, fn.body_end);
    CheckTaintFlow(path, code, fn, cfg, summary, &findings);
  }
  summary->findings.insert(summary->findings.end(), findings.begin(),
                           findings.end());
}

// ---------------------------------------------------------------------------
// Cross-file composition.

namespace {

struct DefSet {
  std::vector<const DeclInfo*> defs;
  /// AND over every definition's per-parameter sink mask — unanimity, so
  /// overloads with different meanings cannot false-positive. Grows
  /// during the bottom-up fixpoint.
  std::vector<uint8_t> sink_mask;
};

std::string KeyOfDecl(const DeclInfo& d) {
  return d.class_name.empty() ? d.name : d.class_name + "::" + d.name;
}

}  // namespace

std::vector<Finding> RunTaintPass(const ProjectIndex& index,
                                  TaintStats* stats) {
  std::map<std::string, DefSet> by_key;
  std::map<std::string, std::vector<const DeclInfo*>> by_name;
  std::map<std::string, std::set<std::string>> method_classes;
  for (const FileSummary& f : index.files()) {
    for (const DeclInfo& d : f.decls) {
      if (!d.has_body) continue;
      by_key[KeyOfDecl(d)].defs.push_back(&d);
      by_name[d.name].push_back(&d);
      if (!d.class_name.empty()) method_classes[d.name].insert(d.class_name);
    }
  }
  for (auto& [key, set] : by_key) {
    size_t nparams = set.defs.front()->params.size();
    for (const DeclInfo* d : set.defs) {
      nparams = std::min(nparams, d->params.size());
    }
    set.sink_mask.assign(nparams, 0);
    for (size_t i = 0; i < nparams; ++i) {
      uint8_t mask = 0xFF;
      for (const DeclInfo* d : set.defs) mask &= d->params[i].taint_sink_mask;
      set.sink_mask[i] = mask;
    }
  }

  // A Read*/Parse*-named guard with no project definition is believed
  // (the naming convention is the contract for externs); a resolved guard
  // must taint in EVERY definition before its callers' findings fire.
  auto guard_confirms = [&](const std::string& callee, int guard_param) {
    auto it = by_name.find(callee);
    if (it == by_name.end() || it->second.empty()) return true;
    for (const DeclInfo* d : it->second) {
      if (guard_param < 0) {
        if (!d->returns_tainted) return false;
      } else {
        if (static_cast<size_t>(guard_param) >= d->params.size() ||
            !d->params[guard_param].taint_out) {
          return false;
        }
      }
    }
    return true;
  };

  // Candidate definition keys for a call, mirroring CallResolver's
  // per-shape rules over declarations instead of function summaries.
  auto resolve_keys = [&](const TaintCallArg& c) {
    std::vector<std::string> keys;
    auto add = [&](const std::string& key) {
      if (by_key.count(key) != 0) keys.push_back(key);
    };
    switch (c.kind) {
      case CallKind::kPlain:
        if (!c.caller_class.empty()) add(c.caller_class + "::" + c.callee);
        add(c.callee);
        break;
      case CallKind::kThis:
        add(c.caller_class + "::" + c.callee);
        break;
      case CallKind::kQualified:
        add(c.qualifier + "::" + c.callee);
        add(c.callee);
        break;
      case CallKind::kMember: {
        if (StdLikeMethodName(c.callee)) break;
        auto mc = method_classes.find(c.callee);
        if (mc != method_classes.end() && mc->second.size() == 1) {
          add(*mc->second.begin() + "::" + c.callee);
        }
        break;
      }
    }
    return keys;
  };

  auto sink_mask_of = [&](const TaintCallArg& c) -> uint8_t {
    const std::vector<std::string> keys = resolve_keys(c);
    if (keys.empty()) return 0;
    uint8_t mask = 0xFF;
    for (const std::string& key : keys) {
      const DefSet& set = by_key[key];
      const size_t idx = static_cast<size_t>(c.arg_index);
      mask &= idx < set.sink_mask.size() ? set.sink_mask[idx] : 0;
    }
    return mask;
  };

  size_t call_args = 0;
  size_t rounds = 0;

  // Bottom-up fixpoint: a parameter forwarded into a sink parameter is
  // itself a sink parameter.
  bool changed = true;
  while (changed && rounds < 64) {
    changed = false;
    ++rounds;
    for (const FileSummary& f : index.files()) {
      for (const TaintCallArg& c : f.taint_calls) {
        if (rounds == 1) ++call_args;
        if (c.param_mask == 0) continue;
        const uint8_t mask = sink_mask_of(c);
        if (mask == 0) continue;
        const std::string caller_key = c.caller_class.empty()
                                           ? c.caller
                                           : c.caller_class + "::" + c.caller;
        auto it = by_key.find(caller_key);
        if (it == by_key.end()) continue;
        for (uint32_t i = 0; i < 32 && i < it->second.sink_mask.size(); ++i) {
          if ((c.param_mask & (1u << i)) == 0) continue;
          if ((it->second.sink_mask[i] & mask) != mask) {
            it->second.sink_mask[i] |= mask;
            changed = true;
          }
        }
      }
    }
  }

  std::vector<Finding> findings;
  size_t pending = 0;
  for (const FileSummary& f : index.files()) {
    for (const TaintCallArg& c : f.taint_calls) {
      if (c.origin == TaintOrigin::kNone) continue;
      const uint8_t mask = sink_mask_of(c);
      if (mask == 0) continue;
      const bool confirmed =
          c.origin == TaintOrigin::kBuiltin ||
          guard_confirms(c.source,
                         c.origin == TaintOrigin::kCalleeOut ? c.guard_param
                                                             : -1);
      if (!confirmed) continue;
      const bool alloc = (mask & kTaintSinkAlloc) != 0;
      const std::string use =
          alloc ? "an allocation size" : "an index or loop bound";
      findings.push_back(Finding{
          f.path, c.line, alloc ? kRuleAlloc : kRuleIndex,
          "'" + c.var + "' carries untrusted input (" + c.source + ", line " +
              std::to_string(c.source_line) + ") into parameter " +
              std::to_string(c.arg_index) + " of '" + c.callee +
              "', which uses it as " + use +
              " uncapped; compare it against a compile-time cap first"});
    }
    for (const PendingTaintFinding& p : f.taint_pending) {
      ++pending;
      if (!guard_confirms(p.guard_callee, p.guard_param)) continue;
      findings.push_back(Finding{f.path, p.line, p.rule, p.message});
    }
  }

  if (stats != nullptr) {
    stats->call_args = call_args;
    stats->pending = pending;
    stats->sink_params = 0;
    for (const auto& [key, set] : by_key) {
      for (uint8_t m : set.sink_mask) {
        if (m != 0) ++stats->sink_params;
      }
    }
    stats->cost_us = 2 * call_args + pending + 3 * rounds +
                     stats->sink_params;
  }
  return findings;
}

}  // namespace alicoco::lint
