// Blocking-under-lock pass: a blocking operation — condition-variable
// wait, sleep, file/socket I/O, thread join, raw allocation — reachable
// while a mutex is held stretches the critical section across an
// unbounded stall and convoys every other thread behind it. Blocking-ness
// is seeded from a primitive table and propagated bottom-up through the
// resolved call graph, so `Publish() { lock; WriteLog(); }` is caught
// even though only `WriteLog` touches fprintf.
//
// The one sanctioned shape is the condition-wait idiom: a direct
// `cv_.Wait(mu_)` where the waited-on lock is named in the first argument
// and is exactly what is held, or a wait inside a function that declares
// ALICOCO_REQUIRES (a lock-coupled wait primitive like CondVar::Wait
// itself). Waiting is what condition variables are for — the pass flags
// blocking reached *through* calls, plus direct waits whose lock
// coupling it cannot see.

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/passes/interproc.h"
#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

std::string JoinLocks(const std::set<std::string>& locks) {
  std::string out;
  for (const std::string& lock : locks) {
    if (!out.empty()) out += ", ";
    out += "'" + lock + "'";
  }
  return out;
}

std::string JoinChain(const std::vector<std::string>& chain) {
  std::string out;
  for (const std::string& hop : chain) {
    if (!out.empty()) out += " -> ";
    out += hop;
  }
  return out;
}

/// The member name a lock key stands for: "ThreadPool::mu_" -> "mu_".
std::string MemberPart(const std::string& lock_key) {
  size_t pos = lock_key.rfind("::");
  return pos == std::string::npos ? lock_key : lock_key.substr(pos + 2);
}

}  // namespace

std::vector<Finding> RunBlockingLockPass(const ProjectIndex& /*index*/,
                                         const Interproc& interproc) {
  std::vector<Finding> findings;
  for (const FnRef& ref : interproc.functions()) {
    const FunctionSummary& fn = *ref.fn;
    const std::string key = Interproc::KeyOf(fn);
    const std::set<std::string>& entry = interproc.EntryHeld(key);
    for (const CallInfo& call : fn.calls) {
      std::set<std::string> held = interproc.HeldKeys(ref, call.held);
      held.insert(entry.begin(), entry.end());
      if (held.empty()) continue;

      if (const char* kind = BlockingSeedKind(call.callee)) {
        if (IsWaitSeedKind(kind)) {
          // Sanctioned condition-wait idiom: the held lock is the wait's
          // argument, or the function itself is a REQUIRES-annotated
          // wait primitive.
          bool coupled = !interproc.RequiresOf(key).empty();
          for (const std::string& lock : held) {
            if (!call.arg0.empty() && MemberPart(lock) == call.arg0) {
              coupled = true;
            }
          }
          if (coupled) continue;
        }
        Finding f;
        f.file = ref.file->path;
        f.line = call.line;
        f.rule = "blocking-under-lock";
        f.message = "call to '" + call.callee + "' (" + kind +
                    ") while holding " + JoinLocks(held);
        findings.push_back(std::move(f));
        continue;
      }

      // Transitively blocking resolved callee. Deterministic choice when
      // overloads disagree: the lexicographically smallest blocking key.
      std::string blocking_target;
      for (const FnRef& target :
           interproc.resolver().Resolve(call, fn.class_name)) {
        const std::string target_key = Interproc::KeyOf(*target.fn);
        if (target_key == key || !interproc.MayBlock(target_key)) continue;
        if (blocking_target.empty() || target_key < blocking_target) {
          blocking_target = target_key;
        }
      }
      if (blocking_target.empty()) continue;
      Finding f;
      f.file = ref.file->path;
      f.line = call.line;
      f.rule = "blocking-under-lock";
      f.message = "call to '" + call.callee + "' may block (" +
                  JoinChain(interproc.BlockChain(blocking_target)) + ": " +
                  interproc.BlockKind(blocking_target) + ") while holding " +
                  JoinLocks(held);
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

}  // namespace alicoco::lint
