// Include-graph pass: file-level include cycles and module layering.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

/// "src/kg/concept_net.h" -> "kg"; "" when the file sits directly under
/// src/ or outside it (such files still join the file-level graph).
std::string ModuleOf(const std::string& path) {
  std::string rest = path;
  if (StartsWith(rest, "src/")) rest = rest.substr(4);
  size_t slash = rest.find('/');
  if (slash == std::string::npos) return "";
  return rest.substr(0, slash);
}

/// Maps an include as written to an indexed project path, mirroring the
/// build's include directories (repo root and src/). Empty when the
/// include is not first-party.
std::string Resolve(const ProjectIndex& index, const IncludeSite& inc) {
  if (inc.angled) return "";  // system / third-party headers
  if (index.Find(inc.path) != nullptr) return inc.path;
  std::string under_src = "src/" + inc.path;
  if (index.Find(under_src) != nullptr) return under_src;
  return "";
}

std::string DescribeCycle(const std::vector<std::string>& cycle) {
  std::string out;
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) out += " -> ";
    out += cycle[i];
  }
  return out;
}

}  // namespace

std::vector<Finding> RunIncludeGraphPass(const ProjectIndex& index,
                                         const Layers& layers) {
  Digraph file_graph;
  Digraph module_graph;
  // module -> first file of the module, for placing module-scoped findings.
  std::map<std::string, std::string> module_home;

  for (const FileSummary& file : index.files()) {
    file_graph.AddNode(file.path);
    std::string from_module = ModuleOf(file.path);
    if (!from_module.empty()) {
      module_graph.AddNode(from_module);
      auto it = module_home.find(from_module);
      if (it == module_home.end() || file.path < it->second) {
        module_home[from_module] = file.path;
      }
    }
    for (const IncludeSite& inc : file.includes) {
      std::string target = Resolve(index, inc);
      if (target.empty()) continue;
      EdgeSite site{file.path, inc.line};
      file_graph.AddEdge(file.path, target, site);
      std::string to_module = ModuleOf(target);
      if (!from_module.empty() && !to_module.empty() &&
          from_module != to_module) {
        module_graph.AddEdge(from_module, to_module, site);
      }
    }
  }

  std::vector<Finding> findings;

  for (const std::vector<std::string>& cycle : file_graph.Cycles()) {
    const EdgeSite* site = file_graph.FindSite(cycle[0], cycle[1]);
    Finding f;
    f.file = site != nullptr ? site->file : cycle[0];
    f.line = site != nullptr ? site->line : 1;
    f.rule = "include-cycle";
    f.message = "include cycle: " + DescribeCycle(cycle);
    findings.push_back(std::move(f));
  }

  // Undeclared modules are reported once each, anchored to the module's
  // lexicographically first file so the finding is stable.
  for (const std::string& module : module_graph.Nodes()) {
    if (layers.RankOf(module) >= 0) continue;
    Finding f;
    f.file = module_home[module];
    f.line = 1;
    f.rule = "layer-violation";
    f.message = "module '" + module +
                "' is not declared in tools/lint/layers.txt";
    findings.push_back(std::move(f));
  }

  for (const std::string& from : module_graph.Nodes()) {
    int from_rank = layers.RankOf(from);
    if (from_rank < 0) continue;
    for (const std::string& to : module_graph.Successors(from)) {
      int to_rank = layers.RankOf(to);
      if (to_rank < 0 || to_rank < from_rank) continue;  // legal or reported
      const EdgeSite* site = module_graph.FindSite(from, to);
      Finding f;
      f.file = site->file;
      f.line = site->line;
      f.rule = "layer-violation";
      if (to_rank == from_rank) {
        f.message = "modules '" + from + "' and '" + to +
                    "' share layer " + std::to_string(from_rank) +
                    " and must stay independent";
      } else {
        f.message = "module '" + from + "' (layer " +
                    std::to_string(from_rank) + ") must not depend on '" +
                    to + "' (layer " + std::to_string(to_rank) + ")";
      }
      findings.push_back(std::move(f));
    }
  }

  return findings;
}

}  // namespace alicoco::lint
