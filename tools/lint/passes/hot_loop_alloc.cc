// hot-loop-alloc: allocation inside a loop on a hot path. Three shapes:
//
//   1. a `new` expression at loop depth > 0;
//   2. a std:: container / string / stream constructed per iteration;
//   3. `v.push_back(...)` / `v.emplace_back(...)` growth of a function-
//      local vector that was default-constructed and never `reserve()`d.
//
// "Hot path" means the file lives under src/nn/, src/matching/, or
// src/pipeline/, or the function carries a `// lint:hot` marker. The check
// reads loop depth straight off the CFG statements, so allocations in a
// lambda body nested inside a loop statement are attributed to the loop.

#include <set>
#include <string>
#include <vector>

#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

bool IsIdentTok(const Token* t) {
  return t != nullptr && t->kind == TokenKind::kIdentifier;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

bool IsHotPath(const std::string& path) {
  return path.rfind("src/nn/", 0) == 0 || path.rfind("src/matching/", 0) == 0 ||
         path.rfind("src/pipeline/", 0) == 0;
}

bool IsContainerType(const std::string& name) {
  static const std::set<std::string> kTypes = {
      "string",        "vector",        "map",
      "set",           "unordered_map", "unordered_set",
      "deque",         "list",          "ostringstream",
      "stringstream"};
  return kTypes.count(name) != 0;
}

/// Matches `std :: <name>` ending at index `j` of the name.
bool StdName(const std::vector<const Token*>& code, size_t j,
             std::string* name) {
  if (!IsIdentTok(code[j])) return false;
  if (j < 2) return false;
  if (!IsPunct(code[j - 1], "::")) return false;
  const Token* root = code[j - 2];
  if (!IsIdentTok(root) || root->text != "std") return false;
  *name = code[j]->text;
  return true;
}

class Analysis {
 public:
  Analysis(const std::string& path, const std::vector<const Token*>& code)
      : path_(path), code_(code) {}

  /// Pre-pass over the whole body: find function-local vectors that are
  /// default-constructed, and whether each name ever sees a `.reserve(`.
  void IndexVectors(const Cfg& cfg) {
    for (const BasicBlock& b : cfg.blocks) {
      for (const Stmt& s : b.stmts) {
        for (size_t j = s.begin; j < s.end; ++j) {
          std::string std_name;
          if (StdName(code_, j, &std_name) && std_name == "vector") {
            RecordVectorDecl(s, j);
            continue;
          }
          const Token* t = code_[j];
          if (IsIdentTok(t) && j + 3 < s.end &&
              (IsPunct(code_[j + 1], ".") || IsPunct(code_[j + 1], "->")) &&
              IsIdentTok(code_[j + 2]) && code_[j + 2]->text == "reserve" &&
              IsPunct(code_[j + 3], "(")) {
            reserved_.insert(t->text);
          }
        }
      }
    }
  }

  void CheckStmt(const Stmt& stmt, std::vector<Finding>* out) {
    if (stmt.loop_depth <= 0) return;
    for (size_t j = stmt.begin; j < stmt.end; ++j) {
      const Token* t = code_[j];
      if (!IsIdentTok(t)) continue;
      const Token* prev = j > 0 ? code_[j - 1] : nullptr;

      // Shape 1: `new` inside a loop. `operator new` overloads and
      // placement-new land here too; both still allocate per iteration.
      if (t->text == "new" && !IsPunct(prev, "::")) {
        Report(out, t->line,
               "heap allocation ('new') inside a loop on a hot path; hoist "
               "the allocation or use an arena");
        continue;
      }
      if (t->text == "make_unique" || t->text == "make_shared") {
        Report(out, t->line, "heap allocation ('std::" + t->text +
                                 "') inside a loop on a hot path; hoist the "
                                 "allocation or use an arena");
        continue;
      }

      // Shape 2: a std container constructed per iteration.
      std::string std_name;
      if (StdName(code_, j, &std_name) && IsContainerType(std_name)) {
        // Only a *declaration* counts: skip the template-arg list, then
        // require an identifier not preceded by `&`/`*` (references and
        // pointers don't construct) and not `static` (constructed once).
        size_t k = SkipTemplateArgs(stmt, j + 1);
        if (k < stmt.end && IsIdentTok(code_[k]) && !IsStaticDecl(stmt, j)) {
          Report(out, code_[k]->line,
                 "std::" + std_name + " '" + code_[k]->text +
                     "' is constructed every loop iteration; declare it "
                     "before the loop and clear() it instead");
        }
        continue;
      }

      // Shape 3: growing an un-reserve()d local vector.
      if (j + 3 < stmt.end && IsPunct(code_[j + 1], ".") &&
          IsIdentTok(code_[j + 2]) &&
          (code_[j + 2]->text == "push_back" ||
           code_[j + 2]->text == "emplace_back") &&
          IsPunct(code_[j + 3], "(") && !IsPunct(prev, ".") &&
          !IsPunct(prev, "->") && default_vectors_.count(t->text) != 0 &&
          reserved_.count(t->text) == 0) {
        Report(out, t->line,
               "'" + t->text + "." + code_[j + 2]->text +
                   "' grows an un-reserve()d vector inside a loop; call "
                   "reserve() before the loop");
        j += 3;
        continue;
      }
    }
  }

 private:
  /// `std::vector<...> name;` / `= {}` / `{}` with no size argument —
  /// i.e. a vector that starts empty and will reallocate as it grows.
  void RecordVectorDecl(const Stmt& stmt, size_t j) {
    size_t k = SkipTemplateArgs(stmt, j + 1);
    if (k >= stmt.end || !IsIdentTok(code_[k])) return;
    const std::string& name = code_[k]->text;
    const Token* after = k + 1 < stmt.end ? code_[k + 1] : nullptr;
    bool empty_init = after == nullptr || IsPunct(after, ";");
    if (IsPunct(after, "{") && k + 2 < stmt.end && IsPunct(code_[k + 2], "}")) {
      empty_init = true;
    }
    if (IsPunct(after, "=") && k + 3 < stmt.end && IsPunct(code_[k + 2], "{") &&
        IsPunct(code_[k + 3], "}")) {
      empty_init = true;
    }
    if (empty_init) default_vectors_.insert(name);
  }

  size_t SkipTemplateArgs(const Stmt& stmt, size_t k) const {
    if (k >= stmt.end || !IsPunct(code_[k], "<")) return k;
    int angle = 0;
    for (; k < stmt.end; ++k) {
      if (IsPunct(code_[k], "<")) ++angle;
      if (IsPunct(code_[k], ">")) {
        if (--angle == 0) return k + 1;
      }
    }
    return stmt.end;
  }

  bool IsStaticDecl(const Stmt& stmt, size_t std_index) const {
    for (size_t j = stmt.begin; j < std_index; ++j) {
      if (IsIdentTok(code_[j]) &&
          (code_[j]->text == "static" || code_[j]->text == "thread_local")) {
        return true;
      }
    }
    return false;
  }

  void Report(std::vector<Finding>* out, int line, std::string message) {
    if (!reported_.insert(std::to_string(line) + "#" + message).second) return;
    out->push_back(
        Finding{path_, line, "hot-loop-alloc", std::move(message)});
  }

  const std::string& path_;
  const std::vector<const Token*>& code_;
  std::set<std::string> default_vectors_;
  std::set<std::string> reserved_;
  std::set<std::string> reported_;
};

}  // namespace

void CheckHotLoopAlloc(const std::string& path,
                       const std::vector<const Token*>& code,
                       const FunctionBody& fn, const Cfg& cfg,
                       std::vector<Finding>* out) {
  if (cfg.fell_back) return;
  if (!IsHotPath(path) && !fn.hot) return;
  Analysis analysis(path, code);
  analysis.IndexVectors(cfg);
  for (const BasicBlock& block : cfg.blocks) {
    for (const Stmt& s : block.stmts) analysis.CheckStmt(s, out);
  }
}

}  // namespace alicoco::lint
