// use-after-move: forward may-analysis over the function CFG. A variable
// moved via `std::move(x)` is poisoned; using it on any path before a
// reassignment (or clear/reset/assign/resize/swap, a fresh declaration, or
// having its address taken as an out-param) is a finding. The state merges
// over branches AND loop back-edges, so moving in iteration N and reading
// at the top of iteration N+1 is caught.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/dataflow.h"
#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

bool IsIdentTok(const Token* t) {
  return t != nullptr && t->kind == TokenKind::kIdentifier;
}

bool IsIdent(const Token* t, std::string_view text) {
  return IsIdentTok(t) && t->text == text;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

bool IsRevalidatingMethod(const std::string& name) {
  return name == "clear" || name == "reset" || name == "assign" ||
         name == "resize" || name == "swap";
}

/// var -> line of the poisoning std::move. Join keeps the earliest line so
/// the reported provenance is deterministic regardless of merge order.
using MovedState = std::map<std::string, int>;

MovedState Join(const MovedState& a, const MovedState& b) {
  MovedState out = a;
  for (const auto& [var, line] : b) {
    auto it = out.find(var);
    if (it == out.end() || line < it->second) out[var] = line;
  }
  return out;
}

class Analysis {
 public:
  Analysis(const std::string& path, const std::vector<const Token*>& code)
      : path_(path), code_(code) {}

  const Token* At(size_t i) const {
    return i < code_.size() ? code_[i] : nullptr;
  }

  /// Index one past the group opened at `i`, or `stop` when unbalanced.
  size_t MatchBalanced(size_t i, std::string_view open, std::string_view close,
                       size_t stop) const {
    int depth = 0;
    for (; i < stop; ++i) {
      if (IsPunct(code_[i], open)) ++depth;
      if (IsPunct(code_[i], close) && --depth == 0) return i + 1;
    }
    return stop;
  }

  /// One statement's transfer function. With `out` set, poisoned uses are
  /// reported; the state update is identical either way (a reported use
  /// un-poisons the variable so one bug yields one finding, and the solve
  /// and emit phases stay in sync).
  MovedState TransferStmt(const Stmt& stmt, MovedState state,
                          std::vector<Finding>* out) {
    bool has_ternary = false;
    for (size_t j = stmt.begin; j < stmt.end; ++j) {
      if (IsPunct(code_[j], "?")) has_ternary = true;
    }
    std::set<std::string> moved_this_stmt;

    for (size_t j = stmt.begin; j < stmt.end && j < code_.size(); ++j) {
      const Token* t = code_[j];

      // A lambda introduces its own scope: init-captures shadow enclosing
      // names (`[x = std::move(x)]` moves into a NEW x) and by-ref capture
      // uses are invisible here. Skipping the whole lambda trades missed
      // findings inside it for zero false ones outside — the safe side.
      if (IsPunct(t, "[")) {
        size_t close = MatchBalanced(j, "[", "]", stmt.end);
        const Token* after = close < stmt.end ? code_[close] : nullptr;
        if (IsPunct(after, "(") || IsPunct(after, "{")) {
          size_t k = close;
          if (IsPunct(code_[k], "(")) {
            k = MatchBalanced(k, "(", ")", stmt.end);
          }
          while (k < stmt.end && !IsPunct(code_[k], "{")) ++k;
          if (k < stmt.end) k = MatchBalanced(k, "{", "}", stmt.end);
          j = k - 1;  // loop ++j lands one past the lambda
          continue;
        }
      }
      if (!IsIdentTok(t)) continue;

      // `std::move(x)`: poison x. A move of an already-poisoned x is
      // itself a use and reported like one.
      if (t->text == "std" && IsPunct(At(j + 1), "::") &&
          IsIdent(At(j + 2), "move") && IsPunct(At(j + 3), "(") &&
          IsIdentTok(At(j + 4)) && IsPunct(At(j + 5), ")")) {
        const std::string& var = At(j + 4)->text;
        auto it = state.find(var);
        if (it != state.end()) {
          Report(out, *At(j + 4), var, it->second);
          state.erase(it);
        }
        state[var] = At(j + 4)->line;
        moved_this_stmt.insert(var);
        j += 5;
        continue;
      }

      const Token* prev = j > 0 ? code_[j - 1] : nullptr;
      const Token* next = At(j + 1);

      // Member / qualified names that merely share the spelling.
      if (IsPunct(prev, ".") || IsPunct(prev, "->") || IsPunct(prev, "::")) {
        continue;
      }

      // Kills, checked before the use test so `x = ...` never reports.
      // Plain reassignment: `x = ...` but not `x == ...`.
      if (IsPunct(next, "=") && !IsPunct(At(j + 2), "=") &&
          !IsPunct(prev, "=") && !IsPunct(prev, "!") && !IsPunct(prev, "<") &&
          !IsPunct(prev, ">")) {
        state.erase(t->text);
        continue;
      }
      // A (re)declaration: `Type x`, `auto& x`, `Foo* x`,
      // `std::vector<T> x`, or a declaring macro (`ASSIGN_OR_RETURN(T x,
      // ...)`) rebinds the name.
      {
        size_t back = j;
        while (back > 0 && (IsPunct(code_[back - 1], "&") ||
                            IsPunct(code_[back - 1], "*"))) {
          --back;
        }
        if (back > 0 && back != j && IsIdentTok(code_[back - 1])) {
          state.erase(t->text);
          continue;
        }
        const bool decl_prev = IsIdentTok(prev) || IsPunct(prev, ">");
        if (decl_prev &&
            (IsPunct(next, ";") || IsPunct(next, "=") || IsPunct(next, "(") ||
             IsPunct(next, "{") || IsPunct(next, ":") ||
             IsPunct(next, ")") || IsPunct(next, ","))) {
          state.erase(t->text);
          continue;
        }
      }
      // `x.clear()` and friends re-establish a known state.
      if ((IsPunct(next, ".") || IsPunct(next, "->")) && IsIdentTok(At(j + 2)) &&
          IsRevalidatingMethod(At(j + 2)->text) && IsPunct(At(j + 3), "(")) {
        state.erase(t->text);
        j += 2;
        continue;
      }
      // `f(&x)`: address escapes as an out-param; assume reinitialized.
      if (IsPunct(prev, "&") && j >= 2 &&
          (IsPunct(code_[j - 2], "(") || IsPunct(code_[j - 2], ",") ||
           IsPunct(code_[j - 2], "="))) {
        state.erase(t->text);
        continue;
      }
      // `swap(x, y)` / `std::exchange(x, ...)` revalidate their argument.
      if ((t->text == "swap" || t->text == "exchange") &&
          IsPunct(next, "(")) {
        for (size_t k = j + 2; k < stmt.end && !IsPunct(code_[k], ")"); ++k) {
          if (IsIdentTok(code_[k])) state.erase(code_[k]->text);
        }
        continue;
      }

      // Anything else is a use.
      auto it = state.find(t->text);
      if (it == state.end()) continue;
      // Inside a ternary only one arm runs; a same-statement move plus
      // "use" is usually the other arm, so stay silent there.
      if (has_ternary && moved_this_stmt.count(t->text) != 0) continue;
      Report(out, *t, t->text, it->second);
      state.erase(it);
    }
    return state;
  }

  void Report(std::vector<Finding>* out, const Token& at,
              const std::string& var, int moved_line) {
    if (out == nullptr) return;
    if (!reported_.insert(var + "#" + std::to_string(at.line)).second) return;
    out->push_back(Finding{
        path_, at.line, "use-after-move",
        "'" + var + "' is used after being moved (std::move on line " +
            std::to_string(moved_line) + "); reassign or clear it first"});
  }

 private:
  const std::string& path_;
  const std::vector<const Token*>& code_;
  std::set<std::string> reported_;
};

}  // namespace

void CheckUseAfterMove(const std::string& path,
                       const std::vector<const Token*>& code,
                       const FunctionBody& fn, const Cfg& cfg,
                       std::vector<Finding>* out) {
  (void)fn;
  if (cfg.fell_back) return;
  Analysis analysis(path, code);
  auto result = SolveForward<MovedState>(
      cfg, MovedState{}, Join,
      [&](const BasicBlock& block, MovedState state) {
        for (const Stmt& s : block.stmts) {
          state = analysis.TransferStmt(s, std::move(state), nullptr);
        }
        return state;
      });
  // Emit phase: replay each reachable block from its solved IN state.
  for (const BasicBlock& block : cfg.blocks) {
    if (!result.reached[block.id]) continue;
    MovedState state = result.in[block.id];
    for (const Stmt& s : block.stmts) {
      state = analysis.TransferStmt(s, std::move(state), out);
    }
  }
}

}  // namespace alicoco::lint
