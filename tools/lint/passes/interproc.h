// The interprocedural tier under the guarded-by-violation,
// blocking-under-lock, and view-escapes-call passes — plus the call/lock
// resolution machinery the lock-order pass shares.
//
// Interproc::Build condenses the shape-resolved call graph with Tarjan
// SCCs (graph.h) and runs two fixpoints over the condensation:
//
//  - bottom-up (callees first): may-block propagation, seeded from a
//    table of blocking primitives (condition-variable waits, sleeps,
//    file I/O, thread joins, unbounded allocation) and carried through
//    every resolved call edge. Each may-block function keeps a witness
//    chain down to the primitive that started it.
//  - top-down (callers first): the lock set definitely held on entry to
//    each function — the intersection, over every observed call site, of
//    the locks held at that site, unioned with the function's own
//    ALICOCO_REQUIRES contract.
//
// Conservatism rules (see DESIGN.md §4): an unknown callee is assumed
// blocking (its caller is marked may-block) but lock-neutral (it
// contributes nothing to entry sets); a function with no observed call
// sites has an empty entry set, so public API surfaces are never assumed
// to be called under a lock.

#ifndef ALICOCO_TOOLS_LINT_PASSES_INTERPROC_H_
#define ALICOCO_TOOLS_LINT_PASSES_INTERPROC_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/index.h"

namespace alicoco::lint {

/// A function summary with its owning file, the unit every
/// interprocedural pass iterates over.
struct FnRef {
  const FileSummary* file = nullptr;
  const FunctionSummary* fn = nullptr;
};

/// Method names std containers/atomics also expose. A member-access call
/// on an unknown receiver (`finished_.size()`) must not resolve to a
/// project method that happens to share such a name — that is how
/// `Tracer::size()` would grow a phantom edge from every vector.
bool StdLikeMethodName(const std::string& name);

/// Lock identity resolution: a single-identifier lock expression inside a
/// class that declares that mutex member is `Class::member`; otherwise a
/// member name declared by exactly one class resolves to that class;
/// anything else stands for itself verbatim.
std::string LockKey(
    const Acquisition& acq, const std::string& enclosing_class,
    const std::map<std::string, std::set<std::string>>& member_classes);

/// Resolves one call to candidate project functions, per CallKind:
/// plain calls see free functions plus the enclosing class's methods;
/// `this->` calls see the enclosing class only; `Q::` calls see Q's
/// methods plus free functions (Q may be a namespace); member-access
/// calls on unknown receivers resolve only when exactly one class defines
/// the method and the name is not std-container-like — anything more
/// aggressive invents findings out of name collisions.
class CallResolver {
 public:
  explicit CallResolver(const std::vector<FnRef>& all_fns);

  std::vector<FnRef> Resolve(const CallInfo& call,
                             const std::string& enclosing_class) const;

 private:
  std::map<std::string, std::vector<FnRef>> free_fns_;
  std::map<std::string, std::vector<FnRef>> methods_;
  std::map<std::string, std::set<std::string>> method_classes_;
};

/// The blocking seed table: primitive name -> human-readable kind
/// ("condition-variable wait", "sleep", "file I/O", "thread join",
/// "unbounded allocation"), or nullptr for names not seeded. Exposed so
/// tests can pin the seeded-vs-propagated split.
const char* BlockingSeedKind(const std::string& callee);

/// Seed kinds that name a condition-variable wait — the one blocking
/// primitive with a sanctioned direct-use idiom (`cv_.Wait(mu_)` with the
/// held lock as the argument, or inside an ALICOCO_REQUIRES function).
bool IsWaitSeedKind(const char* kind);

/// Aggregate statistics for `--stats` and the self-benchmark.
struct InterprocStats {
  size_t functions = 0;  ///< function summaries fed to the fixpoints
  size_t sccs = 0;       ///< call-graph condensation components
  size_t edges = 0;      ///< resolved caller->callee key edges
  size_t may_block = 0;  ///< functions the bottom-up fixpoint marked
  uint64_t cost_us = 0;  ///< simulated cost charged for the interproc tier
};

/// The computed interprocedural facts. Build once per analysis; the three
/// passes that consume it are read-only.
class Interproc {
 public:
  static Interproc Build(const ProjectIndex& index);

  const std::vector<FnRef>& functions() const { return functions_; }
  const CallResolver& resolver() const { return resolver_; }
  const std::map<std::string, std::set<std::string>>& member_classes() const {
    return member_classes_;
  }

  /// "Class::Name" for methods, "Name" for free functions.
  static std::string KeyOf(const FunctionSummary& fn);

  /// Resolved lock keys for acquisition indices of `ref`'s function.
  std::set<std::string> HeldKeys(const FnRef& ref,
                                 const std::vector<int>& held) const;

  /// Locks definitely held whenever `key` runs: the call-site
  /// intersection unioned with its REQUIRES contract. Empty for functions
  /// with no observed callers and no contract.
  const std::set<std::string>& EntryHeld(const std::string& key) const;

  /// The REQUIRES contract alone (resolved to lock keys).
  const std::set<std::string>& RequiresOf(const std::string& key) const;

  bool MayBlock(const std::string& key) const;
  /// Witness path from `key` down to the blocking primitive, primitive
  /// last (e.g. {"Server::WriteLog", "fprintf"}). Empty when !MayBlock.
  std::vector<std::string> BlockChain(const std::string& key) const;
  /// Kind of the chain's terminal primitive ("file I/O", ...).
  std::string BlockKind(const std::string& key) const;

  /// GUARDED_BY declarations unioned across files:
  /// (class, member) -> mutex name. Members with conflicting guards are
  /// dropped rather than guessed.
  const std::map<std::pair<std::string, std::string>, std::string>& guarded()
      const {
    return guarded_;
  }

  const InterprocStats& stats() const { return stats_; }

 private:
  Interproc(const ProjectIndex& index);

  struct BlockEvidence {
    std::string via;   ///< next key toward the primitive; "" at the seed
    std::string seed;  ///< primitive name when via is ""
    std::string kind;
  };

  std::vector<FnRef> functions_;
  std::map<std::string, std::set<std::string>> member_classes_;
  CallResolver resolver_;
  std::map<const FunctionSummary*, std::vector<std::string>> acq_keys_;
  std::map<std::string, std::set<std::string>> requires_;
  /// Names whose every project definition produced no summary — bodies
  /// with no calls at all, hence provably non-blocking.
  std::set<std::string> call_free_names_;
  std::map<std::string, std::set<std::string>> entry_;
  /// Cache for EntryHeld's observed-entry ∪ REQUIRES union, so the
  /// accessor can return a stable reference.
  mutable std::map<std::string, std::set<std::string>> merged_entry_;
  std::map<std::string, BlockEvidence> blocking_;
  std::map<std::pair<std::string, std::string>, std::string> guarded_;
  InterprocStats stats_;
};

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_PASSES_INTERPROC_H_
