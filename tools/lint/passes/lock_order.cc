// Lock-order pass: compose per-function acquisition summaries into one
// global lock graph and hunt for cycles.
//
// Lock identity is resolved in three steps: a single-identifier lock
// expression inside a class that declares that mutex member is
// `Class::member`; otherwise a member name declared by exactly one class
// resolves to that class; anything else stands for itself verbatim. This
// keeps `mu_` in two unrelated classes from aliasing while still merging
// acquisitions of one mutex from header and implementation files.
//
// Edges come from two places: a lock taken while another is held inside
// one function body, and a call made with a lock held into a function
// whose transitive acquisition set (a fixpoint over the name-resolved
// call graph) contains other locks. A self-edge means the same lock is
// (transitively) acquired twice — alicoco::Mutex is not reentrant, so
// that is a guaranteed deadlock rather than an ordering hazard.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

struct FnRef {
  const FileSummary* file = nullptr;
  const FunctionSummary* fn = nullptr;
};

std::string LockKey(
    const Acquisition& acq, const std::string& enclosing_class,
    const std::map<std::string, std::set<std::string>>& member_classes) {
  auto it = member_classes.find(acq.name);
  if (it != member_classes.end()) {
    if (acq.is_plain_member && it->second.count(enclosing_class) != 0) {
      return enclosing_class + "::" + acq.name;
    }
    if (it->second.size() == 1) {
      return *it->second.begin() + "::" + acq.name;
    }
  }
  return acq.name;
}

std::string DescribeCycle(const std::vector<std::string>& cycle) {
  std::string out;
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) out += " -> ";
    out += cycle[i];
  }
  return out;
}

/// Method names std containers/atomics also expose. A member-access call
/// on an unknown receiver (`finished_.size()`) must not resolve to a
/// project method that happens to share such a name — that is how
/// `Tracer::size()` would grow a phantom edge from every vector.
bool StdLikeMethodName(const std::string& name) {
  static const char* kNames[] = {
      "size",    "empty",   "count",     "min",       "max",      "swap",
      "clear",   "begin",   "end",       "front",     "back",     "push_back",
      "pop_back", "push",   "pop",       "top",       "insert",   "erase",
      "find",    "at",      "reset",     "get",       "data",     "load",
      "store",   "exchange", "fetch_add", "str",      "c_str",    "substr",
      "append",  "lock",    "unlock",    "try_lock",  "wait",     "notify_one",
      "notify_all", "emplace", "emplace_back", "resize", "reserve"};
  return std::any_of(std::begin(kNames), std::end(kNames),
                     [&](const char* n) { return name == n; });
}

/// Resolves one call to candidate project functions, per CallKind:
/// plain calls see free functions plus the enclosing class's methods;
/// `this->` calls see the enclosing class only; `Q::` calls see Q's
/// methods plus free functions (Q may be a namespace); member-access
/// calls on unknown receivers resolve only when exactly one class defines
/// the method and the name is not std-container-like — anything more
/// aggressive invents deadlocks out of name collisions.
class CallResolver {
 public:
  explicit CallResolver(const std::vector<FnRef>& all_fns) {
    for (const FnRef& ref : all_fns) {
      if (ref.fn->class_name.empty()) {
        free_fns_[ref.fn->name].push_back(ref);
      } else {
        methods_[ref.fn->class_name + "::" + ref.fn->name].push_back(ref);
        method_classes_[ref.fn->name].insert(ref.fn->class_name);
      }
    }
  }

  std::vector<FnRef> Resolve(const CallInfo& call,
                             const std::string& enclosing_class) const {
    std::vector<FnRef> out;
    auto add_methods = [&](const std::string& cls) {
      auto it = methods_.find(cls + "::" + call.callee);
      if (it != methods_.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    };
    auto add_free = [&] {
      auto it = free_fns_.find(call.callee);
      if (it != free_fns_.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    };
    switch (call.kind) {
      case CallKind::kPlain:
        add_free();
        if (!enclosing_class.empty()) add_methods(enclosing_class);
        break;
      case CallKind::kThis:
        if (!enclosing_class.empty()) add_methods(enclosing_class);
        break;
      case CallKind::kQualified:
        if (!call.qualifier.empty()) add_methods(call.qualifier);
        add_free();
        break;
      case CallKind::kMember: {
        if (StdLikeMethodName(call.callee)) break;
        auto it = method_classes_.find(call.callee);
        if (it != method_classes_.end() && it->second.size() == 1) {
          add_methods(*it->second.begin());
        }
        break;
      }
    }
    return out;
  }

 private:
  std::map<std::string, std::vector<FnRef>> free_fns_;
  std::map<std::string, std::vector<FnRef>> methods_;
  std::map<std::string, std::set<std::string>> method_classes_;
};

}  // namespace

std::vector<Finding> RunLockOrderPass(const ProjectIndex& index) {
  // Mutex member declarations, unioned across files so a .cc resolves
  // members its header declared.
  std::map<std::string, std::set<std::string>> member_classes;
  for (const FileSummary& file : index.files()) {
    for (const MutexMemberDecl& m : file.mutexes) {
      member_classes[m.member].insert(m.class_name);
    }
  }

  std::vector<FnRef> all_fns;
  for (const FileSummary& file : index.files()) {
    for (const FunctionSummary& fn : file.functions) {
      all_fns.push_back(FnRef{&file, &fn});
    }
  }
  CallResolver resolver(all_fns);

  // Per-acquisition resolved keys, and each function's direct lock set.
  std::map<const FunctionSummary*, std::vector<std::string>> acq_keys;
  std::map<const FunctionSummary*, std::set<std::string>> acquired;
  for (const FnRef& ref : all_fns) {
    std::vector<std::string>& keys = acq_keys[ref.fn];
    for (const Acquisition& acq : ref.fn->acquisitions) {
      keys.push_back(LockKey(acq, ref.fn->class_name, member_classes));
      acquired[ref.fn].insert(keys.back());
    }
  }

  // Transitive acquisition fixpoint over the call graph.
  bool grew = true;
  while (grew) {
    grew = false;
    for (const FnRef& ref : all_fns) {
      std::set<std::string>& mine = acquired[ref.fn];
      for (const CallInfo& call : ref.fn->calls) {
        for (const FnRef& target :
             resolver.Resolve(call, ref.fn->class_name)) {
          if (target.fn == ref.fn) continue;
          for (const std::string& key : acquired[target.fn]) {
            if (mine.insert(key).second) grew = true;
          }
        }
      }
    }
  }

  Digraph lock_graph;
  for (const FnRef& ref : all_fns) {
    const std::vector<std::string>& keys = acq_keys[ref.fn];
    for (size_t i = 0; i < ref.fn->acquisitions.size(); ++i) {
      const Acquisition& acq = ref.fn->acquisitions[i];
      for (int held : acq.held) {
        lock_graph.AddEdge(keys[static_cast<size_t>(held)], keys[i],
                           EdgeSite{ref.file->path, acq.line});
      }
    }
    for (const CallInfo& call : ref.fn->calls) {
      if (call.held.empty()) continue;
      std::set<std::string> callee_locks;
      for (const FnRef& target : resolver.Resolve(call, ref.fn->class_name)) {
        if (target.fn == ref.fn) continue;
        const std::set<std::string>& locks = acquired[target.fn];
        callee_locks.insert(locks.begin(), locks.end());
      }
      for (int held : call.held) {
        for (const std::string& key : callee_locks) {
          lock_graph.AddEdge(keys[static_cast<size_t>(held)], key,
                             EdgeSite{ref.file->path, call.line});
        }
      }
    }
  }

  std::vector<Finding> findings;
  for (const std::vector<std::string>& cycle : lock_graph.Cycles()) {
    const EdgeSite* site = lock_graph.FindSite(cycle[0], cycle[1]);
    Finding f;
    f.file = site != nullptr ? site->file : "";
    f.line = site != nullptr ? site->line : 1;
    f.rule = "lock-order-cycle";
    if (cycle.size() == 2 && cycle[0] == cycle[1]) {
      f.message = "lock '" + cycle[0] +
                  "' is acquired while already held; alicoco::Mutex is not "
                  "reentrant, so this deadlocks";
    } else {
      f.message = "lock-order cycle (potential deadlock): " +
                  DescribeCycle(cycle);
    }
    findings.push_back(std::move(f));
  }
  return findings;
}

}  // namespace alicoco::lint
