// Lock-order pass: compose per-function acquisition summaries into one
// global lock graph and hunt for cycles.
//
// Lock identity is resolved in three steps: a single-identifier lock
// expression inside a class that declares that mutex member is
// `Class::member`; otherwise a member name declared by exactly one class
// resolves to that class; anything else stands for itself verbatim. This
// keeps `mu_` in two unrelated classes from aliasing while still merging
// acquisitions of one mutex from header and implementation files.
//
// Edges come from two places: a lock taken while another is held inside
// one function body, and a call made with a lock held into a function
// whose transitive acquisition set (a fixpoint over the name-resolved
// call graph) contains other locks. A self-edge means the same lock is
// (transitively) acquired twice — alicoco::Mutex is not reentrant, so
// that is a guaranteed deadlock rather than an ordering hazard.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/passes/interproc.h"
#include "tools/lint/passes/passes.h"

namespace alicoco::lint {
namespace {

std::string DescribeCycle(const std::vector<std::string>& cycle) {
  std::string out;
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) out += " -> ";
    out += cycle[i];
  }
  return out;
}

}  // namespace

std::vector<Finding> RunLockOrderPass(const ProjectIndex& index) {
  // Mutex member declarations, unioned across files so a .cc resolves
  // members its header declared.
  std::map<std::string, std::set<std::string>> member_classes;
  for (const FileSummary& file : index.files()) {
    for (const MutexMemberDecl& m : file.mutexes) {
      member_classes[m.member].insert(m.class_name);
    }
  }

  std::vector<FnRef> all_fns;
  for (const FileSummary& file : index.files()) {
    for (const FunctionSummary& fn : file.functions) {
      all_fns.push_back(FnRef{&file, &fn});
    }
  }
  CallResolver resolver(all_fns);

  // Per-acquisition resolved keys, and each function's direct lock set.
  std::map<const FunctionSummary*, std::vector<std::string>> acq_keys;
  std::map<const FunctionSummary*, std::set<std::string>> acquired;
  for (const FnRef& ref : all_fns) {
    std::vector<std::string>& keys = acq_keys[ref.fn];
    for (const Acquisition& acq : ref.fn->acquisitions) {
      keys.push_back(LockKey(acq, ref.fn->class_name, member_classes));
      acquired[ref.fn].insert(keys.back());
    }
  }

  // Transitive acquisition fixpoint over the call graph.
  bool grew = true;
  while (grew) {
    grew = false;
    for (const FnRef& ref : all_fns) {
      std::set<std::string>& mine = acquired[ref.fn];
      for (const CallInfo& call : ref.fn->calls) {
        for (const FnRef& target :
             resolver.Resolve(call, ref.fn->class_name)) {
          if (target.fn == ref.fn) continue;
          for (const std::string& key : acquired[target.fn]) {
            if (mine.insert(key).second) grew = true;
          }
        }
      }
    }
  }

  Digraph lock_graph;
  for (const FnRef& ref : all_fns) {
    const std::vector<std::string>& keys = acq_keys[ref.fn];
    for (size_t i = 0; i < ref.fn->acquisitions.size(); ++i) {
      const Acquisition& acq = ref.fn->acquisitions[i];
      for (int held : acq.held) {
        lock_graph.AddEdge(keys[static_cast<size_t>(held)], keys[i],
                           EdgeSite{ref.file->path, acq.line});
      }
    }
    for (const CallInfo& call : ref.fn->calls) {
      if (call.held.empty()) continue;
      std::set<std::string> callee_locks;
      for (const FnRef& target : resolver.Resolve(call, ref.fn->class_name)) {
        if (target.fn == ref.fn) continue;
        const std::set<std::string>& locks = acquired[target.fn];
        callee_locks.insert(locks.begin(), locks.end());
      }
      for (int held : call.held) {
        for (const std::string& key : callee_locks) {
          lock_graph.AddEdge(keys[static_cast<size_t>(held)], key,
                             EdgeSite{ref.file->path, call.line});
        }
      }
    }
  }

  std::vector<Finding> findings;
  for (const std::vector<std::string>& cycle : lock_graph.Cycles()) {
    const EdgeSite* site = lock_graph.FindSite(cycle[0], cycle[1]);
    Finding f;
    f.file = site != nullptr ? site->file : "";
    f.line = site != nullptr ? site->line : 1;
    f.rule = "lock-order-cycle";
    if (cycle.size() == 2 && cycle[0] == cycle[1]) {
      f.message = "lock '" + cycle[0] +
                  "' is acquired while already held; alicoco::Mutex is not "
                  "reentrant, so this deadlocks";
    } else {
      f.message = "lock-order cycle (potential deadlock): " +
                  DescribeCycle(cycle);
    }
    findings.push_back(std::move(f));
  }
  return findings;
}

}  // namespace alicoco::lint
