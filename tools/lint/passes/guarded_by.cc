// Guarded-by pass: every access to an ALICOCO_GUARDED_BY(m) member must
// happen with m held — lexically, via the interprocedural entry-held set
// (every observed caller holds it, arbitrarily deep through unannotated
// calls), or under an ALICOCO_REQUIRES(m) contract on the function.
//
// Constructors and destructors are exempt, matching clang's thread-safety
// analysis: no second thread can see the object mid-construction.
// Conservatism errs toward silence — a function nobody is seen to call
// has an empty entry set, so a public accessor without the lock is
// reported, while a private helper whose callers all hold the lock is
// not.

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/passes/interproc.h"
#include "tools/lint/passes/passes.h"

namespace alicoco::lint {

std::vector<Finding> RunGuardedByPass(const ProjectIndex& /*index*/,
                                      const Interproc& interproc) {
  std::vector<Finding> findings;
  for (const FnRef& ref : interproc.functions()) {
    const FunctionSummary& fn = *ref.fn;
    if (fn.class_name.empty()) continue;          // free function: no members
    if (fn.name == fn.class_name) continue;       // constructor/destructor
    const std::string key = Interproc::KeyOf(fn);
    const std::set<std::string>& entry = interproc.EntryHeld(key);
    for (const MemberRef& r : fn.member_refs) {
      auto guard = interproc.guarded().find(
          std::make_pair(fn.class_name, r.name));
      if (guard == interproc.guarded().end()) continue;
      // Resolve the guard mutex the same way lock expressions resolve.
      Acquisition as_acq;
      as_acq.name = guard->second;
      as_acq.is_plain_member = true;
      const std::string guard_key =
          LockKey(as_acq, fn.class_name, interproc.member_classes());
      std::set<std::string> held = interproc.HeldKeys(ref, r.held);
      held.insert(entry.begin(), entry.end());
      if (held.count(guard_key) != 0) continue;
      Finding f;
      f.file = ref.file->path;
      f.line = r.line;
      f.rule = "guarded-by-violation";
      f.message = "'" + r.name + "' is guarded by '" + guard_key +
                  "' but '" + key +
                  "' reaches it without the lock held; take the lock or "
                  "annotate the function ALICOCO_REQUIRES(" + guard->second +
                  ")";
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

}  // namespace alicoco::lint
