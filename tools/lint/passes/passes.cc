#include "tools/lint/passes/passes.h"

#include <algorithm>
#include <tuple>

namespace alicoco::lint {

const std::vector<PassInfo>& PassRegistry() {
  static const std::vector<PassInfo> kPasses = {
      {"include-cycle",
       "a cycle in the include graph makes the build order fragile and the "
       "modules inseparable"},
      {"layer-violation",
       "an include that contradicts tools/lint/layers.txt erodes the "
       "declared architecture one edge at a time"},
      {"lock-order-cycle",
       "two locks taken in opposite orders on different threads is a "
       "deadlock waiting for the right interleaving"},
      {"discarded-result",
       "ignoring a Status/Result/[[nodiscard]] return silently swallows "
       "the error path"},
      {"use-after-move",
       "reading a moved-from object on any path is at best empty data and "
       "at worst undefined behavior"},
      {"dangling-view",
       "a string_view or span that outlives the buffer it points into is a "
       "use-after-free in slow motion"},
      {"hot-loop-alloc",
       "an allocation per iteration on the embedding/matching/pipeline hot "
       "path turns O(n) work into O(n) malloc traffic"},
      {"param-by-value-heavy",
       "passing a string or container by value copies it at every call "
       "site; sinks should std::move, everything else takes const&"},
  };
  return kPasses;
}

std::vector<Finding> RunAllPasses(const ProjectIndex& index,
                                  const Layers& layers) {
  std::vector<Finding> findings = RunIncludeGraphPass(index, layers);
  std::vector<Finding> locks = RunLockOrderPass(index);
  findings.insert(findings.end(), locks.begin(), locks.end());
  std::vector<Finding> discards = RunDiscardedResultPass(index);
  findings.insert(findings.end(), discards.begin(), discards.end());
  std::vector<Finding> copies = RunParamByValuePass(index);
  findings.insert(findings.end(), copies.begin(), copies.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

std::vector<Finding> RunFunctionDataflowChecks(
    const std::string& path, const std::vector<const Token*>& code,
    const std::vector<FunctionBody>& functions) {
  std::vector<Finding> findings;
  for (const FunctionBody& fn : functions) {
    const Cfg cfg = BuildCfg(code, fn.body_begin, fn.body_end);
    CheckUseAfterMove(path, code, fn, cfg, &findings);
    CheckDanglingView(path, code, fn, cfg, &findings);
    CheckHotLoopAlloc(path, code, fn, cfg, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return findings;
}

}  // namespace alicoco::lint
