#include "tools/lint/passes/passes.h"

#include <algorithm>
#include <tuple>

#include "tools/lint/passes/interproc.h"

namespace alicoco::lint {

const std::vector<PassInfo>& PassRegistry() {
  static const std::vector<PassInfo> kPasses = {
      {"include-cycle",
       "a cycle in the include graph makes the build order fragile and the "
       "modules inseparable",
       "// a.h\n#include \"b.h\"\n// b.h\n#include \"a.h\"",
       "// b.h forward-declares what it needs from a.h:\nclass AThing;"},
      {"layer-violation",
       "an include that contradicts tools/lint/layers.txt erodes the "
       "declared architecture one edge at a time",
       "// src/common/log.h (layer: common, the bottom)\n"
       "#include \"pipeline/builder.h\"",
       "// move the shared type down, or the dependent code up:\n"
       "// src/pipeline/builder.h\n#include \"common/log.h\""},
      {"lock-order-cycle",
       "two locks taken in opposite orders on different threads is a "
       "deadlock waiting for the right interleaving",
       "void A() { MutexLock a(mu_a); MutexLock b(mu_b); }\n"
       "void B() { MutexLock b(mu_b); MutexLock a(mu_a); }",
       "void A() { MutexLock a(mu_a); MutexLock b(mu_b); }\n"
       "void B() { MutexLock a(mu_a); MutexLock b(mu_b); }  // same order"},
      {"discarded-result",
       "ignoring a Status/Result/[[nodiscard]] return silently swallows "
       "the error path",
       "SaveIndex(path);  // Status dropped on the floor",
       "ALICOCO_RETURN_IF_ERROR(SaveIndex(path));"},
      {"use-after-move",
       "reading a moved-from object on any path is at best empty data and "
       "at worst undefined behavior",
       "Consume(std::move(name));\nlog.Append(name);  // moved-from read",
       "log.Append(name);\nConsume(std::move(name));  // move last"},
      {"dangling-view",
       "a string_view or span that outlives the buffer it points into is a "
       "use-after-free in slow motion",
       "std::string_view v = MakeLabel() + \":\";  // temporary dies here",
       "std::string owner = MakeLabel() + \":\";\n"
       "std::string_view v = owner;  // owner outlives the view"},
      {"hot-loop-alloc",
       "an allocation per iteration on the embedding/matching/pipeline hot "
       "path turns O(n) work into O(n) malloc traffic",
       "for (const auto& row : rows) {\n"
       "  std::vector<float> scratch(dim);  // malloc per iteration\n}",
       "std::vector<float> scratch(dim);  // hoisted\n"
       "for (const auto& row : rows) { scratch.assign(dim, 0.f); }"},
      {"param-by-value-heavy",
       "passing a string or container by value copies it at every call "
       "site; sinks should std::move, everything else takes const&",
       "void Index(std::string doc);  // copies every call",
       "void Index(const std::string& doc);\n"
       "// or, for a sink: void Index(std::string doc) { "
       "docs_.push_back(std::move(doc)); }"},
      {"guarded-by-violation",
       "a GUARDED_BY member read without its mutex — directly or through "
       "any chain of unannotated calls — is a data race TSan only catches "
       "if a test hits the interleaving",
       "int items_ ALICOCO_GUARDED_BY(mu_);\n"
       "int Peek() const { return items_; }  // no lock on any path",
       "int Peek() const { MutexLock lock(mu_); return items_; }\n"
       "// or declare the contract:\n"
       "int PeekLocked() const ALICOCO_REQUIRES(mu_) { return items_; }"},
      {"blocking-under-lock",
       "blocking work (I/O, sleeps, waits, joins) reached while a mutex is "
       "held stretches the critical section across an unbounded stall and "
       "convoys every waiting thread behind it",
       "MutexLock lock(mu_);\nWriteLog();  // -> fprintf: file I/O under mu_",
       "const std::string line = Format();  // prepare outside\n"
       "{ MutexLock lock(mu_); buffer_.push_back(line); }\nWriteLog();"},
      {"view-escapes-call",
       "a view returned through a call boundary can outlive the argument "
       "it aliases; the dangle is invisible to any single-function check",
       "std::string_view Head(const std::string& s);\n"
       "std::string_view Name() {\n"
       "  std::string local = Build();\n"
       "  return Head(local);  // view of a dead local\n}",
       "std::string Name() {  // return an owning value across the boundary\n"
       "  std::string local = Build();\n"
       "  return std::string(Head(local));\n}"},
      {"tainted-alloc-size",
       "an allocation sized by raw input lets one corrupt length field "
       "take the whole process: resize(count) on an attacker's count is an "
       "OOM or a multi-gigabyte write",
       "uint32_t count;\nReadU32(f, &count);\n"
       "weights.resize(count);  // count is whatever the file says",
       "uint32_t count;\nReadU32(f, &count);\n"
       "if (count > kMaxParams) return Status::Corruption(\"count\");\n"
       "weights.resize(count);  // bounded by a compile-time cap"},
      {"unchecked-mul-overflow",
       "the product of two untrusted 32-bit sizes wraps before anyone "
       "checks it: rows*cols overflows to a small number, the buffer is "
       "allocated short, and the copy that follows writes past it",
       "uint32_t rows, cols;  // both from the file\n"
       "buf.resize(rows * cols);  // 32-bit product wraps silently",
       "buf.resize(static_cast<size_t>(rows) * cols);  // 64-bit product\n"
       "// caps on rows and cols still belong before the resize"},
      {"tainted-index",
       "an index or loop bound taken from input without a dominating range "
       "check reads or writes out of bounds on the first malformed file",
       "uint32_t idx = ReadU32(f);\n"
       "return table[idx];  // idx is unchecked input",
       "uint32_t idx = ReadU32(f);\n"
       "if (idx >= table.size()) return Status::Corruption(\"idx\");\n"
       "return table[idx];"},
  };
  return kPasses;
}

std::vector<Finding> RunAllPasses(const ProjectIndex& index,
                                  const Layers& layers,
                                  InterprocStats* interproc_stats,
                                  TaintStats* taint_stats) {
  std::vector<Finding> findings = RunIncludeGraphPass(index, layers);
  std::vector<Finding> locks = RunLockOrderPass(index);
  findings.insert(findings.end(), locks.begin(), locks.end());
  std::vector<Finding> discards = RunDiscardedResultPass(index);
  findings.insert(findings.end(), discards.begin(), discards.end());
  std::vector<Finding> copies = RunParamByValuePass(index);
  findings.insert(findings.end(), copies.begin(), copies.end());

  const Interproc interproc = Interproc::Build(index);
  if (interproc_stats != nullptr) *interproc_stats = interproc.stats();
  std::vector<Finding> guarded = RunGuardedByPass(index, interproc);
  findings.insert(findings.end(), guarded.begin(), guarded.end());
  std::vector<Finding> blocking = RunBlockingLockPass(index, interproc);
  findings.insert(findings.end(), blocking.begin(), blocking.end());
  std::vector<Finding> escapes = RunViewEscapePass(index);
  findings.insert(findings.end(), escapes.begin(), escapes.end());
  std::vector<Finding> taints = RunTaintPass(index, taint_stats);
  findings.insert(findings.end(), taints.begin(), taints.end());

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

std::vector<Finding> RunFunctionDataflowChecks(
    const std::string& path, const std::vector<const Token*>& code,
    const std::vector<FunctionBody>& functions) {
  std::vector<Finding> findings;
  for (const FunctionBody& fn : functions) {
    const Cfg cfg = BuildCfg(code, fn.body_begin, fn.body_end);
    CheckUseAfterMove(path, code, fn, cfg, &findings);
    CheckDanglingView(path, code, fn, cfg, &findings);
    CheckHotLoopAlloc(path, code, fn, cfg, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return findings;
}

}  // namespace alicoco::lint
