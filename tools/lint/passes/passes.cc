#include "tools/lint/passes/passes.h"

#include <algorithm>
#include <tuple>

namespace alicoco::lint {

const std::vector<PassInfo>& PassRegistry() {
  static const std::vector<PassInfo> kPasses = {
      {"include-cycle",
       "a cycle in the include graph makes the build order fragile and the "
       "modules inseparable"},
      {"layer-violation",
       "an include that contradicts tools/lint/layers.txt erodes the "
       "declared architecture one edge at a time"},
      {"lock-order-cycle",
       "two locks taken in opposite orders on different threads is a "
       "deadlock waiting for the right interleaving"},
      {"discarded-result",
       "ignoring a Status/Result/[[nodiscard]] return silently swallows "
       "the error path"},
  };
  return kPasses;
}

std::vector<Finding> RunAllPasses(const ProjectIndex& index,
                                  const Layers& layers) {
  std::vector<Finding> findings = RunIncludeGraphPass(index, layers);
  std::vector<Finding> locks = RunLockOrderPass(index);
  findings.insert(findings.end(), locks.begin(), locks.end());
  std::vector<Finding> discards = RunDiscardedResultPass(index);
  findings.insert(findings.end(), discards.begin(), discards.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

}  // namespace alicoco::lint
