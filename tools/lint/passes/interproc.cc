#include "tools/lint/passes/interproc.h"

#include <algorithm>

#include "tools/lint/graph.h"

namespace alicoco::lint {
namespace {

/// All-caps identifiers are macros (ALICOCO_CHECK, ...), not functions;
/// treating them as unknown callees would mark half the tree may-block.
bool IsMacroName(const std::string& name) {
  bool has_alpha = false;
  for (char c : name) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
  }
  return has_alpha;
}

std::vector<FnRef> CollectFns(const ProjectIndex& index) {
  std::vector<FnRef> fns;
  for (const FileSummary& file : index.files()) {
    for (const FunctionSummary& fn : file.functions) {
      fns.push_back(FnRef{&file, &fn});
    }
  }
  return fns;
}

}  // namespace

bool StdLikeMethodName(const std::string& name) {
  static const char* kNames[] = {
      "size",    "empty",   "count",     "min",       "max",      "swap",
      "clear",   "begin",   "end",       "front",     "back",     "push_back",
      "pop_back", "push",   "pop",       "top",       "insert",   "erase",
      "find",    "at",      "reset",     "get",       "data",     "load",
      "store",   "exchange", "fetch_add", "str",      "c_str",    "substr",
      "append",  "lock",    "unlock",    "try_lock",  "wait",     "notify_one",
      "notify_all", "emplace", "emplace_back", "try_emplace", "resize",
      "reserve", "now",     "time_since_epoch", "duration_cast"};
  return std::any_of(std::begin(kNames), std::end(kNames),
                     [&](const char* n) { return name == n; });
}

std::string LockKey(
    const Acquisition& acq, const std::string& enclosing_class,
    const std::map<std::string, std::set<std::string>>& member_classes) {
  auto it = member_classes.find(acq.name);
  if (it != member_classes.end()) {
    if (acq.is_plain_member && it->second.count(enclosing_class) != 0) {
      return enclosing_class + "::" + acq.name;
    }
    if (it->second.size() == 1) {
      return *it->second.begin() + "::" + acq.name;
    }
  }
  return acq.name;
}

CallResolver::CallResolver(const std::vector<FnRef>& all_fns) {
  for (const FnRef& ref : all_fns) {
    if (ref.fn->class_name.empty()) {
      free_fns_[ref.fn->name].push_back(ref);
    } else {
      methods_[ref.fn->class_name + "::" + ref.fn->name].push_back(ref);
      method_classes_[ref.fn->name].insert(ref.fn->class_name);
    }
  }
}

std::vector<FnRef> CallResolver::Resolve(
    const CallInfo& call, const std::string& enclosing_class) const {
  std::vector<FnRef> out;
  auto add_methods = [&](const std::string& cls) {
    auto it = methods_.find(cls + "::" + call.callee);
    if (it != methods_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  };
  auto add_free = [&] {
    auto it = free_fns_.find(call.callee);
    if (it != free_fns_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  };
  switch (call.kind) {
    case CallKind::kPlain:
      add_free();
      if (!enclosing_class.empty()) add_methods(enclosing_class);
      break;
    case CallKind::kThis:
      if (!enclosing_class.empty()) add_methods(enclosing_class);
      break;
    case CallKind::kQualified:
      if (!call.qualifier.empty()) add_methods(call.qualifier);
      add_free();
      break;
    case CallKind::kMember: {
      if (StdLikeMethodName(call.callee)) break;
      auto it = method_classes_.find(call.callee);
      if (it != method_classes_.end() && it->second.size() == 1) {
        add_methods(*it->second.begin());
      }
      break;
    }
  }
  return out;
}

const char* BlockingSeedKind(const std::string& callee) {
  static const std::map<std::string, const char*> kSeeds = {
      // Condition-variable waits (project CondVar and std names).
      {"Wait", "condition-variable wait"},
      {"wait", "condition-variable wait"},
      {"wait_for", "condition-variable wait"},
      {"wait_until", "condition-variable wait"},
      // Sleeps.
      {"sleep_for", "sleep"},
      {"sleep_until", "sleep"},
      {"sleep", "sleep"},
      {"usleep", "sleep"},
      {"nanosleep", "sleep"},
      // Thread joins.
      {"join", "thread join"},
      // C stdio / POSIX I/O.
      {"fprintf", "file I/O"},
      {"printf", "file I/O"},
      {"fputs", "file I/O"},
      {"fputc", "file I/O"},
      {"fwrite", "file I/O"},
      {"fread", "file I/O"},
      {"fgets", "file I/O"},
      {"fopen", "file I/O"},
      {"fclose", "file I/O"},
      {"fflush", "file I/O"},
      {"fsync", "file I/O"},
      {"recv", "file I/O"},
      {"send", "file I/O"},
      {"accept", "file I/O"},
      {"connect", "file I/O"},
      // Raw heap traffic (std containers are deliberately not seeded —
      // a push_back under a short lock is normal; malloc in a loop under
      // a lock is not).
      {"malloc", "unbounded allocation"},
      {"calloc", "unbounded allocation"},
      {"realloc", "unbounded allocation"},
  };
  auto it = kSeeds.find(callee);
  return it == kSeeds.end() ? nullptr : it->second;
}

bool IsWaitSeedKind(const char* kind) {
  return kind != nullptr && std::string(kind) == "condition-variable wait";
}

std::string Interproc::KeyOf(const FunctionSummary& fn) {
  return fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
}

Interproc Interproc::Build(const ProjectIndex& index) {
  return Interproc(index);
}

Interproc::Interproc(const ProjectIndex& index)
    : functions_(CollectFns(index)), resolver_(functions_) {
  // Mutex member declarations, unioned across files so a .cc resolves
  // members its header declared.
  for (const FileSummary& file : index.files()) {
    for (const MutexMemberDecl& m : file.mutexes) {
      member_classes_[m.member].insert(m.class_name);
    }
  }

  // GUARDED_BY declarations; a member with two different guards is
  // ill-formed input — drop it rather than pick one.
  std::set<std::pair<std::string, std::string>> conflicting;
  for (const FileSummary& file : index.files()) {
    for (const GuardedMemberDecl& g : file.guarded_members) {
      auto key = std::make_pair(g.class_name, g.member);
      auto [it, inserted] = guarded_.emplace(key, g.mutex);
      if (!inserted && it->second != g.mutex) conflicting.insert(key);
    }
  }
  for (const auto& key : conflicting) guarded_.erase(key);

  // Names that are provably call-free: every project definition with the
  // name produced no FunctionSummary, and a summary is only dropped when
  // the body has no calls, no acquisitions, no guarded-member refs, and
  // no view returns. Such a callee cannot block, however the call fails
  // to resolve (`LevelName(...)` in an anonymous namespace is the
  // canonical case).
  std::set<std::string> summarized_names;
  for (const FnRef& ref : functions_) summarized_names.insert(ref.fn->name);
  for (const FileSummary& file : index.files()) {
    for (const DeclInfo& d : file.decls) {
      if (d.has_body && summarized_names.count(d.name) == 0) {
        call_free_names_.insert(d.name);
      }
    }
  }

  // Per-acquisition resolved lock keys.
  for (const FnRef& ref : functions_) {
    std::vector<std::string>& keys = acq_keys_[ref.fn];
    for (const Acquisition& acq : ref.fn->acquisitions) {
      keys.push_back(LockKey(acq, ref.fn->class_name, member_classes_));
    }
  }

  // REQUIRES contracts, resolved like plain-member lock expressions and
  // unioned over every declaration of the same (class, name).
  for (const FileSummary& file : index.files()) {
    for (const DeclInfo& d : file.decls) {
      if (d.requires_locks.empty()) continue;
      std::string key =
          d.class_name.empty() ? d.name : d.class_name + "::" + d.name;
      for (const std::string& name : d.requires_locks) {
        Acquisition as_acq;
        as_acq.name = name;
        as_acq.is_plain_member = true;
        requires_[key].insert(LockKey(as_acq, d.class_name, member_classes_));
      }
    }
  }

  // The call graph over function keys, plus per-callee observed call
  // sites (caller key + locks held directly at the site).
  struct CallSite {
    std::string caller;
    std::set<std::string> held;
  };
  Digraph call_graph;
  std::map<std::string, std::vector<CallSite>> sites;
  std::set<std::pair<std::string, std::string>> edge_set;
  for (const FnRef& ref : functions_) {
    const std::string caller = KeyOf(*ref.fn);
    call_graph.AddNode(caller);
    for (const CallInfo& call : ref.fn->calls) {
      std::set<std::string> held;
      const std::vector<std::string>& keys = acq_keys_[ref.fn];
      for (int idx : call.held) {
        held.insert(keys[static_cast<size_t>(idx)]);
      }
      for (const FnRef& target : resolver_.Resolve(call, ref.fn->class_name)) {
        const std::string callee = KeyOf(*target.fn);
        call_graph.AddEdge(caller, callee, EdgeSite{ref.file->path, call.line});
        edge_set.emplace(caller, callee);
        sites[callee].push_back(CallSite{caller, held});
      }
    }
  }

  const std::vector<std::vector<std::string>> components =
      call_graph.StronglyConnectedComponents();

  // Group function summaries by key (overloads and header/impl pairs
  // merge), in deterministic functions_ order.
  std::map<std::string, std::vector<const FunctionSummary*>> by_key;
  for (const FnRef& ref : functions_) {
    by_key[KeyOf(*ref.fn)].push_back(ref.fn);
  }

  // Bottom-up may-block fixpoint: components come out callees-first, so
  // one sweep per component round converges quickly; the inner loop
  // handles recursion within a component.
  for (const std::vector<std::string>& component : components) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const std::string& key : component) {
        if (blocking_.count(key) != 0) continue;
        auto fns_it = by_key.find(key);
        if (fns_it == by_key.end()) continue;
        for (const FunctionSummary* fn : fns_it->second) {
          for (const CallInfo& call : fn->calls) {
            if (const char* kind = BlockingSeedKind(call.callee)) {
              blocking_[key] = BlockEvidence{"", call.callee, kind};
              changed = true;
              break;
            }
            std::vector<FnRef> targets =
                resolver_.Resolve(call, fn->class_name);
            if (targets.empty()) {
              // Unknown callee: assumed blocking unless it is clearly
              // benign (std-container-shaped, a macro, std::, or a
              // project definition whose body is provably call-free).
              if (StdLikeMethodName(call.callee) ||
                  IsMacroName(call.callee) || call.qualifier == "std" ||
                  call_free_names_.count(call.callee) != 0) {
                continue;
              }
              blocking_[key] = BlockEvidence{
                  "", call.callee, "unresolved callee, assumed blocking"};
              changed = true;
              break;
            }
            for (const FnRef& target : targets) {
              const std::string target_key = KeyOf(*target.fn);
              if (target_key != key && blocking_.count(target_key) != 0) {
                blocking_[key] = BlockEvidence{target_key, "", ""};
                changed = true;
                break;
              }
            }
            if (blocking_.count(key) != 0) break;
          }
          if (blocking_.count(key) != 0) break;
        }
      }
    }
  }

  // Top-down entry-held fixpoint, callers first (components reversed).
  // `entry_` absence means top (no constraint yet); keys without observed
  // call sites resolve to empty at the end — never assumed to be called
  // under a lock.
  for (auto it = components.rbegin(); it != components.rend(); ++it) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const std::string& key : *it) {
        auto site_it = sites.find(key);
        if (site_it == sites.end()) continue;
        std::set<std::string> meet;
        bool have = false;
        for (const CallSite& site : site_it->second) {
          auto caller_entry = entry_.find(site.caller);
          if (caller_entry == entry_.end() && sites.count(site.caller) != 0) {
            continue;  // caller still at top (same-component recursion)
          }
          std::set<std::string> at_site = site.held;
          if (caller_entry != entry_.end()) {
            at_site.insert(caller_entry->second.begin(),
                           caller_entry->second.end());
          }
          auto req = requires_.find(site.caller);
          if (req != requires_.end()) {
            at_site.insert(req->second.begin(), req->second.end());
          }
          if (!have) {
            meet = std::move(at_site);
            have = true;
            continue;
          }
          std::set<std::string> narrowed;
          std::set_intersection(meet.begin(), meet.end(), at_site.begin(),
                                at_site.end(),
                                std::inserter(narrowed, narrowed.begin()));
          meet = std::move(narrowed);
        }
        if (!have) continue;  // every observed caller still at top
        auto cur = entry_.find(key);
        if (cur == entry_.end() || cur->second != meet) {
          entry_[key] = std::move(meet);
          changed = true;
        }
      }
    }
  }
  // Anything still at top (unreachable recursion, or simply uncalled)
  // falls to the empty set via EntryHeld's default.

  stats_.functions = functions_.size();
  stats_.sccs = components.size();
  stats_.edges = edge_set.size();
  stats_.may_block = blocking_.size();
  // Simulated cost: both fixpoints are linear sweeps over functions and
  // resolved edges per round; charge one unit each.
  stats_.cost_us = stats_.functions + 2 * stats_.edges;
}

std::set<std::string> Interproc::HeldKeys(const FnRef& ref,
                                          const std::vector<int>& held) const {
  std::set<std::string> out;
  auto it = acq_keys_.find(ref.fn);
  if (it == acq_keys_.end()) return out;
  for (int idx : held) {
    if (idx >= 0 && static_cast<size_t>(idx) < it->second.size()) {
      out.insert(it->second[static_cast<size_t>(idx)]);
    }
  }
  return out;
}

const std::set<std::string>& Interproc::EntryHeld(
    const std::string& key) const {
  static const std::set<std::string> kEmpty;
  auto it = entry_.find(key);
  const std::set<std::string>& observed =
      it == entry_.end() ? kEmpty : it->second;
  auto req = requires_.find(key);
  if (req == requires_.end()) return observed;
  // Merge lazily: cache the union so the reference stays valid.
  auto [cached, inserted] = merged_entry_.try_emplace(key, observed);
  if (inserted) {
    cached->second.insert(req->second.begin(), req->second.end());
  }
  return cached->second;
}

const std::set<std::string>& Interproc::RequiresOf(
    const std::string& key) const {
  static const std::set<std::string> kEmpty;
  auto it = requires_.find(key);
  return it == requires_.end() ? kEmpty : it->second;
}

bool Interproc::MayBlock(const std::string& key) const {
  return blocking_.count(key) != 0;
}

std::vector<std::string> Interproc::BlockChain(const std::string& key) const {
  std::vector<std::string> chain;
  std::string cur = key;
  while (true) {
    auto it = blocking_.find(cur);
    if (it == blocking_.end()) break;
    chain.push_back(cur);
    if (it->second.via.empty()) {
      chain.push_back(it->second.seed);
      break;
    }
    cur = it->second.via;
  }
  return chain;
}

std::string Interproc::BlockKind(const std::string& key) const {
  std::string cur = key;
  while (true) {
    auto it = blocking_.find(cur);
    if (it == blocking_.end()) return "";
    if (it->second.via.empty()) return it->second.kind;
    cur = it->second.via;
  }
}

}  // namespace alicoco::lint
