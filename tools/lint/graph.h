// Graph machinery shared by the cross-file lint passes: a string-keyed
// digraph with deterministic cycle reporting, and the declared module
// layering parsed from tools/lint/layers.txt.
//
// Both the include-graph pass (files / modules) and the lock-order pass
// (locks) reduce to the same question — "does this directed graph have a
// cycle, and if so, show me one" — so the answer lives here once.

#ifndef ALICOCO_TOOLS_LINT_GRAPH_H_
#define ALICOCO_TOOLS_LINT_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace alicoco::lint {

/// One witness site for a graph edge: where in the tree the dependency is
/// introduced (an #include line, a lock acquisition).
struct EdgeSite {
  std::string file;
  int line = 0;
};

/// Directed graph over string node ids. Nodes and adjacency are kept in
/// sorted containers so every traversal — and therefore every finding —
/// is deterministic across runs and platforms.
class Digraph {
 public:
  void AddNode(const std::string& node);
  /// Adds from -> to. The first site registered for an edge is kept as its
  /// witness; duplicates are collapsed.
  void AddEdge(const std::string& from, const std::string& to,
               const EdgeSite& site);

  bool HasEdge(const std::string& from, const std::string& to) const;
  /// Witness site for an existing edge; nullptr when absent.
  const EdgeSite* FindSite(const std::string& from,
                           const std::string& to) const;

  /// Nodes in sorted order.
  std::vector<std::string> Nodes() const;
  /// Sorted successors of `node`.
  const std::set<std::string>& Successors(const std::string& node) const;

  /// Every elementary cycle witness, one per strongly connected component
  /// with more than one node (plus self-loops). Each cycle is rotated so
  /// its lexicographically smallest node comes first, closed (front ==
  /// back), and the list is sorted by that first node.
  std::vector<std::vector<std::string>> Cycles() const;

  /// Tarjan's strongly connected components, each sorted internally, in
  /// emission order: a component is emitted only after every component it
  /// has edges into (reverse topological order of the condensation). The
  /// interprocedural lint tier leans on that order directly — walking the
  /// components forward visits callees before callers (bottom-up summary
  /// propagation), walking them backward visits callers first.
  std::vector<std::vector<std::string>> StronglyConnectedComponents() const;

 private:
  std::vector<std::string> CycleThrough(const std::string& start,
                                        const std::set<std::string>& scc)
      const;

  std::map<std::string, std::set<std::string>> adjacency_;
  std::map<std::string, std::map<std::string, EdgeSite>> sites_;
};

/// The declared architecture layering. Parsed from layers.txt:
///
///   # comment
///   layer common            <- rank 0, the bottom
///   layer eval nn text      <- one rank, three peer modules
///   layer pipeline          <- higher ranks may depend on lower ones
///
/// A module may include only modules of strictly lower rank (or itself);
/// peers within a rank are independent by declaration. Unknown modules are
/// reported by the include-graph pass rather than silently tolerated.
class Layers {
 public:
  static Result<Layers> Parse(const std::string& text);
  static Result<Layers> LoadFile(const std::string& path);

  /// Rank of `module`, or -1 when undeclared.
  int RankOf(const std::string& module) const;
  size_t num_layers() const { return num_layers_; }
  size_t num_modules() const { return rank_.size(); }

  /// Modules of `rank` in declaration order, for diagnostics.
  std::vector<std::string> ModulesAt(int rank) const;

 private:
  std::map<std::string, int> rank_;
  std::vector<std::vector<std::string>> layers_;
  size_t num_layers_ = 0;
};

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_GRAPH_H_
