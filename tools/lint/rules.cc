#include "tools/lint/rules.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <utility>

namespace alicoco::lint {
namespace {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view Basename(std::string_view path) {
  size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

/// File stem: basename without the last extension.
std::string_view Stem(std::string_view path) {
  std::string_view base = Basename(path);
  size_t dot = base.rfind('.');
  return dot == std::string_view::npos ? base : base.substr(0, dot);
}

/// The token stream with comments removed: rules that pattern-match code
/// adjacency must not see an intervening comment as a neighbor.
std::vector<const Token*> CodeTokens(const FileContext& file) {
  std::vector<const Token*> code;
  code.reserve(file.tokens.size());
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kComment) code.push_back(&t);
  }
  return code;
}

bool IsIdent(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kIdentifier && t->text == text;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

const Token* At(const std::vector<const Token*>& code, size_t i) {
  return i < code.size() ? code[i] : nullptr;
}

const Token* Prev(const std::vector<const Token*>& code, size_t i) {
  return i == 0 ? nullptr : code[i - 1];
}

void Report(const FileContext& file, const Token& at, std::string_view rule,
            std::string message, std::vector<Finding>* out) {
  out->push_back(Finding{file.path, at.line, std::string(rule),
                         std::move(message)});
}

// ---- raw-new-delete -----------------------------------------------------

class RawNewDeleteRule : public Rule {
 public:
  std::string_view id() const override { return "raw-new-delete"; }
  std::string_view rationale() const override {
    return "ownership must be containers or smart pointers; raw new/delete "
           "is allowed only in src/nn arena code and the global allocator "
           "replacements in src/obs/prof/alloc_hook.cc";
  }
  std::string_view example_bad() const override {
    return "Node* n = new Node();\n// ...every early return above leaks n\n"
           "delete n;";
  }
  std::string_view example_good() const override {
    return "auto n = std::make_unique<Node>();  // freed on every path";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    if (StartsWith(file.path, "src/nn/")) return;
    // The heap-attribution hook IS the operator new/delete replacement
    // set; its raw expressions are the implementation, not ownership.
    if (file.path == "src/obs/prof/alloc_hook.cc") return;
    auto code = CodeTokens(file);
    for (size_t i = 0; i < code.size(); ++i) {
      if (IsIdent(code[i], "new")) {
        Report(file, *code[i], id(),
               "raw 'new' (use std::make_unique / containers)", out);
      } else if (IsIdent(code[i], "delete") && !IsPunct(Prev(code, i), "=")) {
        Report(file, *code[i], id(),
               "raw 'delete' (ownership should be RAII)", out);
      }
    }
  }
};

// ---- banned-rand --------------------------------------------------------

class BannedRandRule : public Rule {
 public:
  std::string_view id() const override { return "banned-rand"; }
  std::string_view rationale() const override {
    return "all randomness goes through common/rng.h so every run is "
           "reproducible per seed";
  }
  std::string_view example_bad() const override {
    return "int pick = rand() % candidates.size();  // differs every run";
  }
  std::string_view example_good() const override {
    return "Rng rng(config.seed);\n"
           "int pick = rng.UniformInt(0, candidates.size() - 1);";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    static const char* kBanned[] = {"rand", "srand", "rand_r", "drand48",
                                    "lrand48"};
    auto code = CodeTokens(file);
    for (size_t i = 0; i < code.size(); ++i) {
      const Token* t = code[i];
      if (t->kind != TokenKind::kIdentifier) continue;
      bool banned = std::any_of(std::begin(kBanned), std::end(kBanned),
                                [&](const char* b) { return t->text == b; });
      if (!banned || !IsPunct(At(code, i + 1), "(")) continue;
      const Token* prev = Prev(code, i);
      if (IsPunct(prev, ".") || IsPunct(prev, "->")) continue;
      Report(file, *t, id(),
             "'" + t->text + "()' is non-deterministic (use common/rng.h)",
             out);
    }
  }
};

// ---- bare-fopen ---------------------------------------------------------

class BareFopenRule : public Rule {
 public:
  std::string_view id() const override { return "bare-fopen"; }
  std::string_view rationale() const override {
    return "fopen handles must live in the FilePtr RAII wrapper so they "
           "close on every path";
  }
  std::string_view example_bad() const override {
    return "FILE* f = fopen(path.c_str(), \"rb\");\n"
           "if (!Parse(f)) return Status::IOError(path);  // leaks f";
  }
  std::string_view example_good() const override {
    return "FilePtr f(fopen(path.c_str(), \"rb\"));  // closes on all paths";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    auto code = CodeTokens(file);
    for (size_t i = 0; i < code.size(); ++i) {
      if (!IsIdent(code[i], "fopen") || !IsPunct(At(code, i + 1), "(")) {
        continue;
      }
      // Wrapped when the same statement mentions FilePtr or unique_ptr.
      bool wrapped = false;
      for (size_t j = i; j-- > 0;) {
        const Token* t = code[j];
        if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}")) break;
        if (IsIdent(t, "FilePtr") || IsIdent(t, "unique_ptr")) {
          wrapped = true;
          break;
        }
      }
      if (!wrapped) {
        Report(file, *code[i], id(),
               "bare fopen() (wrap the handle in FilePtr)", out);
      }
    }
  }
};

// ---- using-namespace-header ---------------------------------------------

class UsingNamespaceHeaderRule : public Rule {
 public:
  std::string_view id() const override { return "using-namespace-header"; }
  std::string_view rationale() const override {
    return "a using-directive in a header leaks into every includer";
  }
  std::string_view example_bad() const override {
    return "// widget.h\nusing namespace std;  // every includer inherits it";
  }
  std::string_view example_good() const override {
    return "// widget.cc (or spell the names out)\nusing std::string;";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    if (!file.is_header) return;
    auto code = CodeTokens(file);
    for (size_t i = 0; i + 1 < code.size(); ++i) {
      if (IsIdent(code[i], "using") && IsIdent(code[i + 1], "namespace")) {
        Report(file, *code[i], id(),
               "'using namespace' in a header pollutes all includers", out);
      }
    }
  }
};

// ---- include-guard ------------------------------------------------------

std::string ExpectedGuard(std::string_view path) {
  std::string_view p = path;
  if (StartsWith(p, "src/")) p.remove_prefix(4);
  std::string guard = "ALICOCO_";
  for (char c : p) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    } else {
      guard.push_back('_');
    }
  }
  guard.push_back('_');
  return guard;
}

class IncludeGuardRule : public Rule {
 public:
  std::string_view id() const override { return "include-guard"; }
  std::string_view rationale() const override {
    return "guard names must be derivable from the path "
           "(ALICOCO_<PATH>_H_) so moves and copies cannot collide";
  }
  std::string_view example_bad() const override {
    return "// src/kg/taxonomy.h\n#ifndef TAXONOMY_H  // collides on copy\n"
           "#define TAXONOMY_H";
  }
  std::string_view example_good() const override {
    return "// src/kg/taxonomy.h\n#ifndef ALICOCO_KG_TAXONOMY_H_\n"
           "#define ALICOCO_KG_TAXONOMY_H_";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    if (!file.is_header) return;
    std::string expected = ExpectedGuard(file.path);
    const Token* ifndef = nullptr;
    const Token* define = nullptr;
    for (const Token& t : file.tokens) {
      if (t.kind != TokenKind::kDirective) continue;
      if (StartsWith(t.text, "#pragma once")) {
        Report(file, t, id(),
               "#pragma once (use the " + expected + " guard)", out);
        return;
      }
      if (ifndef == nullptr) {
        if (StartsWith(t.text, "#ifndef ")) {
          ifndef = &t;
          continue;
        }
        // Any other directive before the guard: not a guarded header.
        break;
      }
      if (StartsWith(t.text, "#define ")) define = &t;
      break;
    }
    if (ifndef == nullptr || define == nullptr) {
      if (!file.tokens.empty()) {
        Report(file, file.tokens.front(), id(),
               "missing include guard (expected " + expected + ")", out);
      }
      return;
    }
    std::string got = ifndef->text.substr(8);
    std::string defined = define->text.substr(8);
    if (got != expected || defined != expected) {
      Report(file, *ifndef, id(),
             "guard is '" + got + "', expected '" + expected + "'", out);
    }
  }
};

// ---- include-order ------------------------------------------------------

struct Include {
  const Token* token;
  bool angled;
  std::string path;
};

std::vector<Include> ParseIncludes(const FileContext& file) {
  std::vector<Include> incs;
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kDirective ||
        !StartsWith(t.text, "#include")) {
      continue;
    }
    size_t open = t.text.find_first_of("<\"");
    if (open == std::string::npos) continue;
    char close = t.text[open] == '<' ? '>' : '"';
    size_t end = t.text.find(close, open + 1);
    if (end == std::string::npos) continue;
    incs.push_back(Include{&t, t.text[open] == '<',
                           t.text.substr(open + 1, end - open - 1)});
  }
  return incs;
}

class IncludeOrderRule : public Rule {
 public:
  std::string_view id() const override { return "include-order"; }
  std::string_view rationale() const override {
    return "own header first, <system> before \"project\" within a block, "
           "blocks sorted — diffs stay minimal and hidden dependencies "
           "surface";
  }
  std::string_view example_bad() const override {
    return "// src/kg/taxonomy.cc\n#include \"common/status.h\"\n"
           "#include <vector>\n#include \"kg/taxonomy.h\"  // own header last";
  }
  std::string_view example_good() const override {
    return "// src/kg/taxonomy.cc\n#include \"kg/taxonomy.h\"\n\n"
           "#include <vector>\n\n#include \"common/status.h\"";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    auto incs = ParseIncludes(file);
    if (incs.empty()) return;

    // Own-header-first: a quoted include of `<stem>.h` from a .cc must be
    // the file's first include.
    if (!file.is_header) {
      std::string own = std::string(Stem(file.path)) + ".h";
      for (size_t i = 0; i < incs.size(); ++i) {
        if (!incs[i].angled && Basename(incs[i].path) == own && i != 0) {
          Report(file, *incs[i].token, id(),
                 "own header \"" + incs[i].path +
                     "\" must be the first include",
                 out);
        }
      }
    }

    // Within a run of adjacent include lines: no <system> include after a
    // "project" include, and same-style neighbors sorted.
    for (size_t i = 1; i < incs.size(); ++i) {
      if (incs[i].token->line != incs[i - 1].token->line + 1) continue;
      if (incs[i].angled && !incs[i - 1].angled) {
        Report(file, *incs[i].token, id(),
               "<" + incs[i].path + "> after \"" + incs[i - 1].path +
                   "\" (system includes go in an earlier block)",
               out);
      } else if (incs[i].angled == incs[i - 1].angled &&
                 incs[i].path < incs[i - 1].path) {
        Report(file, *incs[i].token, id(),
               "include block not sorted: '" + incs[i].path + "' after '" +
                   incs[i - 1].path + "'",
               out);
      }
    }
  }
};

// ---- banned-time --------------------------------------------------------

class BannedTimeRule : public Rule {
 public:
  std::string_view id() const override { return "banned-time"; }
  std::string_view rationale() const override {
    return "wall-clock and hardware entropy make runs unreproducible; "
           "seeded common/rng.h is the only randomness source";
  }
  std::string_view example_bad() const override {
    return "std::mt19937 gen(std::random_device{}());  // new seed each run";
  }
  std::string_view example_good() const override {
    return "Rng rng(config.seed);  // same seed, same run, bit for bit";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    if (StartsWith(file.path, "src/common/rng")) return;
    static const char* kBannedCalls[] = {"time",      "clock", "gettimeofday",
                                         "localtime", "gmtime"};
    static const char* kBannedNames[] = {"random_device", "system_clock"};
    auto code = CodeTokens(file);
    for (size_t i = 0; i < code.size(); ++i) {
      const Token* t = code[i];
      if (t->kind != TokenKind::kIdentifier) continue;
      for (const char* name : kBannedNames) {
        if (t->text == name) {
          Report(file, *t, id(),
                 "'" + t->text + "' is non-deterministic (seed common/rng.h "
                 "explicitly)",
                 out);
        }
      }
      const Token* prev = Prev(code, i);
      if (IsPunct(prev, ".") || IsPunct(prev, "->")) continue;
      if (!IsPunct(At(code, i + 1), "(")) continue;
      for (const char* name : kBannedCalls) {
        if (t->text == name) {
          Report(file, *t, id(),
                 "'" + t->text + "()' reads the wall clock (determinism "
                 "gate)",
                 out);
        }
      }
    }
  }
};

// ---- unordered-persist-iter ---------------------------------------------

bool IsUnorderedContainer(std::string_view text) {
  return text == "unordered_map" || text == "unordered_set" ||
         text == "unordered_multimap" || text == "unordered_multiset";
}

class UnorderedPersistIterRule : public Rule {
 public:
  std::string_view id() const override { return "unordered-persist-iter"; }
  std::string_view rationale() const override {
    return "iterating a hash container while writing a snapshot bakes "
           "hash-order into persisted bytes; sort keys first";
  }
  std::string_view example_bad() const override {
    return "for (const auto& [id, node] : nodes_) {  // unordered_map\n"
           "  out << id << node.name;  // byte order = hash order\n}";
  }
  std::string_view example_good() const override {
    return "std::vector<int64_t> ids = SortedKeys(nodes_);\n"
           "for (int64_t id : ids) out << id << nodes_.at(id).name;";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    if (!StartsWith(file.path, "src/kg/persistence") &&
        !StartsWith(file.path, "src/nn/serialize")) {
      return;
    }
    auto code = CodeTokens(file);

    // Pass 1: names declared with an unordered container type.
    std::set<std::string> unordered_names;
    for (size_t i = 0; i < code.size(); ++i) {
      if (code[i]->kind != TokenKind::kIdentifier ||
          !IsUnorderedContainer(code[i]->text)) {
        continue;
      }
      size_t j = i + 1;
      if (IsPunct(At(code, j), "<")) {
        int depth = 0;
        for (; j < code.size(); ++j) {
          if (IsPunct(code[j], "<")) ++depth;
          if (IsPunct(code[j], ">") && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      while (IsPunct(At(code, j), "&") || IsPunct(At(code, j), "*")) ++j;
      const Token* name = At(code, j);
      if (name != nullptr && name->kind == TokenKind::kIdentifier) {
        unordered_names.insert(name->text);
      }
    }

    // Pass 2: range-fors whose range expression names one of them (or an
    // unordered type directly).
    for (size_t i = 0; i + 1 < code.size(); ++i) {
      if (!IsIdent(code[i], "for") || !IsPunct(code[i + 1], "(")) continue;
      int depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < code.size(); ++j) {
        if (IsPunct(code[j], "(")) ++depth;
        if (IsPunct(code[j], ")") && --depth == 0) {
          close = j;
          break;
        }
        if (depth == 1 && colon == 0 && IsPunct(code[j], ":")) colon = j;
      }
      if (colon == 0 || close == 0) continue;
      for (size_t j = colon + 1; j < close; ++j) {
        if (code[j]->kind != TokenKind::kIdentifier) continue;
        if (unordered_names.count(code[j]->text) != 0 ||
            IsUnorderedContainer(code[j]->text)) {
          Report(file, *code[i], id(),
                 "iteration over unordered container '" + code[j]->text +
                     "' feeds persisted output; sort keys first",
                 out);
          break;
        }
      }
    }
  }
};

// ---- lock-discipline ----------------------------------------------------

class LockDisciplineRule : public Rule {
 public:
  std::string_view id() const override { return "lock-discipline"; }
  std::string_view rationale() const override {
    return "concurrency state must be visible to clang -Wthread-safety: "
           "annotated alicoco::Mutex/CondVar only, and a mutex member must "
           "guard something";
  }
  std::string_view example_bad() const override {
    return "std::mutex mu_;  // invisible to -Wthread-safety\nint hits_;";
  }
  std::string_view example_good() const override {
    return "Mutex mu_;\nint hits_ ALICOCO_GUARDED_BY(mu_);";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    if (StartsWith(file.path, "tools/lint/") ||
        file.path == "src/common/mutex.h") {
      return;  // the wrapper itself, and this analyzer's own string tables
    }
    auto code = CodeTokens(file);

    bool has_guard_annotation = false;
    for (const Token* t : code) {
      if (t->kind == TokenKind::kIdentifier &&
          (t->text == "ALICOCO_GUARDED_BY" ||
           t->text == "ALICOCO_PT_GUARDED_BY")) {
        has_guard_annotation = true;
        break;
      }
    }

    static const char* kRawTypes[] = {
        "mutex",        "recursive_mutex",        "timed_mutex",
        "shared_mutex", "condition_variable",     "condition_variable_any",
    };
    for (size_t i = 0; i + 2 < code.size(); ++i) {
      // Raw standard-library lock types anywhere in first-party code.
      if (IsIdent(code[i], "std") && IsPunct(code[i + 1], "::")) {
        for (const char* raw : kRawTypes) {
          if (IsIdent(code[i + 2], raw)) {
            Report(file, *code[i + 2], id(),
                   "raw std::" + code[i + 2]->text +
                       " (use the annotated alicoco::Mutex/CondVar from "
                       "common/mutex.h)",
                   out);
          }
        }
      }
      // A Mutex/CondVar member whose file declares no guarded data.
      if ((IsIdent(code[i], "Mutex") || IsIdent(code[i], "CondVar")) &&
          At(code, i + 1) != nullptr &&
          code[i + 1]->kind == TokenKind::kIdentifier &&
          EndsWith(code[i + 1]->text, "_") && IsPunct(At(code, i + 2), ";") &&
          !has_guard_annotation) {
        Report(file, *code[i], id(),
               "'" + code[i]->text + " " + code[i + 1]->text +
                   "' member but no ALICOCO_GUARDED_BY annotation in this "
                   "file",
               out);
      }
    }
  }
};

// ---- mutex-name-literal -------------------------------------------------

class MutexNameLiteralRule : public Rule {
 public:
  std::string_view id() const override { return "mutex-name-literal"; }
  std::string_view rationale() const override {
    return "a named (instrumented) Mutex must take a string literal: the "
           "lock-stats sink keeps the pointer past the constructor, so the "
           "name needs static storage duration (common/mutex.h)";
  }
  std::string_view example_bad() const override {
    return "Mutex mu_{label_.c_str()};  // dangles when label_ reallocates";
  }
  std::string_view example_good() const override {
    return "Mutex mu_{\"pipeline.worker_pool.mu\"};";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    // Library code only: tests may build names with controlled lifetime
    // (e.g. proving that equal-text names fold into one metric series).
    if (!StartsWith(file.path, "src/")) return;
    if (file.path == "src/common/mutex.h") return;  // the wrapper itself
    auto code = CodeTokens(file);
    for (size_t i = 0; i + 3 < code.size(); ++i) {
      // Declaration shape: `Mutex <name>(<arg>...)` / `Mutex <name>{<arg>...}`.
      // References, pointers, bare `Mutex m;` declarations, and the
      // copy-ctor deletion (`Mutex(const Mutex&)`) all fail this match.
      if (!IsIdent(code[i], "Mutex")) continue;
      const Token* name = code[i + 1];
      if (name->kind != TokenKind::kIdentifier) continue;
      const Token* open = code[i + 2];
      const bool paren = IsPunct(open, "(");
      if (!paren && !IsPunct(open, "{")) continue;
      const Token* arg = code[i + 3];
      // Empty parens/braces are default construction: an unnamed mutex.
      if (IsPunct(arg, paren ? ")" : "}")) continue;
      if (arg->kind == TokenKind::kString) continue;
      Report(file, *code[i], id(),
             "'Mutex " + name->text +
                 "' constructed from a non-literal name (the sink keeps "
                 "the pointer; pass a string literal)",
             out);
    }
  }
};

// ---- direct-stderr-log --------------------------------------------------

class DirectStderrLogRule : public Rule {
 public:
  std::string_view id() const override { return "direct-stderr-log"; }
  std::string_view rationale() const override {
    return "library code must log through common/logging.h (ALICOCO_LOG) "
           "so records carry timestamps/thread ids and honor the "
           "installed sink; raw stderr writes bypass all of that";
  }
  std::string_view example_bad() const override {
    return "std::cerr << \"rebuild failed: \" << status << \"\\n\";";
  }
  std::string_view example_good() const override {
    return "ALICOCO_LOG(ERROR) << \"rebuild failed: \" << status;";
  }
  void Check(const FileContext& file,
             std::vector<Finding>* out) const override {
    // Only library code under src/; the logging backend itself and the
    // CHECK-failure path are the two sanctioned raw-stderr writers.
    if (!StartsWith(file.path, "src/")) return;
    if (file.path == "src/common/logging.cc" ||
        file.path == "src/common/check.cc") {
      return;
    }
    auto code = CodeTokens(file);
    for (size_t i = 0; i < code.size(); ++i) {
      const Token* t = code[i];
      if (t->kind != TokenKind::kIdentifier) continue;
      if (t->text == "fprintf" && IsPunct(At(code, i + 1), "(") &&
          IsIdent(At(code, i + 2), "stderr")) {
        Report(file, *t, id(),
               "fprintf(stderr, ...) bypasses the Logger sink (use "
               "ALICOCO_LOG from common/logging.h)",
               out);
      }
      if (t->text == "cerr") {
        Report(file, *t, id(),
               "std::cerr bypasses the Logger sink (use ALICOCO_LOG from "
               "common/logging.h)",
               out);
      }
    }
  }
};

}  // namespace

const std::vector<std::unique_ptr<Rule>>& RuleRegistry() {
  static const std::vector<std::unique_ptr<Rule>> kRules = [] {
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<RawNewDeleteRule>());
    rules.push_back(std::make_unique<BannedRandRule>());
    rules.push_back(std::make_unique<BareFopenRule>());
    rules.push_back(std::make_unique<UsingNamespaceHeaderRule>());
    rules.push_back(std::make_unique<IncludeGuardRule>());
    rules.push_back(std::make_unique<IncludeOrderRule>());
    rules.push_back(std::make_unique<BannedTimeRule>());
    rules.push_back(std::make_unique<UnorderedPersistIterRule>());
    rules.push_back(std::make_unique<LockDisciplineRule>());
    rules.push_back(std::make_unique<MutexNameLiteralRule>());
    rules.push_back(std::make_unique<DirectStderrLogRule>());
    return rules;
  }();
  return kRules;
}

}  // namespace alicoco::lint
