// Per-function control-flow graphs for alicoco_lint's dataflow passes.
//
// The builder consumes the same comment/directive-free token-pointer
// stream the ProjectIndex extractor walks, and produces basic blocks of
// statements split on `if/else/for/while/do/switch/return/break/continue`.
// Each statement records its token range, lexical scope depth, and loop
// nesting depth, so passes can reason about both control flow (via block
// edges) and lifetimes (via scopes) without an AST.
//
// Conservatism is deliberate and one-sided: anything the builder cannot
// classify — `goto`, coroutines, unbalanced macro soup — flips
// `Cfg::fell_back` and the dataflow passes stay silent on that function.
// A lint gate that must keep the tree clean with zero suppressions can
// afford missed findings; it cannot afford false ones. Control-flow-like
// macros with brace bodies are parsed as plain nested blocks (no loop or
// branch semantics), which under-approximates in the same safe direction.

#ifndef ALICOCO_TOOLS_LINT_CFG_H_
#define ALICOCO_TOOLS_LINT_CFG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace alicoco::lint {

enum class StmtKind {
  kPlain,   // expression / declaration statement
  kCond,    // an if/while/for/switch condition (evaluated in its block)
  kReturn,  // `return ...;`
};

/// One statement: a half-open token range into the code stream the CFG was
/// built from, plus the lexical facts the passes key on.
struct Stmt {
  size_t begin = 0;  ///< first token index
  size_t end = 0;    ///< one past the last token
  int line = 0;
  int scope_depth = 0;  ///< 0 = function-body top level, +1 per nested scope
  int loop_depth = 0;   ///< number of enclosing loops (0 = straight-line)
  StmtKind kind = StmtKind::kPlain;
};

struct BasicBlock {
  int id = 0;
  std::vector<Stmt> stmts;
  std::vector<int> succs;
  std::vector<int> preds;
};

struct Cfg {
  std::vector<BasicBlock> blocks;
  int entry = 0;
  int exit = 0;
  /// True when the builder met something it could not model (goto, torn
  /// braces). The graph is then just entry->exit and passes must skip the
  /// function rather than analyze a wrong approximation.
  bool fell_back = false;
};

/// A function definition's location inside a file's code-token stream, as
/// recorded by the ProjectIndex extractor. `body_begin` indexes the `{`,
/// `body_end` is one past the matching `}`.
struct FunctionBody {
  std::string name;
  std::string class_name;  ///< "" for free functions
  int line = 0;
  size_t decl_begin = 0;  ///< first token of the declaration
  size_t body_begin = 0;
  size_t body_end = 0;
  bool hot = false;          ///< marked `// lint:hot`
  bool returns_view = false;  ///< return type mentions string_view/span
  bool returns_ref = false;   ///< return type is a (non-rvalue) reference
};

/// Builds the CFG for one function body over `code` (comments and
/// directives already filtered out). `body_begin` must index the opening
/// `{` and `body_end` sit one past the closing `}`.
Cfg BuildCfg(const std::vector<const Token*>& code, size_t body_begin,
             size_t body_end);

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_CFG_H_
