// Rule registry for alicoco_lint: each rule is one pass over a lexed
// file, emitting findings keyed by a stable kebab-case rule id. Rules are
// pattern-level (token stream, no AST), deterministic, and documented in
// the README "Static analysis" rule catalog.

#ifndef ALICOCO_TOOLS_LINT_RULES_H_
#define ALICOCO_TOOLS_LINT_RULES_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/lexer.h"

namespace alicoco::lint {

struct Finding {
  std::string file;   // repo-relative path, forward slashes
  int line = 0;       // 1-based
  std::string rule;   // rule id
  std::string message;
};

/// One file, lexed, with the repo-relative path the path-scoped rules
/// dispatch on.
struct FileContext {
  std::string path;
  bool is_header = false;
  std::vector<Token> tokens;
};

class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable kebab-case id used in findings and suppressions.
  virtual std::string_view id() const = 0;
  /// One-line rationale for --list-rules and the README catalog.
  virtual std::string_view rationale() const = 0;
  /// Minimal bad/good example pair for `--explain <rule>`. Empty means
  /// the rule has no example yet; --explain prints the rationale alone.
  virtual std::string_view example_bad() const { return ""; }
  virtual std::string_view example_good() const { return ""; }
  virtual void Check(const FileContext& file,
                     std::vector<Finding>* out) const = 0;
};

/// The full rule set, in a fixed registration order.
const std::vector<std::unique_ptr<Rule>>& RuleRegistry();

}  // namespace alicoco::lint

#endif  // ALICOCO_TOOLS_LINT_RULES_H_
