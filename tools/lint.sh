#!/usr/bin/env bash
# Static-analysis gate.
#
#   tools/lint.sh [build-dir] [--changed-only]
#
# Three layers:
#   1. alicoco_lint, the in-repo analyzer (tools/lint/): lexer-aware banned
#      patterns, include hygiene, determinism rules, and lock discipline,
#      with findings as stable `file:line:rule-id: message` lines and the
#      checked-in suppression file tools/lint/suppressions.txt. Built on
#      demand; this is the authoritative layer. Runs twice: the per-file
#      tree walk, then whole-program mode (--project src) for the
#      include-graph / lock-order / discarded-result / dataflow passes,
#      writing SARIF to <build-dir>/lint/alicoco_lint.sarif and keeping an
#      incremental summary cache in <build-dir>/lint/summary.cache.
#      With --changed-only, project-mode findings are limited to files
#      that changed since the cached run (pre-commit mode).
#   2. clang-tidy over every first-party translation unit, driven by the
#      compile_commands.json in the build dir (default: build/). Skipped
#      with a warning when clang-tidy is not installed.
#   3. Grep fallback for the banned-pattern subset, run ONLY when layer 1
#      could not run (no compiler/cmake available) -- the gate never
#      silently passes on nothing.
#
# Exit status 0 iff every layer that ran is clean.

set -u
cd "$(dirname "$0")/.."

BUILD_DIR="build"
CHANGED_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --changed-only) CHANGED_ONLY=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
FAIL=0

note() { printf '%s\n' "$*"; }
fail() { printf 'LINT FAIL: %s\n' "$*"; FAIL=1; }

# ---- Layer 1: alicoco_lint ----------------------------------------------

ANALYZER_RAN=0
if command -v cmake >/dev/null 2>&1 && { command -v c++ >/dev/null 2>&1 \
    || command -v g++ >/dev/null 2>&1 || command -v clang++ >/dev/null 2>&1; }; then
  if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
    note "configuring ${BUILD_DIR}..."
    cmake -B "${BUILD_DIR}" -S . >/dev/null || fail "cmake configure"
  fi
  if [ -f "${BUILD_DIR}/CMakeCache.txt" ]; then
    note "building alicoco_lint..."
    if cmake --build "${BUILD_DIR}" --target alicoco_lint -j >/dev/null; then
      ANALYZER_RAN=1
      if ! "${BUILD_DIR}/tools/lint/alicoco_lint" --root .; then
        fail "alicoco_lint reported findings"
      fi
      mkdir -p "${BUILD_DIR}/lint"
      PROJECT_FLAGS=(--root . --project src
        --sarif "${BUILD_DIR}/lint/alicoco_lint.sarif"
        --cache "${BUILD_DIR}/lint/summary.cache" --stats)
      [ "$CHANGED_ONLY" -eq 1 ] && PROJECT_FLAGS+=(--changed-only)
      note "running project passes (include-graph, lock-order, discarded-result, dataflow)..."
      if ! "${BUILD_DIR}/tools/lint/alicoco_lint" "${PROJECT_FLAGS[@]}"; then
        fail "alicoco_lint --project src reported findings"
      fi
    else
      fail "alicoco_lint failed to build"
    fi
  fi
else
  note "no cmake/compiler found; falling back to the grep layer"
fi

# ---- Layer 2: clang-tidy ------------------------------------------------

if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    note "configuring ${BUILD_DIR} to produce compile_commands.json..."
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null \
      || { fail "cmake configure for compile_commands.json"; }
  fi
  if [ -f "${BUILD_DIR}/compile_commands.json" ]; then
    # All first-party TU roots; tests are covered by the analyzer layer and
    # excluded here because gtest macros drown clang-tidy in noise.
    mapfile -t TIDY_SRCS < <(find src bench examples tools/lint \
      -name fixtures -prune -o \( -name '*.cc' -o -name '*.cpp' \) -print \
      | sort)
    note "clang-tidy over ${#TIDY_SRCS[@]} translation units..."
    if ! clang-tidy -p "${BUILD_DIR}" --quiet "${TIDY_SRCS[@]}"; then
      fail "clang-tidy reported findings"
    fi
  fi
else
  note "clang-tidy not found; skipping the clang-tidy layer"
fi

# ---- Layer 3: grep fallback ---------------------------------------------
# Runs only when alicoco_lint could not be built; a toolchain-free
# approximation of its banned-pattern rules.

if [ "$ANALYZER_RAN" -eq 0 ]; then
  mapfile -t ALL_FILES < <(find src bench examples tests -name fixtures -prune \
    -o \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print | sort)

  # Strip /* */ block comments, // line comments, and string literals
  # crudely enough for these greps while preserving the line structure so
  # reported line numbers stay meaningful.
  strip_noise() {
    awk 'BEGIN { inc = 0 }
    {
      line = $0; out = ""; i = 1; n = length(line)
      while (i <= n) {
        two = substr(line, i, 2)
        if (inc) {
          if (two == "*/") { inc = 0; i += 2 } else { i += 1 }
          continue
        }
        if (two == "/*") { inc = 1; i += 2; continue }
        if (two == "//") { break }
        c = substr(line, i, 1)
        if (c == "\"") {
          out = out "\"\""; i += 1
          while (i <= n) {
            d = substr(line, i, 1)
            if (d == "\\") { i += 2; continue }
            if (d == "\"") { i += 1; break }
            i += 1
          }
          continue
        }
        out = out c; i += 1
      }
      print out
    }' "$1"
  }

  # Raw new/delete are allowed only under src/nn (arena-style tensor
  # buffers); everywhere else ownership must be containers/smart pointers.
  for f in "${ALL_FILES[@]}"; do
    case "$f" in src/nn/*) continue ;; esac
    if strip_noise "$f" | grep -nE '(^|[^[:alnum:]_.])new[[:space:]]+[[:alnum:]_:<]|(^|[^[:alnum:]_.=][[:space:]])delete[[:space:]]*(\[\])?[[:space:]]+[[:alnum:]_]' >/dev/null; then
      strip_noise "$f" | grep -nE '(^|[^[:alnum:]_.])new[[:space:]]+[[:alnum:]_:<]|(^|[^[:alnum:]_.=][[:space:]])delete[[:space:]]*(\[\])?[[:space:]]+[[:alnum:]_]' \
        | sed "s|^|$f:|"
      fail "raw new/delete outside src/nn in $f"
    fi
  done

  # rand()/srand() are banned: all randomness goes through common/rng.h so
  # datagen stays deterministic per seed.
  for f in "${ALL_FILES[@]}"; do
    if strip_noise "$f" | grep -nE '(^|[^[:alnum:]_])s?rand[[:space:]]*\(' >/dev/null; then
      strip_noise "$f" | grep -nE '(^|[^[:alnum:]_])s?rand[[:space:]]*\(' | sed "s|^|$f:|"
      fail "rand()/srand() in $f (use common/rng.h)"
    fi
  done

  # fopen must be wrapped in the FilePtr RAII alias so the handle is closed
  # on every path.
  for f in "${ALL_FILES[@]}"; do
    if strip_noise "$f" | grep -nE 'fopen[[:space:]]*\(' | grep -vE 'FilePtr|unique_ptr' >/dev/null; then
      strip_noise "$f" | grep -nE 'fopen[[:space:]]*\(' | grep -vE 'FilePtr|unique_ptr' | sed "s|^|$f:|"
      fail "unchecked fopen in $f (wrap in FilePtr)"
    fi
  done
fi

if [ "$FAIL" -eq 0 ]; then
  note "lint: clean"
else
  note "lint: FAILED"
fi
exit "$FAIL"
