#!/usr/bin/env bash
# Static-analysis gate.
#
#   tools/lint.sh [build-dir]
#
# Two layers:
#   1. clang-tidy over every first-party translation unit, driven by the
#      compile_commands.json in the build dir (default: build/). Skipped
#      with a warning when clang-tidy is not installed -- the grep layer
#      below still runs, so the gate never silently passes on nothing.
#   2. Banned-pattern greps that need no toolchain: raw new/delete outside
#      src/nn (everything else must use containers/smart pointers), the
#      non-deterministic rand()/srand() family, and fopen() calls outside
#      the FilePtr RAII wrapper.
#
# Exit status 0 iff every layer that ran is clean.

set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FAIL=0

note() { printf '%s\n' "$*"; }
fail() { printf 'LINT FAIL: %s\n' "$*"; FAIL=1; }

# Every first-party C++ file (sources and headers).
mapfile -t ALL_FILES < <(find src bench examples tests \
  -name '*.cc' -o -name '*.h' -o -name '*.cpp' | sort)

# ---- Layer 1: clang-tidy ------------------------------------------------

if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    note "configuring ${BUILD_DIR} to produce compile_commands.json..."
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null \
      || { fail "cmake configure for compile_commands.json"; }
  fi
  if [ -f "${BUILD_DIR}/compile_commands.json" ]; then
    mapfile -t TIDY_SRCS < <(find src bench examples apps \
      -name '*.cc' -o -name '*.cpp' | sort)
    note "clang-tidy over ${#TIDY_SRCS[@]} translation units..."
    if ! clang-tidy -p "${BUILD_DIR}" --quiet "${TIDY_SRCS[@]}"; then
      fail "clang-tidy reported findings"
    fi
  fi
else
  note "clang-tidy not found; skipping layer 1 (grep layer still enforced)"
fi

# ---- Layer 2: banned patterns -------------------------------------------

# Strip // comments and string literals crudely enough for these greps; a
# banned token inside a comment should not fail the build.
strip_noise() {
  sed -e 's://.*$::' -e 's:"[^"]*":"":g' "$1"
}

# Raw new/delete are allowed only under src/nn (arena-style tensor buffers);
# everywhere else ownership must be containers or smart pointers.
for f in "${ALL_FILES[@]}"; do
  case "$f" in src/nn/*) continue ;; esac
  if strip_noise "$f" | grep -nE '(^|[^[:alnum:]_.])new[[:space:]]+[[:alnum:]_:<]|(^|[^[:alnum:]_.])delete[[:space:]]*(\[\])?[[:space:]]+[[:alnum:]_]' >/dev/null; then
    strip_noise "$f" | grep -nE '(^|[^[:alnum:]_.])new[[:space:]]+[[:alnum:]_:<]|(^|[^[:alnum:]_.])delete[[:space:]]*(\[\])?[[:space:]]+[[:alnum:]_]' \
      | sed "s|^|$f:|"
    fail "raw new/delete outside src/nn in $f"
  fi
done

# rand()/srand() are banned: all randomness goes through common/rng.h so
# datagen stays deterministic per seed.
for f in "${ALL_FILES[@]}"; do
  if strip_noise "$f" | grep -nE '(^|[^[:alnum:]_])s?rand[[:space:]]*\(' >/dev/null; then
    strip_noise "$f" | grep -nE '(^|[^[:alnum:]_])s?rand[[:space:]]*\(' | sed "s|^|$f:|"
    fail "rand()/srand() in $f (use common/rng.h)"
  fi
done

# fopen must be wrapped in the FilePtr RAII alias (nn/serialize.cc) so the
# handle is closed on every path.
for f in "${ALL_FILES[@]}"; do
  if strip_noise "$f" | grep -nE 'fopen[[:space:]]*\(' | grep -vE 'FilePtr|unique_ptr' >/dev/null; then
    strip_noise "$f" | grep -nE 'fopen[[:space:]]*\(' | grep -vE 'FilePtr|unique_ptr' | sed "s|^|$f:|"
    fail "unchecked fopen in $f (wrap in FilePtr)"
  fi
done

if [ "$FAIL" -eq 0 ]; then
  note "lint: clean"
else
  note "lint: FAILED"
fi
exit "$FAIL"
