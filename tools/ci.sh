#!/usr/bin/env bash
# Full verification ladder, in increasing cost:
#
#   1. lint gate (tools/lint.sh): per-file rules over the whole tree, then
#      the cross-file passes (include-graph layering, lock-order deadlock
#      detection, discarded-result, CFG dataflow, untrusted-input taint)
#      via `alicoco_lint --project src`, leaving
#      build/lint/alicoco_lint.sarif for CI artifact upload
#   2. plain RelWithDebInfo build + full ctest, then the suite again with
#      ALICOCO_SIMD=scalar so the portable kernel tier stays covered on
#      AVX2 hardware
#   3. pipeline profile gate (obs_report vs committed BENCH_pipeline.json)
#      + profiling-tier gate: per-stage cpu attribution vs the committed
#      BENCH_profile.json, collapsed-stack smoke, disabled-overhead <1%
#   4. kernel smoke gate (bench_micro vs committed BENCH_kernels.json)
#   5. ASan+UBSan build + full ctest   (DCHECKs forced on), then an
#      explicit corrupted-checkpoint corpus replay: every deserializer
#      over the committed truncated/bit-flipped inputs in tests/corpus/
#   6. TSan build + threaded tests     (DCHECKs forced on)
#
# Any sanitizer report aborts the offending test (halt_on_error /
# -fno-sanitize-recover), so a non-zero ctest exit IS the sanitizer gate.
# Usage: tools/ci.sh [--fast]   (--fast: skip the sanitizer builds)

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n==== %s ====\n' "$*"; }

step "lint"
tools/lint.sh
# Every registered rule must be able to explain itself (rationale +
# bad/good example); spot-check the newest rule's card renders.
build/tools/lint/alicoco_lint --explain mutex-name-literal >/dev/null

step "plain build + tests"
cmake --preset default >/dev/null
cmake --build --preset default -j "${JOBS}"
ctest --preset default

step "forced-scalar kernel tier + tests"
# Re-run the suite with the kernel dispatcher pinned to the portable tier,
# so CI covers the scalar fp32/int8/fp16 kernels (and the quantized formats
# on top of them) even on AVX2 hardware where CPUID would pick SIMD.
ALICOCO_SIMD=scalar ctest --preset default

step "analyzer self-bench gate"
# Cold vs warm analysis of the real tree on the simulated cost clock, plus
# the interprocedural-tier cost, compared against the committed baseline.
# Figures are machine-independent (simulated clock), so the ratio is tight.
mkdir -p build/obs
build/tools/lint/alicoco_lint --root . --project src \
  --self-bench build/obs/BENCH_lint.json \
  --bench-baseline tools/lint/BENCH_lint.json --max-regress 0.25

step "pipeline profile gate"
# Re-runs the instrumented bench pipeline and compares per-stage wall time
# against the committed baseline; a stage beyond 2x baseline + slack fails.
# The generous ratio + slack absorb machine-to-machine variance while still
# catching order-of-magnitude stage regressions.
mkdir -p build/obs
build/bench/obs_report --out build/obs/BENCH_pipeline.json --outdir build/obs \
  --baseline BENCH_pipeline.json --max-regress 2.0 --slack-ms 500 \
  --profile-out build/obs/BENCH_profile.json \
  --profile-baseline BENCH_profile.json --overhead-limit 1.0

step "profiling tier smoke"
# The run above must leave a non-empty collapsed-stack dump (flamegraph
# input) and a profile whose schema the tooling can re-read.
test -s build/obs/profile.collapsed
python3 - <<'PY'
import json
prof = json.load(open("build/obs/BENCH_profile.json"))
assert prof["schema"] == "alicoco.bench_profile.v1", prof["schema"]
assert len(prof["stages"]) >= 9, [s["name"] for s in prof["stages"]]
PY

step "kernel smoke gate"
# Deterministic kernel/fused-op/parallel-train timings vs the committed
# BENCH_kernels.json, with the same 2x + slack rule as the pipeline gate.
build/bench/bench_micro --kernels-out build/obs/BENCH_kernels.json \
  --baseline BENCH_kernels.json --max-regress 2.0 --slack-us 200

if [ "${FAST}" -eq 1 ]; then
  echo "--fast: skipping sanitizer builds"
  exit 0
fi

step "ASan + UBSan build + tests"
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --preset asan

step "corrupted-checkpoint corpus replay (ASan)"
# Replays tests/corpus/ — truncated, bit-flipped, and oversized-count
# inputs for every deserializer (kg snapshot, nn checkpoint + quantized
# store, pipeline profile, SARIF, lint cache) — under ASan explicitly,
# so a corrupt-input regression is named by the gate that catches it.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --preset asan -R CorpusReplay --output-on-failure

step "TSan build + threaded tests"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "${JOBS}"
# The threaded surface: the thread pool (incl. the race stress suite), the
# observability registry/tracer stress suite, the profiling-tier stress
# suite (sample ring, instrumented mutex, flight recorder), and the
# trainers that fan out over the pool. Running the full suite under TSan
# works too but takes far longer for no extra thread coverage.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --preset tsan -R 'ThreadPool|ObsRace|ProfRace|LockStats|LockContentionMetrics|Training|Skipgram|Classifier|Matching|Tagger|Projection'

step "all green"
