file(REMOVE_RECURSE
  "CMakeFiles/alicoco_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/alicoco_eval.dir/eval/metrics.cc.o.d"
  "libalicoco_eval.a"
  "libalicoco_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
