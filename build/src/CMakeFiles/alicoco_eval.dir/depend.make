# Empty dependencies file for alicoco_eval.
# This may be replaced when dependencies are built.
