file(REMOVE_RECURSE
  "libalicoco_eval.a"
)
