
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/grammar.cc" "src/CMakeFiles/alicoco_datagen.dir/datagen/grammar.cc.o" "gcc" "src/CMakeFiles/alicoco_datagen.dir/datagen/grammar.cc.o.d"
  "/root/repo/src/datagen/legacy_ontology.cc" "src/CMakeFiles/alicoco_datagen.dir/datagen/legacy_ontology.cc.o" "gcc" "src/CMakeFiles/alicoco_datagen.dir/datagen/legacy_ontology.cc.o.d"
  "/root/repo/src/datagen/resources.cc" "src/CMakeFiles/alicoco_datagen.dir/datagen/resources.cc.o" "gcc" "src/CMakeFiles/alicoco_datagen.dir/datagen/resources.cc.o.d"
  "/root/repo/src/datagen/vocab_gen.cc" "src/CMakeFiles/alicoco_datagen.dir/datagen/vocab_gen.cc.o" "gcc" "src/CMakeFiles/alicoco_datagen.dir/datagen/vocab_gen.cc.o.d"
  "/root/repo/src/datagen/world.cc" "src/CMakeFiles/alicoco_datagen.dir/datagen/world.cc.o" "gcc" "src/CMakeFiles/alicoco_datagen.dir/datagen/world.cc.o.d"
  "/root/repo/src/datagen/world_spec.cc" "src/CMakeFiles/alicoco_datagen.dir/datagen/world_spec.cc.o" "gcc" "src/CMakeFiles/alicoco_datagen.dir/datagen/world_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alicoco_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
