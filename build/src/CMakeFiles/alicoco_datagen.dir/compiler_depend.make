# Empty compiler generated dependencies file for alicoco_datagen.
# This may be replaced when dependencies are built.
