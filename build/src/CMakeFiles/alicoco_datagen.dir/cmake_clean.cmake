file(REMOVE_RECURSE
  "CMakeFiles/alicoco_datagen.dir/datagen/grammar.cc.o"
  "CMakeFiles/alicoco_datagen.dir/datagen/grammar.cc.o.d"
  "CMakeFiles/alicoco_datagen.dir/datagen/legacy_ontology.cc.o"
  "CMakeFiles/alicoco_datagen.dir/datagen/legacy_ontology.cc.o.d"
  "CMakeFiles/alicoco_datagen.dir/datagen/resources.cc.o"
  "CMakeFiles/alicoco_datagen.dir/datagen/resources.cc.o.d"
  "CMakeFiles/alicoco_datagen.dir/datagen/vocab_gen.cc.o"
  "CMakeFiles/alicoco_datagen.dir/datagen/vocab_gen.cc.o.d"
  "CMakeFiles/alicoco_datagen.dir/datagen/world.cc.o"
  "CMakeFiles/alicoco_datagen.dir/datagen/world.cc.o.d"
  "CMakeFiles/alicoco_datagen.dir/datagen/world_spec.cc.o"
  "CMakeFiles/alicoco_datagen.dir/datagen/world_spec.cc.o.d"
  "libalicoco_datagen.a"
  "libalicoco_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
