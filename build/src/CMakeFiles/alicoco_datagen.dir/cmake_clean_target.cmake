file(REMOVE_RECURSE
  "libalicoco_datagen.a"
)
