file(REMOVE_RECURSE
  "CMakeFiles/alicoco_common.dir/common/logging.cc.o"
  "CMakeFiles/alicoco_common.dir/common/logging.cc.o.d"
  "CMakeFiles/alicoco_common.dir/common/rng.cc.o"
  "CMakeFiles/alicoco_common.dir/common/rng.cc.o.d"
  "CMakeFiles/alicoco_common.dir/common/status.cc.o"
  "CMakeFiles/alicoco_common.dir/common/status.cc.o.d"
  "CMakeFiles/alicoco_common.dir/common/string_util.cc.o"
  "CMakeFiles/alicoco_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/alicoco_common.dir/common/table_printer.cc.o"
  "CMakeFiles/alicoco_common.dir/common/table_printer.cc.o.d"
  "CMakeFiles/alicoco_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/alicoco_common.dir/common/thread_pool.cc.o.d"
  "libalicoco_common.a"
  "libalicoco_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
