file(REMOVE_RECURSE
  "libalicoco_common.a"
)
