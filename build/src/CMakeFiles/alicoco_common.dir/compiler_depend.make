# Empty compiler generated dependencies file for alicoco_common.
# This may be replaced when dependencies are built.
