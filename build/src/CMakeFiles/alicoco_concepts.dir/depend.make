# Empty dependencies file for alicoco_concepts.
# This may be replaced when dependencies are built.
