file(REMOVE_RECURSE
  "CMakeFiles/alicoco_concepts.dir/concepts/candidate_generation.cc.o"
  "CMakeFiles/alicoco_concepts.dir/concepts/candidate_generation.cc.o.d"
  "CMakeFiles/alicoco_concepts.dir/concepts/classifier.cc.o"
  "CMakeFiles/alicoco_concepts.dir/concepts/classifier.cc.o.d"
  "CMakeFiles/alicoco_concepts.dir/concepts/criteria.cc.o"
  "CMakeFiles/alicoco_concepts.dir/concepts/criteria.cc.o.d"
  "libalicoco_concepts.a"
  "libalicoco_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
