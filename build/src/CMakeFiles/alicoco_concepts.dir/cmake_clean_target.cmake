file(REMOVE_RECURSE
  "libalicoco_concepts.a"
)
