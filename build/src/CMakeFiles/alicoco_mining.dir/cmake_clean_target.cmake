file(REMOVE_RECURSE
  "libalicoco_mining.a"
)
