# Empty dependencies file for alicoco_mining.
# This may be replaced when dependencies are built.
