file(REMOVE_RECURSE
  "CMakeFiles/alicoco_mining.dir/mining/concept_miner.cc.o"
  "CMakeFiles/alicoco_mining.dir/mining/concept_miner.cc.o.d"
  "CMakeFiles/alicoco_mining.dir/mining/distant_supervision.cc.o"
  "CMakeFiles/alicoco_mining.dir/mining/distant_supervision.cc.o.d"
  "CMakeFiles/alicoco_mining.dir/mining/sequence_labeler.cc.o"
  "CMakeFiles/alicoco_mining.dir/mining/sequence_labeler.cc.o.d"
  "libalicoco_mining.a"
  "libalicoco_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
