
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/concept_net.cc" "src/CMakeFiles/alicoco_kg.dir/kg/concept_net.cc.o" "gcc" "src/CMakeFiles/alicoco_kg.dir/kg/concept_net.cc.o.d"
  "/root/repo/src/kg/graphviz.cc" "src/CMakeFiles/alicoco_kg.dir/kg/graphviz.cc.o" "gcc" "src/CMakeFiles/alicoco_kg.dir/kg/graphviz.cc.o.d"
  "/root/repo/src/kg/ids.cc" "src/CMakeFiles/alicoco_kg.dir/kg/ids.cc.o" "gcc" "src/CMakeFiles/alicoco_kg.dir/kg/ids.cc.o.d"
  "/root/repo/src/kg/persistence.cc" "src/CMakeFiles/alicoco_kg.dir/kg/persistence.cc.o" "gcc" "src/CMakeFiles/alicoco_kg.dir/kg/persistence.cc.o.d"
  "/root/repo/src/kg/schema.cc" "src/CMakeFiles/alicoco_kg.dir/kg/schema.cc.o" "gcc" "src/CMakeFiles/alicoco_kg.dir/kg/schema.cc.o.d"
  "/root/repo/src/kg/stats.cc" "src/CMakeFiles/alicoco_kg.dir/kg/stats.cc.o" "gcc" "src/CMakeFiles/alicoco_kg.dir/kg/stats.cc.o.d"
  "/root/repo/src/kg/taxonomy.cc" "src/CMakeFiles/alicoco_kg.dir/kg/taxonomy.cc.o" "gcc" "src/CMakeFiles/alicoco_kg.dir/kg/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alicoco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
