file(REMOVE_RECURSE
  "libalicoco_kg.a"
)
