file(REMOVE_RECURSE
  "CMakeFiles/alicoco_kg.dir/kg/concept_net.cc.o"
  "CMakeFiles/alicoco_kg.dir/kg/concept_net.cc.o.d"
  "CMakeFiles/alicoco_kg.dir/kg/graphviz.cc.o"
  "CMakeFiles/alicoco_kg.dir/kg/graphviz.cc.o.d"
  "CMakeFiles/alicoco_kg.dir/kg/ids.cc.o"
  "CMakeFiles/alicoco_kg.dir/kg/ids.cc.o.d"
  "CMakeFiles/alicoco_kg.dir/kg/persistence.cc.o"
  "CMakeFiles/alicoco_kg.dir/kg/persistence.cc.o.d"
  "CMakeFiles/alicoco_kg.dir/kg/schema.cc.o"
  "CMakeFiles/alicoco_kg.dir/kg/schema.cc.o.d"
  "CMakeFiles/alicoco_kg.dir/kg/stats.cc.o"
  "CMakeFiles/alicoco_kg.dir/kg/stats.cc.o.d"
  "CMakeFiles/alicoco_kg.dir/kg/taxonomy.cc.o"
  "CMakeFiles/alicoco_kg.dir/kg/taxonomy.cc.o.d"
  "libalicoco_kg.a"
  "libalicoco_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
