# Empty compiler generated dependencies file for alicoco_kg.
# This may be replaced when dependencies are built.
