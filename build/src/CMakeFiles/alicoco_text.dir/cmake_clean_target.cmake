file(REMOVE_RECURSE
  "libalicoco_text.a"
)
