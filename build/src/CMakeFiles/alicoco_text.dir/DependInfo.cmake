
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/bm25.cc" "src/CMakeFiles/alicoco_text.dir/text/bm25.cc.o" "gcc" "src/CMakeFiles/alicoco_text.dir/text/bm25.cc.o.d"
  "/root/repo/src/text/gloss_encoder.cc" "src/CMakeFiles/alicoco_text.dir/text/gloss_encoder.cc.o" "gcc" "src/CMakeFiles/alicoco_text.dir/text/gloss_encoder.cc.o.d"
  "/root/repo/src/text/ngram_lm.cc" "src/CMakeFiles/alicoco_text.dir/text/ngram_lm.cc.o" "gcc" "src/CMakeFiles/alicoco_text.dir/text/ngram_lm.cc.o.d"
  "/root/repo/src/text/pos_tagger.cc" "src/CMakeFiles/alicoco_text.dir/text/pos_tagger.cc.o" "gcc" "src/CMakeFiles/alicoco_text.dir/text/pos_tagger.cc.o.d"
  "/root/repo/src/text/segmenter.cc" "src/CMakeFiles/alicoco_text.dir/text/segmenter.cc.o" "gcc" "src/CMakeFiles/alicoco_text.dir/text/segmenter.cc.o.d"
  "/root/repo/src/text/skipgram.cc" "src/CMakeFiles/alicoco_text.dir/text/skipgram.cc.o" "gcc" "src/CMakeFiles/alicoco_text.dir/text/skipgram.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/alicoco_text.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/alicoco_text.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/alicoco_text.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/alicoco_text.dir/text/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alicoco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
