file(REMOVE_RECURSE
  "CMakeFiles/alicoco_text.dir/text/bm25.cc.o"
  "CMakeFiles/alicoco_text.dir/text/bm25.cc.o.d"
  "CMakeFiles/alicoco_text.dir/text/gloss_encoder.cc.o"
  "CMakeFiles/alicoco_text.dir/text/gloss_encoder.cc.o.d"
  "CMakeFiles/alicoco_text.dir/text/ngram_lm.cc.o"
  "CMakeFiles/alicoco_text.dir/text/ngram_lm.cc.o.d"
  "CMakeFiles/alicoco_text.dir/text/pos_tagger.cc.o"
  "CMakeFiles/alicoco_text.dir/text/pos_tagger.cc.o.d"
  "CMakeFiles/alicoco_text.dir/text/segmenter.cc.o"
  "CMakeFiles/alicoco_text.dir/text/segmenter.cc.o.d"
  "CMakeFiles/alicoco_text.dir/text/skipgram.cc.o"
  "CMakeFiles/alicoco_text.dir/text/skipgram.cc.o.d"
  "CMakeFiles/alicoco_text.dir/text/tokenizer.cc.o"
  "CMakeFiles/alicoco_text.dir/text/tokenizer.cc.o.d"
  "CMakeFiles/alicoco_text.dir/text/vocabulary.cc.o"
  "CMakeFiles/alicoco_text.dir/text/vocabulary.cc.o.d"
  "libalicoco_text.a"
  "libalicoco_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
