# Empty compiler generated dependencies file for alicoco_text.
# This may be replaced when dependencies are built.
