file(REMOVE_RECURSE
  "CMakeFiles/alicoco_matching.dir/matching/bm25_matcher.cc.o"
  "CMakeFiles/alicoco_matching.dir/matching/bm25_matcher.cc.o.d"
  "CMakeFiles/alicoco_matching.dir/matching/dataset.cc.o"
  "CMakeFiles/alicoco_matching.dir/matching/dataset.cc.o.d"
  "CMakeFiles/alicoco_matching.dir/matching/dssm.cc.o"
  "CMakeFiles/alicoco_matching.dir/matching/dssm.cc.o.d"
  "CMakeFiles/alicoco_matching.dir/matching/knowledge_matcher.cc.o"
  "CMakeFiles/alicoco_matching.dir/matching/knowledge_matcher.cc.o.d"
  "CMakeFiles/alicoco_matching.dir/matching/match_pyramid.cc.o"
  "CMakeFiles/alicoco_matching.dir/matching/match_pyramid.cc.o.d"
  "CMakeFiles/alicoco_matching.dir/matching/neural_base.cc.o"
  "CMakeFiles/alicoco_matching.dir/matching/neural_base.cc.o.d"
  "CMakeFiles/alicoco_matching.dir/matching/re2_matcher.cc.o"
  "CMakeFiles/alicoco_matching.dir/matching/re2_matcher.cc.o.d"
  "libalicoco_matching.a"
  "libalicoco_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
