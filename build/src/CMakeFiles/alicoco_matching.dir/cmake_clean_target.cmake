file(REMOVE_RECURSE
  "libalicoco_matching.a"
)
