
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/bm25_matcher.cc" "src/CMakeFiles/alicoco_matching.dir/matching/bm25_matcher.cc.o" "gcc" "src/CMakeFiles/alicoco_matching.dir/matching/bm25_matcher.cc.o.d"
  "/root/repo/src/matching/dataset.cc" "src/CMakeFiles/alicoco_matching.dir/matching/dataset.cc.o" "gcc" "src/CMakeFiles/alicoco_matching.dir/matching/dataset.cc.o.d"
  "/root/repo/src/matching/dssm.cc" "src/CMakeFiles/alicoco_matching.dir/matching/dssm.cc.o" "gcc" "src/CMakeFiles/alicoco_matching.dir/matching/dssm.cc.o.d"
  "/root/repo/src/matching/knowledge_matcher.cc" "src/CMakeFiles/alicoco_matching.dir/matching/knowledge_matcher.cc.o" "gcc" "src/CMakeFiles/alicoco_matching.dir/matching/knowledge_matcher.cc.o.d"
  "/root/repo/src/matching/match_pyramid.cc" "src/CMakeFiles/alicoco_matching.dir/matching/match_pyramid.cc.o" "gcc" "src/CMakeFiles/alicoco_matching.dir/matching/match_pyramid.cc.o.d"
  "/root/repo/src/matching/neural_base.cc" "src/CMakeFiles/alicoco_matching.dir/matching/neural_base.cc.o" "gcc" "src/CMakeFiles/alicoco_matching.dir/matching/neural_base.cc.o.d"
  "/root/repo/src/matching/re2_matcher.cc" "src/CMakeFiles/alicoco_matching.dir/matching/re2_matcher.cc.o" "gcc" "src/CMakeFiles/alicoco_matching.dir/matching/re2_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alicoco_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
