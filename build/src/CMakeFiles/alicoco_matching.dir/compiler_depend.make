# Empty compiler generated dependencies file for alicoco_matching.
# This may be replaced when dependencies are built.
