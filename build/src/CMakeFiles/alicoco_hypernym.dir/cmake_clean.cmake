file(REMOVE_RECURSE
  "CMakeFiles/alicoco_hypernym.dir/hypernym/active_learning.cc.o"
  "CMakeFiles/alicoco_hypernym.dir/hypernym/active_learning.cc.o.d"
  "CMakeFiles/alicoco_hypernym.dir/hypernym/patterns.cc.o"
  "CMakeFiles/alicoco_hypernym.dir/hypernym/patterns.cc.o.d"
  "CMakeFiles/alicoco_hypernym.dir/hypernym/projection_model.cc.o"
  "CMakeFiles/alicoco_hypernym.dir/hypernym/projection_model.cc.o.d"
  "libalicoco_hypernym.a"
  "libalicoco_hypernym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_hypernym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
