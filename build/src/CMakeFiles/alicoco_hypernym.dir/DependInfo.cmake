
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypernym/active_learning.cc" "src/CMakeFiles/alicoco_hypernym.dir/hypernym/active_learning.cc.o" "gcc" "src/CMakeFiles/alicoco_hypernym.dir/hypernym/active_learning.cc.o.d"
  "/root/repo/src/hypernym/patterns.cc" "src/CMakeFiles/alicoco_hypernym.dir/hypernym/patterns.cc.o" "gcc" "src/CMakeFiles/alicoco_hypernym.dir/hypernym/patterns.cc.o.d"
  "/root/repo/src/hypernym/projection_model.cc" "src/CMakeFiles/alicoco_hypernym.dir/hypernym/projection_model.cc.o" "gcc" "src/CMakeFiles/alicoco_hypernym.dir/hypernym/projection_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alicoco_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
