# Empty dependencies file for alicoco_hypernym.
# This may be replaced when dependencies are built.
