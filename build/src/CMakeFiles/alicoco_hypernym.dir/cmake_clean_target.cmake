file(REMOVE_RECURSE
  "libalicoco_hypernym.a"
)
