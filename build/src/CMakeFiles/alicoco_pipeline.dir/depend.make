# Empty dependencies file for alicoco_pipeline.
# This may be replaced when dependencies are built.
