file(REMOVE_RECURSE
  "libalicoco_pipeline.a"
)
