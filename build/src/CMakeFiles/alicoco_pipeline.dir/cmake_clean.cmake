file(REMOVE_RECURSE
  "CMakeFiles/alicoco_pipeline.dir/pipeline/builder.cc.o"
  "CMakeFiles/alicoco_pipeline.dir/pipeline/builder.cc.o.d"
  "libalicoco_pipeline.a"
  "libalicoco_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
