file(REMOVE_RECURSE
  "CMakeFiles/alicoco_apps.dir/apps/coverage.cc.o"
  "CMakeFiles/alicoco_apps.dir/apps/coverage.cc.o.d"
  "CMakeFiles/alicoco_apps.dir/apps/explanation.cc.o"
  "CMakeFiles/alicoco_apps.dir/apps/explanation.cc.o.d"
  "CMakeFiles/alicoco_apps.dir/apps/question_answering.cc.o"
  "CMakeFiles/alicoco_apps.dir/apps/question_answering.cc.o.d"
  "CMakeFiles/alicoco_apps.dir/apps/recommender.cc.o"
  "CMakeFiles/alicoco_apps.dir/apps/recommender.cc.o.d"
  "CMakeFiles/alicoco_apps.dir/apps/relation_inference.cc.o"
  "CMakeFiles/alicoco_apps.dir/apps/relation_inference.cc.o.d"
  "CMakeFiles/alicoco_apps.dir/apps/search_relevance.cc.o"
  "CMakeFiles/alicoco_apps.dir/apps/search_relevance.cc.o.d"
  "libalicoco_apps.a"
  "libalicoco_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
