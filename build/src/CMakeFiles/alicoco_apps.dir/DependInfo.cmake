
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/coverage.cc" "src/CMakeFiles/alicoco_apps.dir/apps/coverage.cc.o" "gcc" "src/CMakeFiles/alicoco_apps.dir/apps/coverage.cc.o.d"
  "/root/repo/src/apps/explanation.cc" "src/CMakeFiles/alicoco_apps.dir/apps/explanation.cc.o" "gcc" "src/CMakeFiles/alicoco_apps.dir/apps/explanation.cc.o.d"
  "/root/repo/src/apps/question_answering.cc" "src/CMakeFiles/alicoco_apps.dir/apps/question_answering.cc.o" "gcc" "src/CMakeFiles/alicoco_apps.dir/apps/question_answering.cc.o.d"
  "/root/repo/src/apps/recommender.cc" "src/CMakeFiles/alicoco_apps.dir/apps/recommender.cc.o" "gcc" "src/CMakeFiles/alicoco_apps.dir/apps/recommender.cc.o.d"
  "/root/repo/src/apps/relation_inference.cc" "src/CMakeFiles/alicoco_apps.dir/apps/relation_inference.cc.o" "gcc" "src/CMakeFiles/alicoco_apps.dir/apps/relation_inference.cc.o.d"
  "/root/repo/src/apps/search_relevance.cc" "src/CMakeFiles/alicoco_apps.dir/apps/search_relevance.cc.o" "gcc" "src/CMakeFiles/alicoco_apps.dir/apps/search_relevance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alicoco_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
