file(REMOVE_RECURSE
  "libalicoco_apps.a"
)
