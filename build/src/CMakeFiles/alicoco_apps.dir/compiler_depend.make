# Empty compiler generated dependencies file for alicoco_apps.
# This may be replaced when dependencies are built.
