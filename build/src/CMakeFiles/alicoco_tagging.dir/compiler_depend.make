# Empty compiler generated dependencies file for alicoco_tagging.
# This may be replaced when dependencies are built.
