file(REMOVE_RECURSE
  "CMakeFiles/alicoco_tagging.dir/tagging/concept_tagger.cc.o"
  "CMakeFiles/alicoco_tagging.dir/tagging/concept_tagger.cc.o.d"
  "libalicoco_tagging.a"
  "libalicoco_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
