file(REMOVE_RECURSE
  "libalicoco_tagging.a"
)
