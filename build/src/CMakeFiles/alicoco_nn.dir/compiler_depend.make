# Empty compiler generated dependencies file for alicoco_nn.
# This may be replaced when dependencies are built.
