file(REMOVE_RECURSE
  "libalicoco_nn.a"
)
