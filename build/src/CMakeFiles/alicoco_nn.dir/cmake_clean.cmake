file(REMOVE_RECURSE
  "CMakeFiles/alicoco_nn.dir/nn/crf.cc.o"
  "CMakeFiles/alicoco_nn.dir/nn/crf.cc.o.d"
  "CMakeFiles/alicoco_nn.dir/nn/graph.cc.o"
  "CMakeFiles/alicoco_nn.dir/nn/graph.cc.o.d"
  "CMakeFiles/alicoco_nn.dir/nn/layers.cc.o"
  "CMakeFiles/alicoco_nn.dir/nn/layers.cc.o.d"
  "CMakeFiles/alicoco_nn.dir/nn/ops.cc.o"
  "CMakeFiles/alicoco_nn.dir/nn/ops.cc.o.d"
  "CMakeFiles/alicoco_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/alicoco_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/alicoco_nn.dir/nn/rnn.cc.o"
  "CMakeFiles/alicoco_nn.dir/nn/rnn.cc.o.d"
  "CMakeFiles/alicoco_nn.dir/nn/serialize.cc.o"
  "CMakeFiles/alicoco_nn.dir/nn/serialize.cc.o.d"
  "CMakeFiles/alicoco_nn.dir/nn/tensor.cc.o"
  "CMakeFiles/alicoco_nn.dir/nn/tensor.cc.o.d"
  "libalicoco_nn.a"
  "libalicoco_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alicoco_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
