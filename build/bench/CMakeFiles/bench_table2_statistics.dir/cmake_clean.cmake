file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_statistics.dir/bench_table2_statistics.cc.o"
  "CMakeFiles/bench_table2_statistics.dir/bench_table2_statistics.cc.o.d"
  "bench_table2_statistics"
  "bench_table2_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
