# Empty compiler generated dependencies file for bench_search_relevance.
# This may be replaced when dependencies are built.
