file(REMOVE_RECURSE
  "CMakeFiles/bench_search_relevance.dir/bench_search_relevance.cc.o"
  "CMakeFiles/bench_search_relevance.dir/bench_search_relevance.cc.o.d"
  "bench_search_relevance"
  "bench_search_relevance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_relevance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
