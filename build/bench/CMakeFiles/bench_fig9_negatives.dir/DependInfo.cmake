
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_negatives.cc" "bench/CMakeFiles/bench_fig9_negatives.dir/bench_fig9_negatives.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_negatives.dir/bench_fig9_negatives.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alicoco_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_hypernym.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_concepts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_tagging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
