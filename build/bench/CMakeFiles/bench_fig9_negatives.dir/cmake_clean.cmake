file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_negatives.dir/bench_fig9_negatives.cc.o"
  "CMakeFiles/bench_fig9_negatives.dir/bench_fig9_negatives.cc.o.d"
  "bench_fig9_negatives"
  "bench_fig9_negatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
