file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_active_learning.dir/bench_table3_active_learning.cc.o"
  "CMakeFiles/bench_table3_active_learning.dir/bench_table3_active_learning.cc.o.d"
  "bench_table3_active_learning"
  "bench_table3_active_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_active_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
