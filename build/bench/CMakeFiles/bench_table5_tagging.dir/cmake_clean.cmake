file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_tagging.dir/bench_table5_tagging.cc.o"
  "CMakeFiles/bench_table5_tagging.dir/bench_table5_tagging.cc.o.d"
  "bench_table5_tagging"
  "bench_table5_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
