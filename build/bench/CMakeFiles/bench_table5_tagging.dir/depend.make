# Empty dependencies file for bench_table5_tagging.
# This may be replaced when dependencies are built.
