# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/concepts_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/hypernym_test[1]_include.cmake")
include("/root/repo/build/tests/kg_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/tagging_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
