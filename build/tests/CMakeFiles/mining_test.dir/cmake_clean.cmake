file(REMOVE_RECURSE
  "CMakeFiles/mining_test.dir/mining/checkpoint_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/checkpoint_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/concept_miner_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/concept_miner_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/distant_supervision_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/distant_supervision_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/sequence_labeler_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/sequence_labeler_test.cc.o.d"
  "mining_test"
  "mining_test.pdb"
  "mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
