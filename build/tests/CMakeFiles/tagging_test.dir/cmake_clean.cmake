file(REMOVE_RECURSE
  "CMakeFiles/tagging_test.dir/tagging/concept_tagger_test.cc.o"
  "CMakeFiles/tagging_test.dir/tagging/concept_tagger_test.cc.o.d"
  "CMakeFiles/tagging_test.dir/tagging/distant_examples_test.cc.o"
  "CMakeFiles/tagging_test.dir/tagging/distant_examples_test.cc.o.d"
  "tagging_test"
  "tagging_test.pdb"
  "tagging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
