# Empty dependencies file for hypernym_test.
# This may be replaced when dependencies are built.
