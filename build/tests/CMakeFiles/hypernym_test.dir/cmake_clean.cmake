file(REMOVE_RECURSE
  "CMakeFiles/hypernym_test.dir/hypernym/patterns_test.cc.o"
  "CMakeFiles/hypernym_test.dir/hypernym/patterns_test.cc.o.d"
  "CMakeFiles/hypernym_test.dir/hypernym/projection_test.cc.o"
  "CMakeFiles/hypernym_test.dir/hypernym/projection_test.cc.o.d"
  "hypernym_test"
  "hypernym_test.pdb"
  "hypernym_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypernym_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
