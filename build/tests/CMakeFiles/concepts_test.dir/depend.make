# Empty dependencies file for concepts_test.
# This may be replaced when dependencies are built.
