file(REMOVE_RECURSE
  "CMakeFiles/kg_test.dir/kg/concept_net_test.cc.o"
  "CMakeFiles/kg_test.dir/kg/concept_net_test.cc.o.d"
  "CMakeFiles/kg_test.dir/kg/graphviz_test.cc.o"
  "CMakeFiles/kg_test.dir/kg/graphviz_test.cc.o.d"
  "CMakeFiles/kg_test.dir/kg/persistence_test.cc.o"
  "CMakeFiles/kg_test.dir/kg/persistence_test.cc.o.d"
  "CMakeFiles/kg_test.dir/kg/probability_test.cc.o"
  "CMakeFiles/kg_test.dir/kg/probability_test.cc.o.d"
  "CMakeFiles/kg_test.dir/kg/schema_test.cc.o"
  "CMakeFiles/kg_test.dir/kg/schema_test.cc.o.d"
  "CMakeFiles/kg_test.dir/kg/stats_test.cc.o"
  "CMakeFiles/kg_test.dir/kg/stats_test.cc.o.d"
  "CMakeFiles/kg_test.dir/kg/taxonomy_test.cc.o"
  "CMakeFiles/kg_test.dir/kg/taxonomy_test.cc.o.d"
  "kg_test"
  "kg_test.pdb"
  "kg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
