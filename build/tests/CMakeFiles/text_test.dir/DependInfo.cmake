
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/text/bm25_test.cc" "tests/CMakeFiles/text_test.dir/text/bm25_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/bm25_test.cc.o.d"
  "/root/repo/tests/text/gloss_encoder_test.cc" "tests/CMakeFiles/text_test.dir/text/gloss_encoder_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/gloss_encoder_test.cc.o.d"
  "/root/repo/tests/text/ngram_lm_test.cc" "tests/CMakeFiles/text_test.dir/text/ngram_lm_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/ngram_lm_test.cc.o.d"
  "/root/repo/tests/text/pos_tagger_test.cc" "tests/CMakeFiles/text_test.dir/text/pos_tagger_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/pos_tagger_test.cc.o.d"
  "/root/repo/tests/text/segmenter_test.cc" "tests/CMakeFiles/text_test.dir/text/segmenter_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/segmenter_test.cc.o.d"
  "/root/repo/tests/text/skipgram_test.cc" "tests/CMakeFiles/text_test.dir/text/skipgram_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/skipgram_test.cc.o.d"
  "/root/repo/tests/text/tokenizer_test.cc" "tests/CMakeFiles/text_test.dir/text/tokenizer_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/tokenizer_test.cc.o.d"
  "/root/repo/tests/text/vocabulary_test.cc" "tests/CMakeFiles/text_test.dir/text/vocabulary_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text/vocabulary_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alicoco_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_hypernym.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_concepts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_tagging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alicoco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
