file(REMOVE_RECURSE
  "CMakeFiles/build_alicoco.dir/build_alicoco.cpp.o"
  "CMakeFiles/build_alicoco.dir/build_alicoco.cpp.o.d"
  "build_alicoco"
  "build_alicoco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_alicoco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
