# Empty dependencies file for build_alicoco.
# This may be replaced when dependencies are built.
