file(REMOVE_RECURSE
  "CMakeFiles/cognitive_recommendation.dir/cognitive_recommendation.cpp.o"
  "CMakeFiles/cognitive_recommendation.dir/cognitive_recommendation.cpp.o.d"
  "cognitive_recommendation"
  "cognitive_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cognitive_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
