# Empty compiler generated dependencies file for cognitive_recommendation.
# This may be replaced when dependencies are built.
