#include "apps/question_answering.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace alicoco::apps {

NeedsQuestionAnswerer::NeedsQuestionAnswerer(const kg::ConceptNet* net)
    : net_(net) {
  ALICOCO_CHECK(net != nullptr);
}

NeedsAnswer NeedsQuestionAnswerer::BuildAnswer(kg::EcConceptId id,
                                               double score,
                                               size_t max_items) const {
  NeedsAnswer answer;
  answer.concept_id = id;
  answer.concept_surface = net_->Get(id).surface;
  answer.score = score;
  const auto& tax = net_->taxonomy();
  for (kg::ConceptId prim : net_->PrimitivesForEc(id)) {
    const auto& concept_info = net_->Get(prim);
    answer.interpretation.emplace_back(
        tax.Get(tax.Domain(concept_info.cls)).name, concept_info.surface);
  }
  for (kg::ItemId item : net_->ItemsForEc(id)) {
    answer.items.push_back(item);
    if (answer.items.size() >= max_items) break;
  }
  for (kg::EcConceptId parent : net_->EcParents(id)) {
    answer.related_needs.push_back(net_->Get(parent).surface);
  }
  for (kg::EcConceptId child : net_->EcChildren(id)) {
    answer.related_needs.push_back(net_->Get(child).surface);
    if (answer.related_needs.size() >= 5) break;
  }
  return answer;
}

std::vector<NeedsAnswer> NeedsQuestionAnswerer::AnswerAll(
    const std::string& question, size_t max_items) const {
  std::vector<std::string> tokens = text::Tokenize(question);
  std::vector<NeedsAnswer> out;
  if (tokens.empty()) return out;

  // Pass 1: direct surface containment — longest e-commerce-concept
  // surface found as a contiguous token span. Score = matched tokens /
  // concept length (1.0 for exact needs mentions).
  std::map<uint32_t, double> matched;  // ec id -> score
  constexpr size_t kMaxSpan = 6;
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::string key;
    for (size_t len = 1; len <= kMaxSpan && i + len <= tokens.size(); ++len) {
      if (len > 1) key += ' ';
      key += tokens[i + len - 1];
      auto ec = net_->FindEcConcept(key);
      if (ec.has_value()) {
        double score = 1.0 + 0.1 * static_cast<double>(len);
        auto it = matched.find(ec->value);
        if (it == matched.end() || it->second < score) {
          matched[ec->value] = score;
        }
      }
    }
  }

  // Pass 2: interpretation match — primitive concepts recognized in the
  // question vote for the e-commerce concepts they interpret ("barbecue"
  // alone recalls "outdoor barbecue").
  std::map<uint32_t, double> votes;
  std::map<uint32_t, size_t> interp_size;
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::string key;
    for (size_t len = 1; len <= kMaxSpan && i + len <= tokens.size(); ++len) {
      if (len > 1) key += ' ';
      key += tokens[i + len - 1];
      for (kg::ConceptId prim : net_->FindPrimitive(key)) {
        for (kg::EcConceptId ec : net_->EcConceptsForPrimitive(prim)) {
          votes[ec.value] += static_cast<double>(len);
          if (!interp_size.count(ec.value)) {
            interp_size[ec.value] = net_->PrimitivesForEc(ec).size();
          }
        }
      }
    }
  }
  for (const auto& [ec, vote] : votes) {
    size_t interp = std::max<size_t>(1, interp_size[ec]);
    double coverage = vote / static_cast<double>(interp);
    double score = std::min(0.99, 0.5 * coverage);  // below direct matches
    auto it = matched.find(ec);
    if (it == matched.end() || it->second < score) {
      matched[ec] = std::max(
          it == matched.end() ? 0.0 : it->second, score);
    }
  }

  std::vector<std::pair<double, uint32_t>> ranked;
  ranked.reserve(matched.size());
  for (const auto& [ec, score] : matched) ranked.emplace_back(score, ec);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (const auto& [score, ec] : ranked) {
    out.push_back(BuildAnswer(kg::EcConceptId(ec), score, max_items));
    if (out.size() >= 5) break;
  }
  return out;
}

std::optional<NeedsAnswer> NeedsQuestionAnswerer::Answer(
    const std::string& question, size_t max_items) const {
  auto all = AnswerAll(question, max_items);
  if (all.empty()) return std::nullopt;
  return all.front();
}

}  // namespace alicoco::apps
