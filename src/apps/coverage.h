// User-needs coverage evaluation (Section 7.1).
//
// The paper samples search queries, rewrites them into coherent word
// sequences and measures what fraction of the words the ontology knows —
// AliCoCo covers ~75% vs ~30% for the legacy CPV ontology. The evaluator
// repeats the measurement over resampled "days" to mimic the paper's
// continuous 30-day monitoring.

#ifndef ALICOCO_APPS_COVERAGE_H_
#define ALICOCO_APPS_COVERAGE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/legacy_ontology.h"
#include "kg/concept_net.h"

namespace alicoco::apps {

/// Per-day coverage of two ontologies over the same queries.
struct CoverageDay {
  double alicoco = 0;  ///< token coverage by the concept net
  double legacy = 0;   ///< token coverage by the CPV baseline
};

struct CoverageReport {
  std::vector<CoverageDay> days;
  double mean_alicoco = 0;
  double mean_legacy = 0;
};

/// Measures token-level coverage of needs queries against a concept net and
/// the legacy ontology.
class CoverageEvaluator {
 public:
  /// Both references must outlive the evaluator.
  CoverageEvaluator(const kg::ConceptNet* net,
                    const datagen::LegacyOntology* legacy);

  /// Coverage of one query (fraction of tokens that are known surfaces).
  double QueryCoverage(const std::vector<std::string>& query) const;

  /// Runs `num_days` daily samples of `per_day` queries each.
  CoverageReport Run(const std::vector<std::vector<std::string>>& queries,
                     int num_days, size_t per_day, uint64_t seed) const;

 private:
  const kg::ConceptNet* net_;
  const datagen::LegacyOntology* legacy_;
};

}  // namespace alicoco::apps

#endif  // ALICOCO_APPS_COVERAGE_H_
