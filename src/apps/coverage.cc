#include "apps/coverage.h"

#include "common/logging.h"

namespace alicoco::apps {

CoverageEvaluator::CoverageEvaluator(const kg::ConceptNet* net,
                                     const datagen::LegacyOntology* legacy)
    : net_(net), legacy_(legacy) {
  ALICOCO_CHECK(net != nullptr && legacy != nullptr);
}

double CoverageEvaluator::QueryCoverage(
    const std::vector<std::string>& query) const {
  if (query.empty()) return 0;
  size_t known = 0;
  for (const auto& token : query) {
    if (!net_->FindPrimitive(token).empty()) ++known;
  }
  return static_cast<double>(known) / static_cast<double>(query.size());
}

CoverageReport CoverageEvaluator::Run(
    const std::vector<std::vector<std::string>>& queries, int num_days,
    size_t per_day, uint64_t seed) const {
  ALICOCO_CHECK(!queries.empty());
  Rng rng(seed);
  CoverageReport report;
  for (int day = 0; day < num_days; ++day) {
    size_t total = 0, net_known = 0, legacy_known = 0;
    for (size_t q = 0; q < per_day; ++q) {
      const auto& query = queries[rng.Uniform(queries.size())];
      for (const auto& token : query) {
        ++total;
        if (!net_->FindPrimitive(token).empty()) ++net_known;
        if (legacy_->Knows(token)) ++legacy_known;
      }
    }
    CoverageDay d;
    if (total > 0) {
      d.alicoco = static_cast<double>(net_known) / static_cast<double>(total);
      d.legacy =
          static_cast<double>(legacy_known) / static_cast<double>(total);
    }
    report.days.push_back(d);
    report.mean_alicoco += d.alicoco;
    report.mean_legacy += d.legacy;
  }
  if (!report.days.empty()) {
    report.mean_alicoco /= static_cast<double>(report.days.size());
    report.mean_legacy /= static_cast<double>(report.days.size());
  }
  return report;
}

}  // namespace alicoco::apps
