#include "apps/recommender.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace alicoco::apps {

void ItemCf::Fit(const std::vector<datagen::UserHistory>& users) {
  std::unordered_map<uint32_t, double> item_count;
  for (const auto& user : users) {
    // Deduplicate within one user's history.
    std::vector<uint32_t> items;
    std::unordered_set<uint32_t> seen;
    for (kg::ItemId item : user.clicked) {
      if (seen.insert(item.value).second) items.push_back(item.value);
    }
    for (uint32_t a : items) {
      ++item_count[a];
      for (uint32_t b : items) {
        if (a != b) sim_[a][b] += 1.0;
      }
    }
  }
  for (auto& [item, count] : item_count) {
    norm_[item] = std::sqrt(count);
  }
  // Cosine normalization: sim(a,b) /= sqrt(n_a * n_b).
  for (auto& [a, row] : sim_) {
    for (auto& [b, v] : row) {
      double denom = norm_[a] * norm_[b];
      if (denom > 0) v /= denom;
    }
  }
}

std::vector<kg::ItemId> ItemCf::Recommend(const datagen::UserHistory& user,
                                          size_t k) const {
  std::unordered_set<uint32_t> owned;
  for (kg::ItemId item : user.clicked) owned.insert(item.value);
  std::unordered_map<uint32_t, double> scores;
  for (kg::ItemId item : user.clicked) {
    auto it = sim_.find(item.value);
    if (it == sim_.end()) continue;
    for (const auto& [candidate, s] : it->second) {
      if (!owned.count(candidate)) scores[candidate] += s;
    }
  }
  std::vector<std::pair<double, uint32_t>> ranked;
  ranked.reserve(scores.size());
  for (const auto& [item, s] : scores) ranked.emplace_back(s, item);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<kg::ItemId> out;
  for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    out.push_back(kg::ItemId(ranked[i].second));
  }
  return out;
}

CognitiveRecommender::CognitiveRecommender(const kg::ConceptNet* net,
                                           obs::Registry* metrics)
    : net_(net) {
  ALICOCO_CHECK(net != nullptr);
  if (metrics != nullptr) {
    recommend_latency_us_ =
        metrics->GetHistogram("serving.recommender.recommend_latency_us");
    requests_served_ = metrics->GetCounter("serving.recommender.requests");
    cards_returned_ = metrics->GetCounter("serving.recommender.cards");
  }
}

std::vector<CognitiveRecommender::ConceptCard>
CognitiveRecommender::Recommend(const datagen::UserHistory& user,
                                size_t num_cards,
                                size_t items_per_card) const {
  std::chrono::steady_clock::time_point start;
  if (recommend_latency_us_ != nullptr) {
    start = std::chrono::steady_clock::now();
  }
  // Vote for concepts linked to the clicked items; damp by concept size so
  // huge generic concepts don't dominate.
  std::unordered_map<uint32_t, double> votes;
  for (kg::ItemId item : user.clicked) {
    for (kg::EcConceptId ec : net_->EcConceptsForItem(item)) {
      double size = static_cast<double>(net_->ItemsForEc(ec).size());
      votes[ec.value] += 1.0 / std::log2(2.0 + size);
    }
  }
  std::vector<std::pair<double, uint32_t>> ranked;
  ranked.reserve(votes.size());
  for (const auto& [ec, v] : votes) ranked.emplace_back(v, ec);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  std::unordered_set<uint32_t> owned;
  for (kg::ItemId item : user.clicked) owned.insert(item.value);

  std::vector<ConceptCard> cards;
  for (size_t i = 0; i < ranked.size() && cards.size() < num_cards; ++i) {
    ConceptCard card;
    card.concept_id = kg::EcConceptId(ranked[i].second);
    card.score = ranked[i].first;
    // Highest-probability edges first (probabilistic associations).
    for (const auto& [item, probability] :
         net_->ItemsForEcRanked(card.concept_id)) {
      (void)probability;
      if (owned.count(item.value)) continue;
      card.items.push_back(item);
      if (card.items.size() >= items_per_card) break;
    }
    cards.push_back(std::move(card));
  }
  if (recommend_latency_us_ != nullptr) {
    recommend_latency_us_->Observe(std::chrono::duration<double, std::micro>(
                                       std::chrono::steady_clock::now() -
                                       start)
                                       .count());
  }
  if (requests_served_ != nullptr) requests_served_->Increment();
  if (cards_returned_ != nullptr) cards_returned_->Add(cards.size());
  return cards;
}

RecommendationReport CompareRecommenders(const datagen::World& world,
                                         size_t k_items, size_t num_cards) {
  const auto& users = world.user_histories();
  ALICOCO_CHECK(!users.empty());
  ItemCf cf;
  cf.Fit(users);
  CognitiveRecommender cognitive(&world.net());

  // Category-head of an item for novelty accounting.
  auto head_of = [&](kg::ItemId item) -> uint32_t {
    return world.item_profiles()[item.value].head.value;
  };
  auto need_items = [&](const datagen::UserHistory& user) {
    std::unordered_set<uint32_t> gold;
    for (kg::EcConceptId need : user.needs) {
      for (kg::ItemId item : world.net().ItemsForEc(need)) {
        gold.insert(item.value);
      }
    }
    return gold;
  };

  RecommendationReport report;
  size_t cf_total = 0, cf_novel = 0, cf_need = 0;
  size_t cog_total = 0, cog_novel = 0, cog_need = 0;
  size_t users_with_hit = 0, users_counted = 0;
  size_t items_per_card = std::max<size_t>(1, k_items / num_cards);

  for (const auto& user : users) {
    std::unordered_set<uint32_t> history_heads;
    for (kg::ItemId item : user.clicked) history_heads.insert(head_of(item));
    auto gold_items = need_items(user);

    auto cf_rec = cf.Recommend(user, k_items);
    for (kg::ItemId item : cf_rec) {
      ++cf_total;
      if (!history_heads.count(head_of(item))) ++cf_novel;
      if (gold_items.count(item.value)) ++cf_need;
    }

    auto cards = cognitive.Recommend(user, num_cards, items_per_card);
    bool hit = false;
    for (const auto& card : cards) {
      if (std::find(user.needs.begin(), user.needs.end(), card.concept_id) !=
          user.needs.end()) {
        hit = true;
      }
      for (kg::ItemId item : card.items) {
        ++cog_total;
        if (!history_heads.count(head_of(item))) ++cog_novel;
        if (gold_items.count(item.value)) ++cog_need;
      }
    }
    ++users_counted;
    users_with_hit += hit;
  }

  if (cf_total > 0) {
    report.cf_novelty = static_cast<double>(cf_novel) / cf_total;
    report.cf_need_item_rate = static_cast<double>(cf_need) / cf_total;
  }
  if (cog_total > 0) {
    report.cognitive_novelty = static_cast<double>(cog_novel) / cog_total;
    report.cog_need_item_rate = static_cast<double>(cog_need) / cog_total;
  }
  if (users_counted > 0) {
    report.needs_hit_rate =
        static_cast<double>(users_with_hit) / users_counted;
  }
  return report;
}

}  // namespace alicoco::apps
