#include "apps/search_relevance.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/logging.h"
#include "eval/metrics.h"

namespace alicoco::apps {

SearchRelevance::SearchRelevance(const kg::ConceptNet* net,
                                 obs::Registry* metrics)
    : net_(net) {
  ALICOCO_CHECK(net != nullptr);
  if (metrics != nullptr) {
    query_latency_us_ =
        metrics->GetHistogram("serving.search_relevance.query_latency_us");
    queries_served_ = metrics->GetCounter("serving.search_relevance.queries");
    pairs_judged_ =
        metrics->GetCounter("serving.search_relevance.judged_pairs");
  }
}

std::vector<RelevanceQuery> SearchRelevance::BuildQueries(
    const datagen::World& world, size_t max_queries, size_t items_per_query,
    uint64_t seed) const {
  Rng rng(seed);
  std::vector<RelevanceQuery> out;

  // Query concepts: a mix of head surfaces (lexical match already works —
  // most real queries) and group concepts (token-disjoint hypernyms, the
  // paper's "jacket isA top" case that needs the knowledge).
  std::vector<kg::ConceptId> query_concepts = world.group_concepts();
  {
    std::vector<kg::ConceptId> heads;
    for (const auto& item : world.item_profiles()) heads.push_back(item.head);
    std::sort(heads.begin(), heads.end());
    heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
    rng.Shuffle(&heads);
    size_t take = std::min(heads.size(), 3 * world.group_concepts().size());
    query_concepts.insert(query_concepts.end(), heads.begin(),
                          heads.begin() + take);
  }
  rng.Shuffle(&query_concepts);
  const auto& items = world.item_profiles();
  ALICOCO_CHECK(!items.empty());

  // Precompute: item -> set of its category hypernym closure ids.
  auto relevant_to = [&](const datagen::ItemProfile& item,
                         kg::ConceptId query) {
    if (item.category == query || item.head == query) return true;
    auto closure = net_->HypernymClosure(item.category);
    return std::find(closure.begin(), closure.end(), query) != closure.end();
  };

  for (kg::ConceptId qc : query_concepts) {
    if (out.size() >= max_queries) break;
    RelevanceQuery q;
    q.query = net_->Get(qc).surface;
    // Gather relevant items first.
    std::vector<const datagen::ItemProfile*> rel, irrel;
    for (const auto& item : items) {
      (relevant_to(item, qc) ? rel : irrel).push_back(&item);
    }
    if (rel.empty() || irrel.empty()) continue;
    rng.Shuffle(&rel);
    rng.Shuffle(&irrel);
    size_t n_rel = std::min(items_per_query / 2, rel.size());
    size_t n_irrel = std::min(items_per_query - n_rel, irrel.size());
    for (size_t i = 0; i < n_rel; ++i) {
      q.items.push_back(rel[i]->id);
      q.relevant.push_back(1);
    }
    for (size_t i = 0; i < n_irrel; ++i) {
      q.items.push_back(irrel[i]->id);
      q.relevant.push_back(0);
    }
    out.push_back(std::move(q));
  }
  return out;
}

double SearchRelevance::Score(const std::string& query, kg::ItemId item,
                              bool expand_isa) const {
  std::unordered_set<std::string> item_terms;
  const auto& title = net_->Get(item).title;
  item_terms.insert(title.begin(), title.end());
  if (expand_isa) {
    // Expand with the hypernym closure of the item's linked primitive
    // concepts ("jacket" contributes "top").
    for (kg::ConceptId prim : net_->PrimitivesForItem(item)) {
      for (kg::ConceptId hyper : net_->HypernymClosure(prim)) {
        item_terms.insert(net_->Get(hyper).surface);
      }
    }
  }
  return item_terms.count(query) ? 1.0 : 0.0;
}

RelevanceReport SearchRelevance::Evaluate(
    const std::vector<RelevanceQuery>& queries, bool expand_isa) const {
  RelevanceReport report;
  std::vector<double> scores;
  std::vector<int> labels;
  for (const auto& q : queries) {
    std::chrono::steady_clock::time_point start;
    if (query_latency_us_ != nullptr) {
      start = std::chrono::steady_clock::now();
    }
    for (size_t i = 0; i < q.items.size(); ++i) {
      double s = Score(q.query, q.items[i], expand_isa);
      scores.push_back(s);
      labels.push_back(q.relevant[i]);
      ++report.judged_pairs;
      if (q.relevant[i] == 1 && s == 0.0) ++report.bad_cases;
    }
    if (query_latency_us_ != nullptr) {
      query_latency_us_->Observe(std::chrono::duration<double, std::micro>(
                                     std::chrono::steady_clock::now() - start)
                                     .count());
    }
    if (queries_served_ != nullptr) queries_served_->Increment();
    if (pairs_judged_ != nullptr) pairs_judged_->Add(q.items.size());
  }
  report.auc = eval::Auc(scores, labels);
  return report;
}

}  // namespace alicoco::apps
