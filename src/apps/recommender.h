// Cognitive recommendation (Section 8.2.1) vs item-CF.
//
// Baseline: classic item-based collaborative filtering over user click
// histories (Sarwar et al. 2001), the paper's "recommend items similar to
// those you viewed". Cognitive recommendation infers the user's needs —
// e-commerce concepts whose item sets the history hits most — and
// recommends the concept card plus its associated items. Metrics: needs-hit
// rate (did we surface a gold latent need?) and novelty (fraction of
// recommended items outside the history's category heads).

#ifndef ALICOCO_APPS_RECOMMENDER_H_
#define ALICOCO_APPS_RECOMMENDER_H_

#include <unordered_map>
#include <vector>

#include "datagen/world.h"
#include "kg/concept_net.h"
#include "obs/metrics.h"

namespace alicoco::apps {

/// Item-based CF on co-click counts with cosine normalization.
class ItemCf {
 public:
  /// Builds the similarity model from user histories.
  void Fit(const std::vector<datagen::UserHistory>& users);

  /// Top-k items similar to the user's clicked items (excluding them).
  std::vector<kg::ItemId> Recommend(const datagen::UserHistory& user,
                                    size_t k) const;

 private:
  // item -> (co-clicked item -> count)
  std::unordered_map<uint32_t, std::unordered_map<uint32_t, double>> sim_;
  std::unordered_map<uint32_t, double> norm_;
};

/// Concept-card recommendation over the concept net. Serving-path latency
/// lands in `metrics` under `serving.recommender.*` (Recommend latency
/// histogram plus request/card counters); pass nullptr to opt out.
class CognitiveRecommender {
 public:
  explicit CognitiveRecommender(
      const kg::ConceptNet* net,
      obs::Registry* metrics = &obs::Registry::Default());

  struct ConceptCard {
    kg::EcConceptId concept_id;
    std::vector<kg::ItemId> items;  ///< representative associated items
    double score = 0;               ///< needs-inference strength
  };

  /// Infers the user's needs from clicked items (votes from item->concept
  /// edges, normalized by concept popularity) and returns the top cards.
  std::vector<ConceptCard> Recommend(const datagen::UserHistory& user,
                                     size_t num_cards,
                                     size_t items_per_card) const;

 private:
  const kg::ConceptNet* net_;
  obs::Histogram* recommend_latency_us_ = nullptr;
  obs::Counter* requests_served_ = nullptr;
  obs::Counter* cards_returned_ = nullptr;
};

/// Comparison metrics over a user population.
struct RecommendationReport {
  double cf_novelty = 0;         ///< item-CF: new-category fraction
  double cognitive_novelty = 0;  ///< concept cards: new-category fraction
  double needs_hit_rate = 0;     ///< fraction of users with a gold need
                                 ///< among their cards
  double cf_need_item_rate = 0;  ///< CF items that satisfy a gold need
  double cog_need_item_rate = 0; ///< card items that satisfy a gold need
};

RecommendationReport CompareRecommenders(
    const datagen::World& world, size_t k_items, size_t num_cards);

}  // namespace alicoco::apps

#endif  // ALICOCO_APPS_RECOMMENDER_H_
