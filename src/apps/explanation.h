// Recommendation reasons (Section 8.2.2).
//
// "The advantages of e-commerce concepts include clarity and brevity, which
// make them perfect recommendation reasons." Given a user and a recommended
// item, find the e-commerce concept that best connects them — an inferred
// need the user's history supports AND the item satisfies — and phrase it.

#ifndef ALICOCO_APPS_EXPLANATION_H_
#define ALICOCO_APPS_EXPLANATION_H_

#include <optional>
#include <string>

#include "datagen/world.h"
#include "kg/concept_net.h"

namespace alicoco::apps {

/// A concept-grounded recommendation reason.
struct Explanation {
  kg::EcConceptId concept_id;
  std::string concept_surface;
  double support = 0;  ///< history votes for the concept
  /// Rendered reason, e.g. `recommended for "outdoor barbecue" — 3 of your
  /// recent picks point at this need`.
  std::string text;
};

/// Produces concept-grounded reasons over a concept net.
class RecommendationExplainer {
 public:
  explicit RecommendationExplainer(const kg::ConceptNet* net);

  /// Explains why `item` suits `user`: the concept with the most history
  /// evidence among those associated with the item. nullopt when no shared
  /// concept exists (the CF-style "people also viewed" fallback case).
  std::optional<Explanation> Explain(const datagen::UserHistory& user,
                                     kg::ItemId item) const;

  /// Fraction of (user, recommended item) pairs that get a concept-grounded
  /// reason — the paper's practicality argument vs NLG explanations.
  double ExplainableRate(
      const std::vector<datagen::UserHistory>& users,
      const std::vector<std::vector<kg::ItemId>>& recommendations) const;

 private:
  const kg::ConceptNet* net_;
};

}  // namespace alicoco::apps

#endif  // ALICOCO_APPS_EXPLANATION_H_
