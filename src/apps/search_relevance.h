// Search relevance with isA expansion (Section 8.1.1).
//
// The paper's example: a user searches "top"; items titled only "jacket"
// are wrongly classified irrelevant until the prior knowledge "jacket isA
// top" enters semantic matching. Here queries are hypernym surfaces (head
// and group concepts), gold relevance comes from the taxonomy, and the
// matcher is lexical overlap with or without expanding item terms by their
// hypernym closure. Reported: AUC lift and relevance bad-case reduction.

#ifndef ALICOCO_APPS_SEARCH_RELEVANCE_H_
#define ALICOCO_APPS_SEARCH_RELEVANCE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/world.h"
#include "kg/concept_net.h"
#include "obs/metrics.h"

namespace alicoco::apps {

/// One relevance judgment task: a query with candidate items.
struct RelevanceQuery {
  std::string query;                 ///< a category surface
  std::vector<kg::ItemId> items;
  std::vector<int> relevant;         ///< gold 0/1 per item
};

struct RelevanceReport {
  double auc = 0;
  size_t bad_cases = 0;   ///< relevant items with zero match score
  size_t judged_pairs = 0;
};

/// Lexical relevance scorer over a concept net. Serving-path latency lands
/// in `metrics` under `serving.search_relevance.*` (query latency
/// histogram plus query/pair counters); pass nullptr to opt out.
class SearchRelevance {
 public:
  explicit SearchRelevance(const kg::ConceptNet* net,
                           obs::Registry* metrics = &obs::Registry::Default());

  /// Builds queries from the world's category concepts: for each query
  /// concept, candidates mix relevant items (category isA-descendant of the
  /// query) and random irrelevant ones.
  std::vector<RelevanceQuery> BuildQueries(const datagen::World& world,
                                           size_t max_queries,
                                           size_t items_per_query,
                                           uint64_t seed) const;

  /// Match score of query vs item title: term overlap; when `expand_isa`,
  /// item terms are expanded with the hypernym closure of the item's
  /// primitive concepts first.
  double Score(const std::string& query, kg::ItemId item,
               bool expand_isa) const;

  /// Evaluates all queries with or without expansion.
  RelevanceReport Evaluate(const std::vector<RelevanceQuery>& queries,
                           bool expand_isa) const;

 private:
  const kg::ConceptNet* net_;
  obs::Histogram* query_latency_us_ = nullptr;
  obs::Counter* queries_served_ = nullptr;
  obs::Counter* pairs_judged_ = nullptr;
};

}  // namespace alicoco::apps

#endif  // ALICOCO_APPS_SEARCH_RELEVANCE_H_
