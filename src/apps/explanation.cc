#include "apps/explanation.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace alicoco::apps {

RecommendationExplainer::RecommendationExplainer(const kg::ConceptNet* net)
    : net_(net) {
  ALICOCO_CHECK(net != nullptr);
}

std::optional<Explanation> RecommendationExplainer::Explain(
    const datagen::UserHistory& user, kg::ItemId item) const {
  // Concepts the item satisfies.
  std::unordered_map<uint32_t, double> candidates;
  for (kg::EcConceptId ec : net_->EcConceptsForItem(item)) {
    candidates[ec.value] = 0;
  }
  if (candidates.empty()) return std::nullopt;

  // History votes: clicked items sharing those concepts.
  for (kg::ItemId clicked : user.clicked) {
    if (clicked == item) continue;
    for (kg::EcConceptId ec : net_->EcConceptsForItem(clicked)) {
      auto it = candidates.find(ec.value);
      if (it != candidates.end()) it->second += 1.0;
    }
  }
  uint32_t best = 0;
  double best_votes = 0;
  for (const auto& [ec, votes] : candidates) {
    if (votes > best_votes ||
        (votes == best_votes && best_votes > 0 && ec < best)) {
      best = ec;
      best_votes = votes;
    }
  }
  if (best_votes <= 0) return std::nullopt;

  Explanation out;
  out.concept_id = kg::EcConceptId(best);
  out.concept_surface = net_->Get(out.concept_id).surface;
  out.support = best_votes;
  out.text = StringPrintf(
      "recommended for \"%s\" — %.0f of your recent picks point at this "
      "need",
      out.concept_surface.c_str(), best_votes);
  return out;
}

double RecommendationExplainer::ExplainableRate(
    const std::vector<datagen::UserHistory>& users,
    const std::vector<std::vector<kg::ItemId>>& recommendations) const {
  ALICOCO_CHECK(users.size() == recommendations.size());
  size_t total = 0, explained = 0;
  for (size_t u = 0; u < users.size(); ++u) {
    for (kg::ItemId item : recommendations[u]) {
      ++total;
      if (Explain(users[u], item).has_value()) ++explained;
    }
  }
  return total > 0 ? static_cast<double>(explained) / total : 0.0;
}

}  // namespace alicoco::apps
