// Needs-oriented question answering (Section 8.1.2).
//
// The paper's "ongoing" application: instead of keyword search, the user
// asks "What should I prepare for hosting next week's barbecue?" and the
// engine answers from the concept net — recognize the need (event /
// e-commerce concept) inside the question, surface the knowledge card:
// the interpretation, the isA context, and the associated items.

#ifndef ALICOCO_APPS_QUESTION_ANSWERING_H_
#define ALICOCO_APPS_QUESTION_ANSWERING_H_

#include <optional>
#include <string>
#include <vector>

#include "kg/concept_net.h"

namespace alicoco::apps {

/// A structured answer — the "knowledge card" of Figure 2(a).
struct NeedsAnswer {
  kg::EcConceptId concept_id;            ///< the recognized need
  std::string concept_surface;
  /// The need's interpretation: (domain, surface) per primitive concept.
  std::vector<std::pair<std::string, std::string>> interpretation;
  std::vector<kg::ItemId> items;         ///< what to prepare
  std::vector<std::string> related_needs;  ///< isA-related concepts
  double score = 0;                      ///< recognition confidence
};

/// Recognizes user needs inside free-form questions and answers from the
/// net. Pure retrieval — no trained model, so it runs on any net.
class NeedsQuestionAnswerer {
 public:
  /// `net` must outlive the answerer.
  explicit NeedsQuestionAnswerer(const kg::ConceptNet* net);

  /// Answers a question. Recognition: the longest e-commerce-concept
  /// surface contained in the question wins; otherwise the densest
  /// combination of primitive concepts that interprets some concept.
  /// Returns nullopt when no need is recognizable.
  std::optional<NeedsAnswer> Answer(const std::string& question,
                                    size_t max_items = 8) const;

  /// All needs recognized in the question, best first.
  std::vector<NeedsAnswer> AnswerAll(const std::string& question,
                                     size_t max_items = 8) const;

 private:
  NeedsAnswer BuildAnswer(kg::EcConceptId id, double score,
                          size_t max_items) const;

  const kg::ConceptNet* net_;
};

}  // namespace alicoco::apps

#endif  // ALICOCO_APPS_QUESTION_ANSWERING_H_
