#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"

namespace alicoco::eval {
namespace {

// Candidate indices sorted by descending score (stable for determinism).
std::vector<size_t> RankOrder(const std::vector<double>& scores) {
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  return idx;
}

}  // namespace

double AveragePrecision(const RankedQuery& q) {
  ALICOCO_CHECK(q.scores.size() == q.labels.size());
  auto order = RankOrder(q.scores);
  size_t hits = 0;
  double sum = 0.0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (q.labels[order[rank]] > 0) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(rank + 1);
    }
  }
  return hits == 0 ? 0.0 : sum / static_cast<double>(hits);
}

double ReciprocalRank(const RankedQuery& q) {
  ALICOCO_CHECK(q.scores.size() == q.labels.size());
  auto order = RankOrder(q.scores);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (q.labels[order[rank]] > 0) return 1.0 / static_cast<double>(rank + 1);
  }
  return 0.0;
}

double PrecisionAtK(const RankedQuery& q, size_t k) {
  ALICOCO_CHECK(q.scores.size() == q.labels.size());
  if (k == 0) return 0.0;
  auto order = RankOrder(q.scores);
  size_t take = std::min(k, order.size());
  size_t hits = 0;
  for (size_t rank = 0; rank < take; ++rank) {
    if (q.labels[order[rank]] > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double MeanAveragePrecision(const std::vector<RankedQuery>& qs) {
  if (qs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : qs) sum += AveragePrecision(q);
  return sum / static_cast<double>(qs.size());
}

double MeanReciprocalRank(const std::vector<RankedQuery>& qs) {
  if (qs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : qs) sum += ReciprocalRank(q);
  return sum / static_cast<double>(qs.size());
}

double MeanPrecisionAtK(const std::vector<RankedQuery>& qs, size_t k) {
  if (qs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : qs) sum += PrecisionAtK(q, k);
  return sum / static_cast<double>(qs.size());
}

double Auc(const std::vector<double>& scores, const std::vector<int>& labels) {
  ALICOCO_CHECK(scores.size() == labels.size());
  size_t n = scores.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  // Assign average ranks to ties, accumulate positive-rank sum
  // (Mann-Whitney U statistic).
  double rank_sum_pos = 0.0;
  size_t n_pos = 0, n_neg = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[idx[j]] == scores[idx[i]]) ++j;
    double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (labels[idx[k]] > 0) {
        rank_sum_pos += avg_rank;
        ++n_pos;
      } else {
        ++n_neg;
      }
    }
    i = j;
  }
  if (n_pos == 0 || n_neg == 0) return 0.5;
  double u = rank_sum_pos - static_cast<double>(n_pos) *
                                (static_cast<double>(n_pos) + 1) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

BinaryMetrics ComputeBinaryMetrics(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   double threshold) {
  ALICOCO_CHECK(scores.size() == labels.size());
  BinaryMetrics m;
  for (size_t i = 0; i < scores.size(); ++i) {
    bool pred = scores[i] >= threshold;
    bool gold = labels[i] > 0;
    if (pred && gold) ++m.tp;
    else if (pred && !gold) ++m.fp;
    else if (!pred && gold) ++m.fn;
    else ++m.tn;
  }
  double tp = static_cast<double>(m.tp);
  m.precision = (m.tp + m.fp) ? tp / static_cast<double>(m.tp + m.fp) : 0.0;
  m.recall = (m.tp + m.fn) ? tp / static_cast<double>(m.tp + m.fn) : 0.0;
  m.f1 = (m.precision + m.recall) > 0
             ? 2 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  size_t total = m.tp + m.fp + m.tn + m.fn;
  m.accuracy = total ? static_cast<double>(m.tp + m.tn) /
                           static_cast<double>(total)
                     : 0.0;
  return m;
}

std::vector<Span> DecodeIob(const std::vector<std::string>& tags) {
  std::vector<Span> spans;
  bool open = false;
  Span cur;
  auto close = [&](size_t end) {
    if (open) {
      cur.end = end;
      spans.push_back(cur);
      open = false;
    }
  };
  for (size_t i = 0; i < tags.size(); ++i) {
    const std::string& t = tags[i];
    if (t == "O" || t.empty()) {
      close(i);
    } else if (t.size() > 2 && t[1] == '-') {
      std::string type = t.substr(2);
      if (t[0] == 'B' || !open || cur.type != type) {
        close(i);
        cur = Span{i, i + 1, type};
        open = true;
      }
      // 'I-' of the same type extends the open span.
    } else {
      close(i);
    }
  }
  close(tags.size());
  return spans;
}

BinaryMetrics SpanF1(const std::vector<std::vector<std::string>>& gold,
                     const std::vector<std::vector<std::string>>& pred) {
  ALICOCO_CHECK(gold.size() == pred.size());
  BinaryMetrics m;
  for (size_t s = 0; s < gold.size(); ++s) {
    auto g = DecodeIob(gold[s]);
    auto p = DecodeIob(pred[s]);
    std::vector<bool> matched(g.size(), false);
    for (const auto& ps : p) {
      bool hit = false;
      for (size_t i = 0; i < g.size(); ++i) {
        if (!matched[i] && g[i] == ps) {
          matched[i] = true;
          hit = true;
          break;
        }
      }
      if (hit) ++m.tp;
      else ++m.fp;
    }
    for (bool b : matched) {
      if (!b) ++m.fn;
    }
  }
  double tp = static_cast<double>(m.tp);
  m.precision = (m.tp + m.fp) ? tp / static_cast<double>(m.tp + m.fp) : 0.0;
  m.recall = (m.tp + m.fn) ? tp / static_cast<double>(m.tp + m.fn) : 0.0;
  m.f1 = (m.precision + m.recall) > 0
             ? 2 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

ConfidenceInterval BootstrapCi(const std::vector<double>& values,
                               int iterations, double confidence,
                               uint64_t seed) {
  ALICOCO_CHECK_GT(confidence, 0.0);
  ALICOCO_CHECK_LT(confidence, 1.0);
  ConfidenceInterval ci;
  if (values.empty() || iterations <= 0) return ci;
  ci.mean = Mean(values);
  Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<size_t>(iterations));
  for (int it = 0; it < iterations; ++it) {
    double acc = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      acc += values[rng.Uniform(values.size())];
    }
    means.push_back(acc / static_cast<double>(values.size()));
  }
  std::sort(means.begin(), means.end());
  double alpha = (1.0 - confidence) / 2.0;
  auto pick = [&](double q) {
    double pos = q * static_cast<double>(means.size() - 1);
    size_t idx = static_cast<size_t>(pos);
    return means[std::min(idx, means.size() - 1)];
  };
  ci.lo = pick(alpha);
  ci.hi = pick(1.0 - alpha);
  return ci;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

}  // namespace alicoco::eval
